# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_sim_runs_scenario_file "/root/repo/build/tools/midrr_sim" "/root/repo/examples/phone.scn")
set_tests_properties(tool_sim_runs_scenario_file PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_sim_policy_override "/root/repo/build/tools/midrr_sim" "/root/repo/examples/phone.scn" "--policy" "wfq")
set_tests_properties(tool_sim_policy_override PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_sim_rejects_missing_file "/root/repo/build/tools/midrr_sim" "/nonexistent.scn")
set_tests_properties(tool_sim_rejects_missing_file PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_solve_fig1c "/root/repo/build/tools/midrr_solve" "--caps" "1mbps,1mbps" "--weights" "1,1" "--willing" "11,01")
set_tests_properties(tool_solve_fig1c PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;24;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_solve_rejects_bad_row "/root/repo/build/tools/midrr_solve" "--caps" "1mbps" "--willing" "101")
set_tests_properties(tool_solve_rejects_bad_row PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;26;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_solve_usage "/root/repo/build/tools/midrr_solve")
set_tests_properties(tool_solve_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;29;add_test;/root/repo/tools/CMakeLists.txt;0;")
