# Empty compiler generated dependencies file for midrr-solve.
# This may be replaced when dependencies are built.
