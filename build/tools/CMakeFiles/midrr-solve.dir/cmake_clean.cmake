file(REMOVE_RECURSE
  "CMakeFiles/midrr-solve.dir/midrr_solve.cpp.o"
  "CMakeFiles/midrr-solve.dir/midrr_solve.cpp.o.d"
  "midrr_solve"
  "midrr_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/midrr-solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
