file(REMOVE_RECURSE
  "CMakeFiles/midrr-sim.dir/midrr_sim.cpp.o"
  "CMakeFiles/midrr-sim.dir/midrr_sim.cpp.o.d"
  "midrr_sim"
  "midrr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/midrr-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
