# Empty dependencies file for midrr-sim.
# This may be replaced when dependencies are built.
