file(REMOVE_RECURSE
  "CMakeFiles/test_inbound.dir/test_inbound.cpp.o"
  "CMakeFiles/test_inbound.dir/test_inbound.cpp.o.d"
  "test_inbound"
  "test_inbound.pdb"
  "test_inbound[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inbound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
