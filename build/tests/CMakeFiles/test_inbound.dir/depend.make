# Empty dependencies file for test_inbound.
# This may be replaced when dependencies are built.
