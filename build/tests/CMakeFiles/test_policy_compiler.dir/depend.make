# Empty dependencies file for test_policy_compiler.
# This may be replaced when dependencies are built.
