file(REMOVE_RECURSE
  "CMakeFiles/test_policy_compiler.dir/test_policy_compiler.cpp.o"
  "CMakeFiles/test_policy_compiler.dir/test_policy_compiler.cpp.o.d"
  "test_policy_compiler"
  "test_policy_compiler.pdb"
  "test_policy_compiler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policy_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
