file(REMOVE_RECURSE
  "CMakeFiles/test_queue_source.dir/test_queue_source.cpp.o"
  "CMakeFiles/test_queue_source.dir/test_queue_source.cpp.o.d"
  "test_queue_source"
  "test_queue_source.pdb"
  "test_queue_source[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queue_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
