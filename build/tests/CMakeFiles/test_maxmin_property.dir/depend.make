# Empty dependencies file for test_maxmin_property.
# This may be replaced when dependencies are built.
