file(REMOVE_RECURSE
  "CMakeFiles/test_maxmin_property.dir/test_maxmin_property.cpp.o"
  "CMakeFiles/test_maxmin_property.dir/test_maxmin_property.cpp.o.d"
  "test_maxmin_property"
  "test_maxmin_property.pdb"
  "test_maxmin_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_maxmin_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
