file(REMOVE_RECURSE
  "CMakeFiles/test_scenario_text.dir/test_scenario_text.cpp.o"
  "CMakeFiles/test_scenario_text.dir/test_scenario_text.cpp.o.d"
  "test_scenario_text"
  "test_scenario_text.pdb"
  "test_scenario_text[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scenario_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
