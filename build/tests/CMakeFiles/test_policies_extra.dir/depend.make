# Empty dependencies file for test_policies_extra.
# This may be replaced when dependencies are built.
