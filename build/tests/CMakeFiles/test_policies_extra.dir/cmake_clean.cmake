file(REMOVE_RECURSE
  "CMakeFiles/test_policies_extra.dir/test_policies_extra.cpp.o"
  "CMakeFiles/test_policies_extra.dir/test_policies_extra.cpp.o.d"
  "test_policies_extra"
  "test_policies_extra.pdb"
  "test_policies_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policies_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
