file(REMOVE_RECURSE
  "CMakeFiles/test_solver_crosscheck.dir/test_solver_crosscheck.cpp.o"
  "CMakeFiles/test_solver_crosscheck.dir/test_solver_crosscheck.cpp.o.d"
  "test_solver_crosscheck"
  "test_solver_crosscheck.pdb"
  "test_solver_crosscheck[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solver_crosscheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
