# Empty dependencies file for test_solver_crosscheck.
# This may be replaced when dependencies are built.
