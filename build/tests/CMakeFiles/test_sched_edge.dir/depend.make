# Empty dependencies file for test_sched_edge.
# This may be replaced when dependencies are built.
