file(REMOVE_RECURSE
  "CMakeFiles/test_sched_edge.dir/test_sched_edge.cpp.o"
  "CMakeFiles/test_sched_edge.dir/test_sched_edge.cpp.o.d"
  "test_sched_edge"
  "test_sched_edge.pdb"
  "test_sched_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
