file(REMOVE_RECURSE
  "CMakeFiles/test_clusters.dir/test_clusters.cpp.o"
  "CMakeFiles/test_clusters.dir/test_clusters.cpp.o.d"
  "test_clusters"
  "test_clusters.pdb"
  "test_clusters[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
