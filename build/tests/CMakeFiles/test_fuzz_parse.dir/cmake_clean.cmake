file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_parse.dir/test_fuzz_parse.cpp.o"
  "CMakeFiles/test_fuzz_parse.dir/test_fuzz_parse.cpp.o.d"
  "test_fuzz_parse"
  "test_fuzz_parse.pdb"
  "test_fuzz_parse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_parse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
