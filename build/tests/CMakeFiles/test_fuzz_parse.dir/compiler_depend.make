# Empty compiler generated dependencies file for test_fuzz_parse.
# This may be replaced when dependencies are built.
