file(REMOVE_RECURSE
  "CMakeFiles/test_preferences.dir/test_preferences.cpp.o"
  "CMakeFiles/test_preferences.dir/test_preferences.cpp.o.d"
  "test_preferences"
  "test_preferences.pdb"
  "test_preferences[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_preferences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
