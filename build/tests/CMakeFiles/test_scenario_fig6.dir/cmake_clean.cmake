file(REMOVE_RECURSE
  "CMakeFiles/test_scenario_fig6.dir/test_scenario_fig6.cpp.o"
  "CMakeFiles/test_scenario_fig6.dir/test_scenario_fig6.cpp.o.d"
  "test_scenario_fig6"
  "test_scenario_fig6.pdb"
  "test_scenario_fig6[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scenario_fig6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
