# Empty compiler generated dependencies file for test_scenario_fig6.
# This may be replaced when dependencies are built.
