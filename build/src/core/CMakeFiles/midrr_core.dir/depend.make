# Empty dependencies file for midrr_core.
# This may be replaced when dependencies are built.
