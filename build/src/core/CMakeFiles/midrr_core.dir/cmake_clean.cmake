file(REMOVE_RECURSE
  "CMakeFiles/midrr_core.dir/scenario.cpp.o"
  "CMakeFiles/midrr_core.dir/scenario.cpp.o.d"
  "CMakeFiles/midrr_core.dir/scenario_text.cpp.o"
  "CMakeFiles/midrr_core.dir/scenario_text.cpp.o.d"
  "libmidrr_core.a"
  "libmidrr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/midrr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
