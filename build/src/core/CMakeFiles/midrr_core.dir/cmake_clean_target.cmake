file(REMOVE_RECURSE
  "libmidrr_core.a"
)
