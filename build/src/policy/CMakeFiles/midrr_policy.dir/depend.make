# Empty dependencies file for midrr_policy.
# This may be replaced when dependencies are built.
