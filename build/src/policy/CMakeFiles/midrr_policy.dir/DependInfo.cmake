
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/compiler.cpp" "src/policy/CMakeFiles/midrr_policy.dir/compiler.cpp.o" "gcc" "src/policy/CMakeFiles/midrr_policy.dir/compiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/midrr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/midrr_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/midrr_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/fairness/CMakeFiles/midrr_fair.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/midrr_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
