file(REMOVE_RECURSE
  "libmidrr_policy.a"
)
