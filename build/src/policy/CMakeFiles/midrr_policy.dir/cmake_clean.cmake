file(REMOVE_RECURSE
  "CMakeFiles/midrr_policy.dir/compiler.cpp.o"
  "CMakeFiles/midrr_policy.dir/compiler.cpp.o.d"
  "libmidrr_policy.a"
  "libmidrr_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/midrr_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
