file(REMOVE_RECURSE
  "libmidrr_flow.a"
)
