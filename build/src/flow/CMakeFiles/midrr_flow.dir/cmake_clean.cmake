file(REMOVE_RECURSE
  "CMakeFiles/midrr_flow.dir/preferences.cpp.o"
  "CMakeFiles/midrr_flow.dir/preferences.cpp.o.d"
  "CMakeFiles/midrr_flow.dir/queue.cpp.o"
  "CMakeFiles/midrr_flow.dir/queue.cpp.o.d"
  "CMakeFiles/midrr_flow.dir/source.cpp.o"
  "CMakeFiles/midrr_flow.dir/source.cpp.o.d"
  "libmidrr_flow.a"
  "libmidrr_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/midrr_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
