# Empty compiler generated dependencies file for midrr_flow.
# This may be replaced when dependencies are built.
