file(REMOVE_RECURSE
  "libmidrr_sim.a"
)
