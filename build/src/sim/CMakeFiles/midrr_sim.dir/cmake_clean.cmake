file(REMOVE_RECURSE
  "CMakeFiles/midrr_sim.dir/link.cpp.o"
  "CMakeFiles/midrr_sim.dir/link.cpp.o.d"
  "CMakeFiles/midrr_sim.dir/rate_profile.cpp.o"
  "CMakeFiles/midrr_sim.dir/rate_profile.cpp.o.d"
  "CMakeFiles/midrr_sim.dir/simulator.cpp.o"
  "CMakeFiles/midrr_sim.dir/simulator.cpp.o.d"
  "libmidrr_sim.a"
  "libmidrr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/midrr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
