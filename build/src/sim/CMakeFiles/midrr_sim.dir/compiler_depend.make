# Empty compiler generated dependencies file for midrr_sim.
# This may be replaced when dependencies are built.
