file(REMOVE_RECURSE
  "libmidrr_net.a"
)
