# Empty compiler generated dependencies file for midrr_net.
# This may be replaced when dependencies are built.
