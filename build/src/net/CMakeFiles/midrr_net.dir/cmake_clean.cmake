file(REMOVE_RECURSE
  "CMakeFiles/midrr_net.dir/addr.cpp.o"
  "CMakeFiles/midrr_net.dir/addr.cpp.o.d"
  "CMakeFiles/midrr_net.dir/bytes.cpp.o"
  "CMakeFiles/midrr_net.dir/bytes.cpp.o.d"
  "CMakeFiles/midrr_net.dir/checksum.cpp.o"
  "CMakeFiles/midrr_net.dir/checksum.cpp.o.d"
  "CMakeFiles/midrr_net.dir/headers.cpp.o"
  "CMakeFiles/midrr_net.dir/headers.cpp.o.d"
  "CMakeFiles/midrr_net.dir/packet.cpp.o"
  "CMakeFiles/midrr_net.dir/packet.cpp.o.d"
  "CMakeFiles/midrr_net.dir/pcap.cpp.o"
  "CMakeFiles/midrr_net.dir/pcap.cpp.o.d"
  "libmidrr_net.a"
  "libmidrr_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/midrr_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
