file(REMOVE_RECURSE
  "libmidrr_util.a"
)
