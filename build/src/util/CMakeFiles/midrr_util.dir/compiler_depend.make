# Empty compiler generated dependencies file for midrr_util.
# This may be replaced when dependencies are built.
