file(REMOVE_RECURSE
  "CMakeFiles/midrr_util.dir/csv.cpp.o"
  "CMakeFiles/midrr_util.dir/csv.cpp.o.d"
  "CMakeFiles/midrr_util.dir/logging.cpp.o"
  "CMakeFiles/midrr_util.dir/logging.cpp.o.d"
  "CMakeFiles/midrr_util.dir/stats.cpp.o"
  "CMakeFiles/midrr_util.dir/stats.cpp.o.d"
  "libmidrr_util.a"
  "libmidrr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/midrr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
