file(REMOVE_RECURSE
  "libmidrr_http.a"
)
