file(REMOVE_RECURSE
  "CMakeFiles/midrr_http.dir/message.cpp.o"
  "CMakeFiles/midrr_http.dir/message.cpp.o.d"
  "CMakeFiles/midrr_http.dir/proxy.cpp.o"
  "CMakeFiles/midrr_http.dir/proxy.cpp.o.d"
  "CMakeFiles/midrr_http.dir/reassembler.cpp.o"
  "CMakeFiles/midrr_http.dir/reassembler.cpp.o.d"
  "libmidrr_http.a"
  "libmidrr_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/midrr_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
