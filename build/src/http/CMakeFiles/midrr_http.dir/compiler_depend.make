# Empty compiler generated dependencies file for midrr_http.
# This may be replaced when dependencies are built.
