file(REMOVE_RECURSE
  "CMakeFiles/midrr_inbound.dir/remote_proxy.cpp.o"
  "CMakeFiles/midrr_inbound.dir/remote_proxy.cpp.o.d"
  "CMakeFiles/midrr_inbound.dir/reorder.cpp.o"
  "CMakeFiles/midrr_inbound.dir/reorder.cpp.o.d"
  "libmidrr_inbound.a"
  "libmidrr_inbound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/midrr_inbound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
