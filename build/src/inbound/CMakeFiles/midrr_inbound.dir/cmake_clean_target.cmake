file(REMOVE_RECURSE
  "libmidrr_inbound.a"
)
