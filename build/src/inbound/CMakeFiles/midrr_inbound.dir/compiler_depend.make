# Empty compiler generated dependencies file for midrr_inbound.
# This may be replaced when dependencies are built.
