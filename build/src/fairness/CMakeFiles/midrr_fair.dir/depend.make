# Empty dependencies file for midrr_fair.
# This may be replaced when dependencies are built.
