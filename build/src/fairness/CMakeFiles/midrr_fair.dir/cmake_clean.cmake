file(REMOVE_RECURSE
  "CMakeFiles/midrr_fair.dir/bottleneck.cpp.o"
  "CMakeFiles/midrr_fair.dir/bottleneck.cpp.o.d"
  "CMakeFiles/midrr_fair.dir/clusters.cpp.o"
  "CMakeFiles/midrr_fair.dir/clusters.cpp.o.d"
  "CMakeFiles/midrr_fair.dir/fluid.cpp.o"
  "CMakeFiles/midrr_fair.dir/fluid.cpp.o.d"
  "CMakeFiles/midrr_fair.dir/maxflow.cpp.o"
  "CMakeFiles/midrr_fair.dir/maxflow.cpp.o.d"
  "CMakeFiles/midrr_fair.dir/maxmin.cpp.o"
  "CMakeFiles/midrr_fair.dir/maxmin.cpp.o.d"
  "CMakeFiles/midrr_fair.dir/metrics.cpp.o"
  "CMakeFiles/midrr_fair.dir/metrics.cpp.o.d"
  "libmidrr_fair.a"
  "libmidrr_fair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/midrr_fair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
