
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fairness/bottleneck.cpp" "src/fairness/CMakeFiles/midrr_fair.dir/bottleneck.cpp.o" "gcc" "src/fairness/CMakeFiles/midrr_fair.dir/bottleneck.cpp.o.d"
  "/root/repo/src/fairness/clusters.cpp" "src/fairness/CMakeFiles/midrr_fair.dir/clusters.cpp.o" "gcc" "src/fairness/CMakeFiles/midrr_fair.dir/clusters.cpp.o.d"
  "/root/repo/src/fairness/fluid.cpp" "src/fairness/CMakeFiles/midrr_fair.dir/fluid.cpp.o" "gcc" "src/fairness/CMakeFiles/midrr_fair.dir/fluid.cpp.o.d"
  "/root/repo/src/fairness/maxflow.cpp" "src/fairness/CMakeFiles/midrr_fair.dir/maxflow.cpp.o" "gcc" "src/fairness/CMakeFiles/midrr_fair.dir/maxflow.cpp.o.d"
  "/root/repo/src/fairness/maxmin.cpp" "src/fairness/CMakeFiles/midrr_fair.dir/maxmin.cpp.o" "gcc" "src/fairness/CMakeFiles/midrr_fair.dir/maxmin.cpp.o.d"
  "/root/repo/src/fairness/metrics.cpp" "src/fairness/CMakeFiles/midrr_fair.dir/metrics.cpp.o" "gcc" "src/fairness/CMakeFiles/midrr_fair.dir/metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/midrr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/midrr_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/midrr_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/midrr_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
