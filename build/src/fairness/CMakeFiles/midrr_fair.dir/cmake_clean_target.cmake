file(REMOVE_RECURSE
  "libmidrr_fair.a"
)
