file(REMOVE_RECURSE
  "libmidrr_bridge.a"
)
