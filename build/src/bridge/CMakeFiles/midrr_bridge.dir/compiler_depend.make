# Empty compiler generated dependencies file for midrr_bridge.
# This may be replaced when dependencies are built.
