file(REMOVE_RECURSE
  "CMakeFiles/midrr_bridge.dir/bridge.cpp.o"
  "CMakeFiles/midrr_bridge.dir/bridge.cpp.o.d"
  "CMakeFiles/midrr_bridge.dir/classifier.cpp.o"
  "CMakeFiles/midrr_bridge.dir/classifier.cpp.o.d"
  "libmidrr_bridge.a"
  "libmidrr_bridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/midrr_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
