# Empty dependencies file for midrr_trace.
# This may be replaced when dependencies are built.
