file(REMOVE_RECURSE
  "libmidrr_trace.a"
)
