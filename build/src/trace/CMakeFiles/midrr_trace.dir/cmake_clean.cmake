file(REMOVE_RECURSE
  "CMakeFiles/midrr_trace.dir/smartphone.cpp.o"
  "CMakeFiles/midrr_trace.dir/smartphone.cpp.o.d"
  "libmidrr_trace.a"
  "libmidrr_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/midrr_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
