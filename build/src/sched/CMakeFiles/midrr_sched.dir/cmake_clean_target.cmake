file(REMOVE_RECURSE
  "libmidrr_sched.a"
)
