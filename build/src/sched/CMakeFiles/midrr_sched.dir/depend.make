# Empty dependencies file for midrr_sched.
# This may be replaced when dependencies are built.
