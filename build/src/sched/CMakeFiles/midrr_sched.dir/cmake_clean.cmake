file(REMOVE_RECURSE
  "CMakeFiles/midrr_sched.dir/drr.cpp.o"
  "CMakeFiles/midrr_sched.dir/drr.cpp.o.d"
  "CMakeFiles/midrr_sched.dir/fifo.cpp.o"
  "CMakeFiles/midrr_sched.dir/fifo.cpp.o.d"
  "CMakeFiles/midrr_sched.dir/midrr.cpp.o"
  "CMakeFiles/midrr_sched.dir/midrr.cpp.o.d"
  "CMakeFiles/midrr_sched.dir/observer.cpp.o"
  "CMakeFiles/midrr_sched.dir/observer.cpp.o.d"
  "CMakeFiles/midrr_sched.dir/oracle.cpp.o"
  "CMakeFiles/midrr_sched.dir/oracle.cpp.o.d"
  "CMakeFiles/midrr_sched.dir/priority.cpp.o"
  "CMakeFiles/midrr_sched.dir/priority.cpp.o.d"
  "CMakeFiles/midrr_sched.dir/ring.cpp.o"
  "CMakeFiles/midrr_sched.dir/ring.cpp.o.d"
  "CMakeFiles/midrr_sched.dir/round_robin.cpp.o"
  "CMakeFiles/midrr_sched.dir/round_robin.cpp.o.d"
  "CMakeFiles/midrr_sched.dir/scheduler.cpp.o"
  "CMakeFiles/midrr_sched.dir/scheduler.cpp.o.d"
  "CMakeFiles/midrr_sched.dir/wfq.cpp.o"
  "CMakeFiles/midrr_sched.dir/wfq.cpp.o.d"
  "libmidrr_sched.a"
  "libmidrr_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/midrr_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
