
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/drr.cpp" "src/sched/CMakeFiles/midrr_sched.dir/drr.cpp.o" "gcc" "src/sched/CMakeFiles/midrr_sched.dir/drr.cpp.o.d"
  "/root/repo/src/sched/fifo.cpp" "src/sched/CMakeFiles/midrr_sched.dir/fifo.cpp.o" "gcc" "src/sched/CMakeFiles/midrr_sched.dir/fifo.cpp.o.d"
  "/root/repo/src/sched/midrr.cpp" "src/sched/CMakeFiles/midrr_sched.dir/midrr.cpp.o" "gcc" "src/sched/CMakeFiles/midrr_sched.dir/midrr.cpp.o.d"
  "/root/repo/src/sched/observer.cpp" "src/sched/CMakeFiles/midrr_sched.dir/observer.cpp.o" "gcc" "src/sched/CMakeFiles/midrr_sched.dir/observer.cpp.o.d"
  "/root/repo/src/sched/oracle.cpp" "src/sched/CMakeFiles/midrr_sched.dir/oracle.cpp.o" "gcc" "src/sched/CMakeFiles/midrr_sched.dir/oracle.cpp.o.d"
  "/root/repo/src/sched/priority.cpp" "src/sched/CMakeFiles/midrr_sched.dir/priority.cpp.o" "gcc" "src/sched/CMakeFiles/midrr_sched.dir/priority.cpp.o.d"
  "/root/repo/src/sched/ring.cpp" "src/sched/CMakeFiles/midrr_sched.dir/ring.cpp.o" "gcc" "src/sched/CMakeFiles/midrr_sched.dir/ring.cpp.o.d"
  "/root/repo/src/sched/round_robin.cpp" "src/sched/CMakeFiles/midrr_sched.dir/round_robin.cpp.o" "gcc" "src/sched/CMakeFiles/midrr_sched.dir/round_robin.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/sched/CMakeFiles/midrr_sched.dir/scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/midrr_sched.dir/scheduler.cpp.o.d"
  "/root/repo/src/sched/wfq.cpp" "src/sched/CMakeFiles/midrr_sched.dir/wfq.cpp.o" "gcc" "src/sched/CMakeFiles/midrr_sched.dir/wfq.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/midrr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/midrr_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/fairness/CMakeFiles/midrr_fair.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/midrr_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
