# Empty compiler generated dependencies file for fig7_concurrent_flows.
# This may be replaced when dependencies are built.
