file(REMOVE_RECURSE
  "CMakeFiles/fig7_concurrent_flows.dir/fig7_concurrent_flows.cpp.o"
  "CMakeFiles/fig7_concurrent_flows.dir/fig7_concurrent_flows.cpp.o.d"
  "fig7_concurrent_flows"
  "fig7_concurrent_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_concurrent_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
