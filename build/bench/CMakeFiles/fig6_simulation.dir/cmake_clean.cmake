file(REMOVE_RECURSE
  "CMakeFiles/fig6_simulation.dir/fig6_simulation.cpp.o"
  "CMakeFiles/fig6_simulation.dir/fig6_simulation.cpp.o.d"
  "fig6_simulation"
  "fig6_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
