# Empty compiler generated dependencies file for fig6_simulation.
# This may be replaced when dependencies are built.
