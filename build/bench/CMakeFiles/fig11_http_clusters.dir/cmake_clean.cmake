file(REMOVE_RECURSE
  "CMakeFiles/fig11_http_clusters.dir/fig11_http_clusters.cpp.o"
  "CMakeFiles/fig11_http_clusters.dir/fig11_http_clusters.cpp.o.d"
  "fig11_http_clusters"
  "fig11_http_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_http_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
