# Empty dependencies file for fig11_http_clusters.
# This may be replaced when dependencies are built.
