# Empty compiler generated dependencies file for ext_fading_links.
# This may be replaced when dependencies are built.
