file(REMOVE_RECURSE
  "CMakeFiles/ext_fading_links.dir/ext_fading_links.cpp.o"
  "CMakeFiles/ext_fading_links.dir/ext_fading_links.cpp.o.d"
  "ext_fading_links"
  "ext_fading_links.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_fading_links.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
