file(REMOVE_RECURSE
  "CMakeFiles/ext_day_in_life.dir/ext_day_in_life.cpp.o"
  "CMakeFiles/ext_day_in_life.dir/ext_day_in_life.cpp.o.d"
  "ext_day_in_life"
  "ext_day_in_life.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_day_in_life.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
