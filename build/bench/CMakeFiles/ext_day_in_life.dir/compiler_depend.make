# Empty compiler generated dependencies file for ext_day_in_life.
# This may be replaced when dependencies are built.
