file(REMOVE_RECURSE
  "CMakeFiles/fig10_http.dir/fig10_http.cpp.o"
  "CMakeFiles/fig10_http.dir/fig10_http.cpp.o.d"
  "fig10_http"
  "fig10_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
