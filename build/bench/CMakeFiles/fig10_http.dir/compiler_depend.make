# Empty compiler generated dependencies file for fig10_http.
# This may be replaced when dependencies are built.
