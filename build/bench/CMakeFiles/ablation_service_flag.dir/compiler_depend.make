# Empty compiler generated dependencies file for ablation_service_flag.
# This may be replaced when dependencies are built.
