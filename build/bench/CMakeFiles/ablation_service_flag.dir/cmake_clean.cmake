file(REMOVE_RECURSE
  "CMakeFiles/ablation_service_flag.dir/ablation_service_flag.cpp.o"
  "CMakeFiles/ablation_service_flag.dir/ablation_service_flag.cpp.o.d"
  "ablation_service_flag"
  "ablation_service_flag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_service_flag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
