file(REMOVE_RECURSE
  "CMakeFiles/fig8_clusters.dir/fig8_clusters.cpp.o"
  "CMakeFiles/fig8_clusters.dir/fig8_clusters.cpp.o.d"
  "fig8_clusters"
  "fig8_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
