# Empty dependencies file for fig8_clusters.
# This may be replaced when dependencies are built.
