# Empty dependencies file for sweep_scalability.
# This may be replaced when dependencies are built.
