file(REMOVE_RECURSE
  "CMakeFiles/sweep_scalability.dir/sweep_scalability.cpp.o"
  "CMakeFiles/sweep_scalability.dir/sweep_scalability.cpp.o.d"
  "sweep_scalability"
  "sweep_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
