# Empty compiler generated dependencies file for datacenter_tasks.
# This may be replaced when dependencies are built.
