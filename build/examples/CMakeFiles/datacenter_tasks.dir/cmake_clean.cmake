file(REMOVE_RECURSE
  "CMakeFiles/datacenter_tasks.dir/datacenter_tasks.cpp.o"
  "CMakeFiles/datacenter_tasks.dir/datacenter_tasks.cpp.o.d"
  "datacenter_tasks"
  "datacenter_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
