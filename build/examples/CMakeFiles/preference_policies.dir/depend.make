# Empty dependencies file for preference_policies.
# This may be replaced when dependencies are built.
