file(REMOVE_RECURSE
  "CMakeFiles/preference_policies.dir/preference_policies.cpp.o"
  "CMakeFiles/preference_policies.dir/preference_policies.cpp.o.d"
  "preference_policies"
  "preference_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preference_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
