
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/trace_debug.cpp" "examples/CMakeFiles/trace_debug.dir/trace_debug.cpp.o" "gcc" "examples/CMakeFiles/trace_debug.dir/trace_debug.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/midrr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fairness/CMakeFiles/midrr_fair.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/midrr_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/midrr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/midrr_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/midrr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/midrr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bridge/CMakeFiles/midrr_bridge.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/midrr_http.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/midrr_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
