file(REMOVE_RECURSE
  "CMakeFiles/mobile_device.dir/mobile_device.cpp.o"
  "CMakeFiles/mobile_device.dir/mobile_device.cpp.o.d"
  "mobile_device"
  "mobile_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
