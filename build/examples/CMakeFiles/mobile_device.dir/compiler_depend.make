# Empty compiler generated dependencies file for mobile_device.
# This may be replaced when dependencies are built.
