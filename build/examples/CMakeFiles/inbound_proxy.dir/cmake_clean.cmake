file(REMOVE_RECURSE
  "CMakeFiles/inbound_proxy.dir/inbound_proxy.cpp.o"
  "CMakeFiles/inbound_proxy.dir/inbound_proxy.cpp.o.d"
  "inbound_proxy"
  "inbound_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inbound_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
