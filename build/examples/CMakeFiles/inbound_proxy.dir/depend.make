# Empty dependencies file for inbound_proxy.
# This may be replaced when dependencies are built.
