file(REMOVE_RECURSE
  "CMakeFiles/kernel_bridge.dir/kernel_bridge.cpp.o"
  "CMakeFiles/kernel_bridge.dir/kernel_bridge.cpp.o.d"
  "kernel_bridge"
  "kernel_bridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
