# Empty compiler generated dependencies file for kernel_bridge.
# This may be replaced when dependencies are built.
