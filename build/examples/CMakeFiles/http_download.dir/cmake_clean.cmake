file(REMOVE_RECURSE
  "CMakeFiles/http_download.dir/http_download.cpp.o"
  "CMakeFiles/http_download.dir/http_download.cpp.o.d"
  "http_download"
  "http_download.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_download.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
