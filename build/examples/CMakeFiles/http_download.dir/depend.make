# Empty dependencies file for http_download.
# This may be replaced when dependencies are built.
