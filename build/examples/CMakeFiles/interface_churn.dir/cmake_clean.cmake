file(REMOVE_RECURSE
  "CMakeFiles/interface_churn.dir/interface_churn.cpp.o"
  "CMakeFiles/interface_churn.dir/interface_churn.cpp.o.d"
  "interface_churn"
  "interface_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interface_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
