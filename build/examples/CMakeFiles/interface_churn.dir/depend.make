# Empty dependencies file for interface_churn.
# This may be replaced when dependencies are built.
