// midrr_sim: run a scheduling scenario described in a text file.
//
//   midrr_sim phone.scn               # run, print per-flow rates
//   midrr_sim phone.scn --csv         # also dump the raw rate series
//   midrr_sim phone.scn --policy wfq  # override the file's policy
//   cat phone.scn | midrr_sim -       # read from stdin
//
// See src/core/scenario_text.hpp for the file format and examples/*.scn
// for ready-made scenarios.
#include <fstream>
#include <iostream>

#include "core/scenario_text.hpp"
#include "util/csv.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: midrr_sim <scenario-file|-> [--policy NAME] [--csv]\n"
         "  runs the scenario and prints steady-state rates, completions\n"
         "  and (if enabled in the file) cluster snapshots.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace midrr;

  if (argc < 2) return usage();
  std::string path;
  std::optional<Policy> policy_override;
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv") {
      csv = true;
    } else if (arg == "--policy") {
      if (i + 1 >= argc) return usage();
      try {
        policy_override = parse_policy(argv[++i]);
      } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
      }
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      return usage();
    } else {
      path = arg;
    }
  }
  if (path.empty()) return usage();

  ParsedScenario parsed;
  try {
    if (path == "-") {
      parsed = parse_scenario(std::cin);
    } else {
      std::ifstream file(path);
      if (!file) {
        std::cerr << "error: cannot open '" << path << "'\n";
        return 1;
      }
      parsed = parse_scenario(file);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  if (policy_override) parsed.run.policy = *policy_override;

  try {
    ScenarioRunner runner(parsed.scenario, parsed.run.policy,
                          parsed.run.options);
    const auto result = runner.run(parsed.run.duration);

    std::cout << "policy: " << result.policy
              << "   duration: " << to_seconds(result.duration) << " s\n\n";
    std::cout << "flows (rate over the second half of the run):\n";
    for (const auto& flow : result.flows) {
      std::cout << "  " << flow.name << ": "
                << flow.mean_rate_mbps(result.duration / 2, result.duration)
                << " Mb/s, " << flow.bytes_sent << " bytes total";
      if (flow.completed_at) {
        std::cout << ", completed at " << to_seconds(*flow.completed_at)
                  << " s";
      }
      if (!flow.delay_ns.empty()) {
        std::cout << ", p99 delay "
                  << flow.delay_ns.quantile(0.99) / 1e6 << " ms";
      }
      std::cout << "\n";
    }
    std::cout << "\ninterfaces:\n";
    for (const auto& iface : result.ifaces) {
      std::cout << "  " << iface.name << ": " << iface.bytes_sent
                << " bytes, busy "
                << 100.0 * to_seconds(iface.busy_time) /
                       to_seconds(result.duration)
                << "%\n";
    }
    if (!result.clusters.empty()) {
      std::cout << "\nclusters:\n";
      std::string last;
      for (const auto& snap : result.clusters) {
        if (snap.rendering != last) {
          std::cout << "  t=" << to_seconds(snap.at) << " s: "
                    << snap.rendering << "\n";
          last = snap.rendering;
        }
      }
    }
    if (csv) {
      std::cout << "\n";
      std::vector<const TimeSeries*> series;
      for (const auto& flow : result.flows) series.push_back(&flow.rate_mbps);
      write_time_series_csv(std::cout, series);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
