// midrr_lint: Prometheus exposition linter for CI.
//
//   midrr_lint --port 9300            # scrape http://127.0.0.1:PORT/metrics
//   midrr_lint page.txt               # lint a saved exposition page
//   some_tool | midrr_lint -          # lint stdin
//
// Wraps telemetry::lint_prometheus so the pipeline can gate on a LIVE
// /metrics page: a renderer regression (broken escaping, histogram whose
// cumulative buckets regress, duplicated family) fails the build where it
// would bite real scrapers, not just in a unit test of the writer.
//
// Exit codes: 0 clean, 1 lint issues found, 2 usage/fetch error.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "telemetry/promlint.hpp"

namespace {

int usage() {
  std::cerr << "usage: midrr_lint [--port P | FILE | -]\n"
               "  --port P   GET http://127.0.0.1:P/metrics and lint the body\n"
               "  FILE       lint a saved exposition page ('-' = stdin)\n";
  return 2;
}

/// Minimal blocking HTTP GET against loopback; returns the raw response
/// (headers + body) or "" on connect/IO failure.
std::string http_get_metrics(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string req =
      "GET /metrics HTTP/1.1\r\nHost: lint\r\nConnection: close\r\n\r\n";
  if (::send(fd, req.data(), req.size(), 0) < 0) {
    ::close(fd);
    return {};
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

}  // namespace

int main(int argc, char** argv) {
  int port = -1;
  std::string file;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (key == "--port") {
      if (i + 1 >= argc) return usage();
      try {
        port = std::stoi(argv[++i]);
      } catch (const std::exception&) {
        return usage();
      }
    } else if (!key.empty() && key[0] == '-' && key != "-") {
      return usage();
    } else if (file.empty()) {
      file = key;
    } else {
      return usage();
    }
  }
  if ((port >= 0) == !file.empty()) return usage();  // exactly one source

  std::string page;
  std::string source;
  if (port >= 0) {
    source = "127.0.0.1:" + std::to_string(port) + "/metrics";
    const std::string response =
        http_get_metrics(static_cast<std::uint16_t>(port));
    if (response.empty()) {
      std::cerr << "midrr_lint: cannot scrape " << source << "\n";
      return 2;
    }
    if (response.find("200 OK") == std::string::npos) {
      std::cerr << "midrr_lint: non-200 from " << source << "\n";
      return 2;
    }
    const std::size_t body = response.find("\r\n\r\n");
    if (body == std::string::npos) {
      std::cerr << "midrr_lint: malformed HTTP response from " << source
                << "\n";
      return 2;
    }
    page = response.substr(body + 4);
  } else if (file == "-") {
    source = "<stdin>";
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    page = buf.str();
  } else {
    source = file;
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << "midrr_lint: cannot read " << file << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    page = buf.str();
  }

  const auto issues = midrr::telemetry::lint_prometheus(page);
  for (const auto& issue : issues) {
    std::cerr << source << ":" << issue.line << ": " << issue.message << "\n";
  }
  if (!issues.empty()) {
    std::cerr << "midrr_lint: " << issues.size() << " issue(s) in " << source
              << "\n";
    return 1;
  }
  std::cout << "midrr_lint: " << source << " clean ("
            << std::count(page.begin(), page.end(), '\n') << " lines)\n";
  return 0;
}
