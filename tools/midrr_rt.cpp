// midrr_rt: drive the real-time runtime from the command line.
//
//   midrr_rt --flows 1024 --ifaces 8 --workers 4 --duration 10
//
// Builds a runtime with the requested topology (interfaces optionally
// paced), registers `--flows` flows round-robin-willing across the
// interfaces, saturates it with the load generator for `--duration`
// seconds, and prints throughput plus enqueue->dequeue latency
// percentiles.  With `--json` the report is a single JSON object on
// stdout (what bench/rt_throughput collects into BENCH_rt.json).
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/scenario_text.hpp"  // parse_rate_bps
#include "fault/adapt.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "fault/recorder.hpp"
#include "fault/supervisor.hpp"
#include "io/udp_backend.hpp"
#include "io/uring_backend.hpp"
#include "io/wire.hpp"
#include "runtime/load_generator.hpp"
#include "runtime/runtime.hpp"
#include "telemetry/build_info.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/exporter.hpp"
#include "telemetry/fairness_drift.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/slo.hpp"
#include "telemetry/stage_latency.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: midrr_rt [options]\n"
         "  --flows N       flows, willing on 2 interfaces each (default 64)\n"
         "  --flows-per-class N  register flows in batches of N sharing one\n"
         "                  flow class (one Pi row, one weight; default 1).\n"
         "                  Pair with --policy hmidrr for two-level DRR\n"
         "  --ifaces N      interfaces (default 4)\n"
         "  --workers N     worker threads (default 1)\n"
         "  --shards N      scheduler shards (default = workers)\n"
         "  --producers N   load-generator threads (default 1)\n"
         "  --duration S    seconds to run (default 2)\n"
         "  --rate R        per-interface capacity, e.g. 100mbps"
         " (default: unpaced)\n"
         "  --load-pps R    aggregate offered rate in packets/s (default 0\n"
         "                  = saturate; pace it to study latency under a\n"
         "                  controlled load instead of full overload)\n"
         "  --packet B      packet size in bytes (default 1000)\n"
         "  --payload M     none|heap|pooled: what each packet carries\n"
         "                  (default none; pooled uses per-producer frame\n"
         "                  pools with cross-thread recycling)\n"
         "  --fanin-batch N max packets per ingress ring per fan-in pass\n"
         "                  (default 1024)\n"
         "  --burst-bytes B max bytes per dequeue burst (default 65536)\n"
         "  --policy P      midrr|hmidrr|drr|wfq|rr|fifo|priority\n"
         "                  (default midrr; hmidrr = miDRR across classes,\n"
         "                  DRR among a class's members)\n"
         "  --churn         exercise the control plane during the run\n"
         "  --fault-plan F  inject the deterministic fault plan in JSON\n"
         "                  file F (see docs/ROBUSTNESS.md for the schema)\n"
         "  --supervise     run the fault supervisor: link-death detection\n"
         "                  and re-steering, worker watchdog, Theorem-2\n"
         "                  replay; /healthz reports degraded links\n"
         "  --backpressure-bytes B  refuse offers for shards holding >= B\n"
         "                  bytes of backlog (0 = off, the default)\n"
         "  --shed-bytes B  weight-aware overload shedding at fan-in past\n"
         "                  B bytes of shard backlog (0 = off, the default)\n"
         "  --shed-target-p99-ms T  adaptive shedding (needs --supervise):\n"
         "                  derive the shed watermark live from measured\n"
         "                  drain rates + traced p99 to hold end-to-end p99\n"
         "                  near T ms; retune via /adapt?target_p99_ms=X\n"
         "                  (implies --stage-sample 64 if unset; overrides\n"
         "                  --shed-bytes once the first probe lands)\n"
         "  --record-faults F  record observed transitions (link dead/\n"
         "                  revive edges, capacity droops, worker stalls,\n"
         "                  shed episodes) as a replayable FaultPlan JSON\n"
         "                  at F on exit (needs --supervise)\n"
         "  --egress B      sim|udp|uring|auto: where dequeued bursts go\n"
         "                  (default sim = pacer-only sink; udp emits real\n"
         "                  datagrams via sendmmsg, see --udp-* below;\n"
         "                  uring needs -DMIDRR_WITH_URING=ON; auto probes\n"
         "                  at startup: uring if built and the kernel\n"
         "                  permits io_uring_setup, else udp if a --udp-*\n"
         "                  destination is configured, else sim)\n"
         "  --udp-dest D    iface=host:port destination mapping, repeatable\n"
         "                  (e.g. --udp-dest if0=127.0.0.1:9000)\n"
         "  --udp-base-port P  fallback for unmapped interfaces: iface j\n"
         "                  sends to 127.0.0.1:P+j (pairs with midrr_rx)\n"
         "  --udp-batch N   messages per sendmmsg call (default 64)\n"
         "  --udp-payload B frame bytes copied per datagram after the\n"
         "                  24-byte header (default 1400, truncating)\n"
         "  --stage-sample N  trace every Nth packet per flow through the\n"
         "                  ring/queue/egress stages (0 = off, the default;\n"
         "                  exports midrr_stage_* latency breakdowns)\n"
         "  --slo S         declare an objective \"class=NAME:p99_ms=X\"\n"
         "                  (repeatable; enables burn-rate gauges and the\n"
         "                  /slo route; implies --stage-sample 64 if unset)\n"
         "  --flight-dump F arm the flight recorder: post-mortem JSON to F\n"
         "                  on /healthz degrade or a conservation-identity\n"
         "                  trip at stop (fatal signals write F.fatal)\n"
         "  --json          machine-readable report on stdout\n"
         "  --telemetry P   serve /metrics, /healthz, /flows, /classes,\n"
         "                  /buildinfo (/slo with --slo, /adapt with\n"
         "                  --shed-target-p99-ms) on 127.0.0.1:P\n"
         "                  (0 = ephemeral; bound port printed to stderr)\n"
         "  --trace-out F   capture scheduler events + worker spans, write\n"
         "                  Chrome trace-event JSON to F after the run\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace midrr;
  using namespace midrr::rt;

  std::size_t flows = 64;
  std::size_t flows_per_class = 1;
  std::size_t ifaces = 4;
  std::size_t workers = 1;
  std::size_t shards = 0;  // 0 = match workers
  std::size_t producers = 1;
  double duration_s = 2.0;
  double rate_bps = 0.0;
  double load_pps = 0.0;  // 0 = saturate
  std::uint32_t packet_bytes = 1000;
  auto payload = LoadGeneratorOptions::PayloadMode::kNone;
  std::size_t fanin_batch = 0;     // 0 = runtime default
  std::uint64_t burst_bytes = 0;   // 0 = runtime default
  Policy policy = Policy::kMiDrr;
  bool churn = false;
  std::string fault_plan_file;
  bool supervise = false;
  std::uint64_t backpressure_bytes = 0;
  std::uint64_t shed_bytes = 0;
  double shed_target_p99_ms = 0.0;  // 0 = static watermark
  std::string record_faults_file;
  std::string egress_name = "sim";
  std::vector<std::string> udp_dests;
  std::uint16_t udp_base_port = 0;
  std::size_t udp_batch = 64;
  std::size_t udp_payload = 1400;
  bool json = false;
  int telemetry_port = -1;  // < 0 = no HTTP endpoint
  std::string trace_out;
  std::uint32_t stage_sample = 0;
  std::vector<std::string> slo_texts;
  std::string flight_dump;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string key = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw std::runtime_error("missing value for " + key);
        return argv[++i];
      };
      if (key == "--flows") flows = std::stoul(value());
      else if (key == "--flows-per-class") flows_per_class = std::stoul(value());
      else if (key == "--ifaces") ifaces = std::stoul(value());
      else if (key == "--workers") workers = std::stoul(value());
      else if (key == "--shards") shards = std::stoul(value());
      else if (key == "--producers") producers = std::stoul(value());
      else if (key == "--duration") duration_s = std::stod(value());
      else if (key == "--rate") rate_bps = parse_rate_bps(value());
      else if (key == "--load-pps") load_pps = std::stod(value());
      else if (key == "--packet")
        packet_bytes = static_cast<std::uint32_t>(std::stoul(value()));
      else if (key == "--payload") {
        const std::string mode = value();
        if (mode == "none") payload = LoadGeneratorOptions::PayloadMode::kNone;
        else if (mode == "heap")
          payload = LoadGeneratorOptions::PayloadMode::kHeap;
        else if (mode == "pooled")
          payload = LoadGeneratorOptions::PayloadMode::kPooled;
        else throw std::runtime_error("unknown payload mode: " + mode);
      }
      else if (key == "--fanin-batch") fanin_batch = std::stoul(value());
      else if (key == "--burst-bytes") burst_bytes = std::stoull(value());
      else if (key == "--policy") policy = parse_policy(value());
      else if (key == "--churn") churn = true;
      else if (key == "--fault-plan") fault_plan_file = value();
      else if (key == "--supervise") supervise = true;
      else if (key == "--backpressure-bytes")
        backpressure_bytes = std::stoull(value());
      else if (key == "--shed-bytes") shed_bytes = std::stoull(value());
      else if (key == "--shed-target-p99-ms")
        shed_target_p99_ms = std::stod(value());
      else if (key == "--record-faults") record_faults_file = value();
      else if (key == "--egress") egress_name = value();
      else if (key == "--udp-dest") udp_dests.push_back(value());
      else if (key == "--udp-base-port")
        udp_base_port = static_cast<std::uint16_t>(std::stoul(value()));
      else if (key == "--udp-batch") udp_batch = std::stoul(value());
      else if (key == "--udp-payload") udp_payload = std::stoul(value());
      else if (key == "--json") json = true;
      else if (key == "--telemetry") telemetry_port = std::stoi(value());
      else if (key == "--trace-out") trace_out = value();
      else if (key == "--stage-sample")
        stage_sample = static_cast<std::uint32_t>(std::stoul(value()));
      else if (key == "--slo") slo_texts.push_back(value());
      else if (key == "--flight-dump") flight_dump = value();
      else return usage();
    }
    if (flows == 0 || flows_per_class == 0 || ifaces == 0 || duration_s <= 0.0)
      return usage();
    // Burn rates consume the tracer's sampled e2e latencies; an SLO with
    // no tracer would sit silently at 0 forever.  Same for the adaptive
    // shedding loop's windowed p99.
    if (!slo_texts.empty() && stage_sample == 0) stage_sample = 64;
    if (shed_target_p99_ms > 0.0 && stage_sample == 0) stage_sample = 64;
    if (shed_target_p99_ms > 0.0 && !supervise) {
      throw std::runtime_error("--shed-target-p99-ms needs --supervise "
                               "(the loop runs off the probe cadence)");
    }
    if (!record_faults_file.empty() && !supervise) {
      throw std::runtime_error("--record-faults needs --supervise (the "
                               "recorder mirrors supervisor verdicts)");
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return usage();
  }

  if (shards == 0) shards = workers;

  RuntimeOptions options;
  options.policy = policy;
  options.workers = workers;
  options.shards = shards;
  options.producers = producers;
  if (fanin_batch != 0) options.fanin_batch = fanin_batch;
  if (burst_bytes != 0) options.burst_bytes = burst_bytes;
  // Flow ids are never reused, so the arena must cover every churn add
  // (one per ~1 ms of runtime) on top of the static flows.
  options.max_flows =
      flows + 16 +
      (churn ? static_cast<std::size_t>(duration_s * 1200.0) + 64 : 0);

  // The registry outlives the runtime (its callbacks point into it).
  telemetry::MetricsRegistry registry;
  const bool telemetry_on = telemetry_port >= 0 || !trace_out.empty();
  if (telemetry_on) {
    options.metrics = &registry;
    telemetry::register_build_info(registry);
    if (!trace_out.empty()) {
      options.trace_events = 64 * 1024;  // per shard
      options.trace_spans = 64 * 1024;   // per worker
    }
  }

  try {
    // The injector outlives the runtime (fault seams hold a pointer).
    std::unique_ptr<fault::FaultInjector> injector;
    if (!fault_plan_file.empty()) {
      std::ifstream plan_file(fault_plan_file);
      if (!plan_file) {
        std::cerr << "error: cannot read " << fault_plan_file << "\n";
        return 1;
      }
      std::ostringstream plan_text;
      plan_text << plan_file.rdbuf();
      injector =
          std::make_unique<fault::FaultInjector>(
              fault::FaultPlan::parse_json(plan_text.str()));
      options.fault = injector.get();
    }
    options.backpressure_bytes = backpressure_bytes;
    options.shed_bytes = shed_bytes;
    options.stage_sample_every = stage_sample;

    // SLO engine and flight recorder outlive the runtime (hot-path and
    // scrape callbacks hold pointers).  Every flight lane the TOOL writes
    // is registered here, before start() -- the runtime adds its worker
    // lanes inside start(), and nothing may add one after.
    std::unique_ptr<telemetry::SloEngine> slo;
    if (!slo_texts.empty()) {
      std::vector<telemetry::SloSpec> specs;
      for (const std::string& text : slo_texts) {
        telemetry::SloSpec spec;
        if (!telemetry::parse_slo_spec(text, &spec)) {
          throw std::runtime_error(
              "bad --slo (want class=NAME:p99_ms=X): " + text);
        }
        specs.push_back(std::move(spec));
      }
      slo = std::make_unique<telemetry::SloEngine>(std::move(specs),
                                                   options.max_flows);
      options.slo = slo.get();
    }
    std::unique_ptr<telemetry::FlightRecorder> flight;
    telemetry::FlightLog* health_flight = nullptr;   // server thread
    telemetry::FlightLog* tool_flight = nullptr;     // main thread
    telemetry::FlightLog* supervisor_flight = nullptr;  // probe thread
    if (!flight_dump.empty()) {
      flight = std::make_unique<telemetry::FlightRecorder>();
      tool_flight = &flight->add_writer("tool");
      health_flight = &flight->add_writer("health");
      if (supervise) supervisor_flight = &flight->add_writer("supervisor");
      options.flight = flight.get();
      if (!flight->arm_fatal_dump(flight_dump + ".fatal")) {
        std::cerr << "warning: cannot arm fatal dump at " << flight_dump
                  << ".fatal\n";
      }
    }

    // Destination resolution, shared by the udp and uring backends: with
    // no mapping at all, pair with midrr_rx's defaults (iface j ->
    // 127.0.0.1:19000+j).
    const std::uint16_t dest_base_port =
        udp_base_port != 0 ? udp_base_port
        : udp_dests.empty() ? std::uint16_t{19000}
                            : std::uint16_t{0};
    const auto parse_dests =
        [&udp_dests](
            std::unordered_map<std::string, io::UdpDestination>& out) {
          for (const std::string& spec : udp_dests) {
            const auto eq = spec.find('=');
            const auto colon = spec.rfind(':');
            if (eq == std::string::npos || colon == std::string::npos ||
                colon < eq) {
              throw std::runtime_error(
                  "bad --udp-dest (want iface=host:port): " + spec);
            }
            io::UdpDestination dest;
            dest.host = spec.substr(eq + 1, colon - eq - 1);
            dest.port = static_cast<std::uint16_t>(
                std::stoul(spec.substr(colon + 1)));
            out[spec.substr(0, eq)] = dest;
          }
        };

    // `--egress auto`: probe once at startup and report the verdict.  The
    // chosen name then flows through the normal construction below, the
    // midrr_rt_egress_backend info gauge, and /buildinfo.
    if (egress_name == "auto") {
      int probe_errno = 0;
      if (io::uring_supported() && io::uring_runtime_available(&probe_errno)) {
        egress_name = "uring";
        std::cerr << "egress: auto -> uring (io_uring_setup permitted)\n";
      } else if (!udp_dests.empty() || udp_base_port != 0) {
        egress_name = "udp";
        std::cerr << "egress: auto -> udp ("
                  << (!io::uring_supported()
                          ? "uring not built"
                          : std::string("io_uring_setup failed: ") +
                                std::strerror(probe_errno))
                  << "; udp destination configured)\n";
      } else {
        egress_name = "sim";
        std::cerr << "egress: auto -> sim ("
                  << (!io::uring_supported()
                          ? "uring not built"
                          : std::string("io_uring_setup failed: ") +
                                std::strerror(probe_errno))
                  << "; no udp destination)\n";
      }
    }

    // The egress backend outlives the runtime (stop()'s final flush and
    // the report both reach into it).  Null = the built-in sim backend.
    std::unique_ptr<io::EgressBackend> egress;
    io::UringBackend* uring = nullptr;  // set iff the uring backend is live
    if (egress_name == "udp") {
      io::UdpBackendOptions uopts;
      uopts.base_port = dest_base_port;
      uopts.max_batch = udp_batch;
      uopts.max_payload_bytes = udp_payload;
      parse_dests(uopts.dest_by_name);
      egress = std::make_unique<io::UdpBackend>(uopts);
    } else if (egress_name == "uring") {
      if (!io::uring_supported()) {
        throw std::runtime_error(
            "io_uring egress backend not built: reconfigure with "
            "-DMIDRR_WITH_URING=ON");
      }
      io::UringBackendOptions uopts;
      uopts.base_port = dest_base_port;
      uopts.max_payload_bytes = udp_payload;
      parse_dests(uopts.dest_by_name);
      // Constructed concretely (not via the factory) so the tool can hand
      // the load generator's precarved slabs to register_frame_pool below.
      auto backend = std::make_unique<io::UringBackend>(std::move(uopts));
      uring = backend.get();
      egress = std::move(backend);
    } else if (egress_name != "sim") {
      throw std::runtime_error("unknown egress backend: " + egress_name);
    }
    options.egress = egress.get();

    Runtime runtime(options);
    for (std::size_t j = 0; j < ifaces; ++j) {
      const std::string name = "if" + std::to_string(j);
      if (rate_bps > 0.0) {
        runtime.add_interface(name, RateProfile(rate_bps));
      } else {
        runtime.add_interface(name);
      }
    }
    // Each class is willing on two adjacent interfaces (wrap-around), the
    // minimal topology where miDRR's cross-interface coupling matters.
    // --flows-per-class registers whole batches under one Pi row: one
    // class-delta publish per batch, not one per flow.
    for (std::size_t i = 0; i < flows; i += flows_per_class) {
      const std::size_t batch = std::min(flows_per_class, flows - i);
      const std::size_t group = i / flows_per_class;
      RtFlowSpec spec;
      spec.weight = 1.0;
      spec.name = (flows_per_class == 1 ? "f" : "c") + std::to_string(group);
      spec.willing.push_back(static_cast<IfaceId>(group % ifaces));
      if (ifaces > 1) {
        spec.willing.push_back(static_cast<IfaceId>((group + 1) % ifaces));
      }
      runtime.control().add_members(spec, batch);
    }

    // Bind declared objectives to the ClassIds the registration above
    // interned.  A spec naming no live class stays unbound (its burn rate
    // reads 0); churn-created classes are deliberately not bound.
    if (slo != nullptr) {
      auto reader = runtime.control().reader();
      const auto guard = reader.lock();
      for (const ClassId id : guard->live) {
        const SnapshotClass& c = guard->classes[id];
        slo->bind_class(id, c.name.empty() ? "class" + std::to_string(id)
                                           : c.name);
      }
    }

    runtime.start();

    // The supervisor probes AFTER start() (worker slots exist only then).
    std::unique_ptr<fault::Supervisor> supervisor;
    std::unique_ptr<fault::AdaptiveController> adapt;
    std::unique_ptr<fault::FaultPlanRecorder> recorder;
    if (supervise) {
      supervisor = std::make_unique<fault::Supervisor>(
          runtime, fault::SupervisorOptions{}, &runtime);
      if (supervisor_flight != nullptr) {
        supervisor->set_flight_log(supervisor_flight);
      }
      // The closed loop rides the probe cadence: each probe window feeds
      // measured drain rates into the controller, which re-lowers the
      // capacities fairness sampling sees and retunes the shed watermark.
      fault::AdaptOptions aopts;
      aopts.target_p99_ns = static_cast<SimDuration>(
          shed_target_p99_ms * 1e6 + 0.5);
      adapt = std::make_unique<fault::AdaptiveController>(runtime, aopts);
      runtime.set_capacity_overlay(adapt.get());
      supervisor->set_adaptive(adapt.get());
      if (!record_faults_file.empty()) {
        recorder = std::make_unique<fault::FaultPlanRecorder>(1);
        supervisor->set_recorder(recorder.get());
        adapt->set_recorder(recorder.get());
      }
      if (telemetry_on) {
        supervisor->register_metrics(registry);
        adapt->register_metrics(registry);
      }
      supervisor->start();
    }

    std::unique_ptr<telemetry::FairnessDriftSampler> sampler;
    std::unique_ptr<telemetry::TelemetryServer> server;
    if (telemetry_on) {
      sampler =
          std::make_unique<telemetry::FairnessDriftSampler>(runtime, registry);
      sampler->start();
    }
    if (telemetry_port >= 0) {
      telemetry::TelemetryServer::Options sopts;
      sopts.port = static_cast<std::uint16_t>(telemetry_port);
      server = std::make_unique<telemetry::TelemetryServer>(sopts);
      server->serve_registry(registry);
      {
        // Health reflects supervision: 503 while any link is suspect or
        // dead, so orchestrators see degradation (and recovery) live.
        // The detail lines always include the egress backend's view
        // (syscalls, hard send errors) -- sustained send errors are what
        // drive the supervisor's suspect verdicts under real I/O.
        fault::Supervisor* sup = supervisor.get();  // may be null
        fault::AdaptiveController* ad = adapt.get();  // may be null
        Runtime* rt = &runtime;
        telemetry::FlightRecorder* fr = flight.get();  // may be null
        telemetry::FlightLog* health_log = health_flight;
        // Degrade-edge latch: the post-mortem is written on the healthy ->
        // degraded TRANSITION, not on every probe of a flapping state.
        auto was_degraded = std::make_shared<std::atomic<bool>>(false);
        const std::string dump_path = flight_dump;
        server->handle("/healthz", [sup, ad, rt, fr, health_log, was_degraded,
                                    dump_path](const http::HttpRequest&) {
          telemetry::HandlerResult r;
          std::ostringstream body;
          if (sup != nullptr) {
            for (std::size_t j = 0; j < rt->iface_count(); ++j) {
              const fault::LinkState state =
                  sup->link_state(static_cast<IfaceId>(j));
              if (state != fault::LinkState::kHealthy) {
                r.status = 503;
                body << rt->iface_name(static_cast<IfaceId>(j)) << ": "
                     << fault::to_string(state) << "\n";
              }
            }
          }
          const bool degraded_now = r.status != 200;
          if (fr != nullptr &&
              degraded_now != was_degraded->exchange(degraded_now)) {
            const std::uint64_t t = static_cast<std::uint64_t>(rt->now_ns());
            if (health_log != nullptr) {
              health_log->log(t, telemetry::FlightCategory::kHealth,
                              degraded_now
                                  ? telemetry::FlightCode::kHealthDegraded
                                  : telemetry::FlightCode::kHealthRecovered);
            }
            if (degraded_now) {
              fr->dump_to_file(dump_path, "healthz degraded", t);
            }
          }
          const RuntimeStats s = rt->stats();
          std::ostringstream detail;
          detail << "egress: " << rt->egress().name() << " syscalls="
                 << s.io_syscalls << " send_errors=" << s.io_send_errors;
          for (std::size_t j = 0; j < rt->iface_count(); ++j) {
            const std::uint64_t errs =
                rt->iface_send_errors(static_cast<IfaceId>(j));
            if (errs != 0) {
              detail << " " << rt->iface_name(static_cast<IfaceId>(j))
                     << "_errors=" << errs;
            }
          }
          if (ad != nullptr) {
            // Shedding state rides along so orchestrators can tell "503
            // because a link died" apart from "200 but actively shedding
            // to hold the latency target".
            detail << "\nshedding active=" << (ad->shed_active() ? 1 : 0)
                   << " shed_bytes=" << rt->shed_bytes()
                   << " target_p99_ms="
                   << static_cast<double>(ad->target_p99_ns()) / 1e6;
          }
          r.body = (r.status == 200 ? "ok\n" : "degraded\n" + body.str()) +
                   detail.str() + "\n";
          return r;
        });
      }
      telemetry::FairnessDriftSampler* drift = sampler.get();
      Runtime* rt = &runtime;
      server->handle("/flows", [rt, drift](const http::HttpRequest&) {
        telemetry::HandlerResult r;
        r.content_type = "application/json";
        r.body = telemetry::flows_json(rt->fairness_sample(), drift->last());
        return r;
      });
      // The interned class table: one row per live class (the unit the
      // control plane publishes and the hierarchical scheduler serves).
      ControlPlane* control = &runtime.control();
      server->handle("/classes", [control](const http::HttpRequest&) {
        telemetry::HandlerResult r;
        r.content_type = "application/json";
        auto reader = control->reader();
        const auto guard = reader.lock();
        std::ostringstream body;
        body << "{\"classes\":" << guard->live.size()
             << ",\"flows\":" << control->flow_count()
             << ",\"version\":" << guard->version << ",\"rows\":[";
        bool first = true;
        for (const ClassId id : guard->live) {
          const SnapshotClass& c = guard->classes[id];
          if (!first) body << ',';
          first = false;
          body << "{\"id\":" << id << ",\"name\":\""
               << (c.name.empty() ? "class" + std::to_string(id) : c.name)
               << "\",\"weight\":" << c.weight
               << ",\"members\":" << c.members << ",\"quarantined\":"
               << (c.quarantined ? "true" : "false") << ",\"willing\":[";
          for (std::size_t k = 0; k < c.willing.size(); ++k) {
            if (k != 0) body << ',';
            body << c.willing[k];
          }
          body << "],\"shards\":[";
          for (std::size_t k = 0; k < c.shards.size(); ++k) {
            if (k != 0) body << ',';
            body << c.shards[k];
          }
          body << "]}";
        }
        body << "]}";
        r.body = body.str();
        return r;
      });
      // Build facts plus the one runtime fact orchestrators ask for:
      // which egress backend `--egress auto` (or the operator) picked.
      const std::string egress_label = runtime.egress().name();
      server->handle("/buildinfo", [egress_label](const http::HttpRequest&) {
        telemetry::HandlerResult r;
        r.content_type = "application/json";
        std::string body = telemetry::build_info_json();
        body.insert(body.rfind('}'),
                    ",\"egress\":\"" + egress_label + "\"");
        r.body = body;
        return r;
      });
      if (slo != nullptr) {
        telemetry::SloEngine* slo_ptr = slo.get();
        Runtime* rt2 = &runtime;
        server->handle("/slo", [slo_ptr, rt2](const http::HttpRequest&) {
          telemetry::HandlerResult r;
          r.content_type = "application/json";
          r.body =
              slo_ptr->json(static_cast<std::uint64_t>(rt2->now_ns()));
          return r;
        });
      }
      if (adapt != nullptr) {
        // Live view of the closed loop, plus the retune knob: GET
        // /adapt?target_p99_ms=X moves the latency target without a
        // restart (0 disarms adaptive shedding).
        fault::AdaptiveController* ad = adapt.get();
        Runtime* rt3 = &runtime;
        server->handle("/adapt", [ad, rt3](const http::HttpRequest& req) {
          telemetry::HandlerResult r;
          r.content_type = "application/json";
          const std::string key = "target_p99_ms=";
          const std::size_t query = req.target.find('?');
          if (query != std::string::npos) {
            const std::size_t at = req.target.find(key, query + 1);
            if (at != std::string::npos) {
              try {
                const double ms =
                    std::stod(req.target.substr(at + key.size()));
                if (ms < 0.0 || !std::isfinite(ms)) throw std::out_of_range("");
                ad->set_target_p99_ns(
                    static_cast<SimDuration>(ms * 1e6 + 0.5));
              } catch (const std::exception&) {
                r.status = 400;
                r.content_type = "text/plain";
                r.body = "bad target_p99_ms\n";
                return r;
              }
            }
          }
          std::ostringstream body;
          body << "{\"target_p99_ns\":" << ad->target_p99_ns()
               << ",\"shed_bytes\":" << rt3->shed_bytes()
               << ",\"shedding_active\":"
               << (ad->shed_active() ? "true" : "false")
               << ",\"windowed_p99_ns\":" << ad->windowed_p99_ns()
               << ",\"correction\":" << ad->correction()
               << ",\"updates\":" << ad->updates()
               << ",\"retunes\":" << ad->retunes()
               << ",\"shed_engages\":" << ad->shed_engages()
               << ",\"droop_enters\":" << ad->droop_enters()
               << ",\"droop_exits\":" << ad->droop_exits()
               << ",\"ifaces\":[";
          for (std::size_t j = 0; j < rt3->iface_count(); ++j) {
            const auto id = static_cast<IfaceId>(j);
            if (j != 0) body << ',';
            body << "{\"name\":\"" << rt3->iface_name(id)
                 << "\",\"drift_ratio\":" << ad->drift_ratio(id)
                 << ",\"drooped\":" << (ad->drooped(id) ? "true" : "false")
                 << "}";
          }
          body << "]}";
          r.body = body.str();
          return r;
        });
      }
      server->start();
      std::cerr << "telemetry: http://127.0.0.1:" << server->port()
                << "/metrics\n";
    }

    LoadGeneratorOptions load;
    load.producers = producers;
    load.packet_bytes = packet_bytes;
    load.payload = payload;
    load.rate_pps = load_pps;
    if (uring != nullptr &&
        payload == LoadGeneratorOptions::PayloadMode::kPooled) {
      // Zero-copy prerequisites: headroom so the wire header prepends in
      // place, and a frozen slab directory so every slab can be registered
      // as a fixed buffer exactly once, below.
      load.frame_headroom = io::kWireScratchBytes;
      load.pool.precarve = true;
    }
    LoadGenerator generator(runtime, load);
    if (telemetry_on) generator.register_pool_metrics(registry);
    if (uring != nullptr) {
      for (std::size_t p = 0; p < producers; ++p) {
        if (const net::FramePool* fp = generator.frame_pool(p)) {
          uring->register_frame_pool(*fp);
        }
      }
    }

    const auto t0 = std::chrono::steady_clock::now();
    generator.start();

    // Optional control-plane churn: add/retire flows and flip preferences
    // while the datapath runs (this is the TSan soak's job).
    std::uint64_t churn_ops = 0;
    const auto deadline =
        t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(duration_s));
    if (churn) {
      auto& control = runtime.control();
      std::vector<FlowId> extra;
      while (std::chrono::steady_clock::now() < deadline) {
        RtFlowSpec spec;
        spec.name = "churn" + std::to_string(churn_ops);
        spec.willing.push_back(static_cast<IfaceId>(churn_ops % ifaces));
        const FlowId id = control.add_flow(spec);
        control.set_weight(id, 2.0);
        control.set_willing(
            id, static_cast<IfaceId>((churn_ops + 1) % ifaces), true);
        extra.push_back(id);
        if (extra.size() > 8) {
          control.remove_flow(extra.front());
          extra.erase(extra.begin());
        }
        ++churn_ops;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    } else {
      std::this_thread::sleep_until(deadline);
    }

    generator.stop();
    if (payload == LoadGeneratorOptions::PayloadMode::kPooled) {
      // Let the workers drain everything the generator offered so every
      // pooled frame is released before we read the leak accounting
      // (acquired == released).  Bounded: unpaced drains in microseconds;
      // a paced run may legitimately time out with frames still queued.
      const auto drain_deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(2);
      while (std::chrono::steady_clock::now() < drain_deadline) {
        const RuntimeStats s = runtime.stats();
        // Dequeue is no longer terminal: a frame stays live while its
        // packet sits in an egress requeue stash (io_pending) or inside a
        // completion-driven backend awaiting its CQE (io_inflight), so
        // quiescence also needs the egress split to close with both
        // residual terms at zero: dequeued == sent + io_drops.  Under
        // --egress sim, sent == dequeued and this reduces to the old
        // check.
        if (s.offered == s.enqueued + s.fanin_drops &&
            s.enqueued == s.dequeued + s.tail_drops &&
            s.dequeued == s.sent + s.io_drops) {
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    if (server != nullptr) server->stop();
    if (sampler != nullptr) sampler->stop();
    if (supervisor != nullptr) supervisor->stop();
    if (adapt != nullptr) {
      // Probing has stopped; close any droop episode still open so the
      // recorded plan carries its full span.
      adapt->finalize(runtime.now_ns());
    }
    if (recorder != nullptr) {
      if (recorder->write_file(record_faults_file)) {
        std::cerr << "faults: " << recorder->event_count() << " events, "
                  << recorder->note_count() << " notes -> "
                  << record_faults_file << "\n";
      } else {
        std::cerr << "warning: cannot write " << record_faults_file << "\n";
      }
    }
    runtime.stop();
    if (flight != nullptr) {
      // stop() flushed or counted every parked egress tail, so the egress
      // split must close exactly; a mismatch is an accounting bug worth a
      // post-mortem.  Either way the run ends with a dump on disk -- the
      // quiescent timeline is the artifact CI archives.
      const RuntimeStats s = runtime.stats();
      const std::uint64_t now =
          static_cast<std::uint64_t>(runtime.now_ns());
      if (s.dequeued != s.sent + s.io_drops) {
        tool_flight->log(now, telemetry::FlightCategory::kHealth,
                         telemetry::FlightCode::kConservationTrip, s.dequeued,
                         s.sent + s.io_drops);
        flight->dump_to_file(flight_dump, "conservation identity tripped",
                             now);
        std::cerr << "flight: conservation identity tripped (dequeued="
                  << s.dequeued << " != sent+io_drops="
                  << s.sent + s.io_drops << "), dump -> " << flight_dump
                  << "\n";
      } else {
        flight->dump_to_file(flight_dump, "shutdown snapshot", now);
      }
    }
    if (!trace_out.empty()) {
      telemetry::ChromeTraceBuilder builder;
      builder.set_process_name(1, "midrr_rt");
      runtime.export_trace(builder);
      if (injector != nullptr) {
        builder.set_process_name(2, "fault injector");
        injector->export_trace(builder, 2);
      }
      if (supervisor != nullptr) {
        builder.set_process_name(3, "supervisor");
        supervisor->export_trace(builder, 3);
      }
      std::ofstream trace_file(trace_out);
      if (!trace_file) {
        std::cerr << "error: cannot write " << trace_out << "\n";
        return 1;
      }
      builder.write(trace_file);
      std::cerr << "trace: " << builder.event_count() << " events -> "
                << trace_out << "\n";
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    const RuntimeStats stats = runtime.stats();
    const PacketPoolStats pool = generator.pool_stats();
    const bool pooled =
        payload == LoadGeneratorOptions::PayloadMode::kPooled;
    const double pps = static_cast<double>(stats.dequeued) / elapsed;
    const double gbps_out =
        static_cast<double>(stats.dequeued_bytes) * 8.0 / elapsed / 1e9;

    if (json) {
      std::ostringstream out;
      out << "{"
          << "\"policy\":\"" << to_string(policy) << "\","
          << "\"flows\":" << flows << ","
          << "\"flows_per_class\":" << flows_per_class << ","
          << "\"classes\":" << runtime.control().class_count() << ","
          << "\"ifaces\":" << ifaces << ","
          << "\"workers\":" << workers << ","
          << "\"shards\":" << shards << ","
          << "\"producers\":" << producers << ","
          << "\"duration_s\":" << elapsed << ","
          << "\"offered\":" << stats.offered << ","
          << "\"ring_rejects\":" << stats.ring_rejects << ","
          << "\"enqueued\":" << stats.enqueued << ","
          << "\"dequeued\":" << stats.dequeued << ","
          << "\"dequeued_bytes\":" << stats.dequeued_bytes << ","
          << "\"fanin_drops\":" << stats.fanin_drops << ","
          << "\"tail_drops\":" << stats.tail_drops << ","
          << "\"straggler_drops\":" << stats.straggler_drops << ","
          << "\"shed_drops\":" << stats.shed_drops << ","
          << "\"backpressure_rejects\":" << stats.backpressure_rejects << ","
          << "\"quarantine_rejects\":" << stats.quarantine_rejects << ","
          << "\"worker_restarts\":" << stats.worker_restarts << ","
          << "\"churn_ops\":" << churn_ops << ","
          << "\"metrics_series\":" << registry.series_count() << ","
          << "\"egress\":{"
          << "\"backend\":\"" << runtime.egress().name() << "\","
          << "\"sent\":" << stats.sent << ","
          << "\"sent_bytes\":" << stats.sent_bytes << ","
          << "\"io_requeued\":" << stats.io_requeued << ","
          << "\"io_drops\":" << stats.io_drops << ","
          << "\"io_pending\":" << stats.io_pending << ","
          << "\"io_inflight\":" << stats.io_inflight << ","
          << "\"send_errors\":" << stats.io_send_errors << ","
          << "\"syscalls\":" << stats.io_syscalls;
      if (uring != nullptr) {
        std::uint64_t fixed = 0, fallback = 0, requeues = 0, shorts = 0;
        std::uint64_t notifs = 0, copied = 0;
        for (std::size_t j = 0; j < ifaces; ++j) {
          const auto id = static_cast<IfaceId>(j);
          fixed += uring->fixed_sends(id);
          fallback += uring->fallback_sends(id);
          requeues += uring->cqe_requeues(id);
          shorts += uring->short_writes(id);
          notifs += uring->zc_notifs(id);
          copied += uring->zc_copied(id);
        }
        out << ",\"uring\":{"
            << "\"zerocopy_active\":"
            << (uring->zerocopy_active() ? "true" : "false") << ","
            << "\"registered_buffers\":" << uring->registered_buffers() << ","
            << "\"fixed_sends\":" << fixed << ","
            << "\"fallback_sends\":" << fallback << ","
            << "\"cqe_requeues\":" << requeues << ","
            << "\"short_writes\":" << shorts << ","
            << "\"zc_notifs\":" << notifs << ","
            << "\"zc_copied\":" << copied << ","
            << "\"cq_overflows\":" << uring->cq_overflows()
            << "}";
      }
      out << "},";
      if (const telemetry::StageTracer* tracer = runtime.stage_tracer()) {
        LatencyHistogram merged[telemetry::kStageCount];
        LatencyHistogram e2e;
        for (std::size_t j = 0; j < ifaces; ++j) {
          for (std::size_t st = 0; st < telemetry::kStageCount; ++st) {
            merged[st].merge_from(tracer->stage_grid(
                static_cast<IfaceId>(j), static_cast<telemetry::Stage>(st)));
          }
          e2e.merge_from(tracer->e2e_grid(static_cast<IfaceId>(j)));
        }
        out << "\"stage\":{"
            << "\"sample_every\":" << tracer->sample_every() << ","
            << "\"started\":" << tracer->started() << ","
            << "\"completed\":" << tracer->completed() << ","
            << "\"lost\":" << tracer->lost() << ","
            << "\"dropped\":" << tracer->dropped() << ","
            << "\"reconciliation_error\":" << tracer->reconciliation_error();
        for (std::size_t st = 0; st < telemetry::kStageCount; ++st) {
          const char* name =
              telemetry::to_string(static_cast<telemetry::Stage>(st));
          out << ",\"" << name << "_p50_ns\":" << merged[st].quantile(0.50)
              << ",\"" << name << "_p99_ns\":" << merged[st].quantile(0.99);
        }
        out << ",\"e2e_p50_ns\":" << e2e.quantile(0.50)
            << ",\"e2e_p99_ns\":" << e2e.quantile(0.99)
            << "},";
      }
      if (slo != nullptr) {
        out << "\"slo\":"
            << slo->json(static_cast<std::uint64_t>(runtime.now_ns()))
            << ",";
      }
      if (flight != nullptr) {
        out << "\"flight\":{"
            << "\"events\":" << flight->events_logged() << ","
            << "\"dumps\":" << flight->dumps() << ","
            << "\"dump_path\":\"" << flight_dump << "\"},";
      }
      if (injector != nullptr) {
        out << "\"fault\":{"
            << "\"ingress_drops\":" << injector->ingress_drops() << ","
            << "\"ingress_dups\":" << injector->ingress_dups() << ","
            << "\"ingress_delays\":" << injector->ingress_delays() << ","
            << "\"pool_rejects\":" << injector->pool_rejects() << ","
            << "\"worker_stalls\":" << injector->stalls_entered() << ","
            << "\"iface_transitions\":" << injector->iface_transitions()
            << "},";
      }
      if (supervisor != nullptr) {
        out << "\"supervisor\":{"
            << "\"link_transitions\":" << supervisor->transitions() << ","
            << "\"restarts_attempted\":" << supervisor->restarts_attempted()
            << ","
            << "\"restarts_succeeded\":" << supervisor->restarts_succeeded()
            << ","
            << "\"restarts_refused\":" << supervisor->restarts_refused() << ","
            << "\"clustering_checks\":" << supervisor->clustering_checks()
            << ","
            << "\"clustering_violations\":"
            << supervisor->clustering_violations() << ","
            << "\"verdict_sequence\":[";
        const std::vector<std::string> verdicts =
            supervisor->verdict_sequence();
        for (std::size_t i = 0; i < verdicts.size(); ++i) {
          if (i != 0) out << ',';
          out << '"' << verdicts[i] << '"';
        }
        out << "]},";
      }
      if (adapt != nullptr) {
        out << "\"adapt\":{"
            << "\"target_p99_ns\":" << adapt->target_p99_ns() << ","
            << "\"shed_bytes\":" << runtime.shed_bytes() << ","
            << "\"shedding_active\":"
            << (adapt->shed_active() ? "true" : "false") << ","
            << "\"windowed_p99_ns\":" << adapt->windowed_p99_ns() << ","
            << "\"correction\":" << adapt->correction() << ","
            << "\"updates\":" << adapt->updates() << ","
            << "\"retunes\":" << adapt->retunes() << ","
            << "\"shed_engages\":" << adapt->shed_engages() << ","
            << "\"droop_enters\":" << adapt->droop_enters() << ","
            << "\"droop_exits\":" << adapt->droop_exits() << ","
            << "\"drift\":[";
        for (std::size_t j = 0; j < ifaces; ++j) {
          const auto id = static_cast<IfaceId>(j);
          if (j != 0) out << ',';
          out << "{\"iface\":\"" << runtime.iface_name(id)
              << "\",\"ratio\":" << adapt->drift_ratio(id)
              << ",\"drooped\":" << (adapt->drooped(id) ? "true" : "false")
              << "}";
        }
        out << "]},";
      }
      if (pooled) {
        out << "\"pool\":{"
            << "\"slabs\":" << pool.slabs << ","
            << "\"capacity_slots\":" << pool.capacity_slots << ","
            << "\"acquired\":" << pool.acquired << ","
            << "\"released\":" << pool.released << ","
            << "\"outstanding\":" << pool.outstanding << ","
            << "\"misses\":" << pool.misses << ","
            << "\"cross_thread_returns\":" << pool.cross_thread_returns << ","
            << "\"overflow_returns\":" << pool.overflow_returns
            << "},";
      }
      out
          << "\"pps\":" << pps << ","
          << "\"gbps\":" << gbps_out << ","
          << "\"latency_p50_ns\":" << stats.latency_p50_ns << ","
          << "\"latency_p90_ns\":" << stats.latency_p90_ns << ","
          << "\"latency_p99_ns\":" << stats.latency_p99_ns << ","
          << "\"latency_p999_ns\":" << stats.latency_p999_ns << ","
          << "\"latency_mean_ns\":" << stats.latency_mean_ns
          << "}";
      std::cout << out.str() << "\n";
    } else {
      std::cout << "midrr_rt: " << to_string(policy) << ", " << flows
                << " flows in " << runtime.control().class_count()
                << " classes x " << ifaces << " ifaces, " << workers
                << " workers / " << shards << " shards, " << elapsed
                << " s\n"
                << "  offered   " << stats.offered << " pkts ("
                << stats.ring_rejects << " ring rejects)\n"
                << "  dequeued  " << stats.dequeued << " pkts  ("
                << pps / 1e6 << " Mpps, " << gbps_out << " Gb/s)\n"
                << "  drops     " << stats.fanin_drops << " fan-in, "
                << stats.tail_drops << " tail, " << stats.straggler_drops
                << " straggler, " << stats.shed_drops << " shed ("
                << stats.backpressure_rejects << " backpressure rejects, "
                << stats.quarantine_rejects << " quarantine rejects)\n"
                << "  egress    " << runtime.egress().name() << ": "
                << stats.sent << " sent, " << stats.io_requeued
                << " requeue events, " << stats.io_drops << " io drops, "
                << stats.io_pending << " pending, " << stats.io_inflight
                << " inflight, " << stats.io_syscalls << " syscalls, "
                << stats.io_send_errors << " send errors\n";
      if (uring != nullptr) {
        std::uint64_t fixed = 0, fallback = 0;
        for (std::size_t j = 0; j < ifaces; ++j) {
          fixed += uring->fixed_sends(static_cast<IfaceId>(j));
          fallback += uring->fallback_sends(static_cast<IfaceId>(j));
        }
        std::cout << "  uring     " << fixed << " zero-copy sends / "
                  << fallback << " fallback sends, "
                  << uring->registered_buffers() << " registered buffers, "
                  << uring->cq_overflows() << " cq overflows (zerocopy "
                  << (uring->zerocopy_active() ? "active" : "inactive")
                  << ")\n";
      }
      if (churn) std::cout << "  churn     " << churn_ops << " control ops\n";
      if (injector != nullptr) {
        std::cout << "  faults    " << injector->ingress_drops() << " drops, "
                  << injector->ingress_dups() << " dups, "
                  << injector->ingress_delays() << " delays, "
                  << injector->pool_rejects() << " pool rejects, "
                  << injector->stalls_entered() << " stalls, "
                  << injector->iface_transitions() << " iface transitions\n";
      }
      if (supervisor != nullptr) {
        std::cout << "  supervise " << supervisor->transitions()
                  << " link transitions, " << supervisor->restarts_succeeded()
                  << "/" << supervisor->restarts_attempted()
                  << " restarts, clustering "
                  << supervisor->clustering_checks() << " checks / "
                  << supervisor->clustering_violations() << " violations\n";
      }
      if (adapt != nullptr) {
        std::cout << "  adapt     " << adapt->updates() << " updates, "
                  << adapt->retunes() << " retunes (shed_bytes="
                  << runtime.shed_bytes() << ", "
                  << adapt->shed_engages() << " engages), droop "
                  << adapt->droop_enters() << " enters / "
                  << adapt->droop_exits() << " exits\n";
      }
      if (pooled) {
        std::cout << "  pool      " << pool.acquired << " acquired / "
                  << pool.released << " released (" << pool.outstanding
                  << " outstanding), " << pool.misses << " misses, "
                  << pool.cross_thread_returns << " cross-thread returns ("
                  << pool.overflow_returns << " overflowed), " << pool.slabs
                  << " slabs\n";
      }
      std::cout << "  latency   p50 " << stats.latency_p50_ns / 1e3
                << " us, p90 " << stats.latency_p90_ns / 1e3 << " us, p99 "
                << stats.latency_p99_ns / 1e3 << " us, p99.9 "
                << stats.latency_p999_ns / 1e3 << " us (mean "
                << stats.latency_mean_ns / 1e3 << " us, n="
                << stats.latency_count << ")\n";
      if (const telemetry::StageTracer* tracer = runtime.stage_tracer()) {
        LatencyHistogram merged[telemetry::kStageCount];
        for (std::size_t j = 0; j < ifaces; ++j) {
          for (std::size_t st = 0; st < telemetry::kStageCount; ++st) {
            merged[st].merge_from(tracer->stage_grid(
                static_cast<IfaceId>(j), static_cast<telemetry::Stage>(st)));
          }
        }
        std::cout << "  stages    1/" << tracer->sample_every() << " sampled: "
                  << tracer->completed() << " completed, " << tracer->lost()
                  << " lost, " << tracer->dropped() << " dropped | p99 ring "
                  << static_cast<double>(merged[0].quantile(0.99)) / 1e3
                  << " us, queue "
                  << static_cast<double>(merged[1].quantile(0.99)) / 1e3
                  << " us, egress "
                  << static_cast<double>(merged[2].quantile(0.99)) / 1e3
                  << " us\n";
      }
      if (slo != nullptr) {
        const std::uint64_t now =
            static_cast<std::uint64_t>(runtime.now_ns());
        for (std::size_t i = 0; i < slo->specs().size(); ++i) {
          std::cout << "  slo       " << slo->specs()[i].class_name
                    << " p99<"
                    << static_cast<double>(slo->specs()[i].p99_target_ns) / 1e6
                    << "ms: " << slo->violations(i) << "/" << slo->samples(i)
                    << " violations, burn short " << slo->short_burn(i, now)
                    << " / long " << slo->long_burn(i, now) << "\n";
        }
      }
      if (flight != nullptr) {
        std::cout << "  flight    " << flight->events_logged()
                  << " events, " << flight->dumps() << " dump(s) -> "
                  << flight_dump << "\n";
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
