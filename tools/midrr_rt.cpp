// midrr_rt: drive the real-time runtime from the command line.
//
//   midrr_rt --flows 1024 --ifaces 8 --workers 4 --duration 10
//
// Builds a runtime with the requested topology (interfaces optionally
// paced), registers `--flows` flows round-robin-willing across the
// interfaces, saturates it with the load generator for `--duration`
// seconds, and prints throughput plus enqueue->dequeue latency
// percentiles.  With `--json` the report is a single JSON object on
// stdout (what bench/rt_throughput collects into BENCH_rt.json).
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/scenario_text.hpp"  // parse_rate_bps
#include "runtime/load_generator.hpp"
#include "runtime/runtime.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/exporter.hpp"
#include "telemetry/fairness_drift.hpp"
#include "telemetry/metrics.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: midrr_rt [options]\n"
         "  --flows N       flows, willing on 2 interfaces each (default 64)\n"
         "  --ifaces N      interfaces (default 4)\n"
         "  --workers N     worker threads (default 1)\n"
         "  --shards N      scheduler shards (default = workers)\n"
         "  --producers N   load-generator threads (default 1)\n"
         "  --duration S    seconds to run (default 2)\n"
         "  --rate R        per-interface capacity, e.g. 100mbps"
         " (default: unpaced)\n"
         "  --packet B      packet size in bytes (default 1000)\n"
         "  --payload M     none|heap|pooled: what each packet carries\n"
         "                  (default none; pooled uses per-producer frame\n"
         "                  pools with cross-thread recycling)\n"
         "  --fanin-batch N max packets per ingress ring per fan-in pass\n"
         "                  (default 1024)\n"
         "  --burst-bytes B max bytes per dequeue burst (default 65536)\n"
         "  --policy P      midrr|drr|wfq|rr|fifo|priority (default midrr)\n"
         "  --churn         exercise the control plane during the run\n"
         "  --json          machine-readable report on stdout\n"
         "  --telemetry P   serve /metrics, /healthz, /flows on 127.0.0.1:P\n"
         "                  (0 = ephemeral; bound port printed to stderr)\n"
         "  --trace-out F   capture scheduler events + worker spans, write\n"
         "                  Chrome trace-event JSON to F after the run\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace midrr;
  using namespace midrr::rt;

  std::size_t flows = 64;
  std::size_t ifaces = 4;
  std::size_t workers = 1;
  std::size_t shards = 0;  // 0 = match workers
  std::size_t producers = 1;
  double duration_s = 2.0;
  double rate_bps = 0.0;
  std::uint32_t packet_bytes = 1000;
  auto payload = LoadGeneratorOptions::PayloadMode::kNone;
  std::size_t fanin_batch = 0;     // 0 = runtime default
  std::uint64_t burst_bytes = 0;   // 0 = runtime default
  Policy policy = Policy::kMiDrr;
  bool churn = false;
  bool json = false;
  int telemetry_port = -1;  // < 0 = no HTTP endpoint
  std::string trace_out;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string key = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw std::runtime_error("missing value for " + key);
        return argv[++i];
      };
      if (key == "--flows") flows = std::stoul(value());
      else if (key == "--ifaces") ifaces = std::stoul(value());
      else if (key == "--workers") workers = std::stoul(value());
      else if (key == "--shards") shards = std::stoul(value());
      else if (key == "--producers") producers = std::stoul(value());
      else if (key == "--duration") duration_s = std::stod(value());
      else if (key == "--rate") rate_bps = parse_rate_bps(value());
      else if (key == "--packet")
        packet_bytes = static_cast<std::uint32_t>(std::stoul(value()));
      else if (key == "--payload") {
        const std::string mode = value();
        if (mode == "none") payload = LoadGeneratorOptions::PayloadMode::kNone;
        else if (mode == "heap")
          payload = LoadGeneratorOptions::PayloadMode::kHeap;
        else if (mode == "pooled")
          payload = LoadGeneratorOptions::PayloadMode::kPooled;
        else throw std::runtime_error("unknown payload mode: " + mode);
      }
      else if (key == "--fanin-batch") fanin_batch = std::stoul(value());
      else if (key == "--burst-bytes") burst_bytes = std::stoull(value());
      else if (key == "--policy") policy = parse_policy(value());
      else if (key == "--churn") churn = true;
      else if (key == "--json") json = true;
      else if (key == "--telemetry") telemetry_port = std::stoi(value());
      else if (key == "--trace-out") trace_out = value();
      else return usage();
    }
    if (flows == 0 || ifaces == 0 || duration_s <= 0.0) return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return usage();
  }

  if (shards == 0) shards = workers;

  RuntimeOptions options;
  options.policy = policy;
  options.workers = workers;
  options.shards = shards;
  options.producers = producers;
  if (fanin_batch != 0) options.fanin_batch = fanin_batch;
  if (burst_bytes != 0) options.burst_bytes = burst_bytes;
  // Flow ids are never reused, so the arena must cover every churn add
  // (one per ~1 ms of runtime) on top of the static flows.
  options.max_flows =
      flows + 16 +
      (churn ? static_cast<std::size_t>(duration_s * 1200.0) + 64 : 0);

  // The registry outlives the runtime (its callbacks point into it).
  telemetry::MetricsRegistry registry;
  const bool telemetry_on = telemetry_port >= 0 || !trace_out.empty();
  if (telemetry_on) {
    options.metrics = &registry;
    if (!trace_out.empty()) {
      options.trace_events = 64 * 1024;  // per shard
      options.trace_spans = 64 * 1024;   // per worker
    }
  }

  try {
    Runtime runtime(options);
    for (std::size_t j = 0; j < ifaces; ++j) {
      const std::string name = "if" + std::to_string(j);
      if (rate_bps > 0.0) {
        runtime.add_interface(name, RateProfile(rate_bps));
      } else {
        runtime.add_interface(name);
      }
    }
    // Each flow is willing on two adjacent interfaces (wrap-around), the
    // minimal topology where miDRR's cross-interface coupling matters.
    for (std::size_t i = 0; i < flows; ++i) {
      RtFlowSpec spec;
      spec.weight = 1.0;
      spec.name = "f" + std::to_string(i);
      spec.willing.push_back(static_cast<IfaceId>(i % ifaces));
      if (ifaces > 1) {
        spec.willing.push_back(static_cast<IfaceId>((i + 1) % ifaces));
      }
      runtime.control().add_flow(spec);
    }

    runtime.start();

    std::unique_ptr<telemetry::FairnessDriftSampler> sampler;
    std::unique_ptr<telemetry::TelemetryServer> server;
    if (telemetry_on) {
      sampler =
          std::make_unique<telemetry::FairnessDriftSampler>(runtime, registry);
      sampler->start();
    }
    if (telemetry_port >= 0) {
      telemetry::TelemetryServer::Options sopts;
      sopts.port = static_cast<std::uint16_t>(telemetry_port);
      server = std::make_unique<telemetry::TelemetryServer>(sopts);
      server->serve_registry(registry);
      telemetry::FairnessDriftSampler* drift = sampler.get();
      Runtime* rt = &runtime;
      server->handle("/flows", [rt, drift](const http::HttpRequest&) {
        telemetry::HandlerResult r;
        r.content_type = "application/json";
        r.body = telemetry::flows_json(rt->fairness_sample(), drift->last());
        return r;
      });
      server->start();
      std::cerr << "telemetry: http://127.0.0.1:" << server->port()
                << "/metrics\n";
    }

    LoadGeneratorOptions load;
    load.producers = producers;
    load.packet_bytes = packet_bytes;
    load.payload = payload;
    LoadGenerator generator(runtime, load);
    if (telemetry_on) generator.register_pool_metrics(registry);

    const auto t0 = std::chrono::steady_clock::now();
    generator.start();

    // Optional control-plane churn: add/retire flows and flip preferences
    // while the datapath runs (this is the TSan soak's job).
    std::uint64_t churn_ops = 0;
    const auto deadline =
        t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(duration_s));
    if (churn) {
      auto& control = runtime.control();
      std::vector<FlowId> extra;
      while (std::chrono::steady_clock::now() < deadline) {
        RtFlowSpec spec;
        spec.name = "churn" + std::to_string(churn_ops);
        spec.willing.push_back(static_cast<IfaceId>(churn_ops % ifaces));
        const FlowId id = control.add_flow(spec);
        control.set_weight(id, 2.0);
        control.set_willing(
            id, static_cast<IfaceId>((churn_ops + 1) % ifaces), true);
        extra.push_back(id);
        if (extra.size() > 8) {
          control.remove_flow(extra.front());
          extra.erase(extra.begin());
        }
        ++churn_ops;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    } else {
      std::this_thread::sleep_until(deadline);
    }

    generator.stop();
    if (payload == LoadGeneratorOptions::PayloadMode::kPooled) {
      // Let the workers drain everything the generator offered so every
      // pooled frame is released before we read the leak accounting
      // (acquired == released).  Bounded: unpaced drains in microseconds;
      // a paced run may legitimately time out with frames still queued.
      const auto drain_deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(2);
      while (std::chrono::steady_clock::now() < drain_deadline) {
        const RuntimeStats s = runtime.stats();
        if (s.offered == s.enqueued + s.fanin_drops &&
            s.enqueued == s.dequeued + s.tail_drops) {
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    if (server != nullptr) server->stop();
    if (sampler != nullptr) sampler->stop();
    runtime.stop();
    if (!trace_out.empty()) {
      telemetry::ChromeTraceBuilder builder;
      builder.set_process_name(1, "midrr_rt");
      runtime.export_trace(builder);
      std::ofstream trace_file(trace_out);
      if (!trace_file) {
        std::cerr << "error: cannot write " << trace_out << "\n";
        return 1;
      }
      builder.write(trace_file);
      std::cerr << "trace: " << builder.event_count() << " events -> "
                << trace_out << "\n";
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    const RuntimeStats stats = runtime.stats();
    const PacketPoolStats pool = generator.pool_stats();
    const bool pooled =
        payload == LoadGeneratorOptions::PayloadMode::kPooled;
    const double pps = static_cast<double>(stats.dequeued) / elapsed;
    const double gbps_out =
        static_cast<double>(stats.dequeued_bytes) * 8.0 / elapsed / 1e9;

    if (json) {
      std::ostringstream out;
      out << "{"
          << "\"policy\":\"" << to_string(policy) << "\","
          << "\"flows\":" << flows << ","
          << "\"ifaces\":" << ifaces << ","
          << "\"workers\":" << workers << ","
          << "\"shards\":" << shards << ","
          << "\"producers\":" << producers << ","
          << "\"duration_s\":" << elapsed << ","
          << "\"offered\":" << stats.offered << ","
          << "\"ring_rejects\":" << stats.ring_rejects << ","
          << "\"enqueued\":" << stats.enqueued << ","
          << "\"dequeued\":" << stats.dequeued << ","
          << "\"dequeued_bytes\":" << stats.dequeued_bytes << ","
          << "\"fanin_drops\":" << stats.fanin_drops << ","
          << "\"tail_drops\":" << stats.tail_drops << ","
          << "\"churn_ops\":" << churn_ops << ","
          << "\"metrics_series\":" << registry.series_count() << ",";
      if (pooled) {
        out << "\"pool\":{"
            << "\"slabs\":" << pool.slabs << ","
            << "\"capacity_slots\":" << pool.capacity_slots << ","
            << "\"acquired\":" << pool.acquired << ","
            << "\"released\":" << pool.released << ","
            << "\"outstanding\":" << pool.outstanding << ","
            << "\"misses\":" << pool.misses << ","
            << "\"cross_thread_returns\":" << pool.cross_thread_returns << ","
            << "\"overflow_returns\":" << pool.overflow_returns
            << "},";
      }
      out
          << "\"pps\":" << pps << ","
          << "\"gbps\":" << gbps_out << ","
          << "\"latency_p50_ns\":" << stats.latency_p50_ns << ","
          << "\"latency_p90_ns\":" << stats.latency_p90_ns << ","
          << "\"latency_p99_ns\":" << stats.latency_p99_ns << ","
          << "\"latency_p999_ns\":" << stats.latency_p999_ns << ","
          << "\"latency_mean_ns\":" << stats.latency_mean_ns
          << "}";
      std::cout << out.str() << "\n";
    } else {
      std::cout << "midrr_rt: " << to_string(policy) << ", " << flows
                << " flows x " << ifaces << " ifaces, " << workers
                << " workers / " << shards << " shards, " << elapsed
                << " s\n"
                << "  offered   " << stats.offered << " pkts ("
                << stats.ring_rejects << " ring rejects)\n"
                << "  dequeued  " << stats.dequeued << " pkts  ("
                << pps / 1e6 << " Mpps, " << gbps_out << " Gb/s)\n"
                << "  drops     " << stats.fanin_drops << " fan-in, "
                << stats.tail_drops << " tail\n";
      if (churn) std::cout << "  churn     " << churn_ops << " control ops\n";
      if (pooled) {
        std::cout << "  pool      " << pool.acquired << " acquired / "
                  << pool.released << " released (" << pool.outstanding
                  << " outstanding), " << pool.misses << " misses, "
                  << pool.cross_thread_returns << " cross-thread returns ("
                  << pool.overflow_returns << " overflowed), " << pool.slabs
                  << " slabs\n";
      }
      std::cout << "  latency   p50 " << stats.latency_p50_ns / 1e3
                << " us, p90 " << stats.latency_p90_ns / 1e3 << " us, p99 "
                << stats.latency_p99_ns / 1e3 << " us, p99.9 "
                << stats.latency_p999_ns / 1e3 << " us (mean "
                << stats.latency_mean_ns / 1e3 << " us, n="
                << stats.latency_count << ")\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
