// midrr_rx: loopback verification receiver for the UDP egress backend.
//
//   midrr_rx --ports 4 --base-port 9000 --duration 12 --json
//
// Binds one non-blocking UDP socket per "interface" (127.0.0.1:base+j),
// parses the WireHeader on every datagram, and credits each flow with the
// SCHEDULER's size_bytes from the header -- so the per-flow totals it
// prints are directly comparable to the max-min solver's ideal allocation
// and to the runtime's own sent_by_flow accounting, regardless of how
// payloads were truncated on the wire.
//
// Exit conditions (whichever comes first):
//   * --duration seconds of wall clock, or
//   * --idle-ms of silence AFTER at least one datagram arrived (so CI can
//     start the receiver first, run midrr_rt, and have the receiver exit
//     shortly after the sender finishes instead of sleeping out the full
//     window).
//
// Sequence numbers are per (port, flow): a jump forward is a gap (real
// datagram loss -- the sender rewinds sequence numbers for requeued
// packets, so transient EAGAIN pushback never shows up here), and a jump
// backward is counted as a reorder.  Loopback should show zero of both.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "io/wire.hpp"
#include "telemetry/build_info.hpp"
#include "telemetry/exporter.hpp"
#include "telemetry/metrics.hpp"
#include "util/time.hpp"

namespace {

struct FlowTally {
  std::uint64_t datagrams = 0;
  std::uint64_t credited_bytes = 0;  // sum of WireHeader::size_bytes
  std::uint64_t wire_bytes = 0;      // datagram bytes actually received
};

// Counters are relaxed atomics: the receive loop is the only writer, but
// --telemetry scrapes them live from the server thread.
struct PortTally {
  std::atomic<std::uint64_t> datagrams{0};
  std::atomic<std::uint64_t> wire_bytes{0};
  std::atomic<std::uint64_t> parse_errors{0};
  std::atomic<std::uint64_t> gaps{0};      // datagrams skipped (seq jumped)
  std::atomic<std::uint64_t> reorders{0};  // seq stepped backward
  std::map<std::uint32_t, std::uint64_t> next_seq;  // loop-owned, unscraped
};

int usage() {
  std::cerr << "usage: midrr_rx [options]\n"
               "  --ports N      UDP sockets to bind (default 4)\n"
               "  --base-port P  first port; socket j binds 127.0.0.1:P+j\n"
               "                 (default 19000)\n"
               "  --duration S   max seconds to listen (default 30)\n"
               "  --idle-ms M    exit after M ms of silence once traffic has\n"
               "                 been seen (0 = wait out --duration;\n"
               "                 default 1000)\n"
               "  --json         machine-readable report on stdout\n"
               "  --telemetry P  serve Prometheus /metrics on 127.0.0.1:P\n"
               "                 while listening (0 = ephemeral port)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using midrr::io::WireHeader;

  std::size_t ports = 4;
  std::uint16_t base_port = 19000;
  double duration_s = 30.0;
  long idle_ms = 1000;
  bool json = false;
  int telemetry_port = -1;  // <0 = telemetry off

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string key = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw std::runtime_error("missing value for " + key);
        return argv[++i];
      };
      if (key == "--ports") ports = std::stoul(value());
      else if (key == "--base-port")
        base_port = static_cast<std::uint16_t>(std::stoul(value()));
      else if (key == "--duration") duration_s = std::stod(value());
      else if (key == "--idle-ms") idle_ms = std::stol(value());
      else if (key == "--json") json = true;
      else if (key == "--telemetry") telemetry_port = std::stoi(value());
      else return usage();
    }
    if (ports == 0 || base_port == 0 || duration_s <= 0.0) return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return usage();
  }

  std::vector<int> fds;
  fds.reserve(ports);
  for (std::size_t j = 0; j < ports; ++j) {
    const int fd =
        ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      std::cerr << "error: socket: " << std::strerror(errno) << "\n";
      return 1;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(base_port + j));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      std::cerr << "error: bind 127.0.0.1:" << base_port + j << ": "
                << std::strerror(errno) << "\n";
      return 1;
    }
    fds.push_back(fd);
  }
  std::cerr << "midrr_rx: listening on 127.0.0.1:" << base_port << "-"
            << base_port + ports - 1 << "\n";

  std::vector<PortTally> by_port(ports);
  std::map<std::uint32_t, FlowTally> by_flow;
  std::uint64_t total_datagrams = 0;
  std::atomic<std::uint64_t> traced_datagrams{0};

  // Registry lives whether or not --telemetry is given: the wire-latency
  // histogram doubles as the report's data source (Histogram wraps the
  // same LatencyHistogram grid, and observe() is one relaxed fetch_add).
  // Declared after by_port so scrape callbacks never outlive the tallies.
  midrr::telemetry::MetricsRegistry registry;
  midrr::telemetry::Histogram& wire_hist = registry.histogram(
      "midrr_rx_wire_latency_ns",
      "One-way wire latency: receive time minus the sender's WireHeader tx "
      "timestamp (traced datagrams only)");
  registry.counter_fn(
      "midrr_rx_traced_datagrams_total",
      "Datagrams carrying a tx timestamp (latency-attribution samples)", {},
      [&traced_datagrams] {
        return static_cast<double>(
            traced_datagrams.load(std::memory_order_relaxed));
      });
  for (std::size_t j = 0; j < ports; ++j) {
    const std::string port_label = std::to_string(base_port + j);
    const auto count_of = [](const std::atomic<std::uint64_t>& c) {
      return [&c] {
        return static_cast<double>(c.load(std::memory_order_relaxed));
      };
    };
    using midrr::telemetry::LabelSet;
    registry.counter_fn("midrr_rx_datagrams_total", "Datagrams received",
                        LabelSet{{"port", port_label}},
                        count_of(by_port[j].datagrams));
    registry.counter_fn("midrr_rx_wire_bytes_total",
                        "Datagram bytes received off the wire",
                        LabelSet{{"port", port_label}},
                        count_of(by_port[j].wire_bytes));
    registry.counter_fn("midrr_rx_parse_errors_total",
                        "Datagrams that failed WireHeader::decode",
                        LabelSet{{"port", port_label}},
                        count_of(by_port[j].parse_errors));
    registry.counter_fn("midrr_rx_gaps_total",
                        "Sequence numbers skipped (real datagram loss)",
                        LabelSet{{"port", port_label}},
                        count_of(by_port[j].gaps));
    registry.counter_fn("midrr_rx_reorders_total",
                        "Sequence numbers that stepped backward",
                        LabelSet{{"port", port_label}},
                        count_of(by_port[j].reorders));
  }

  std::unique_ptr<midrr::telemetry::TelemetryServer> server;
  if (telemetry_port >= 0) {
    midrr::telemetry::register_build_info(registry);
    midrr::telemetry::TelemetryServer::Options sopts;
    sopts.port = static_cast<std::uint16_t>(telemetry_port);
    server = std::make_unique<midrr::telemetry::TelemetryServer>(sopts);
    server->serve_registry(registry);
    try {
      server->start();
    } catch (const std::exception& e) {
      std::cerr << "error: telemetry: " << e.what() << "\n";
      return 1;
    }
    std::cerr << "midrr_rx: telemetry on http://127.0.0.1:" << server->port()
              << "/metrics\n";
  }

  std::vector<pollfd> pfds(ports);
  for (std::size_t j = 0; j < ports; ++j) {
    pfds[j].fd = fds[j];
    pfds[j].events = POLLIN;
  }

  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline =
      t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(duration_s));
  auto last_rx = t0;
  std::vector<midrr::net::Byte> buf(65536);

  while (true) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    if (idle_ms > 0 && total_datagrams > 0 &&
        now - last_rx > std::chrono::milliseconds(idle_ms)) {
      break;
    }
    const auto until = std::min(
        deadline, last_rx + std::chrono::milliseconds(
                                idle_ms > 0 ? idle_ms : 250));
    const long wait_ms = std::max<long>(
        1, std::chrono::duration_cast<std::chrono::milliseconds>(until - now)
               .count());
    const int ready = ::poll(pfds.data(), pfds.size(),
                             static_cast<int>(std::min<long>(wait_ms, 250)));
    if (ready < 0) {
      if (errno == EINTR) continue;
      std::cerr << "error: poll: " << std::strerror(errno) << "\n";
      return 1;
    }
    if (ready == 0) continue;
    for (std::size_t j = 0; j < ports; ++j) {
      if ((pfds[j].revents & POLLIN) == 0) continue;
      PortTally& port = by_port[j];
      // Drain the socket: non-blocking reads until EAGAIN, so one poll
      // wake-up consumes a whole burst.
      while (true) {
        const ssize_t n = ::recvfrom(fds[j], buf.data(), buf.size(), 0,
                                     nullptr, nullptr);
        if (n < 0) {
          if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
          std::cerr << "error: recvfrom: " << std::strerror(errno) << "\n";
          return 1;
        }
        last_rx = std::chrono::steady_clock::now();
        ++total_datagrams;
        port.datagrams.fetch_add(1, std::memory_order_relaxed);
        port.wire_bytes.fetch_add(static_cast<std::uint64_t>(n),
                                  std::memory_order_relaxed);
        const auto header = WireHeader::decode(
            std::span<const midrr::net::Byte>(buf.data(),
                                              static_cast<std::size_t>(n)));
        if (!header.has_value()) {
          port.parse_errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (header->has_tx_timestamp()) {
          // The sender stamps CLOCK_MONOTONIC at egress for traced packets;
          // both processes share the clock on loopback, so the delta is the
          // true one-way wire+stack latency.  Clamp at zero rather than
          // wrap when the clocks disagree (e.g. a cross-host capture).
          const std::uint64_t now_ns = midrr::mono_now_ns();
          const std::uint64_t lat = now_ns > header->tx_timestamp_ns
                                        ? now_ns - header->tx_timestamp_ns
                                        : 0;
          traced_datagrams.fetch_add(1, std::memory_order_relaxed);
          wire_hist.observe(lat);
        }
        FlowTally& flow = by_flow[header->flow];
        ++flow.datagrams;
        flow.credited_bytes += header->size_bytes;
        flow.wire_bytes += static_cast<std::uint64_t>(n);
        auto [it, fresh] = port.next_seq.try_emplace(header->flow, 0);
        if (!fresh || header->seq != 0) {
          if (header->seq > it->second) {
            port.gaps.fetch_add(header->seq - it->second,
                                std::memory_order_relaxed);
          } else if (header->seq < it->second) {
            port.reorders.fetch_add(1, std::memory_order_relaxed);
          }
        }
        it->second = std::max(it->second, header->seq) + 1;
      }
    }
  }

  for (const int fd : fds) ::close(fd);
  if (server) server->stop();

  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::uint64_t credited = 0, wire = 0, parse_errors = 0, gaps = 0,
                reorders = 0;
  for (const auto& [flow, tally] : by_flow) credited += tally.credited_bytes;
  for (const PortTally& port : by_port) {
    wire += port.wire_bytes.load(std::memory_order_relaxed);
    parse_errors += port.parse_errors.load(std::memory_order_relaxed);
    gaps += port.gaps.load(std::memory_order_relaxed);
    reorders += port.reorders.load(std::memory_order_relaxed);
  }
  const std::uint64_t traced = traced_datagrams.load(std::memory_order_relaxed);
  const double wire_p50_ns = traced > 0 ? wire_hist.quantile(0.50) : 0.0;
  const double wire_p99_ns = traced > 0 ? wire_hist.quantile(0.99) : 0.0;

  if (json) {
    std::ostringstream out;
    out << "{"
        << "\"ports\":" << ports << ","
        << "\"base_port\":" << base_port << ","
        << "\"duration_s\":" << elapsed << ","
        << "\"datagrams\":" << total_datagrams << ","
        << "\"wire_bytes\":" << wire << ","
        << "\"credited_bytes\":" << credited << ","
        << "\"parse_errors\":" << parse_errors << ","
        << "\"gaps\":" << gaps << ","
        << "\"reorders\":" << reorders << ","
        << "\"traced_datagrams\":" << traced << ","
        << "\"wire_p50_ns\":" << wire_p50_ns << ","
        << "\"wire_p99_ns\":" << wire_p99_ns << ","
        << "\"flows\":[";
    bool first = true;
    for (const auto& [flow, tally] : by_flow) {
      if (!first) out << ',';
      first = false;
      out << "{\"flow\":" << flow << ",\"datagrams\":" << tally.datagrams
          << ",\"credited_bytes\":" << tally.credited_bytes
          << ",\"wire_bytes\":" << tally.wire_bytes << "}";
    }
    out << "],\"by_port\":[";
    for (std::size_t j = 0; j < ports; ++j) {
      if (j != 0) out << ',';
      const PortTally& port = by_port[j];
      out << "{\"port\":" << base_port + j << ",\"datagrams\":"
          << port.datagrams.load(std::memory_order_relaxed)
          << ",\"wire_bytes\":"
          << port.wire_bytes.load(std::memory_order_relaxed)
          << ",\"parse_errors\":"
          << port.parse_errors.load(std::memory_order_relaxed)
          << ",\"gaps\":" << port.gaps.load(std::memory_order_relaxed)
          << ",\"reorders\":"
          << port.reorders.load(std::memory_order_relaxed) << "}";
    }
    out << "]}";
    std::cout << out.str() << "\n";
  } else {
    std::cout << "midrr_rx: " << total_datagrams << " datagrams / " << wire
              << " wire bytes on " << ports << " ports in " << elapsed
              << " s\n"
              << "  credited  " << credited << " scheduler bytes across "
              << by_flow.size() << " flows\n"
              << "  anomalies " << parse_errors << " parse errors, " << gaps
              << " gaps, " << reorders << " reorders\n";
    if (traced > 0) {
      std::cout << "  wire      " << traced << " traced datagrams, latency p50 "
                << wire_p50_ns / 1e3 << " us / p99 " << wire_p99_ns / 1e3
                << " us\n";
    }
  }
  return 0;
}
