// midrr_rx: loopback verification receiver for the UDP egress backend.
//
//   midrr_rx --ports 4 --base-port 9000 --duration 12 --json
//
// Binds one non-blocking UDP socket per "interface" (127.0.0.1:base+j),
// parses the WireHeader on every datagram, and credits each flow with the
// SCHEDULER's size_bytes from the header -- so the per-flow totals it
// prints are directly comparable to the max-min solver's ideal allocation
// and to the runtime's own sent_by_flow accounting, regardless of how
// payloads were truncated on the wire.
//
// Exit conditions (whichever comes first):
//   * --duration seconds of wall clock, or
//   * --idle-ms of silence AFTER at least one datagram arrived (so CI can
//     start the receiver first, run midrr_rt, and have the receiver exit
//     shortly after the sender finishes instead of sleeping out the full
//     window).
//
// Sequence numbers are per (port, flow): a jump forward is a gap (real
// datagram loss -- the sender rewinds sequence numbers for requeued
// packets, so transient EAGAIN pushback never shows up here), and a jump
// backward is counted as a reorder.  Loopback should show zero of both.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "io/wire.hpp"

namespace {

struct FlowTally {
  std::uint64_t datagrams = 0;
  std::uint64_t credited_bytes = 0;  // sum of WireHeader::size_bytes
  std::uint64_t wire_bytes = 0;      // datagram bytes actually received
};

struct PortTally {
  std::uint64_t datagrams = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t parse_errors = 0;
  std::uint64_t gaps = 0;      // datagrams skipped (seq jumped forward)
  std::uint64_t reorders = 0;  // seq stepped backward
  std::map<std::uint32_t, std::uint64_t> next_seq;  // flow -> expected seq
};

int usage() {
  std::cerr << "usage: midrr_rx [options]\n"
               "  --ports N      UDP sockets to bind (default 4)\n"
               "  --base-port P  first port; socket j binds 127.0.0.1:P+j\n"
               "                 (default 19000)\n"
               "  --duration S   max seconds to listen (default 30)\n"
               "  --idle-ms M    exit after M ms of silence once traffic has\n"
               "                 been seen (0 = wait out --duration;\n"
               "                 default 1000)\n"
               "  --json         machine-readable report on stdout\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using midrr::io::WireHeader;

  std::size_t ports = 4;
  std::uint16_t base_port = 19000;
  double duration_s = 30.0;
  long idle_ms = 1000;
  bool json = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string key = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw std::runtime_error("missing value for " + key);
        return argv[++i];
      };
      if (key == "--ports") ports = std::stoul(value());
      else if (key == "--base-port")
        base_port = static_cast<std::uint16_t>(std::stoul(value()));
      else if (key == "--duration") duration_s = std::stod(value());
      else if (key == "--idle-ms") idle_ms = std::stol(value());
      else if (key == "--json") json = true;
      else return usage();
    }
    if (ports == 0 || base_port == 0 || duration_s <= 0.0) return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return usage();
  }

  std::vector<int> fds;
  fds.reserve(ports);
  for (std::size_t j = 0; j < ports; ++j) {
    const int fd =
        ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      std::cerr << "error: socket: " << std::strerror(errno) << "\n";
      return 1;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(base_port + j));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      std::cerr << "error: bind 127.0.0.1:" << base_port + j << ": "
                << std::strerror(errno) << "\n";
      return 1;
    }
    fds.push_back(fd);
  }
  std::cerr << "midrr_rx: listening on 127.0.0.1:" << base_port << "-"
            << base_port + ports - 1 << "\n";

  std::vector<PortTally> by_port(ports);
  std::map<std::uint32_t, FlowTally> by_flow;
  std::uint64_t total_datagrams = 0;

  std::vector<pollfd> pfds(ports);
  for (std::size_t j = 0; j < ports; ++j) {
    pfds[j].fd = fds[j];
    pfds[j].events = POLLIN;
  }

  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline =
      t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(duration_s));
  auto last_rx = t0;
  std::vector<midrr::net::Byte> buf(65536);

  while (true) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    if (idle_ms > 0 && total_datagrams > 0 &&
        now - last_rx > std::chrono::milliseconds(idle_ms)) {
      break;
    }
    const auto until = std::min(
        deadline, last_rx + std::chrono::milliseconds(
                                idle_ms > 0 ? idle_ms : 250));
    const long wait_ms = std::max<long>(
        1, std::chrono::duration_cast<std::chrono::milliseconds>(until - now)
               .count());
    const int ready = ::poll(pfds.data(), pfds.size(),
                             static_cast<int>(std::min<long>(wait_ms, 250)));
    if (ready < 0) {
      if (errno == EINTR) continue;
      std::cerr << "error: poll: " << std::strerror(errno) << "\n";
      return 1;
    }
    if (ready == 0) continue;
    for (std::size_t j = 0; j < ports; ++j) {
      if ((pfds[j].revents & POLLIN) == 0) continue;
      PortTally& port = by_port[j];
      // Drain the socket: non-blocking reads until EAGAIN, so one poll
      // wake-up consumes a whole burst.
      while (true) {
        const ssize_t n = ::recvfrom(fds[j], buf.data(), buf.size(), 0,
                                     nullptr, nullptr);
        if (n < 0) {
          if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
          std::cerr << "error: recvfrom: " << std::strerror(errno) << "\n";
          return 1;
        }
        last_rx = std::chrono::steady_clock::now();
        ++total_datagrams;
        ++port.datagrams;
        port.wire_bytes += static_cast<std::uint64_t>(n);
        const auto header = WireHeader::decode(
            std::span<const midrr::net::Byte>(buf.data(),
                                              static_cast<std::size_t>(n)));
        if (!header.has_value()) {
          ++port.parse_errors;
          continue;
        }
        FlowTally& flow = by_flow[header->flow];
        ++flow.datagrams;
        flow.credited_bytes += header->size_bytes;
        flow.wire_bytes += static_cast<std::uint64_t>(n);
        auto [it, fresh] = port.next_seq.try_emplace(header->flow, 0);
        if (!fresh || header->seq != 0) {
          if (header->seq > it->second) {
            port.gaps += header->seq - it->second;
          } else if (header->seq < it->second) {
            ++port.reorders;
          }
        }
        it->second = std::max(it->second, header->seq) + 1;
      }
    }
  }

  for (const int fd : fds) ::close(fd);

  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::uint64_t credited = 0, wire = 0, parse_errors = 0, gaps = 0,
                reorders = 0;
  for (const auto& [flow, tally] : by_flow) credited += tally.credited_bytes;
  for (const PortTally& port : by_port) {
    wire += port.wire_bytes;
    parse_errors += port.parse_errors;
    gaps += port.gaps;
    reorders += port.reorders;
  }

  if (json) {
    std::ostringstream out;
    out << "{"
        << "\"ports\":" << ports << ","
        << "\"base_port\":" << base_port << ","
        << "\"duration_s\":" << elapsed << ","
        << "\"datagrams\":" << total_datagrams << ","
        << "\"wire_bytes\":" << wire << ","
        << "\"credited_bytes\":" << credited << ","
        << "\"parse_errors\":" << parse_errors << ","
        << "\"gaps\":" << gaps << ","
        << "\"reorders\":" << reorders << ","
        << "\"flows\":[";
    bool first = true;
    for (const auto& [flow, tally] : by_flow) {
      if (!first) out << ',';
      first = false;
      out << "{\"flow\":" << flow << ",\"datagrams\":" << tally.datagrams
          << ",\"credited_bytes\":" << tally.credited_bytes
          << ",\"wire_bytes\":" << tally.wire_bytes << "}";
    }
    out << "],\"by_port\":[";
    for (std::size_t j = 0; j < ports; ++j) {
      if (j != 0) out << ',';
      out << "{\"port\":" << base_port + j << ",\"datagrams\":"
          << by_port[j].datagrams << ",\"wire_bytes\":" << by_port[j].wire_bytes
          << ",\"parse_errors\":" << by_port[j].parse_errors
          << ",\"gaps\":" << by_port[j].gaps << ",\"reorders\":"
          << by_port[j].reorders << "}";
    }
    out << "]}";
    std::cout << out.str() << "\n";
  } else {
    std::cout << "midrr_rx: " << total_datagrams << " datagrams / " << wire
              << " wire bytes on " << ports << " ports in " << elapsed
              << " s\n"
              << "  credited  " << credited << " scheduler bytes across "
              << by_flow.size() << " flows\n"
              << "  anomalies " << parse_errors << " parse errors, " << gaps
              << " gaps, " << reorders << " reorders\n";
  }
  return 0;
}
