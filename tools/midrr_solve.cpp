// midrr_solve: compute the weighted max-min fair allocation for a static
// problem instance from the command line -- the analytical answer miDRR
// converges to.
//
//   midrr_solve --caps 3mbps,10mbps --weights 1,2,1 --willing 10,11,01
//
// `--willing` gives one row per flow, one 0/1 digit per interface.
// Prints per-flow rates, the allocation split, and the rate clusters.
#include <iostream>
#include <sstream>
#include <vector>

#include "core/scenario_text.hpp"  // for parse_rate_bps
#include "fairness/clusters.hpp"
#include "fairness/maxmin.hpp"

namespace {

int usage() {
  std::cerr << "usage: midrr_solve --caps R1,R2,... --weights W1,...  "
               "--willing ROW1,ROW2,...\n"
               "  each ROW is a 0/1 string with one digit per interface\n"
               "  rates accept units: 3mbps, 500kbps, 1gbps, or plain bps\n";
  return 2;
}

std::vector<std::string> split(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string part;
  while (std::getline(in, part, ',')) out.push_back(part);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace midrr;

  std::string caps;
  std::string weights;
  std::string willing;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    const std::string value = argv[i + 1];
    if (key == "--caps") caps = value;
    else if (key == "--weights") weights = value;
    else if (key == "--willing") willing = value;
    else return usage();
  }
  if (caps.empty() || willing.empty()) return usage();

  fair::MaxMinInput input;
  try {
    for (const auto& c : split(caps)) {
      input.capacities_bps.push_back(parse_rate_bps(c));
    }
    const auto rows = split(willing);
    for (const auto& row : rows) {
      if (row.size() != input.capacities_bps.size()) {
        std::cerr << "error: willing row '" << row << "' has "
                  << row.size() << " digits but there are "
                  << input.capacities_bps.size() << " interfaces\n";
        return 1;
      }
      std::vector<bool> r;
      for (const char c : row) {
        if (c != '0' && c != '1') {
          std::cerr << "error: willing rows must be 0/1 strings\n";
          return 1;
        }
        r.push_back(c == '1');
      }
      input.willing.push_back(std::move(r));
    }
    if (weights.empty()) {
      input.weights.assign(input.willing.size(), 1.0);
    } else {
      for (const auto& w : split(weights)) {
        input.weights.push_back(std::stod(w));
      }
    }
    input.validate();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  const auto solved = fair::solve_max_min(input);
  std::cout << "weighted max-min fair allocation:\n";
  for (std::size_t i = 0; i < solved.rates_bps.size(); ++i) {
    std::cout << "  flow " << i << " (w=" << input.weights[i]
              << "): " << solved.rates_bps[i] / 1e6 << " Mb/s  [split:";
    for (std::size_t j = 0; j < input.capacities_bps.size(); ++j) {
      std::cout << ' ' << solved.alloc_bps[i][j] / 1e6;
    }
    std::cout << " ]\n";
  }
  std::cout << "total: " << solved.total_rate_bps() / 1e6 << " Mb/s of "
            << [&] {
                 double c = 0.0;
                 for (double v : input.capacities_bps) c += v;
                 return c / 1e6;
               }()
            << " Mb/s capacity\n";

  const auto analysis = fair::analyze_clusters(input, solved.alloc_bps);
  std::cout << "clusters: "
            << fair::format_clusters(analysis, {}, {}) << "\n";
  const auto violation =
      fair::check_max_min_conditions(input, solved.alloc_bps);
  std::cout << "Theorem 2 conditions: "
            << (violation ? ("VIOLATED: " + *violation) : "satisfied")
            << "\n";
  return 0;
}
