// Extension experiment (beyond the paper's figures): miDRR on
// Gilbert-Elliott fading channels.
//
// The paper evaluates fluctuating links with hand-scripted speed changes
// (Fig 10); real wireless channels fade stochastically.  This bench runs
// the Fig 10 topology over two-state fading links and checks that the
// paper's qualitative claims survive: the multi-homed flow rides whichever
// channel is currently good, no capacity is wasted, and miDRR stays ahead
// of the uncoordinated baselines.
#include <iostream>

#include "bench/common.hpp"
#include "core/scenario.hpp"

namespace {

using namespace midrr;

Scenario fading_scenario(std::uint64_t seed) {
  Scenario sc;
  sc.interface("if1",
               RateProfile::gilbert_elliott(mbps(8), mbps(1), 3 * kSecond,
                                            kSecond, 120 * kSecond, seed));
  sc.interface("if2",
               RateProfile::gilbert_elliott(mbps(8), mbps(1), 3 * kSecond,
                                            kSecond, 120 * kSecond,
                                            seed + 1000));
  sc.backlogged_flow("a", 1.0, {"if1"});
  sc.backlogged_flow("b", 1.0, {"if1", "if2"});
  sc.backlogged_flow("c", 1.0, {"if2"});
  return sc;
}

}  // namespace

int main(int, char**) {
  std::cout << "Extension: Fig 10 topology on Gilbert-Elliott fading links\n"
            << "(8 Mb/s good / 1 Mb/s bad, mean sojourn 3 s / 1 s; 120 s "
               "runs, 5 channel seeds)\n";

  bench::Table table({"policy", "a Mb/s", "b Mb/s", "c Mb/s", "total",
                      "b>=max(a,c)?"});
  for (const Policy policy :
       {Policy::kMiDrr, Policy::kNaiveDrr, Policy::kRoundRobin}) {
    double a_sum = 0.0;
    double b_sum = 0.0;
    double c_sum = 0.0;
    int b_top = 0;
    int runs = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      Scenario sc = fading_scenario(seed);
      RunnerOptions opt;
      opt.link_jitter = 0.05;  // MAC-level service jitter
      opt.seed = seed;
      ScenarioRunner runner(sc, policy, opt);
      const SimTime dur = 120 * kSecond;
      const auto result = runner.run(dur);
      const double a = result.flow_named("a").mean_rate_mbps(10 * kSecond, dur);
      const double b = result.flow_named("b").mean_rate_mbps(10 * kSecond, dur);
      const double c = result.flow_named("c").mean_rate_mbps(10 * kSecond, dur);
      a_sum += a;
      b_sum += b;
      c_sum += c;
      if (b >= std::max(a, c) - 0.25) ++b_top;
      ++runs;
    }
    table.row({to_string(policy), std::to_string(a_sum / runs).substr(0, 5),
               std::to_string(b_sum / runs).substr(0, 5),
               std::to_string(c_sum / runs).substr(0, 5),
               std::to_string((a_sum + b_sum + c_sum) / runs).substr(0, 5),
               std::to_string(b_top) + "/" + std::to_string(runs)});
  }
  std::cout << "\nexpected: under miDRR flow b's long-run rate stays at or "
               "above both pinned flows\n"
               "(it always joins the currently-better channel); naive DRR "
               "hands b an outsized share\n"
               "of BOTH channels instead, starving the pinned flows.\n";
  return 0;
}
