// Figure 8 reproduction: the rate clusters formed over the Figure 6 run,
// in chronological order.
//
// Paper:  phase 1: {a | if1} @3   and {b,c | if2} (b at 6.66, c at 3.33)
//         phase 2: {b,c | if1,if2} (merged, weighted level 13/3)
//         phase 3: {c | if2}
#include <iostream>

#include "bench/common.hpp"
#include "core/scenario.hpp"

int main(int, char**) {
  using namespace midrr;

  std::cout << "Reproduction of Figure 8 (cluster evolution over Fig 6)\n";
  Scenario sc;
  sc.interface("if1", RateProfile(mbps(3)));
  sc.interface("if2", RateProfile(mbps(10)));
  sc.backlogged_flow("a", 1.0, {"if1"}, 24'750'000);
  sc.backlogged_flow("b", 2.0, {"if1", "if2"}, 75'583'333);
  sc.backlogged_flow("c", 1.0, {"if2"});

  RunnerOptions opt;
  opt.cluster_interval = 2 * kSecond;
  ScenarioRunner runner(sc, Policy::kMiDrr, opt);
  const auto result = runner.run(100 * kSecond);

  bench::section("clusters over time (every 10 s)");
  std::string last;
  for (const auto& snap : result.clusters) {
    const auto t = to_seconds(snap.at);
    if (snap.rendering != last ||
        static_cast<std::int64_t>(t) % 10 == 0) {
      std::cout << "  t=" << t << " s: " << snap.rendering << "\n";
      last = snap.rendering;
    }
  }

  bench::section("phase summary (paper expectation)");
  const auto snapshot_at = [&](SimTime t) -> const ClusterSnapshot& {
    const ClusterSnapshot* best = &result.clusters.front();
    for (const auto& s : result.clusters) {
      if (s.at <= t) best = &s;
    }
    return *best;
  };
  const auto& p1 = snapshot_at(30 * kSecond);
  const auto& p2 = snapshot_at(75 * kSecond);
  const auto& p3 = snapshot_at(95 * kSecond);
  std::cout << "  phase 1 (t=30s): " << p1.analysis.clusters.size()
            << " clusters (paper: 2) -> " << p1.rendering << "\n";
  std::cout << "  phase 2 (t=75s): " << p2.analysis.clusters.size()
            << " clusters (paper: 1, merged) -> " << p2.rendering << "\n";
  std::cout << "  phase 3 (t=95s): " << p3.analysis.clusters.size()
            << " clusters (paper: 1, just {c|if2}) -> " << p3.rendering
            << "\n";
  return 0;
}
