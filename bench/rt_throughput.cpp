// rt_throughput: sweep the real-time runtime's worker count and record
// packets/s plus enqueue->dequeue latency percentiles into BENCH_rt.json.
//
//   rt_throughput [--duration S] [--out FILE]
//
// Three sweeps, all over 8 unpaced interfaces with one producer thread:
//   1. workers in {1, 2, 4, 8} (shards = workers, the scaling
//      configuration) at 256 and 1024 flows, each cell twice: telemetry
//      off and on (a live MetricsRegistry with the full runtime +
//      per-shard scheduler instrumentation, no tracing).  The on/off pps
//      ratio is the metrics hot-path overhead.
//   2. fan-in batch size in {128 .. 2048} at the single-worker cell --
//      how RuntimeOptions::fanin_batch trades shard-lock/wakeup
//      amortization against burstiness.
//   3. payload mode none/heap/pooled at the single-worker cell -- the
//      cost of carrying real 1000-byte payloads, and how much of it the
//      frame pool wins back (pool counters included for the pooled cell).
//   4. latency attribution at the single-worker cell: stage tracing off
//      vs the default 1-in-64 sampling.  The pps ratio is the tracing
//      hot-path overhead (budget: >= 0.95), and the traced cell reports
//      the per-stage breakdown the tracer exists to produce.
//   5. slo burn: the 2x-overload cell with a deliberately tight p99
//      objective bound to every class; sustained overload must push the
//      burn rate above 1 (the paging threshold).
// NOTE: results depend on the host's core count; the JSON records
// std::thread::hardware_concurrency() so a reader can tell a 1-core CI
// box (where workers time-slice one core and pps cannot scale) from a
// real multicore run.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fault/adapt.hpp"
#include "fault/supervisor.hpp"
#include "io/udp_backend.hpp"
#include "io/uring_backend.hpp"
#include "io/wire.hpp"
#include "runtime/load_generator.hpp"
#include "runtime/runtime.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/slo.hpp"
#include "telemetry/stage_latency.hpp"
#include "util/latency_histogram.hpp"

namespace {

using midrr::PacketPoolStats;
using PayloadMode = midrr::rt::LoadGeneratorOptions::PayloadMode;

struct StageQuantiles {
  double p50_ns = 0;
  double p99_ns = 0;
};

struct Cell {
  std::size_t flows;
  std::size_t workers;
  bool telemetry = false;
  std::size_t fanin_batch = 0;  // 0 = RuntimeOptions default
  PayloadMode payload = PayloadMode::kNone;
  std::uint32_t stage_sample = 0;  // 0 = tracing off
  double pps = 0;
  double p50_ns = 0;
  double p99_ns = 0;
  std::uint64_t dequeued = 0;
  double duration_s = 0;
  PacketPoolStats pool{};
  // Tracer accounting + per-stage breakdown (stage_sample > 0 only);
  // quantiles are over the per-iface grids merged into one.
  std::uint64_t trace_started = 0;
  std::uint64_t trace_completed = 0;
  std::uint64_t trace_lost = 0;
  std::uint64_t trace_dropped = 0;
  StageQuantiles stages[midrr::telemetry::kStageCount]{};
  StageQuantiles e2e{};
  double reconciliation_error = 0;
};

const char* payload_name(PayloadMode mode) {
  switch (mode) {
    case PayloadMode::kHeap: return "heap";
    case PayloadMode::kPooled: return "pooled";
    default: return "none";
  }
}

Cell run_cell(std::size_t flows, std::size_t workers, double duration_s,
              bool telemetry, std::size_t fanin_batch = 0,
              PayloadMode payload = PayloadMode::kNone,
              std::uint32_t stage_sample = 0) {
  using namespace midrr;
  using namespace midrr::rt;

  constexpr std::size_t kIfaces = 8;
  // Outlives the runtime: registered callbacks point into runtime state.
  midrr::telemetry::MetricsRegistry registry;
  RuntimeOptions options;
  options.workers = workers;
  options.shards = workers;  // the scaling configuration
  options.producers = 1;
  options.max_flows = flows;
  if (fanin_batch != 0) options.fanin_batch = fanin_batch;
  if (telemetry) options.metrics = &registry;
  options.stage_sample_every = stage_sample;

  Runtime runtime(options);
  for (std::size_t j = 0; j < kIfaces; ++j) {
    runtime.add_interface("if" + std::to_string(j));
  }
  for (std::size_t i = 0; i < flows; ++i) {
    RtFlowSpec spec;
    spec.willing.push_back(static_cast<IfaceId>(i % kIfaces));
    spec.willing.push_back(static_cast<IfaceId>((i + 1) % kIfaces));
    runtime.control().add_flow(spec);
  }

  runtime.start();
  LoadGeneratorOptions load;
  load.producers = 1;
  load.packet_bytes = 1000;
  load.payload = payload;
  LoadGenerator generator(runtime, load);

  const auto t0 = std::chrono::steady_clock::now();
  generator.start();
  std::this_thread::sleep_for(std::chrono::duration<double>(duration_s));
  generator.stop();
  runtime.stop();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const RuntimeStats stats = runtime.stats();
  Cell cell;
  cell.flows = flows;
  cell.workers = workers;
  cell.telemetry = telemetry;
  cell.fanin_batch = fanin_batch;
  cell.payload = payload;
  cell.stage_sample = stage_sample;
  cell.dequeued = stats.dequeued;
  cell.duration_s = elapsed;
  cell.pps = static_cast<double>(stats.dequeued) / elapsed;
  cell.p50_ns = stats.latency_p50_ns;
  cell.p99_ns = stats.latency_p99_ns;
  cell.pool = generator.pool_stats();
  if (const telemetry::StageTracer* tracer = runtime.stage_tracer()) {
    cell.trace_started = tracer->started();
    cell.trace_completed = tracer->completed();
    cell.trace_lost = tracer->lost();
    cell.trace_dropped = tracer->dropped();
    cell.reconciliation_error = tracer->reconciliation_error();
    for (std::size_t s = 0; s < telemetry::kStageCount; ++s) {
      LatencyHistogram merged;
      for (std::size_t j = 0; j < kIfaces; ++j) {
        merged.merge_from(tracer->stage_grid(static_cast<IfaceId>(j),
                                             static_cast<telemetry::Stage>(s)));
      }
      cell.stages[s].p50_ns = merged.quantile(0.5);
      cell.stages[s].p99_ns = merged.quantile(0.99);
    }
    LatencyHistogram merged_e2e;
    for (std::size_t j = 0; j < kIfaces; ++j) {
      merged_e2e.merge_from(tracer->e2e_grid(static_cast<IfaceId>(j)));
    }
    cell.e2e.p50_ns = merged_e2e.quantile(0.5);
    cell.e2e.p99_ns = merged_e2e.quantile(0.99);
  }
  return cell;
}

// Overload cell: one paced interface, equal flows, the generator offering a
// fixed multiple of capacity.  Records the Jain fairness index of per-flow
// goodput over the settled window -- the number the shedding watermark is
// supposed to protect -- plus where the excess went.
struct OverloadCell {
  std::uint64_t shed_bytes = 0;
  double overload = 0;
  double jain = 0;
  double utilization = 0;
  std::uint64_t shed_drops = 0;
  std::uint64_t tail_drops = 0;
  double duration_s = 0;
};

OverloadCell run_overload_cell(std::uint64_t shed_bytes, double overload,
                               double duration_s) {
  using namespace midrr;
  using namespace midrr::rt;

  constexpr std::size_t kFlows = 8;
  const double capacity_bps = 200e6;
  RuntimeOptions options;
  options.shed_bytes = shed_bytes;
  options.max_flows = kFlows;
  Runtime runtime(options);
  runtime.add_interface("if0", RateProfile(capacity_bps));
  std::vector<FlowId> flows;
  for (std::size_t i = 0; i < kFlows; ++i) {
    RtFlowSpec spec;
    spec.willing.push_back(0);
    spec.name = "f" + std::to_string(i);
    flows.push_back(runtime.control().add_flow(spec));
  }
  runtime.start();
  LoadGeneratorOptions load;
  load.packet_bytes = 1000;
  load.rate_pps = overload * capacity_bps / (8.0 * 1000.0);
  LoadGenerator generator(runtime, load);
  generator.start();

  // Warm up 25% of the budget, measure goodput over the rest.
  std::this_thread::sleep_for(std::chrono::duration<double>(duration_s / 4));
  std::vector<std::uint64_t> before;
  before.reserve(kFlows);
  for (const FlowId f : flows) before.push_back(runtime.sent_bytes(f));
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(
      std::chrono::duration<double>(duration_s * 3 / 4));
  double sum = 0, sq = 0, total = 0;
  for (std::size_t i = 0; i < kFlows; ++i) {
    const double x =
        static_cast<double>(runtime.sent_bytes(flows[i]) - before[i]);
    sum += x;
    sq += x * x;
    total += x;
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  generator.stop();
  runtime.stop();

  const RuntimeStats stats = runtime.stats();
  OverloadCell cell;
  cell.shed_bytes = shed_bytes;
  cell.overload = overload;
  cell.jain = sq > 0 ? sum * sum / (static_cast<double>(kFlows) * sq) : 1.0;
  cell.utilization = total * 8.0 / elapsed / capacity_bps;
  cell.shed_drops = stats.shed_drops;
  cell.tail_drops = stats.tail_drops;
  cell.duration_s = elapsed;
  return cell;
}

// Adaptive-shedding cell: the same 2x-overloaded topology, but instead of
// a fixed watermark the operator states a p99 objective and the closed
// loop (supervisor probes -> AdaptiveController -> shed watermark) derives
// shed_bytes live from the measured drain rate.  Reports the watermark the
// loop converged to, the windowed p99 it measured, and the same Jain /
// utilization numbers as the fixed-watermark cells for comparison.
struct AdaptiveCell {
  std::uint64_t target_p99_ns = 0;
  double overload = 0;
  double jain = 0;
  double utilization = 0;
  std::uint64_t final_shed_bytes = 0;
  double windowed_p99_ns = 0;
  double correction = 0;
  std::uint64_t retunes = 0;
  std::uint64_t shed_engages = 0;
  std::uint64_t shed_drops = 0;
  std::uint64_t tail_drops = 0;
  double duration_s = 0;
};

AdaptiveCell run_adaptive_cell(std::uint64_t target_p99_ns, double overload,
                               double duration_s) {
  using namespace midrr;
  using namespace midrr::rt;

  constexpr std::size_t kFlows = 8;
  const double capacity_bps = 200e6;
  RuntimeOptions options;
  options.max_flows = kFlows;
  options.stage_sample_every = 64;  // the loop's windowed p99 source
  Runtime runtime(options);
  runtime.add_interface("if0", RateProfile(capacity_bps));
  std::vector<FlowId> flows;
  for (std::size_t i = 0; i < kFlows; ++i) {
    RtFlowSpec spec;
    spec.willing.push_back(0);
    spec.name = "f" + std::to_string(i);
    flows.push_back(runtime.control().add_flow(spec));
  }
  runtime.start();

  fault::Supervisor supervisor(runtime, fault::SupervisorOptions{}, &runtime);
  fault::AdaptOptions aopts;
  aopts.target_p99_ns = static_cast<SimDuration>(target_p99_ns);
  fault::AdaptiveController adapt(runtime, aopts);
  runtime.set_capacity_overlay(&adapt);
  supervisor.set_adaptive(&adapt);
  supervisor.start();

  LoadGeneratorOptions load;
  load.packet_bytes = 1000;
  load.rate_pps = overload * capacity_bps / (8.0 * 1000.0);
  LoadGenerator generator(runtime, load);
  generator.start();

  // Warm up 25% of the budget (lets the controller seed its drain EWMA
  // and converge), measure goodput over the rest.
  std::this_thread::sleep_for(std::chrono::duration<double>(duration_s / 4));
  std::vector<std::uint64_t> before;
  before.reserve(kFlows);
  for (const FlowId f : flows) before.push_back(runtime.sent_bytes(f));
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(
      std::chrono::duration<double>(duration_s * 3 / 4));
  double sum = 0, sq = 0, total = 0;
  for (std::size_t i = 0; i < kFlows; ++i) {
    const double x =
        static_cast<double>(runtime.sent_bytes(flows[i]) - before[i]);
    sum += x;
    sq += x * x;
    total += x;
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  generator.stop();
  supervisor.stop();
  runtime.stop();

  const RuntimeStats stats = runtime.stats();
  AdaptiveCell cell;
  cell.target_p99_ns = target_p99_ns;
  cell.overload = overload;
  cell.jain = sq > 0 ? sum * sum / (static_cast<double>(kFlows) * sq) : 1.0;
  cell.utilization = total * 8.0 / elapsed / capacity_bps;
  cell.final_shed_bytes = runtime.shed_bytes();
  cell.windowed_p99_ns = adapt.windowed_p99_ns();
  cell.correction = adapt.correction();
  cell.retunes = adapt.retunes();
  cell.shed_engages = adapt.shed_engages();
  cell.shed_drops = stats.shed_drops;
  cell.tail_drops = stats.tail_drops;
  cell.duration_s = elapsed;
  return cell;
}

// SLO burn cell: the 2x-overloaded paced topology with a deliberately
// tight p99 objective bound to every class.  Under sustained overload the
// queues hold packets for tens of milliseconds, so nearly every sampled
// packet violates the target and the burn rate -- violating fraction over
// the 1% error budget -- must land well above 1 (the paging threshold).
// This is the end-to-end validation that tracer -> SLO plumbing fires
// under real load, not just in unit tests.
struct SloCell {
  std::uint64_t target_ns = 0;
  double overload = 0;
  std::uint64_t samples = 0;
  std::uint64_t violations = 0;
  double burn_short = 0;
  double burn_long = 0;
  double duration_s = 0;
};

SloCell run_slo_cell(std::uint64_t target_ns, double overload,
                     double duration_s) {
  using namespace midrr;
  using namespace midrr::rt;

  constexpr std::size_t kFlows = 8;
  const double capacity_bps = 200e6;
  telemetry::SloEngine slo({{"bench", target_ns}}, kFlows);
  RuntimeOptions options;
  options.max_flows = kFlows;
  options.stage_sample_every = 64;
  options.slo = &slo;
  Runtime runtime(options);
  runtime.add_interface("if0", RateProfile(capacity_bps));
  for (std::size_t i = 0; i < kFlows; ++i) {
    RtFlowSpec spec;
    spec.willing.push_back(0);
    spec.name = "f" + std::to_string(i);
    runtime.control().add_flow(spec);
  }
  {
    // Bind every interned class to the one declared objective, the same
    // way midrr_rt binds after registration and before start().
    auto reader = runtime.control().reader();
    const auto guard = reader.lock();
    for (const ClassId id : guard->live) slo.bind_class(id, "bench");
  }
  runtime.start();
  LoadGeneratorOptions load;
  load.packet_bytes = 1000;
  load.rate_pps = overload * capacity_bps / (8.0 * 1000.0);
  LoadGenerator generator(runtime, load);
  const auto t0 = std::chrono::steady_clock::now();
  generator.start();
  std::this_thread::sleep_for(std::chrono::duration<double>(duration_s));
  generator.stop();
  const std::uint64_t now = static_cast<std::uint64_t>(runtime.now_ns());
  runtime.stop();

  SloCell cell;
  cell.target_ns = target_ns;
  cell.overload = overload;
  cell.samples = slo.samples(0);
  cell.violations = slo.violations(0);
  cell.burn_short = slo.short_burn(0, now);
  cell.burn_long = slo.long_burn(0, now);
  cell.duration_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return cell;
}

// Egress cell: the same unpaced 4-iface / 64-flow topology drained into
// either the sim sink or real UDP sockets over loopback (destination
// ports nobody listens on -- the kernel pays the full loopback delivery
// path and then drops, which is exactly the sendmmsg cost we want to
// meter without a receiver skewing the box).  The udp cells sweep
// UdpBackendOptions::max_batch to show syscall amortization: batch 1 is
// one sendmmsg per packet, 256 is the deep-burst limit.  HONESTY NOTE:
// loopback is not NIC-bound -- these numbers bound per-syscall and
// serialization overhead, not wire throughput; a real NIC adds driver
// rings, IRQ moderation, and line-rate ceilings the loopback path
// never sees.
struct EgressCell {
  const char* backend = "sim";
  std::size_t max_batch = 0;  // 0 = not applicable (sim/uring)
  double pps = 0;
  double p50_ns = 0;
  double p99_ns = 0;
  std::uint64_t sent = 0;
  std::uint64_t syscalls = 0;
  std::uint64_t requeued = 0;
  std::uint64_t io_drops = 0;
  std::uint64_t peak_inflight = 0;  // uring: max sampled in-flight depth
  std::uint64_t fixed_sends = 0;    // uring: zero-copy registered-buffer sends
  std::uint64_t fallback_sends = 0; // uring: copying sendmsg sends
  double duration_s = 0;
};

// kUring meters the SEND_ZC registered-buffer path; kUringCopy forces the
// sendmsg-over-uring fallback (zerocopy=false).  On loopback the kernel
// copies either way, so the copy cell isolates what SEND_ZC's second CQE
// (buffer-release notification) costs when zero-copy cannot pay off.
enum class EgressKind { kSim, kUdp, kUring, kUringCopy };

EgressCell run_egress_cell(EgressKind kind, std::size_t max_batch,
                           double duration_s) {
  using namespace midrr;
  using namespace midrr::rt;

  constexpr std::size_t kIfaces = 4;
  constexpr std::size_t kFlows = 64;
  RuntimeOptions options;
  options.workers = 2;
  options.shards = 2;
  options.producers = 1;
  options.max_flows = kFlows;
  // Deep dequeue bursts (4000 packets at 1000 B) so the PER-CALL caps --
  // sendmmsg's max_batch vs one io_uring submit for the whole burst --
  // are what bound syscall amortization, not the dequeue window itself.
  // Identical across every cell of the sweep; only the backend varies.
  options.burst_bytes = 4 * 1024 * 1024;
  std::unique_ptr<io::EgressBackend> backend;
  io::UringBackend* uring = nullptr;
  if (kind == EgressKind::kUdp) {
    io::UdpBackendOptions uopts;
    uopts.base_port = 19800;  // unbound on purpose; see the note above
    uopts.max_batch = max_batch;
    backend = std::make_unique<io::UdpBackend>(uopts);
    options.egress = backend.get();
  } else if (kind == EgressKind::kUring || kind == EgressKind::kUringCopy) {
    io::UringBackendOptions uopts;
    uopts.base_port = 19800;
    uopts.sq_entries = 4096;     // one submit swallows a whole deep burst
    uopts.inflight_limit = 8192;
    uopts.zerocopy = kind == EgressKind::kUring;
    // Doorbell coalescing: let SQEs from several bursts share one
    // io_uring_enter.  This is the knob the cell sweeps against sendmmsg's
    // max_batch -- both bound how many packets one syscall can carry.  32
    // quiet polls of headroom means the half-SQ threshold (2048 SQEs),
    // not the idle trigger, is what usually rings the doorbell.
    uopts.submit_coalesce_polls = 32;
    auto owned = std::make_unique<io::UringBackend>(uopts);
    uring = owned.get();
    backend = std::move(owned);
    options.egress = backend.get();
  }
  Runtime runtime(options);
  for (std::size_t j = 0; j < kIfaces; ++j) {
    runtime.add_interface("if" + std::to_string(j));
  }
  for (std::size_t i = 0; i < kFlows; ++i) {
    RtFlowSpec spec;
    spec.willing.push_back(static_cast<IfaceId>(i % kIfaces));
    spec.willing.push_back(static_cast<IfaceId>((i + 1) % kIfaces));
    runtime.control().add_flow(spec);
  }
  runtime.start();
  LoadGeneratorOptions load;
  load.producers = 1;
  load.packet_bytes = 1000;
  load.payload = PayloadMode::kPooled;  // real bytes on the wire
  if (uring != nullptr) {
    // Slab-resident payloads with wire headroom: the cell meters the
    // registered-buffer zero-copy path, not the copying fallback.
    load.frame_headroom = io::kWireScratchBytes;
    load.pool.precarve = true;
    load.pool.max_slabs = 32;  // 16k slots >> inflight_limit
  }
  LoadGenerator generator(runtime, load);
  if (kind == EgressKind::kUring) {  // copy cell: fallback path on purpose
    for (std::size_t p = 0; p < load.producers; ++p) {
      if (const net::FramePool* pool = generator.frame_pool(p)) {
        uring->register_frame_pool(*pool);
      }
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  generator.start();
  // Sample in-flight depth while the load runs (uring only; the gauge is
  // scrape-rate safe) instead of sleeping blind.
  std::uint64_t peak_inflight = 0;
  const auto deadline = t0 + std::chrono::duration<double>(duration_s);
  while (std::chrono::steady_clock::now() < deadline) {
    if (uring != nullptr) {
      std::uint64_t inflight = 0;
      for (std::size_t j = 0; j < kIfaces; ++j) {
        inflight += uring->inflight_packets(static_cast<IfaceId>(j));
      }
      peak_inflight = std::max(peak_inflight, inflight);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  generator.stop();
  runtime.stop();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const RuntimeStats stats = runtime.stats();
  EgressCell cell;
  cell.backend = kind == EgressKind::kSim         ? "sim"
                 : kind == EgressKind::kUdp       ? "udp"
                 : kind == EgressKind::kUring     ? "uring"
                                                  : "uring-copy";
  cell.max_batch = kind == EgressKind::kUdp ? max_batch : 0;
  cell.sent = stats.sent;
  cell.syscalls = stats.io_syscalls;
  cell.requeued = stats.io_requeued;
  cell.io_drops = stats.io_drops;
  cell.peak_inflight = peak_inflight;
  if (uring != nullptr) {
    for (std::size_t j = 0; j < kIfaces; ++j) {
      cell.fixed_sends += uring->fixed_sends(static_cast<IfaceId>(j));
      cell.fallback_sends += uring->fallback_sends(static_cast<IfaceId>(j));
    }
  }
  cell.duration_s = elapsed;
  cell.pps = static_cast<double>(stats.sent) / elapsed;
  cell.p50_ns = stats.latency_p50_ns;
  cell.p99_ns = stats.latency_p99_ns;
  return cell;
}

// Million-flow scale cell: flows register in classes of `flows_per_class`
// (one ClassSpec, one publish per batch), so the snapshot the control
// plane publishes is O(classes), not O(flows).  Both sweep cells use the
// SAME class count (1000) at 100x different flow counts; if publish cost
// really is O(classes), the single-member publish latency must come out
// ~equal -- that ratio is the number CI bounds.  RSS is read from
// /proc/self/statm around registration, so rss_bytes_per_flow is the
// marginal footprint of a registered flow (directory slot, queue, class
// membership), not the process baseline.
struct ScaleCell {
  std::size_t flows = 0;
  std::size_t flows_per_class = 0;
  std::size_t classes = 0;
  double register_s = 0;
  long long rss_delta_bytes = 0;
  double rss_bytes_per_flow = 0;
  double publish_p50_ns = 0;
  double pps = 0;
  std::uint64_t dequeued = 0;
  double duration_s = 0;
};

long long resident_bytes() {
  std::ifstream statm("/proc/self/statm");
  long long pages = 0, resident = 0;
  statm >> pages >> resident;
  return resident * static_cast<long long>(sysconf(_SC_PAGESIZE));
}

ScaleCell run_scale_cell(std::size_t flows, std::size_t flows_per_class,
                         double duration_s) {
  using namespace midrr;
  using namespace midrr::rt;

  constexpr std::size_t kIfaces = 4;
  RuntimeOptions options;
  options.workers = 1;
  options.shards = 1;
  options.producers = 1;
  options.max_flows = flows + 128;  // headroom for the publish probes
  options.policy = Policy::kHierMiDrr;

  Runtime runtime(options);
  for (std::size_t j = 0; j < kIfaces; ++j) {
    runtime.add_interface("if" + std::to_string(j));
  }

  ScaleCell cell;
  cell.flows = flows;
  cell.flows_per_class = flows_per_class;

  const long long rss0 = resident_bytes();
  const auto reg0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < flows; i += flows_per_class) {
    const std::size_t batch = std::min(flows_per_class, flows - i);
    const std::size_t group = i / flows_per_class;
    ClassSpec spec;
    spec.name = "c" + std::to_string(group);
    spec.willing.push_back(static_cast<IfaceId>(group % kIfaces));
    spec.willing.push_back(static_cast<IfaceId>((group + 1) % kIfaces));
    // Classes intern by (weight, willing, queue capacity); a per-group
    // capacity keeps the 1000 groups from collapsing into 4 willing-pairs.
    spec.queue_capacity_bytes = 512 * 1024 + group;
    runtime.control().add_members(spec, batch);
  }
  cell.register_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - reg0)
          .count();
  cell.rss_delta_bytes = resident_bytes() - rss0;
  cell.rss_bytes_per_flow =
      static_cast<double>(cell.rss_delta_bytes) / static_cast<double>(flows);
  cell.classes = runtime.control().class_count();

  // Publish latency for a one-member delta against the fully loaded
  // table: join an existing class (no new snapshot entry), then leave.
  ClassSpec probe;
  probe.name = "c0";
  probe.willing.push_back(0);
  probe.willing.push_back(1);
  std::vector<double> lat_ns;
  for (int i = 0; i < 33; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    const FlowId f = runtime.control().add_members(probe, 1);
    lat_ns.push_back(std::chrono::duration<double, std::nano>(
                         std::chrono::steady_clock::now() - t0)
                         .count());
    runtime.control().remove_member(f);
  }
  std::sort(lat_ns.begin(), lat_ns.end());
  cell.publish_p50_ns = lat_ns[lat_ns.size() / 2];

  runtime.start();
  LoadGeneratorOptions load;
  load.producers = 1;
  load.packet_bytes = 1000;
  LoadGenerator generator(runtime, load);
  const auto t0 = std::chrono::steady_clock::now();
  generator.start();
  std::this_thread::sleep_for(std::chrono::duration<double>(duration_s));
  generator.stop();
  runtime.stop();
  cell.duration_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const RuntimeStats stats = runtime.stats();
  cell.dequeued = stats.dequeued;
  cell.pps = static_cast<double>(stats.dequeued) / cell.duration_s;
  return cell;
}

void emit_cell_common(std::ostringstream& json, const Cell& c) {
  json << "\"pps\": " << c.pps << ", \"dequeued\": " << c.dequeued
       << ", \"duration_s\": " << c.duration_s
       << ", \"latency_p50_ns\": " << c.p50_ns
       << ", \"latency_p99_ns\": " << c.p99_ns;
}

}  // namespace

int main(int argc, char** argv) {
  double duration_s = 2.0;
  std::string out_path = "BENCH_rt.json";
  bool scale_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (key == "--scale-only") scale_only = true;
    else if (key == "--duration" && i + 1 < argc)
      duration_s = std::stod(argv[++i]);
    else if (key == "--out" && i + 1 < argc) out_path = argv[++i];
    else {
      std::cerr << "usage: rt_throughput [--duration S] [--out FILE] "
                   "[--scale-only]\n";
      return 2;
    }
  }

  const std::vector<std::size_t> flow_counts = scale_only
                                                   ? std::vector<std::size_t>{}
                                                   : std::vector<std::size_t>{
                                                         256, 1024};
  const std::vector<std::size_t> worker_counts = {1, 2, 4, 8};

  std::vector<Cell> cells;
  for (const std::size_t flows : flow_counts) {
    for (const std::size_t workers : worker_counts) {
      for (const bool telemetry : {false, true}) {
        std::cerr << "rt_throughput: " << flows << " flows, " << workers
                  << " workers, telemetry " << (telemetry ? "on" : "off")
                  << "..." << std::flush;
        const Cell cell = run_cell(flows, workers, duration_s, telemetry);
        std::cerr << " " << cell.pps / 1e6 << " Mpps, p50 "
                  << cell.p50_ns / 1e3 << " us, p99 " << cell.p99_ns / 1e3
                  << " us\n";
        cells.push_back(cell);
      }
    }
  }

  // Fan-in batch sweep: single worker, 256 flows, telemetry off.
  const std::vector<std::size_t> batch_sizes =
      scale_only ? std::vector<std::size_t>{}
                 : std::vector<std::size_t>{128, 256, 512, 1024, 2048};
  std::vector<Cell> batch_cells;
  for (const std::size_t batch : batch_sizes) {
    std::cerr << "rt_throughput: fanin_batch " << batch << "..." << std::flush;
    const Cell cell = run_cell(256, 1, duration_s, false, batch);
    std::cerr << " " << cell.pps / 1e6 << " Mpps, p99 " << cell.p99_ns / 1e3
              << " us\n";
    batch_cells.push_back(cell);
  }

  // Payload sweep: what real payload bytes cost, and the pool's share.
  std::vector<Cell> payload_cells;
  if (!scale_only) {
    for (const PayloadMode mode :
         {PayloadMode::kNone, PayloadMode::kHeap, PayloadMode::kPooled}) {
      std::cerr << "rt_throughput: payload " << payload_name(mode) << "..."
                << std::flush;
      const Cell cell = run_cell(256, 1, duration_s, false, 0, mode);
      std::cerr << " " << cell.pps / 1e6 << " Mpps\n";
      payload_cells.push_back(cell);
    }
  }

  // Latency attribution: the single-worker cell with stage tracing off
  // vs the default 1-in-64 sampling.  The pps ratio is the tracing
  // overhead (budget >= 0.95); the traced cell carries the per-stage
  // breakdown so the bench output doubles as a worked example.
  std::vector<Cell> attribution_cells;
  if (!scale_only) {
    for (const std::uint32_t sample : {0u, 64u}) {
      std::cerr << "rt_throughput: stage_sample " << sample << "..."
                << std::flush;
      const Cell cell = run_cell(256, 1, duration_s, false, 0,
                                 PayloadMode::kNone, sample);
      std::cerr << " " << cell.pps / 1e6 << " Mpps";
      if (sample > 0) {
        std::cerr << ", " << cell.trace_completed << " samples, e2e p99 "
                  << cell.e2e.p99_ns / 1e3 << " us";
      }
      std::cerr << "\n";
      attribution_cells.push_back(cell);
    }
  }

  // SLO burn under sustained 2x overload: a 5 ms p99 objective against
  // ~20 ms queue residence must burn far above 1 on both windows.
  std::vector<SloCell> slo_cells;
  if (!scale_only) {
    std::cerr << "rt_throughput: slo burn, 2x overload, p99 target 5 ms..."
              << std::flush;
    slo_cells.push_back(run_slo_cell(5'000'000, 2.0, duration_s));
    std::cerr << " burn short " << slo_cells.back().burn_short << " / long "
              << slo_cells.back().burn_long << " ("
              << slo_cells.back().violations << "/"
              << slo_cells.back().samples << " violations)\n";
  }

  // Overload shedding: the same 2x-overloaded cell with the fan-in
  // watermark off and on.  "Off" still has per-flow queue caps (tail
  // drops); "on" sheds weight-aware at fan-in and must hold Jain >= 0.9.
  std::vector<OverloadCell> overload_cells;
  if (!scale_only) {
    for (const std::uint64_t shed :
         {std::uint64_t{0}, std::uint64_t{262144}}) {
      std::cerr << "rt_throughput: 2x overload, shed_bytes " << shed << "..."
                << std::flush;
      const OverloadCell cell = run_overload_cell(shed, 2.0, duration_s);
      std::cerr << " jain " << cell.jain << ", utilization "
                << cell.utilization << "\n";
      overload_cells.push_back(cell);
    }
  }

  // Adaptive shedding: same overload, but the watermark is derived live
  // from measured drain rate + a 5 ms p99 objective instead of a fixed
  // byte count.  Comparable Jain / utilization to the fixed cells above.
  std::vector<AdaptiveCell> adaptive_cells;
  if (!scale_only) {
    std::cerr << "rt_throughput: 2x overload, adaptive shed (target p99 5 "
                 "ms)..."
              << std::flush;
    const AdaptiveCell cell = run_adaptive_cell(5'000'000, 2.0, duration_s);
    std::cerr << " jain " << cell.jain << ", utilization " << cell.utilization
              << ", shed_bytes -> " << cell.final_shed_bytes << " ("
              << cell.retunes << " retunes)\n";
    adaptive_cells.push_back(cell);
  }

  // Egress backend sweep: sim sink vs real UDP sockets over loopback,
  // with the udp cells sweeping the sendmmsg batch cap.
  std::vector<EgressCell> egress_cells;
  if (!scale_only) {
    egress_cells.push_back(run_egress_cell(EgressKind::kSim, 0, duration_s));
    std::cerr << "rt_throughput: egress sim... "
              << egress_cells.back().pps / 1e6 << " Mpps\n";
    for (const std::size_t batch :
         {std::size_t{1}, std::size_t{32}, std::size_t{256}}) {
      std::cerr << "rt_throughput: egress udp, batch " << batch << "..."
                << std::flush;
      const EgressCell cell =
          run_egress_cell(EgressKind::kUdp, batch, duration_s);
      std::cerr << " " << cell.pps / 1e6 << " Mpps, "
                << (cell.syscalls > 0
                        ? static_cast<double>(cell.sent) /
                              static_cast<double>(cell.syscalls)
                        : 0)
                << " pkts/syscall\n";
      egress_cells.push_back(cell);
    }
    // io_uring cell: same topology and burst depth, one submit per burst.
    // Skipped VISIBLY when the build or kernel lacks io_uring -- a silent
    // skip would read as "not faster" instead of "not measured".
    if (!midrr::io::uring_supported()) {
      std::cerr << "rt_throughput: egress uring SKIPPED (built without "
                   "-DMIDRR_WITH_URING=ON)\n";
    } else if (int probe_errno = 0;
               !midrr::io::uring_runtime_available(&probe_errno)) {
      std::cerr << "rt_throughput: egress uring SKIPPED (kernel denies "
                   "io_uring_setup: "
                << std::strerror(probe_errno) << ")\n";
    } else {
      for (const EgressKind kind :
           {EgressKind::kUring, EgressKind::kUringCopy}) {
        const char* label =
            kind == EgressKind::kUring ? "uring" : "uring-copy";
        std::cerr << "rt_throughput: egress " << label << "..." << std::flush;
        const EgressCell cell = run_egress_cell(kind, 0, duration_s);
        std::cerr << " " << cell.pps / 1e6 << " Mpps, "
                  << (cell.syscalls > 0
                          ? static_cast<double>(cell.sent) /
                                static_cast<double>(cell.syscalls)
                          : 0)
                  << " pkts/syscall, peak inflight " << cell.peak_inflight
                  << ", " << cell.fixed_sends << " zero-copy / "
                  << cell.fallback_sends << " fallback sends\n";
        egress_cells.push_back(cell);
      }
    }
  }

  // Class-aggregation scale sweep: same 1000 classes at 10k and 1M flows.
  // Registration batches by class, the runtime schedules hmidrr, and the
  // publish probe measures a one-member delta against the loaded table.
  std::vector<ScaleCell> scale_cells;
  for (const auto& cfg : std::vector<std::pair<std::size_t, std::size_t>>{
           {10'000, 10}, {1'000'000, 1'000}}) {
    std::cerr << "rt_throughput: scale " << cfg.first << " flows / "
              << cfg.second << " per class..." << std::flush;
    const ScaleCell cell =
        run_scale_cell(cfg.first, cfg.second, std::min(duration_s, 2.0));
    std::cerr << " " << cell.classes << " classes, register "
              << cell.register_s << " s, publish p50 "
              << cell.publish_p50_ns / 1e3 << " us, rss/flow "
              << cell.rss_bytes_per_flow << " B, " << cell.pps / 1e6
              << " Mpps\n";
    scale_cells.push_back(cell);
  }

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"rt_throughput\",\n"
       << "  \"ifaces\": 8,\n"
       << "  \"producers\": 1,\n"
       << "  \"packet_bytes\": 1000,\n"
       << "  \"shards\": \"= workers\",\n"
       << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "  \"note\": \"pps scaling across workers requires as many free "
          "cores; on a 1-core host the sweep measures overhead, not "
          "speedup\",\n"
       << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    json << "    {\"flows\": " << c.flows << ", \"workers\": " << c.workers
         << ", \"telemetry\": " << (c.telemetry ? "true" : "false") << ", ";
    emit_cell_common(json, c);
    json << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  // Adjacent off/on pairs share a configuration; their ratio isolates the
  // metrics hot-path cost (relaxed atomic bumps in the observer + workers).
  json << "  ],\n  \"telemetry_overhead\": [\n";
  bool first = true;
  for (std::size_t i = 0; i + 1 < cells.size(); i += 2) {
    const Cell& off = cells[i];
    const Cell& on = cells[i + 1];
    if (off.telemetry || !on.telemetry) continue;  // defensive: expect pairs
    if (!first) json << ",\n";
    first = false;
    json << "    {\"flows\": " << off.flows << ", \"workers\": " << off.workers
         << ", \"pps_off\": " << off.pps << ", \"pps_on\": " << on.pps
         << ", \"on_over_off\": " << (off.pps > 0 ? on.pps / off.pps : 0)
         << "}";
  }
  json << "\n  ],\n  \"fanin_batch_sweep\": [\n";
  for (std::size_t i = 0; i < batch_cells.size(); ++i) {
    const Cell& c = batch_cells[i];
    json << "    {\"fanin_batch\": " << c.fanin_batch << ", ";
    emit_cell_common(json, c);
    json << "}" << (i + 1 < batch_cells.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"payload_sweep\": [\n";
  for (std::size_t i = 0; i < payload_cells.size(); ++i) {
    const Cell& c = payload_cells[i];
    json << "    {\"payload\": \"" << payload_name(c.payload) << "\", ";
    emit_cell_common(json, c);
    if (c.payload == PayloadMode::kPooled) {
      json << ", \"pool\": {\"slabs\": " << c.pool.slabs
           << ", \"acquired\": " << c.pool.acquired
           << ", \"released\": " << c.pool.released
           << ", \"misses\": " << c.pool.misses
           << ", \"cross_thread_returns\": " << c.pool.cross_thread_returns
           << ", \"overflow_returns\": " << c.pool.overflow_returns << "}";
    }
    json << "}" << (i + 1 < payload_cells.size() ? "," : "") << "\n";
  }
  // Tracing off vs 1-in-64 at the same configuration; traced_over_base is
  // the number the <= 5% overhead budget bounds in CI.
  json << "  ],\n  \"latency_attribution\": ";
  if (attribution_cells.size() == 2) {
    const Cell& base = attribution_cells[0];
    const Cell& traced = attribution_cells[1];
    json << "{\n    \"sample_every\": " << traced.stage_sample
         << ", \"pps_base\": " << base.pps
         << ", \"pps_traced\": " << traced.pps << ", \"traced_over_base\": "
         << (base.pps > 0 ? traced.pps / base.pps : 0) << ",\n"
         << "    \"trace\": {\"started\": " << traced.trace_started
         << ", \"completed\": " << traced.trace_completed
         << ", \"lost\": " << traced.trace_lost
         << ", \"dropped\": " << traced.trace_dropped << "},\n"
         << "    \"reconciliation_error\": " << traced.reconciliation_error
         << ",\n    \"stages\": [";
    for (std::size_t s = 0; s < midrr::telemetry::kStageCount; ++s) {
      json << (s > 0 ? ", " : "") << "{\"stage\": \""
           << midrr::telemetry::to_string(
                  static_cast<midrr::telemetry::Stage>(s))
           << "\", \"p50_ns\": " << traced.stages[s].p50_ns
           << ", \"p99_ns\": " << traced.stages[s].p99_ns << "}";
    }
    json << "],\n    \"e2e\": {\"p50_ns\": " << traced.e2e.p50_ns
         << ", \"p99_ns\": " << traced.e2e.p99_ns << "}\n  }";
  } else {
    json << "null";
  }
  json << ",\n  \"slo_burn\": ";
  if (!slo_cells.empty()) {
    const SloCell& c = slo_cells.front();
    json << "{\"target_p99_ns\": " << c.target_ns
         << ", \"overload\": " << c.overload << ", \"samples\": " << c.samples
         << ", \"violations\": " << c.violations
         << ", \"burn_short\": " << c.burn_short
         << ", \"burn_long\": " << c.burn_long
         << ", \"duration_s\": " << c.duration_s << "}";
  } else {
    json << "null";
  }
  json << ",\n  \"overload_shedding\": [\n";
  for (std::size_t i = 0; i < overload_cells.size(); ++i) {
    const OverloadCell& c = overload_cells[i];
    json << "    {\"shed_bytes\": " << c.shed_bytes
         << ", \"overload\": " << c.overload << ", \"jain\": " << c.jain
         << ", \"utilization\": " << c.utilization
         << ", \"shed_drops\": " << c.shed_drops
         << ", \"tail_drops\": " << c.tail_drops
         << ", \"duration_s\": " << c.duration_s << "}"
         << (i + 1 < overload_cells.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"adaptive_shedding\": ";
  if (!adaptive_cells.empty()) {
    const AdaptiveCell& c = adaptive_cells.front();
    json << "{\"target_p99_ns\": " << c.target_p99_ns
         << ", \"overload\": " << c.overload << ", \"jain\": " << c.jain
         << ", \"utilization\": " << c.utilization
         << ", \"final_shed_bytes\": " << c.final_shed_bytes
         << ", \"windowed_p99_ns\": " << c.windowed_p99_ns
         << ", \"correction\": " << c.correction
         << ", \"retunes\": " << c.retunes
         << ", \"shed_engages\": " << c.shed_engages
         << ", \"shed_drops\": " << c.shed_drops
         << ", \"tail_drops\": " << c.tail_drops
         << ", \"duration_s\": " << c.duration_s << "}";
  } else {
    json << "null";
  }
  // Sim vs loopback-UDP egress.  The note travels with the data because
  // these cells are easy to misread as a NIC throughput claim.
  json << ",\n  \"egress_sweep_note\": \"loopback is not NIC-bound: udp "
          "and uring cells meter serialization overhead and syscall "
          "amortization (sendmmsg max_batch vs coalesced io_uring "
          "submits), not wire throughput; SEND_ZC on loopback always "
          "copies kernel-side (zero-copy cannot pay off here, and the "
          "per-packet notification CQE plus completion-driven double "
          "handling cost a single-core host some pps vs sendmmsg), so "
          "uring-copy (sendmsg fallback, one CQE per packet) isolates "
          "the notification cost\",\n"
          "  \"egress_sweep\": [\n";
  for (std::size_t i = 0; i < egress_cells.size(); ++i) {
    const EgressCell& c = egress_cells[i];
    json << "    {\"backend\": \"" << c.backend << "\"";
    if (c.max_batch != 0) json << ", \"max_batch\": " << c.max_batch;
    json << ", \"pps\": " << c.pps << ", \"sent\": " << c.sent
         << ", \"syscalls\": " << c.syscalls
         << ", \"pkts_per_syscall\": "
         << (c.syscalls > 0 ? static_cast<double>(c.sent) /
                                  static_cast<double>(c.syscalls)
                            : 0)
         << ", \"io_requeued\": " << c.requeued
         << ", \"io_drops\": " << c.io_drops;
    if (std::string(c.backend).rfind("uring", 0) == 0) {
      json << ", \"peak_inflight\": " << c.peak_inflight
           << ", \"fixed_sends\": " << c.fixed_sends
           << ", \"fallback_sends\": " << c.fallback_sends;
    }
    json << ", \"latency_p50_ns\": " << c.p50_ns
         << ", \"latency_p99_ns\": " << c.p99_ns
         << ", \"duration_s\": " << c.duration_s << "}"
         << (i + 1 < egress_cells.size() ? "," : "") << "\n";
  }
  // Equal class counts at 100x different flow counts: the publish-latency
  // ratio is the evidence that control-plane cost tracks classes, not
  // flows.  CI bounds the ratio and the per-flow resident bytes.
  json << "  ],\n  \"scale_sweep\": [\n";
  for (std::size_t i = 0; i < scale_cells.size(); ++i) {
    const ScaleCell& c = scale_cells[i];
    json << "    {\"flows\": " << c.flows
         << ", \"flows_per_class\": " << c.flows_per_class
         << ", \"classes\": " << c.classes
         << ", \"register_s\": " << c.register_s
         << ", \"rss_delta_bytes\": " << c.rss_delta_bytes
         << ", \"rss_bytes_per_flow\": " << c.rss_bytes_per_flow
         << ", \"publish_p50_ns\": " << c.publish_p50_ns
         << ", \"pps\": " << c.pps << ", \"dequeued\": " << c.dequeued
         << ", \"duration_s\": " << c.duration_s << "}"
         << (i + 1 < scale_cells.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"scale_publish_ratio\": "
       << (scale_cells.size() == 2 && scale_cells[0].publish_p50_ns > 0
               ? scale_cells[1].publish_p50_ns / scale_cells[0].publish_p50_ns
               : 0)
       << "\n}\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 1;
  }
  out << json.str();
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
