// rt_throughput: sweep the real-time runtime's worker count and record
// packets/s plus enqueue->dequeue latency percentiles into BENCH_rt.json.
//
//   rt_throughput [--duration S] [--out FILE]
//
// Three sweeps, all over 8 unpaced interfaces with one producer thread:
//   1. workers in {1, 2, 4, 8} (shards = workers, the scaling
//      configuration) at 256 and 1024 flows, each cell twice: telemetry
//      off and on (a live MetricsRegistry with the full runtime +
//      per-shard scheduler instrumentation, no tracing).  The on/off pps
//      ratio is the metrics hot-path overhead.
//   2. fan-in batch size in {128 .. 2048} at the single-worker cell --
//      how RuntimeOptions::fanin_batch trades shard-lock/wakeup
//      amortization against burstiness.
//   3. payload mode none/heap/pooled at the single-worker cell -- the
//      cost of carrying real 1000-byte payloads, and how much of it the
//      frame pool wins back (pool counters included for the pooled cell).
// NOTE: results depend on the host's core count; the JSON records
// std::thread::hardware_concurrency() so a reader can tell a 1-core CI
// box (where workers time-slice one core and pps cannot scale) from a
// real multicore run.
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "runtime/load_generator.hpp"
#include "runtime/runtime.hpp"
#include "telemetry/metrics.hpp"

namespace {

using midrr::PacketPoolStats;
using PayloadMode = midrr::rt::LoadGeneratorOptions::PayloadMode;

struct Cell {
  std::size_t flows;
  std::size_t workers;
  bool telemetry = false;
  std::size_t fanin_batch = 0;  // 0 = RuntimeOptions default
  PayloadMode payload = PayloadMode::kNone;
  double pps = 0;
  double p50_ns = 0;
  double p99_ns = 0;
  std::uint64_t dequeued = 0;
  double duration_s = 0;
  PacketPoolStats pool{};
};

const char* payload_name(PayloadMode mode) {
  switch (mode) {
    case PayloadMode::kHeap: return "heap";
    case PayloadMode::kPooled: return "pooled";
    default: return "none";
  }
}

Cell run_cell(std::size_t flows, std::size_t workers, double duration_s,
              bool telemetry, std::size_t fanin_batch = 0,
              PayloadMode payload = PayloadMode::kNone) {
  using namespace midrr;
  using namespace midrr::rt;

  constexpr std::size_t kIfaces = 8;
  // Outlives the runtime: registered callbacks point into runtime state.
  midrr::telemetry::MetricsRegistry registry;
  RuntimeOptions options;
  options.workers = workers;
  options.shards = workers;  // the scaling configuration
  options.producers = 1;
  options.max_flows = flows;
  if (fanin_batch != 0) options.fanin_batch = fanin_batch;
  if (telemetry) options.metrics = &registry;

  Runtime runtime(options);
  for (std::size_t j = 0; j < kIfaces; ++j) {
    runtime.add_interface("if" + std::to_string(j));
  }
  for (std::size_t i = 0; i < flows; ++i) {
    RtFlowSpec spec;
    spec.willing.push_back(static_cast<IfaceId>(i % kIfaces));
    spec.willing.push_back(static_cast<IfaceId>((i + 1) % kIfaces));
    runtime.control().add_flow(spec);
  }

  runtime.start();
  LoadGeneratorOptions load;
  load.producers = 1;
  load.packet_bytes = 1000;
  load.payload = payload;
  LoadGenerator generator(runtime, load);

  const auto t0 = std::chrono::steady_clock::now();
  generator.start();
  std::this_thread::sleep_for(std::chrono::duration<double>(duration_s));
  generator.stop();
  runtime.stop();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const RuntimeStats stats = runtime.stats();
  Cell cell;
  cell.flows = flows;
  cell.workers = workers;
  cell.telemetry = telemetry;
  cell.fanin_batch = fanin_batch;
  cell.payload = payload;
  cell.dequeued = stats.dequeued;
  cell.duration_s = elapsed;
  cell.pps = static_cast<double>(stats.dequeued) / elapsed;
  cell.p50_ns = stats.latency_p50_ns;
  cell.p99_ns = stats.latency_p99_ns;
  cell.pool = generator.pool_stats();
  return cell;
}

// Overload cell: one paced interface, equal flows, the generator offering a
// fixed multiple of capacity.  Records the Jain fairness index of per-flow
// goodput over the settled window -- the number the shedding watermark is
// supposed to protect -- plus where the excess went.
struct OverloadCell {
  std::uint64_t shed_bytes = 0;
  double overload = 0;
  double jain = 0;
  double utilization = 0;
  std::uint64_t shed_drops = 0;
  std::uint64_t tail_drops = 0;
  double duration_s = 0;
};

OverloadCell run_overload_cell(std::uint64_t shed_bytes, double overload,
                               double duration_s) {
  using namespace midrr;
  using namespace midrr::rt;

  constexpr std::size_t kFlows = 8;
  const double capacity_bps = 200e6;
  RuntimeOptions options;
  options.shed_bytes = shed_bytes;
  options.max_flows = kFlows;
  Runtime runtime(options);
  runtime.add_interface("if0", RateProfile(capacity_bps));
  std::vector<FlowId> flows;
  for (std::size_t i = 0; i < kFlows; ++i) {
    RtFlowSpec spec;
    spec.willing.push_back(0);
    spec.name = "f" + std::to_string(i);
    flows.push_back(runtime.control().add_flow(spec));
  }
  runtime.start();
  LoadGeneratorOptions load;
  load.packet_bytes = 1000;
  load.rate_pps = overload * capacity_bps / (8.0 * 1000.0);
  LoadGenerator generator(runtime, load);
  generator.start();

  // Warm up 25% of the budget, measure goodput over the rest.
  std::this_thread::sleep_for(std::chrono::duration<double>(duration_s / 4));
  std::vector<std::uint64_t> before;
  before.reserve(kFlows);
  for (const FlowId f : flows) before.push_back(runtime.sent_bytes(f));
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(
      std::chrono::duration<double>(duration_s * 3 / 4));
  double sum = 0, sq = 0, total = 0;
  for (std::size_t i = 0; i < kFlows; ++i) {
    const double x =
        static_cast<double>(runtime.sent_bytes(flows[i]) - before[i]);
    sum += x;
    sq += x * x;
    total += x;
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  generator.stop();
  runtime.stop();

  const RuntimeStats stats = runtime.stats();
  OverloadCell cell;
  cell.shed_bytes = shed_bytes;
  cell.overload = overload;
  cell.jain = sq > 0 ? sum * sum / (static_cast<double>(kFlows) * sq) : 1.0;
  cell.utilization = total * 8.0 / elapsed / capacity_bps;
  cell.shed_drops = stats.shed_drops;
  cell.tail_drops = stats.tail_drops;
  cell.duration_s = elapsed;
  return cell;
}

void emit_cell_common(std::ostringstream& json, const Cell& c) {
  json << "\"pps\": " << c.pps << ", \"dequeued\": " << c.dequeued
       << ", \"duration_s\": " << c.duration_s
       << ", \"latency_p50_ns\": " << c.p50_ns
       << ", \"latency_p99_ns\": " << c.p99_ns;
}

}  // namespace

int main(int argc, char** argv) {
  double duration_s = 2.0;
  std::string out_path = "BENCH_rt.json";
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    if (key == "--duration") duration_s = std::stod(argv[i + 1]);
    else if (key == "--out") out_path = argv[i + 1];
    else {
      std::cerr << "usage: rt_throughput [--duration S] [--out FILE]\n";
      return 2;
    }
  }

  const std::vector<std::size_t> flow_counts = {256, 1024};
  const std::vector<std::size_t> worker_counts = {1, 2, 4, 8};

  std::vector<Cell> cells;
  for (const std::size_t flows : flow_counts) {
    for (const std::size_t workers : worker_counts) {
      for (const bool telemetry : {false, true}) {
        std::cerr << "rt_throughput: " << flows << " flows, " << workers
                  << " workers, telemetry " << (telemetry ? "on" : "off")
                  << "..." << std::flush;
        const Cell cell = run_cell(flows, workers, duration_s, telemetry);
        std::cerr << " " << cell.pps / 1e6 << " Mpps, p50 "
                  << cell.p50_ns / 1e3 << " us, p99 " << cell.p99_ns / 1e3
                  << " us\n";
        cells.push_back(cell);
      }
    }
  }

  // Fan-in batch sweep: single worker, 256 flows, telemetry off.
  const std::vector<std::size_t> batch_sizes = {128, 256, 512, 1024, 2048};
  std::vector<Cell> batch_cells;
  for (const std::size_t batch : batch_sizes) {
    std::cerr << "rt_throughput: fanin_batch " << batch << "..." << std::flush;
    const Cell cell = run_cell(256, 1, duration_s, false, batch);
    std::cerr << " " << cell.pps / 1e6 << " Mpps, p99 " << cell.p99_ns / 1e3
              << " us\n";
    batch_cells.push_back(cell);
  }

  // Payload sweep: what real payload bytes cost, and the pool's share.
  std::vector<Cell> payload_cells;
  for (const PayloadMode mode :
       {PayloadMode::kNone, PayloadMode::kHeap, PayloadMode::kPooled}) {
    std::cerr << "rt_throughput: payload " << payload_name(mode) << "..."
              << std::flush;
    const Cell cell = run_cell(256, 1, duration_s, false, 0, mode);
    std::cerr << " " << cell.pps / 1e6 << " Mpps\n";
    payload_cells.push_back(cell);
  }

  // Overload shedding: the same 2x-overloaded cell with the fan-in
  // watermark off and on.  "Off" still has per-flow queue caps (tail
  // drops); "on" sheds weight-aware at fan-in and must hold Jain >= 0.9.
  std::vector<OverloadCell> overload_cells;
  for (const std::uint64_t shed : {std::uint64_t{0}, std::uint64_t{262144}}) {
    std::cerr << "rt_throughput: 2x overload, shed_bytes " << shed << "..."
              << std::flush;
    const OverloadCell cell = run_overload_cell(shed, 2.0, duration_s);
    std::cerr << " jain " << cell.jain << ", utilization "
              << cell.utilization << "\n";
    overload_cells.push_back(cell);
  }

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"rt_throughput\",\n"
       << "  \"ifaces\": 8,\n"
       << "  \"producers\": 1,\n"
       << "  \"packet_bytes\": 1000,\n"
       << "  \"shards\": \"= workers\",\n"
       << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "  \"note\": \"pps scaling across workers requires as many free "
          "cores; on a 1-core host the sweep measures overhead, not "
          "speedup\",\n"
       << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    json << "    {\"flows\": " << c.flows << ", \"workers\": " << c.workers
         << ", \"telemetry\": " << (c.telemetry ? "true" : "false") << ", ";
    emit_cell_common(json, c);
    json << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  // Adjacent off/on pairs share a configuration; their ratio isolates the
  // metrics hot-path cost (relaxed atomic bumps in the observer + workers).
  json << "  ],\n  \"telemetry_overhead\": [\n";
  bool first = true;
  for (std::size_t i = 0; i + 1 < cells.size(); i += 2) {
    const Cell& off = cells[i];
    const Cell& on = cells[i + 1];
    if (off.telemetry || !on.telemetry) continue;  // defensive: expect pairs
    if (!first) json << ",\n";
    first = false;
    json << "    {\"flows\": " << off.flows << ", \"workers\": " << off.workers
         << ", \"pps_off\": " << off.pps << ", \"pps_on\": " << on.pps
         << ", \"on_over_off\": " << (off.pps > 0 ? on.pps / off.pps : 0)
         << "}";
  }
  json << "\n  ],\n  \"fanin_batch_sweep\": [\n";
  for (std::size_t i = 0; i < batch_cells.size(); ++i) {
    const Cell& c = batch_cells[i];
    json << "    {\"fanin_batch\": " << c.fanin_batch << ", ";
    emit_cell_common(json, c);
    json << "}" << (i + 1 < batch_cells.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"payload_sweep\": [\n";
  for (std::size_t i = 0; i < payload_cells.size(); ++i) {
    const Cell& c = payload_cells[i];
    json << "    {\"payload\": \"" << payload_name(c.payload) << "\", ";
    emit_cell_common(json, c);
    if (c.payload == PayloadMode::kPooled) {
      json << ", \"pool\": {\"slabs\": " << c.pool.slabs
           << ", \"acquired\": " << c.pool.acquired
           << ", \"released\": " << c.pool.released
           << ", \"misses\": " << c.pool.misses
           << ", \"cross_thread_returns\": " << c.pool.cross_thread_returns
           << ", \"overflow_returns\": " << c.pool.overflow_returns << "}";
    }
    json << "}" << (i + 1 < payload_cells.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"overload_shedding\": [\n";
  for (std::size_t i = 0; i < overload_cells.size(); ++i) {
    const OverloadCell& c = overload_cells[i];
    json << "    {\"shed_bytes\": " << c.shed_bytes
         << ", \"overload\": " << c.overload << ", \"jain\": " << c.jain
         << ", \"utilization\": " << c.utilization
         << ", \"shed_drops\": " << c.shed_drops
         << ", \"tail_drops\": " << c.tail_drops
         << ", \"duration_s\": " << c.duration_s << "}"
         << (i + 1 < overload_cells.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 1;
  }
  out << json.str();
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
