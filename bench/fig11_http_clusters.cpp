// Figure 11 reproduction: the clusters formed while the HTTP proxy
// schedules across two fluctuating interfaces (same run as Fig 10).
//
// Paper: while if1 is the faster interface, flow b clusters with flow a on
// if1 ({a,b | if1}, {c | if2}); when if2 becomes faster the clustering
// flips to ({a | if1}, {b,c | if2}).
#include <iostream>

#include "bench/common.hpp"
#include "http/proxy.hpp"

int main(int, char**) {
  using namespace midrr;
  using namespace midrr::http;

  std::cout << "Reproduction of Figure 11 (clusters during the HTTP run)\n";
  auto if1 = RateProfile::steps({{0, mbps(8)},
                                 {20 * kSecond, mbps(2)},
                                 {40 * kSecond, mbps(8)},
                                 {60 * kSecond, mbps(2)}});
  auto if2 = RateProfile::steps({{0, mbps(2)},
                                 {20 * kSecond, mbps(8)},
                                 {40 * kSecond, mbps(2)},
                                 {60 * kSecond, mbps(8)}});
  ProxyOptions opt;
  opt.cluster_interval = 2 * kSecond;
  HttpRangeProxy proxy(
      {{"if1", std::move(if1)}, {"if2", std::move(if2)}},
      {{"a", 1.0, {"if1"}, 0}, {"b", 1.0, {"if1", "if2"}, 0},
       {"c", 1.0, {"if2"}, 0}},
      opt);
  const auto result = proxy.run(80 * kSecond);

  bench::section("clusters over time");
  for (const auto& snap : result.clusters) {
    std::cout << "  t=" << to_seconds(snap.at) << " s: " << snap.rendering
              << "\n";
  }

  bench::section("shape check");
  // In the middle of each phase, b must share a cluster with the fast
  // interface's dedicated flow.
  int correct = 0;
  int checked = 0;
  for (const auto& snap : result.clusters) {
    const double t = to_seconds(snap.at);
    const double phase = std::fmod(t, 40.0);
    const bool if1_fast = phase < 20.0;
    const bool mid_phase = std::fmod(t, 20.0) > 6.0 &&
                           std::fmod(t, 20.0) < 18.0;
    if (!mid_phase) continue;
    ++checked;
    // flows indexed a=0, b=1, c=2.
    const auto& fc = snap.analysis.flow_cluster;
    if (fc[1] == (if1_fast ? fc[0] : fc[2])) ++correct;
  }
  std::cout << "  b clustered with the faster interface's flow in "
            << correct << "/" << checked << " mid-phase snapshots\n"
            << "  paper: {a,b | if1},{c | if2} while if1 fast; "
               "{a | if1},{b,c | if2} while if2 fast\n";
  return 0;
}
