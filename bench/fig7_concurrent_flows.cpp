// Figure 7 reproduction: CDF of the number of concurrent flows on a
// smartphone over one week of (synthetic) use, active periods only.
//
// The authors' Android logs are private; the generator in src/trace is an
// M/G/inf + web-burst model calibrated to the paper's two reported
// statistics: P(N >= 7 | active) ~ 10% and max N = 35.
#include <iostream>

#include "bench/common.hpp"
#include "trace/smartphone.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace midrr;
  using namespace midrr::trace;

  std::cout << "Reproduction of Figure 7 (CDF of concurrent flows)\n";
  const SmartphoneTraceConfig config;
  const auto result = generate_smartphone_trace(config);

  bench::section("CDF over active periods");
  bench::Table table({"N flows", "P(X <= N)"});
  for (const std::uint32_t n :
       {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 10u, 12u, 15u, 20u, 25u, 30u, 35u}) {
    table.row_values(std::to_string(n),
                     {result.active_cdf.cdf(static_cast<double>(n))}, 3);
  }

  bench::section("paper vs measured");
  bench::compare("P(N >= 7 | active)", 0.10, result.p_at_least(7), 0.35);
  bench::compare("max concurrent flows", 35.0,
                 static_cast<double>(result.max_concurrent), 0.30);
  std::cout << "  total synthetic flows over the week: " << result.total_flows
            << "\n  fraction of samples active: " << result.fraction_active
            << "\n  median concurrent (active): "
            << result.active_cdf.quantile(0.5) << "\n";

  if (bench::has_flag(argc, argv, "--csv")) {
    bench::section("raw CDF (CSV)");
    write_cdf_csv(std::cout, result.active_cdf, "concurrent_flows");
  }
  return 0;
}
