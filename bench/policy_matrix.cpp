// Policy matrix: every shipping policy on four canonical scenarios, with
// the metrics that matter -- per-flow rate, weighted Jain fairness index,
// minimum normalized rate (the max-min objective), and the p99 queueing
// delay of a latency-sensitive flow.  The one-table overview of why miDRR
// is the right default.
#include <iostream>

#include "bench/common.hpp"
#include "core/scenario.hpp"
#include "fairness/maxmin.hpp"

namespace {

using namespace midrr;

const Policy kPolicies[] = {
    Policy::kMiDrr,       Policy::kOracle,        Policy::kNaiveDrr,
    Policy::kPerIfaceWfq, Policy::kRoundRobin,    Policy::kFifo,
    Policy::kStrictPriority,
};

struct NamedScenario {
  const char* title;
  Scenario scenario;
  std::vector<double> weights;
};

NamedScenario fig1c() {
  NamedScenario ns;
  ns.title = "Fig 1(c): a{if1,if2}, b{if2}, 2x1 Mb/s";
  ns.scenario.interface("if1", RateProfile(mbps(1)));
  ns.scenario.interface("if2", RateProfile(mbps(1)));
  ns.scenario.backlogged_flow("a", 1.0, {"if1", "if2"});
  ns.scenario.backlogged_flow("b", 1.0, {"if2"});
  ns.weights = {1.0, 1.0};
  return ns;
}

NamedScenario fig6() {
  NamedScenario ns;
  ns.title = "Fig 6 phase 1: a{if1} w1, b{both} w2, c{if2} w1";
  ns.scenario.interface("if1", RateProfile(mbps(3)));
  ns.scenario.interface("if2", RateProfile(mbps(10)));
  ns.scenario.backlogged_flow("a", 1.0, {"if1"});
  ns.scenario.backlogged_flow("b", 2.0, {"if1", "if2"});
  ns.scenario.backlogged_flow("c", 1.0, {"if2"});
  ns.weights = {1.0, 2.0, 1.0};
  return ns;
}

NamedScenario voip_bulk() {
  NamedScenario ns;
  ns.title = "VoIP (CBR 100 kb/s) vs two bulk flows on 2 Mb/s";
  ns.scenario.interface("if1", RateProfile(mbps(2)));
  ScenarioFlowSpec voip;
  voip.name = "voip";
  voip.ifaces = {"if1"};
  voip.make_source = [] { return std::make_unique<CbrSource>(mbps(0.1), 200); };
  ns.scenario.flow(std::move(voip));
  ns.scenario.backlogged_flow("bulk1", 1.0, {"if1"});
  ns.scenario.backlogged_flow("bulk2", 1.0, {"if1"});
  ns.weights = {1.0, 1.0, 1.0};
  return ns;
}

NamedScenario weighted_three() {
  NamedScenario ns;
  ns.title = "Weighted trio on one 6 Mb/s interface (w = 3:2:1)";
  ns.scenario.interface("if1", RateProfile(mbps(6)));
  ns.scenario.backlogged_flow("w3", 3.0, {"if1"});
  ns.scenario.backlogged_flow("w2", 2.0, {"if1"});
  ns.scenario.backlogged_flow("w1", 1.0, {"if1"});
  ns.weights = {3.0, 2.0, 1.0};
  return ns;
}

}  // namespace

int main(int, char**) {
  std::cout << "Policy matrix: all policies x canonical scenarios\n"
            << "(rates in Mb/s over the steady state; J = weighted Jain "
               "index; min = lowest normalized rate)\n";

  for (auto& ns : {fig1c(), fig6(), voip_bulk(), weighted_three()}) {
    bench::section(ns.title);
    std::vector<std::string> header{"policy"};
    // Flow names from the scenario.
    for (const auto& f : ns.scenario.flows()) {
      header.push_back(f.name);
    }
    header.push_back("J");
    header.push_back("min-norm");
    header.push_back("p99ms(f0)");
    bench::Table table(header);

    for (const Policy policy : kPolicies) {
      ScenarioRunner runner(ns.scenario, policy);
      const SimTime dur = 30 * kSecond;
      const auto result = runner.run(dur);
      std::vector<double> row;
      std::vector<double> rates;
      for (const auto& flow : result.flows) {
        const double r = flow.mean_rate_mbps(dur / 2, dur);
        row.push_back(r);
        rates.push_back(r);
      }
      row.push_back(jain_index(rates, ns.weights));
      double min_norm = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < rates.size(); ++i) {
        min_norm = std::min(min_norm, rates[i] / ns.weights[i]);
      }
      row.push_back(min_norm);
      const auto& delay = result.flows.front().delay_ns;
      row.push_back(delay.empty() ? 0.0 : delay.quantile(0.99) / 1e6);
      table.row_values(to_string(policy), row);
    }
  }

  std::cout << "\nreading guide: miDRR should match the oracle on J and "
               "min-norm everywhere while FIFO/priority crater them; the "
               "VoIP row shows the latency price of large quanta vs "
               "timestamp schedulers.\n";
  return 0;
}
