// Google-benchmark micro-suite for the scheduler hot path: enqueue and
// dequeue cost per policy, and the miDRR decision cost as a function of
// interface count (the microscopic version of Fig 9) and flow count (the
// paper claims decision time is independent of it).
#include <benchmark/benchmark.h>

#include "sched/drr.hpp"
#include "sched/midrr.hpp"
#include "sched/round_robin.hpp"
#include "sched/wfq.hpp"
#include "util/rng.hpp"

namespace {

using namespace midrr;

/// Builds a scheduler with `m` interfaces and `n` flows (random prefs).
std::unique_ptr<Scheduler> build(Policy policy, std::size_t m, std::size_t n,
                                 std::uint64_t seed = 7) {
  auto sched = make_scheduler(policy);
  Rng rng(seed);
  std::vector<IfaceId> ifaces;
  for (std::size_t j = 0; j < m; ++j) ifaces.push_back(sched->add_interface());
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<IfaceId> willing;
    for (const IfaceId j : ifaces) {
      if (rng.coin(0.5)) willing.push_back(j);
    }
    if (willing.empty()) willing.push_back(ifaces[i % m]);
    sched->add_flow({.weight = 1.0, .willing = willing});
  }
  return sched;
}

void refill(Scheduler& sched, std::size_t n, Rng& rng) {
  for (FlowId f = 0; f < n; ++f) {
    while (sched.backlog_packets(f) < 4) {
      sched.enqueue(Packet(f, 1000 + static_cast<std::uint32_t>(
                                         rng.uniform_int(0, 500))),
                    0);
    }
  }
}

void BM_EnqueueDequeue(benchmark::State& state, Policy policy) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  auto sched = build(policy, m, n);
  Rng rng(1);
  refill(*sched, n, rng);
  std::size_t j = 0;
  for (auto _ : state) {
    auto packet = sched->dequeue(static_cast<IfaceId>(j), 0);
    j = (j + 1) % m;
    if (packet) {
      // Put an equivalent packet back so backlog never drains.
      packet->seq = 0;
      sched->enqueue(std::move(*packet), 0);
      benchmark::DoNotOptimize(packet);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_MiDrrDecisionVsInterfaces(benchmark::State& state) {
  BM_EnqueueDequeue(state, Policy::kMiDrr);
}
void BM_MiDrrDecisionVsFlows(benchmark::State& state) {
  BM_EnqueueDequeue(state, Policy::kMiDrr);
}
void BM_NaiveDrrDecision(benchmark::State& state) {
  BM_EnqueueDequeue(state, Policy::kNaiveDrr);
}
void BM_WfqDecision(benchmark::State& state) {
  BM_EnqueueDequeue(state, Policy::kPerIfaceWfq);
}
void BM_RoundRobinDecision(benchmark::State& state) {
  BM_EnqueueDequeue(state, Policy::kRoundRobin);
}

void BM_DequeueBurst(benchmark::State& state, Policy policy) {
  // Amortized per-packet cost of the batched path: one dequeue_burst call
  // pulls ~32 packets, versus one virtual call per packet above.
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  auto sched = build(policy, m, n);
  Rng rng(1);
  refill(*sched, n, rng);
  std::vector<Packet> batch;
  std::size_t j = 0;
  std::int64_t packets = 0;
  for (auto _ : state) {
    batch.clear();
    const std::size_t got =
        sched->dequeue_burst(static_cast<IfaceId>(j), 32 * 1500, 0, batch);
    j = (j + 1) % m;
    packets += static_cast<std::int64_t>(got);
    for (Packet& p : batch) {
      p.seq = 0;
      sched->enqueue(std::move(p), 0);
    }
    benchmark::DoNotOptimize(batch);
  }
  state.SetItemsProcessed(packets);
}

void BM_MiDrrBurstDequeue(benchmark::State& state) {
  BM_DequeueBurst(state, Policy::kMiDrr);
}
void BM_NaiveDrrBurstDequeue(benchmark::State& state) {
  BM_DequeueBurst(state, Policy::kNaiveDrr);
}

void BM_EnqueueOnly(benchmark::State& state) {
  auto sched = build(Policy::kMiDrr, 4, 16);
  FlowId f = 0;
  for (auto _ : state) {
    sched->enqueue(Packet(f, 1000), 0);
    f = (f + 1) % 16;
    if (sched->backlog_packets(0) > 1024) {
      state.PauseTiming();
      for (FlowId i = 0; i < 16; ++i) {
        while (sched->dequeue(i % 4, 0)) {
        }
      }
      state.ResumeTiming();
    }
  }
}

void BM_ServiceFlagWalk(benchmark::State& state) {
  // Worst case for Alg 3.2: every other interface constantly serves every
  // flow, so interface 0's walk skips flagged flows.
  const auto m = static_cast<std::size_t>(state.range(0));
  auto sched = build(Policy::kMiDrr, m, 32, /*seed=*/99);
  Rng rng(2);
  refill(*sched, 32, rng);
  std::size_t j = 1;
  for (auto _ : state) {
    // Other interfaces serve (setting flags at interface 0)...
    auto p = sched->dequeue(static_cast<IfaceId>(j), 0);
    if (p) sched->enqueue(std::move(*p), 0);
    j = (j % (m - 1)) + 1;
    // ...then interface 0 must walk over the flags.
    auto q = sched->dequeue(0, 0);
    if (q) sched->enqueue(std::move(*q), 0);
    benchmark::DoNotOptimize(q);
  }
}

}  // namespace

BENCHMARK(BM_MiDrrDecisionVsInterfaces)
    ->Args({2, 32})
    ->Args({4, 32})
    ->Args({8, 32})
    ->Args({16, 32});
BENCHMARK(BM_MiDrrDecisionVsFlows)
    ->Args({4, 8})
    ->Args({4, 32})
    ->Args({4, 128})
    ->Args({4, 512});
BENCHMARK(BM_NaiveDrrDecision)->Args({4, 32})->Args({16, 32});
BENCHMARK(BM_WfqDecision)->Args({4, 32})->Args({16, 32});
BENCHMARK(BM_RoundRobinDecision)->Args({4, 32})->Args({16, 32});
BENCHMARK(BM_MiDrrBurstDequeue)->Args({4, 32})->Args({8, 256});
BENCHMARK(BM_NaiveDrrBurstDequeue)->Args({4, 32});
BENCHMARK(BM_EnqueueOnly);
BENCHMARK(BM_ServiceFlagWalk)->Arg(4)->Arg(8)->Arg(16);

BENCHMARK_MAIN();
