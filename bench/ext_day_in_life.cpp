// Extension: half an hour in the life of a phone.
//
// Replays the Section 6.1-calibrated smartphone flow trace (the Fig 7
// generator) through the scheduler as live churn: hundreds of flows with
// heavy-tailed sizes arriving and completing over WiFi + LTE, each class
// with its own preferences.  Reports what matters at system level:
// interface utilization, completion counts, preference violations (must be
// zero), and how the policies compare under realistic churn instead of
// synthetic backlogged flows.
#include <iostream>

#include "bench/common.hpp"
#include "core/scenario.hpp"
#include "trace/smartphone.hpp"
#include "util/stats.hpp"

namespace {

using namespace midrr;

struct Built {
  Scenario scenario;
  std::size_t wifi_only = 0;
  std::size_t lte_only = 0;
  std::size_t both = 0;
};

Built build_scenario(SimTime horizon) {
  trace::SmartphoneTraceConfig cfg;
  cfg.total = horizon;
  cfg.seed = 42;
  const auto sessions = trace::generate_flow_sessions(cfg);

  Built built;
  built.scenario.interface("wifi", RateProfile(mbps(6)));
  built.scenario.interface("lte", RateProfile(mbps(3)));

  std::size_t index = 0;
  for (const auto& session : sessions) {
    // Class assignment: bursts are web (either interface); long sessions
    // rotate between streaming (LTE-preferring), sync (WiFi-only) and
    // general traffic (either).
    std::vector<std::string> ifaces;
    double weight = 1.0;
    if (session.from_burst) {
      ifaces = {"wifi", "lte"};
      built.both++;
    } else {
      switch (index % 3) {
        case 0:
          ifaces = {"lte"};
          weight = 2.0;  // streaming: keep it flowing
          built.lte_only++;
          break;
        case 1:
          ifaces = {"wifi"};
          built.wifi_only++;
          break;
        default:
          ifaces = {"wifi", "lte"};
          built.both++;
          break;
      }
    }
    // Volume sized so the session wants ~2.5 Mb/s for its duration
    // (the two links sum to 9 Mb/s, so peaks overload the system).
    const auto volume = static_cast<std::uint64_t>(
        std::max(10'000.0, to_seconds(session.duration) * 2.5e6 / 8.0));
    built.scenario.backlogged_flow("s" + std::to_string(index), weight,
                                   ifaces, volume, 1500, session.start);
    ++index;
  }
  return built;
}

}  // namespace

int main(int, char**) {
  const SimTime horizon = 30 * 60 * kSecond;  // half an hour
  std::cout << "Extension: 30 minutes of Fig 7-calibrated flow churn "
               "through the scheduler\n";
  const Built built = build_scenario(horizon);
  std::cout << "trace: " << built.scenario.flows().size() << " flows ("
            << built.wifi_only << " wifi-only, " << built.lte_only
            << " lte-only, " << built.both << " either)\n\n";

  midrr::bench::Table table({"policy", "completed", "GB moved",
                             "mean-fct s", "wifi util%", "lte util%",
                             "violations"});
  for (const Policy policy :
       {Policy::kMiDrr, Policy::kNaiveDrr, Policy::kPerIfaceWfq,
        Policy::kFifo}) {
    ScenarioRunner runner(built.scenario, policy);
    const auto result = runner.run(horizon);
    std::size_t completed = 0;
    std::uint64_t bytes = 0;
    std::size_t violations = 0;
    OnlineStats stretch;  // completion time relative to the trace duration
    for (std::size_t i = 0; i < result.flows.size(); ++i) {
      const auto& flow = result.flows[i];
      if (flow.completed_at) {
        ++completed;
        const auto& spec = built.scenario.flows()[i];
        stretch.add(to_seconds(*flow.completed_at - spec.start));
      }
      bytes += flow.bytes_sent;
      // Preference violation = bytes on an interface outside the spec.
      const auto& spec_ifaces = built.scenario.flows()[i].ifaces;
      for (std::size_t j = 0; j < result.ifaces.size(); ++j) {
        const bool allowed =
            std::find(spec_ifaces.begin(), spec_ifaces.end(),
                      result.ifaces[j].name) != spec_ifaces.end();
        if (!allowed && j < flow.bytes_per_iface.size() &&
            flow.bytes_per_iface[j] > 0) {
          ++violations;
        }
      }
    }
    const double wifi_util =
        100.0 * to_seconds(result.ifaces[0].busy_time) / to_seconds(horizon);
    const double lte_util =
        100.0 * to_seconds(result.ifaces[1].busy_time) / to_seconds(horizon);
    table.row({to_string(policy), std::to_string(completed),
               std::to_string(static_cast<double>(bytes) / 1e9).substr(0, 5),
               std::to_string(stretch.mean()).substr(0, 6),
               std::to_string(wifi_util).substr(0, 5),
               std::to_string(lte_util).substr(0, 5),
               std::to_string(violations)});
  }
  std::cout << "\nexpected: zero preference violations everywhere (enforced "
               "structurally); miDRR beats\n"
               "the per-interface fair baselines on completions AND mean "
               "flow-completion time because\n"
               "multi-homed flows stop crowding the pinned flows' "
               "interfaces; FIFO posts competitive\n"
               "completion counts by opportunistically draining whoever "
               "arrived first -- the fairness\n"
               "metrics of bench/policy_matrix are what it sacrifices.\n";
  return 0;
}
