// Extension: how fast does miDRR converge after a disturbance?
//
// Fig 6(c) shows flow a starting below its fair share and "quickly"
// correcting; this bench quantifies that: after a perturbation (a new flow
// arriving mid-run), how long until every flow is within 10% of its new
// max-min rate?  Swept over quantum sizes -- convergence time scales with
// the quantum, the flip side of the Lemma 6 fairness bound.
#include <iostream>

#include "bench/common.hpp"
#include "core/scenario.hpp"
#include "fairness/maxmin.hpp"

namespace {

using namespace midrr;

/// Time (s) after `from` until both flows stay within 10% of target for
/// 5 consecutive samples; -1 if never during the run.
double settle_time(const ScenarioResult& result,
                   const std::vector<std::pair<std::string, double>>& targets,
                   SimTime from) {
  int stable = 0;
  // Sample every 100 ms from `from`.
  for (SimTime t = from; t < result.duration; t += 100 * kMillisecond) {
    bool all_ok = true;
    for (const auto& [name, target] : targets) {
      const double rate =
          result.flow_named(name).mean_rate_mbps(t, t + 100 * kMillisecond);
      if (std::abs(rate - target) > 0.1 * target) {
        all_ok = false;
        break;
      }
    }
    stable = all_ok ? stable + 1 : 0;
    if (stable == 5) {
      return to_seconds(t - from) - 0.4;  // back out the stability window
    }
  }
  return -1.0;
}

}  // namespace

int main(int, char**) {
  std::cout << "Extension: convergence time after a flow arrives mid-run\n"
            << "(two 5 Mb/s interfaces; at t=20 s a second flow joins the "
               "shared one)\n\n";

  midrr::bench::Table table(
      {"quantum B", "settle (s)", "pre-rate a", "post a", "post b"});
  for (const std::uint32_t quantum :
       {1500u, 3000u, 6000u, 12000u, 24000u, 48000u}) {
    Scenario sc;
    sc.interface("if1", RateProfile(mbps(5)));
    sc.interface("if2", RateProfile(mbps(5)));
    sc.backlogged_flow("a", 1.0, {"if1", "if2"});
    // b arrives at t=20 s on if2 only: max-min flips from a=10 to
    // a = 5 + 2.5 ... no: a keeps if1 (5) and shares if2 -> both at 5.
    sc.backlogged_flow("b", 1.0, {"if2"}, 0, 1500, 20 * kSecond);

    RunnerOptions opt;
    opt.quantum_base = quantum;
    opt.sample_interval = 100 * kMillisecond;
    opt.rate_window_bins = 3;
    ScenarioRunner runner(sc, Policy::kMiDrr, opt);
    const auto result = runner.run(60 * kSecond);

    const double settle =
        settle_time(result, {{"a", 5.0}, {"b", 5.0}}, 20 * kSecond);
    table.row_values(std::to_string(quantum),
                     {settle,
                      result.flow_named("a").mean_rate_mbps(10 * kSecond,
                                                            19 * kSecond),
                      result.flow_named("a").mean_rate_mbps(40 * kSecond,
                                                            60 * kSecond),
                      result.flow_named("b").mean_rate_mbps(40 * kSecond,
                                                            60 * kSecond)});
  }
  std::cout << "\nmeasured: settling is sub-second across the whole sweep "
               "-- even a 48 KB quantum is\n"
               "only ~77 ms of line time at 5 Mb/s, so the correction "
               "completes within one or two\n"
               "rounds and the 0.3 s floor here is the rate-meter window.  "
               "The quantum's real cost\n"
               "is short-term burstiness (Lemma 6: |FM| < Q' + 2*MaxSize), "
               "visible as per-packet\n"
               "delay in bench/policy_matrix, not as slow convergence.  "
               "Long-run rates are exact\n"
               "and quantum-independent (post columns).\n";
  return 0;
}
