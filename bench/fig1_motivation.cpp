// Figure 1 + Section 1/2.1 reproduction: the motivating examples.
//
//  (a) one 2 Mb/s interface, two flows            -> 1.0 / 1.0 under all
//  (b) two 1 Mb/s interfaces, no preferences      -> 1.0 / 1.0 under all
//  (c) flow b restricted to interface 2:
//        per-interface WFQ / naive DRR            -> a=1.5, b=0.5 (wrong)
//        miDRR                                    -> a=1.0, b=1.0 (max-min)
//  plus the weighted variant (phi_b = 2 phi_a) and, with --thm1, the
//  Theorem 1 causality counterexample on the fluid system.
#include <iostream>

#include "bench/common.hpp"
#include "core/scenario.hpp"
#include "fairness/fluid.hpp"
#include "fairness/maxmin.hpp"

namespace {

using namespace midrr;

double steady(const ScenarioResult& r, const std::string& name, SimTime dur) {
  return r.flow_named(name).mean_rate_mbps(dur / 2, dur);
}

void run_case(const std::string& title, const Scenario& sc,
              const std::vector<std::string>& flows,
              const std::vector<double>& expect_midrr,
              const std::vector<double>& expect_baseline) {
  bench::section(title);
  const SimTime dur = 30 * kSecond;
  std::vector<std::string> header{"policy"};
  for (const auto& f : flows) header.push_back(f + " Mb/s");
  bench::Table table(header);
  for (const Policy policy : {Policy::kMiDrr, Policy::kNaiveDrr,
                              Policy::kPerIfaceWfq, Policy::kRoundRobin}) {
    ScenarioRunner runner(sc, policy);
    const auto result = runner.run(dur);
    std::vector<double> rates;
    for (const auto& f : flows) rates.push_back(steady(result, f, dur));
    table.row_values(to_string(policy), rates);
  }
  std::cout << "expected  miDRR: ";
  for (double v : expect_midrr) std::cout << v << " ";
  std::cout << " |  per-iface baselines: ";
  for (double v : expect_baseline) std::cout << v << " ";
  std::cout << "\n";
}

void thm1_counterexample() {
  bench::section("Theorem 1: finishing order depends on future arrivals");
  constexpr double kLink = 1e6;
  constexpr std::uint64_t kL = 125'000;  // 1 Mbit in bytes

  for (const bool future_arrivals : {false, true}) {
    fair::FluidSystem fluid({kLink, kLink});
    const auto a = fluid.add_flow(1.0, {true, true});
    const auto b = fluid.add_flow(1.0, {false, true});
    fluid.add_arrival(a, 0, kL / 2);
    fluid.add_arrival(b, 0, kL);
    if (future_arrivals) {
      for (int k = 0; k < 3; ++k) {
        const auto f = fluid.add_flow(1.0, {false, true});
        fluid.add_arrival(f, kMillisecond, 10 * kL);
      }
    }
    fluid.run_until(100 * kSecond);
    std::cout << (future_arrivals ? "  with 3 future if2-only arrivals: "
                                  : "  no future arrivals:              ")
              << "p_a drains at " << to_seconds(*fluid.drained_at(a))
              << " s, p_b at " << to_seconds(*fluid.drained_at(b)) << " s\n";
  }
  std::cout << "  -> flow b's completion moves ~4x with arrivals flow a "
               "cannot see;\n     no causal earliest-finishing-time scheduler "
               "exists (Theorem 1).\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "Reproduction of Figure 1 (motivating examples), CoNEXT'13\n";

  {
    Scenario sc;
    sc.interface("if1", RateProfile(mbps(2)));
    sc.backlogged_flow("a", 1.0, {"if1"});
    sc.backlogged_flow("b", 1.0, {"if1"});
    run_case("Fig 1(a): single 2 Mb/s interface", sc, {"a", "b"},
             {1.0, 1.0}, {1.0, 1.0});
  }
  {
    Scenario sc;
    sc.interface("if1", RateProfile(mbps(1)));
    sc.interface("if2", RateProfile(mbps(1)));
    sc.backlogged_flow("a", 1.0, {"if1", "if2"});
    sc.backlogged_flow("b", 1.0, {"if1", "if2"});
    run_case("Fig 1(b): two interfaces, no interface preferences", sc,
             {"a", "b"}, {1.0, 1.0}, {1.0, 1.0});
  }
  {
    Scenario sc;
    sc.interface("if1", RateProfile(mbps(1)));
    sc.interface("if2", RateProfile(mbps(1)));
    sc.backlogged_flow("a", 1.0, {"if1", "if2"});
    sc.backlogged_flow("b", 1.0, {"if2"});
    run_case("Fig 1(c): flow b restricted to if2", sc, {"a", "b"},
             {1.0, 1.0}, {1.5, 0.5});
  }
  {
    Scenario sc;
    sc.interface("if1", RateProfile(mbps(1)));
    sc.interface("if2", RateProfile(mbps(1)));
    sc.backlogged_flow("a", 1.0, {"if1", "if2"});
    sc.backlogged_flow("b", 2.0, {"if2"});
    run_case("Sec 1 variant: phi_b = 2*phi_a, b restricted to if2 "
             "(infeasible rate preference; capacity must not be wasted)",
             sc, {"a", "b"}, {1.0, 1.0}, {1.0, 1.0});
  }

  if (bench::has_flag(argc, argv, "--thm1") || true) {
    thm1_counterexample();
  }

  bench::section("reference max-min allocations (water-filling solver)");
  {
    fair::MaxMinInput in;
    in.weights = {1.0, 1.0};
    in.capacities_bps = {1e6, 1e6};
    in.willing = {{true, true}, {false, true}};
    const auto r = fair::solve_max_min(in);
    std::cout << "  Fig 1(c): a=" << r.rates_bps[0] / 1e6
              << " Mb/s, b=" << r.rates_bps[1] / 1e6 << " Mb/s\n";
  }
  return 0;
}
