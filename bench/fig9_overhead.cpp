// Figure 9 reproduction: CDF of the scheduling-decision time as a function
// of the number of interfaces.
//
// Methodology mirrors the paper's kernel profiling: present the scheduler
// with 1,000 packets spread across the flows, then measure the wall-clock
// time of each "interface j is free -- which packet?" decision.  The cost
// grows with the number of interfaces because a decision may walk over
// flows whose service flags were set by other interfaces (Alg 3.2).
//
// Paper: even with 16 interfaces, decisions take < 2.5 us, i.e. > 3 Gb/s
// for 1,000-byte packets.
#include <chrono>
#include <iostream>

#include "bench/common.hpp"
#include "sched/midrr.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace midrr;

EmpiricalCdf measure(std::size_t iface_count, std::size_t flow_count,
                     std::uint64_t seed) {
  Rng rng(seed);
  MiDrrScheduler sched(1500);
  std::vector<IfaceId> ifaces;
  for (std::size_t j = 0; j < iface_count; ++j) {
    ifaces.push_back(sched.add_interface());
  }
  std::vector<FlowId> flows;
  for (std::size_t i = 0; i < flow_count; ++i) {
    // Random non-empty willingness row.
    std::vector<IfaceId> willing;
    for (const IfaceId j : ifaces) {
      if (rng.coin(0.5)) willing.push_back(j);
    }
    if (willing.empty()) {
      willing.push_back(
          ifaces[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(iface_count) - 1))]);
    }
    flows.push_back(sched.add_flow({.weight = 1.0, .willing = willing}));
  }

  EmpiricalCdf decision_ns;
  // Repeat the paper's 1,000-packet experiment a few times for stable
  // percentiles.
  for (int round = 0; round < 20; ++round) {
    // 1,000 packets spread across all the flows.
    for (int p = 0; p < 1000; ++p) {
      const FlowId f = flows[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(flow_count) - 1))];
      sched.enqueue(Packet(f, 1000), 0);
    }
    // Drain, timing each decision; rotate interfaces like free NICs would.
    std::size_t j = 0;
    int drained = 0;
    int idle_passes = 0;
    while (drained < 1000 && idle_passes < static_cast<int>(iface_count)) {
      const IfaceId iface = ifaces[j];
      j = (j + 1) % iface_count;
      const auto t0 = std::chrono::steady_clock::now();
      const auto packet = sched.dequeue(iface, 0);
      const auto t1 = std::chrono::steady_clock::now();
      if (packet) {
        ++drained;
        idle_passes = 0;
        decision_ns.add(static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
      } else {
        ++idle_passes;
      }
    }
    // Drop any leftovers (flows whose interfaces all went idle-passed).
    for (const FlowId f : flows) {
      while (sched.backlog_packets(f) > 0) {
        for (const IfaceId iface : sched.preferences().ifaces_of(f)) {
          if (sched.dequeue(iface, 0)) break;
        }
      }
    }
  }
  return decision_ns;
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "Reproduction of Figure 9 (scheduling decision time CDF)\n"
            << "32 flows, random preferences, 1,000 queued 1,000-byte "
               "packets per round\n";

  midrr::bench::Table table({"ifaces", "p50 (ns)", "p90 (ns)", "p99 (ns)",
                             "max (ns)", "Gb/s @p99"});
  double worst_p99 = 0.0;
  for (const std::size_t m : {4u, 8u, 12u, 16u}) {
    const auto cdf = measure(m, 32, 42);
    const double p50 = cdf.quantile(0.50);
    const double p90 = cdf.quantile(0.90);
    const double p99 = cdf.quantile(0.99);
    worst_p99 = std::max(worst_p99, p99);
    // 1,000-byte packet = 8,000 bits; decisions/s = 1e9/p99.
    const double gbps = 8000.0 / p99;
    table.row_values(std::to_string(m), {p50, p90, p99, cdf.max(), gbps});
  }

  midrr::bench::section("paper vs measured");
  std::cout << "  paper: p99 decision < 2,500 ns at 16 interfaces (kernel, "
               "2008-era laptop)\n"
            << "  measured worst p99: " << worst_p99
            << " ns -> supports > " << 8000.0 / worst_p99
            << " Gb/s for 1,000-byte packets\n"
            << "  shape check: decision time grows with interface count "
               "(more service flags to walk),\n"
            << "  and is independent of flow count by construction (the "
               "walk stops at the first unflagged flow).\n";

  if (midrr::bench::has_flag(argc, argv, "--csv")) {
    midrr::bench::section("raw CDF at 16 interfaces (CSV)");
    const auto cdf = measure(16, 32, 43);
    midrr::write_cdf_csv(std::cout, cdf, "decision_ns");
  }
  return 0;
}
