// Figure 10 reproduction: TCP goodput of three inbound HTTP flows
// scheduled by the byte-range proxy over two fluctuating interfaces.
//
//   flow a: {if1}, flow b: {if1, if2}, flow c: {if2}; equal weights.
//   Interface speeds alternate out of phase (8 <-> 2 Mb/s).
//
// Paper's claim: flow b's goodput always tracks the FASTER flow -- b joins
// the faster interface's cluster and shares it equally with that
// interface's dedicated flow.
#include <algorithm>
#include <iostream>

#include "bench/common.hpp"
#include "http/proxy.hpp"
#include "util/csv.hpp"

namespace {

using namespace midrr;
using namespace midrr::http;

HttpRangeProxy make_proxy(SimDuration cluster_interval = 0) {
  // Out-of-phase square waves: if1 fast while if2 slow and vice versa.
  auto if1 = RateProfile::steps({{0, mbps(8)},
                                 {20 * kSecond, mbps(2)},
                                 {40 * kSecond, mbps(8)},
                                 {60 * kSecond, mbps(2)}});
  auto if2 = RateProfile::steps({{0, mbps(2)},
                                 {20 * kSecond, mbps(8)},
                                 {40 * kSecond, mbps(2)},
                                 {60 * kSecond, mbps(8)}});
  ProxyOptions opt;
  opt.cluster_interval = cluster_interval;
  return HttpRangeProxy(
      {{"if1", std::move(if1)}, {"if2", std::move(if2)}},
      {{"a", 1.0, {"if1"}, 0}, {"b", 1.0, {"if1", "if2"}, 0},
       {"c", 1.0, {"if2"}, 0}},
      opt);
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "Reproduction of Figure 10 (HTTP proxy goodput, fluctuating "
               "links)\n";
  auto proxy = make_proxy();
  const SimTime dur = 80 * kSecond;
  const auto result = proxy.run(dur);

  bench::section("goodput timeline (2.5 s samples)");
  bench::Table table({"t (s)", "a Mb/s", "b Mb/s", "c Mb/s", "b==max?"});
  int b_tracks_max = 0;
  int samples = 0;
  for (double t = 5.0; t < to_seconds(dur); t += 2.5) {
    const SimTime from = from_seconds(t - 1.25);
    const SimTime to = from_seconds(t + 1.25);
    const double a = result.flow_named("a").mean_goodput_mbps(from, to);
    const double b = result.flow_named("b").mean_goodput_mbps(from, to);
    const double c = result.flow_named("c").mean_goodput_mbps(from, to);
    // Skip samples right at a capacity flip (transients).
    const double phase = std::fmod(t, 20.0);
    const bool transient = phase < 3.0 || phase > 17.0;
    bool tracks = false;
    if (!transient) {
      ++samples;
      tracks = b >= std::max(a, c) - 0.8;
      if (tracks) ++b_tracks_max;
    }
    table.row({std::to_string(t).substr(0, 5),
               std::to_string(a).substr(0, 5),
               std::to_string(b).substr(0, 5),
               std::to_string(c).substr(0, 5),
               transient ? "-" : (tracks ? "yes" : "NO")});
  }

  bench::section("paper vs measured");
  std::cout << "  paper: flow b always achieves the rate of the faster "
               "flow (rate clustering)\n"
            << "  measured: b tracked max(a, c) in " << b_tracks_max << "/"
            << samples << " steady-state samples\n";
  // With if_fast = 8 and if_slow = 2: the slow interface goes entirely to
  // its dedicated flow (2 Mb/s); b joins the fast cluster and splits the
  // fast interface with its dedicated flow: b = 8 / 2 = 4 in both phases.
  const double b_mean = result.flow_named("b").mean_goodput_mbps(
      5 * kSecond, dur);
  bench::compare("flow b long-run mean (max-min predicts 4.0)", 4.0, b_mean);
  std::cout << "  proxy issued " << result.requests_sent
            << " range requests (" << result.request_header_bytes
            << " header bytes uplink)\n";

  if (bench::has_flag(argc, argv, "--csv")) {
    bench::section("raw series (CSV)");
    std::vector<const TimeSeries*> series;
    for (const auto& f : result.flows) series.push_back(&f.goodput_mbps);
    write_time_series_csv(std::cout, series);
  }
  return 0;
}
