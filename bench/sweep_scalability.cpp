// Scalability sweep: how the scheduler and the whole simulation scale with
// flow count, interface count and offered load -- the engineering numbers a
// downstream adopter wants before putting miDRR on a fast path.
//
// Reports, per configuration: simulated-seconds per wall-second, scheduling
// decisions per wall-second, and the mean decision cost.
#include <chrono>
#include <iostream>

#include "bench/common.hpp"
#include "core/scenario.hpp"
#include "util/rng.hpp"

namespace {

using namespace midrr;

struct SweepPoint {
  std::size_t flows;
  std::size_t ifaces;
};

void run_point(const SweepPoint& p, SimDuration burst_opportunity,
               midrr::bench::Table& table) {
  Rng rng(7);
  Scenario sc;
  std::vector<std::string> iface_names;
  for (std::size_t j = 0; j < p.ifaces; ++j) {
    iface_names.push_back("if" + std::to_string(j));
    sc.interface(iface_names.back(), RateProfile(mbps(10)));
  }
  for (std::size_t i = 0; i < p.flows; ++i) {
    std::vector<std::string> willing;
    for (std::size_t j = 0; j < p.ifaces; ++j) {
      if (rng.coin(0.5)) willing.push_back(iface_names[j]);
    }
    if (willing.empty()) willing.push_back(iface_names[i % p.ifaces]);
    sc.backlogged_flow("f" + std::to_string(i), 1.0, willing);
  }

  const SimTime sim_duration = 20 * kSecond;
  const auto t0 = std::chrono::steady_clock::now();
  ScenarioRunner runner(sc, Policy::kMiDrr,
                        RunnerOptions{.burst_opportunity = burst_opportunity});
  const auto result = runner.run(sim_duration);
  const auto t1 = std::chrono::steady_clock::now();

  std::uint64_t packets = 0;
  for (const auto& iface : result.ifaces) {
    packets += iface.bytes_sent / 1500;
  }
  const double wall_s =
      std::chrono::duration<double>(t1 - t0).count();
  const double sim_per_wall = to_seconds(sim_duration) / wall_s;
  const double decisions_per_s = static_cast<double>(packets) / wall_s;
  table.row_values(
      std::to_string(p.flows) + "x" + std::to_string(p.ifaces) +
          (burst_opportunity > 0 ? " burst" : ""),
      {sim_per_wall, decisions_per_s / 1e6,
       decisions_per_s > 0 ? 1e9 / decisions_per_s : 0.0});
}

}  // namespace

int main(int, char**) {
  std::cout << "Scalability sweep: miDRR end-to-end simulation throughput\n"
            << "(10 Mb/s per interface, 1500 B packets, random "
               "preferences)\n\n";
  midrr::bench::Table table(
      {"flows x if", "sim-s/wall-s", "Mdecisions/s", "ns/decision"});
  for (const SweepPoint p : {SweepPoint{4, 2}, SweepPoint{16, 2},
                             SweepPoint{16, 4}, SweepPoint{64, 4},
                             SweepPoint{64, 8}, SweepPoint{256, 8},
                             SweepPoint{1024, 8}, SweepPoint{256, 16},
                             SweepPoint{1024, 16}}) {
    run_point(p, /*burst_opportunity=*/0, table);
    // Same point with batched transmit opportunities (25 ms of link time
    // per simulator event; departures stay per-packet).
    run_point(p, /*burst_opportunity=*/25 * kMillisecond, table);
  }
  std::cout << "\nreading guide: this measures the WHOLE simulation loop\n"
               "(event queue, source refill -- the harness's own O(flows)\n"
               "bookkeeping -- and cache pressure), so ns/decision grows\n"
               "with scale here.  The isolated scheduling decision itself\n"
               "stays flat in flow count: see bench/micro_sched\n"
               "(BM_MiDrrDecisionVsFlows) and bench/fig9_overhead for the\n"
               "paper's Fig 9 claim measured directly on the scheduler.\n";
  return 0;
}
