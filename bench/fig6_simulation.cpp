// Figure 6 reproduction: three flows over two interfaces under miDRR.
//
//   if1 = 3 Mb/s, if2 = 10 Mb/s
//   a: w=1 {if1} ends ~66 s; b: w=2 {if1,if2} ends ~85 s; c: w=1 {if2}
//
// Prints the per-flow rate series (Fig 6b), the paper-vs-measured phase
// table, and with --zoom the first 5 seconds at fine resolution (Fig 6c).
// --csv emits the raw series.
#include <iostream>

#include "bench/common.hpp"
#include "core/scenario.hpp"
#include "util/csv.hpp"

namespace {

using namespace midrr;

constexpr std::uint64_t kVolumeA = 24'750'000;
constexpr std::uint64_t kVolumeB = 75'583'333;

Scenario fig6_scenario() {
  Scenario sc;
  sc.interface("if1", RateProfile(mbps(3)));
  sc.interface("if2", RateProfile(mbps(10)));
  sc.backlogged_flow("a", 1.0, {"if1"}, kVolumeA);
  sc.backlogged_flow("b", 2.0, {"if1", "if2"}, kVolumeB);
  sc.backlogged_flow("c", 1.0, {"if2"});
  return sc;
}

}  // namespace

int main(int argc, char** argv) {
  const bool zoom = bench::has_flag(argc, argv, "--zoom");
  const bool csv = bench::has_flag(argc, argv, "--csv");

  std::cout << "Reproduction of Figure 6 (simulation: 3 flows, 2 ifaces)\n";
  Scenario sc = fig6_scenario();
  RunnerOptions opt;
  if (zoom) {
    opt.sample_interval = 20 * kMillisecond;
    opt.rate_window_bins = 10;  // 200 ms smoothing for the zoom
  }
  ScenarioRunner runner(sc, Policy::kMiDrr, opt);
  const SimTime dur = zoom ? 6 * kSecond : 100 * kSecond;
  const auto result = runner.run(dur);

  if (zoom) {
    bench::section("Fig 6(c): first seconds (convergence)");
    bench::Table table({"t (s)", "a Mb/s", "b Mb/s", "c Mb/s"});
    for (double t = 0.5; t <= 5.0; t += 0.5) {
      const SimTime from = from_seconds(t - 0.25);
      const SimTime to = from_seconds(t + 0.25);
      table.row_values(std::to_string(t),
                       {result.flow_named("a").mean_rate_mbps(from, to),
                        result.flow_named("b").mean_rate_mbps(from, to),
                        result.flow_named("c").mean_rate_mbps(from, to)});
    }
    std::cout << "expected: flow a starts low (~2 Mb/s) and corrects to 3;\n"
                 "          rates fluctuate around fair share (quantum "
                 "granularity).\n";
    return 0;
  }

  bench::section("Fig 6(b): rate timeline (1 s samples)");
  bench::Table table({"t (s)", "a Mb/s", "b Mb/s", "c Mb/s"});
  for (int t = 5; t <= 100; t += 5) {
    const SimTime from = from_seconds(t - 2.5);
    const SimTime to = from_seconds(t + 2.5);
    table.row_values(std::to_string(t),
                     {result.flow_named("a").mean_rate_mbps(from, to),
                      result.flow_named("b").mean_rate_mbps(from, to),
                      result.flow_named("c").mean_rate_mbps(from, to)});
  }

  bench::section("paper vs measured");
  bench::compare("phase 1 (0-66s): a", 3.0,
                 result.flow_named("a").mean_rate_mbps(10 * kSecond,
                                                       60 * kSecond));
  bench::compare("phase 1: b", 6.67,
                 result.flow_named("b").mean_rate_mbps(10 * kSecond,
                                                       60 * kSecond));
  bench::compare("phase 1: c", 3.33,
                 result.flow_named("c").mean_rate_mbps(10 * kSecond,
                                                       60 * kSecond));
  const auto& a = result.flow_named("a");
  const auto& b = result.flow_named("b");
  bench::compare("flow a completion (s)", 66.0,
                 a.completed_at ? to_seconds(*a.completed_at) : -1.0);
  bench::compare("phase 2 (66-85s): b (aggregating both ifaces)", 8.67,
                 result.flow_named("b").mean_rate_mbps(70 * kSecond,
                                                       83 * kSecond));
  bench::compare("phase 2: c", 4.33,
                 result.flow_named("c").mean_rate_mbps(70 * kSecond,
                                                       83 * kSecond));
  bench::compare("flow b completion (s)", 85.0,
                 b.completed_at ? to_seconds(*b.completed_at) : -1.0);
  bench::compare("phase 3 (85s-): c", 10.0,
                 result.flow_named("c").mean_rate_mbps(90 * kSecond,
                                                       99 * kSecond));

  if (csv) {
    bench::section("raw series (CSV)");
    std::vector<const TimeSeries*> series;
    for (const auto& f : result.flows) series.push_back(&f.rate_mbps);
    write_time_series_csv(std::cout, series);
  }
  return 0;
}
