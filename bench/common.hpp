// Shared helpers for the figure-reproduction benches: flag parsing and
// aligned table output.  Each bench prints (a) the series/rows the paper's
// figure shows, (b) a "paper vs measured" summary, and (c) with --csv, the
// raw series for external re-plotting.
#pragma once

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace midrr::bench {

/// True if `flag` (e.g. "--csv") is among the arguments.
inline bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) return true;
  }
  return false;
}

/// Prints a horizontal rule + title.
inline void section(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// Fixed-width row printer: column width 12, two decimals for doubles.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : columns_(header.size()) {
    row(header);
    std::string rule;
    for (std::size_t i = 0; i < columns_; ++i) rule += "------------ ";
    std::cout << rule << "\n";
  }

  void row(const std::vector<std::string>& cells) {
    for (const auto& cell : cells) {
      std::cout << std::left << std::setw(12) << cell << ' ';
    }
    std::cout << "\n";
  }

  void row_values(const std::string& label, const std::vector<double>& values,
                  int precision = 2) {
    std::vector<std::string> cells{label};
    for (double v : values) {
      std::ostringstream ss;
      ss << std::fixed << std::setprecision(precision) << v;
      cells.push_back(ss.str());
    }
    row(cells);
  }

 private:
  std::size_t columns_;
};

/// "paper vs measured" line with a pass/fail-ish marker on shape.
inline void compare(const std::string& what, double paper, double measured,
                    double rel_tol = 0.15) {
  const double err = paper != 0.0 ? std::abs(measured - paper) / std::abs(paper)
                                  : std::abs(measured);
  std::cout << "  " << std::left << std::setw(44) << what << " paper="
            << std::setw(9) << paper << " measured=" << std::setw(9)
            << measured << (err <= rel_tol ? "  [ok]" : "  [DEVIATES]")
            << "\n";
}

}  // namespace midrr::bench
