// Ablation bench: which design ingredients of miDRR matter?
//
//  1. The service flag: miDRR vs naive per-interface DRR (flag removed) vs
//     per-interface WFQ vs packet round robin -- L1 distance of the
//     achieved normalized allocation from the reference max-min, over a set
//     of random topologies.
//  2. Quantum size: convergence/fairness trade-off (Lemma 6's bound scales
//     with Q'), on the Fig 1(c) topology.
//  3. Deficit keying: per-(flow,interface) DC (default; Section 3.1 "each
//     interface implementing DRR independently") vs the shared per-flow DC
//     a literal reading of Table 1 suggests.
#include <iostream>

#include "bench/common.hpp"
#include "core/scenario.hpp"
#include "fairness/maxmin.hpp"
#include "sched/midrr.hpp"
#include "sim/link.hpp"
#include "util/rng.hpp"

namespace {

using namespace midrr;

struct Instance {
  Scenario scenario;
  fair::MaxMinInput input;
};

Instance random_instance(std::uint64_t seed) {
  Rng rng(seed * 7919 + 13);
  const auto n = static_cast<std::size_t>(rng.uniform_int(2, 5));
  const auto m = static_cast<std::size_t>(rng.uniform_int(2, 4));
  Instance inst;
  std::vector<std::string> iface_names;
  for (std::size_t j = 0; j < m; ++j) {
    const double cap = rng.uniform(1.0, 12.0);
    iface_names.push_back("if" + std::to_string(j));
    inst.scenario.interface(iface_names.back(), RateProfile(mbps(cap)));
    inst.input.capacities_bps.push_back(mbps(cap));
  }
  const double wc[] = {0.5, 1.0, 2.0, 4.0};
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<bool> row(m, false);
    std::vector<std::string> willing;
    const auto pinned = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(m) - 1));
    row[pinned] = true;
    willing.push_back(iface_names[pinned]);
    const double w = wc[static_cast<std::size_t>(rng.uniform_int(0, 3))];
    inst.input.weights.push_back(w);
    inst.input.willing.push_back(row);
    inst.scenario.backlogged_flow("f" + std::to_string(i), w, willing);
  }
  inst.input.weights.push_back(1.0);
  inst.input.willing.emplace_back(m, true);
  inst.scenario.backlogged_flow("agg", 1.0, iface_names);
  return inst;
}

/// L1 distance (Mb/s, weight-normalized) between the achieved and the
/// reference max-min allocation.
double distance_to_maxmin(const Instance& inst, Policy policy,
                          std::uint32_t quantum = 1500) {
  const auto reference = fair::solve_max_min(inst.input);
  RunnerOptions opt;
  opt.quantum_base = quantum;
  ScenarioRunner runner(inst.scenario, policy, opt);
  const SimTime dur = 30 * kSecond;
  const auto result = runner.run(dur);
  double d = 0.0;
  for (std::size_t i = 0; i < result.flows.size(); ++i) {
    const double rate =
        result.flows[i].mean_rate_mbps(10 * kSecond, dur) * 1e6;
    d += std::abs(rate - reference.rates_bps[i]) / inst.input.weights[i];
  }
  return d / 1e6;
}

}  // namespace

int main(int, char**) {
  std::cout << "Ablation: what makes miDRR work?\n";

  bench::section("1. service flag ablation: L1 distance from max-min "
                 "(Mb/s, lower is better), 12 random topologies");
  {
    bench::Table table(
        {"seed", "oracle", "miDRR", "naive-DRR", "WFQ", "RR"});
    std::vector<double> totals(5, 0.0);
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      const auto inst = random_instance(seed);
      const double orc = distance_to_maxmin(inst, Policy::kOracle);
      const double mi = distance_to_maxmin(inst, Policy::kMiDrr);
      const double nd = distance_to_maxmin(inst, Policy::kNaiveDrr);
      const double wf = distance_to_maxmin(inst, Policy::kPerIfaceWfq);
      const double rr = distance_to_maxmin(inst, Policy::kRoundRobin);
      totals[0] += orc;
      totals[1] += mi;
      totals[2] += nd;
      totals[3] += wf;
      totals[4] += rr;
      table.row_values(std::to_string(seed), {orc, mi, nd, wf, rr});
    }
    table.row_values("TOTAL", totals);
    std::cout << "expected: the oracle (global rate exchange, Section 3's "
                 "rejected strawman) is near zero;\n"
                 "          miDRR gets close with one bit per "
                 "(flow, interface); removing that bit (naive DRR)\n"
                 "          or using per-interface WFQ leaves a much larger "
                 "distance.\n";
  }

  bench::section("2. quantum sweep on Fig 1(c): fairness error vs quantum "
                 "(Lemma 6: |FM| < Q' + 2*MaxSize)");
  {
    Scenario sc;
    sc.interface("if1", RateProfile(mbps(1)));
    sc.interface("if2", RateProfile(mbps(1)));
    sc.backlogged_flow("a", 1.0, {"if1", "if2"});
    sc.backlogged_flow("b", 1.0, {"if2"});
    bench::Table table({"quantum B", "a Mb/s", "b Mb/s", "|err| Mb/s"});
    for (const std::uint32_t q : {1500u, 3000u, 6000u, 12000u, 24000u}) {
      RunnerOptions opt;
      opt.quantum_base = q;
      ScenarioRunner runner(sc, Policy::kMiDrr, opt);
      const SimTime dur = 30 * kSecond;
      const auto result = runner.run(dur);
      const double a = result.flow_named("a").mean_rate_mbps(dur / 2, dur);
      const double b = result.flow_named("b").mean_rate_mbps(dur / 2, dur);
      table.row_values(std::to_string(q),
                       {a, b, std::abs(a - 1.0) + std::abs(b - 1.0)}, 3);
    }
    std::cout << "expected: rates stay ~1/1; short-term fluctuation grows "
                 "with the quantum (not visible\n"
                 "          in long-run means, see "
                 "tests/test_lemmas.cpp for the interval-level bound).\n";
  }

  bench::section("3. deficit keying: per-(flow,iface) DC (default) vs "
                 "shared per-flow DC (Table 1 literal)");
  {
    bench::Table table({"seed", "per-iface", "shared"});
    double t_per = 0.0;
    double t_shared = 0.0;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      const auto inst = random_instance(seed);
      const auto reference = fair::solve_max_min(inst.input);
      const auto run_with = [&](bool shared) {
        // Drive the scheduler directly so we can pick the DC mode.
        Simulator sim;
        MiDrrScheduler sched(1500, shared);
        Rng rng(1);
        std::vector<std::unique_ptr<LinkTransmitter>> links;
        std::vector<std::unique_ptr<BackloggedSource>> sources;
        for (std::size_t j = 0; j < inst.input.iface_count(); ++j) {
          const IfaceId id = sched.add_interface();
          links.push_back(std::make_unique<LinkTransmitter>(
              sim, id, RateProfile(inst.input.capacities_bps[j]),
              [&sched, &sources, &rng](IfaceId iface,
                                       SimTime now) -> std::optional<Packet> {
                auto p = sched.dequeue(iface, now);
                if (p) {
                  for (const auto size :
                       sources[p->flow]->on_dequeue(p->size_bytes, rng)) {
                    sched.enqueue(Packet(p->flow, size), now);
                  }
                }
                return p;
              },
              nullptr));
        }
        for (std::size_t i = 0; i < inst.input.flow_count(); ++i) {
          std::vector<IfaceId> willing;
          for (std::size_t j = 0; j < inst.input.iface_count(); ++j) {
            if (inst.input.willing[i][j]) {
              willing.push_back(static_cast<IfaceId>(j));
            }
          }
          const FlowId f = sched.add_flow({.weight = inst.input.weights[i], .willing = willing});
          sources.push_back(std::make_unique<BackloggedSource>(
              SizeDistribution::fixed(1500), 0));
          for (const auto size : sources.back()->on_start(rng)) {
            sched.enqueue(Packet(f, size), 0);
          }
        }
        for (auto& link : links) link->notify_backlog();
        sim.run_until(30 * kSecond);
        double d = 0.0;
        for (std::size_t i = 0; i < inst.input.flow_count(); ++i) {
          const double rate = static_cast<double>(sched.sent_bytes(
                                  static_cast<FlowId>(i))) *
                              8.0 / 30.0;
          d += std::abs(rate - reference.rates_bps[i]) /
               inst.input.weights[i];
        }
        return d / 1e6;
      };
      const double per = run_with(false);
      const double shared = run_with(true);
      t_per += per;
      t_shared += shared;
      table.row_values(std::to_string(seed), {per, shared});
    }
    table.row_values("TOTAL", {t_per, t_shared});
    std::cout << "expected: comparable on these sparse topologies; on dense "
                 "willingness graphs (several\n"
                 "          multi-homed flows per interface) per-interface "
                 "DC tracks max-min noticeably\n"
                 "          better because a shared DC lets one interface's "
                 "sends drain the deficit\n"
                 "          another interface just granted (see "
                 "tests/test_maxmin_property.cpp).\n";
  }
  return 0;
}
