// High-level user policies compiled down to the scheduler's (Pi, phi):
// the "system managing user preferences" of the paper's Section 3, with
// the data-cap dynamics its introduction describes users improvising by
// hand ("we might switch off cellular data ... when we are close to our
// monthly data cap").
#include <iostream>

#include "core/scenario.hpp"
#include "policy/compiler.hpp"

int main() {
  using namespace midrr;
  using namespace midrr::policy;

  // The device's interfaces, with attributes.
  PreferenceCompiler prefs;
  prefs.add_interface({"wifi", /*metered=*/false, 15 * kMillisecond, 0});
  prefs.add_interface({"lte", /*metered=*/true, 45 * kMillisecond,
                       /*monthly cap=*/8'000'000});  // tiny, for the demo

  // The user's policies, in their own vocabulary:
  prefs.set_base_weight("netflix", 2.0);  // "Netflix gets twice Dropbox"
  prefs.add_rule({"netflix", Verb::kRequire, Selector::unmetered()});
  prefs.add_rule({"dropbox", Verb::kRequire, Selector::unmetered()});
  prefs.add_rule(
      {"voip", Verb::kPrefer, Selector::low_latency(20 * kMillisecond)});
  // web may use anything (no rule).

  // The running system.
  Scenario sc;
  sc.interface("wifi", RateProfile(mbps(8)));
  sc.interface("lte", RateProfile(mbps(4)));
  sc.backlogged_flow("netflix", 1.0, {"wifi"});
  sc.backlogged_flow("dropbox", 1.0, {"wifi"});
  sc.backlogged_flow("voip", 1.0, {"wifi", "lte"});
  sc.backlogged_flow("web", 1.0, {"wifi", "lte"});
  ScenarioRunner runner(sc, Policy::kMiDrr);
  auto& sched = runner.scheduler();
  runner.run(0);  // arm the runner so the flows exist in the scheduler

  const std::map<std::string, FlowId> bindings{
      {"netflix", 0}, {"dropbox", 1}, {"voip", 2}, {"web", 3}};
  DataCapTracker caps;
  prefs.apply(sched, bindings, &caps);

  std::cout << "compiled policies:\n";
  for (const auto& [app, flow] : bindings) {
    const auto policy = prefs.compile(app, &caps);
    std::cout << "  " << app << " (phi=" << policy.weight << "): ";
    for (const auto& iface : policy.willing) std::cout << iface << ' ';
    std::cout << "\n";
  }

  // Run 20 s, then account the LTE usage against the monthly cap.
  runner.run(20 * kSecond);
  std::uint64_t lte_bytes = 0;
  for (const auto& [app, flow] : bindings) {
    lte_bytes += sched.sent_bytes(flow, 1);
  }
  caps.record("lte", lte_bytes);
  std::cout << "\nLTE bytes after 20 s: " << caps.used("lte")
            << " (cap: 8 MB) -> "
            << (caps.used("lte") >= 8'000'000 ? "EXHAUSTED" : "ok") << "\n";
  prefs.apply(sched, bindings, &caps);  // re-lower the policies

  const auto result = runner.run(40 * kSecond);
  std::cout << "\nrates before the cap hit (5-20 s) vs after (25-40 s):\n";
  for (const auto& flow : result.flows) {
    std::cout << "  " << flow.name << ": "
              << flow.mean_rate_mbps(5 * kSecond, 20 * kSecond) << " -> "
              << flow.mean_rate_mbps(25 * kSecond, 40 * kSecond)
              << " Mb/s\n";
  }
  std::cout << "\nWhat happened: voip already sat on WiFi (its low-latency "
               "preference), web alone was burning LTE; once the cap "
               "exhausted, the re-lowered policy pulled web off LTE and "
               "everyone now shares WiFi at the compiled weights (netflix "
               "phi=2 gets the biggest slice) -- no app was reconfigured, "
               "only the policy was re-lowered.\n";
  return 0;
}
