// HTTP byte-range proxy example: aggregate WiFi + LTE for one download
// while a second, pickier download shares the system (Section 5's inbound
// story).
//
// A 150 MB file download is willing to use both interfaces; a software
// update is WiFi-only.  The proxy splits each GET into 64 KB Range
// requests, schedules the requests with miDRR, and splices the responses
// back in order.
#include <iostream>

#include "http/proxy.hpp"

int main() {
  using namespace midrr;
  using namespace midrr::http;

  HttpRangeProxy proxy(
      {{"wifi", RateProfile(mbps(9))}, {"lte", RateProfile(mbps(6))}},
      {
          {"movie", 1.0, {"wifi", "lte"}, 150'000'000},  // 150 MB
          {"update", 1.0, {"wifi"}, 60'000'000},         // 60 MB, WiFi only
      });

  const auto result = proxy.run(180 * kSecond);

  for (const auto& flow : result.flows) {
    std::cout << flow.name << ":\n"
              << "  delivered " << flow.delivered_bytes << " bytes in order\n"
              << "  chunks per interface: wifi=" << flow.chunks_per_iface[0]
              << " lte=" << flow.chunks_per_iface[1] << "\n";
    if (flow.completed_at) {
      std::cout << "  completed at " << to_seconds(*flow.completed_at)
                << " s\n";
    }
    std::cout << "  goodput at t=30 s: "
              << flow.mean_goodput_mbps(25 * kSecond, 35 * kSecond)
              << " Mb/s\n";
  }

  std::cout << "\nproxy issued " << result.requests_sent
            << " range requests, " << result.request_header_bytes
            << " bytes of request headers.\n";
  std::cout << "\nWhy this shape: while the update is running, the movie "
               "gets its fair half of WiFi PLUS all of LTE (max-min with "
               "interface preferences); when the update finishes, the "
               "movie aggregates both interfaces at ~15 Mb/s -- the "
               "paper's bandwidth-aggregation promise via plain HTTP "
               "Range requests.\n";
  return 0;
}
