// The paper's Figure 4 "ideal implementation": an aggregation proxy in the
// operator's network schedules INBOUND packets across the paths that end at
// the device's interfaces -- full packet-level control of the downlink,
// including bandwidth aggregation, at the cost of a reorder buffer on the
// device when path latencies differ.
#include <iostream>

#include "inbound/remote_proxy.hpp"

int main() {
  using namespace midrr;
  using namespace midrr::inbound;

  // Two last-mile paths: fast close WiFi, slower farther LTE.
  // One video download may use both; a software update is WiFi-only; a
  // voice call is LTE-only (persistent connectivity).
  RemoteProxy proxy(
      {
          {"wifi", RateProfile(mbps(9)), 8 * kMillisecond},
          {"lte", RateProfile(mbps(5)), 45 * kMillisecond},
      },
      {
          {"video", 2.0, {"wifi", "lte"},
           [] {
             return std::make_unique<BackloggedSource>(
                 SizeDistribution::fixed(1500), 0);
           }},
          {"update", 1.0, {"wifi"},
           [] {
             return std::make_unique<BackloggedSource>(
                 SizeDistribution::fixed(1500), 0);
           }},
          {"voice", 1.0, {"lte"},
           [] { return std::make_unique<CbrSource>(mbps(0.096), 200); }},
      });

  const auto result = proxy.run(30 * kSecond);

  std::cout << "inbound goodput (weighted max-min across paths):\n";
  for (const auto& flow : result.flows) {
    std::cout << "  " << flow.name << ": "
              << flow.mean_goodput_mbps(10 * kSecond, 30 * kSecond)
              << " Mb/s  (per path:";
    for (const auto bytes : flow.bytes_per_path) std::cout << ' ' << bytes;
    std::cout << ")\n"
              << "      reorder buffer peak: "
              << flow.max_reorder_buffer_bytes << " bytes, out-of-order "
              << flow.out_of_order_arrivals << " arrivals\n";
  }
  std::cout << "\nThe video flow aggregates both paths; the 37 ms latency "
               "skew between them is what the reorder buffer absorbs -- "
               "memory is the price of downlink aggregation, which the "
               "paper's HTTP-proxy alternative (examples/http_download) "
               "avoids by splitting at request granularity instead.\n";
  return 0;
}
