// Mobile-device scenario: the paper's Section 1 motivation end to end.
//
// A phone with WiFi and LTE runs four applications with the preferences
// the introduction describes:
//   * netflix   -- WiFi only (cellular data is capped), weight 2
//   * dropbox   -- WiFi only, weight 1 ("give Netflix twice Dropbox")
//   * voip      -- LTE only (persistent connectivity while walking)
//   * web       -- either interface
// Midway, WiFi goes out of range for 20 s; watch the scheduler shift the
// web flow to LTE and hand everything back when WiFi returns.
#include <iostream>

#include "core/scenario.hpp"

namespace {

void report(const midrr::ScenarioResult& result, midrr::SimTime from,
            midrr::SimTime to, const char* label) {
  std::cout << label << "\n";
  for (const auto& flow : result.flows) {
    std::cout << "  " << flow.name << ": "
              << flow.mean_rate_mbps(from, to) << " Mb/s\n";
  }
}

}  // namespace

int main() {
  using namespace midrr;

  Scenario scenario;
  // WiFi: 12 Mb/s but out of range during [30 s, 50 s).
  scenario.interface_with_outage("wifi", RateProfile(mbps(12)),
                                 30 * kSecond, 50 * kSecond);
  scenario.interface("lte", RateProfile(mbps(5)));

  scenario.backlogged_flow("netflix", 2.0, {"wifi"});
  scenario.backlogged_flow("dropbox", 1.0, {"wifi"});
  scenario.backlogged_flow("voip", 1.0, {"lte"});
  scenario.backlogged_flow("web", 1.0, {"wifi", "lte"});

  RunnerOptions options;
  options.cluster_interval = 5 * kSecond;
  ScenarioRunner runner(scenario, Policy::kMiDrr, options);
  const auto result = runner.run(80 * kSecond);

  report(result, 10 * kSecond, 29 * kSecond,
         "phase 1 (WiFi up): netflix gets 2x dropbox on WiFi; web picks "
         "the best deal");
  report(result, 35 * kSecond, 49 * kSecond,
         "\nphase 2 (WiFi outage): netflix/dropbox stall (WiFi-only!), "
         "web squeezes onto LTE with voip");
  report(result, 55 * kSecond, 80 * kSecond,
         "\nphase 3 (WiFi back): everything recovers");

  std::cout << "\ncluster structure over time:\n";
  for (const auto& snap : result.clusters) {
    if (static_cast<int>(to_seconds(snap.at)) % 10 == 0) {
      std::cout << "  t=" << to_seconds(snap.at) << "s  " << snap.rendering
                << "\n";
    }
  }

  std::cout << "\nNote what did NOT happen: netflix never touched LTE "
               "(interface preferences are sacrosanct), and no capacity "
               "was wasted while WiFi was away.\n";
  return 0;
}
