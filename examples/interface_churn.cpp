// Interface churn: the "use new capacity" property (Section 2, property 4)
// on a commute.
//
// A phone streams music (cellular-preferring for continuity) and syncs
// photos (WiFi-preferring) while WiFi hotspots come and go:
//   home WiFi until t=20 s, nothing until the office WiFi appears at
//   t=45 s, plus a flaky cafe hotspot in between.
#include <iostream>

#include "core/scenario.hpp"

int main() {
  using namespace midrr;

  Scenario commute;
  commute.interface("lte", RateProfile(mbps(4)));
  // Home WiFi: 15 Mb/s, out of range from t=20 s on.
  commute.interface("home-wifi", RateProfile::steps({{0, mbps(15)},
                                                     {20 * kSecond, 0.0}}));
  // Cafe hotspot: appears at t=28 s, weak (2 Mb/s), gone at t=38 s.
  commute.interface("cafe-wifi",
                    RateProfile::steps({{0, 0.0},
                                        {28 * kSecond, mbps(2)},
                                        {38 * kSecond, 0.0}}));
  // Office WiFi from t=45 s.
  commute.interface("office-wifi",
                    RateProfile::steps({{0, 0.0}, {45 * kSecond, mbps(20)}}));

  commute.backlogged_flow("music", 1.0, {"lte"});
  commute.backlogged_flow(
      "photos", 1.0, {"home-wifi", "cafe-wifi", "office-wifi"});
  commute.backlogged_flow(
      "podcasts", 1.0,
      {"lte", "home-wifi", "cafe-wifi", "office-wifi"});

  ScenarioRunner runner(commute, Policy::kMiDrr);
  const auto result = runner.run(70 * kSecond);

  const auto print_window = [&](const char* label, SimTime a, SimTime b) {
    std::cout << label << "\n";
    for (const auto& flow : result.flows) {
      std::cout << "  " << flow.name << ": " << flow.mean_rate_mbps(a, b)
                << " Mb/s\n";
    }
  };
  print_window("at home (home WiFi up):", 5 * kSecond, 18 * kSecond);
  print_window("\nwalking (LTE only):", 22 * kSecond, 27 * kSecond);
  print_window("\nat the cafe (weak hotspot):", 30 * kSecond, 37 * kSecond);
  print_window("\nin the office (fast WiFi):", 50 * kSecond, 70 * kSecond);

  std::cout << "\nEvery time an interface appeared, the flows willing to "
               "use it absorbed its capacity within a round; every time "
               "one vanished, its traffic folded back without manual "
               "reconfiguration -- no flow ever lost rate it could have "
               "kept (max-min monotonicity).\n";
  return 0;
}
