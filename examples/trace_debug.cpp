// Watching miDRR think: attach a TraceRecorder to the scheduler and print
// the grant/skip/send stream for the paper's Fig 1(c) example.  The SKIP
// lines ARE the algorithm -- interface 1 telling interface 0's flow "you
// were served elsewhere since I last looked".
#include <iostream>

#include "sched/midrr.hpp"
#include "sched/observer.hpp"

int main() {
  using namespace midrr;

  MiDrrScheduler sched(1500);
  TraceRecorder trace(64);
  sched.set_observer(&trace);

  const IfaceId if0 = sched.add_interface("if0");
  const IfaceId if1 = sched.add_interface("if1");
  const FlowId a = sched.add_flow({.weight = 1.0, .willing = {if0, if1}, .name = "a"});
  const FlowId b = sched.add_flow({.weight = 1.0, .willing = {if1}, .name = "b"});

  // Both flows backlogged; alternate the interfaces like two equal links.
  for (int i = 0; i < 32; ++i) {
    sched.enqueue(Packet(a, 1500), 0);
    sched.enqueue(Packet(b, 1500), 0);
  }
  for (int round = 0; round < 8; ++round) {
    const SimTime now = round * 12 * kMillisecond;
    sched.dequeue(if0, now);
    sched.dequeue(if1, now + 6 * kMillisecond);
  }

  std::cout << "event stream (flow0 = a {if0,if1}, flow1 = b {if1}):\n"
            << trace.render() << "\n";
  std::cout << "counters:\n"
            << "  a served on if0: " << trace.sends(a, if0) << " packets\n"
            << "  a served on if1: " << trace.sends(a, if1)
            << " packets  <- the flag keeps this at ~zero\n"
            << "  a skipped by if1: " << trace.skips(a, if1) << " times\n"
            << "  b served on if1: " << trace.sends(b, if1) << " packets\n";
  std::cout << "\nEvery 'iface1 SKIP flow0' line is one bit of coordination "
               "doing the work that per-rate\nbookkeeping would otherwise "
               "require -- the entire paper in a trace.\n";
  return 0;
}
