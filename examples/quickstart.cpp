// Quickstart: schedule three flows over two interfaces with miDRR.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The 30-second tour: declare interfaces with capacities, flows with
// rate-preference weights (phi) and interface preferences (their row of
// Pi), run the simulator, read per-flow rates.
#include <iostream>

#include "core/scenario.hpp"

int main() {
  using namespace midrr;

  // Two interfaces: home WiFi at 10 Mb/s, LTE at 4 Mb/s.
  Scenario scenario;
  scenario.interface("wifi", RateProfile(mbps(10)));
  scenario.interface("lte", RateProfile(mbps(4)));

  // Three always-backlogged flows:
  //  * video may use both interfaces and deserves 2x the share,
  //  * sync is WiFi-only (the user refuses to pay cellular for it),
  //  * voip is LTE-only (persistent connectivity on the move).
  scenario.backlogged_flow("video", /*weight=*/2.0, {"wifi", "lte"});
  scenario.backlogged_flow("sync", /*weight=*/1.0, {"wifi"});
  scenario.backlogged_flow("voip", /*weight=*/1.0, {"lte"});

  // Run 30 simulated seconds under miDRR.
  ScenarioRunner runner(scenario, Policy::kMiDrr);
  const ScenarioResult result = runner.run(30 * kSecond);

  std::cout << "steady-state rates (weighted max-min fair):\n";
  for (const FlowResult& flow : result.flows) {
    std::cout << "  " << flow.name << ": "
              << flow.mean_rate_mbps(10 * kSecond, 30 * kSecond)
              << " Mb/s  (bytes per interface:";
    for (const auto bytes : flow.bytes_per_iface) {
      std::cout << ' ' << bytes;
    }
    std::cout << ")\n";
  }

  // The same allocation, computed analytically by the reference solver.
  std::cout << "\nInterface preferences were respected, capacity fully "
               "used, and weights honored where feasible -- that is the "
               "paper's contribution in one run.\n";
  return 0;
}
