// The kernel-bridge analog at packet level (Section 5, Figure 3).
//
// Applications talk to ONE virtual interface; the bridge classifies each
// frame, schedules it with miDRR, rewrites the source MAC/IP to the chosen
// physical interface (fixing checksums incrementally, as the kernel does),
// and maps replies back.  This example walks single frames through the
// pipeline and prints what changes on the wire.
#include <fstream>
#include <iostream>

#include "bridge/bridge.hpp"
#include "net/pcap.hpp"
#include "sched/midrr.hpp"

int main() {
  using namespace midrr;
  using namespace midrr::bridge;
  using net::FrameBuilder;
  using net::Ipv4Address;
  using net::MacAddress;

  const MacAddress virt_mac = MacAddress::local(1);
  const Ipv4Address virt_ip(10, 200, 0, 1);

  VirtualBridge bridge(std::make_unique<MiDrrScheduler>(1500), virt_mac,
                       virt_ip);
  const IfaceId wifi = bridge.add_physical(
      {"wlan0", MacAddress::local(10), Ipv4Address(192, 168, 1, 50)});
  const IfaceId lte = bridge.add_physical(
      {"wwan0", MacAddress::local(20), Ipv4Address(100, 64, 3, 9)});

  // Policy: HTTPS may use either interface; DNS sticks to LTE.
  const FlowId https = bridge.add_flow({.weight = 1.0, .willing = {wifi, lte}, .name = "https"});
  const FlowId dns = bridge.add_flow({.weight = 1.0, .willing = {lte}, .name = "dns"});
  bridge.classifier().add_rule(
      {.proto = net::IpProto::kTcp, .dst_port = 443, .flow = https});
  bridge.classifier().add_rule(
      {.proto = net::IpProto::kUdp, .dst_port = 53, .flow = dns});

  // The application sends one HTTPS frame and one DNS query on the virtual
  // interface (source = the virtual address).
  auto https_frame = FrameBuilder()
                         .eth_src(virt_mac)
                         .eth_dst(MacAddress::local(99))
                         .ip_src(virt_ip)
                         .ip_dst(Ipv4Address(93, 184, 216, 34))
                         .tcp(40001, 443)
                         .payload_size(300)
                         .build();
  auto dns_frame = FrameBuilder()
                       .eth_src(virt_mac)
                       .eth_dst(MacAddress::local(99))
                       .ip_src(virt_ip)
                       .ip_dst(Ipv4Address(8, 8, 8, 8))
                       .udp(50000, 53)
                       .payload_size(40)
                       .build();

  std::cout << "app frame (HTTPS) before bridge: src "
            << https_frame.parse()->ip.src.to_string() << " ("
            << https_frame.parse()->eth.src.to_string() << ")\n";

  bridge.send_from_app(std::move(https_frame), 0);
  bridge.send_from_app(std::move(dns_frame), 0);

  // WiFi asks for its next frame: it gets the HTTPS one, rewritten.
  const auto on_wifi = bridge.next_frame(wifi, 0);
  const auto on_lte = bridge.next_frame(lte, 0);
  if (on_wifi) {
    const auto v = on_wifi->parse();
    std::cout << "steered out of wlan0: src " << v->ip.src.to_string()
              << " (" << v->eth.src.to_string() << "), checksums "
              << (on_wifi->checksums_valid() ? "valid" : "BROKEN") << "\n";
  }
  if (on_lte) {
    const auto v = on_lte->parse();
    std::cout << "steered out of wwan0: src " << v->ip.src.to_string()
              << " dst port " << (v->udp ? v->udp->dst_port : 0)
              << ", checksums "
              << (on_lte->checksums_valid() ? "valid" : "BROKEN") << "\n";
  }

  // A reply arrives on WiFi addressed to the physical interface; the
  // bridge rewrites it back before the application sees it.
  const auto sent = on_wifi->parse();
  auto reply = FrameBuilder()
                   .eth_src(MacAddress::local(99))
                   .eth_dst(MacAddress::local(10))
                   .ip_src(sent->ip.dst)
                   .ip_dst(sent->ip.src)
                   .tcp(443, sent->tcp->src_port)
                   .payload_size(500)
                   .build();
  const auto delivered = bridge.receive_from_network(wifi, std::move(reply));
  if (delivered) {
    std::cout << "reply delivered to app: dst "
              << delivered->parse()->ip.dst.to_string()
              << " (the virtual address again), checksums "
              << (delivered->checksums_valid() ? "valid" : "BROKEN") << "\n";
  }

  const auto& stats = bridge.stats();
  std::cout << "\nbridge stats: " << stats.app_frames_in << " in, "
            << stats.frames_steered << " steered, " << stats.frames_received
            << " received back\n";

  // Bonus: the same frames as a Wireshark-readable capture.  Attach taps,
  // push a few more frames through, write bridge_wlan0.pcap.
  {
    std::ofstream pcap_file("bridge_wlan0.pcap", std::ios::binary);
    net::PcapWriter tap(pcap_file);
    bridge.attach_tap(wifi, &tap);
    for (int k = 0; k < 5; ++k) {
      bridge.send_from_app(FrameBuilder()
                               .eth_src(virt_mac)
                               .eth_dst(MacAddress::local(99))
                               .ip_src(virt_ip)
                               .ip_dst(Ipv4Address(93, 184, 216, 34))
                               .tcp(40001, 443, 1000u + (unsigned)k)
                               .payload_size(200)
                               .build(),
                           k * 10 * kMillisecond);
      bridge.next_frame(wifi, k * 10 * kMillisecond + kMillisecond);
    }
    bridge.attach_tap(wifi, nullptr);
    std::cout << "wrote " << tap.frames_written()
              << " steered frames to bridge_wlan0.pcap (open it in "
                 "Wireshark: source IP is the rewritten 192.168.1.50)\n";
  }
  std::cout << "\nApplications never noticed that their packets crossed "
               "two different physical networks with two different "
               "addresses -- exactly the transparency the paper's kernel "
               "bridge provides.\n";
  return 0;
}
