// Beyond packets: the conclusion's datacenter analogy.
//
// "Allocating tasks to machines in a data center poses a similar
//  scheduling problem, where certain tasks might prefer to use only more
//  powerful machines."  (Section 8)
//
// Mapping: machines (or machine classes) = interfaces whose "capacity" is
// work units per second; task queues = flows; a task's machine-class
// constraints = interface preferences; its priority = rate preference.
// miDRR then hands out work items max-min fairly without any broker
// tracking per-tenant service rates -- one service flag per (queue, class)
// suffices.
#include <iostream>

#include "core/scenario.hpp"

int main() {
  using namespace midrr;

  // Three machine classes, capacity in kilo-ops/s (1 "Mb/s" = 1 kops/s
  // here; the scheduler is unit-agnostic).
  Scenario cluster;
  cluster.interface("gpu-pool", RateProfile(mbps(4)));     // 4 kops/s
  cluster.interface("bigmem-pool", RateProfile(mbps(6)));  // 6 kops/s
  cluster.interface("standard-pool", RateProfile(mbps(10)));

  // Tenants with machine-class constraints:
  //  * render: GPU only, high priority (weight 2)
  //  * analytics: big-memory or standard machines
  //  * batch: anything, weight 0.5 (scavenger class)
  //  * etl: standard only
  cluster.backlogged_flow("render", 2.0, {"gpu-pool"});
  cluster.backlogged_flow("analytics", 1.0, {"bigmem-pool", "standard-pool"});
  cluster.backlogged_flow("batch", 0.5,
                          {"gpu-pool", "bigmem-pool", "standard-pool"});
  cluster.backlogged_flow("etl", 1.0, {"standard-pool"});

  ScenarioRunner runner(cluster, Policy::kMiDrr);
  const auto result = runner.run(60 * kSecond);

  std::cout << "sustained task throughput (kops/s), weighted max-min fair "
               "under class constraints:\n";
  for (const auto& flow : result.flows) {
    std::cout << "  " << flow.name << ": "
              << flow.mean_rate_mbps(20 * kSecond, 60 * kSecond)
              << " kops/s  (per pool:";
    for (std::size_t j = 0; j < flow.bytes_per_iface.size(); ++j) {
      std::cout << ' '
                << static_cast<double>(flow.bytes_per_iface[j]) * 8.0 /
                       40e6 / 1.0;
    }
    std::cout << ")\n";
  }
  std::cout << "\npool utilization:\n";
  for (const auto& iface : result.ifaces) {
    std::cout << "  " << iface.name << ": "
              << 100.0 * to_seconds(iface.busy_time) / 60.0 << "% busy\n";
  }
  std::cout << "\nNo pool idles while a compatible tenant has work "
               "(work conservation), render never lands outside the GPU "
               "pool, and the scavenger class soaks up whatever the "
               "constrained tenants cannot use.\n";
  return 0;
}
