// Egress backends: where a paced burst actually goes.
//
// The runtime's per-interface drain loop (Runtime::drain_iface) pulls a
// pacer-budgeted burst out of the shard scheduler and hands it to ONE of
// these.  The backend decides each packet's fate:
//
//   kSent     -- the packet left the process (or, for SimBackend, was
//                accounted as if it had).  Terminal, counted as delivery.
//   kRequeued -- the transmit path pushed back (EAGAIN/ENOBUFS/partial
//                sendmmsg return).  The runtime parks the packet in a
//                worker-local per-interface stash and retries it FIRST on
//                the next drain pass -- never re-entering the scheduler,
//                so per-flow FIFO order survives and the packet is
//                dequeued exactly once.  The pacer was already charged at
//                dequeue time, so a requeued tail sits as paid pacer debt
//                (the link slot it reserved is not re-priced on retry).
//   kDropped  -- terminal backend-side loss (oversized datagram, hard
//                errno).  Counted, never silent: it appears in
//                RuntimeStats::io_drops and midrr_io_drops_total.
//   kInflight -- (completion-driven backends only) the packet entered the
//                kernel's submission queue; its fate arrives later via
//                poll_completions.  See the completion-driven section of
//                EgressBackend below.
//
// Threading contract: send_burst(iface, ...) is called only by the worker
// thread that owns `iface` (same contract as TokenBucketPacer).  Distinct
// interfaces may be driven concurrently from distinct workers, so any
// per-interface state inside a backend must be independent per iface;
// cross-interface aggregates must be atomics.  Accessors (send_errors,
// syscalls) are scrape-rate reads from other threads.
//
// Burst-buffer ownership: the spans passed to send_burst point into the
// runtime's scratch vector and are valid ONLY for the duration of the
// call.  Packets carry their net::Frame by shared_ptr (possibly from a
// pooled FramePool slot); a backend that needs bytes past the call must
// copy them -- UdpBackend serializes into per-interface scratch buffers
// for exactly this reason, so frames recycle to their pool the moment the
// runtime drops the packet, regardless of socket progress.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "flow/ids.hpp"
#include "flow/packet.hpp"
#include "telemetry/metrics.hpp"
#include "util/time.hpp"

namespace midrr::io {

/// Per-packet outcome of one send_burst call.  kInflight only appears for
/// completion-driven backends (io_uring): the packet was accepted into the
/// kernel's submission queue and its terminal fate (sent / requeued /
/// dropped) arrives later through poll_completions.  The backend holds its
/// own copy of the packet (keeping the frame -- and its pool slot -- alive
/// until the completion resolves), so the runtime simply stops tracking it
/// until the completion hands it back.
enum class SendDisposition : std::uint8_t {
  kSent = 0,
  kRequeued = 1,
  kDropped = 2,
  kInflight = 3,
};

/// A resolved in-flight packet handed back by poll_completions.  `verdict`
/// is terminal-or-parked: kSent (account delivery), kDropped (counted
/// loss), or kRequeued (park in the runtime stash for a fresh send_burst);
/// never kInflight.
struct EgressCompletion {
  Packet packet;
  SendDisposition verdict = SendDisposition::kSent;
};

/// Aggregate outcome of one send_burst call.  When `clean` is true the
/// whole burst was sent and `dispositions` MAY not have been written
/// (SimBackend never touches it) -- the runtime keeps its zero-overhead
/// accounting loop and must not read it.  When false, `dispositions`
/// holds one entry per input packet and the totals below are consistent
/// with it.
struct EgressResult {
  bool clean = true;
  std::size_t sent = 0;
  std::uint64_t sent_bytes = 0;
  std::size_t requeued = 0;
  std::uint64_t requeued_bytes = 0;
  std::size_t dropped = 0;
  std::uint64_t dropped_bytes = 0;
  std::size_t inflight = 0;
  std::uint64_t inflight_bytes = 0;
};

class EgressBackend {
 public:
  virtual ~EgressBackend() = default;

  /// Human-readable backend name ("sim", "udp", "uring") for reports,
  /// /healthz detail, and metric labels.
  virtual std::string name() const = 0;

  /// Called once at Runtime::start(), before any worker thread runs.
  /// `iface_names[j]` is the runtime's name for global interface j; the
  /// backend sizes its per-interface state (sockets, scratch buffers)
  /// here and may throw to abort startup (e.g. socket/bind failure).
  virtual void attach(const std::vector<std::string>& iface_names) = 0;

  /// Called by the runtime immediately BEFORE attach():
  /// `worker_of_iface[j]` is the worker thread that will drive interface
  /// j.  A completion-driven backend uses this to share one submission
  /// ring among all interfaces of a worker (the ring is then only ever
  /// touched by that thread).  Default: topology-blind backends ignore it.
  virtual void attach_topology(
      const std::vector<std::uint32_t>& worker_of_iface) {
    (void)worker_of_iface;
  }

  // --- Completion-driven extension (io_uring) ----------------------------
  // A backend returning true here may answer kInflight from send_burst and
  // MUST eventually resolve every in-flight packet through
  // poll_completions (or reclaim_inflight at shutdown).  The runtime then
  // polls completions at the top of each drain pass and extends the
  // conservation identity with the in-flight term:
  //   dequeued == sent + io_drops + io_pending + io_inflight
  // (io_inflight drains to zero at quiescence -- stop() loops flush /
  // poll until the backend reports none, then reclaims stragglers as
  // counted drops).

  /// True when send_burst may defer packet fates to completions.
  virtual bool completion_driven() const { return false; }

  /// Appends every resolved completion for `iface` to `out` and returns
  /// how many were appended.  Same threading contract as send_burst (the
  /// owning worker; single-threaded during stop()).  Must not block.
  virtual std::size_t poll_completions(IfaceId iface,
                                       std::vector<EgressCompletion>& out) {
    (void)iface;
    (void)out;
    return 0;
  }

  /// Packets accepted by send_burst whose completion has not yet been
  /// handed back through poll_completions.  Thread-safe (scrape-rate).
  virtual std::uint64_t inflight_packets(IfaceId iface) const {
    (void)iface;
    return 0;
  }

  /// stop()-time last resort: force-resolves every still-unresolved
  /// in-flight packet on `iface` (appended to `out`, normally with
  /// verdict kDropped) so the conservation identity closes even when the
  /// kernel never delivered a completion.  Single-threaded, after flush.
  virtual std::size_t reclaim_inflight(IfaceId iface,
                                       std::vector<EgressCompletion>& out) {
    (void)iface;
    (void)out;
    return 0;
  }

  /// Transmit (or account) one paced burst for `iface`.  See the file
  /// comment for the disposition contract.  `now` is the runtime clock at
  /// dequeue time.  Must not block.
  virtual EgressResult send_burst(IfaceId iface, std::span<const Packet> burst,
                                  SimTime now,
                                  std::vector<SendDisposition>& dispositions) = 0;

  /// One last chance to move stashed bytes at Runtime::stop(), called
  /// single-threaded after workers joined, once per interface per round.
  /// Default: nothing buffered inside the backend, nothing to do.
  virtual void flush(IfaceId iface) { (void)iface; }

  /// Cumulative hard send errors on `iface` (EAGAIN/ENOBUFS requeues are
  /// NOT errors; this counts failed syscalls / terminal drops).  Feeds
  /// the Supervisor's link-health verdicts.  Thread-safe.
  virtual std::uint64_t send_errors(IfaceId iface) const {
    (void)iface;
    return 0;
  }

  /// Cumulative transmit syscalls issued (0 for SimBackend).  Thread-safe.
  virtual std::uint64_t syscalls() const { return 0; }

  /// Registers backend-specific midrr_io_* series.  Called at start()
  /// when the runtime has a registry; default registers nothing.
  virtual void register_metrics(telemetry::MetricsRegistry& registry) {
    (void)registry;
  }
};

}  // namespace midrr::io
