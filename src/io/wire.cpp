#include "io/wire.hpp"

namespace midrr::io {

void WireHeader::encode(net::BufWriter& writer) const {
  writer.u32(kMagic);
  writer.u8(kVersion);
  writer.u8(0);  // flags
  writer.u16(payload_bytes);
  writer.u32(flow);
  writer.u64(seq);
  writer.u32(size_bytes);
}

std::optional<WireHeader> WireHeader::decode(std::span<const net::Byte> data) {
  if (data.size() < kSize) return std::nullopt;
  net::BufReader reader(data);
  if (reader.u32() != kMagic) return std::nullopt;
  if (reader.u8() != kVersion) return std::nullopt;
  reader.skip(1);  // flags
  WireHeader out;
  out.payload_bytes = reader.u16();
  out.flow = reader.u32();
  out.seq = reader.u64();
  out.size_bytes = reader.u32();
  return out;
}

}  // namespace midrr::io
