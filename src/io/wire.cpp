#include "io/wire.hpp"

namespace midrr::io {

void WireHeader::encode(net::BufWriter& writer) const {
  writer.u32(kMagic);
  writer.u8(kVersion);
  writer.u8(flags);
  writer.u16(payload_bytes);
  writer.u32(flow);
  writer.u64(seq);
  writer.u32(size_bytes);
  if (has_tx_timestamp()) writer.u64(tx_timestamp_ns);
}

std::optional<WireHeader> WireHeader::decode(std::span<const net::Byte> data) {
  if (data.size() < kSize) return std::nullopt;
  net::BufReader reader(data);
  if (reader.u32() != kMagic) return std::nullopt;
  if (reader.u8() != kVersion) return std::nullopt;
  WireHeader out;
  out.flags = reader.u8();
  out.payload_bytes = reader.u16();
  out.flow = reader.u32();
  out.seq = reader.u64();
  out.size_bytes = reader.u32();
  if (out.has_tx_timestamp()) {
    if (data.size() < kSize + kTimestampSize) return std::nullopt;
    out.tx_timestamp_ns = reader.u64();
  }
  return out;
}

}  // namespace midrr::io
