#include "io/socket_api.hpp"

#include <unistd.h>

#include <cstring>

namespace midrr::io {

int RealSocketApi::open_udp() {
  return ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
}

int RealSocketApi::bind_source(int fd, const sockaddr* addr, socklen_t len) {
  return ::bind(fd, addr, len);
}

int RealSocketApi::bind_to_device(int fd, const std::string& device) {
#ifdef SO_BINDTODEVICE
  return ::setsockopt(fd, SOL_SOCKET, SO_BINDTODEVICE, device.c_str(),
                      static_cast<socklen_t>(device.size()));
#else
  (void)fd;
  (void)device;
  errno = ENOTSUP;
  return -1;
#endif
}

int RealSocketApi::send_many(int fd, mmsghdr* msgs, unsigned int count) {
  return ::sendmmsg(fd, msgs, count, 0);
}

int RealSocketApi::close_fd(int fd) { return ::close(fd); }

}  // namespace midrr::io
