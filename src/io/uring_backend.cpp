#include "io/uring_backend.hpp"

#include <arpa/inet.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/assert.hpp"
#include "util/logging.hpp"
#include "util/time.hpp"

namespace midrr::io {

namespace {

/// Kernel pushback worth an internal retry (same set the UDP backend
/// treats as requeue-not-drop).
bool transient_errno(int err) {
  return err == EAGAIN || err == EWOULDBLOCK || err == ENOBUFS ||
         err == EINTR || err == ENOMEM;
}

/// How long flush() waits for straggler CQEs per round (stop() calls it
/// a bounded number of rounds, so this caps shutdown latency, not loss).
constexpr std::uint64_t kFlushWaitNs = 2'000'000;  // 2 ms

}  // namespace

UringBackend::UringBackend(UringBackendOptions options)
    : options_(std::move(options)) {
  if (options_.sq_entries == 0) options_.sq_entries = 8;
  if (options_.inflight_limit == 0) options_.inflight_limit = 1;
  submit_force_threshold_ = std::max(1u, options_.sq_entries / 2);
  regions_.store(std::make_shared<const RegionTable>(),
                 std::memory_order_release);
}

UringBackend::~UringBackend() {
  for (auto& ring : rings_) {
    if (ring != nullptr && ring->handle >= 0) api().ring_destroy(ring->handle);
  }
  for (auto& st : states_) {
    if (st != nullptr && st->fd >= 0) sockets().close_fd(st->fd);
  }
}

void UringBackend::attach_topology(
    const std::vector<std::uint32_t>& worker_of_iface) {
  worker_of_iface_ = worker_of_iface;
}

void UringBackend::attach(const std::vector<std::string>& iface_names) {
  if (!states_.empty()) {
    throw std::runtime_error("UringBackend: attached twice");
  }
  // Interfaces of one worker share one ring; without topology everything
  // lands on ring 0 (still correct, just one shared submission queue --
  // only reachable when the embedding never calls attach_topology).
  std::unordered_map<std::uint32_t, std::uint32_t> ring_of_worker;
  DestConfig dest_config{options_.dest_by_name, options_.default_host,
                         options_.base_port};
  states_.reserve(iface_names.size());
  for (std::size_t j = 0; j < iface_names.size(); ++j) {
    const std::uint32_t worker =
        j < worker_of_iface_.size() ? worker_of_iface_[j] : 0;
    auto [it, fresh] =
        ring_of_worker.emplace(worker, static_cast<std::uint32_t>(rings_.size()));
    if (fresh) {
      auto ring = std::make_unique<RingState>();
      const int handle =
          api().ring_create(options_.sq_entries, options_.buffer_table_size);
      if (handle < 0) {
        throw std::runtime_error(
            std::string("io_uring egress: ring_create failed: ") +
            std::strerror(-handle) +
            (handle == -ENOSYS
                 ? " (build without MIDRR_WITH_URING, or kernel too old)"
                 : ""));
      }
      ring->handle = handle;
      ring->zc = options_.zerocopy && api().supports_zerocopy(handle);
      ring->slots.resize(options_.inflight_limit);
      ring->header_arena.resize(options_.inflight_limit * kWireScratchBytes);
      ring->free_slots.reserve(options_.inflight_limit);
      for (std::size_t s = options_.inflight_limit; s > 0; --s) {
        ring->free_slots.push_back(static_cast<std::uint32_t>(s - 1));
      }
      ring->cqes.resize(256);
      rings_.push_back(std::move(ring));
    }
    auto st = std::make_unique<IfaceState>();
    st->name = iface_names[j];
    st->ring = it->second;
    const UdpDestination* conf = nullptr;
    st->dest = resolve_dest(dest_config, st->name, j, &conf);
    st->fd = open_egress_socket(sockets(), conf, st->name);
    states_.push_back(std::move(st));
  }
  zerocopy_active_ = false;
  for (const auto& ring : rings_) zerocopy_active_ |= ring->zc;
  MIDRR_LOG_INFO() << "uring egress: " << rings_.size() << " ring(s), "
                   << iface_names.size() << " iface(s), sq="
                   << options_.sq_entries
                   << (zerocopy_active_ ? ", SEND_ZC" : ", sendmsg only");
}

bool UringBackend::register_frame_pool(const net::FramePool& pool) {
  if (rings_.empty()) {
    MIDRR_LOG_WARN() << "uring egress: register_frame_pool before attach()";
    return false;
  }
  if (!zerocopy_active_) {
    MIDRR_LOG_WARN() << "uring egress: kernel lacks SEND_ZC (or zerocopy "
                        "disabled); fixed-buffer path stays off";
    return false;
  }
  if (pool.headroom_bytes() < kWireScratchBytes) {
    MIDRR_LOG_WARN() << "uring egress: frame pool has " << pool.headroom_bytes()
                     << "B headroom, need " << kWireScratchBytes
                     << "B for the contiguous header; fixed-buffer path off";
    return false;
  }
  const auto slabs = pool.pool().slab_regions();
  if (slabs.empty()) {
    MIDRR_LOG_WARN() << "uring egress: frame pool has no slabs to register "
                        "(construct it with precarve)";
    return false;
  }
  // Build the successor table off to the side, register each slab on every
  // ring (same index everywhere -- an all-or-nothing per slab), then
  // publish atomically.  Workers loading mid-registration see either the
  // old table (fallback path, correct) or the new one.
  auto old = regions_.load(std::memory_order_acquire);
  auto table = std::make_shared<RegionTable>(*old);
  for (const auto& slab : slabs) {
    const auto index =
        static_cast<std::uint16_t>(next_buf_index_.load(std::memory_order_relaxed));
    if (index >= options_.buffer_table_size) {
      MIDRR_LOG_WARN() << "uring egress: buffer table full ("
                       << options_.buffer_table_size << " slots); "
                       << "remaining slabs take the fallback path";
      break;
    }
    bool ok = true;
    std::size_t rings_registered = 0;
    for (const auto& ring : rings_) {
      const int rc =
          api().register_buffer(ring->handle, index, slab.base, slab.bytes);
      if (rc < 0) {
        MIDRR_LOG_WARN() << "uring egress: register_buffer(slab @" << index
                         << ", " << slab.bytes
                         << "B) failed: " << std::strerror(-rc)
                         << "; slab takes the fallback path";
        ok = false;
        break;
      }
      ++rings_registered;
    }
    if (!ok) {
      if (rings_registered > 0) {
        // Some rings now hold this slab at `index`.  Burn the slot so the
        // next slab cannot silently replace a partial registration; the
        // fast path keys off the region table, which never learns this
        // index, so the stale per-ring entries are inert.
        next_buf_index_.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    next_buf_index_.fetch_add(1, std::memory_order_relaxed);
    table->push_back(Region{slab.base, slab.bytes, index});
  }
  const bool grew = table->size() > old->size();
  std::sort(table->begin(), table->end(),
            [](const Region& a, const Region& b) { return a.base < b.base; });
  regions_.store(std::shared_ptr<const RegionTable>(std::move(table)),
                 std::memory_order_release);
  if (grew) {
    MIDRR_LOG_INFO() << "uring egress: " << registered_buffers()
                     << " slab(s) registered as fixed buffers";
  }
  return grew;
}

const UringBackend::Region* UringBackend::find_region(const RegionTable& table,
                                                      const net::Byte* p,
                                                      std::size_t len) const {
  // First region whose base is > p, step back one: regions never overlap.
  auto it = std::upper_bound(
      table.begin(), table.end(), p,
      [](const net::Byte* ptr, const Region& r) { return ptr < r.base; });
  if (it == table.begin()) return nullptr;
  --it;
  if (p >= it->base && p + len <= it->base + it->bytes) return &*it;
  return nullptr;
}

void UringBackend::release_slot(RingState& ring, std::uint32_t idx) {
  Slot& slot = ring.slots[idx];
  slot.packet = Packet{};  // drops the frame reference -> pool slot recycles
  slot.frame_keepalive.reset();
  slot.state = Slot::State::kFree;
  slot.retry_after_notif = false;
  ring.free_slots.push_back(idx);
}

std::size_t UringBackend::reap_ring(RingState& ring, std::uint64_t wait_ns) {
  std::size_t total = 0;
  for (;;) {
    // Only the FIRST reap may block (flush's straggler wait); once
    // something arrived the rest of the drain is non-blocking.
    const int n = api().reap(ring.handle, ring.cqes.data(),
                             static_cast<unsigned>(ring.cqes.size()),
                             total == 0 ? wait_ns : 0);
    if (n <= 0) break;
    if (cqe_batch_hist_ != nullptr) {
      cqe_batch_hist_->observe(static_cast<std::uint64_t>(n));
    }
    for (int c = 0; c < n; ++c) {
      const UringCqe& cqe = ring.cqes[static_cast<std::size_t>(c)];
      const auto idx = static_cast<std::uint32_t>(cqe.user_data);
      MIDRR_ASSERT(idx < ring.slots.size(), "uring CQE with bogus user_data");
      Slot& slot = ring.slots[idx];
      IfaceState& st = *states_[slot.iface];
      if (slot.state == Slot::State::kReclaimed) {
        // Late kernel answer for a slot reclaim_inflight() already
        // force-dropped: the ledger recorded the drop, so the CQE only
        // retires the slot.  A SEND_ZC result (F_MORE) still has its
        // buffer-release notification coming -- stay parked until then.
        if (!cqe.more) release_slot(ring, idx);
        ++total;
        continue;
      }
      if (cqe.notif) {
        // Buffer-release notification of a SEND_ZC: the kernel is done
        // reading the slab bytes; the packet itself was resolved when the
        // result CQE (F_MORE) landed.
        st.zc_notifs.fetch_add(1, std::memory_order_relaxed);
        if (cqe.zc_copied) {
          st.zc_copied.fetch_add(1, std::memory_order_relaxed);
        }
        MIDRR_ASSERT(slot.state == Slot::State::kAwaitNotif,
                     "uring notif CQE for a slot not awaiting one");
        if (slot.retry_after_notif) {
          // The result CQE was a transient failure; now that the buffer is
          // released the slot may be resubmitted (same serialized header,
          // same sequence number).
          slot.retry_after_notif = false;
          slot.state = Slot::State::kRetryPending;
          ring.retry.push_back(idx);
        } else {
          release_slot(ring, idx);
        }
        ++total;
        continue;
      }
      MIDRR_ASSERT(slot.state == Slot::State::kInflight,
                   "uring result CQE for a slot not in flight");
      if (cqe.res < 0 && transient_errno(-cqe.res)) {
        // Internal retry: the packet is NOT handed back to the runtime --
        // its wire header (and sequence number) is already fixed, so
        // re-sending from the slot is the only gap-free option.
        st.cqe_requeues.fetch_add(1, std::memory_order_relaxed);
        if (cqe.more) {
          slot.state = Slot::State::kAwaitNotif;
          slot.retry_after_notif = true;
        } else {
          slot.state = Slot::State::kRetryPending;
          ring.retry.push_back(idx);
        }
        ++total;
        continue;
      }
      EgressCompletion done;
      if (cqe.res == static_cast<std::int32_t>(slot.wire_bytes)) {
        done.verdict = SendDisposition::kSent;
        st.sent_datagrams.fetch_add(1, std::memory_order_relaxed);
        st.sent_wire_bytes.fetch_add(slot.wire_bytes,
                                     std::memory_order_relaxed);
      } else if (cqe.res >= 0) {
        // Short write: part of the datagram left, which UDP cannot mend.
        // Terminal; the consumed sequence number makes it a receiver gap.
        done.verdict = SendDisposition::kDropped;
        st.short_writes.fetch_add(1, std::memory_order_relaxed);
        st.error_drops.fetch_add(1, std::memory_order_relaxed);
      } else {
        done.verdict = SendDisposition::kDropped;
        st.send_errors.fetch_add(1, std::memory_order_relaxed);
        st.error_drops.fetch_add(1, std::memory_order_relaxed);
      }
      if (cqe.more) {
        // SEND_ZC result: a notification follows and the kernel may still
        // read the slab bytes, so the slot keeps a frame reference -- but
        // only the frame; the packet itself moves to the runtime now
        // (one refcount bump instead of a full Packet copy per send).
        slot.frame_keepalive = slot.packet.frame;
        done.packet = std::move(slot.packet);
        slot.state = Slot::State::kAwaitNotif;
      } else {
        done.packet = std::move(slot.packet);
        release_slot(ring, idx);
      }
      st.completions.push_back(std::move(done));
      ++total;
    }
  }
  return total;
}

void UringBackend::push_retries(RingState& ring) {
  std::size_t kept = 0;
  for (std::size_t r = 0; r < ring.retry.size(); ++r) {
    const std::uint32_t idx = ring.retry[r];
    Slot& slot = ring.slots[idx];
    MIDRR_ASSERT(slot.state == Slot::State::kRetryPending,
                 "uring retry list holds a non-retrying slot");
    if (api().push(ring.handle, slot.op)) {
      slot.state = Slot::State::kInflight;
      ++ring.pushed_since_submit;
    } else {
      ring.retry[kept++] = idx;  // SQ full: stays parked for next pass
    }
  }
  ring.retry.resize(kept);
}

int UringBackend::submit_ring(RingState& ring) {
  if (ring.pushed_since_submit == 0) return 0;
  if (sqe_batch_hist_ != nullptr) {
    sqe_batch_hist_->observe(ring.pushed_since_submit);
  }
  ring.pushed_since_submit = 0;
  return api().submit(ring.handle);
}

EgressResult UringBackend::send_burst(
    IfaceId iface, std::span<const Packet> burst, SimTime now,
    std::vector<SendDisposition>& dispositions) {
  (void)now;
  IfaceState& st = *states_[iface];
  RingState& ring = *rings_[st.ring];
  EgressResult result;
  const std::size_t n = burst.size();
  if (n == 0) return result;
  result.clean = false;  // fates are deferred; dispositions are the truth
  dispositions.assign(n, SendDisposition::kInflight);

  // Stalled retries go first: they hold sequence numbers OLDER than this
  // burst's, and per-flow FIFO on the wire depends on them leaving first.
  reap_ring(ring);
  push_retries(ring);

  const auto regions = regions_.load(std::memory_order_acquire);
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Packet& packet = burst[i];
    const std::size_t frame_bytes =
        packet.frame != nullptr ? packet.frame->size() : 0;
    const std::size_t payload =
        std::min(frame_bytes, options_.max_payload_bytes);
    const std::size_t header_bytes =
        WireHeader::kSize +
        (packet.trace != 0 ? WireHeader::kTimestampSize : 0);
    if (header_bytes + payload > kMaxDatagramBytes) {
      dispositions[i] = SendDisposition::kDropped;
      st.oversize_drops.fetch_add(1, std::memory_order_relaxed);
      result.dropped += 1;
      result.dropped_bytes += packet.size_bytes;
      continue;
    }
    if (ring.free_slots.empty()) {
      // Slot arena exhausted: push the tail back to the runtime stash.
      // These packets were never serialized -- no sequence consumed, no
      // rewind needed.
      for (std::size_t k = i; k < n; ++k) {
        dispositions[k] = SendDisposition::kRequeued;
        result.requeued += 1;
        result.requeued_bytes += burst[k].size_bytes;
        st.requeued_packets.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    const std::uint32_t idx = ring.free_slots.back();
    Slot& slot = ring.slots[idx];

    if (st.seq_next.size() <= packet.flow) {
      st.seq_next.resize(packet.flow + 1, 0);
    }
    WireHeader header;
    header.payload_bytes = static_cast<std::uint16_t>(payload);
    header.flow = packet.flow;
    header.seq = st.seq_next[packet.flow];
    header.size_bytes = packet.size_bytes;
    if (packet.trace != 0) {
      header.flags |= WireHeader::kFlagTxTimestamp;
      header.tx_timestamp_ns = mono_now_ns();
    }

    // Fixed zero-copy path: pooled frame, registered slab, enough
    // headroom, and -- decisive -- sole ownership.  use_count() == 1 on
    // the burst's reference means no fault-injected duplicate shares this
    // frame, so writing the header into the shared slab bytes cannot race
    // another in-flight send of the same frame.
    const Region* region = nullptr;
    net::Byte* wire_base = nullptr;
    if (ring.zc && packet.frame != nullptr && payload == frame_bytes &&
        frame_bytes > 0 && packet.frame->headroom_bytes() >= header_bytes &&
        packet.frame.use_count() == 1) {
      net::Byte* payload_base =
          const_cast<net::Byte*>(packet.frame->bytes().data());
      wire_base = payload_base - header_bytes;
      region = find_region(*regions, wire_base, header_bytes + payload);
    }

    UringOp op;
    op.fd = st.fd;
    op.user_data = idx;
    const std::size_t wire_bytes = header_bytes + payload;
    if (region != nullptr) {
      net::BufWriter writer(std::span<net::Byte>(wire_base, header_bytes));
      header.encode(writer);
      op.kind = UringOp::Kind::kSendZcFixed;
      op.buf = wire_base;
      op.len = wire_bytes;
      op.buf_index = region->index;
      op.addr = reinterpret_cast<const sockaddr*>(&st.dest);
      op.addr_len = sizeof(st.dest);
    } else {
      // Fallback: header in the slot's arena bytes, payload gathered from
      // the frame, plain SENDMSG (kernel copies -- exactly the UDP
      // backend's data path, minus its per-burst syscalls).
      net::Byte* hdr = ring.header_arena.data() + idx * kWireScratchBytes;
      net::BufWriter writer(std::span<net::Byte>(hdr, kWireScratchBytes));
      header.encode(writer);
      slot.iov[0].iov_base = hdr;
      slot.iov[0].iov_len = header_bytes;
      std::size_t iov_count = 1;
      if (payload > 0) {
        slot.iov[1].iov_base =
            const_cast<net::Byte*>(packet.frame->bytes().data());
        slot.iov[1].iov_len = payload;
        iov_count = 2;
      }
      std::memset(&slot.msg, 0, sizeof(slot.msg));
      slot.msg.msg_name = &st.dest;
      slot.msg.msg_namelen = sizeof(st.dest);
      slot.msg.msg_iov = slot.iov;
      slot.msg.msg_iovlen = iov_count;
      op.kind = UringOp::Kind::kSendmsg;
      op.msg = &slot.msg;
    }

    if (!api().push(ring.handle, op)) {
      // SQ full: the header was written but no sequence number was
      // consumed (seq_next bumps below, only on acceptance) -- the suffix
      // is plain submission-time pushback.
      for (std::size_t k = i; k < n; ++k) {
        dispositions[k] = SendDisposition::kRequeued;
        result.requeued += 1;
        result.requeued_bytes += burst[k].size_bytes;
        st.requeued_packets.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    ring.free_slots.pop_back();
    ++ring.pushed_since_submit;
    ++st.seq_next[packet.flow];
    // Path counters tick only once the ring accepted the SQE -- an
    // SQ-full requeue would otherwise count the same packet again on
    // its resend.
    if (region != nullptr) {
      st.fixed_sends.fetch_add(1, std::memory_order_relaxed);
    } else {
      st.fallback_sends.fetch_add(1, std::memory_order_relaxed);
    }
    slot.state = Slot::State::kInflight;
    slot.iface = iface;
    slot.wire_bytes = static_cast<std::uint32_t>(wire_bytes);
    slot.packet = packet;  // copy: holds the frame until the CQE resolves
    slot.op = op;
    st.inflight.fetch_add(1, std::memory_order_relaxed);
    result.inflight += 1;
    result.inflight_bytes += packet.size_bytes;
    ++accepted;
  }

  // ONE submit for the whole burst (retries included) -- the syscall
  // amortization this backend exists for.  With doorbell coalescing the
  // submit is deferred further: SQEs from several bursts accumulate until
  // they fill half the SQ or poll_completions sees the ring go quiet.
  if (options_.submit_coalesce_polls == 0 ||
      ring.pushed_since_submit >= submit_force_threshold_) {
    const int rc = submit_ring(ring);
    if (rc < 0) {
      MIDRR_LOG_WARN() << "uring egress: submit failed on iface " << st.name
                       << ": " << std::strerror(-rc);
      st.send_errors.fetch_add(1, std::memory_order_relaxed);
    }
    // Opportunistic reap: loopback completes near-instantly, so harvesting
    // now keeps slot occupancy (and the runtime's inflight gauge) low.
    if (accepted > 0) reap_ring(ring);
  }
  return result;
}

std::size_t UringBackend::poll_completions(IfaceId iface,
                                           std::vector<EgressCompletion>& out) {
  IfaceState& st = *states_[iface];
  RingState& ring = *rings_[st.ring];
  const std::size_t reaped = reap_ring(ring);
  if (reaped > 0) {
    ring.idle_polls = 0;
  } else {
    ++ring.idle_polls;
  }
  const bool had_retries = !ring.retry.empty();
  if (had_retries) push_retries(ring);
  if (ring.pushed_since_submit > 0) {
    // Without coalescing, only retries can be pending here (send_burst
    // already rang the doorbell) and they must not wait for the next
    // burst.  With coalescing, submit once the SQ backlog is deep enough
    // to amortize the enter, or once the ring has gone quiet -- a quiet
    // ring means no CQE can arrive until we ring the doorbell ourselves.
    const unsigned coalesce = options_.submit_coalesce_polls;
    const bool due = coalesce == 0
                         ? had_retries
                         : (ring.idle_polls >= coalesce ||
                            ring.pushed_since_submit >= submit_force_threshold_);
    if (due) {
      submit_ring(ring);
      ring.idle_polls = 0;
      reap_ring(ring);
    }
  }
  const std::size_t n = st.completions.size();
  if (n == 0) return 0;
  out.insert(out.end(), std::make_move_iterator(st.completions.begin()),
             std::make_move_iterator(st.completions.end()));
  st.completions.clear();
  // Inflight is decremented only when the runtime takes the completion
  // back, so the gauge never undercounts packets the runtime has not yet
  // accounted (identity: dequeued == sent + drops + pending + inflight).
  st.inflight.fetch_sub(n, std::memory_order_relaxed);
  return n;
}

std::uint64_t UringBackend::inflight_packets(IfaceId iface) const {
  if (iface >= states_.size()) return 0;
  return states_[iface]->inflight.load(std::memory_order_relaxed);
}

void UringBackend::flush(IfaceId iface) {
  IfaceState& st = *states_[iface];
  RingState& ring = *rings_[st.ring];
  push_retries(ring);
  submit_ring(ring);
  // Unresolved slots remain: give the kernel a bounded beat to answer.
  // The wait happens INSIDE reap_ring so the harvested CQEs go through
  // the normal classification -- a waited-for completion must resolve
  // its slot (sent/retry/release), not just be counted and dropped.
  const bool stragglers =
      st.inflight.load(std::memory_order_relaxed) > st.completions.size();
  reap_ring(ring, stragglers ? kFlushWaitNs : 0);
}

std::size_t UringBackend::reclaim_inflight(IfaceId iface,
                                           std::vector<EgressCompletion>& out) {
  IfaceState& st = *states_[iface];
  RingState& ring = *rings_[st.ring];
  // Harvest whatever the kernel already answered, then splice the staged
  // completions (real verdicts) directly.  Deliberately NOT
  // poll_completions(): that path resubmits kRetryPending slots, and the
  // force-drop loop below would then retire slots with a fresh SQE in
  // flight -- the late CQE would land on a recycled slot.
  reap_ring(ring);
  std::size_t n = st.completions.size();
  if (n > 0) {
    out.insert(out.end(), std::make_move_iterator(st.completions.begin()),
               std::make_move_iterator(st.completions.end()));
    st.completions.clear();
    st.inflight.fetch_sub(n, std::memory_order_relaxed);
  }
  // Force-drop every slot the kernel never answered for.  Slots still
  // owed a CQE are parked as kReclaimed rather than freed, so a late
  // answer retires them silently (see reap_ring).
  std::size_t forced = 0;
  for (std::uint32_t idx = 0; idx < ring.slots.size(); ++idx) {
    Slot& slot = ring.slots[idx];
    if (slot.state == Slot::State::kFree ||
        slot.state == Slot::State::kReclaimed || slot.iface != iface) {
      continue;
    }
    if (slot.state == Slot::State::kAwaitNotif && !slot.retry_after_notif) {
      // Packet already resolved and handed back; only the buffer-release
      // notification is missing.  Park with the keepalive intact -- the
      // kernel may still read the slab bytes.
      slot.retry_after_notif = false;
      slot.state = Slot::State::kReclaimed;
      continue;
    }
    EgressCompletion done;
    done.packet = std::move(slot.packet);
    done.verdict = SendDisposition::kDropped;
    st.error_drops.fetch_add(1, std::memory_order_relaxed);
    st.reclaimed.fetch_add(1, std::memory_order_relaxed);
    st.inflight.fetch_sub(1, std::memory_order_relaxed);
    if (slot.state == Slot::State::kRetryPending) {
      // Its transient-failure CQE was already consumed: nothing is owed,
      // the slot can recycle immediately.
      ring.retry.erase(std::remove(ring.retry.begin(), ring.retry.end(), idx),
                       ring.retry.end());
      release_slot(ring, idx);
    } else {
      // kInflight, or a ZC retry still awaiting its buffer-release
      // notification: a CQE is outstanding.  Pin the slab bytes (the
      // kernel may read them yet) and park.
      slot.frame_keepalive = done.packet.frame;
      slot.retry_after_notif = false;
      slot.state = Slot::State::kReclaimed;
    }
    out.push_back(std::move(done));
    ++forced;
    ++n;
  }
  if (forced > 0) {
    MIDRR_LOG_WARN() << "uring egress: reclaimed "
                     << st.reclaimed.load(std::memory_order_relaxed)
                     << " unanswered in-flight packet(s) on " << st.name
                     << " at shutdown (counted as io drops)";
  }
  return n;
}

std::uint64_t UringBackend::send_errors(IfaceId iface) const {
  if (iface >= states_.size()) return 0;
  return states_[iface]->send_errors.load(std::memory_order_relaxed);
}

std::uint64_t UringBackend::syscalls() const {
  return const_cast<UringBackend*>(this)->api().syscalls();
}

std::uint64_t UringBackend::sent_datagrams(IfaceId iface) const {
  if (iface >= states_.size()) return 0;
  return states_[iface]->sent_datagrams.load(std::memory_order_relaxed);
}

std::uint64_t UringBackend::sent_wire_bytes(IfaceId iface) const {
  if (iface >= states_.size()) return 0;
  return states_[iface]->sent_wire_bytes.load(std::memory_order_relaxed);
}

std::uint64_t UringBackend::fixed_sends(IfaceId iface) const {
  if (iface >= states_.size()) return 0;
  return states_[iface]->fixed_sends.load(std::memory_order_relaxed);
}

std::uint64_t UringBackend::fallback_sends(IfaceId iface) const {
  if (iface >= states_.size()) return 0;
  return states_[iface]->fallback_sends.load(std::memory_order_relaxed);
}

std::uint64_t UringBackend::cqe_requeues(IfaceId iface) const {
  if (iface >= states_.size()) return 0;
  return states_[iface]->cqe_requeues.load(std::memory_order_relaxed);
}

std::uint64_t UringBackend::short_writes(IfaceId iface) const {
  if (iface >= states_.size()) return 0;
  return states_[iface]->short_writes.load(std::memory_order_relaxed);
}

std::uint64_t UringBackend::oversize_drops(IfaceId iface) const {
  if (iface >= states_.size()) return 0;
  return states_[iface]->oversize_drops.load(std::memory_order_relaxed);
}

std::uint64_t UringBackend::error_drops(IfaceId iface) const {
  if (iface >= states_.size()) return 0;
  return states_[iface]->error_drops.load(std::memory_order_relaxed);
}

std::uint64_t UringBackend::zc_notifs(IfaceId iface) const {
  if (iface >= states_.size()) return 0;
  return states_[iface]->zc_notifs.load(std::memory_order_relaxed);
}

std::uint64_t UringBackend::zc_copied(IfaceId iface) const {
  if (iface >= states_.size()) return 0;
  return states_[iface]->zc_copied.load(std::memory_order_relaxed);
}

std::uint64_t UringBackend::cq_overflows() const {
  auto& self = *const_cast<UringBackend*>(this);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    total += self.api().overflow_count(ring->handle);
  }
  return total;
}

std::uint16_t UringBackend::dest_port(IfaceId iface) const {
  if (iface >= states_.size()) return 0;
  return ntohs(states_[iface]->dest.sin_port);
}

bool UringBackend::zerocopy_active() const { return zerocopy_active_; }

std::size_t UringBackend::registered_buffers() const {
  return regions_.load(std::memory_order_acquire)->size();
}

void UringBackend::register_metrics(telemetry::MetricsRegistry& registry) {
  const auto count_of = [](const std::atomic<std::uint64_t>& v) {
    return [&v] {
      return static_cast<double>(v.load(std::memory_order_relaxed));
    };
  };
  sqe_batch_hist_ = &registry.histogram(
      "midrr_io_uring_sqe_batch",
      "SQEs submitted per io_uring_enter (the syscall amortization).",
      {{"backend", "uring"}});
  cqe_batch_hist_ = &registry.histogram(
      "midrr_io_uring_cqe_batch",
      "Completions harvested per reap pass.", {{"backend", "uring"}});
  registry.gauge_fn(
      "midrr_io_uring_registered_buffers",
      "PacketPool slabs registered as fixed buffers (zero-copy ranges).",
      {{"backend", "uring"}},
      [this] { return static_cast<double>(registered_buffers()); });
  registry.counter_fn(
      "midrr_io_uring_cq_overflows_total",
      "CQ overflow events (completions parked kernel-side; a CQ sizing "
      "signal, not loss).",
      {{"backend", "uring"}}, [this] {
        return static_cast<double>(cq_overflows());
      });
  registry.counter_fn("midrr_io_syscalls_total",
                      "Transmit syscalls issued by the egress backend "
                      "(io_uring_enter calls, all rings).",
                      {{"backend", "uring"}},
                      [this] { return static_cast<double>(syscalls()); });
  for (const auto& sp : states_) {
    IfaceState* st = sp.get();
    const telemetry::LabelSet labels{{"backend", "uring"},
                                     {"iface", st->name}};
    registry.gauge_fn(
        "midrr_io_uring_inflight_packets",
        "Packets accepted into the ring whose completion has not yet been "
        "handed back to the runtime (the io_inflight conservation term).",
        labels, [st] {
          return static_cast<double>(
              st->inflight.load(std::memory_order_relaxed));
        });
    registry.counter_fn(
        "midrr_io_send_errors_total",
        "Hard (non-transient) transmit failures; feeds the Supervisor's "
        "link-health verdicts.",
        labels, count_of(st->send_errors));
    registry.counter_fn("midrr_io_sent_datagrams_total",
                        "Datagrams confirmed sent by their CQEs.", labels,
                        count_of(st->sent_datagrams));
    registry.counter_fn(
        "midrr_io_sent_wire_bytes_total",
        "Wire bytes confirmed sent (headers + capped payloads).", labels,
        count_of(st->sent_wire_bytes));
    registry.counter_fn(
        "midrr_io_requeued_packets_total",
        "Packets pushed back at submission time (SQ or slot exhaustion) "
        "and parked in the runtime stash for retry.",
        labels, count_of(st->requeued_packets));
    registry.counter_fn(
        "midrr_io_oversize_drops_total",
        "Packets dropped because header + capped payload exceeds the "
        "65507-byte UDP datagram limit.",
        labels, count_of(st->oversize_drops));
    registry.counter_fn(
        "midrr_io_error_drops_total",
        "Packets dropped terminally (hard CQE errno, short write, or "
        "shutdown reclaim).",
        labels, count_of(st->error_drops));
    registry.counter_fn(
        "midrr_io_uring_cqe_requeues_total",
        "Transient CQE failures (EAGAIN/ENOBUFS/...) retried internally "
        "with the same sequence number -- never a wire-ledger gap.",
        labels, count_of(st->cqe_requeues));
    registry.counter_fn(
        "midrr_io_uring_short_writes_total",
        "CQEs reporting fewer bytes than the datagram (terminal drop).",
        labels, count_of(st->short_writes));
    registry.counter_fn(
        "midrr_io_uring_fixed_sends_total",
        "Datagrams sent zero-copy from a registered PacketPool slab "
        "(header written into frame headroom, single contiguous range).",
        labels, count_of(st->fixed_sends));
    registry.counter_fn(
        "midrr_io_uring_fallback_sends_total",
        "Datagrams sent via the copying SENDMSG fallback (heap/shared/"
        "unregistered frames).",
        labels, count_of(st->fallback_sends));
    registry.counter_fn(
        "midrr_io_uring_zc_notifs_total",
        "SEND_ZC buffer-release notifications (each frees one slot).",
        labels, count_of(st->zc_notifs));
    registry.counter_fn(
        "midrr_io_uring_zc_copied_total",
        "SEND_ZC notifications reporting the kernel copied after all "
        "(loopback always does -- an honesty signal, not an error).",
        labels, count_of(st->zc_copied));
  }
}

std::unique_ptr<EgressBackend> make_uring_backend(UringBackendOptions options) {
  if (!uring_supported() && options.api == nullptr) {
    throw std::runtime_error(
        "io_uring egress backend not built: reconfigure with "
        "-DMIDRR_WITH_URING=ON");
  }
  return std::make_unique<UringBackend>(std::move(options));
}

}  // namespace midrr::io
