#include "io/uring_backend.hpp"

#include <stdexcept>

namespace midrr::io {

bool uring_supported() {
#ifdef MIDRR_WITH_URING
  return true;
#else
  return false;
#endif
}

#ifdef MIDRR_WITH_URING

void UringBackend::attach(const std::vector<std::string>& iface_names) {
  (void)iface_names;
}

EgressResult UringBackend::send_burst(
    IfaceId iface, std::span<const Packet> burst, SimTime now,
    std::vector<SendDisposition>& dispositions) {
  (void)iface;
  (void)now;
  (void)dispositions;
  // Stub: account the burst as one ring submission that completed
  // immediately.  The real path (sqe batching, completion reaping,
  // registered buffers) is tracked in ROADMAP.md.
  EgressResult result;
  result.sent = burst.size();
  for (const Packet& packet : burst) result.sent_bytes += packet.size_bytes;
  submissions_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

std::uint64_t UringBackend::syscalls() const {
  return submissions_.load(std::memory_order_relaxed);
}

std::unique_ptr<EgressBackend> make_uring_backend() {
  return std::make_unique<UringBackend>();
}

#else  // !MIDRR_WITH_URING

std::unique_ptr<EgressBackend> make_uring_backend() {
  throw std::runtime_error(
      "io_uring egress backend not built: reconfigure with "
      "-DMIDRR_WITH_URING=ON");
}

#endif  // MIDRR_WITH_URING

}  // namespace midrr::io
