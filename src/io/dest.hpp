// Shared destination resolution + socket setup for the real egress
// backends (UdpBackend, UringBackend).
//
// Both backends speak the same configuration surface: an explicit
// per-interface destination table, or a default_host:base_port+j fallback
// keyed on the interface's global index.  Factoring the resolution (and
// the open/bind/SO_BINDTODEVICE dance) here keeps the two attach() paths
// byte-for-byte consistent -- `--egress udp` and `--egress uring` with the
// same flags must land datagrams on the same ports.
#pragma once

#include <netinet/in.h>

#include <cstdint>
#include <string>
#include <unordered_map>

#include "io/socket_api.hpp"

namespace midrr::io {

/// Where one interface's datagrams go, and how its socket is bound.
struct UdpDestination {
  std::string host;          ///< IPv4 dotted quad
  std::uint16_t port = 0;
  std::string source_host;   ///< optional bind() source address
  std::string device;        ///< optional SO_BINDTODEVICE device name
};

/// Per-interface destination configuration shared by the backends.
struct DestConfig {
  /// Explicit per-interface destinations, keyed by interface name.
  std::unordered_map<std::string, UdpDestination> dest_by_name;
  /// Fallback for interfaces absent from dest_by_name: global interface
  /// index j goes to default_host:base_port+j.  base_port == 0 means "no
  /// fallback" and an unmapped interface is a configuration error.
  std::string default_host = "127.0.0.1";
  std::uint16_t base_port = 0;
};

/// Resolves the destination sockaddr for interface `name` at global index
/// `j`.  Throws std::runtime_error on a missing mapping or a bad address.
/// `conf_out` (optional) receives the explicit table entry, or nullptr
/// when the fallback was used.
sockaddr_in resolve_dest(const DestConfig& config, const std::string& name,
                         std::size_t j, const UdpDestination** conf_out);

/// Opens a non-blocking UDP socket for `name` and applies the optional
/// source-bind / device-bind from `conf` (which may be null).  Throws on
/// socket()/bind() failure; SO_BINDTODEVICE failure is a warning only
/// (needs CAP_NET_RAW; unprivileged loopback runs must still work).
int open_egress_socket(SocketApi& api, const UdpDestination* conf,
                       const std::string& name);

}  // namespace midrr::io
