#include "io/uring_api.hpp"

#include <cerrno>

#ifdef MIDRR_WITH_URING

#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <vector>

#include "util/assert.hpp"

namespace midrr::io {

namespace {

// Raw syscall wrappers: the container bakes in the kernel UAPI header but
// no liburing, so this file IS the liburing (the ~150 lines of it this
// backend needs: setup, two mmaps, tail/head publication, enter, register).

int sys_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int sys_enter(int fd, unsigned to_submit, unsigned min_complete,
              unsigned flags, const void* arg, std::size_t argsz) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, arg, argsz));
}

int sys_register(int fd, unsigned opcode, const void* arg, unsigned nr_args) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

// The ring head/tail words live in kernel-shared mmap'd memory; all
// accesses go through atomic_ref so the acquire/release pairing with the
// kernel's own barriers is explicit (and TSan-clean).
std::uint32_t load_acquire(const std::uint32_t* p) {
  return std::atomic_ref<std::uint32_t>(*const_cast<std::uint32_t*>(p))
      .load(std::memory_order_acquire);
}

std::uint32_t load_relaxed(const std::uint32_t* p) {
  return std::atomic_ref<std::uint32_t>(*const_cast<std::uint32_t*>(p))
      .load(std::memory_order_relaxed);
}

void store_release(std::uint32_t* p, std::uint32_t v) {
  std::atomic_ref<std::uint32_t>(*p).store(v, std::memory_order_release);
}

struct Ring {
  int fd = -1;
  std::uint32_t features = 0;
  unsigned sq_entries = 0;
  unsigned cq_entries = 0;

  void* sq_mmap = nullptr;
  std::size_t sq_mmap_bytes = 0;
  void* cq_mmap = nullptr;  ///< == sq_mmap under IORING_FEAT_SINGLE_MMAP
  std::size_t cq_mmap_bytes = 0;
  io_uring_sqe* sqes = nullptr;
  std::size_t sqes_bytes = 0;

  std::uint32_t* sq_head = nullptr;
  std::uint32_t* sq_tail = nullptr;
  std::uint32_t* sq_flags = nullptr;
  std::uint32_t* sq_array = nullptr;
  std::uint32_t sq_mask = 0;
  std::uint32_t* cq_head = nullptr;
  std::uint32_t* cq_tail = nullptr;
  std::uint32_t cq_mask = 0;
  io_uring_cqe* cqes = nullptr;

  std::uint32_t local_tail = 0;  ///< our published SQ tail (owner thread)
  unsigned to_submit = 0;        ///< pushed but not yet submitted
  bool buf_table_ok = false;     ///< sparse registered-buffer table exists
  bool zc = false;               ///< SEND_ZC / SENDMSG_ZC supported
  std::uint64_t overflows = 0;

  ~Ring() {
    if (sqes != nullptr) ::munmap(sqes, sqes_bytes);
    if (cq_mmap != nullptr && cq_mmap != sq_mmap) {
      ::munmap(cq_mmap, cq_mmap_bytes);
    }
    if (sq_mmap != nullptr) ::munmap(sq_mmap, sq_mmap_bytes);
    if (fd >= 0) ::close(fd);
  }
};

}  // namespace

struct RealUringApi::Impl {
  // Handles are indices; entries are never erased (destroy closes the fd
  // and leaves a tombstone) so worker threads can deref without locking.
  std::vector<std::unique_ptr<Ring>> rings;
  std::atomic<std::uint64_t> enters{0};

  Ring* ring(int handle) {
    if (handle < 0 || static_cast<std::size_t>(handle) >= rings.size()) {
      return nullptr;
    }
    Ring* r = rings[static_cast<std::size_t>(handle)].get();
    return r != nullptr && r->fd >= 0 ? r : nullptr;
  }
};

RealUringApi::RealUringApi() : impl_(new Impl) {}

RealUringApi::~RealUringApi() { delete impl_; }

int RealUringApi::ring_create(unsigned sq_entries, unsigned buf_table) {
  auto ring = std::make_unique<Ring>();
  io_uring_params p{};
  // CQ sized 4x SQ: a zero-copy send produces TWO completions (result +
  // buffer-release notif), and headroom beyond 2x means the kernel's
  // overflow path stays a counter, not a stall.  CLAMP keeps oversized
  // asks working on small-limit kernels.
  p.flags = IORING_SETUP_CQSIZE | IORING_SETUP_CLAMP;
  p.cq_entries = sq_entries * 4;
  const int fd = sys_setup(sq_entries, &p);
  if (fd < 0) return -errno;
  ring->fd = fd;
  ring->features = p.features;
  ring->sq_entries = p.sq_entries;
  ring->cq_entries = p.cq_entries;

  std::size_t sq_bytes = p.sq_off.array + p.sq_entries * sizeof(std::uint32_t);
  std::size_t cq_bytes = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
  const bool single = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single) sq_bytes = cq_bytes = std::max(sq_bytes, cq_bytes);
  void* sq_ptr = ::mmap(nullptr, sq_bytes, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQ_RING);
  if (sq_ptr == MAP_FAILED) return -errno;
  ring->sq_mmap = sq_ptr;
  ring->sq_mmap_bytes = sq_bytes;
  void* cq_ptr = sq_ptr;
  if (!single) {
    cq_ptr = ::mmap(nullptr, cq_bytes, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_CQ_RING);
    if (cq_ptr == MAP_FAILED) return -errno;
  }
  ring->cq_mmap = cq_ptr;
  ring->cq_mmap_bytes = cq_bytes;
  ring->sqes_bytes = p.sq_entries * sizeof(io_uring_sqe);
  void* sqes = ::mmap(nullptr, ring->sqes_bytes, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQES);
  if (sqes == MAP_FAILED) return -errno;
  ring->sqes = static_cast<io_uring_sqe*>(sqes);

  auto* sq_base = static_cast<std::uint8_t*>(sq_ptr);
  ring->sq_head = reinterpret_cast<std::uint32_t*>(sq_base + p.sq_off.head);
  ring->sq_tail = reinterpret_cast<std::uint32_t*>(sq_base + p.sq_off.tail);
  ring->sq_flags = reinterpret_cast<std::uint32_t*>(sq_base + p.sq_off.flags);
  ring->sq_array = reinterpret_cast<std::uint32_t*>(sq_base + p.sq_off.array);
  ring->sq_mask =
      *reinterpret_cast<std::uint32_t*>(sq_base + p.sq_off.ring_mask);
  auto* cq_base = static_cast<std::uint8_t*>(cq_ptr);
  ring->cq_head = reinterpret_cast<std::uint32_t*>(cq_base + p.cq_off.head);
  ring->cq_tail = reinterpret_cast<std::uint32_t*>(cq_base + p.cq_off.tail);
  ring->cq_mask =
      *reinterpret_cast<std::uint32_t*>(cq_base + p.cq_off.ring_mask);
  ring->cqes = reinterpret_cast<io_uring_cqe*>(cq_base + p.cq_off.cqes);
  ring->local_tail = load_relaxed(ring->sq_tail);

  if (buf_table > 0) {
    io_uring_rsrc_register rr{};
    rr.nr = buf_table;
    rr.flags = IORING_RSRC_REGISTER_SPARSE;
    ring->buf_table_ok =
        sys_register(fd, IORING_REGISTER_BUFFERS2, &rr, sizeof(rr)) == 0;
  }
  {
    // Op probe: SEND_ZC arrived in 5.19/6.0; degrade to plain SENDMSG
    // SQEs (still one syscall per burst, still no user-space copy of
    // payload bytes -- just no kernel-side zero-copy pinning) when absent.
    constexpr unsigned kProbeOps = 64;
    std::vector<std::uint8_t> buf(
        sizeof(io_uring_probe) + kProbeOps * sizeof(io_uring_probe_op), 0);
    auto* probe = reinterpret_cast<io_uring_probe*>(buf.data());
    if (sys_register(fd, IORING_REGISTER_PROBE, probe, kProbeOps) == 0) {
      const auto supported = [probe](unsigned op) {
        return op < probe->ops_len &&
               (probe->ops[op].flags & IO_URING_OP_SUPPORTED) != 0;
      };
      ring->zc =
          supported(IORING_OP_SEND_ZC) && supported(IORING_OP_SENDMSG_ZC);
    }
  }

  impl_->rings.push_back(std::move(ring));
  return static_cast<int>(impl_->rings.size()) - 1;
}

void RealUringApi::ring_destroy(int handle) {
  Ring* r = impl_->ring(handle);
  if (r == nullptr) return;
  // Reset in place (tombstone): handles are stable indices.
  impl_->rings[static_cast<std::size_t>(handle)] = std::make_unique<Ring>();
}

int RealUringApi::register_buffer(int handle, unsigned index, void* base,
                                  std::size_t len) {
  Ring* r = impl_->ring(handle);
  if (r == nullptr) return -EBADF;
  if (!r->buf_table_ok) return -EOPNOTSUPP;
  iovec iov{base, len};
  io_uring_rsrc_update2 up{};
  up.offset = index;
  up.data = reinterpret_cast<std::uint64_t>(&iov);
  up.nr = 1;
  if (sys_register(r->fd, IORING_REGISTER_BUFFERS_UPDATE, &up, sizeof(up)) <
      0) {
    return -errno;
  }
  return 0;
}

bool RealUringApi::supports_zerocopy(int handle) {
  Ring* r = impl_->ring(handle);
  return r != nullptr && r->zc;
}

bool RealUringApi::push(int handle, const UringOp& op) {
  Ring* r = impl_->ring(handle);
  MIDRR_ASSERT(r != nullptr, "uring push on a destroyed ring");
  const std::uint32_t head = load_acquire(r->sq_head);
  if (r->local_tail - head >= r->sq_entries) return false;  // SQ full
  const std::uint32_t idx = r->local_tail & r->sq_mask;
  io_uring_sqe* sqe = &r->sqes[idx];
  std::memset(sqe, 0, sizeof(*sqe));
  sqe->fd = op.fd;
  sqe->user_data = op.user_data;
  sqe->msg_flags = MSG_NOSIGNAL;
  switch (op.kind) {
    case UringOp::Kind::kSendmsg:
      sqe->opcode = IORING_OP_SENDMSG;
      sqe->addr = reinterpret_cast<std::uint64_t>(op.msg);
      break;
    case UringOp::Kind::kSendmsgZc:
      sqe->opcode = IORING_OP_SENDMSG_ZC;
      sqe->addr = reinterpret_cast<std::uint64_t>(op.msg);
      break;
    case UringOp::Kind::kSendZcFixed:
      sqe->opcode = IORING_OP_SEND_ZC;
      sqe->addr = reinterpret_cast<std::uint64_t>(op.buf);
      sqe->len = static_cast<std::uint32_t>(op.len);
      sqe->ioprio = IORING_RECVSEND_FIXED_BUF;
      sqe->buf_index = op.buf_index;
      sqe->addr2 = reinterpret_cast<std::uint64_t>(op.addr);
      sqe->addr_len = static_cast<__u16>(op.addr_len);
      break;
  }
  r->sq_array[idx] = idx;
  ++r->local_tail;
  store_release(r->sq_tail, r->local_tail);
  ++r->to_submit;
  return true;
}

int RealUringApi::submit(int handle) {
  Ring* r = impl_->ring(handle);
  MIDRR_ASSERT(r != nullptr, "uring submit on a destroyed ring");
  if (r->to_submit == 0) return 0;
  for (;;) {
    const int rc = sys_enter(r->fd, r->to_submit, 0, 0, nullptr, 0);
    impl_->enters.fetch_add(1, std::memory_order_relaxed);
    if (rc >= 0) {
      r->to_submit -= static_cast<unsigned>(rc);
      return rc;
    }
    if (errno == EINTR) continue;
    // EAGAIN/EBUSY: the kernel cannot take more right now; the entries
    // stay published in the SQ and the next submit retries them.
    if (errno == EAGAIN || errno == EBUSY) return 0;
    return -errno;
  }
}

int RealUringApi::reap(int handle, UringCqe* out, unsigned max,
                       std::uint64_t wait_ns) {
  Ring* r = impl_->ring(handle);
  MIDRR_ASSERT(r != nullptr, "uring reap on a destroyed ring");
  if (load_relaxed(r->sq_flags) & IORING_SQ_CQ_OVERFLOW) {
    // Completions parked in the kernel's overflow list; one GETEVENTS
    // flushes what fits back into the CQ.  Counted -- a CQ sized right
    // never takes this branch.
    ++r->overflows;
    sys_enter(r->fd, 0, 0, IORING_ENTER_GETEVENTS, nullptr, 0);
    impl_->enters.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint32_t head = load_relaxed(r->cq_head);
  std::uint32_t tail = load_acquire(r->cq_tail);
  if (head == tail && wait_ns > 0 &&
      (r->features & IORING_FEAT_EXT_ARG) != 0) {
    __kernel_timespec ts{};
    ts.tv_sec = static_cast<std::int64_t>(wait_ns / 1000000000ULL);
    ts.tv_nsec = static_cast<long long>(wait_ns % 1000000000ULL);
    io_uring_getevents_arg arg{};
    arg.ts = reinterpret_cast<std::uint64_t>(&ts);
    sys_enter(r->fd, 0, 1, IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG,
              &arg, sizeof(arg));
    impl_->enters.fetch_add(1, std::memory_order_relaxed);
    tail = load_acquire(r->cq_tail);
  }
  unsigned n = 0;
  while (head != tail && n < max) {
    const io_uring_cqe* cqe = &r->cqes[head & r->cq_mask];
    out[n].user_data = cqe->user_data;
    out[n].res = cqe->res;
    out[n].more = (cqe->flags & IORING_CQE_F_MORE) != 0;
    out[n].notif = (cqe->flags & IORING_CQE_F_NOTIF) != 0;
    out[n].zc_copied =
        out[n].notif && (static_cast<std::uint32_t>(cqe->res) &
                         IORING_NOTIF_USAGE_ZC_COPIED) != 0;
    ++n;
    ++head;
  }
  store_release(r->cq_head, head);
  return static_cast<int>(n);
}

std::uint64_t RealUringApi::overflow_count(int handle) {
  Ring* r = impl_->ring(handle);
  return r != nullptr ? r->overflows : 0;
}

std::uint64_t RealUringApi::syscalls() const {
  return impl_->enters.load(std::memory_order_relaxed);
}

bool uring_supported() { return true; }

bool uring_runtime_available(int* errno_out) {
  io_uring_params p{};
  const int fd = sys_setup(4, &p);
  if (fd < 0) {
    if (errno_out != nullptr) *errno_out = errno;
    return false;
  }
  ::close(fd);
  if (errno_out != nullptr) *errno_out = 0;
  return true;
}

}  // namespace midrr::io

#else  // !MIDRR_WITH_URING

namespace midrr::io {

// Not built: the seam still links (UringBackend stays mock-testable
// everywhere) but the real ring reports -ENOSYS from every entry point.

struct RealUringApi::Impl {};

RealUringApi::RealUringApi() = default;
RealUringApi::~RealUringApi() { delete impl_; }

int RealUringApi::ring_create(unsigned, unsigned) { return -ENOSYS; }
void RealUringApi::ring_destroy(int) {}
int RealUringApi::register_buffer(int, unsigned, void*, std::size_t) {
  return -ENOSYS;
}
bool RealUringApi::supports_zerocopy(int) { return false; }
bool RealUringApi::push(int, const UringOp&) { return false; }
int RealUringApi::submit(int) { return -ENOSYS; }
int RealUringApi::reap(int, UringCqe*, unsigned, std::uint64_t) {
  return 0;
}
std::uint64_t RealUringApi::overflow_count(int) { return 0; }
std::uint64_t RealUringApi::syscalls() const { return 0; }

bool uring_supported() { return false; }

bool uring_runtime_available(int* errno_out) {
  if (errno_out != nullptr) *errno_out = ENOSYS;
  return false;
}

}  // namespace midrr::io

#endif  // MIDRR_WITH_URING
