// The io_uring syscall seam under UringBackend -- the mirror of SocketApi.
//
// UringBackend's submission/completion logic (slot lifecycle, CQE
// classification, internal transient retry, zero-copy notification
// tracking, SQ-full pushback) is where the bugs live, so it is tested
// against a mocked UringApi that can script CQE results, SQ exhaustion,
// short writes and overflow deterministically -- on hosts where real
// io_uring is denied (seccomp, EPERM) or not even compiled in.
//
// RealUringApi is a self-contained mini-liburing over the raw
// io_uring_setup/enter/register syscalls and mmap'd rings (no liburing
// dependency; the kernel UAPI header is all it needs).  It is only
// functional when built with -DMIDRR_WITH_URING=ON; otherwise every entry
// point reports -ENOSYS and uring_runtime_available() is false.
//
// Threading: ring_create/ring_destroy/register_buffer run single-threaded
// at backend attach/teardown.  push/submit/reap/overflow_count for a given
// ring are called only by the worker thread that owns that ring (the
// UringBackend maps every interface of a worker onto one ring).
// syscalls() is a scrape-rate read from any thread.
#pragma once

#include <sys/socket.h>

#include <cstddef>
#include <cstdint>

struct msghdr;

namespace midrr::io {

/// One submission the backend asks to be queued.
struct UringOp {
  enum class Kind : std::uint8_t {
    kSendmsg,      ///< IORING_OP_SENDMSG: msg (header iovec + payload iovec)
    kSendmsgZc,    ///< IORING_OP_SENDMSG_ZC: same shape, zero-copy + notif
    kSendZcFixed,  ///< IORING_OP_SEND_ZC over a registered buffer:
                   ///< contiguous [buf, buf+len) at table slot buf_index
  };
  Kind kind = Kind::kSendmsg;
  int fd = -1;
  std::uint64_t user_data = 0;
  /// kSendmsg / kSendmsgZc: scatter-gather message (must stay valid until
  /// the completion arrives -- the backend's slot owns it).
  const msghdr* msg = nullptr;
  /// kSendZcFixed: contiguous wire bytes inside a registered buffer.
  const void* buf = nullptr;
  std::size_t len = 0;
  std::uint16_t buf_index = 0;
  const sockaddr* addr = nullptr;
  socklen_t addr_len = 0;
};

/// One reaped completion.  `more` mirrors IORING_CQE_F_MORE (a zero-copy
/// send whose buffer-release notification is still coming); `notif`
/// mirrors IORING_CQE_F_NOTIF (that notification: the kernel is done with
/// the buffer).  `zc_copied` is set on a notif whose data was copied
/// after all (loopback always copies -- an honesty signal, not an error).
struct UringCqe {
  std::uint64_t user_data = 0;
  std::int32_t res = 0;
  bool more = false;
  bool notif = false;
  bool zc_copied = false;
};

class UringApi {
 public:
  virtual ~UringApi() = default;

  /// Creates a ring with at least `sq_entries` submission slots and a
  /// sparse registered-buffer table of `buf_table` entries.  Returns a
  /// non-negative ring handle, or -errno (-EPERM/-ENOSYS when the kernel
  /// forbids io_uring, -ENOSYS when not compiled in).
  virtual int ring_create(unsigned sq_entries, unsigned buf_table) = 0;
  virtual void ring_destroy(int ring) = 0;

  /// Fills table slot `index` with [base, base+len).  0 or -errno
  /// (-EOPNOTSUPP when the kernel lacks sparse tables, -ENOMEM/-EFAULT on
  /// memlock pressure); the backend treats failure as "use the non-fixed
  /// path for this region", never fatal.
  virtual int register_buffer(int ring, unsigned index, void* base,
                              std::size_t len) = 0;

  /// True when the kernel supports IORING_OP_SEND_ZC / SENDMSG_ZC.
  virtual bool supports_zerocopy(int ring) = 0;

  /// Queues one op; false when the submission queue is full (the caller
  /// submits and retries, or pushes the tail back to the runtime).
  virtual bool push(int ring, const UringOp& op) = 0;

  /// Submits everything pushed since the last submit.  Returns the number
  /// submitted or -errno.
  virtual int submit(int ring) = 0;

  /// Reaps up to `max` completions into `out`; when none are ready and
  /// `wait_ns` > 0, blocks up to that long for at least one.  Returns the
  /// count (0 when none).
  virtual int reap(int ring, UringCqe* out, unsigned max,
                   std::uint64_t wait_ns) = 0;

  /// Cumulative CQ overflow events observed on `ring` (completions the
  /// kernel had to park in its overflow list; reaped normally afterwards,
  /// but a sizing signal worth a counter).
  virtual std::uint64_t overflow_count(int ring) = 0;

  /// Cumulative io_uring_enter calls (the transmit-path syscalls).
  /// Thread-safe.
  virtual std::uint64_t syscalls() const = 0;
};

/// Raw-syscall implementation (mini-liburing).  All entry points report
/// -ENOSYS unless built with MIDRR_WITH_URING.
class RealUringApi final : public UringApi {
 public:
  RealUringApi();
  ~RealUringApi() override;

  RealUringApi(const RealUringApi&) = delete;
  RealUringApi& operator=(const RealUringApi&) = delete;

  int ring_create(unsigned sq_entries, unsigned buf_table) override;
  void ring_destroy(int ring) override;
  int register_buffer(int ring, unsigned index, void* base,
                      std::size_t len) override;
  bool supports_zerocopy(int ring) override;
  bool push(int ring, const UringOp& op) override;
  int submit(int ring) override;
  int reap(int ring, UringCqe* out, unsigned max,
           std::uint64_t wait_ns) override;
  std::uint64_t overflow_count(int ring) override;
  std::uint64_t syscalls() const override;

 private:
  struct Impl;
  Impl* impl_ = nullptr;
};

/// True when this build carries the real io_uring path
/// (-DMIDRR_WITH_URING=ON).
bool uring_supported();

/// Probes whether THIS process may create a ring right now (built with
/// uring AND io_uring_setup succeeds -- seccomp/EPERM/ENOSYS make this
/// false on locked-down hosts).  `errno_out` (optional) receives the
/// probe's errno on failure, 0 on success.
bool uring_runtime_available(int* errno_out = nullptr);

}  // namespace midrr::io
