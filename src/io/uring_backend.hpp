// io_uring egress backend -- feature-gated STUB.
//
// Compiled only when the build sets -DMIDRR_WITH_URING=ON; without the
// gate the factory below still links but reports the backend as
// unavailable, so `--egress uring` fails with a clear message instead of
// an undefined symbol.  The container this repo builds in does not ship
// liburing and the project adds no dependencies, so the gated class is a
// plumbing stub: it validates the CMake gate, the CLI surface, and the
// EgressBackend contract (accounting-only sends, one "submission" per
// burst) while the real submission/completion-queue path remains an open
// ROADMAP item.
#pragma once

#include <memory>

#include "io/egress.hpp"

namespace midrr::io {

/// True when this build carries the io_uring backend (MIDRR_WITH_URING).
bool uring_supported();

/// The gated backend, or a throw with a "rebuild with -DMIDRR_WITH_URING=ON"
/// message when the gate is off.
std::unique_ptr<EgressBackend> make_uring_backend();

#ifdef MIDRR_WITH_URING
class UringBackend final : public EgressBackend {
 public:
  std::string name() const override { return "uring"; }
  void attach(const std::vector<std::string>& iface_names) override;
  EgressResult send_burst(IfaceId iface, std::span<const Packet> burst,
                          SimTime now,
                          std::vector<SendDisposition>& dispositions) override;
  std::uint64_t syscalls() const override;

 private:
  std::atomic<std::uint64_t> submissions_{0};
};
#endif  // MIDRR_WITH_URING

}  // namespace midrr::io
