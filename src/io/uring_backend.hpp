// UringBackend: completion-driven io_uring egress -- the fast path that
// amortizes transmit syscalls (one io_uring_enter per paced burst, fewer
// under load) and sends straight from PacketPool slab memory.
//
// Submission model: all interfaces driven by one worker thread share one
// ring (attach_topology maps iface -> ring).  send_burst serializes each
// packet, pushes one SQE, and issues a SINGLE submit for the whole burst;
// every accepted packet is answered kInflight and its terminal fate
// arrives later as a CQE.
//
// Zero-copy path: when the frame is pooled with enough headroom, solely
// owned (use_count() == 1 -- a fault-injected duplicate shares the frame
// and must not race the scratch bytes), and its slab was registered via
// register_frame_pool, the wire header is written into the frame's
// headroom so [header|payload] is ONE contiguous range inside a
// registered buffer: IORING_OP_SEND_ZC + IORING_RECVSEND_FIXED_BUF, no
// payload copy anywhere in user space and no page pinning per send.
// Everything else (heap frames, shared frames, unregistered slabs,
// frameless packets) takes the fallback: header in a per-slot arena,
// plain SENDMSG sqe (kernel copies, like the UDP backend).  Both paths
// are counted (fixed_sends / fallback_sends) so the zero-copy claim is
// testable, not aspirational.
//
// Completion contract (the heart of this backend):
//   * res == wire bytes            -> kSent, staged for poll_completions.
//   * res >= 0 but short           -> kDropped (counted short_write; the
//     sequence number stays consumed, a receiver gap IS this loss).
//   * transient errno (EAGAIN/ENOBUFS/EINTR/ENOMEM) -> retried INTERNALLY:
//     the slot keeps its serialized header -- same sequence number -- so
//     the retry can never punch a phantom gap into the wire ledger.  The
//     runtime's stash only ever receives SUBMISSION-time pushback (SQ or
//     slot exhaustion), which is unstamped and needs no seq rewind.
//   * hard errno                   -> kDropped + send_errors.
//   * SEND_ZC posts TWO CQEs: the result (F_MORE) and a buffer-release
//     notification (F_NOTIF).  The slot -- and the frame reference pinning
//     the slab slot -- is held until the notification, because the kernel
//     may still be reading the buffer after the result lands.
//
// The runtime extends its conservation identity with the in-flight term:
//   dequeued == sent + io_drops + io_pending + io_inflight
// inflight_packets() counts packets accepted by send_burst and not yet
// handed back through poll_completions/reclaim_inflight; it drains to
// zero at quiescence (flush() submits stragglers and waits briefly for
// their CQEs; reclaim_inflight force-drops whatever the kernel never
// answered, so stop() always closes the ledger).
//
// Threading: attach/attach_topology/register_frame_pool run before the
// workers start driving bursts (matching UringApi's attach-time contract
// for ring_create/register_buffer; registration additionally swaps an
// immutable region table behind an atomic shared_ptr, so a reader racing
// the publish still sees a complete old-or-new table).
// send_burst/poll_completions/flush/reclaim_inflight for an interface run
// only on its owning worker (single-threaded during stop()).
#pragma once

#include <netinet/in.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "io/dest.hpp"
#include "io/egress.hpp"
#include "io/socket_api.hpp"
#include "io/uring_api.hpp"
#include "io/wire.hpp"
#include "net/frame_pool.hpp"

namespace midrr::io {

struct UringBackendOptions {
  /// Destination resolution -- identical semantics to UdpBackendOptions.
  std::unordered_map<std::string, UdpDestination> dest_by_name;
  std::string default_host = "127.0.0.1";
  std::uint16_t base_port = 0;
  /// Submission-queue entries per ring (kernel may clamp).
  unsigned sq_entries = 1024;
  /// In-flight slot arena per ring; a burst that would exceed it gets its
  /// tail pushed back to the runtime stash (kRequeued).  Sized to the CQ
  /// (4x SQ) by default so the SQ, not the arena, is the usual limiter.
  std::size_t inflight_limit = 4096;
  /// Registered-buffer table slots per ring (sparse; filled by
  /// register_frame_pool one slab at a time).
  unsigned buffer_table_size = 128;
  /// Frame bytes per datagram after the header (truncating), as UDP.
  std::size_t max_payload_bytes = 1400;
  /// Allow SEND_ZC when the kernel supports it; off forces the SENDMSG
  /// fallback for every packet (a debugging escape hatch).
  bool zerocopy = true;
  /// Doorbell coalescing: number of consecutive completion-less
  /// poll_completions passes tolerated before pending SQEs are
  /// force-submitted.  0 (default) rings the doorbell at the end of every
  /// burst; higher values let SQEs from several bursts share one
  /// io_uring_enter, at the cost of up to that many drain passes of added
  /// submission latency.  Independent of the threshold: once pushed SQEs
  /// reach half the SQ, the submit happens regardless.  flush() always
  /// submits.
  unsigned submit_coalesce_polls = 0;
  /// Seams; null = the real thing.  Must outlive the backend.
  UringApi* api = nullptr;
  SocketApi* sockets = nullptr;
};

class UringBackend final : public EgressBackend {
 public:
  static constexpr std::size_t kMaxDatagramBytes = 65507;

  explicit UringBackend(UringBackendOptions options);
  ~UringBackend() override;

  UringBackend(const UringBackend&) = delete;
  UringBackend& operator=(const UringBackend&) = delete;

  std::string name() const override { return "uring"; }
  void attach_topology(
      const std::vector<std::uint32_t>& worker_of_iface) override;
  void attach(const std::vector<std::string>& iface_names) override;
  bool completion_driven() const override { return true; }
  EgressResult send_burst(IfaceId iface, std::span<const Packet> burst,
                          SimTime now,
                          std::vector<SendDisposition>& dispositions) override;
  std::size_t poll_completions(IfaceId iface,
                               std::vector<EgressCompletion>& out) override;
  std::uint64_t inflight_packets(IfaceId iface) const override;
  std::size_t reclaim_inflight(IfaceId iface,
                               std::vector<EgressCompletion>& out) override;
  void flush(IfaceId iface) override;
  std::uint64_t send_errors(IfaceId iface) const override;
  std::uint64_t syscalls() const override;
  void register_metrics(telemetry::MetricsRegistry& registry) override;

  /// Registers every slab of `pool`'s PacketPool as a fixed buffer on
  /// every ring (same table index everywhere) and enables the zero-copy
  /// fast path for frames living in those slabs.  The pool should be
  /// precarved (PacketPoolOptions::precarve) so the slab directory is
  /// complete; requires headroom >= kWireScratchBytes for the contiguous
  /// [header|payload] trick.  Call after attach() and before workers
  /// start driving the ring: register_buffer shares UringApi's
  /// attach-time threading contract (the region table is still published
  /// atomically, so a send_burst racing the publish sees old-or-new and
  /// stays correct -- but the register syscall itself is not part of the
  /// worker-concurrent API).  Returns false (with a warning, never a
  /// throw) when the
  /// kernel lacks sparse tables / SEND_ZC or the pool has no headroom --
  /// the backend then runs entirely on the fallback path.
  bool register_frame_pool(const net::FramePool& pool);

  // --- Introspection (reports, tests) ------------------------------------
  std::uint64_t sent_datagrams(IfaceId iface) const;
  std::uint64_t sent_wire_bytes(IfaceId iface) const;
  std::uint64_t fixed_sends(IfaceId iface) const;
  std::uint64_t fallback_sends(IfaceId iface) const;
  std::uint64_t cqe_requeues(IfaceId iface) const;
  std::uint64_t short_writes(IfaceId iface) const;
  std::uint64_t oversize_drops(IfaceId iface) const;
  std::uint64_t error_drops(IfaceId iface) const;
  std::uint64_t zc_notifs(IfaceId iface) const;
  std::uint64_t zc_copied(IfaceId iface) const;
  std::uint64_t cq_overflows() const;
  std::uint16_t dest_port(IfaceId iface) const;
  /// True when at least one ring supports SEND_ZC and zerocopy is on.
  bool zerocopy_active() const;
  /// Registered slab regions (across the pool(s) registered so far).
  std::size_t registered_buffers() const;

 private:
  /// One in-flight (or retrying) packet.  Slots live in a per-ring arena
  /// sized once at attach; all pointers into a slot (msghdr, iovecs,
  /// header bytes) are stable for the backend's lifetime.
  struct Slot {
    enum class State : std::uint8_t {
      kFree = 0,
      kInflight = 1,      ///< SQE pushed, awaiting result CQE
      kAwaitNotif = 2,    ///< result seen, awaiting ZC buffer-release CQE
      kRetryPending = 3,  ///< transient failure, waiting for resubmit
      /// Force-dropped by reclaim_inflight while the kernel still owed a
      /// CQE.  The slot is parked (never freed, never resubmitted) so a
      /// late CQE retires it silently instead of landing on a recycled
      /// slot and tripping the state asserts.
      kReclaimed = 4
    };
    State state = State::kFree;
    bool retry_after_notif = false;  ///< transient failure seen under F_MORE
    IfaceId iface = 0;
    std::uint32_t wire_bytes = 0;
    Packet packet;  ///< owns the frame until the slot resolves
    /// SEND_ZC only: once the result CQE hands `packet` back to the
    /// runtime, this keeps the slab bytes alive (kernel may still read
    /// them) until the buffer-release notification lands.
    std::shared_ptr<const net::Frame> frame_keepalive;
    UringOp op;     ///< resubmittable as-is (internal retry)
    msghdr msg{};
    iovec iov[2]{};
  };

  struct RingState {
    int handle = -1;
    bool zc = false;  ///< kernel supports SEND_ZC on this ring
    std::vector<Slot> slots;
    std::vector<net::Byte> header_arena;  ///< kWireScratchBytes per slot
    std::vector<std::uint32_t> free_slots;
    std::vector<std::uint32_t> retry;  ///< kRetryPending slot indices
    std::vector<UringCqe> cqes;        ///< reap scratch
    unsigned pushed_since_submit = 0;
    unsigned idle_polls = 0;  ///< completion-less polls since last reap
  };

  struct IfaceState {
    std::string name;
    int fd = -1;
    sockaddr_in dest{};
    std::uint32_t ring = 0;
    std::vector<std::uint64_t> seq_next;  ///< per-flow, grown lazily
    /// Resolved completions staged by CQE processing, spliced out by
    /// poll_completions/reclaim_inflight (owning worker only).
    std::vector<EgressCompletion> completions;
    // Scrape-rate counters.
    std::atomic<std::uint64_t> inflight{0};
    std::atomic<std::uint64_t> sent_datagrams{0};
    std::atomic<std::uint64_t> sent_wire_bytes{0};
    std::atomic<std::uint64_t> send_errors{0};
    std::atomic<std::uint64_t> error_drops{0};
    std::atomic<std::uint64_t> oversize_drops{0};
    std::atomic<std::uint64_t> short_writes{0};
    std::atomic<std::uint64_t> cqe_requeues{0};
    std::atomic<std::uint64_t> requeued_packets{0};
    std::atomic<std::uint64_t> fixed_sends{0};
    std::atomic<std::uint64_t> fallback_sends{0};
    std::atomic<std::uint64_t> zc_notifs{0};
    std::atomic<std::uint64_t> zc_copied{0};
    std::atomic<std::uint64_t> reclaimed{0};
  };

  /// One registered slab: [base, base+bytes) lives at table slot `index`
  /// on every ring.  The table is immutable once published (see
  /// register_frame_pool's atomic swap).
  struct Region {
    const std::uint8_t* base = nullptr;
    std::size_t bytes = 0;
    std::uint16_t index = 0;
  };
  using RegionTable = std::vector<Region>;

  UringApi& api() { return options_.api != nullptr ? *options_.api : real_; }
  SocketApi& sockets() {
    return options_.sockets != nullptr ? *options_.sockets : real_sockets_;
  }
  /// Drains CQEs of `ring`, classifying each into its slot's interface
  /// (stage / internal retry / release).  When `wait_ns` > 0 and no CQE
  /// is immediately ready, blocks up to that long for the first batch
  /// (flush's bounded straggler wait) -- waited-for completions go
  /// through the same classification as polled ones, never discarded.
  /// Returns CQEs processed.
  std::size_t reap_ring(RingState& ring, std::uint64_t wait_ns = 0);
  /// Pushes kRetryPending slots back onto the SQ (stops at SQ-full).
  void push_retries(RingState& ring);
  int submit_ring(RingState& ring);
  void release_slot(RingState& ring, std::uint32_t idx);
  /// The registered region containing [p, p+len), or nullptr.
  const Region* find_region(const RegionTable& table, const net::Byte* p,
                            std::size_t len) const;

  UringBackendOptions options_;
  /// Coalescing escape valve: pending SQEs at or past this mark are
  /// submitted immediately (half the SQ, so pushback stays rare).
  unsigned submit_force_threshold_ = 1;
  RealUringApi real_;
  RealSocketApi real_sockets_;
  std::vector<std::uint32_t> worker_of_iface_;
  std::vector<std::unique_ptr<RingState>> rings_;
  std::vector<std::unique_ptr<IfaceState>> states_;
  /// Immutable published region table (workers load once per burst).
  std::atomic<std::shared_ptr<const RegionTable>> regions_;
  std::atomic<std::uint32_t> next_buf_index_{0};
  bool zerocopy_active_ = false;
  telemetry::Histogram* sqe_batch_hist_ = nullptr;
  telemetry::Histogram* cqe_batch_hist_ = nullptr;
};

/// True when this build carries the io_uring backend (MIDRR_WITH_URING).
/// (Declared in uring_api.hpp; re-exported here for existing includers.)
bool uring_supported();

/// The real backend when built with -DMIDRR_WITH_URING (or when `options`
/// injects a mock UringApi, which works everywhere -- that is what keeps
/// the submission/completion logic unit-testable on locked-down hosts);
/// otherwise throws "reconfigure with -DMIDRR_WITH_URING=ON".
std::unique_ptr<EgressBackend> make_uring_backend(
    UringBackendOptions options = {});

}  // namespace midrr::io
