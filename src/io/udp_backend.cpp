#include "io/udp_backend.hpp"

#include <arpa/inet.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/logging.hpp"
#include "util/time.hpp"

namespace midrr::io {

namespace {

/// Kernel pushback the drain loop should simply retry later; everything
/// else is a hard error (dead route, bad fd, shrunk buffers...).
bool transient_errno(int err) {
  return err == EAGAIN || err == EWOULDBLOCK || err == ENOBUFS ||
         err == EINTR || err == ENOMEM;
}

}  // namespace

UdpBackend::UdpBackend(UdpBackendOptions options)
    : options_(std::move(options)) {
  if (options_.max_batch == 0) options_.max_batch = 1;
}

UdpBackend::~UdpBackend() {
  for (auto& st : states_) {
    if (st != nullptr && st->fd >= 0) api().close_fd(st->fd);
  }
}

void UdpBackend::attach(const std::vector<std::string>& iface_names) {
  if (!states_.empty()) {
    throw std::runtime_error("UdpBackend: attached twice");
  }
  DestConfig dest_config{options_.dest_by_name, options_.default_host,
                         options_.base_port};
  states_.reserve(iface_names.size());
  for (std::size_t j = 0; j < iface_names.size(); ++j) {
    auto st = std::make_unique<IfaceState>();
    st->name = iface_names[j];
    const UdpDestination* conf = nullptr;
    st->dest = resolve_dest(dest_config, st->name, j, &conf);
    st->fd = open_egress_socket(api(), conf, st->name);
    states_.push_back(std::move(st));
  }
}

EgressResult UdpBackend::send_burst(IfaceId iface,
                                    std::span<const Packet> burst, SimTime now,
                                    std::vector<SendDisposition>& dispositions) {
  (void)now;
  IfaceState& st = *states_[iface];
  EgressResult result;
  const std::size_t n = burst.size();
  if (n == 0) return result;
  dispositions.assign(n, SendDisposition::kSent);

  // --- Serialize: one (header, payload) message per sendable packet ------
  st.msgs.resize(n);
  st.iovs.resize(2 * n);
  st.headers.resize(n);
  st.packet_of_msg.clear();
  std::size_t msg_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Packet& packet = burst[i];
    const std::size_t frame_bytes =
        packet.frame != nullptr ? packet.frame->size() : 0;
    const std::size_t payload =
        std::min(frame_bytes, options_.max_payload_bytes);
    const std::size_t header_bytes =
        WireHeader::kSize +
        (packet.trace != 0 ? WireHeader::kTimestampSize : 0);
    if (header_bytes + payload > kMaxDatagramBytes) {
      // Could never leave the host; terminal, counted apart from socket
      // errors so a misconfigured payload cap is distinguishable.
      dispositions[i] = SendDisposition::kDropped;
      st.oversize_drops.fetch_add(1, std::memory_order_relaxed);
      result.dropped += 1;
      result.dropped_bytes += packet.size_bytes;
      continue;
    }
    if (st.seq_next.size() <= packet.flow) {
      st.seq_next.resize(packet.flow + 1, 0);
    }
    WireHeader header;
    header.payload_bytes = static_cast<std::uint16_t>(payload);
    header.flow = packet.flow;
    header.seq = st.seq_next[packet.flow]++;
    header.size_bytes = packet.size_bytes;
    if (packet.trace != 0) {
      // Stage-traced packet: carry the send stamp so a same-host receiver
      // can extend the latency attribution to on-wire delivery.
      header.flags |= WireHeader::kFlagTxTimestamp;
      header.tx_timestamp_ns = mono_now_ns();
    }
    net::BufWriter writer(std::span<net::Byte>(st.headers[msg_count]));
    header.encode(writer);
    iovec* iov = &st.iovs[2 * msg_count];
    iov[0].iov_base = st.headers[msg_count].data();
    iov[0].iov_len = header.wire_size();
    std::size_t iov_count = 1;
    if (payload > 0) {
      // iovec wants void*; the kernel only reads from a transmit iovec.
      iov[1].iov_base =
          const_cast<net::Byte*>(packet.frame->bytes().data());
      iov[1].iov_len = payload;
      iov_count = 2;
    }
    mmsghdr& msg = st.msgs[msg_count];
    std::memset(&msg, 0, sizeof(msg));
    msg.msg_hdr.msg_name = &st.dest;
    msg.msg_hdr.msg_namelen = sizeof(st.dest);
    msg.msg_hdr.msg_iov = iov;
    msg.msg_hdr.msg_iovlen = iov_count;
    st.packet_of_msg.push_back(i);
    ++msg_count;
  }

  // --- Flush in max_batch chunks; stop at the first pushback -------------
  std::size_t done = 0;
  bool requeue_rest = false;
  bool drop_rest = false;
  while (done < msg_count) {
    const unsigned int chunk = static_cast<unsigned int>(
        std::min(options_.max_batch, msg_count - done));
    const int rc = api().send_many(st.fd, st.msgs.data() + done, chunk);
    st.syscalls.fetch_add(1, std::memory_order_relaxed);
    if (rc < 0) {
      if (transient_errno(errno)) {
        requeue_rest = true;
      } else {
        st.send_errors.fetch_add(1, std::memory_order_relaxed);
        drop_rest = true;
      }
      break;
    }
    if (rc == 0) {  // defensive: no progress must not spin
      requeue_rest = true;
      break;
    }
    if (batch_hist_ != nullptr) {
      batch_hist_->observe(static_cast<std::uint64_t>(rc));
    }
    done += static_cast<std::size_t>(rc);
    if (static_cast<unsigned int>(rc) < chunk) {
      // Partial return: the kernel took [0..rc) and stopped; the tail is
      // transient pushback, exactly like EAGAIN on the next call.
      requeue_rest = true;
      break;
    }
  }

  // --- Classify ------------------------------------------------------------
  for (std::size_t m = 0; m < done; ++m) {
    const std::size_t i = st.packet_of_msg[m];
    const Packet& packet = burst[i];
    result.sent += 1;
    result.sent_bytes += packet.size_bytes;
    const iovec* iov = st.msgs[m].msg_hdr.msg_iov;
    std::uint64_t wire = iov[0].iov_len;
    if (st.msgs[m].msg_hdr.msg_iovlen == 2) wire += iov[1].iov_len;
    st.sent_datagrams.fetch_add(1, std::memory_order_relaxed);
    st.sent_wire_bytes.fetch_add(wire, std::memory_order_relaxed);
  }
  for (std::size_t m = done; m < msg_count; ++m) {
    const std::size_t i = st.packet_of_msg[m];
    const Packet& packet = burst[i];
    if (drop_rest) {
      dispositions[i] = SendDisposition::kDropped;
      st.error_drops.fetch_add(1, std::memory_order_relaxed);
      result.dropped += 1;
      result.dropped_bytes += packet.size_bytes;
      // The consumed sequence number stays consumed: a receiver-side gap
      // IS this loss.
    } else {
      dispositions[i] = SendDisposition::kRequeued;
      st.requeued_packets.fetch_add(1, std::memory_order_relaxed);
      st.requeued_bytes.fetch_add(packet.size_bytes,
                                  std::memory_order_relaxed);
      result.requeued += 1;
      result.requeued_bytes += packet.size_bytes;
    }
  }
  if (result.requeued > 0) {
    st.requeue_events.fetch_add(1, std::memory_order_relaxed);
    // Requeued messages are a strict suffix of the attempted order, so
    // per flow they hold the top sequence numbers: rewind them and the
    // retry re-stamps the same values (no phantom receiver gaps).
    for (std::size_t m = done; m < msg_count; ++m) {
      --st.seq_next[burst[st.packet_of_msg[m]].flow];
    }
  }
  result.clean = result.sent == n;
  return result;
}

std::uint64_t UdpBackend::send_errors(IfaceId iface) const {
  if (iface >= states_.size()) return 0;
  return states_[iface]->send_errors.load(std::memory_order_relaxed);
}

std::uint64_t UdpBackend::syscalls() const {
  std::uint64_t total = 0;
  for (const auto& st : states_) {
    total += st->syscalls.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t UdpBackend::oversize_drops(IfaceId iface) const {
  if (iface >= states_.size()) return 0;
  return states_[iface]->oversize_drops.load(std::memory_order_relaxed);
}

std::uint64_t UdpBackend::sent_datagrams(IfaceId iface) const {
  if (iface >= states_.size()) return 0;
  return states_[iface]->sent_datagrams.load(std::memory_order_relaxed);
}

std::uint64_t UdpBackend::sent_wire_bytes(IfaceId iface) const {
  if (iface >= states_.size()) return 0;
  return states_[iface]->sent_wire_bytes.load(std::memory_order_relaxed);
}

std::uint64_t UdpBackend::requeue_events(IfaceId iface) const {
  if (iface >= states_.size()) return 0;
  return states_[iface]->requeue_events.load(std::memory_order_relaxed);
}

std::uint16_t UdpBackend::dest_port(IfaceId iface) const {
  if (iface >= states_.size()) return 0;
  return ntohs(states_[iface]->dest.sin_port);
}

void UdpBackend::register_metrics(telemetry::MetricsRegistry& registry) {
  const auto count_of = [](const std::atomic<std::uint64_t>& v) {
    return [&v] {
      return static_cast<double>(v.load(std::memory_order_relaxed));
    };
  };
  batch_hist_ = &registry.histogram(
      "midrr_io_batch_size",
      "Messages accepted per transmit syscall (sendmmsg return value).",
      {{"backend", "udp"}});
  for (const auto& sp : states_) {
    IfaceState* st = sp.get();
    const telemetry::LabelSet labels{{"backend", "udp"}, {"iface", st->name}};
    registry.counter_fn("midrr_io_syscalls_total",
                        "Transmit syscalls issued by the egress backend.",
                        labels, count_of(st->syscalls));
    registry.counter_fn(
        "midrr_io_send_errors_total",
        "Hard (non-transient) transmit syscall failures; feeds the "
        "Supervisor's link-health verdicts.",
        labels, count_of(st->send_errors));
    registry.counter_fn("midrr_io_sent_datagrams_total",
                        "Datagrams handed to the kernel.", labels,
                        count_of(st->sent_datagrams));
    registry.counter_fn(
        "midrr_io_sent_wire_bytes_total",
        "Wire bytes handed to the kernel (headers + capped payloads; "
        "scheduler accounting uses packet size_bytes instead).",
        labels, count_of(st->sent_wire_bytes));
    registry.counter_fn(
        "midrr_io_requeued_packets_total",
        "Packets pushed back by the socket (EAGAIN/ENOBUFS/partial "
        "sendmmsg) and parked for retry; each retry that is pushed back "
        "again counts again.",
        labels, count_of(st->requeued_packets));
    registry.counter_fn("midrr_io_requeued_bytes_total",
                        "Scheduler bytes of requeued packets (cumulative "
                        "over retries).",
                        labels, count_of(st->requeued_bytes));
    registry.counter_fn(
        "midrr_io_oversize_drops_total",
        "Packets dropped because header + capped payload exceeds the "
        "65507-byte UDP datagram limit (terminal, distinct from socket "
        "errors).",
        labels, count_of(st->oversize_drops));
    registry.counter_fn(
        "midrr_io_error_drops_total",
        "Packets dropped terminally after a hard transmit error.", labels,
        count_of(st->error_drops));
  }
}

}  // namespace midrr::io
