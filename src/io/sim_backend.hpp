// SimBackend: the pacer-only sink the runtime has always had, now behind
// the EgressBackend seam.
//
// Every packet is kSent the instant it arrives -- no sockets, no
// syscalls, no requeues -- so a runtime configured with SimBackend (the
// default) is byte-for-byte identical to the pre-backend drain loop:
// same counters, same pacer math, same latency stamps.  It exists so the
// fast-path accounting in drain_iface stays the single shared code path
// and so tests can assert backend-vs-sim equivalence.
#pragma once

#include <atomic>
#include <cstdint>

#include "io/egress.hpp"

namespace midrr::io {

class SimBackend final : public EgressBackend {
 public:
  std::string name() const override { return "sim"; }

  void attach(const std::vector<std::string>& iface_names) override {
    (void)iface_names;
  }

  EgressResult send_burst(IfaceId iface, std::span<const Packet> burst,
                          SimTime now,
                          std::vector<SendDisposition>& dispositions) override {
    (void)iface;
    (void)now;
    (void)dispositions;  // clean result: the runtime keeps its fast path
    EgressResult result;
    result.sent = burst.size();
    for (const Packet& packet : burst) result.sent_bytes += packet.size_bytes;
    bursts_.fetch_add(1, std::memory_order_relaxed);
    return result;
  }

  std::uint64_t bursts() const {
    return bursts_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> bursts_{0};
};

}  // namespace midrr::io
