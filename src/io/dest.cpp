#include "io/dest.hpp"

#include <arpa/inet.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/logging.hpp"

namespace midrr::io {

sockaddr_in resolve_dest(const DestConfig& config, const std::string& name,
                         std::size_t j, const UdpDestination** conf_out) {
  const UdpDestination* conf = nullptr;
  const auto it = config.dest_by_name.find(name);
  if (it != config.dest_by_name.end()) conf = &it->second;
  if (conf_out != nullptr) *conf_out = conf;

  const std::string host = conf != nullptr && !conf->host.empty()
                               ? conf->host
                               : config.default_host;
  std::uint16_t port = conf != nullptr ? conf->port : 0;
  if (port == 0) {
    if (config.base_port == 0) {
      throw std::runtime_error("egress: no destination for interface '" +
                               name + "' (configure dest_by_name or "
                               "base_port)");
    }
    port = static_cast<std::uint16_t>(config.base_port + j);
  }
  sockaddr_in dest{};
  dest.sin_family = AF_INET;
  dest.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &dest.sin_addr) != 1) {
    throw std::runtime_error("egress: bad IPv4 address '" + host +
                             "' for interface '" + name + "'");
  }
  return dest;
}

int open_egress_socket(SocketApi& api, const UdpDestination* conf,
                       const std::string& name) {
  const int fd = api.open_udp();
  if (fd < 0) {
    throw std::runtime_error("egress: socket() failed for '" + name +
                             "': " + std::strerror(errno));
  }
  if (conf != nullptr && !conf->device.empty()) {
    if (api.bind_to_device(fd, conf->device) != 0) {
      MIDRR_LOG_WARN() << "egress: SO_BINDTODEVICE('" << conf->device
                       << "') failed for interface '" << name
                       << "': " << std::strerror(errno)
                       << " (continuing unbound)";
    }
  }
  if (conf != nullptr && !conf->source_host.empty()) {
    sockaddr_in src{};
    src.sin_family = AF_INET;
    src.sin_port = 0;  // any source port
    if (::inet_pton(AF_INET, conf->source_host.c_str(), &src.sin_addr) != 1) {
      api.close_fd(fd);
      throw std::runtime_error("egress: bad source address '" +
                               conf->source_host + "' for interface '" +
                               name + "'");
    }
    if (api.bind_source(fd, reinterpret_cast<const sockaddr*>(&src),
                        sizeof(src)) != 0) {
      const int err = errno;
      api.close_fd(fd);
      throw std::runtime_error("egress: bind('" + conf->source_host +
                               "') failed for interface '" + name +
                               "': " + std::strerror(err));
    }
  }
  return fd;
}

}  // namespace midrr::io
