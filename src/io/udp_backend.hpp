// UdpBackend: real datagrams out of non-blocking UDP sockets, one socket
// per interface, flushed with sendmmsg so a whole paced burst costs one
// syscall.
//
// Wire format: every datagram is WireHeader (io/wire.hpp) followed by up
// to `max_payload_bytes` of the packet's net::Frame (truncated, or absent
// for frameless packets).  The header carries the SCHEDULER's size_bytes,
// so the receiver's per-flow totals compare directly against the max-min
// solver no matter how payloads were capped.
//
// Outcome classification (the heart of the requeue contract):
//   * sendmmsg returns n < requested     -> messages [n..) are kRequeued
//     (the kernel stopped at the first message it could not take).
//   * -1 with EAGAIN/EWOULDBLOCK/ENOBUFS/EINTR/ENOMEM -> the whole
//     remainder is kRequeued; transient, not an error.
//   * -1 with any other errno            -> counted as a send error and
//     the remainder is kDropped (terminal, but visible: a persistently
//     dead socket must not grow an unbounded stash, it must show up in
//     midrr_io_send_errors_total and the Supervisor's link verdicts).
//   * a packet whose capped payload would exceed the 65507-byte UDP
//     datagram limit is kDropped upfront and counted separately
//     (oversize_drops) -- it could never leave, retrying is pointless.
//
// Sequence numbers: the backend stamps a per-(interface, flow) sequence
// into each header at serialization time.  Requeued messages are a strict
// suffix of the attempted send order, so their sequence numbers are
// rewound and re-stamped on retry; terminal drops keep their number, so
// a receiver-side gap is exactly a lost datagram.
//
// Threading: send_burst(iface) runs only on the worker owning `iface`
// (scratch buffers and sequence counters are worker-owned, no locks);
// the counters scraped by telemetry/supervisor are relaxed atomics.
#pragma once

#include <netinet/in.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "io/dest.hpp"
#include "io/egress.hpp"
#include "io/socket_api.hpp"
#include "io/wire.hpp"

namespace midrr::io {

struct UdpBackendOptions {
  /// Explicit per-interface destinations, keyed by interface name.
  std::unordered_map<std::string, UdpDestination> dest_by_name;
  /// Fallback for interfaces absent from dest_by_name: global interface
  /// index j goes to default_host:base_port+j.  base_port == 0 means "no
  /// fallback" and an unmapped interface is a configuration error.
  std::string default_host = "127.0.0.1";
  std::uint16_t base_port = 0;
  /// Messages per sendmmsg call; a burst larger than this is flushed in
  /// chunks.  The bench sweeps 1/32/256.
  std::size_t max_batch = 64;
  /// Frame bytes copied into each datagram after the header (truncating;
  /// 0 = header-only datagrams).  A packet whose CAPPED payload would
  /// still blow the 65507-byte datagram limit is an oversize drop.
  std::size_t max_payload_bytes = 1400;
  /// Syscall seam; null = the real thing.  Must outlive the backend.
  SocketApi* api = nullptr;
};

class UdpBackend final : public EgressBackend {
 public:
  /// Largest UDP payload over IPv4 (65535 - 20 IP - 8 UDP).
  static constexpr std::size_t kMaxDatagramBytes = 65507;

  explicit UdpBackend(UdpBackendOptions options);
  ~UdpBackend() override;

  UdpBackend(const UdpBackend&) = delete;
  UdpBackend& operator=(const UdpBackend&) = delete;

  std::string name() const override { return "udp"; }
  void attach(const std::vector<std::string>& iface_names) override;
  EgressResult send_burst(IfaceId iface, std::span<const Packet> burst,
                          SimTime now,
                          std::vector<SendDisposition>& dispositions) override;
  std::uint64_t send_errors(IfaceId iface) const override;
  std::uint64_t syscalls() const override;
  void register_metrics(telemetry::MetricsRegistry& registry) override;

  // --- Introspection (reports, tests) ------------------------------------
  std::uint64_t oversize_drops(IfaceId iface) const;
  std::uint64_t sent_datagrams(IfaceId iface) const;
  std::uint64_t sent_wire_bytes(IfaceId iface) const;
  std::uint64_t requeue_events(IfaceId iface) const;
  /// The resolved destination port for `iface` (tests, report output).
  std::uint16_t dest_port(IfaceId iface) const;

 private:
  struct IfaceState {
    std::string name;
    int fd = -1;
    sockaddr_in dest{};
    // Worker-owned scratch, sized on first use: one mmsghdr + two iovecs
    // (header, payload) + one serialized header per in-flight message.
    // Header buffers are sized for the tx-timestamp trailer; untraced
    // packets only transmit the first kSize bytes.
    std::vector<mmsghdr> msgs;
    std::vector<iovec> iovs;
    std::vector<
        std::array<net::Byte, WireHeader::kSize + WireHeader::kTimestampSize>>
        headers;
    std::vector<std::size_t> packet_of_msg;  // msg index -> burst index
    std::vector<std::uint64_t> seq_next;     // per-flow, grown lazily
    // Scrape-rate counters (read by telemetry/supervisor threads).
    std::atomic<std::uint64_t> syscalls{0};
    std::atomic<std::uint64_t> send_errors{0};
    std::atomic<std::uint64_t> sent_datagrams{0};
    std::atomic<std::uint64_t> sent_wire_bytes{0};
    std::atomic<std::uint64_t> requeued_packets{0};
    std::atomic<std::uint64_t> requeued_bytes{0};
    std::atomic<std::uint64_t> requeue_events{0};
    std::atomic<std::uint64_t> oversize_drops{0};
    std::atomic<std::uint64_t> error_drops{0};
  };

  SocketApi& api() { return options_.api != nullptr ? *options_.api : real_; }

  UdpBackendOptions options_;
  RealSocketApi real_;
  std::vector<std::unique_ptr<IfaceState>> states_;
  telemetry::Histogram* batch_hist_ = nullptr;  ///< messages per sendmmsg
};

}  // namespace midrr::io
