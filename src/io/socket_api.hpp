// The thin syscall seam under UdpBackend.
//
// UdpBackend's transmit logic (batch chunking, partial-return handling,
// requeue-vs-drop classification) is where the bugs live, so it is
// tested against a mocked SocketApi that can return partial sendmmsg
// counts, EAGAIN storms, and hard errors deterministically.  Production
// uses RealSocketApi, a 1:1 pass-through to the libc calls.
//
// All functions return the raw syscall convention (fd or -1, count or
// -1) with errno left for the caller -- the mock sets errno the same way.
#pragma once

#include <sys/socket.h>
#include <sys/types.h>

#include <cstddef>
#include <string>

namespace midrr::io {

class SocketApi {
 public:
  virtual ~SocketApi() = default;

  /// socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0)
  virtual int open_udp() = 0;

  /// bind() to a local source address (optional; -1 on failure).
  virtual int bind_source(int fd, const sockaddr* addr, socklen_t len) = 0;

  /// setsockopt(SOL_SOCKET, SO_BINDTODEVICE, ...) (optional; needs
  /// CAP_NET_RAW in practice -- callers treat failure as non-fatal).
  virtual int bind_to_device(int fd, const std::string& device) = 0;

  /// sendmmsg(fd, msgs, count, 0): number of messages sent, or -1.
  virtual int send_many(int fd, mmsghdr* msgs, unsigned int count) = 0;

  virtual int close_fd(int fd) = 0;
};

/// Pass-through to the real syscalls.
class RealSocketApi final : public SocketApi {
 public:
  int open_udp() override;
  int bind_source(int fd, const sockaddr* addr, socklen_t len) override;
  int bind_to_device(int fd, const std::string& device) override;
  int send_many(int fd, mmsghdr* msgs, unsigned int count) override;
  int close_fd(int fd) override;
};

}  // namespace midrr::io
