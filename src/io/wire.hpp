// The midrr_net datagram header: how a scheduled packet is identified on
// a real wire.
//
// LoadGenerator payloads are filler bytes, not self-describing frames, so
// every UDP datagram the egress path emits is prefixed with this compact
// header.  The receiver (tools/midrr_rx, the loopback e2e tests) parses
// it to credit delivered bytes to the right flow and to check per-flow
// FIFO order -- which is what lets CI compare real-socket delivery
// against the max-min solver's ideal.
//
//   offset  size  field
//        0     4  magic "MIDR"
//        4     1  version (kVersion)
//        5     1  flags (kFlagTxTimestamp)
//        6     2  payload bytes following the header (trailer excluded)
//        8     4  flow id (runtime-global FlowId)
//       12     8  per-flow sequence number
//       20     4  scheduler-visible packet size in bytes
//      [24     8  tx timestamp, absolute CLOCK_MONOTONIC ns -- only when
//                 kFlagTxTimestamp is set]
//
// The optional trailer carries the sender's steady-clock send time for
// stage-traced packets, so a same-host receiver (midrr_rx, the loopback
// e2e test) can extend latency attribution to on-wire delivery without
// clock sync.  Untraced packets pay zero extra bytes.
//
// `size_bytes` is the SCHEDULER's byte count for the packet (what the
// pacer charged and what sent_by_flow_ accumulates), not the datagram
// length: the receiver credits flows with this value, so its per-flow
// totals are directly comparable to the solver/runtime accounting even
// when payloads are truncated or absent on the wire.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

#include "flow/ids.hpp"
#include "net/bytes.hpp"

namespace midrr::io {

struct WireHeader {
  static constexpr std::uint32_t kMagic = 0x4D494452;  // "MIDR"
  static constexpr std::uint8_t kVersion = 1;
  static constexpr std::size_t kSize = 24;
  /// Extra bytes when kFlagTxTimestamp is set.
  static constexpr std::size_t kTimestampSize = 8;
  /// An 8-byte absolute CLOCK_MONOTONIC send stamp follows the header.
  static constexpr std::uint8_t kFlagTxTimestamp = 0x01;

  std::uint8_t flags = 0;
  std::uint16_t payload_bytes = 0;  ///< datagram bytes after the header
  FlowId flow = kInvalidFlow;
  std::uint64_t seq = 0;
  std::uint32_t size_bytes = 0;  ///< scheduler-visible packet size
  std::uint64_t tx_timestamp_ns = 0;  ///< valid iff kFlagTxTimestamp

  bool has_tx_timestamp() const { return (flags & kFlagTxTimestamp) != 0; }

  /// Bytes this header occupies on the wire (payload starts here).
  std::size_t wire_size() const {
    return kSize + (has_tx_timestamp() ? kTimestampSize : 0);
  }

  /// Writes wire_size() bytes at the writer's cursor (throws
  /// net::BufferOverrun if the buffer is too small).
  void encode(net::BufWriter& writer) const;

  /// Parses a header from `data`; nullopt on short buffer, bad magic, or
  /// unknown version (a receiver counts these, it does not throw).
  static std::optional<WireHeader> decode(std::span<const net::Byte> data);
};

/// Frame headroom that fits any WireHeader variant (header + optional
/// tx-timestamp trailer).  The io_uring fast path asks FramePool for this
/// much headroom so the serialized header lands contiguously in front of
/// the pooled payload -- one registered-buffer range, zero copies.
inline constexpr std::size_t kWireScratchBytes =
    WireHeader::kSize + WireHeader::kTimestampSize;

}  // namespace midrr::io
