#include "http/message.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace midrr::http {

namespace {

bool iequals(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::optional<std::uint64_t> parse_u64(const std::string& s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::optional<HeaderList> parse_headers(std::istringstream& in) {
  HeaderList headers;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) return headers;  // end of head
    const auto colon = line.find(':');
    if (colon == std::string::npos) return std::nullopt;
    headers.emplace_back(trim(line.substr(0, colon)),
                         trim(line.substr(colon + 1)));
  }
  return headers;  // headers without trailing blank line: accept
}

std::optional<std::string> find_header(const HeaderList& headers,
                                       const std::string& name) {
  for (const auto& [k, v] : headers) {
    if (iequals(k, name)) return v;
  }
  return std::nullopt;
}

void upsert_header(HeaderList& headers, const std::string& name,
                   const std::string& value) {
  for (auto& [k, v] : headers) {
    if (iequals(k, name)) {
      v = value;
      return;
    }
  }
  headers.emplace_back(name, value);
}

}  // namespace

std::optional<ByteRange> ByteRange::parse_range_header(
    const std::string& value) {
  // Only the closed single-range form "bytes=a-b" is supported (that is
  // all the proxy emits).
  const std::string prefix = "bytes=";
  if (value.rfind(prefix, 0) != 0) return std::nullopt;
  const auto dash = value.find('-', prefix.size());
  if (dash == std::string::npos) return std::nullopt;
  const auto first = parse_u64(value.substr(prefix.size(), dash - prefix.size()));
  const auto last = parse_u64(value.substr(dash + 1));
  if (!first || !last || *last < *first) return std::nullopt;
  return ByteRange{*first, *last};
}

std::string ByteRange::to_range_header() const {
  return "bytes=" + std::to_string(first) + "-" + std::to_string(last);
}

std::optional<std::pair<ByteRange, std::uint64_t>>
ByteRange::parse_content_range(const std::string& value) {
  const std::string prefix = "bytes ";
  if (value.rfind(prefix, 0) != 0) return std::nullopt;
  const auto dash = value.find('-', prefix.size());
  const auto slash = value.find('/', prefix.size());
  if (dash == std::string::npos || slash == std::string::npos || slash < dash) {
    return std::nullopt;
  }
  const auto first = parse_u64(value.substr(prefix.size(), dash - prefix.size()));
  const auto last = parse_u64(value.substr(dash + 1, slash - dash - 1));
  const auto total = parse_u64(value.substr(slash + 1));
  if (!first || !last || !total || *last < *first) return std::nullopt;
  return std::make_pair(ByteRange{*first, *last}, *total);
}

std::string ByteRange::to_content_range(std::uint64_t total) const {
  return "bytes " + std::to_string(first) + "-" + std::to_string(last) + "/" +
         std::to_string(total);
}

void HttpRequest::set_header(const std::string& name,
                             const std::string& value) {
  upsert_header(headers, name, value);
}

std::optional<std::string> HttpRequest::header(const std::string& name) const {
  return find_header(headers, name);
}

std::optional<ByteRange> HttpRequest::range() const {
  const auto value = header("Range");
  if (!value) return std::nullopt;
  return ByteRange::parse_range_header(*value);
}

std::string HttpRequest::serialize() const {
  std::ostringstream out;
  out << method << ' ' << target << ' ' << version << "\r\n";
  for (const auto& [k, v] : headers) out << k << ": " << v << "\r\n";
  out << "\r\n";
  return out.str();
}

std::optional<HttpRequest> HttpRequest::parse(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  std::istringstream req_line(line);
  HttpRequest req;
  if (!(req_line >> req.method >> req.target >> req.version)) {
    return std::nullopt;
  }
  const auto headers = parse_headers(in);
  if (!headers) return std::nullopt;
  req.headers = *headers;
  return req;
}

void HttpResponse::set_header(const std::string& name,
                              const std::string& value) {
  upsert_header(headers, name, value);
}

std::optional<std::string> HttpResponse::header(
    const std::string& name) const {
  return find_header(headers, name);
}

std::optional<std::uint64_t> HttpResponse::content_length() const {
  const auto value = header("Content-Length");
  if (!value) return std::nullopt;
  return parse_u64(*value);
}

std::optional<std::pair<ByteRange, std::uint64_t>>
HttpResponse::content_range() const {
  const auto value = header("Content-Range");
  if (!value) return std::nullopt;
  return ByteRange::parse_content_range(*value);
}

std::string HttpResponse::serialize_head() const {
  std::ostringstream out;
  out << version << ' ' << status << ' ' << reason << "\r\n";
  for (const auto& [k, v] : headers) out << k << ": " << v << "\r\n";
  out << "\r\n";
  return out.str();
}

std::optional<HttpResponse> HttpResponse::parse_head(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  std::istringstream status_line(line);
  HttpResponse res;
  if (!(status_line >> res.version >> res.status)) return std::nullopt;
  std::getline(status_line, res.reason);
  res.reason = trim(res.reason);
  const auto headers = parse_headers(in);
  if (!headers) return std::nullopt;
  res.headers = *headers;
  return res;
}

HttpResponse HttpResponse::partial(ByteRange range, std::uint64_t total) {
  HttpResponse res;
  res.status = 206;
  res.reason = "Partial Content";
  res.set_header("Content-Range", range.to_content_range(total));
  res.set_header("Content-Length", std::to_string(range.length()));
  return res;
}

}  // namespace midrr::http
