// Minimal HTTP/1.1 message model: what the paper's 512-line Python proxy
// needs -- requests with Range headers (RFC 7233 byte ranges), responses
// with Content-Range, and pipelining-friendly serialization.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace midrr::http {

/// A closed byte interval [first, last], as in "Range: bytes=first-last".
struct ByteRange {
  std::uint64_t first = 0;
  std::uint64_t last = 0;

  std::uint64_t length() const { return last - first + 1; }
  friend bool operator==(const ByteRange&, const ByteRange&) = default;

  /// "bytes=100-199" -> {100, 199}; nullopt on malformed/open ranges.
  static std::optional<ByteRange> parse_range_header(const std::string& value);
  /// {100,199} -> "bytes=100-199".
  std::string to_range_header() const;

  /// "bytes 100-199/5000" -> ({100,199}, 5000).
  static std::optional<std::pair<ByteRange, std::uint64_t>>
  parse_content_range(const std::string& value);
  /// ({100,199}, 5000) -> "bytes 100-199/5000".
  std::string to_content_range(std::uint64_t total) const;
};

using HeaderList = std::vector<std::pair<std::string, std::string>>;

struct HttpRequest {
  std::string method = "GET";
  std::string target = "/";
  std::string version = "HTTP/1.1";
  HeaderList headers;

  void set_header(const std::string& name, const std::string& value);
  std::optional<std::string> header(const std::string& name) const;
  std::optional<ByteRange> range() const;

  /// Serializes to wire text (no body; GETs only).
  std::string serialize() const;
  /// Parses a full request head; nullopt on malformed input.
  static std::optional<HttpRequest> parse(const std::string& text);
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::string version = "HTTP/1.1";
  HeaderList headers;

  void set_header(const std::string& name, const std::string& value);
  std::optional<std::string> header(const std::string& name) const;
  std::optional<std::uint64_t> content_length() const;
  std::optional<std::pair<ByteRange, std::uint64_t>> content_range() const;

  std::string serialize_head() const;
  static std::optional<HttpResponse> parse_head(const std::string& text);

  /// A 206 Partial Content response head for one chunk.
  static HttpResponse partial(ByteRange range, std::uint64_t total);
};

}  // namespace midrr::http
