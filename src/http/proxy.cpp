#include "http/proxy.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace midrr::http {

const ProxyFlowResult& ProxyResult::flow_named(const std::string& name) const {
  for (const auto& f : flows) {
    if (f.name == name) return f;
  }
  MIDRR_REQUIRE(false, "no proxy flow named " + name);
  return flows.front();  // unreachable
}

struct HttpRangeProxy::FlowState {
  FlowId id = kInvalidFlow;
  std::uint64_t total_bytes = 0;        // 0 = endless
  std::uint64_t next_request_offset = 0;
  RangeReassembler reassembler;
  RateMeter goodput;
  TimeSeries series;
  std::optional<SimTime> completed_at;
  std::uint64_t last_prefix = 0;

  FlowState(SimDuration bin, std::size_t window, std::string name)
      : goodput(bin, window), series(std::move(name)) {}

  std::uint64_t remaining_unrequested() const {
    return total_bytes == 0 ? ~0ull : total_bytes - next_request_offset;
  }
};

HttpRangeProxy::HttpRangeProxy(std::vector<ProxyInterfaceSpec> ifaces,
                               std::vector<ProxyFlowSpec> flows,
                               ProxyOptions options)
    : iface_specs_(std::move(ifaces)),
      flow_specs_(std::move(flows)),
      options_(options),
      // Quantum = one chunk: a scheduling turn corresponds to one range
      // request, which is exactly the granularity the proxy controls.
      scheduler_(make_scheduler(
          options.policy,
          SchedulerOptions{.quantum_base = options.chunk_bytes,
                           .observer = options.observer})) {
  MIDRR_REQUIRE(!iface_specs_.empty(), "proxy needs interfaces");
  MIDRR_REQUIRE(options_.chunk_bytes > 0, "chunk size must be positive");

  for (const auto& spec : iface_specs_) {
    const IfaceId id = scheduler_->add_interface(spec.name);
    auto provider = [this](IfaceId j, SimTime now) -> std::optional<Packet> {
      auto chunk = scheduler_->dequeue(j, now);
      if (chunk) {
        // Issue the actual range request text (uplink overhead accounting;
        // the offset rode in via Packet::seq at enqueue time).
        HttpRequest req;
        req.target = "/object/" + std::to_string(chunk->flow);
        req.set_header("Host", "origin.example");
        req.set_header("Connection", "keep-alive");
        req.set_header(
            "Range", ByteRange{chunk->seq, chunk->seq + chunk->size_bytes - 1}
                         .to_range_header());
        ++requests_sent_;
        request_header_bytes_ += req.serialize().size();
        // Keep the pipeline full behind this request.
        for (std::size_t idx = 0; idx < flows_.size(); ++idx) {
          if (flows_[idx]->id == chunk->flow) {
            top_up(idx, now);
            break;
          }
        }
      }
      return chunk;
    };
    auto departure = [this](IfaceId j, const Packet& chunk, SimTime at) {
      on_chunk_received(j, chunk, at);
    };
    links_.push_back(std::make_unique<LinkTransmitter>(
        sim_, id, spec.profile, std::move(provider), std::move(departure)));
  }

  for (const auto& spec : flow_specs_) {
    auto state = std::make_unique<FlowState>(
        options_.sample_interval, options_.rate_window_bins, spec.name);
    std::vector<IfaceId> willing;
    for (const std::string& name : spec.ifaces) {
      bool found = false;
      for (const auto& link : links_) {
        if (scheduler_->preferences().iface_name(link->iface()) == name) {
          willing.push_back(link->iface());
          found = true;
          break;
        }
      }
      MIDRR_REQUIRE(found, "proxy flow references unknown interface " + name);
    }
    state->id = scheduler_->add_flow(FlowSpec{
        .weight = spec.weight, .willing = std::move(willing), .name = spec.name});
    state->total_bytes = spec.total_bytes;
    flows_.push_back(std::move(state));
  }
  window_bytes_.assign(flows_.size(),
                       std::vector<std::uint64_t>(links_.size(), 0));
}

HttpRangeProxy::~HttpRangeProxy() = default;

void HttpRangeProxy::top_up(std::size_t index, SimTime now) {
  FlowState& flow = *flows_[index];
  while (scheduler_->backlog_packets(flow.id) < options_.pipeline_depth) {
    const std::uint64_t remaining = flow.remaining_unrequested();
    if (remaining == 0) break;
    const auto size = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(options_.chunk_bytes, remaining));
    Packet chunk(flow.id, size, /*seq=*/flow.next_request_offset);
    flow.next_request_offset += size;
    const EnqueueResult result = scheduler_->enqueue(std::move(chunk), now);
    MIDRR_ASSERT(result.accepted, "proxy chunk rejected");
    if (result.became_backlogged) {
      for (const auto& link : links_) {
        if (scheduler_->preferences().willing(flow.id, link->iface())) {
          link->notify_backlog();
        }
      }
    }
  }
}

void HttpRangeProxy::on_chunk_received(IfaceId iface, const Packet& chunk,
                                       SimTime at) {
  for (std::size_t idx = 0; idx < flows_.size(); ++idx) {
    FlowState& flow = *flows_[idx];
    if (flow.id != chunk.flow) continue;

    // Validate the origin's Content-Range round trip (exercises the
    // message layer on the hot path, as the real proxy would).
    const auto head = HttpResponse::partial(
        ByteRange{chunk.seq, chunk.seq + chunk.size_bytes - 1},
        flow.total_bytes == 0 ? chunk.seq + chunk.size_bytes
                              : flow.total_bytes);
    const auto parsed = HttpResponse::parse_head(head.serialize_head());
    MIDRR_ASSERT(parsed.has_value() && parsed->status == 206,
                 "malformed partial response");

    flow.reassembler.add(ByteRange{chunk.seq, chunk.seq + chunk.size_bytes - 1});
    window_bytes_[idx][iface] += chunk.size_bytes;

    // Goodput = in-order delivery: meter only the prefix advance.
    const std::uint64_t prefix = flow.reassembler.contiguous_prefix();
    if (prefix > flow.last_prefix) {
      flow.goodput.record(at, prefix - flow.last_prefix);
      flow.last_prefix = prefix;
    }
    if (!flow.completed_at && flow.total_bytes != 0 &&
        prefix >= flow.total_bytes) {
      flow.completed_at = at;
    }
    top_up(idx, at);
    return;
  }
  MIDRR_ASSERT(false, "chunk for unknown flow");
}

void HttpRangeProxy::sample() {
  for (auto& flow : flows_) {
    flow->series.add(sim_.now(), to_mbps(flow->goodput.rate_bps(sim_.now())));
  }
}

void HttpRangeProxy::snapshot_clusters() {
  const double window_seconds = to_seconds(options_.cluster_interval);
  std::vector<std::vector<double>> alloc(
      flows_.size(), std::vector<double>(links_.size(), 0.0));
  fair::MaxMinInput input;
  for (const auto& link : links_) {
    input.capacities_bps.push_back(link->profile().rate_at(sim_.now()));
  }
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    input.weights.push_back(scheduler_->preferences().weight(flows_[i]->id));
    std::vector<bool> row;
    for (const auto& link : links_) {
      row.push_back(
          scheduler_->preferences().willing(flows_[i]->id, link->iface()));
    }
    input.willing.push_back(std::move(row));
    for (std::size_t j = 0; j < links_.size(); ++j) {
      alloc[i][j] =
          static_cast<double>(window_bytes_[i][j]) * 8.0 / window_seconds;
      window_bytes_[i][j] = 0;
    }
  }
  ProxyClusterSnapshot snap;
  snap.at = sim_.now();
  snap.analysis = fair::analyze_clusters(input, alloc);
  std::vector<std::string> flow_names;
  for (const auto& spec : flow_specs_) flow_names.push_back(spec.name);
  std::vector<std::string> iface_names;
  for (const auto& spec : iface_specs_) iface_names.push_back(spec.name);
  snap.rendering = fair::format_clusters(snap.analysis, flow_names, iface_names);
  cluster_log_.push_back(std::move(snap));
}

ProxyResult HttpRangeProxy::run(SimTime duration) {
  for (std::size_t idx = 0; idx < flows_.size(); ++idx) {
    top_up(idx, sim_.now());
  }
  for (const auto& link : links_) link->notify_backlog();

  auto sampler = std::make_shared<std::function<void()>>();
  *sampler = [this, sampler] {
    sample();
    sim_.schedule_in(options_.sample_interval, *sampler);
  };
  sim_.schedule_in(options_.sample_interval, *sampler);

  if (options_.cluster_interval > 0) {
    auto cluster_sampler = std::make_shared<std::function<void()>>();
    *cluster_sampler = [this, cluster_sampler] {
      snapshot_clusters();
      sim_.schedule_in(options_.cluster_interval, *cluster_sampler);
    };
    sim_.schedule_in(options_.cluster_interval, *cluster_sampler);
  }

  sim_.run_until(duration);

  ProxyResult result;
  result.requests_sent = requests_sent_;
  result.request_header_bytes = request_header_bytes_;
  for (std::size_t idx = 0; idx < flows_.size(); ++idx) {
    const FlowState& flow = *flows_[idx];
    ProxyFlowResult fr;
    fr.name = flow_specs_[idx].name;
    fr.goodput_mbps = flow.series;
    fr.delivered_bytes = flow.reassembler.contiguous_prefix();
    fr.received_bytes = flow.reassembler.bytes_received();
    fr.completed_at = flow.completed_at;
    for (const auto& link : links_) {
      fr.chunks_per_iface.push_back(0);
      // chunk counts derive from scheduler byte counters / chunk size.
      fr.chunks_per_iface.back() =
          scheduler_->sent_bytes(flow.id, link->iface()) /
          options_.chunk_bytes;
    }
    result.flows.push_back(std::move(fr));
  }
  result.clusters = cluster_log_;
  return result;
}

}  // namespace midrr::http
