// The in-device HTTP byte-range proxy (Section 5, Figure 5) on the
// simulator: the C++ analog of the paper's 512-line Python proxy.
//
// Each application download is one flow.  The proxy splits the object into
// byte-range chunks; whenever an interface finishes receiving a chunk it
// asks the scheduler (miDRR by default) whose chunk to request next on that
// interface -- the chunk IS the scheduling unit, so the same DRR machinery
// that schedules packets upstream schedules range requests downstream.
// Responses arrive out of order across interfaces; the reassembler releases
// the contiguous prefix to the application, and that release rate is the
// goodput Fig 10 plots.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fairness/clusters.hpp"
#include "http/message.hpp"
#include "http/reassembler.hpp"
#include "sched/scheduler.hpp"
#include "sim/link.hpp"
#include "sim/rate_profile.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace midrr::http {

struct ProxyInterfaceSpec {
  std::string name;
  RateProfile profile;
};

struct ProxyFlowSpec {
  std::string name;
  double weight = 1.0;
  std::vector<std::string> ifaces;  ///< willing interface names
  std::uint64_t total_bytes = 0;    ///< 0 = endless download
};

struct ProxyOptions {
  Policy policy = Policy::kMiDrr;
  std::uint32_t chunk_bytes = 65536;  ///< byte-range request granularity
  /// Chunks kept outstanding per flow so pipelining keeps links busy.
  std::size_t pipeline_depth = 4;
  SimDuration sample_interval = 500 * kMillisecond;
  std::size_t rate_window_bins = 4;
  SimDuration cluster_interval = 0;  ///< 0 = no cluster snapshots
  /// Optional scheduler observer (chunk grants/skips/sends become visible;
  /// a telemetry::MetricsObserver here turns them into Prometheus
  /// counters).  Must outlive the proxy; may be null.
  SchedulerObserver* observer = nullptr;
};

struct ProxyFlowResult {
  std::string name;
  TimeSeries goodput_mbps{""};       ///< in-order delivery rate over time
  std::uint64_t delivered_bytes = 0;  ///< contiguous prefix at the end
  std::uint64_t received_bytes = 0;   ///< including buffered out-of-order
  std::vector<std::uint64_t> chunks_per_iface;
  std::optional<SimTime> completed_at;

  double mean_goodput_mbps(SimTime from, SimTime to) const {
    return goodput_mbps.mean_over(from, to);
  }
};

struct ProxyClusterSnapshot {
  SimTime at = 0;
  fair::ClusterAnalysis analysis;
  std::string rendering;
};

struct ProxyResult {
  std::vector<ProxyFlowResult> flows;
  std::vector<ProxyClusterSnapshot> clusters;
  std::uint64_t requests_sent = 0;
  std::uint64_t request_header_bytes = 0;  ///< uplink overhead of the proxy

  const ProxyFlowResult& flow_named(const std::string& name) const;
};

class HttpRangeProxy {
 public:
  HttpRangeProxy(std::vector<ProxyInterfaceSpec> ifaces,
                 std::vector<ProxyFlowSpec> flows, ProxyOptions options = {});
  ~HttpRangeProxy();

  ProxyResult run(SimTime duration);

  Scheduler& scheduler() { return *scheduler_; }

  /// Live counters (also in ProxyResult; these are readable mid-run from a
  /// telemetry gauge_fn callback).
  std::uint64_t requests_sent() const { return requests_sent_; }
  std::uint64_t request_header_bytes() const { return request_header_bytes_; }

 private:
  struct FlowState;

  void top_up(std::size_t index, SimTime now);
  void on_chunk_received(IfaceId iface, const Packet& chunk, SimTime at);
  void sample();
  void snapshot_clusters();

  std::vector<ProxyInterfaceSpec> iface_specs_;
  std::vector<ProxyFlowSpec> flow_specs_;
  ProxyOptions options_;
  Simulator sim_;
  std::unique_ptr<Scheduler> scheduler_;
  std::vector<std::unique_ptr<LinkTransmitter>> links_;
  std::vector<std::unique_ptr<FlowState>> flows_;
  std::vector<std::vector<std::uint64_t>> window_bytes_;  // [flow][iface]
  std::vector<ProxyClusterSnapshot> cluster_log_;
  std::uint64_t requests_sent_ = 0;
  std::uint64_t request_header_bytes_ = 0;
};

}  // namespace midrr::http
