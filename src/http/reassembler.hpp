// Response splicing: byte-range chunks arrive out of order (different
// interfaces, different speeds); the application must receive the object
// as one in-order stream.  RangeReassembler tracks received ranges and
// exposes the contiguous prefix -- the bytes the proxy can release, i.e.
// the flow's *goodput* (what Fig 10 plots).
#pragma once

#include <cstdint>
#include <map>

#include "http/message.hpp"

namespace midrr::http {

class RangeReassembler {
 public:
  /// Records a received chunk; overlapping/duplicate bytes are merged.
  void add(ByteRange range);

  /// First byte not yet deliverable in order (0 while nothing arrived).
  std::uint64_t contiguous_prefix() const { return prefix_; }

  /// Total distinct bytes received (including out-of-order ones).
  std::uint64_t bytes_received() const { return received_; }

  /// Bytes received but not yet deliverable (buffered past a gap).
  std::uint64_t buffered_bytes() const { return received_ - prefix_; }

  /// Number of disjoint ranges waiting past the first gap.
  std::size_t pending_ranges() const { return pending_.size(); }

 private:
  std::uint64_t prefix_ = 0;    // [0, prefix_) delivered
  std::uint64_t received_ = 0;  // distinct bytes seen
  // Disjoint, non-adjacent ranges beyond the prefix: start -> end (excl.).
  std::map<std::uint64_t, std::uint64_t> pending_;
};

}  // namespace midrr::http
