#include "http/reassembler.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace midrr::http {

void RangeReassembler::add(ByteRange range) {
  std::uint64_t start = range.first;
  std::uint64_t end = range.last + 1;  // exclusive

  // Clip what is already delivered.
  start = std::max(start, prefix_);
  if (start >= end) return;

  // Merge with overlapping/adjacent pending ranges.
  auto it = pending_.upper_bound(start);
  if (it != pending_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= start) {
      start = prev->first;
      end = std::max(end, prev->second);
      it = pending_.erase(prev);
    }
  }
  while (it != pending_.end() && it->first <= end) {
    end = std::max(end, it->second);
    it = pending_.erase(it);
  }

  // Recount distinct bytes: compute how much of [start, end) was new.
  // Everything previously counted is either < prefix_ or inside ranges we
  // just erased; the erase loop above already folded those into [start,end),
  // so recompute received_ from scratch cheaply via the delta:
  // new bytes = (end - start) - (previously pending bytes inside [start,end)).
  // To keep it simple and exact we track received_ incrementally below.
  pending_[start] = end;

  // Advance the prefix over now-contiguous data.
  auto head = pending_.begin();
  while (head != pending_.end() && head->first <= prefix_) {
    prefix_ = std::max(prefix_, head->second);
    head = pending_.erase(head);
  }

  // Recompute received_ = prefix_ + sum of pending range lengths.
  std::uint64_t total = prefix_;
  for (const auto& [s, e] : pending_) {
    MIDRR_ASSERT(e > s, "empty pending range");
    total += e - s;
  }
  received_ = total;
}

}  // namespace midrr::http
