#include "fairness/clusters.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <sstream>

#include "util/assert.hpp"

namespace midrr::fair {

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

std::vector<double> row_sums(const std::vector<std::vector<double>>& alloc) {
  std::vector<double> sums(alloc.size(), 0.0);
  for (std::size_t i = 0; i < alloc.size(); ++i) {
    for (double v : alloc[i]) sums[i] += v;
  }
  return sums;
}

}  // namespace

ClusterAnalysis analyze_clusters(const MaxMinInput& input,
                                 const std::vector<std::vector<double>>& alloc,
                                 double active_fraction) {
  input.validate();
  const std::size_t n = input.flow_count();
  const std::size_t m = input.iface_count();
  MIDRR_REQUIRE(alloc.size() == n, "alloc row count mismatch");

  const std::vector<double> rates = row_sums(alloc);
  double scale = 0.0;
  for (double r : rates) scale = std::max(scale, r);
  const double abs_floor = scale * 1e-9;

  // Active edge: interface j carries a meaningful share of flow i.
  const auto active = [&](std::size_t i, std::size_t j) {
    return alloc[i][j] > std::max(abs_floor, active_fraction * rates[i]);
  };

  ClusterAnalysis out;
  out.flow_cluster.assign(n, kNone);
  out.iface_cluster.assign(m, kNone);

  // Union-find over n flows + m interfaces.
  std::vector<std::size_t> parent(n + m);
  for (std::size_t v = 0; v < parent.size(); ++v) parent[v] = v;
  const std::function<std::size_t(std::size_t)> find =
      [&](std::size_t v) -> std::size_t {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  const auto unite = [&](std::size_t a, std::size_t b) {
    parent[find(a)] = find(b);
  };

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (active(i, j)) unite(i, n + j);
    }
  }

  // Materialize clusters: only members with at least one active edge join.
  std::vector<std::size_t> root_to_cluster(n + m, kNone);
  for (std::size_t i = 0; i < n; ++i) {
    if (rates[i] <= abs_floor) continue;  // idle flow, no cluster
    const std::size_t root = find(i);
    if (root_to_cluster[root] == kNone) {
      root_to_cluster[root] = out.clusters.size();
      out.clusters.emplace_back();
    }
    const std::size_t c = root_to_cluster[root];
    out.clusters[c].flows.push_back(i);
    out.flow_cluster[i] = c;
  }
  for (std::size_t j = 0; j < m; ++j) {
    bool used = false;
    for (std::size_t i = 0; i < n && !used; ++i) used = active(i, j);
    if (!used) continue;
    const std::size_t root = find(n + j);
    const std::size_t c = root_to_cluster[root];
    if (c == kNone) continue;
    out.clusters[c].ifaces.push_back(j);
    out.iface_cluster[j] = c;
  }

  for (auto& cluster : out.clusters) {
    double acc = 0.0;
    for (std::size_t i : cluster.flows) {
      acc += rates[i] / input.weights[i];
    }
    cluster.normalized_rate =
        cluster.flows.empty() ? 0.0
                              : acc / static_cast<double>(cluster.flows.size());
  }
  return out;
}

std::optional<std::string> check_max_min_conditions(
    const MaxMinInput& input, const std::vector<std::vector<double>>& alloc,
    double rel_tol) {
  input.validate();
  const std::size_t n = input.flow_count();
  const std::size_t m = input.iface_count();
  MIDRR_REQUIRE(alloc.size() == n, "alloc row count mismatch");

  const std::vector<double> rates = row_sums(alloc);
  double scale = 0.0;
  for (double r : rates) scale = std::max(scale, r);
  if (scale == 0.0) return std::nullopt;  // nothing allocated, nothing to check
  const double tol = rel_tol * scale;
  const double active_floor = 1e-6 * scale;

  // Interface preferences must be respected.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (!input.willing[i][j] && alloc[i][j] > tol) {
        std::ostringstream msg;
        msg << "flow " << i << " received " << alloc[i][j]
            << " b/s from interface " << j << " it is unwilling to use";
        return msg.str();
      }
    }
  }

  for (std::size_t j = 0; j < m; ++j) {
    // U_j: flows actively served by j.
    for (std::size_t i = 0; i < n; ++i) {
      if (alloc[i][j] <= active_floor) continue;
      const double ri = rates[i] / input.weights[i];
      // Condition 1: every other active flow on j has the same level.
      for (std::size_t k = i + 1; k < n; ++k) {
        if (alloc[k][j] <= active_floor) continue;
        const double rk = rates[k] / input.weights[k];
        if (std::abs(ri - rk) > tol) {
          std::ostringstream msg;
          msg << "condition 1 violated on interface " << j << ": flows " << i
              << " and " << k << " share it at normalized rates " << ri
              << " vs " << rk;
          return msg.str();
        }
      }
      // Condition 2: willing-but-inactive flows must be at >= level.
      for (std::size_t k = 0; k < n; ++k) {
        if (k == i || !input.willing[k][j] || alloc[k][j] > active_floor) {
          continue;
        }
        const double rk = rates[k] / input.weights[k];
        if (rk < ri - tol) {
          std::ostringstream msg;
          msg << "condition 2 violated on interface " << j << ": flow " << k
              << " (normalized " << rk << ") is willing but idle while flow "
              << i << " is served at " << ri;
          return msg.str();
        }
      }
    }
  }
  return std::nullopt;
}

std::string format_clusters(const ClusterAnalysis& analysis,
                            const std::vector<std::string>& flow_names,
                            const std::vector<std::string>& iface_names) {
  std::ostringstream out;
  bool first_cluster = true;
  for (const Cluster& c : analysis.clusters) {
    if (!first_cluster) out << "  ";
    first_cluster = false;
    out << '{';
    for (std::size_t k = 0; k < c.flows.size(); ++k) {
      if (k > 0) out << ',';
      const std::size_t i = c.flows[k];
      out << (i < flow_names.size() ? flow_names[i]
                                    : "f" + std::to_string(i));
    }
    out << " | ";
    for (std::size_t k = 0; k < c.ifaces.size(); ++k) {
      if (k > 0) out << ',';
      const std::size_t j = c.ifaces[k];
      out << (j < iface_names.size() ? iface_names[j]
                                     : "if" + std::to_string(j));
    }
    out << "} @";
    out << c.normalized_rate / 1e6 << "Mb/s";
  }
  return out.str();
}

}  // namespace midrr::fair
