// Fluid-limit multi-interface GPS: the idealized bit-by-bit reference.
//
// At every instant, backlogged flows are served at exactly the weighted
// max-min rates given the preference graph -- the allocation an ideal
// (non-causal, infinitely divisible) scheduler would deliver.  The fluid
// system advances between "events" (arrivals and backlog completions) and
// recomputes the allocation at each event.
//
// Two uses:
//  * the Theorem 1 counterexample test: the finishing order of two head
//    packets under ideal scheduling flips depending on *future* arrivals,
//    so no causal earliest-finishing-time scheduler exists;
//  * an oracle for convergence tests (miDRR's long-run service should track
//    the fluid system's within the Lemma 5/6 bounds).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "fairness/maxmin.hpp"
#include "util/time.hpp"

namespace midrr::fair {

class FluidSystem {
 public:
  /// `capacities_bps[j]` is interface j's constant rate.
  explicit FluidSystem(std::vector<double> capacities_bps);

  /// Adds a flow with weight and willingness row; returns its index.
  std::size_t add_flow(double weight, std::vector<bool> willing);

  /// Schedules `bytes` of arrival for `flow` at absolute time `at`.
  void add_arrival(std::size_t flow, SimTime at, std::uint64_t bytes);

  /// Runs until all backlog is drained or `horizon` is reached.
  void run_until(SimTime horizon);

  SimTime now() const { return now_; }
  double backlog_bytes(std::size_t flow) const;
  /// Cumulative service in bytes.
  double service_bytes(std::size_t flow) const;
  /// Time the flow's backlog last hit zero; nullopt if never (or refilled).
  std::optional<SimTime> drained_at(std::size_t flow) const;
  /// Instantaneous max-min rate of the flow at the current time.
  double current_rate_bps(std::size_t flow) const;

 private:
  void recompute_rates();
  /// Advances the fluid state to `t` (no events may lie in between).
  void integrate_to(SimTime t);
  SimTime next_completion_time() const;

  std::vector<double> capacities_;
  std::vector<double> weights_;
  std::vector<std::vector<bool>> willing_;
  std::vector<double> backlog_;
  std::vector<double> service_;
  std::vector<double> rates_;
  std::vector<std::optional<SimTime>> drained_;
  std::multimap<SimTime, std::pair<std::size_t, std::uint64_t>> arrivals_;
  SimTime now_ = 0;
};

}  // namespace midrr::fair
