// Weighted max-min fair allocation with interface preferences -- the
// reference ("convex program") solution the paper says miDRR converges to.
//
// Progressive filling: raise every unfrozen flow's normalized rate t
// (rate_i = phi_i * t) in lockstep as far as feasibility allows, freeze the
// flows that cannot grow beyond the bottleneck level, and repeat.  The
// feasibility oracle is a max-flow over the bipartite willingness graph:
//
//      source --(d_i)--> flow_i --(inf, if pi_ij)--> iface_j --(C_j)--> sink
//
// The result is the unique weighted max-min allocation r and a consistent
// split matrix r_ij.  Property tests compare miDRR's long-run empirical
// rates against rates_bps; Theorem-2 tests check the cluster structure of
// alloc_bps.
#pragma once

#include <cstddef>
#include <vector>

namespace midrr::fair {

/// The static scheduling problem (Pi, phi, C): all flows assumed
/// continuously backlogged.
struct MaxMinInput {
  std::vector<double> weights;              ///< phi_i (> 0), size n
  std::vector<double> capacities_bps;       ///< C_j (>= 0), size m
  std::vector<std::vector<bool>> willing;   ///< Pi, n rows of m entries

  std::size_t flow_count() const { return weights.size(); }
  std::size_t iface_count() const { return capacities_bps.size(); }

  /// Throws PreconditionError on inconsistent dimensions / bad values.
  void validate() const;
};

struct MaxMinResult {
  std::vector<double> rates_bps;               ///< r_i
  std::vector<std::vector<double>> alloc_bps;  ///< r_ij, one feasible split
  /// Normalized level r_i / phi_i at which each flow froze (equal within a
  /// bottleneck group); the "cluster rate" of the paper's Definition 2 in
  /// weighted form.
  std::vector<double> levels;

  double total_rate_bps() const;
};

/// Solves the weighted max-min problem.  Complexity: O(n) stages, each a
/// binary search of ~60 max-flow calls on an (n + m + 2)-node graph --
/// microseconds at the paper's scale (tens of flows, <= 16 interfaces).
MaxMinResult solve_max_min(const MaxMinInput& input);

/// True if demands d (bits/s per flow) can be routed within (Pi, C).
bool demands_feasible(const MaxMinInput& input,
                      const std::vector<double>& demands_bps);

}  // namespace midrr::fair
