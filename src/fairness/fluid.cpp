#include "fairness/fluid.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace midrr::fair {

FluidSystem::FluidSystem(std::vector<double> capacities_bps)
    : capacities_(std::move(capacities_bps)) {
  for (double c : capacities_) {
    MIDRR_REQUIRE(c >= 0.0, "negative capacity");
  }
}

std::size_t FluidSystem::add_flow(double weight, std::vector<bool> willing) {
  MIDRR_REQUIRE(weight > 0.0, "weight must be positive");
  MIDRR_REQUIRE(willing.size() == capacities_.size(),
                "willingness row size mismatch");
  weights_.push_back(weight);
  willing_.push_back(std::move(willing));
  backlog_.push_back(0.0);
  service_.push_back(0.0);
  rates_.push_back(0.0);
  drained_.push_back(std::nullopt);
  return weights_.size() - 1;
}

void FluidSystem::add_arrival(std::size_t flow, SimTime at,
                              std::uint64_t bytes) {
  MIDRR_REQUIRE(flow < weights_.size(), "unknown flow");
  MIDRR_REQUIRE(at >= now_, "arrival in the past");
  arrivals_.emplace(at, std::make_pair(flow, bytes));
}

void FluidSystem::recompute_rates() {
  // Max-min over backlogged flows only; idle flows get rate 0.
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    if (backlog_[i] > 1e-9) active.push_back(i);
  }
  std::fill(rates_.begin(), rates_.end(), 0.0);
  if (active.empty()) return;

  MaxMinInput input;
  input.capacities_bps = capacities_;
  for (std::size_t i : active) {
    input.weights.push_back(weights_[i]);
    std::vector<bool> row(capacities_.size());
    for (std::size_t j = 0; j < capacities_.size(); ++j) {
      row[j] = willing_[i][j];
    }
    input.willing.push_back(std::move(row));
  }
  const MaxMinResult result = solve_max_min(input);
  for (std::size_t k = 0; k < active.size(); ++k) {
    rates_[active[k]] = result.rates_bps[k];
  }
}

SimTime FluidSystem::next_completion_time() const {
  SimTime best = kSimTimeMax;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    if (backlog_[i] > 1e-9 && rates_[i] > 0.0) {
      const double seconds = backlog_[i] * 8.0 / rates_[i];
      const SimTime t =
          now_ + std::max<SimDuration>(1, from_seconds(seconds));
      best = std::min(best, t);
    }
  }
  return best;
}

void FluidSystem::integrate_to(SimTime t) {
  MIDRR_ASSERT(t >= now_, "fluid time went backwards");
  const double dt = to_seconds(t - now_);
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    if (rates_[i] <= 0.0 || backlog_[i] <= 0.0) continue;
    const double drained = std::min(backlog_[i], rates_[i] * dt / 8.0);
    backlog_[i] -= drained;
    service_[i] += drained;
    if (backlog_[i] <= 1e-9) {
      backlog_[i] = 0.0;
      drained_[i] = t;
    }
  }
  now_ = t;
}

void FluidSystem::run_until(SimTime horizon) {
  recompute_rates();
  std::uint64_t guard = 0;
  while (now_ < horizon) {
    MIDRR_ASSERT(++guard < 1'000'000, "fluid system failed to converge");
    const SimTime arrival = arrivals_.empty() ? kSimTimeMax
                                              : arrivals_.begin()->first;
    const SimTime completion = next_completion_time();
    const SimTime next = std::min({arrival, completion, horizon});
    integrate_to(next);
    bool changed = false;
    while (!arrivals_.empty() && arrivals_.begin()->first <= now_) {
      const auto [flow, bytes] = arrivals_.begin()->second;
      arrivals_.erase(arrivals_.begin());
      if (backlog_[flow] <= 0.0 && bytes > 0) drained_[flow] = std::nullopt;
      backlog_[flow] += static_cast<double>(bytes);
      changed = true;
    }
    if (changed || next == completion) recompute_rates();
    if (arrivals_.empty() && next_completion_time() == kSimTimeMax &&
        completion == kSimTimeMax) {
      break;  // steady state with nothing left to do
    }
  }
}

double FluidSystem::backlog_bytes(std::size_t flow) const {
  MIDRR_REQUIRE(flow < backlog_.size(), "unknown flow");
  return backlog_[flow];
}

double FluidSystem::service_bytes(std::size_t flow) const {
  MIDRR_REQUIRE(flow < service_.size(), "unknown flow");
  return service_[flow];
}

std::optional<SimTime> FluidSystem::drained_at(std::size_t flow) const {
  MIDRR_REQUIRE(flow < drained_.size(), "unknown flow");
  return drained_[flow];
}

double FluidSystem::current_rate_bps(std::size_t flow) const {
  MIDRR_REQUIRE(flow < rates_.size(), "unknown flow");
  return rates_[flow];
}

}  // namespace midrr::fair
