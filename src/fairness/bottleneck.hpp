// A second, independent weighted max-min solver: bottleneck-set iteration.
//
// At each step, consider every non-empty subset S of the remaining
// interfaces and the flows *confined* to S (all their willing interfaces
// lie inside S).  The subset minimizing
//
//      level(S) = capacity(S) / total_weight(confined(S))
//
// is the bottleneck: its confined flows can never do better than level(S),
// and every other flow can do at least as well, so they freeze at exactly
// that level; S's capacity is exactly consumed by them, both are removed,
// and the iteration continues (Megiddo 1974's lexicographic argument).
//
// Exponential in the interface count (fine for m <= ~16, the paper's
// range) but entirely different machinery from the water-filling /
// max-flow solver in maxmin.hpp -- the two cross-validate each other in
// tests/test_solver_crosscheck.cpp over thousands of random instances.
#pragma once

#include "fairness/maxmin.hpp"

namespace midrr::fair {

/// Same contract as solve_max_min (rates only; no split matrix).
/// Requires iface_count() <= 20.
MaxMinResult solve_max_min_bottleneck(const MaxMinInput& input);

}  // namespace midrr::fair
