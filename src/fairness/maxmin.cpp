#include "fairness/maxmin.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "fairness/maxflow.hpp"
#include "util/assert.hpp"

namespace midrr::fair {

namespace {

/// Builds the feasibility max-flow for the given demands and returns
/// (achieved flow, graph, flow->iface edge ids).
struct FeasibilityRun {
  double achieved = 0.0;
  double demand_total = 0.0;
  std::vector<std::vector<std::size_t>> flow_iface_edges;
};

FeasibilityRun run_feasibility(const MaxMinInput& in,
                               const std::vector<double>& demands,
                               std::vector<std::vector<double>>* alloc_out) {
  const std::size_t n = in.flow_count();
  const std::size_t m = in.iface_count();
  const std::size_t source = 0;
  const std::size_t sink = n + m + 1;
  MaxFlowGraph g(n + m + 2);

  FeasibilityRun run;
  std::vector<std::size_t> demand_edges(n);
  run.flow_iface_edges.assign(n, {});
  for (std::size_t i = 0; i < n; ++i) {
    demand_edges[i] = g.add_edge(source, 1 + i, demands[i]);
    run.demand_total += demands[i];
    for (std::size_t j = 0; j < m; ++j) {
      if (in.willing[i][j]) {
        // Effectively unbounded (flow through this edge cannot exceed the
        // source edge's demand), but kept at the problem's own scale so
        // flow_on() does not lose the flow value to cancellation against a
        // huge capacity.
        run.flow_iface_edges[i].push_back(
            g.add_edge(1 + i, 1 + n + j, demands[i]));
      }
    }
  }
  for (std::size_t j = 0; j < m; ++j) {
    g.add_edge(1 + n + j, sink, in.capacities_bps[j]);
  }

  run.achieved = g.solve(source, sink);

  if (alloc_out != nullptr) {
    alloc_out->assign(n, std::vector<double>(m, 0.0));
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t k = 0;
      for (std::size_t j = 0; j < m; ++j) {
        if (in.willing[i][j]) {
          (*alloc_out)[i][j] = g.flow_on(run.flow_iface_edges[i][k++]);
        }
      }
    }
  }
  return run;
}

}  // namespace

void MaxMinInput::validate() const {
  MIDRR_REQUIRE(willing.size() == weights.size(),
                "Pi row count must equal flow count");
  for (const auto& row : willing) {
    MIDRR_REQUIRE(row.size() == capacities_bps.size(),
                  "Pi column count must equal interface count");
  }
  for (double w : weights) {
    MIDRR_REQUIRE(w > 0.0 && std::isfinite(w), "weights must be positive");
  }
  for (double c : capacities_bps) {
    MIDRR_REQUIRE(c >= 0.0 && std::isfinite(c),
                  "capacities must be non-negative");
  }
}

double MaxMinResult::total_rate_bps() const {
  double total = 0.0;
  for (double r : rates_bps) total += r;
  return total;
}

bool demands_feasible(const MaxMinInput& input,
                      const std::vector<double>& demands_bps) {
  input.validate();
  MIDRR_REQUIRE(demands_bps.size() == input.flow_count(),
                "demand vector size mismatch");
  double scale = 1.0;
  for (double c : input.capacities_bps) scale += c;
  const auto run = run_feasibility(input, demands_bps, nullptr);
  return run.achieved >= run.demand_total - 1e-9 * scale;
}

MaxMinResult solve_max_min(const MaxMinInput& input) {
  input.validate();
  const std::size_t n = input.flow_count();
  const std::size_t m = input.iface_count();

  MaxMinResult result;
  result.rates_bps.assign(n, 0.0);
  result.levels.assign(n, 0.0);
  result.alloc_bps.assign(n, std::vector<double>(m, 0.0));
  if (n == 0) return result;

  double capacity_total = 0.0;
  for (double c : input.capacities_bps) capacity_total += c;
  const double eps_feas = 1e-9 * (capacity_total + 1.0);
  const double grow_step = 1e-6 * (capacity_total + 1.0);

  double min_weight = std::numeric_limits<double>::infinity();
  for (double w : input.weights) min_weight = std::min(min_weight, w);

  std::vector<bool> frozen(n, false);
  std::vector<double> demands(n, 0.0);

  const auto feasible_at = [&](double t) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!frozen[i]) demands[i] = input.weights[i] * t;
    }
    const auto run = run_feasibility(input, demands, nullptr);
    return run.achieved >= run.demand_total - eps_feas;
  };

  double t = 0.0;
  std::size_t remaining = n;
  std::size_t stage_guard = 0;
  while (remaining > 0) {
    MIDRR_ASSERT(++stage_guard <= n + 2, "water-filling failed to converge");

    // Binary search the largest feasible common level t* >= t.
    double lo = t;
    double hi = capacity_total / min_weight + 1.0;
    MIDRR_ASSERT(feasible_at(lo), "current level became infeasible");
    if (feasible_at(hi)) {
      lo = hi;  // unconstrained (can only happen with zero demand growth)
    } else {
      for (int iter = 0; iter < 100; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (feasible_at(mid)) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
    }
    // The bisection accepts levels whose total shortfall is within
    // eps_feas, so `lo` can overshoot the true bottleneck by a hair.  Pull
    // the pinned level back just enough that the frozen demands are
    // strictly feasible -- otherwise every later-stage feasibility probe
    // inherits an irreducible shortfall and sits on a tolerance razor edge.
    double unfrozen_weight = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!frozen[i]) unfrozen_weight += input.weights[i];
    }
    const double t_star =
        std::max(t, lo - 2.0 * eps_feas / std::max(unfrozen_weight, 1e-300));

    // Pin demands at t*, then ask per unfrozen flow: can it individually
    // grow past t*?  Those that cannot are the bottlenecked set.
    for (std::size_t i = 0; i < n; ++i) {
      if (!frozen[i]) demands[i] = input.weights[i] * t_star;
    }
    std::vector<std::size_t> newly_frozen;
    for (std::size_t i = 0; i < n; ++i) {
      if (frozen[i]) continue;
      const double saved = demands[i];
      demands[i] = saved + grow_step;
      const auto run = run_feasibility(input, demands, nullptr);
      // The pinned level t* may overshoot the true bottleneck by up to the
      // binary-search tolerance, leaving a tiny unavoidable shortfall; only
      // treat the flow as frozen if it failed to absorb a meaningful part
      // of the probe step.
      const bool growable = run.achieved >= run.demand_total - grow_step / 2;
      demands[i] = saved;
      if (!growable) newly_frozen.push_back(i);
    }
    if (newly_frozen.empty()) {
      // Numerical fallback: freeze everything at t*.
      for (std::size_t i = 0; i < n; ++i) {
        if (!frozen[i]) newly_frozen.push_back(i);
      }
    }
    for (std::size_t i : newly_frozen) {
      frozen[i] = true;
      result.rates_bps[i] = input.weights[i] * t_star;
      result.levels[i] = t_star;
      --remaining;
    }
    t = t_star;
  }

  // One final feasibility run at the converged rates yields a valid split.
  for (std::size_t i = 0; i < n; ++i) demands[i] = result.rates_bps[i];
  run_feasibility(input, demands, &result.alloc_bps);
  return result;
}

}  // namespace midrr::fair
