#include "fairness/maxflow.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/assert.hpp"

namespace midrr::fair {

MaxFlowGraph::MaxFlowGraph(std::size_t node_count, double eps)
    : eps_(eps), adj_(node_count), level_(node_count), iter_(node_count) {}

std::size_t MaxFlowGraph::add_edge(std::size_t u, std::size_t v,
                                   double capacity) {
  MIDRR_REQUIRE(u < adj_.size() && v < adj_.size(), "edge endpoint OOB");
  MIDRR_REQUIRE(capacity >= 0.0, "negative capacity");
  adj_[u].push_back(Edge{v, capacity, adj_[v].size()});
  adj_[v].push_back(Edge{u, 0.0, adj_[u].size() - 1});
  edge_index_.emplace_back(u, adj_[u].size() - 1);
  original_cap_.push_back(capacity);
  return edge_index_.size() - 1;
}

bool MaxFlowGraph::bfs(std::size_t s, std::size_t t) {
  std::fill(level_.begin(), level_.end(), -1);
  std::queue<std::size_t> q;
  level_[s] = 0;
  q.push(s);
  while (!q.empty()) {
    const std::size_t v = q.front();
    q.pop();
    for (const Edge& e : adj_[v]) {
      if (e.cap > eps_ && level_[e.to] < 0) {
        level_[e.to] = level_[v] + 1;
        q.push(e.to);
      }
    }
  }
  return level_[t] >= 0;
}

double MaxFlowGraph::dfs(std::size_t v, std::size_t t, double pushed) {
  if (v == t) return pushed;
  for (std::size_t& i = iter_[v]; i < adj_[v].size(); ++i) {
    Edge& e = adj_[v][i];
    if (e.cap > eps_ && level_[v] < level_[e.to]) {
      const double d = dfs(e.to, t, std::min(pushed, e.cap));
      if (d > eps_) {
        e.cap -= d;
        adj_[e.to][e.rev].cap += d;
        return d;
      }
    }
  }
  return 0.0;
}

double MaxFlowGraph::solve(std::size_t s, std::size_t t) {
  MIDRR_REQUIRE(s < adj_.size() && t < adj_.size(), "terminal OOB");
  double flow = 0.0;
  while (bfs(s, t)) {
    std::fill(iter_.begin(), iter_.end(), std::size_t{0});
    double f;
    while ((f = dfs(s, t, std::numeric_limits<double>::infinity())) > eps_) {
      flow += f;
    }
  }
  return flow;
}

double MaxFlowGraph::flow_on(std::size_t edge_id) const {
  MIDRR_REQUIRE(edge_id < edge_index_.size(), "unknown edge id");
  const auto [node, idx] = edge_index_[edge_id];
  return original_cap_[edge_id] - adj_[node][idx].cap;
}

bool MaxFlowGraph::residual_reachable(std::size_t from, std::size_t to) const {
  std::vector<bool> seen(adj_.size(), false);
  std::queue<std::size_t> q;
  seen[from] = true;
  q.push(from);
  while (!q.empty()) {
    const std::size_t v = q.front();
    q.pop();
    if (v == to) return true;
    for (const Edge& e : adj_[v]) {
      if (e.cap > eps_ && !seen[e.to]) {
        seen[e.to] = true;
        q.push(e.to);
      }
    }
  }
  return false;
}

}  // namespace midrr::fair
