#include "fairness/metrics.hpp"

#include "sched/scheduler.hpp"
#include "util/assert.hpp"

namespace midrr::fair {

double directional_fm(std::uint64_t service_i_bytes, double weight_i,
                      std::uint64_t service_j_bytes, double weight_j) {
  MIDRR_REQUIRE(weight_i > 0.0 && weight_j > 0.0, "weights must be positive");
  return static_cast<double>(service_i_bytes) / weight_i -
         static_cast<double>(service_j_bytes) / weight_j;
}

ServiceSnapshot::ServiceSnapshot(const Scheduler& scheduler) {
  const auto flows = scheduler.preferences().flows();
  const std::size_t slots = scheduler.preferences().flow_slots();
  sent_bytes_.assign(slots, 0);
  for (const auto flow : flows) {
    sent_bytes_[flow] = scheduler.sent_bytes(flow);
  }
}

std::uint64_t ServiceSnapshot::service_since(const ServiceSnapshot& earlier,
                                             std::uint32_t flow) const {
  const std::uint64_t now_v = flow < sent_bytes_.size() ? sent_bytes_[flow] : 0;
  const std::uint64_t then_v =
      flow < earlier.sent_bytes_.size() ? earlier.sent_bytes_[flow] : 0;
  MIDRR_REQUIRE(now_v >= then_v, "snapshots taken out of order");
  return now_v - then_v;
}

double ServiceSnapshot::fm_since(const ServiceSnapshot& earlier,
                                 std::uint32_t flow_i, double weight_i,
                                 std::uint32_t flow_j, double weight_j) const {
  return directional_fm(service_since(earlier, flow_i), weight_i,
                        service_since(earlier, flow_j), weight_j);
}

}  // namespace midrr::fair
