// Dinic's maximum-flow algorithm over double-valued capacities.
//
// Used by the max-min reference solver for its feasibility oracle.  The
// graphs here are tiny (flows + interfaces + 2 nodes), so numeric epsilon
// handling matters more than asymptotics: residual capacities below `eps`
// are treated as saturated.
#pragma once

#include <cstddef>
#include <vector>

namespace midrr::fair {

class MaxFlowGraph {
 public:
  explicit MaxFlowGraph(std::size_t node_count, double eps = 1e-9);

  /// Adds a directed edge u -> v with the given capacity; returns an edge
  /// id usable with flow_on() after solving.
  std::size_t add_edge(std::size_t u, std::size_t v, double capacity);

  /// Computes the max flow from s to t; callable once per instance.
  double solve(std::size_t s, std::size_t t);

  /// Flow pushed over the edge returned by add_edge.
  double flow_on(std::size_t edge_id) const;

  /// Residual reachability from `from` (after solve): true if any
  /// augmenting path with residual capacity > eps exists to `to`.
  bool residual_reachable(std::size_t from, std::size_t to) const;

 private:
  struct Edge {
    std::size_t to;
    double cap;
    std::size_t rev;  // index of the reverse edge in adj_[to]
  };

  bool bfs(std::size_t s, std::size_t t);
  double dfs(std::size_t v, std::size_t t, double pushed);

  double eps_;
  std::vector<std::vector<Edge>> adj_;
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
  std::vector<std::pair<std::size_t, std::size_t>> edge_index_;  // (node, idx)
  std::vector<double> original_cap_;
};

}  // namespace midrr::fair
