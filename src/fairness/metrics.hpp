// The paper's directional fairness metric (Definition 3) and service
// tracking over intervals.
//
//   FM_{i->j}(t1, t2] = S_i(t1, t2]/phi_i - S_j(t1, t2]/phi_j
//
// Lemma 5 bounds FM_{i->j} > -2*MaxSize when flow i is served at a higher
// rate; Lemma 6 bounds |FM_{i->j}| < Q' + 2*MaxSize for flows sharing an
// interface.  ServiceSnapshot makes those bounds testable on any running
// Scheduler by differencing its byte counters.
#pragma once

#include <cstdint>
#include <vector>

namespace midrr {
class Scheduler;
}

namespace midrr::fair {

/// FM from raw interval service in bytes.
double directional_fm(std::uint64_t service_i_bytes, double weight_i,
                      std::uint64_t service_j_bytes, double weight_j);

/// Captures S_i for every flow of a scheduler at one instant.
class ServiceSnapshot {
 public:
  /// Snapshot of all live flows (indexed by FlowId; gaps are zero).
  explicit ServiceSnapshot(const Scheduler& scheduler);
  ServiceSnapshot() = default;

  /// Bytes flow sent between `earlier` and this snapshot.
  std::uint64_t service_since(const ServiceSnapshot& earlier,
                              std::uint32_t flow) const;

  /// FM_{i->j} between `earlier` and this snapshot.
  double fm_since(const ServiceSnapshot& earlier, std::uint32_t flow_i,
                  double weight_i, std::uint32_t flow_j,
                  double weight_j) const;

 private:
  std::vector<std::uint64_t> sent_bytes_;
};

}  // namespace midrr::fair
