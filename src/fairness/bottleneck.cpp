#include "fairness/bottleneck.hpp"

#include <limits>

#include "util/assert.hpp"

namespace midrr::fair {

MaxMinResult solve_max_min_bottleneck(const MaxMinInput& input) {
  input.validate();
  const std::size_t n = input.flow_count();
  const std::size_t m = input.iface_count();
  MIDRR_REQUIRE(m <= 20, "bottleneck solver is exponential in interfaces");

  MaxMinResult result;
  result.rates_bps.assign(n, 0.0);
  result.levels.assign(n, 0.0);
  result.alloc_bps.assign(n, std::vector<double>(m, 0.0));
  if (n == 0) return result;

  // Flows with no usable interface freeze at zero immediately.
  std::vector<bool> frozen(n, false);
  std::vector<double> capacity = input.capacities_bps;
  std::vector<bool> iface_gone(m, false);
  std::size_t remaining = 0;
  for (std::size_t i = 0; i < n; ++i) {
    bool any = false;
    for (std::size_t j = 0; j < m; ++j) any = any || input.willing[i][j];
    if (!any) {
      frozen[i] = true;
    } else {
      ++remaining;
    }
  }

  std::size_t guard = 0;
  while (remaining > 0) {
    MIDRR_ASSERT(++guard <= m + 1, "bottleneck iteration failed to converge");

    // Live interface ids for subset enumeration.
    std::vector<std::size_t> live;
    for (std::size_t j = 0; j < m; ++j) {
      if (!iface_gone[j]) live.push_back(j);
    }
    MIDRR_ASSERT(!live.empty(), "flows remain but no interfaces do");

    double best_level = std::numeric_limits<double>::infinity();
    unsigned best_subset = 0;
    const unsigned subsets = 1u << live.size();
    for (unsigned mask = 1; mask < subsets; ++mask) {
      double cap = 0.0;
      for (std::size_t k = 0; k < live.size(); ++k) {
        if (mask & (1u << k)) cap += capacity[live[k]];
      }
      // Flows confined to this subset (every live willing iface inside).
      double weight = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (frozen[i]) continue;
        bool confined = true;
        for (std::size_t k = 0; k < live.size(); ++k) {
          if (input.willing[i][live[k]] && !(mask & (1u << k))) {
            confined = false;
            break;
          }
        }
        if (confined) weight += input.weights[i];
      }
      if (weight <= 0.0) continue;
      const double level = cap / weight;
      if (level < best_level) {
        best_level = level;
        best_subset = mask;
      }
    }
    MIDRR_ASSERT(best_level < std::numeric_limits<double>::infinity(),
                 "no bottleneck subset found");

    // Freeze the confined flows at the bottleneck level; retire the subset.
    for (std::size_t i = 0; i < n; ++i) {
      if (frozen[i]) continue;
      bool confined = true;
      for (std::size_t k = 0; k < live.size(); ++k) {
        if (input.willing[i][live[k]] && !(best_subset & (1u << k))) {
          confined = false;
          break;
        }
      }
      if (confined) {
        frozen[i] = true;
        result.levels[i] = best_level;
        result.rates_bps[i] = input.weights[i] * best_level;
        --remaining;
      }
    }
    for (std::size_t k = 0; k < live.size(); ++k) {
      if (best_subset & (1u << k)) iface_gone[live[k]] = true;
    }
  }
  return result;
}

}  // namespace midrr::fair
