// Rate clusters (Definition 2) and the Theorem 2 max-min conditions.
//
// Given an allocation split r_ij (from the reference solver, or measured
// bytes from a running scheduler), this module partitions flows and
// interfaces into the clusters the paper describes -- connected components
// of the "actively serves" bipartite graph -- and checks the two Theorem 2
// conditions:
//   1. flows actively served by a common interface have equal normalized
//      rate r_i / phi_i;
//   2. a flow willing-but-not-active on an interface has normalized rate
//      >= the rate of the cluster that interface belongs to.
//
// The benches for Fig 8 / Fig 11 print these clusters over time; the
// Theorem 2 property tests assert the conditions on solver outputs and the
// inverse (violations detected on perturbed allocations).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fairness/maxmin.hpp"

namespace midrr::fair {

struct Cluster {
  std::vector<std::size_t> flows;   ///< flow indices in the cluster
  std::vector<std::size_t> ifaces;  ///< interface indices in the cluster
  double normalized_rate = 0.0;     ///< common r_i / phi_i of member flows
};

struct ClusterAnalysis {
  std::vector<Cluster> clusters;
  /// Per-flow index of its cluster (SIZE_MAX for idle zero-rate flows).
  std::vector<std::size_t> flow_cluster;
  /// Per-interface index of its cluster (SIZE_MAX for unused interfaces).
  std::vector<std::size_t> iface_cluster;
};

/// Partitions flows/interfaces into clusters by the active-service graph:
/// an edge exists where alloc[i][j] exceeds `active_fraction` of flow i's
/// total rate (filters measurement noise in empirical allocations).
ClusterAnalysis analyze_clusters(const MaxMinInput& input,
                                 const std::vector<std::vector<double>>& alloc,
                                 double active_fraction = 1e-3);

/// Checks the Theorem 2 conditions on an allocation; returns a description
/// of the first violation, or nullopt if the allocation is max-min
/// consistent within `rel_tol`.
std::optional<std::string> check_max_min_conditions(
    const MaxMinInput& input, const std::vector<std::vector<double>>& alloc,
    double rel_tol = 1e-6);

/// One-line rendering ("{a | if1} @3.00  {b,c | if2} @3.33") for benches.
std::string format_clusters(const ClusterAnalysis& analysis,
                            const std::vector<std::string>& flow_names,
                            const std::vector<std::string>& iface_names);

}  // namespace midrr::fair
