#include "inbound/reorder.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace midrr::inbound {

ReorderBuffer::Delivery ReorderBuffer::offer(std::uint64_t seq,
                                             std::uint32_t bytes) {
  MIDRR_REQUIRE(bytes > 0, "zero-size packet offered to reorder buffer");
  Delivery out;
  if (seq < next_ || pending_.count(seq) > 0) {
    out.duplicate = true;
    ++duplicates_;
    return out;
  }
  if (seq != next_) {
    out.was_out_of_order = true;
    ++out_of_order_;
    pending_[seq] = bytes;
    buffered_bytes_ += bytes;
    max_buffered_ = std::max(max_buffered_, buffered_bytes_);
    return out;
  }
  // In sequence: deliver it plus any now-contiguous buffered packets.
  out.delivered_bytes = bytes;
  ++next_;
  auto it = pending_.begin();
  while (it != pending_.end() && it->first == next_) {
    out.delivered_bytes += it->second;
    buffered_bytes_ -= it->second;
    ++next_;
    it = pending_.erase(it);
  }
  delivered_bytes_ += out.delivered_bytes;
  return out;
}

}  // namespace midrr::inbound
