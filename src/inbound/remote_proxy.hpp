// The paper's Figure 4 "ideal implementation": an aggregation proxy in the
// network, close to the last mile, that collects every flow headed for the
// device and schedules *inbound* packets with miDRR across the paths that
// end at the device's interfaces.
//
// Model: servers feed per-flow queues at the proxy; each path (one per
// device interface) has its own capacity profile and one-way latency; the
// device reassembles per-flow packet sequences in a ReorderBuffer and the
// in-order release rate is the goodput.  Latency skew across paths is what
// makes this interesting: aggregation buys bandwidth at the cost of
// reorder-buffer memory, which the result reports.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "flow/source.hpp"
#include "inbound/reorder.hpp"
#include "sched/scheduler.hpp"
#include "sim/link.hpp"
#include "sim/rate_profile.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace midrr::inbound {

struct PathSpec {
  std::string name;          ///< device interface this path ends at
  RateProfile profile;       ///< bottleneck (last-mile) capacity
  SimDuration latency = 0;   ///< one-way proxy -> device delay
};

struct InboundFlowSpec {
  std::string name;
  double weight = 1.0;
  std::vector<std::string> paths;  ///< willing device interfaces
  SourceFactory make_source;       ///< server-side traffic
};

struct InboundFlowResult {
  std::string name;
  TimeSeries goodput_mbps{""};
  std::uint64_t delivered_bytes = 0;
  std::uint64_t max_reorder_buffer_bytes = 0;
  std::uint64_t out_of_order_arrivals = 0;
  std::vector<std::uint64_t> bytes_per_path;

  double mean_goodput_mbps(SimTime from, SimTime to) const {
    return goodput_mbps.mean_over(from, to);
  }
};

struct InboundResult {
  std::vector<InboundFlowResult> flows;
  const InboundFlowResult& flow_named(const std::string& name) const;
};

struct InboundOptions {
  Policy policy = Policy::kMiDrr;
  std::uint32_t quantum_base = 1500;
  SimDuration sample_interval = 100 * kMillisecond;
  std::size_t rate_window_bins = 10;
  std::uint64_t seed = 1;
};

class RemoteProxy {
 public:
  RemoteProxy(std::vector<PathSpec> paths,
              std::vector<InboundFlowSpec> flows,
              InboundOptions options = {});
  ~RemoteProxy();

  InboundResult run(SimTime duration);

  Scheduler& scheduler() { return *scheduler_; }

 private:
  struct FlowState;

  void enqueue_for(std::size_t index, std::uint32_t size);
  void pump_arrivals(std::size_t index);
  void on_path_departure(IfaceId path, const Packet& packet, SimTime at);
  void deliver(std::size_t index, IfaceId path, Packet packet, SimTime at);
  void sample();

  std::vector<PathSpec> path_specs_;
  std::vector<InboundFlowSpec> flow_specs_;
  InboundOptions options_;
  Simulator sim_;
  std::unique_ptr<Scheduler> scheduler_;
  Rng rng_;
  std::vector<std::unique_ptr<LinkTransmitter>> paths_;
  std::vector<std::unique_ptr<FlowState>> flows_;
};

}  // namespace midrr::inbound
