#include "inbound/remote_proxy.hpp"

#include "util/assert.hpp"

namespace midrr::inbound {

const InboundFlowResult& InboundResult::flow_named(
    const std::string& name) const {
  for (const auto& f : flows) {
    if (f.name == name) return f;
  }
  MIDRR_REQUIRE(false, "no inbound flow named " + name);
  return flows.front();  // unreachable
}

struct RemoteProxy::FlowState {
  FlowId id = kInvalidFlow;
  std::unique_ptr<TrafficSource> source;
  std::uint64_t next_seq = 0;  ///< per-flow packet sequence at the proxy
  ReorderBuffer reorder;
  RateMeter goodput;
  TimeSeries series;
  std::vector<std::uint64_t> bytes_per_path;

  FlowState(SimDuration bin, std::size_t window, std::string name,
            std::size_t path_count)
      : goodput(bin, window),
        series(std::move(name)),
        bytes_per_path(path_count, 0) {}
};

RemoteProxy::RemoteProxy(std::vector<PathSpec> paths,
                         std::vector<InboundFlowSpec> flows,
                         InboundOptions options)
    : path_specs_(std::move(paths)),
      flow_specs_(std::move(flows)),
      options_(options),
      scheduler_(make_scheduler(options.policy,
                                SchedulerOptions{.quantum_base =
                                                     options.quantum_base})),
      rng_(options.seed) {
  MIDRR_REQUIRE(!path_specs_.empty(), "remote proxy needs paths");

  for (const PathSpec& spec : path_specs_) {
    MIDRR_REQUIRE(spec.latency >= 0, "negative path latency");
    const IfaceId id = scheduler_->add_interface(spec.name);
    auto provider = [this](IfaceId path, SimTime now) -> std::optional<Packet> {
      auto p = scheduler_->dequeue(path, now);
      if (p) {
        for (std::size_t idx = 0; idx < flows_.size(); ++idx) {
          if (flows_[idx]->id == p->flow) {
            for (const std::uint32_t size :
                 flows_[idx]->source->on_dequeue(p->size_bytes, rng_)) {
              enqueue_for(idx, size);
            }
            break;
          }
        }
      }
      return p;
    };
    auto departure = [this](IfaceId path, const Packet& packet, SimTime at) {
      on_path_departure(path, packet, at);
    };
    paths_.push_back(std::make_unique<LinkTransmitter>(
        sim_, id, spec.profile, std::move(provider), std::move(departure)));
  }

  for (const InboundFlowSpec& spec : flow_specs_) {
    MIDRR_REQUIRE(spec.make_source != nullptr, "inbound flow needs a source");
    auto state = std::make_unique<FlowState>(
        options_.sample_interval, options_.rate_window_bins, spec.name,
        paths_.size());
    std::vector<IfaceId> willing;
    for (const std::string& name : spec.paths) {
      bool found = false;
      for (const auto& path : paths_) {
        if (scheduler_->preferences().iface_name(path->iface()) == name) {
          willing.push_back(path->iface());
          found = true;
          break;
        }
      }
      MIDRR_REQUIRE(found, "inbound flow references unknown path " + name);
    }
    state->id = scheduler_->add_flow(FlowSpec{
        .weight = spec.weight, .willing = std::move(willing), .name = spec.name});
    state->source = spec.make_source();
    flows_.push_back(std::move(state));
  }
}

RemoteProxy::~RemoteProxy() = default;

void RemoteProxy::enqueue_for(std::size_t index, std::uint32_t size) {
  FlowState& flow = *flows_[index];
  Packet p(flow.id, size, /*seq=*/flow.next_seq++);
  const EnqueueResult result = scheduler_->enqueue(std::move(p), sim_.now());
  if (result.became_backlogged) {
    for (const auto& path : paths_) {
      if (scheduler_->preferences().willing(flow.id, path->iface())) {
        path->notify_backlog();
      }
    }
  }
}

void RemoteProxy::pump_arrivals(std::size_t index) {
  FlowState& flow = *flows_[index];
  const auto emission = flow.source->next_arrival(rng_);
  if (!emission) return;
  const std::uint32_t size = emission->size_bytes;
  sim_.schedule_in(emission->gap, [this, index, size] {
    enqueue_for(index, size);
    pump_arrivals(index);
  });
}

void RemoteProxy::on_path_departure(IfaceId path, const Packet& packet,
                                    SimTime at) {
  // The packet left the proxy's bottleneck; it reaches the device after
  // the path's one-way latency.
  const SimDuration latency = path_specs_[path].latency;
  Packet copy = packet;
  for (std::size_t idx = 0; idx < flows_.size(); ++idx) {
    if (flows_[idx]->id == packet.flow) {
      sim_.schedule_in(latency, [this, idx, path, copy, at, latency] {
        deliver(idx, path, copy, at + latency);
      });
      return;
    }
  }
  MIDRR_ASSERT(false, "departure for unknown inbound flow");
}

void RemoteProxy::deliver(std::size_t index, IfaceId path, Packet packet,
                          SimTime at) {
  FlowState& flow = *flows_[index];
  flow.bytes_per_path[path] += packet.size_bytes;
  const auto delivery = flow.reorder.offer(packet.seq, packet.size_bytes);
  if (delivery.delivered_bytes > 0) {
    flow.goodput.record(at, delivery.delivered_bytes);
  }
}

void RemoteProxy::sample() {
  for (auto& flow : flows_) {
    flow->series.add(sim_.now(),
                     to_mbps(flow->goodput.rate_bps(sim_.now())));
  }
}

InboundResult RemoteProxy::run(SimTime duration) {
  for (std::size_t idx = 0; idx < flows_.size(); ++idx) {
    for (const std::uint32_t size : flows_[idx]->source->on_start(rng_)) {
      enqueue_for(idx, size);
    }
    pump_arrivals(idx);
  }
  for (const auto& path : paths_) path->notify_backlog();

  auto sampler = std::make_shared<std::function<void()>>();
  *sampler = [this, sampler] {
    sample();
    sim_.schedule_in(options_.sample_interval, *sampler);
  };
  sim_.schedule_in(options_.sample_interval, *sampler);

  sim_.run_until(duration);

  InboundResult result;
  for (std::size_t idx = 0; idx < flows_.size(); ++idx) {
    const FlowState& flow = *flows_[idx];
    InboundFlowResult fr;
    fr.name = flow_specs_[idx].name;
    fr.goodput_mbps = flow.series;
    fr.delivered_bytes = flow.reorder.delivered_bytes();
    fr.max_reorder_buffer_bytes = flow.reorder.max_buffered_bytes();
    fr.out_of_order_arrivals = flow.reorder.out_of_order_arrivals();
    fr.bytes_per_path = flow.bytes_per_path;
    result.flows.push_back(std::move(fr));
  }
  return result;
}

}  // namespace midrr::inbound
