// Per-flow packet reorder buffer for the inbound (downlink) path.
//
// When one flow's packets ride several last-mile paths with different
// latencies they arrive out of order; the device buffers them and releases
// the in-sequence prefix to the application.  Occupancy of this buffer is
// the memory cost of multi-path aggregation -- the benches report it
// alongside goodput.
#pragma once

#include <cstdint>
#include <map>

#include "util/time.hpp"

namespace midrr::inbound {

class ReorderBuffer {
 public:
  /// Result of offering one packet to the buffer.
  struct Delivery {
    std::uint64_t delivered_bytes = 0;  ///< released in-order right now
    bool was_out_of_order = false;      ///< packet had to be buffered first
    bool duplicate = false;             ///< already seen; dropped
  };

  /// Offers packet `seq` (0-based, consecutive per flow) of `bytes`.
  Delivery offer(std::uint64_t seq, std::uint32_t bytes);

  std::uint64_t next_expected() const { return next_; }
  std::uint64_t buffered_bytes() const { return buffered_bytes_; }
  std::size_t buffered_packets() const { return pending_.size(); }
  std::uint64_t delivered_bytes() const { return delivered_bytes_; }
  std::uint64_t max_buffered_bytes() const { return max_buffered_; }
  std::uint64_t out_of_order_arrivals() const { return out_of_order_; }
  std::uint64_t duplicates() const { return duplicates_; }

 private:
  std::uint64_t next_ = 0;
  std::map<std::uint64_t, std::uint32_t> pending_;  // seq -> bytes
  std::uint64_t buffered_bytes_ = 0;
  std::uint64_t max_buffered_ = 0;
  std::uint64_t delivered_bytes_ = 0;
  std::uint64_t out_of_order_ = 0;
  std::uint64_t duplicates_ = 0;
};

}  // namespace midrr::inbound
