#include "sched/oracle.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace midrr {

OracleMaxMinScheduler::OracleMaxMinScheduler(CapacityProvider capacity_bps,
                                             SimDuration recompute_interval)
    : capacity_(std::move(capacity_bps)),
      recompute_interval_(recompute_interval) {
  MIDRR_REQUIRE(capacity_ != nullptr, "oracle needs a capacity provider");
  MIDRR_REQUIRE(recompute_interval > 0, "recompute interval must be > 0");
}

void OracleMaxMinScheduler::on_interface_added(IfaceId iface) {
  for (auto& row : target_bytes_) {
    if (row.size() <= iface) row.resize(static_cast<std::size_t>(iface) + 1, 0.0);
  }
  for (auto& row : served_bytes_) {
    if (row.size() <= iface) row.resize(static_cast<std::size_t>(iface) + 1, 0.0);
  }
  dirty_ = true;
}

void OracleMaxMinScheduler::on_flow_added(FlowId flow) {
  if (target_bytes_.size() <= flow) {
    target_bytes_.resize(static_cast<std::size_t>(flow) + 1);
    served_bytes_.resize(static_cast<std::size_t>(flow) + 1);
  }
  target_bytes_[flow].assign(preferences().iface_slots(), 0.0);
  served_bytes_[flow].assign(preferences().iface_slots(), 0.0);
  dirty_ = true;
}

void OracleMaxMinScheduler::recompute(SimTime now) {
  // Solve the max-min program over the *backlogged* flows with the current
  // capacities -- the global knowledge this strawman assumes.
  const auto flows = preferences().flows();
  const auto ifaces = preferences().ifaces();

  fair::MaxMinInput input;
  std::vector<FlowId> active;
  for (const FlowId f : flows) {
    if (queue(f).empty()) continue;
    active.push_back(f);
    input.weights.push_back(preferences().weight(f));
  }
  for (const IfaceId j : ifaces) {
    input.capacities_bps.push_back(std::max(0.0, capacity_(j)));
  }
  for (const FlowId f : active) {
    std::vector<bool> row;
    for (const IfaceId j : ifaces) {
      row.push_back(preferences().willing(f, j));
    }
    input.willing.push_back(std::move(row));
  }

  alloc_bps_.assign(preferences().flow_slots(),
                    std::vector<double>(preferences().iface_slots(), 0.0));
  if (!active.empty()) {
    const auto solved = fair::solve_max_min(input);
    for (std::size_t k = 0; k < active.size(); ++k) {
      for (std::size_t jj = 0; jj < ifaces.size(); ++jj) {
        alloc_bps_[active[k]][ifaces[jj]] = solved.alloc_bps[k][jj];
      }
    }
  }
  ++recomputations_;
  last_recompute_ = now;
  dirty_ = false;
}

void OracleMaxMinScheduler::advance_targets(SimTime now) {
  const double dt = to_seconds(now - last_advance_);
  if (dt > 0.0) {
    for (std::size_t i = 0; i < alloc_bps_.size(); ++i) {
      for (std::size_t j = 0; j < alloc_bps_[i].size(); ++j) {
        if (alloc_bps_[i][j] > 0.0 && i < target_bytes_.size() &&
            j < target_bytes_[i].size()) {
          target_bytes_[i][j] += alloc_bps_[i][j] * dt / 8.0;
        }
      }
    }
  }
  last_advance_ = now;
}

std::optional<Packet> OracleMaxMinScheduler::select(IfaceId iface,
                                                    SimTime now) {
  if (dirty_ || now - last_recompute_ >= recompute_interval_) {
    advance_targets(now);
    recompute(now);
  } else {
    advance_targets(now);
  }

  // Serve the backlogged willing flow lagging furthest behind its fluid
  // target on this interface; stay work-conserving even when every flow is
  // at/ahead of target (pick the max lag regardless of sign).
  FlowId best = kInvalidFlow;
  double best_lag = -std::numeric_limits<double>::infinity();
  for (const FlowId flow : preferences().flows_willing(iface)) {
    if (queue(flow).empty()) continue;
    const double lag =
        target_bytes_[flow][iface] - served_bytes_[flow][iface];
    if (lag > best_lag) {
      best_lag = lag;
      best = flow;
    }
  }
  if (best == kInvalidFlow) return std::nullopt;
  auto packet = queue(best).dequeue();
  served_bytes_[best][iface] += packet->size_bytes;
  if (queue(best).empty()) dirty_ = true;
  return packet;
}

}  // namespace midrr
