// Scheduler: the common contract and shared machinery for every packet
// scheduling policy in this library.
//
// A Scheduler owns the preference state (Pi, phi), one FIFO queue per flow,
// and the service accounting needed to verify fairness.  The data-path
// contract is the paper's: `dequeue(j, now)` answers "interface j is free;
// which packet should it send?".  Transmitters that get a whole transmit
// opportunity at once (simulator links in burst mode, the kernel bridge)
// use `dequeue_burst(j, byte_budget, now)` to drain it in one call.
// Policies (DRR, miDRR, WFQ, ...) implement `select()` plus
// topology-change hooks.
//
// Thread-safety: schedulers are externally synchronized -- hold one lock
// around EVERY call, including const ones.  Audit notes (why const is not
// enough): MiDrrScheduler::quantum_of refreshes a mutable min-weight
// cache, and has_eligible walks flows_willing, which may materialize its
// result; neither is safe to race with a writer.  The in-kernel prototype
// the paper describes guards scheduling with a single mutex; the bridge
// layer (src/bridge) does the same, the simulator is single-threaded by
// construction, and the real-time runtime (src/runtime) wraps each shard's
// scheduler in that shard's mutex (see docs/RUNTIME.md).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "flow/ids.hpp"
#include "flow/packet.hpp"
#include "flow/preferences.hpp"
#include "flow/queue.hpp"
#include "util/flat_matrix.hpp"
#include "util/time.hpp"

namespace midrr {

class SchedulerObserver;

/// Totals of a batched enqueue (see Scheduler::enqueue_batch).
struct EnqueueBatchResult {
  std::uint64_t accepted = 0;
  std::uint64_t dropped = 0;  ///< capacity tail-drops
  std::uint64_t accepted_bytes = 0;  ///< bytes behind `accepted` (backlog accounting)
};

/// Result of an enqueue: whether the packet was accepted, and whether the
/// flow transitioned from idle to backlogged (the caller should then kick
/// the transmitters of every interface the flow is willing to use).
struct EnqueueResult {
  bool accepted = false;
  bool became_backlogged = false;
};

/// Everything a flow registration needs, by name.  `willing` is the flow's
/// row of the interface-preference matrix Pi; `weight` is phi_i (> 0);
/// `queue_capacity_bytes` bounds its queue (0 = unbounded; beyond the
/// bound, enqueue tail-drops, the kernel bridge's qdisc behavior).
struct FlowSpec {
  double weight = 1.0;
  std::vector<IfaceId> willing{};
  std::string name{};
  std::uint64_t queue_capacity_bytes = 0;
};

/// Construction-time scheduler configuration.  `quantum_base` (bytes)
/// scales DRR-family quanta: Q_i = max(1, round(phi_i / phi_min *
/// quantum_base)); ignored by WFQ / round robin / FIFO.  `shared_deficit`
/// selects miDRR's ablation mode (one deficit counter per flow instead of
/// per flow-interface; see MiDrrScheduler).  A non-null `observer` is
/// attached before the scheduler is returned (it must outlive the
/// scheduler or be detached with set_observer(nullptr)).
struct SchedulerOptions {
  std::uint32_t quantum_base = 1500;
  bool shared_deficit = false;
  SchedulerObserver* observer = nullptr;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // --- Topology & preferences -------------------------------------------

  /// Registers an interface; returns its id.
  IfaceId add_interface(std::string name = {});

  /// Deregisters an interface (e.g. WiFi out of range).  Queued packets
  /// stay with their flows and drain through remaining interfaces.
  void remove_interface(IfaceId iface);

  /// Registers a flow from a named-field spec; returns its id.
  FlowId add_flow(const FlowSpec& spec);

  /// Deregisters a flow and discards its queue.
  void remove_flow(FlowId flow);

  /// Flips one entry of Pi at runtime.
  void set_willing(FlowId flow, IfaceId iface, bool value);

  /// Changes a flow's rate-preference weight phi_i.
  void set_weight(FlowId flow, double weight);

  const Preferences& preferences() const { return prefs_; }

  // --- Observability ------------------------------------------------------

  /// Attaches an observer of scheduling micro-events (nullptr detaches).
  /// Every policy emits on_packet_sent / on_flow_drained from the shared
  /// dequeue path; the DRR family additionally emits on_turn_granted /
  /// on_flag_skip.  The observer must outlive the scheduler or be detached
  /// first.
  void set_observer(SchedulerObserver* observer) { observer_ = observer; }
  SchedulerObserver* observer() const { return observer_; }

  // --- Data path ----------------------------------------------------------

  /// Adds a packet to its flow's queue.
  EnqueueResult enqueue(Packet packet, SimTime now);

  /// Batched enqueue: submits every packet in `packets` (consuming them)
  /// with the same per-packet semantics as repeated enqueue() calls,
  /// except that each packet keeps the `enqueued_at` stamp it already
  /// carries -- producers stamp at ingress, and a single shared `now`
  /// would clobber per-packet arrival times.  `now` is the batch
  /// submission time (currently unused by the shipped policies).  The
  /// base implementation loops over enqueue(); the DRR family overrides
  /// it to skip per-packet virtual hook dispatch.  The point is the
  /// caller's locking: one shard-lock acquisition and one call per
  /// ingress fan-in batch instead of one per packet.
  virtual EnqueueBatchResult enqueue_batch(std::span<Packet> packets,
                                           SimTime now);

  /// Returns the next packet interface `iface` should transmit, or nullopt
  /// if no willing flow is backlogged.  Guaranteed to return a packet of a
  /// flow with pi_{flow,iface} = 1 (interface preferences are sacrosanct).
  std::optional<Packet> dequeue(IfaceId iface, SimTime now);

  /// Batched dequeue: appends to `out` the exact packet sequence repeated
  /// dequeue(iface, now) calls would produce, stopping once the cumulative
  /// size reaches `byte_budget` (the last packet may overshoot it -- a
  /// transmit opportunity is never wasted on a partial fit) or nothing is
  /// eligible.  Returns the number of packets appended.  One call per
  /// transmit opportunity instead of one virtual dispatch per packet.
  virtual std::size_t dequeue_burst(IfaceId iface, std::uint64_t byte_budget,
                                    SimTime now, std::vector<Packet>& out);

  /// True if some willing flow has backlog on `iface`.
  virtual bool has_eligible(IfaceId iface) const;

  // --- Introspection (tests, fairness verification, reporting) ----------

  std::uint64_t backlog_bytes(FlowId flow) const;
  std::size_t backlog_packets(FlowId flow) const;
  const FlowQueueStats& queue_stats(FlowId flow) const;

  /// Bytes this scheduler has handed to interface `iface` from flow `flow`
  /// (the allocation matrix r_ij, in byte form).
  std::uint64_t sent_bytes(FlowId flow, IfaceId iface) const;

  /// Total bytes sent by a flow across all interfaces (S_i of Def. 3).
  std::uint64_t sent_bytes(FlowId flow) const;

  /// Human-readable policy name (reporting).
  virtual std::string policy_name() const = 0;

 protected:
  Scheduler() = default;

  /// Policy hook: choose and pop the next packet for `iface`.
  virtual std::optional<Packet> select(IfaceId iface, SimTime now) = 0;

  // Topology-change hooks; called after the registry is updated.
  virtual void on_interface_added(IfaceId iface) = 0;
  virtual void on_interface_removed(IfaceId iface) = 0;
  virtual void on_flow_added(FlowId flow) = 0;
  virtual void on_flow_removed(FlowId flow) = 0;
  virtual void on_willing_changed(FlowId flow, IfaceId iface, bool value) = 0;
  virtual void on_weight_changed(FlowId /*flow*/) {}
  /// Called when a flow transitions idle -> backlogged.
  virtual void on_backlogged(FlowId flow) = 0;

  /// Called for every accepted packet (after on_backlogged, if both fire).
  virtual void on_enqueued(FlowId /*flow*/) {}

  FlowQueue& queue(FlowId flow);
  const FlowQueue& queue(FlowId flow) const;

  /// Records a completed hand-off for the allocation matrix; select()
  /// implementations call this for every packet they return.
  void note_sent(FlowId flow, IfaceId iface, std::uint32_t bytes);

  /// Shared post-select bookkeeping of the dequeue paths: preference
  /// check, allocation accounting, observer send/drain events.
  void note_dequeued(const Packet& packet, IfaceId iface, SimTime now);

  Preferences prefs_;

 private:
  std::vector<FlowQueue> queues_;              // by FlowId
  FlowIfaceMatrix<std::uint64_t> sent_;        // [flow][iface], flat
  SchedulerObserver* observer_ = nullptr;
};

/// The scheduling policies this library ships.
enum class Policy {
  kMiDrr,           ///< the paper's contribution (Alg 3.1 + 3.2)
  kHierMiDrr,       ///< miDRR over flow classes, DRR within a class
                    ///< (million-flow scale; see HierMiDrrScheduler)
  kNaiveDrr,        ///< DRR independently per interface (no service flags)
  kPerIfaceWfq,     ///< SCFQ-style weighted fair queueing per interface
  kRoundRobin,      ///< packet-by-packet round robin per interface
  kFifo,            ///< one global arrival-order queue (no fairness)
  kStrictPriority,  ///< highest weight wins (starves light flows)
  kOracle,          ///< Section 3's global-knowledge strawman; requires a
                    ///< capacity provider (see OracleMaxMinScheduler)
};

const char* to_string(Policy policy);

/// Factory.  Options default to a 1500-byte quantum base, per-interface
/// deficit counters, and no observer.
std::unique_ptr<Scheduler> make_scheduler(Policy policy,
                                          const SchedulerOptions& options = {});

}  // namespace midrr
