// Scheduler: the common contract and shared machinery for every packet
// scheduling policy in this library.
//
// A Scheduler owns the preference state (Pi, phi), one FIFO queue per flow,
// and the service accounting needed to verify fairness.  The data-path
// contract is the paper's: `dequeue(j, now)` answers "interface j is free;
// which packet should it send?".  Policies (DRR, miDRR, WFQ, ...) implement
// `select()` plus topology-change hooks.
//
// Thread-safety: schedulers are externally synchronized.  The in-kernel
// prototype the paper describes guards scheduling with a single mutex; the
// bridge layer (src/bridge) does the same around its scheduler, and the
// simulator is single-threaded by construction.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "flow/ids.hpp"
#include "flow/packet.hpp"
#include "flow/preferences.hpp"
#include "flow/queue.hpp"
#include "util/time.hpp"

namespace midrr {

/// Result of an enqueue: whether the packet was accepted, and whether the
/// flow transitioned from idle to backlogged (the caller should then kick
/// the transmitters of every interface the flow is willing to use).
struct EnqueueResult {
  bool accepted = false;
  bool became_backlogged = false;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // --- Topology & preferences -------------------------------------------

  /// Registers an interface; returns its id.
  IfaceId add_interface(std::string name = {});

  /// Deregisters an interface (e.g. WiFi out of range).  Queued packets
  /// stay with their flows and drain through remaining interfaces.
  void remove_interface(IfaceId iface);

  /// Registers a flow with weight `weight` (phi_i > 0) willing to use the
  /// listed interfaces (its row of Pi).  Its queue holds at most
  /// `queue_capacity_bytes` (0 = unbounded, the default); beyond that,
  /// enqueue tail-drops (the kernel bridge's qdisc behavior).
  FlowId add_flow(double weight, const std::vector<IfaceId>& willing,
                  std::string name = {}, std::uint64_t queue_capacity_bytes = 0);

  /// Deregisters a flow and discards its queue.
  void remove_flow(FlowId flow);

  /// Flips one entry of Pi at runtime.
  void set_willing(FlowId flow, IfaceId iface, bool value);

  /// Changes a flow's rate-preference weight phi_i.
  void set_weight(FlowId flow, double weight);

  const Preferences& preferences() const { return prefs_; }

  // --- Data path ----------------------------------------------------------

  /// Adds a packet to its flow's queue.
  EnqueueResult enqueue(Packet packet, SimTime now);

  /// Returns the next packet interface `iface` should transmit, or nullopt
  /// if no willing flow is backlogged.  Guaranteed to return a packet of a
  /// flow with pi_{flow,iface} = 1 (interface preferences are sacrosanct).
  std::optional<Packet> dequeue(IfaceId iface, SimTime now);

  /// True if some willing flow has backlog on `iface`.
  virtual bool has_eligible(IfaceId iface) const;

  // --- Introspection (tests, fairness verification, reporting) ----------

  std::uint64_t backlog_bytes(FlowId flow) const;
  std::size_t backlog_packets(FlowId flow) const;
  const FlowQueueStats& queue_stats(FlowId flow) const;

  /// Bytes this scheduler has handed to interface `iface` from flow `flow`
  /// (the allocation matrix r_ij, in byte form).
  std::uint64_t sent_bytes(FlowId flow, IfaceId iface) const;

  /// Total bytes sent by a flow across all interfaces (S_i of Def. 3).
  std::uint64_t sent_bytes(FlowId flow) const;

  /// Human-readable policy name (reporting).
  virtual std::string policy_name() const = 0;

 protected:
  Scheduler() = default;

  /// Policy hook: choose and pop the next packet for `iface`.
  virtual std::optional<Packet> select(IfaceId iface, SimTime now) = 0;

  // Topology-change hooks; called after the registry is updated.
  virtual void on_interface_added(IfaceId iface) = 0;
  virtual void on_interface_removed(IfaceId iface) = 0;
  virtual void on_flow_added(FlowId flow) = 0;
  virtual void on_flow_removed(FlowId flow) = 0;
  virtual void on_willing_changed(FlowId flow, IfaceId iface, bool value) = 0;
  virtual void on_weight_changed(FlowId /*flow*/) {}
  /// Called when a flow transitions idle -> backlogged.
  virtual void on_backlogged(FlowId flow) = 0;

  /// Called for every accepted packet (after on_backlogged, if both fire).
  virtual void on_enqueued(FlowId /*flow*/) {}

  FlowQueue& queue(FlowId flow);
  const FlowQueue& queue(FlowId flow) const;

  /// Records a completed hand-off for the allocation matrix; select()
  /// implementations call this for every packet they return.
  void note_sent(FlowId flow, IfaceId iface, std::uint32_t bytes);

  Preferences prefs_;

 private:
  std::vector<FlowQueue> queues_;                       // by FlowId
  std::vector<std::vector<std::uint64_t>> sent_;        // [flow][iface]
};

/// The scheduling policies this library ships.
enum class Policy {
  kMiDrr,           ///< the paper's contribution (Alg 3.1 + 3.2)
  kNaiveDrr,        ///< DRR independently per interface (no service flags)
  kPerIfaceWfq,     ///< SCFQ-style weighted fair queueing per interface
  kRoundRobin,      ///< packet-by-packet round robin per interface
  kFifo,            ///< one global arrival-order queue (no fairness)
  kStrictPriority,  ///< highest weight wins (starves light flows)
  kOracle,          ///< Section 3's global-knowledge strawman; requires a
                    ///< capacity provider (see OracleMaxMinScheduler)
};

const char* to_string(Policy policy);

/// Factory. `quantum_base` (bytes) scales DRR-family quanta: Q_i =
/// max(1, round(phi_i * quantum_base)); ignored by WFQ / round robin.
std::unique_ptr<Scheduler> make_scheduler(Policy policy,
                                          std::uint32_t quantum_base = 1500);

}  // namespace midrr
