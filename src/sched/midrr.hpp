// miDRR: multiple-interface Deficit Round Robin (the paper's contribution,
// Algorithms 3.1 + 3.2).
//
// Each interface runs DRR over the backlogged flows willing to use it, with
// two changes relative to the naive per-interface variant:
//
//   1. The deficit counter DC_i is keyed by *flow alone* and shared by all
//      interfaces, so a flow that several interfaces serve can aggregate
//      their capacity while the quantum ratio still enforces the rate
//      preferences phi.
//
//   2. One boolean *service flag* SF_ij exists per (flow, interface).  When
//      interface k grants flow i a turn it sets SF_ij for every j != k.
//      When interface j's round-robin walk reaches a flow whose flag is
//      set, it clears the flag and skips the flow (Algorithm 3.2): "someone
//      else served you since I last did; you need nothing from me."
//
// Theorem 3 of the paper: this yields the weighted max-min fair allocation
// subject to the interface preferences, with no rate bookkeeping and only
// one bit of cross-interface signaling per flow -- which the property tests
// in tests/test_maxmin_property.cpp verify against the reference solver.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/drr.hpp"
#include "util/flat_matrix.hpp"

namespace midrr {

class MiDrrScheduler final : public DrrFamilyScheduler {
 public:
  /// `shared_deficit` selects how DC is keyed.  Section 3.1 says "each
  /// interface implementing DRR independently", i.e. per-(flow, interface)
  /// deficit counters with the service flags as the only coupling -- the
  /// default here.  Table 1's pseudocode writes DC_i (per flow); a shared
  /// counter is kept as an option for the ablation bench, where it measures
  /// worse on dense topologies (one interface's sends drain the deficit
  /// another interface just granted, distorting turn lengths) and identical
  /// on every scenario the paper evaluates.
  explicit MiDrrScheduler(std::uint32_t quantum_base = 1500,
                          bool shared_deficit = false);

  std::string policy_name() const override { return "miDRR"; }

  // --- white-box accessors for tests & the overhead bench ----------------

  /// DC_i (shared across interfaces).
  std::int64_t deficit_of(FlowId flow) const;

  /// SF_{flow,iface}.
  bool service_flag(FlowId flow, IfaceId iface) const;

  /// Flows skipped by Algorithm 3.2 walks so far (the quantity that grows
  /// with interface count in Fig 9).
  std::uint64_t flags_skipped() const { return flags_skipped_; }

 protected:
  std::int64_t& deficit(FlowId flow, IfaceId iface) override;
  void reset_deficit(FlowId flow) override;
  void walk(IfaceId iface, FlowRing& ring, SimTime now) override;
  void turn_granted(FlowId flow, IfaceId iface) override;
  void packet_served(FlowId flow, IfaceId iface) override;
  void on_flow_added(FlowId flow) override;
  void on_interface_added(IfaceId iface) override;
  void on_flow_removed(FlowId flow) override;

 private:
  bool shared_deficit_;
  std::vector<std::int64_t> dc_;              // [flow] (shared mode)
  FlowIfaceMatrix<std::int64_t> dc_per_;      // [flow][iface], flat
  FlowIfaceMatrix<std::uint8_t> sf_;          // [flow][iface], flat
  std::uint64_t flags_skipped_ = 0;
};

}  // namespace midrr
