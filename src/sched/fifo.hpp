// FIFO-aggregate baseline: one global arrival-order queue; an interface
// sends the oldest queued packet whose flow is willing to use it.
//
// No fairness of any kind -- a heavy flow starves everyone sharing its
// interfaces -- but work-conserving and preference-respecting.  Included as
// the "what a device does without a real scheduler" baseline for the
// ablation bench and tests.
#pragma once

#include <deque>

#include "sched/scheduler.hpp"

namespace midrr {

class FifoScheduler final : public Scheduler {
 public:
  FifoScheduler() = default;

  std::string policy_name() const override { return "fifo"; }

 protected:
  std::optional<Packet> select(IfaceId iface, SimTime now) override;

  void on_interface_added(IfaceId) override {}
  void on_interface_removed(IfaceId) override {}
  void on_flow_added(FlowId) override {}
  void on_flow_removed(FlowId flow) override;
  void on_willing_changed(FlowId, IfaceId, bool) override {}
  void on_backlogged(FlowId) override {}
  void on_enqueued(FlowId flow) override { order_.push_back(flow); }

 private:
  // Global arrival order: one entry per queued packet.  Entries whose flow
  // has since been removed are skipped lazily.
  std::deque<FlowId> order_;
};

}  // namespace midrr
