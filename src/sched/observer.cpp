#include "sched/observer.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace midrr {

const char* to_string(TraceRecorder::Event event) {
  switch (event) {
    case TraceRecorder::Event::kGrant: return "GRANT";
    case TraceRecorder::Event::kSkip: return "SKIP";
    case TraceRecorder::Event::kSend: return "SEND";
    case TraceRecorder::Event::kDrain: return "DRAIN";
  }
  return "?";
}

TraceRecorder::TraceRecorder(std::size_t capacity) : capacity_(capacity) {
  MIDRR_REQUIRE(capacity > 0, "trace capacity must be positive");
}

void TraceRecorder::push(Entry entry) {
  if (entries_.size() == capacity_) {
    entries_.pop_front();
    ++overflowed_;
  }
  entries_.push_back(entry);
  ++total_;
}

void TraceRecorder::bump(FlowIfaceMatrix<std::uint64_t>& table, FlowId flow,
                         IfaceId iface) {
  table.ensure(static_cast<std::size_t>(flow) + 1,
               static_cast<std::size_t>(iface) + 1);
  ++table.at(flow, iface);
}

void TraceRecorder::on_turn_granted(SimTime now, FlowId flow, IfaceId iface,
                                    std::int64_t deficit_after) {
  push({now, Event::kGrant, flow, iface, deficit_after});
  bump(grants_, flow, iface);
}

void TraceRecorder::on_flag_skip(SimTime now, FlowId flow, IfaceId iface) {
  push({now, Event::kSkip, flow, iface, 0});
  bump(skips_, flow, iface);
}

void TraceRecorder::on_packet_sent(SimTime now, FlowId flow, IfaceId iface,
                                   std::uint32_t bytes) {
  push({now, Event::kSend, flow, iface, bytes});
  bump(sends_, flow, iface);
}

void TraceRecorder::on_flow_drained(SimTime now, FlowId flow) {
  push({now, Event::kDrain, flow, kInvalidIface, 0});
}

std::uint64_t TraceRecorder::grants(FlowId flow, IfaceId iface) const {
  return grants_.get(flow, iface);
}

std::uint64_t TraceRecorder::skips(FlowId flow, IfaceId iface) const {
  return skips_.get(flow, iface);
}

std::uint64_t TraceRecorder::sends(FlowId flow, IfaceId iface) const {
  return sends_.get(flow, iface);
}

std::string TraceRecorder::render(std::size_t max_lines) const {
  std::ostringstream out;
  const std::size_t start =
      entries_.size() > max_lines ? entries_.size() - max_lines : 0;
  for (std::size_t i = start; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    out << "t=" << to_seconds(e.at) * 1e3 << "ms ";
    if (e.iface != kInvalidIface) out << "iface" << e.iface << ' ';
    out << to_string(e.event) << " flow" << e.flow;
    if (e.event == Event::kGrant) out << " dc=" << e.value;
    if (e.event == Event::kSend) out << " bytes=" << e.value;
    out << '\n';
  }
  return out.str();
}

void TraceRecorder::clear() {
  entries_.clear();
  grants_.clear();
  skips_.clear();
  sends_.clear();
  total_ = 0;
  overflowed_ = 0;
}

}  // namespace midrr
