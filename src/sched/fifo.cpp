#include "sched/fifo.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace midrr {

void FifoScheduler::on_flow_removed(FlowId flow) {
  std::erase(order_, flow);
}

std::optional<Packet> FifoScheduler::select(IfaceId iface, SimTime) {
  // Oldest entry whose flow is willing to use this interface.  The global
  // order holds one entry per queued packet; per-flow order within it
  // matches the per-flow FIFO queues, so taking the first willing entry
  // and popping that flow's head packet preserves arrival order.
  for (auto it = order_.begin(); it != order_.end(); ++it) {
    const FlowId flow = *it;
    if (!preferences().willing(flow, iface)) continue;
    MIDRR_ASSERT(!queue(flow).empty(), "FIFO mirror out of sync");
    order_.erase(it);
    return queue(flow).dequeue();
  }
  return std::nullopt;
}

}  // namespace midrr
