// Strict-priority baseline: each interface always serves its backlogged
// willing flow with the LARGEST weight (ties: lowest id).  Demonstrates why
// rate preferences must be relative shares, not priorities: low-weight
// flows starve whenever a heavier flow shares every one of their
// interfaces.
#pragma once

#include "sched/scheduler.hpp"

namespace midrr {

class StrictPriorityScheduler final : public Scheduler {
 public:
  StrictPriorityScheduler() = default;

  std::string policy_name() const override { return "strict-priority"; }

 protected:
  std::optional<Packet> select(IfaceId iface, SimTime now) override;

  void on_interface_added(IfaceId) override {}
  void on_interface_removed(IfaceId) override {}
  void on_flow_added(FlowId) override {}
  void on_flow_removed(FlowId) override {}
  void on_willing_changed(FlowId, IfaceId, bool) override {}
  void on_backlogged(FlowId) override {}
};

}  // namespace midrr
