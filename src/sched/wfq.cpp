#include "sched/wfq.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace midrr {

double PerIfaceWfqScheduler::virtual_time(IfaceId iface) const {
  return iface < vtime_.size() ? vtime_[iface] : 0.0;
}

void PerIfaceWfqScheduler::on_interface_added(IfaceId iface) {
  if (active_.size() <= iface) {
    active_.resize(static_cast<std::size_t>(iface) + 1);
    vtime_.resize(static_cast<std::size_t>(iface) + 1, 0.0);
  }
  finish_.ensure(preferences().flow_slots(), preferences().iface_slots());
}

void PerIfaceWfqScheduler::on_interface_removed(IfaceId iface) {
  if (iface < active_.size()) active_[iface].clear();
}

void PerIfaceWfqScheduler::on_flow_added(FlowId flow) {
  finish_.ensure(static_cast<std::size_t>(flow) + 1,
                 preferences().iface_slots());
  finish_.fill_row(flow, 0.0);
}

void PerIfaceWfqScheduler::deactivate_everywhere(FlowId flow) {
  for (auto& s : active_) s.erase(flow);
}

void PerIfaceWfqScheduler::on_flow_removed(FlowId flow) {
  deactivate_everywhere(flow);
}

void PerIfaceWfqScheduler::on_willing_changed(FlowId flow, IfaceId iface,
                                              bool value) {
  if (iface >= active_.size()) return;
  if (value && !queue(flow).empty()) {
    active_[iface].insert(flow);
    finish_.at(flow, iface) = std::max(finish_.at(flow, iface), vtime_[iface]);
  } else if (!value) {
    active_[iface].erase(flow);
  }
}

void PerIfaceWfqScheduler::on_backlogged(FlowId flow) {
  for (IfaceId j : preferences().ifaces_of(flow)) {
    if (j < active_.size()) {
      active_[j].insert(flow);
      // A (re-)entering flow starts no earlier than the tag currently in
      // service; while continuously backlogged its finish tag accumulates
      // on its own (clamping to V at every pick would starve low-weight
      // flows, whose candidate tag would be recomputed forward each time).
      finish_.at(flow, j) = std::max(finish_.at(flow, j), vtime_[j]);
    }
  }
}

std::optional<Packet> PerIfaceWfqScheduler::select(IfaceId iface, SimTime) {
  MIDRR_ASSERT(iface < active_.size(), "select on unknown interface");
  auto& act = active_[iface];
  if (act.empty()) return std::nullopt;

  // Pick the flow whose head packet has the smallest candidate finish tag.
  FlowId best = kInvalidFlow;
  double best_finish = std::numeric_limits<double>::infinity();
  for (FlowId flow : act) {
    const auto head = queue(flow).head_size();
    MIDRR_ASSERT(head.has_value(), "empty flow in WFQ active set");
    const double fin = finish_.at(flow, iface) +
                       static_cast<double>(*head) / preferences().weight(flow);
    if (fin < best_finish) {
      best_finish = fin;
      best = flow;
    }
  }
  MIDRR_ASSERT(best != kInvalidFlow, "WFQ found no candidate");

  auto packet = queue(best).dequeue();
  finish_.at(best, iface) = best_finish;
  vtime_[iface] = best_finish;  // SCFQ: V_j tracks the tag in service
  if (queue(best).empty()) {
    deactivate_everywhere(best);
  }
  return packet;
}

}  // namespace midrr
