// Packet-by-packet round robin per interface: the simplest baseline.
// One packet per flow per turn regardless of size or weight; unfair for
// mixed packet sizes and blind to rate preferences, included for the
// ablation benches and as the smallest possible policy implementation.
#pragma once

#include <vector>

#include "sched/ring.hpp"
#include "sched/scheduler.hpp"

namespace midrr {

class RoundRobinScheduler final : public Scheduler {
 public:
  RoundRobinScheduler() = default;

  std::string policy_name() const override { return "round-robin"; }

 protected:
  std::optional<Packet> select(IfaceId iface, SimTime now) override;

  void on_interface_added(IfaceId iface) override;
  void on_interface_removed(IfaceId iface) override;
  void on_flow_added(FlowId /*flow*/) override {}
  void on_flow_removed(FlowId flow) override;
  void on_willing_changed(FlowId flow, IfaceId iface, bool value) override;
  void on_backlogged(FlowId flow) override;

 private:
  std::vector<FlowRing> rings_;  // by IfaceId
};

}  // namespace midrr
