#include "sched/ring.hpp"

#include "util/assert.hpp"

namespace midrr {

void FlowRing::ensure_slot(FlowId flow) {
  if (flow >= next_.size()) {
    next_.resize(static_cast<std::size_t>(flow) + 1, kInvalidFlow);
    prev_.resize(static_cast<std::size_t>(flow) + 1, kInvalidFlow);
  }
}

FlowId FlowRing::current() const {
  MIDRR_REQUIRE(size_ > 0, "current() on empty ring");
  return current_;
}

FlowId FlowRing::advance() {
  MIDRR_REQUIRE(size_ > 0, "advance() on empty ring");
  current_ = next_[current_];
  return current_;
}

void FlowRing::insert(FlowId flow) {
  MIDRR_REQUIRE(!contains(flow), "flow already in ring");
  ensure_slot(flow);
  if (size_ == 0) {
    next_[flow] = flow;
    prev_[flow] = flow;
    current_ = flow;
    turn_open_ = false;  // the newcomer has not been granted a quantum yet
  } else {
    // Link before the current element: the ring is traversed forward, so
    // this flow is visited after every other flow of the current round.
    const FlowId tail = prev_[current_];
    next_[tail] = flow;
    prev_[flow] = tail;
    next_[flow] = current_;
    prev_[current_] = flow;
  }
  ++size_;
}

void FlowRing::remove(FlowId flow) {
  MIDRR_REQUIRE(contains(flow), "removing flow not in ring");
  if (flow == current_) {
    current_ = next_[flow];
    turn_open_ = false;
  }
  next_[prev_[flow]] = next_[flow];
  prev_[next_[flow]] = prev_[flow];
  next_[flow] = kInvalidFlow;
  prev_[flow] = kInvalidFlow;
  --size_;
  if (size_ == 0) {
    current_ = kInvalidFlow;
    turn_open_ = false;
  }
}

}  // namespace midrr
