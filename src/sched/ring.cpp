#include "sched/ring.hpp"

#include "util/assert.hpp"

namespace midrr {

FlowId FlowRing::current() const {
  MIDRR_REQUIRE(!order_.empty(), "current() on empty ring");
  return *current_;
}

FlowId FlowRing::advance() {
  MIDRR_REQUIRE(!order_.empty(), "advance() on empty ring");
  ++current_;
  if (current_ == order_.end()) current_ = order_.begin();
  return *current_;
}

void FlowRing::insert(FlowId flow) {
  MIDRR_REQUIRE(!contains(flow), "flow already in ring");
  if (order_.empty()) {
    order_.push_back(flow);
    current_ = order_.begin();
    pos_[flow] = current_;
    turn_open_ = false;  // the newcomer has not been granted a quantum yet
    return;
  }
  // Insert before the current element: the ring is traversed forward, so
  // this flow is visited after every other flow of the current round.
  auto it = order_.insert(current_, flow);
  pos_[flow] = it;
}

void FlowRing::remove(FlowId flow) {
  auto found = pos_.find(flow);
  MIDRR_REQUIRE(found != pos_.end(), "removing flow not in ring");
  auto it = found->second;
  if (it == current_) {
    ++current_;
    if (current_ == order_.end() && order_.size() > 1) {
      current_ = order_.begin();
    }
    turn_open_ = false;
  }
  order_.erase(it);
  pos_.erase(found);
  if (order_.empty()) {
    current_ = order_.end();
    turn_open_ = false;
  }
}

}  // namespace midrr
