#include "sched/scheduler.hpp"

#include "sched/drr.hpp"
#include "sched/fifo.hpp"
#include "sched/hier_midrr.hpp"
#include "sched/midrr.hpp"
#include "sched/observer.hpp"
#include "sched/priority.hpp"
#include "sched/round_robin.hpp"
#include "sched/wfq.hpp"
#include "util/assert.hpp"

namespace midrr {

IfaceId Scheduler::add_interface(std::string name) {
  const IfaceId iface = prefs_.add_interface(std::move(name));
  sent_.ensure(prefs_.flow_slots(), prefs_.iface_slots());
  on_interface_added(iface);
  return iface;
}

void Scheduler::remove_interface(IfaceId iface) {
  MIDRR_REQUIRE(prefs_.iface_exists(iface), "removing unknown interface");
  on_interface_removed(iface);
  prefs_.remove_interface(iface);
}

FlowId Scheduler::add_flow(const FlowSpec& spec) {
  const FlowId flow = prefs_.add_flow(spec.weight, spec.willing, spec.name);
  if (queues_.size() <= flow) {
    queues_.resize(static_cast<std::size_t>(flow) + 1);
  }
  queues_[flow] = FlowQueue(spec.queue_capacity_bytes);
  sent_.ensure(prefs_.flow_slots(), prefs_.iface_slots());
  sent_.fill_row(flow, 0);
  on_flow_added(flow);
  return flow;
}

void Scheduler::remove_flow(FlowId flow) {
  MIDRR_REQUIRE(prefs_.flow_exists(flow), "removing unknown flow");
  on_flow_removed(flow);
  queues_[flow].clear();
  prefs_.remove_flow(flow);
}

void Scheduler::set_willing(FlowId flow, IfaceId iface, bool value) {
  if (prefs_.willing(flow, iface) == value) return;
  prefs_.set_willing(flow, iface, value);
  on_willing_changed(flow, iface, value);
}

void Scheduler::set_weight(FlowId flow, double weight) {
  prefs_.set_weight(flow, weight);
  on_weight_changed(flow);
}

FlowQueue& Scheduler::queue(FlowId flow) {
  MIDRR_REQUIRE(prefs_.flow_exists(flow), "unknown flow");
  return queues_[flow];
}

const FlowQueue& Scheduler::queue(FlowId flow) const {
  MIDRR_REQUIRE(prefs_.flow_exists(flow), "unknown flow");
  return queues_[flow];
}

EnqueueResult Scheduler::enqueue(Packet packet, SimTime now) {
  MIDRR_REQUIRE(prefs_.flow_exists(packet.flow), "enqueue for unknown flow");
  const FlowId flow = packet.flow;
  FlowQueue& q = queues_[flow];
  const bool was_empty = q.empty();
  packet.enqueued_at = now;
  EnqueueResult result;
  result.accepted = q.enqueue(std::move(packet));
  result.became_backlogged = result.accepted && was_empty;
  if (result.became_backlogged) {
    on_backlogged(flow);
  }
  if (result.accepted) {
    on_enqueued(flow);
  }
  return result;
}

EnqueueBatchResult Scheduler::enqueue_batch(std::span<Packet> packets,
                                            SimTime /*now*/) {
  EnqueueBatchResult totals;
  for (Packet& packet : packets) {
    const SimTime stamp = packet.enqueued_at;
    const std::uint32_t size = packet.size_bytes;
    const EnqueueResult result = enqueue(std::move(packet), stamp);
    if (result.accepted) {
      ++totals.accepted;
      totals.accepted_bytes += size;
    } else {
      ++totals.dropped;
    }
  }
  return totals;
}

void Scheduler::note_dequeued(const Packet& packet, IfaceId iface,
                              SimTime now) {
  MIDRR_ASSERT(prefs_.willing(packet.flow, iface),
               "policy violated an interface preference");
  note_sent(packet.flow, iface, packet.size_bytes);
  if (observer_ != nullptr) {
    observer_->on_packet_sent(now, packet.flow, iface, packet.size_bytes);
    if (queues_[packet.flow].empty()) {
      observer_->on_flow_drained(now, packet.flow);
    }
  }
}

std::optional<Packet> Scheduler::dequeue(IfaceId iface, SimTime now) {
  MIDRR_REQUIRE(prefs_.iface_exists(iface), "dequeue for unknown interface");
  auto packet = select(iface, now);
  if (packet) {
    note_dequeued(*packet, iface, now);
    if (observer_ != nullptr) {
      observer_->on_packets_sent(now, iface, 1, packet->size_bytes);
    }
  }
  return packet;
}

std::size_t Scheduler::dequeue_burst(IfaceId iface, std::uint64_t byte_budget,
                                     SimTime now, std::vector<Packet>& out) {
  MIDRR_REQUIRE(prefs_.iface_exists(iface), "dequeue for unknown interface");
  // A zero budget must be a guaranteed no-op: no select() call, so no DRR
  // turn is granted and no deficit/service-flag state moves.  Callers that
  // clamp signed budgets (the runtime's pacer) rely on this.
  if (byte_budget == 0) return 0;
  std::size_t count = 0;
  std::uint64_t bytes = 0;
  while (bytes < byte_budget) {
    auto packet = select(iface, now);
    if (!packet) break;
    note_dequeued(*packet, iface, now);
    bytes += packet->size_bytes;
    out.push_back(std::move(*packet));
    ++count;
  }
  if (count > 0 && observer_ != nullptr) {
    observer_->on_packets_sent(now, iface, count, bytes);
  }
  return count;
}

bool Scheduler::has_eligible(IfaceId iface) const {
  if (!prefs_.iface_exists(iface)) return false;
  for (FlowId flow : prefs_.flows_willing(iface)) {
    if (!queues_[flow].empty()) return true;
  }
  return false;
}

std::uint64_t Scheduler::backlog_bytes(FlowId flow) const {
  return queue(flow).backlog_bytes();
}

std::size_t Scheduler::backlog_packets(FlowId flow) const {
  return queue(flow).backlog_packets();
}

const FlowQueueStats& Scheduler::queue_stats(FlowId flow) const {
  return queue(flow).stats();
}

void Scheduler::note_sent(FlowId flow, IfaceId iface, std::uint32_t bytes) {
  sent_.ensure(static_cast<std::size_t>(flow) + 1,
               static_cast<std::size_t>(iface) + 1);
  sent_.at(flow, iface) += bytes;
}

std::uint64_t Scheduler::sent_bytes(FlowId flow, IfaceId iface) const {
  return sent_.get(flow, iface);
}

std::uint64_t Scheduler::sent_bytes(FlowId flow) const {
  if (flow >= sent_.rows()) return 0;
  std::uint64_t total = 0;
  const std::uint64_t* row = sent_.row(flow);
  for (std::size_t j = 0; j < sent_.cols(); ++j) total += row[j];
  return total;
}

const char* to_string(Policy policy) {
  switch (policy) {
    case Policy::kMiDrr: return "miDRR";
    case Policy::kHierMiDrr: return "hier-miDRR";
    case Policy::kNaiveDrr: return "naive-DRR";
    case Policy::kPerIfaceWfq: return "per-iface-WFQ";
    case Policy::kRoundRobin: return "round-robin";
    case Policy::kFifo: return "fifo";
    case Policy::kStrictPriority: return "strict-priority";
    case Policy::kOracle: return "oracle-maxmin";
  }
  return "?";
}

std::unique_ptr<Scheduler> make_scheduler(Policy policy,
                                          const SchedulerOptions& options) {
  std::unique_ptr<Scheduler> sched;
  switch (policy) {
    case Policy::kMiDrr:
      sched = std::make_unique<MiDrrScheduler>(options.quantum_base,
                                               options.shared_deficit);
      break;
    case Policy::kHierMiDrr:
      sched = std::make_unique<HierMiDrrScheduler>(options.quantum_base);
      break;
    case Policy::kNaiveDrr:
      sched = std::make_unique<NaiveDrrScheduler>(options.quantum_base);
      break;
    case Policy::kPerIfaceWfq:
      sched = std::make_unique<PerIfaceWfqScheduler>();
      break;
    case Policy::kRoundRobin:
      sched = std::make_unique<RoundRobinScheduler>();
      break;
    case Policy::kFifo:
      sched = std::make_unique<FifoScheduler>();
      break;
    case Policy::kStrictPriority:
      sched = std::make_unique<StrictPriorityScheduler>();
      break;
    case Policy::kOracle:
      MIDRR_REQUIRE(false,
                    "the oracle needs a capacity provider; construct "
                    "OracleMaxMinScheduler directly (ScenarioRunner wires "
                    "this up automatically)");
  }
  MIDRR_REQUIRE(sched != nullptr, "unknown policy");
  if (options.observer != nullptr) sched->set_observer(options.observer);
  return sched;
}

}  // namespace midrr
