#include "sched/scheduler.hpp"

#include "sched/drr.hpp"
#include "sched/fifo.hpp"
#include "sched/midrr.hpp"
#include "sched/priority.hpp"
#include "sched/round_robin.hpp"
#include "sched/wfq.hpp"
#include "util/assert.hpp"

namespace midrr {

IfaceId Scheduler::add_interface(std::string name) {
  const IfaceId iface = prefs_.add_interface(std::move(name));
  for (auto& row : sent_) {
    row.resize(static_cast<std::size_t>(iface) + 1, 0);
  }
  on_interface_added(iface);
  return iface;
}

void Scheduler::remove_interface(IfaceId iface) {
  MIDRR_REQUIRE(prefs_.iface_exists(iface), "removing unknown interface");
  on_interface_removed(iface);
  prefs_.remove_interface(iface);
}

FlowId Scheduler::add_flow(double weight, const std::vector<IfaceId>& willing,
                           std::string name,
                           std::uint64_t queue_capacity_bytes) {
  const FlowId flow = prefs_.add_flow(weight, willing, std::move(name));
  if (queues_.size() <= flow) {
    queues_.resize(static_cast<std::size_t>(flow) + 1);
    sent_.resize(static_cast<std::size_t>(flow) + 1);
  }
  queues_[flow] = FlowQueue(queue_capacity_bytes);
  sent_[flow].assign(prefs_.iface_slots(), 0);
  on_flow_added(flow);
  return flow;
}

void Scheduler::remove_flow(FlowId flow) {
  MIDRR_REQUIRE(prefs_.flow_exists(flow), "removing unknown flow");
  on_flow_removed(flow);
  queues_[flow].clear();
  prefs_.remove_flow(flow);
}

void Scheduler::set_willing(FlowId flow, IfaceId iface, bool value) {
  if (prefs_.willing(flow, iface) == value) return;
  prefs_.set_willing(flow, iface, value);
  on_willing_changed(flow, iface, value);
}

void Scheduler::set_weight(FlowId flow, double weight) {
  prefs_.set_weight(flow, weight);
  on_weight_changed(flow);
}

FlowQueue& Scheduler::queue(FlowId flow) {
  MIDRR_REQUIRE(prefs_.flow_exists(flow), "unknown flow");
  return queues_[flow];
}

const FlowQueue& Scheduler::queue(FlowId flow) const {
  MIDRR_REQUIRE(prefs_.flow_exists(flow), "unknown flow");
  return queues_[flow];
}

EnqueueResult Scheduler::enqueue(Packet packet, SimTime now) {
  MIDRR_REQUIRE(prefs_.flow_exists(packet.flow), "enqueue for unknown flow");
  const FlowId flow = packet.flow;
  FlowQueue& q = queues_[flow];
  const bool was_empty = q.empty();
  packet.enqueued_at = now;
  EnqueueResult result;
  result.accepted = q.enqueue(std::move(packet));
  result.became_backlogged = result.accepted && was_empty;
  if (result.became_backlogged) {
    on_backlogged(flow);
  }
  if (result.accepted) {
    on_enqueued(flow);
  }
  return result;
}

std::optional<Packet> Scheduler::dequeue(IfaceId iface, SimTime now) {
  MIDRR_REQUIRE(prefs_.iface_exists(iface), "dequeue for unknown interface");
  auto packet = select(iface, now);
  if (packet) {
    MIDRR_ASSERT(prefs_.willing(packet->flow, iface),
                 "policy violated an interface preference");
    note_sent(packet->flow, iface, packet->size_bytes);
  }
  return packet;
}

bool Scheduler::has_eligible(IfaceId iface) const {
  if (!prefs_.iface_exists(iface)) return false;
  for (FlowId flow : prefs_.flows_willing(iface)) {
    if (!queues_[flow].empty()) return true;
  }
  return false;
}

std::uint64_t Scheduler::backlog_bytes(FlowId flow) const {
  return queue(flow).backlog_bytes();
}

std::size_t Scheduler::backlog_packets(FlowId flow) const {
  return queue(flow).backlog_packets();
}

const FlowQueueStats& Scheduler::queue_stats(FlowId flow) const {
  return queue(flow).stats();
}

void Scheduler::note_sent(FlowId flow, IfaceId iface, std::uint32_t bytes) {
  auto& row = sent_[flow];
  if (row.size() <= iface) row.resize(static_cast<std::size_t>(iface) + 1, 0);
  row[iface] += bytes;
}

std::uint64_t Scheduler::sent_bytes(FlowId flow, IfaceId iface) const {
  if (flow >= sent_.size() || iface >= sent_[flow].size()) return 0;
  return sent_[flow][iface];
}

std::uint64_t Scheduler::sent_bytes(FlowId flow) const {
  if (flow >= sent_.size()) return 0;
  std::uint64_t total = 0;
  for (std::uint64_t v : sent_[flow]) total += v;
  return total;
}

const char* to_string(Policy policy) {
  switch (policy) {
    case Policy::kMiDrr: return "miDRR";
    case Policy::kNaiveDrr: return "naive-DRR";
    case Policy::kPerIfaceWfq: return "per-iface-WFQ";
    case Policy::kRoundRobin: return "round-robin";
    case Policy::kFifo: return "fifo";
    case Policy::kStrictPriority: return "strict-priority";
    case Policy::kOracle: return "oracle-maxmin";
  }
  return "?";
}

std::unique_ptr<Scheduler> make_scheduler(Policy policy,
                                          std::uint32_t quantum_base) {
  switch (policy) {
    case Policy::kMiDrr:
      return std::make_unique<MiDrrScheduler>(quantum_base);
    case Policy::kNaiveDrr:
      return std::make_unique<NaiveDrrScheduler>(quantum_base);
    case Policy::kPerIfaceWfq:
      return std::make_unique<PerIfaceWfqScheduler>();
    case Policy::kRoundRobin:
      return std::make_unique<RoundRobinScheduler>();
    case Policy::kFifo:
      return std::make_unique<FifoScheduler>();
    case Policy::kStrictPriority:
      return std::make_unique<StrictPriorityScheduler>();
    case Policy::kOracle:
      MIDRR_REQUIRE(false,
                    "the oracle needs a capacity provider; construct "
                    "OracleMaxMinScheduler directly (ScenarioRunner wires "
                    "this up automatically)");
  }
  MIDRR_REQUIRE(false, "unknown policy");
  return nullptr;
}

}  // namespace midrr
