// FlowRing: the per-interface round-robin list of active flows.
//
// DRR-family schedulers keep, for each interface j, the ring of backlogged
// flows willing to use j (the paper's F_j intersected with B) together with
// the current position C_j.  Insertion places a flow so that the scheduler
// reaches it at the end of the current round; removal of the current flow
// hands the position to its successor and marks that the successor has not
// yet been granted its quantum ("turn not open").
//
// Representation: an intrusive, index-linked circular doubly-linked list.
// next_[f] / prev_[f] are flow ids (kInvalidFlow while f is not a member),
// stored in flat arrays indexed by FlowId -- flow ids are dense and never
// reused, so the arrays only ever grow.  Every operation is O(1), membership
// is one array load, and steady-state insert/remove/advance performs zero
// heap allocation (unlike the previous std::list + std::unordered_map
// layout, which allocated a node per insert and chased two pointers per
// advance).
#pragma once

#include <cstddef>
#include <vector>

#include "flow/ids.hpp"

namespace midrr {

class FlowRing {
 public:
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  bool contains(FlowId flow) const {
    return flow < next_.size() && next_[flow] != kInvalidFlow;
  }

  /// True while the current flow has been granted its quantum for this
  /// turn; cleared on insertion into an empty ring and on removal of the
  /// current flow.
  bool turn_open() const { return turn_open_; }
  void open_turn() { turn_open_ = true; }

  /// The flow at position C_j.  Ring must be non-empty.
  FlowId current() const;

  /// Moves C_j to the next flow in round-robin order and returns it.
  FlowId advance();

  /// Adds a newly backlogged flow.  It is placed immediately before the
  /// current position, i.e. it will be reached last in the current round
  /// (a new flow must not preempt flows already waiting their turn).
  void insert(FlowId flow);

  /// Removes a flow (it drained, ended, or became unwilling).  If it was
  /// the current flow, the successor becomes current and the turn closes.
  void remove(FlowId flow);

 private:
  void ensure_slot(FlowId flow);

  std::vector<FlowId> next_;  // by FlowId; kInvalidFlow = not in ring
  std::vector<FlowId> prev_;
  FlowId current_ = kInvalidFlow;
  std::size_t size_ = 0;
  bool turn_open_ = false;
};

}  // namespace midrr
