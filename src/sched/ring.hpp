// FlowRing: the per-interface round-robin list of active flows.
//
// DRR-family schedulers keep, for each interface j, the ring of backlogged
// flows willing to use j (the paper's F_j intersected with B) together with
// the current position C_j.  Insertion places a flow so that the scheduler
// reaches it at the end of the current round; removal of the current flow
// hands the position to its successor and marks that the successor has not
// yet been granted its quantum ("turn not open").
#pragma once

#include <list>
#include <unordered_map>

#include "flow/ids.hpp"

namespace midrr {

class FlowRing {
 public:
  bool empty() const { return order_.empty(); }
  std::size_t size() const { return order_.size(); }
  bool contains(FlowId flow) const { return pos_.count(flow) > 0; }

  /// True while the current flow has been granted its quantum for this
  /// turn; cleared on insertion into an empty ring and on removal of the
  /// current flow.
  bool turn_open() const { return turn_open_; }
  void open_turn() { turn_open_ = true; }

  /// The flow at position C_j.  Ring must be non-empty.
  FlowId current() const;

  /// Moves C_j to the next flow in round-robin order and returns it.
  FlowId advance();

  /// Adds a newly backlogged flow.  It is placed immediately before the
  /// current position, i.e. it will be reached last in the current round
  /// (a new flow must not preempt flows already waiting their turn).
  void insert(FlowId flow);

  /// Removes a flow (it drained, ended, or became unwilling).  If it was
  /// the current flow, the successor becomes current and the turn closes.
  void remove(FlowId flow);

 private:
  std::list<FlowId> order_;
  std::list<FlowId>::iterator current_ = order_.end();
  std::unordered_map<FlowId, std::list<FlowId>::iterator> pos_;
  bool turn_open_ = false;
};

}  // namespace midrr
