// Scheduler observability: a hook interface for the DRR family's three
// micro-events -- turn grants, service-flag skips, packet hand-offs -- plus
// a ring-buffer recorder that turns them into an inspectable timeline.
//
// This is how you SEE miDRR think: on Fig 1(c), the recorder shows
// interface 2 skipping flow a (flag set by interface 1) every round, which
// is the entire mechanism in one trace line.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "flow/ids.hpp"
#include "util/flat_matrix.hpp"
#include "util/time.hpp"

namespace midrr {

/// Observer of scheduler micro-events.  All callbacks default to no-ops;
/// implementations must be cheap (called on the hot path).
class SchedulerObserver {
 public:
  virtual ~SchedulerObserver() = default;

  /// Flow was granted a service turn on iface; `deficit_after` includes
  /// the fresh quantum.
  virtual void on_turn_granted(SimTime /*now*/, FlowId /*flow*/,
                               IfaceId /*iface*/,
                               std::int64_t /*deficit_after*/) {}

  /// The Algorithm 3.2 walk skipped flow on iface (its service flag was
  /// set; it has been cleared).
  virtual void on_flag_skip(SimTime /*now*/, FlowId /*flow*/,
                            IfaceId /*iface*/) {}

  /// A packet of `bytes` was handed to iface.
  virtual void on_packet_sent(SimTime /*now*/, FlowId /*flow*/,
                              IfaceId /*iface*/, std::uint32_t /*bytes*/) {}

  /// Batched hand-off summary: one call per dequeue()/dequeue_burst() that
  /// moved at least one packet, emitted after the per-packet
  /// on_packet_sent events.  Counting observers (telemetry) fold their
  /// per-packet increments into this one callback so a burst of N packets
  /// costs two atomic bumps instead of 2N; tracing observers use the
  /// per-packet events and ignore this.
  virtual void on_packets_sent(SimTime /*now*/, IfaceId /*iface*/,
                               std::uint64_t /*packets*/,
                               std::uint64_t /*bytes*/) {}

  /// The flow's queue drained (it left the backlogged set).
  virtual void on_flow_drained(SimTime /*now*/, FlowId /*flow*/) {}
};

/// Ring-buffer recorder with per-(flow, iface) counters.
class TraceRecorder final : public SchedulerObserver {
 public:
  enum class Event : std::uint8_t { kGrant, kSkip, kSend, kDrain };

  struct Entry {
    SimTime at = 0;
    Event event = Event::kGrant;
    FlowId flow = kInvalidFlow;
    IfaceId iface = kInvalidIface;
    std::int64_t value = 0;  ///< deficit after grant / bytes sent
  };

  /// Keeps at most `capacity` most-recent events.
  explicit TraceRecorder(std::size_t capacity = 4096);

  void on_turn_granted(SimTime now, FlowId flow, IfaceId iface,
                       std::int64_t deficit_after) override;
  void on_flag_skip(SimTime now, FlowId flow, IfaceId iface) override;
  void on_packet_sent(SimTime now, FlowId flow, IfaceId iface,
                      std::uint32_t bytes) override;
  void on_flow_drained(SimTime now, FlowId flow) override;

  const std::deque<Entry>& entries() const { return entries_; }
  std::uint64_t grants(FlowId flow, IfaceId iface) const;
  std::uint64_t skips(FlowId flow, IfaceId iface) const;
  std::uint64_t sends(FlowId flow, IfaceId iface) const;
  std::uint64_t total_events() const { return total_; }

  /// Events evicted because the ring was full: total_events() -
  /// entries().size() once the buffer wraps.  Consumers check this to
  /// detect truncation instead of silently analyzing a partial timeline;
  /// the runtime exports it as a metric and the Chrome-trace exporter
  /// embeds it as an `events_lost` annotation.
  std::uint64_t overflowed() const { return overflowed_; }

  /// "t=12.5ms iface1 SKIP flow0" ... one line per recent entry.
  std::string render(std::size_t max_lines = 50) const;

  void clear();

 private:
  void push(Entry entry);
  static void bump(FlowIfaceMatrix<std::uint64_t>& table, FlowId flow,
                   IfaceId iface);

  std::size_t capacity_;
  std::deque<Entry> entries_;
  std::uint64_t total_ = 0;
  std::uint64_t overflowed_ = 0;
  FlowIfaceMatrix<std::uint64_t> grants_;  // [flow][iface], flat
  FlowIfaceMatrix<std::uint64_t> skips_;
  FlowIfaceMatrix<std::uint64_t> sends_;
};

const char* to_string(TraceRecorder::Event event);

}  // namespace midrr
