#include "sched/priority.hpp"

namespace midrr {

std::optional<Packet> StrictPriorityScheduler::select(IfaceId iface,
                                                      SimTime) {
  FlowId best = kInvalidFlow;
  double best_weight = -1.0;
  for (const FlowId flow : preferences().flows_willing(iface)) {
    if (queue(flow).empty()) continue;
    const double w = preferences().weight(flow);
    if (w > best_weight) {
      best_weight = w;
      best = flow;
    }
  }
  if (best == kInvalidFlow) return std::nullopt;
  return queue(best).dequeue();
}

}  // namespace midrr
