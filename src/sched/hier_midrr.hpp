// Hierarchical miDRR: two-level deficit round robin over flow classes.
//
// Flows sharing an identical local preference row Pi, weight phi, and
// queue bound are interned into one FlowClass (flow/class_table.hpp).  The
// outer level runs the paper's miDRR -- per-interface rings, deficit
// counters, and Algorithm 3.2 service flags -- over CLASSES instead of
// flows; the inner level runs plain equal-quantum DRR over the backlogged
// members of the class currently holding the outer turn.  All per-(unit,
// interface) state (deficits, flags, rings, turn counts) is keyed by
// ClassId, so its footprint is O(classes x interfaces) no matter how many
// flows share each class; per-flow state shrinks to one class id, one
// member-ring link pair, and one scalar member deficit.
//
// Fairness argument (the class-level Theorem 3): a class with m backlogged
// members and per-member weight phi receives an outer quantum of
// m * phi / phi_min * quantum_base, i.e. exactly the summed quantum its
// members would have drawn individually under flat miDRR, and the service
// flags suppress cross-interface double service per class turn exactly as
// they do per flow turn in the flat scheduler.  The inner DRR splits the
// class's allocation equally among members (equal weights by class
// definition).  With every class a singleton the two levels collapse and
// the schedule is packet-for-packet identical to MiDrrScheduler
// (tests/test_class_sched.cpp pins this).
//
// Observer note: turn-granted and flag-skip events fire at the OUTER level
// and carry the ClassId in the flow field (turn-granted reports the member
// about to be served); per-packet send/drain events still carry flow ids.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flow/class_table.hpp"
#include "sched/ring.hpp"
#include "sched/scheduler.hpp"
#include "util/flat_matrix.hpp"

namespace midrr {

class HierMiDrrScheduler final : public Scheduler {
 public:
  explicit HierMiDrrScheduler(std::uint32_t quantum_base = 1500);

  std::string policy_name() const override { return "hier-miDRR"; }

  std::uint32_t quantum_base() const { return quantum_base_; }

  EnqueueBatchResult enqueue_batch(std::span<Packet> packets,
                                   SimTime now) override;
  bool has_eligible(IfaceId iface) const override;

  // --- class introspection (tests, /classes route, bridges) --------------

  /// The class a live flow currently belongs to; kInvalidClass otherwise.
  ClassId class_of(FlowId flow) const;

  /// Classes with at least one member.
  std::size_t class_count() const { return table_.live_count(); }

  /// Interned identity of a class (valid for any id ever handed out).
  const ClassKey& class_key(ClassId cls) const { return table_.key(cls); }

  std::size_t class_members(ClassId cls) const {
    return table_.member_count(cls);
  }

  /// One past the largest class id ever minted.
  std::size_t class_slots() const { return table_.slots(); }

  /// Outer deficit counter DC_{cls,iface}.
  std::int64_t class_deficit(ClassId cls, IfaceId iface) const {
    return dc_.get(cls, iface);
  }

  /// Outer service flag SF_{cls,iface}.
  bool class_service_flag(ClassId cls, IfaceId iface) const {
    return sf_.get(cls, iface) != 0;
  }

  /// Outer turns granted to `cls` on `iface`.
  std::uint64_t class_turns(ClassId cls, IfaceId iface) const {
    return turn_count_.get(cls, iface);
  }

  /// Classes skipped by Algorithm 3.2 walks so far.
  std::uint64_t flags_skipped() const { return flags_skipped_; }

  /// Inner (member) deficit of a flow.
  std::int64_t member_deficit(FlowId flow) const {
    return flow < mdc_.size() ? mdc_[flow] : 0;
  }

 protected:
  std::optional<Packet> select(IfaceId iface, SimTime now) override;
  void on_interface_added(IfaceId iface) override;
  void on_interface_removed(IfaceId iface) override;
  void on_flow_added(FlowId flow) override;
  void on_flow_removed(FlowId flow) override;
  void on_willing_changed(FlowId flow, IfaceId iface, bool value) override;
  void on_weight_changed(FlowId flow) override;
  void on_backlogged(FlowId flow) override;

 private:
  /// Per-class scheduling state.  The member ring is intrusive over the
  /// shared mnext_/mprev_ arrays (a flow belongs to exactly one class, so
  /// one global link pair per flow suffices for every class's ring).
  struct ClassState {
    FlowId mcurrent = kInvalidFlow;  ///< inner ring position; invalid = empty
    std::size_t backlogged = 0;      ///< members currently in the inner ring
    bool mturn_open = false;  ///< current member holds an inner quantum grant
  };

  /// Outer quantum: m_backlogged * phi / phi_min * quantum_base.
  std::int64_t class_quantum(ClassId cls) const;

  void ensure_class(ClassId cls);
  void ensure_flow_slot(FlowId flow);

  /// Interns the flow's CURRENT (Pi row, phi, bound) and attaches it as a
  /// member; inserts into rings when the flow is backlogged.
  void attach_flow(FlowId flow);

  /// Detaches the flow from its class, preserving its queue; empties clean
  /// the class's scheduling state so a revival starts fresh.
  void detach_flow(FlowId flow);

  void member_insert(ClassState& cs, FlowId flow);
  void member_remove(ClassState& cs, FlowId flow);
  void member_advance(ClassState& cs);

  /// A class gained its first backlogged member: join the per-interface
  /// rings of its willing row.
  void class_backlogged(ClassId cls);

  /// A class lost its last backlogged member: leave every ring and reset
  /// its outer deficit row (the flat scheduler's BL = 0 rule, per class).
  void class_drained(ClassId cls);

  /// Outer turn step: advance (optionally), run the service-flag walk,
  /// grant the class quantum, set flags at the other interfaces.
  void enter_class_turn(IfaceId iface, FlowRing& ring, bool advance_first,
                        SimTime now);

  std::uint32_t quantum_base_;
  ClassTable table_;
  std::vector<ClassId> class_of_;        // by FlowId; kInvalidClass = detached
  std::vector<ClassState> classes_;      // by ClassId
  std::vector<FlowRing> rings_;          // by IfaceId, over ClassIds
  FlowIfaceMatrix<std::int64_t> dc_;     // [class][iface]
  FlowIfaceMatrix<std::uint8_t> sf_;     // [class][iface]
  FlowIfaceMatrix<std::uint64_t> turn_count_;  // [class][iface]
  std::vector<FlowId> mnext_;            // member-ring links, by FlowId
  std::vector<FlowId> mprev_;
  std::vector<std::int64_t> mdc_;        // inner deficit, by FlowId
  std::uint64_t flags_skipped_ = 0;
  // Cache of the minimum live per-member weight (quantum normalization),
  // keyed on the preference registry version like the flat DRR family.
  mutable double min_weight_ = 1.0;
  mutable std::uint64_t min_weight_version_ = ~0ull;
};

}  // namespace midrr
