#include "sched/drr.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace midrr {

DrrFamilyScheduler::DrrFamilyScheduler(std::uint32_t quantum_base)
    : quantum_base_(quantum_base) {
  MIDRR_REQUIRE(quantum_base > 0, "quantum base must be positive");
}

EnqueueBatchResult DrrFamilyScheduler::enqueue_batch(
    std::span<Packet> packets, SimTime /*now*/) {
  EnqueueBatchResult totals;
  for (Packet& packet : packets) {
    const FlowId flow = packet.flow;
    const std::uint32_t size = packet.size_bytes;
    FlowQueue& q = queue(flow);  // REQUIREs the flow exists
    const bool was_empty = q.empty();
    if (q.enqueue(std::move(packet))) {
      ++totals.accepted;
      totals.accepted_bytes += size;
      if (was_empty) on_backlogged(flow);
    } else {
      ++totals.dropped;
    }
  }
  return totals;
}

std::int64_t DrrFamilyScheduler::quantum_of(FlowId flow) const {
  // Quanta are normalized by the smallest live weight so that EVERY flow's
  // quantum is >= quantum_base (callers keep quantum_base >= MTU).  A
  // quantum below the packet size would make the scheduler rotate through
  // the ring several times at the same instant; for miDRR those extra
  // same-instant passes clear a competitor's service flag and then serve it
  // before any other interface has had time to re-set the flag, which
  // destroys the flag's "served recently elsewhere" meaning.  (Classical
  // DRR recommends quantum >= MTU for the same O(1) reason.)
  const double w = preferences().weight(flow);
  if (min_weight_version_ != preferences().version()) {
    min_weight_version_ = preferences().version();
    min_weight_ = w;
    for (const FlowId f : preferences().flows()) {
      min_weight_ = std::min(min_weight_, preferences().weight(f));
    }
  }
  const auto q = static_cast<std::int64_t>(std::llround(
      w / min_weight_ * static_cast<double>(quantum_base_)));
  return q > 0 ? q : 1;
}

std::uint64_t DrrFamilyScheduler::turns(FlowId flow, IfaceId iface) const {
  return turn_count_.get(flow, iface);
}

FlowRing& DrrFamilyScheduler::ring(IfaceId iface) {
  MIDRR_ASSERT(iface < rings_.size(), "ring for unknown interface");
  return rings_[iface];
}

const FlowRing* DrrFamilyScheduler::ring_if_present(IfaceId iface) const {
  return iface < rings_.size() ? &rings_[iface] : nullptr;
}

void DrrFamilyScheduler::remove_from_all_rings(FlowId flow) {
  for (IfaceId j = 0; j < rings_.size(); ++j) {
    if (rings_[j].contains(flow)) rings_[j].remove(flow);
  }
}

void DrrFamilyScheduler::on_interface_added(IfaceId iface) {
  if (rings_.size() <= iface) rings_.resize(static_cast<std::size_t>(iface) + 1);
  turn_count_.ensure(preferences().flow_slots(), preferences().iface_slots());
}

void DrrFamilyScheduler::on_interface_removed(IfaceId iface) {
  // Flows stay queued; they simply lose this ring.  Their deficit state is
  // untouched (they keep whatever turns they had earned elsewhere).
  if (iface < rings_.size()) rings_[iface] = FlowRing{};
}

void DrrFamilyScheduler::on_flow_added(FlowId flow) {
  turn_count_.ensure(static_cast<std::size_t>(flow) + 1,
                     preferences().iface_slots());
  turn_count_.fill_row(flow, 0);
}

void DrrFamilyScheduler::on_flow_removed(FlowId flow) {
  remove_from_all_rings(flow);
  reset_deficit(flow);
}

void DrrFamilyScheduler::on_willing_changed(FlowId flow, IfaceId iface,
                                            bool value) {
  if (iface >= rings_.size()) return;
  FlowRing& r = rings_[iface];
  if (value) {
    if (!r.contains(flow) && !queue(flow).empty()) r.insert(flow);
  } else {
    if (r.contains(flow)) r.remove(flow);
  }
}

void DrrFamilyScheduler::on_backlogged(FlowId flow) {
  for (IfaceId j : preferences().ifaces_of(flow)) {
    if (j < rings_.size() && !rings_[j].contains(flow)) {
      rings_[j].insert(flow);
    }
  }
}

void DrrFamilyScheduler::enter_turn(IfaceId iface, FlowRing& r,
                                    bool advance_first, SimTime now) {
  if (advance_first) r.advance();
  walk(iface, r, now);
  const FlowId flow = r.current();
  std::int64_t& dc = deficit(flow, iface);
  dc += quantum_of(flow);
  turn_count_.ensure(static_cast<std::size_t>(flow) + 1,
                     static_cast<std::size_t>(iface) + 1);
  ++turn_count_.at(flow, iface);
  turn_granted(flow, iface);
  if (observer() != nullptr) {
    observer()->on_turn_granted(now, flow, iface, dc);
  }
  r.open_turn();
}

std::optional<Packet> DrrFamilyScheduler::select(IfaceId iface, SimTime now) {
  FlowRing& r = ring(iface);
  // Iteration guard: every pass through the loop grants one quantum, so
  // the number of passes before some head-of-line packet fits is bounded
  // by ring_size * ceil(max_packet / min_quantum).  The guard only trips
  // on a library bug (e.g. an empty flow left in a ring).
  std::uint64_t guard = 0;
  // Worst case: a quantum of 1 byte needs max-IPv4-packet grants per flow
  // before the head packet fits.
  const std::uint64_t guard_limit = (r.size() + 2) * 70000;
  while (!r.empty()) {
    if (!r.turn_open()) {
      enter_turn(iface, r, /*advance_first=*/false, now);
    }
    const FlowId flow = r.current();
    const auto head = queue(flow).head_size();
    MIDRR_ASSERT(head.has_value(), "empty flow found in an active ring");
    std::int64_t& dc = deficit(flow, iface);
    if (static_cast<std::int64_t>(*head) <= dc) {
      auto packet = queue(flow).dequeue();
      dc -= static_cast<std::int64_t>(*head);
      packet_served(flow, iface);
      // The send/drain observer events are emitted by the Scheduler base
      // (note_dequeued), common to every policy.
      if (queue(flow).empty()) {
        // BL_i = 0: reset the deficit and leave the backlogged set.
        reset_deficit(flow);
        remove_from_all_rings(flow);
      }
      return packet;
    }
    enter_turn(iface, r, /*advance_first=*/true, now);
    MIDRR_ASSERT(++guard < guard_limit,
                 "DRR turn loop failed to make progress");
  }
  return std::nullopt;
}

NaiveDrrScheduler::NaiveDrrScheduler(std::uint32_t quantum_base)
    : DrrFamilyScheduler(quantum_base) {}

std::int64_t& NaiveDrrScheduler::deficit(FlowId flow, IfaceId iface) {
  dc_.ensure(static_cast<std::size_t>(flow) + 1,
             static_cast<std::size_t>(iface) + 1);
  return dc_.at(flow, iface);
}

void NaiveDrrScheduler::reset_deficit(FlowId flow) {
  if (flow < dc_.rows()) dc_.fill_row(flow, 0);
}

void NaiveDrrScheduler::on_flow_added(FlowId flow) {
  DrrFamilyScheduler::on_flow_added(flow);
  dc_.ensure(static_cast<std::size_t>(flow) + 1, preferences().iface_slots());
  dc_.fill_row(flow, 0);
}

void NaiveDrrScheduler::on_interface_added(IfaceId iface) {
  DrrFamilyScheduler::on_interface_added(iface);
  dc_.ensure(preferences().flow_slots(), preferences().iface_slots());
}

std::int64_t NaiveDrrScheduler::deficit_of(FlowId flow, IfaceId iface) const {
  return dc_.get(flow, iface);
}

}  // namespace midrr
