// Deficit Round Robin (Shreedhar & Varghese) -- the paper's Algorithm 3.1 --
// as a reusable base for the DRR family, plus the naive multi-interface
// baseline that runs DRR independently per interface with no coordination.
//
// The paper shows naive per-interface DRR converges to the same (wrong)
// allocation as per-interface WFQ when interface preferences are present:
// on the Fig 1(c) example it gives flows (a, b) 1.5 / 0.5 Mb/s instead of
// the max-min fair 1 / 1.  It is implemented here exactly so the benches
// can demonstrate that.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/observer.hpp"
#include "sched/ring.hpp"
#include "sched/scheduler.hpp"
#include "util/flat_matrix.hpp"

namespace midrr {

/// Shared mechanics of the DRR family: per-interface rings of active flows,
/// the turn/quantum/deficit loop of Algorithm 3.1, and service-turn
/// accounting.  Subclasses choose (a) how the deficit counter is keyed
/// (per flow vs per flow-interface) and (b) how the ring walks to the next
/// flow of a turn (plain successor vs miDRR's service-flag walk).
class DrrFamilyScheduler : public Scheduler {
 public:
  /// Number of service turns (quantum grants) flow has received on iface;
  /// the m_i(t1, t2] of Lemma 4 in differenced form.
  std::uint64_t turns(FlowId flow, IfaceId iface) const;

  std::uint32_t quantum_base() const { return quantum_base_; }

  /// Q_i in bytes: phi_i / phi_min * quantum_base, so the smallest-weight
  /// flow gets exactly quantum_base and ratios follow the rate preferences.
  std::int64_t quantum_of(FlowId flow) const;

  /// Batched enqueue specialized for the DRR family: per-packet work is
  /// one queue append plus the idle->backlogged ring insert when a flow
  /// transitions; the base class's per-packet on_enqueued virtual dispatch
  /// (unused by every DRR policy) is skipped.  Semantics are identical to
  /// the base implementation (the equivalence test pins this).
  EnqueueBatchResult enqueue_batch(std::span<Packet> packets,
                                   SimTime now) override;

 protected:
  explicit DrrFamilyScheduler(std::uint32_t quantum_base);

  std::optional<Packet> select(IfaceId iface, SimTime now) override;

  void on_interface_added(IfaceId iface) override;
  void on_interface_removed(IfaceId iface) override;
  void on_flow_added(FlowId flow) override;
  void on_flow_removed(FlowId flow) override;
  void on_willing_changed(FlowId flow, IfaceId iface, bool value) override;
  void on_backlogged(FlowId flow) override;

  // --- subclass policy ----------------------------------------------------

  /// Reference to the deficit counter used when `iface` serves `flow`.
  virtual std::int64_t& deficit(FlowId flow, IfaceId iface) = 0;

  /// Resets all deficit state of a flow (BL_i reached 0 / flow removed).
  virtual void reset_deficit(FlowId flow) = 0;

  /// Positions `ring` (current position already at the first candidate) on
  /// the flow that gets the next turn.  Plain DRR: no-op.  miDRR: the
  /// Algorithm 3.2 service-flag walk.
  virtual void walk(IfaceId /*iface*/, FlowRing& /*ring*/,
                    SimTime /*now*/) {}

  /// Called when `flow` is granted a turn on `iface`.  miDRR sets the
  /// flow's service flags at every other interface here.
  virtual void turn_granted(FlowId /*flow*/, IfaceId /*iface*/) {}

  /// Called for every packet actually sent (Table 1's task list sets the
  /// service flags "when interface k serves flow i", i.e. per send, which
  /// keeps the flags fresh when a turn spans several packets).
  virtual void packet_served(FlowId /*flow*/, IfaceId /*iface*/) {}

  // --- shared helpers ------------------------------------------------------

  FlowRing& ring(IfaceId iface);
  const FlowRing* ring_if_present(IfaceId iface) const;
  void remove_from_all_rings(FlowId flow);

 private:
  /// Steps the ring into the next turn: optionally advance off the current
  /// flow, run the policy walk, grant the quantum.
  void enter_turn(IfaceId iface, FlowRing& r, bool advance_first,
                  SimTime now);

  std::uint32_t quantum_base_;
  std::vector<FlowRing> rings_;                     // by IfaceId
  FlowIfaceMatrix<std::uint64_t> turn_count_;       // [flow][iface], flat
  // Cache of the minimum live weight (quantum normalization).
  mutable double min_weight_ = 1.0;
  mutable std::uint64_t min_weight_version_ = ~0ull;
};

/// DRR run independently on each interface: deficit counters are keyed by
/// (flow, interface) and there is no cross-interface signaling.  With a
/// single interface this is exactly classical DRR.
class NaiveDrrScheduler final : public DrrFamilyScheduler {
 public:
  explicit NaiveDrrScheduler(std::uint32_t quantum_base = 1500);

  std::string policy_name() const override { return "naive-DRR"; }

  /// Test accessor: the deficit counter of (flow, iface).
  std::int64_t deficit_of(FlowId flow, IfaceId iface) const;

 protected:
  std::int64_t& deficit(FlowId flow, IfaceId iface) override;
  void reset_deficit(FlowId flow) override;
  void on_flow_added(FlowId flow) override;
  void on_interface_added(IfaceId iface) override;

 private:
  FlowIfaceMatrix<std::int64_t> dc_;  // [flow][iface], flat
};

}  // namespace midrr
