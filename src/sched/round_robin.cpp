#include "sched/round_robin.hpp"

#include "util/assert.hpp"

namespace midrr {

void RoundRobinScheduler::on_interface_added(IfaceId iface) {
  if (rings_.size() <= iface) {
    rings_.resize(static_cast<std::size_t>(iface) + 1);
  }
}

void RoundRobinScheduler::on_interface_removed(IfaceId iface) {
  if (iface < rings_.size()) rings_[iface] = FlowRing{};
}

void RoundRobinScheduler::on_flow_removed(FlowId flow) {
  for (auto& r : rings_) {
    if (r.contains(flow)) r.remove(flow);
  }
}

void RoundRobinScheduler::on_willing_changed(FlowId flow, IfaceId iface,
                                             bool value) {
  if (iface >= rings_.size()) return;
  if (value) {
    if (!rings_[iface].contains(flow) && !queue(flow).empty()) {
      rings_[iface].insert(flow);
    }
  } else if (rings_[iface].contains(flow)) {
    rings_[iface].remove(flow);
  }
}

void RoundRobinScheduler::on_backlogged(FlowId flow) {
  for (IfaceId j : preferences().ifaces_of(flow)) {
    if (j < rings_.size() && !rings_[j].contains(flow)) {
      rings_[j].insert(flow);
    }
  }
}

std::optional<Packet> RoundRobinScheduler::select(IfaceId iface, SimTime) {
  MIDRR_ASSERT(iface < rings_.size(), "select on unknown interface");
  FlowRing& r = rings_[iface];
  if (r.empty()) return std::nullopt;
  // Serve the current flow one packet, then move on.
  const FlowId flow = r.turn_open() ? r.advance() : r.current();
  r.open_turn();
  auto packet = queue(flow).dequeue();
  MIDRR_ASSERT(packet.has_value(), "empty flow in RR ring");
  if (queue(flow).empty()) {
    for (auto& ring : rings_) {
      if (ring.contains(flow)) ring.remove(flow);
    }
  }
  return packet;
}

}  // namespace midrr
