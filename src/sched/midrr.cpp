#include "sched/midrr.hpp"

#include "util/assert.hpp"

namespace midrr {

MiDrrScheduler::MiDrrScheduler(std::uint32_t quantum_base, bool shared_deficit)
    : DrrFamilyScheduler(quantum_base), shared_deficit_(shared_deficit) {}

std::int64_t& MiDrrScheduler::deficit(FlowId flow, IfaceId iface) {
  MIDRR_ASSERT(flow < dc_.size(), "deficit entry missing");
  if (shared_deficit_) return dc_[flow];
  dc_per_.ensure(static_cast<std::size_t>(flow) + 1,
                 static_cast<std::size_t>(iface) + 1);
  return dc_per_.at(flow, iface);
}

void MiDrrScheduler::reset_deficit(FlowId flow) {
  if (flow < dc_.size()) dc_[flow] = 0;
  if (flow < dc_per_.rows()) dc_per_.fill_row(flow, 0);
}

void MiDrrScheduler::walk(IfaceId iface, FlowRing& ring, SimTime now) {
  // Algorithm 3.2: while the candidate's service flag is set, clear it and
  // move on.  Terminates because flags are only cleared during the walk and
  // nothing sets them mid-walk, so a full cycle ends at a cleared flag.
  std::uint8_t* flag = &sf_.at(ring.current(), iface);
  while (*flag != 0) {
    *flag = 0;
    ++flags_skipped_;
    if (observer() != nullptr) {
      observer()->on_flag_skip(now, ring.current(), iface);
    }
    ring.advance();
    flag = &sf_.at(ring.current(), iface);
  }
}

void MiDrrScheduler::turn_granted(FlowId flow, IfaceId iface) {
  // Tell every other interface that this flow has just been served:
  // SF_{flow,k} = 1 for all k != iface.
  std::uint8_t* row = sf_.row(flow);
  for (IfaceId k = 0; k < sf_.cols(); ++k) {
    if (k != iface) row[k] = 1;
  }
}

void MiDrrScheduler::packet_served(FlowId, IfaceId) {
  // Intentionally empty: flags are set per TURN (Algorithm 3.2), not per
  // packet.  Setting them on every send was tried and over-suppresses: a
  // flow aggregating two interfaces keeps its flag at each permanently set
  // from the other's sends and loses its share of shared interfaces
  // (e.g. Fig 6 phase 2 collapses).  The pseudocode's per-turn granularity
  // is what makes aggregation work.
}

void MiDrrScheduler::on_flow_added(FlowId flow) {
  DrrFamilyScheduler::on_flow_added(flow);
  if (dc_.size() <= flow) dc_.resize(static_cast<std::size_t>(flow) + 1, 0);
  dc_[flow] = 0;
  dc_per_.ensure(static_cast<std::size_t>(flow) + 1,
                 preferences().iface_slots());
  dc_per_.fill_row(flow, 0);
  // Service flags for new flows are initialized to zero (Table 1).
  sf_.ensure(static_cast<std::size_t>(flow) + 1, preferences().iface_slots());
  sf_.fill_row(flow, 0);
}

void MiDrrScheduler::on_interface_added(IfaceId iface) {
  DrrFamilyScheduler::on_interface_added(iface);
  sf_.ensure(preferences().flow_slots(), preferences().iface_slots());
  dc_per_.ensure(preferences().flow_slots(), preferences().iface_slots());
}

void MiDrrScheduler::on_flow_removed(FlowId flow) {
  DrrFamilyScheduler::on_flow_removed(flow);
  if (flow < sf_.rows()) sf_.fill_row(flow, 0);
}

std::int64_t MiDrrScheduler::deficit_of(FlowId flow) const {
  if (shared_deficit_) return flow < dc_.size() ? dc_[flow] : 0;
  // Per-interface mode: report the largest per-interface counter (the
  // Lemma 3 bound applies to each one individually).
  std::int64_t worst = 0;
  if (flow < dc_per_.rows()) {
    const std::int64_t* row = dc_per_.row(flow);
    for (std::size_t j = 0; j < dc_per_.cols(); ++j) {
      worst = std::max(worst, row[j]);
    }
  }
  return worst;
}

bool MiDrrScheduler::service_flag(FlowId flow, IfaceId iface) const {
  return sf_.get(flow, iface) != 0;
}

}  // namespace midrr
