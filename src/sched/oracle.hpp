// The "obvious solution" of Section 3, made real: a scheduler with global
// knowledge.
//
// The paper sketches (and rejects as impractical) a design where
// "interfaces exchange information about the rates flows are receiving
// from every interface" and know their own instantaneous capacities.  This
// oracle implements exactly that: whenever the backlogged set or the
// capacities change, it re-solves the weighted max-min program and then
// serves, on each free interface, the flow lagging furthest behind its
// fluid target r_ij * elapsed.
//
// It exists to quantify what miDRR gives up: the benches compare the two
// against the reference allocation -- miDRR gets (almost) the oracle's
// fairness with one bit of state per (flow, interface) and no capacity
// knowledge at all.
#pragma once

#include <functional>

#include "fairness/maxmin.hpp"
#include "sched/scheduler.hpp"

namespace midrr {

class OracleMaxMinScheduler final : public Scheduler {
 public:
  /// `capacity_bps(iface)` must report the interface's current capacity
  /// (the global knowledge the paper says real interfaces do not have).
  using CapacityProvider = std::function<double(IfaceId)>;

  explicit OracleMaxMinScheduler(CapacityProvider capacity_bps,
                                 SimDuration recompute_interval = 50 *
                                                                  kMillisecond);

  std::string policy_name() const override { return "oracle-maxmin"; }

  /// How many times the max-min program has been re-solved (the
  /// communication/computation cost miDRR avoids).
  std::uint64_t recomputations() const { return recomputations_; }

 protected:
  std::optional<Packet> select(IfaceId iface, SimTime now) override;

  void on_interface_added(IfaceId iface) override;
  void on_interface_removed(IfaceId) override { dirty_ = true; }
  void on_flow_added(FlowId flow) override;
  void on_flow_removed(FlowId) override { dirty_ = true; }
  void on_willing_changed(FlowId, IfaceId, bool) override { dirty_ = true; }
  void on_weight_changed(FlowId) override { dirty_ = true; }
  void on_backlogged(FlowId) override { dirty_ = true; }

 private:
  void advance_targets(SimTime now);
  void recompute(SimTime now);

  CapacityProvider capacity_;
  SimDuration recompute_interval_;
  bool dirty_ = true;
  SimTime last_advance_ = 0;
  SimTime last_recompute_ = 0;
  std::uint64_t recomputations_ = 0;
  // Fluid targets and achieved service, in bytes, per (flow, iface).
  std::vector<std::vector<double>> target_bytes_;
  std::vector<std::vector<double>> served_bytes_;
  std::vector<std::vector<double>> alloc_bps_;
};

}  // namespace midrr
