#include "sched/hier_midrr.hpp"

#include <algorithm>
#include <cmath>

#include "sched/observer.hpp"
#include "util/assert.hpp"

namespace midrr {

HierMiDrrScheduler::HierMiDrrScheduler(std::uint32_t quantum_base)
    : quantum_base_(quantum_base) {
  MIDRR_REQUIRE(quantum_base > 0, "quantum base must be positive");
}

// --- arenas ---------------------------------------------------------------

void HierMiDrrScheduler::ensure_class(ClassId cls) {
  if (classes_.size() <= cls) {
    classes_.resize(static_cast<std::size_t>(cls) + 1);
  }
  dc_.ensure(static_cast<std::size_t>(cls) + 1, preferences().iface_slots());
  sf_.ensure(static_cast<std::size_t>(cls) + 1, preferences().iface_slots());
  turn_count_.ensure(static_cast<std::size_t>(cls) + 1,
                     preferences().iface_slots());
}

void HierMiDrrScheduler::ensure_flow_slot(FlowId flow) {
  if (class_of_.size() <= flow) {
    const std::size_t n = static_cast<std::size_t>(flow) + 1;
    class_of_.resize(n, kInvalidClass);
    mnext_.resize(n, kInvalidFlow);
    mprev_.resize(n, kInvalidFlow);
    mdc_.resize(n, 0);
  }
}

// --- member rings ---------------------------------------------------------

void HierMiDrrScheduler::member_insert(ClassState& cs, FlowId flow) {
  MIDRR_ASSERT(mnext_[flow] == kInvalidFlow, "flow already in a member ring");
  if (cs.mcurrent == kInvalidFlow) {
    mnext_[flow] = flow;
    mprev_[flow] = flow;
    cs.mcurrent = flow;
    cs.mturn_open = false;
  } else {
    // Before the current member, i.e. reached last in the current round
    // (the FlowRing insertion rule, applied to the inner ring).
    const FlowId cur = cs.mcurrent;
    const FlowId last = mprev_[cur];
    mnext_[last] = flow;
    mprev_[flow] = last;
    mnext_[flow] = cur;
    mprev_[cur] = flow;
  }
}

void HierMiDrrScheduler::member_remove(ClassState& cs, FlowId flow) {
  MIDRR_ASSERT(mnext_[flow] != kInvalidFlow, "flow not in a member ring");
  const FlowId next = mnext_[flow];
  if (next == flow) {
    cs.mcurrent = kInvalidFlow;
  } else {
    mnext_[mprev_[flow]] = next;
    mprev_[next] = mprev_[flow];
    if (cs.mcurrent == flow) {
      cs.mcurrent = next;
      cs.mturn_open = false;
    }
  }
  mnext_[flow] = kInvalidFlow;
  mprev_[flow] = kInvalidFlow;
  mdc_[flow] = 0;
}

void HierMiDrrScheduler::member_advance(ClassState& cs) {
  cs.mcurrent = mnext_[cs.mcurrent];
  cs.mturn_open = false;
}

// --- class ring membership ------------------------------------------------

void HierMiDrrScheduler::class_backlogged(ClassId cls) {
  for (const IfaceId j : table_.key(cls).willing) {
    if (j < rings_.size() && !rings_[j].contains(cls)) {
      rings_[j].insert(cls);
    }
  }
}

void HierMiDrrScheduler::class_drained(ClassId cls) {
  for (IfaceId j = 0; j < rings_.size(); ++j) {
    if (rings_[j].contains(cls)) rings_[j].remove(cls);
  }
  if (cls < dc_.rows()) dc_.fill_row(cls, 0);
}

// --- attach / detach ------------------------------------------------------

void HierMiDrrScheduler::attach_flow(FlowId flow) {
  ClassKey key;
  key.weight = preferences().weight(flow);
  key.willing = preferences().ifaces_of(flow);  // already sorted ascending
  key.queue_capacity_bytes = queue(flow).capacity_bytes();
  const ClassId cls = table_.intern(key);
  ensure_class(cls);
  table_.add_member(cls);
  class_of_[flow] = cls;
  if (!queue(flow).empty()) {
    ClassState& cs = classes_[cls];
    member_insert(cs, flow);
    if (++cs.backlogged == 1) class_backlogged(cls);
  }
}

void HierMiDrrScheduler::detach_flow(FlowId flow) {
  const ClassId cls = class_of_[flow];
  if (cls == kInvalidClass) return;
  ClassState& cs = classes_[cls];
  if (mnext_[flow] != kInvalidFlow) {
    member_remove(cs, flow);
    if (--cs.backlogged == 0) class_drained(cls);
  }
  table_.remove_member(cls);
  if (table_.member_count(cls) == 0) {
    // The class retires (it revives under the same id on a matching
    // attach); clean its scheduling state so the revival starts fresh --
    // the flat scheduler's flow-removal rule, per class.
    if (cls < dc_.rows()) dc_.fill_row(cls, 0);
    if (cls < sf_.rows()) sf_.fill_row(cls, 0);
  }
  class_of_[flow] = kInvalidClass;
}

// --- topology hooks -------------------------------------------------------

void HierMiDrrScheduler::on_interface_added(IfaceId iface) {
  if (rings_.size() <= iface) {
    rings_.resize(static_cast<std::size_t>(iface) + 1);
  }
  dc_.ensure(table_.slots(), preferences().iface_slots());
  sf_.ensure(table_.slots(), preferences().iface_slots());
  turn_count_.ensure(table_.slots(), preferences().iface_slots());
}

void HierMiDrrScheduler::on_interface_removed(IfaceId iface) {
  // Classes stay queued; they simply lose this ring (flows keep whatever
  // turns they earned elsewhere, as in the flat DRR family).
  if (iface < rings_.size()) rings_[iface] = FlowRing{};
}

void HierMiDrrScheduler::on_flow_added(FlowId flow) {
  ensure_flow_slot(flow);
  attach_flow(flow);
}

void HierMiDrrScheduler::on_flow_removed(FlowId flow) {
  detach_flow(flow);
}

void HierMiDrrScheduler::on_willing_changed(FlowId flow, IfaceId /*iface*/,
                                            bool /*value*/) {
  // Class identity includes the Pi row: re-intern the flow under its new
  // row.  Its queue is untouched (owned by the Scheduler base per flow).
  detach_flow(flow);
  attach_flow(flow);
}

void HierMiDrrScheduler::on_weight_changed(FlowId flow) {
  detach_flow(flow);
  attach_flow(flow);
}

void HierMiDrrScheduler::on_backlogged(FlowId flow) {
  const ClassId cls = class_of_[flow];
  MIDRR_ASSERT(cls != kInvalidClass, "backlog for a detached flow");
  ClassState& cs = classes_[cls];
  member_insert(cs, flow);
  if (++cs.backlogged == 1) class_backlogged(cls);
}

EnqueueBatchResult HierMiDrrScheduler::enqueue_batch(std::span<Packet> packets,
                                                     SimTime /*now*/) {
  // Mirror of DrrFamilyScheduler::enqueue_batch: one queue append per
  // packet plus the idle->backlogged transition, no per-packet virtual
  // dispatch.
  EnqueueBatchResult totals;
  for (Packet& packet : packets) {
    const FlowId flow = packet.flow;
    const std::uint32_t size = packet.size_bytes;
    FlowQueue& q = queue(flow);  // REQUIREs the flow exists
    const bool was_empty = q.empty();
    if (q.enqueue(std::move(packet))) {
      ++totals.accepted;
      totals.accepted_bytes += size;
      if (was_empty) on_backlogged(flow);
    } else {
      ++totals.dropped;
    }
  }
  return totals;
}

bool HierMiDrrScheduler::has_eligible(IfaceId iface) const {
  // A class is in ring j iff it has a backlogged member willing on j, so
  // ring occupancy answers eligibility in O(1).
  return iface < rings_.size() && !rings_[iface].empty();
}

ClassId HierMiDrrScheduler::class_of(FlowId flow) const {
  return flow < class_of_.size() ? class_of_[flow] : kInvalidClass;
}

// --- the two-level select loop --------------------------------------------

std::int64_t HierMiDrrScheduler::class_quantum(ClassId cls) const {
  // phi_min over live classes, cached on the registry version exactly like
  // the flat family's min-weight cache (every attach/detach/reweight bumps
  // the version via its Preferences mutation).
  if (min_weight_version_ != preferences().version()) {
    min_weight_version_ = preferences().version();
    double min_w = -1.0;
    for (ClassId c = 0; c < table_.slots(); ++c) {
      if (table_.member_count(c) == 0) continue;
      const double w = table_.key(c).weight;
      if (min_w < 0.0 || w < min_w) min_w = w;
    }
    min_weight_ = min_w > 0.0 ? min_w : 1.0;
  }
  const double w = table_.key(cls).weight;
  const double members =
      static_cast<double>(classes_[cls].backlogged > 0
                              ? classes_[cls].backlogged
                              : std::size_t{1});
  const auto q = static_cast<std::int64_t>(std::llround(
      members * w / min_weight_ * static_cast<double>(quantum_base_)));
  return q > 0 ? q : 1;
}

void HierMiDrrScheduler::enter_class_turn(IfaceId iface, FlowRing& ring,
                                          bool advance_first, SimTime now) {
  if (advance_first) ring.advance();
  // Algorithm 3.2 at class granularity: while the candidate's service flag
  // is set, clear it and move on.
  std::uint8_t* flag = &sf_.at(ring.current(), iface);
  while (*flag != 0) {
    *flag = 0;
    ++flags_skipped_;
    if (observer() != nullptr) {
      observer()->on_flag_skip(now, ring.current(), iface);
    }
    ring.advance();
    flag = &sf_.at(ring.current(), iface);
  }
  const ClassId cls = ring.current();
  std::int64_t& dc = dc_.at(cls, iface);
  dc += class_quantum(cls);
  ++turn_count_.at(cls, iface);
  // Tell every other interface this class has just been served.
  std::uint8_t* row = sf_.row(cls);
  for (IfaceId k = 0; k < sf_.cols(); ++k) {
    if (k != iface) row[k] = 1;
  }
  if (observer() != nullptr) {
    observer()->on_turn_granted(now, classes_[cls].mcurrent, iface, dc);
  }
  ring.open_turn();
}

std::optional<Packet> HierMiDrrScheduler::select(IfaceId iface, SimTime now) {
  FlowRing& ring = rings_[iface];
  // Outer guard: every pass grants one class quantum (>= 1 byte), so the
  // pass count before some head packet fits is bounded as in the flat
  // family's select loop.
  std::uint64_t guard = 0;
  const std::uint64_t guard_limit = (ring.size() + 2) * 70000;
  while (!ring.empty()) {
    if (!ring.turn_open()) {
      enter_class_turn(iface, ring, /*advance_first=*/false, now);
    }
    const ClassId cls = ring.current();
    ClassState& cs = classes_[cls];
    std::int64_t& dc = dc_.at(cls, iface);
    // Inner DRR among the class's backlogged members: equal quanta of
    // quantum_base each (members share one phi by class definition).  The
    // inner guard bounds the catch-up spins of a member whose head packet
    // fits the class deficit but not yet its own.
    std::uint64_t inner_guard = 0;
    const std::uint64_t inner_limit = (cs.backlogged + 2) * 70000;
    while (true) {
      const FlowId flow = cs.mcurrent;
      MIDRR_ASSERT(flow != kInvalidFlow, "empty class found in an active ring");
      if (!cs.mturn_open) {
        mdc_[flow] += quantum_base_;
        cs.mturn_open = true;
      }
      const auto head = queue(flow).head_size();
      MIDRR_ASSERT(head.has_value(), "empty flow found in a member ring");
      const auto head_bytes = static_cast<std::int64_t>(*head);
      if (head_bytes > dc) break;  // class deficit exhausted: outer turn ends
      if (head_bytes <= mdc_[flow]) {
        auto packet = queue(flow).dequeue();
        dc -= head_bytes;
        mdc_[flow] -= head_bytes;
        if (queue(flow).empty()) {
          member_remove(cs, flow);
          if (--cs.backlogged == 0) class_drained(cls);
        }
        return packet;
      }
      member_advance(cs);
      MIDRR_ASSERT(++inner_guard < inner_limit,
                   "inner DRR loop failed to make progress");
    }
    enter_class_turn(iface, ring, /*advance_first=*/true, now);
    MIDRR_ASSERT(++guard < guard_limit,
                 "hierarchical DRR turn loop failed to make progress");
  }
  return std::nullopt;
}

}  // namespace midrr
