// Per-interface weighted fair queueing baseline.
//
// This is the strawman of the paper's Section 1/2: run WFQ independently on
// each interface, with no cross-interface awareness.  Implementation is
// SCFQ-style (self-clocked fair queueing, Golestani): each interface keeps
// its own virtual time V_j (the finish tag of the packet it last chose) and
// each (flow, interface) pair a last finish tag F_ij; the interface picks
// the backlogged willing flow whose head packet has the smallest candidate
// finish tag max(F_ij, V_j) + L / phi_i.
//
// On a single interface this provides the weighted fair allocation (and so
// passes the same single-interface fairness tests as DRR); with interface
// preferences it produces the paper's canonical failure: on Fig 1(c) flow a
// gets 1.5 Mb/s and flow b 0.5 Mb/s instead of 1/1.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "sched/scheduler.hpp"
#include "util/flat_matrix.hpp"

namespace midrr {

class PerIfaceWfqScheduler final : public Scheduler {
 public:
  PerIfaceWfqScheduler() = default;

  std::string policy_name() const override { return "per-iface-WFQ"; }

  /// Test accessor: interface j's virtual time.
  double virtual_time(IfaceId iface) const;

 protected:
  std::optional<Packet> select(IfaceId iface, SimTime now) override;

  void on_interface_added(IfaceId iface) override;
  void on_interface_removed(IfaceId iface) override;
  void on_flow_added(FlowId flow) override;
  void on_flow_removed(FlowId flow) override;
  void on_willing_changed(FlowId flow, IfaceId iface, bool value) override;
  void on_backlogged(FlowId flow) override;

 private:
  // Active (backlogged, willing) flows per interface; kept sorted by flow
  // id so selection is deterministic.
  std::vector<std::set<FlowId>> active_;            // [iface]
  std::vector<double> vtime_;                       // [iface]
  FlowIfaceMatrix<double> finish_;                  // [flow][iface], flat

  void deactivate_everywhere(FlowId flow);
};

}  // namespace midrr
