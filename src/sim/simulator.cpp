#include "sim/simulator.hpp"

#include "util/assert.hpp"

namespace midrr {

void Simulator::schedule_at(SimTime at, Action action) {
  MIDRR_REQUIRE(at >= now_, "scheduling into the past");
  MIDRR_REQUIRE(action != nullptr, "null event action");
  queue_.push(Entry{at, next_seq_++, std::move(action)});
}

void Simulator::schedule_in(SimDuration delay, Action action) {
  MIDRR_REQUIRE(delay >= 0, "negative delay");
  schedule_at(now_ + delay, std::move(action));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the action handle (std::function copy) and pop.
  Entry e = queue_.top();
  queue_.pop();
  MIDRR_ASSERT(e.at >= now_, "event queue went backwards");
  now_ = e.at;
  ++executed_;
  e.action();
  return true;
}

void Simulator::run_until(SimTime horizon) {
  while (!queue_.empty() && queue_.top().at <= horizon) {
    step();
  }
  if (now_ < horizon) now_ = horizon;
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace midrr
