#include "sim/rate_profile.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace midrr {

RateProfile::RateProfile(double rate_bps) {
  MIDRR_REQUIRE(rate_bps >= 0.0, "negative link rate");
  points_.emplace_back(0, rate_bps);
}

RateProfile RateProfile::steps(
    std::vector<std::pair<SimTime, double>> points) {
  MIDRR_REQUIRE(!points.empty(), "rate profile needs at least one step");
  MIDRR_REQUIRE(points.front().first == 0, "rate profile must start at t=0");
  for (std::size_t i = 0; i < points.size(); ++i) {
    MIDRR_REQUIRE(points[i].second >= 0.0, "negative link rate");
    if (i > 0) {
      MIDRR_REQUIRE(points[i].first > points[i - 1].first,
                    "rate profile times must be strictly increasing");
    }
  }
  RateProfile p;
  p.points_ = std::move(points);
  return p;
}

RateProfile RateProfile::square_wave(double hi_bps, double lo_bps,
                                     SimDuration period, SimTime until) {
  MIDRR_REQUIRE(period > 0, "square wave period must be positive");
  std::vector<std::pair<SimTime, double>> pts;
  bool hi = true;
  for (SimTime t = 0; t <= until; t += period / 2) {
    pts.emplace_back(t, hi ? hi_bps : lo_bps);
    hi = !hi;
  }
  return steps(std::move(pts));
}

RateProfile RateProfile::gilbert_elliott(double good_bps, double bad_bps,
                                         SimDuration mean_good,
                                         SimDuration mean_bad, SimTime until,
                                         std::uint64_t seed) {
  MIDRR_REQUIRE(mean_good > 0 && mean_bad > 0,
                "sojourn means must be positive");
  MIDRR_REQUIRE(good_bps >= 0.0 && bad_bps >= 0.0, "negative link rate");
  Rng rng(seed);
  std::vector<std::pair<SimTime, double>> pts;
  bool good = true;
  SimTime t = 0;
  while (t <= until) {
    pts.emplace_back(t, good ? good_bps : bad_bps);
    const double mean_s = to_seconds(good ? mean_good : mean_bad);
    t += std::max<SimDuration>(kMillisecond,
                               from_seconds(rng.exponential(mean_s)));
    good = !good;
  }
  return steps(std::move(pts));
}

double RateProfile::rate_at(SimTime t) const {
  // Last step with start <= t.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](SimTime value, const auto& p) { return value < p.first; });
  MIDRR_ASSERT(it != points_.begin(), "profile must cover t >= 0");
  return std::prev(it)->second;
}

SimTime RateProfile::next_change_after(SimTime t) const {
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](SimTime value, const auto& p) { return value < p.first; });
  return it == points_.end() ? kSimTimeMax : it->first;
}

double RateProfile::peak_rate() const {
  double peak = 0.0;
  for (const auto& [t, r] : points_) peak = std::max(peak, r);
  return peak;
}

}  // namespace midrr
