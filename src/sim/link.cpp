#include "sim/link.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace midrr {

LinkTransmitter::LinkTransmitter(Simulator& sim, IfaceId iface,
                                 RateProfile profile, PacketProvider provider,
                                 DepartureCallback on_departure)
    : sim_(sim),
      iface_(iface),
      profile_(std::move(profile)),
      provider_(std::move(provider)),
      on_departure_(std::move(on_departure)) {
  MIDRR_REQUIRE(provider_ != nullptr, "link needs a packet provider");
}

void LinkTransmitter::set_enabled(bool enabled) {
  enabled_ = enabled;
  if (enabled_) notify_backlog();
}

void LinkTransmitter::set_burst(BurstProvider provider,
                                SimDuration opportunity) {
  MIDRR_REQUIRE(provider == nullptr || opportunity > 0,
                "burst opportunity must be positive");
  burst_provider_ = std::move(provider);
  burst_opportunity_ = burst_provider_ ? opportunity : 0;
}

void LinkTransmitter::set_jitter(double fraction, std::uint64_t seed) {
  MIDRR_REQUIRE(fraction >= 0.0 && fraction < 1.0,
                "jitter fraction must be in [0, 1)");
  jitter_ = fraction;
  if (fraction > 0.0) {
    jitter_rng_.emplace(seed);
  } else {
    jitter_rng_.reset();
  }
}

void LinkTransmitter::notify_backlog() {
  if (!busy_ && enabled_) try_send();
}

SimDuration LinkTransmitter::jittered(SimDuration duration) {
  if (jitter_ <= 0.0) return duration;
  const double factor = jitter_rng_->uniform(1.0 - jitter_, 1.0 + jitter_);
  return std::max<SimDuration>(
      1, static_cast<SimDuration>(static_cast<double>(duration) * factor));
}

void LinkTransmitter::try_send() {
  // Re-entrancy guard: pulling a packet from the provider can trigger a
  // source refill, whose enqueue notifies this very transmitter again.
  if (busy_ || !enabled_) return;
  busy_ = true;

  const double rate = profile_.rate_at(sim_.now());
  if (rate <= 0.0) {
    busy_ = false;
    // Link is down; wake up when the profile next changes.  Only one wakeup
    // is kept pending so repeated notify_backlog calls don't pile up events.
    const SimTime next = profile_.next_change_after(sim_.now());
    if (next != kSimTimeMax && !wakeup_pending_) {
      wakeup_pending_ = true;
      sim_.schedule_at(next, [this] {
        wakeup_pending_ = false;
        notify_backlog();
      });
    }
    return;
  }

  if (burst_provider_) {
    try_send_burst(rate);
    return;
  }

  auto packet = provider_(iface_, sim_.now());
  if (!packet) {
    busy_ = false;
    return;
  }

  const SimDuration duration =
      jittered(transmission_time(packet->size_bytes, rate));
  Packet p = std::move(*packet);
  sim_.schedule_in(duration, [this, p = std::move(p), duration]() mutable {
    complete(std::move(p), duration);
  });
}

void LinkTransmitter::try_send_burst(double rate) {
  // Byte budget the link can move within one opportunity at the rate in
  // effect at the burst's start (rate changes mid-burst are not re-priced;
  // keep the opportunity shorter than the profile's change granularity).
  // At least one byte so the provider never sees an empty budget.
  const double budget_bytes = rate * to_seconds(burst_opportunity_) / 8.0;
  const std::uint64_t budget =
      budget_bytes < 1.0 ? 1 : static_cast<std::uint64_t>(budget_bytes);

  burst_.clear();
  burst_durations_.clear();
  if (burst_provider_(iface_, budget, sim_.now(), burst_) == 0) {
    busy_ = false;
    return;
  }

  SimDuration total = 0;
  for (const Packet& p : burst_) {
    const SimDuration d = jittered(transmission_time(p.size_bytes, rate));
    burst_durations_.push_back(d);
    total += d;
  }
  const SimTime started = sim_.now();
  sim_.schedule_in(total, [this, started] { complete_burst(started); });
}

void LinkTransmitter::complete(Packet p, SimDuration duration) {
  MIDRR_ASSERT(busy_, "completion while idle");
  busy_ = false;
  busy_time_ += duration;
  bytes_sent_ += p.size_bytes;
  ++packets_sent_;
  if (on_departure_) on_departure_(iface_, p, sim_.now());
  try_send();
}

void LinkTransmitter::complete_burst(SimTime started_at) {
  MIDRR_ASSERT(busy_, "completion while idle");
  // busy_ stays set while departures are replayed: a departure callback can
  // refill sources and re-enter notify_backlog, which must not start a new
  // burst while burst_ is still being drained.
  SimTime at = started_at;
  for (std::size_t i = 0; i < burst_.size(); ++i) {
    const SimDuration d = burst_durations_[i];
    at += d;
    busy_time_ += d;
    bytes_sent_ += burst_[i].size_bytes;
    ++packets_sent_;
    if (on_departure_) on_departure_(iface_, burst_[i], at);
  }
  burst_.clear();
  burst_durations_.clear();
  busy_ = false;
  try_send();
}

}  // namespace midrr
