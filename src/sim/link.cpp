#include "sim/link.hpp"

#include "util/assert.hpp"

namespace midrr {

LinkTransmitter::LinkTransmitter(Simulator& sim, IfaceId iface,
                                 RateProfile profile, PacketProvider provider,
                                 DepartureCallback on_departure)
    : sim_(sim),
      iface_(iface),
      profile_(std::move(profile)),
      provider_(std::move(provider)),
      on_departure_(std::move(on_departure)) {
  MIDRR_REQUIRE(provider_ != nullptr, "link needs a packet provider");
}

void LinkTransmitter::set_enabled(bool enabled) {
  enabled_ = enabled;
  if (enabled_) notify_backlog();
}

void LinkTransmitter::set_jitter(double fraction, std::uint64_t seed) {
  MIDRR_REQUIRE(fraction >= 0.0 && fraction < 1.0,
                "jitter fraction must be in [0, 1)");
  jitter_ = fraction;
  if (fraction > 0.0) {
    jitter_rng_.emplace(seed);
  } else {
    jitter_rng_.reset();
  }
}

void LinkTransmitter::notify_backlog() {
  if (!busy_ && enabled_) try_send();
}

void LinkTransmitter::try_send() {
  // Re-entrancy guard: pulling a packet from the provider can trigger a
  // source refill, whose enqueue notifies this very transmitter again.
  if (busy_ || !enabled_) return;
  busy_ = true;

  const double rate = profile_.rate_at(sim_.now());
  if (rate <= 0.0) {
    busy_ = false;
    // Link is down; wake up when the profile next changes.  Only one wakeup
    // is kept pending so repeated notify_backlog calls don't pile up events.
    const SimTime next = profile_.next_change_after(sim_.now());
    if (next != kSimTimeMax && !wakeup_pending_) {
      wakeup_pending_ = true;
      sim_.schedule_at(next, [this] {
        wakeup_pending_ = false;
        notify_backlog();
      });
    }
    return;
  }

  auto packet = provider_(iface_, sim_.now());
  if (!packet) {
    busy_ = false;
    return;
  }

  SimDuration duration = transmission_time(packet->size_bytes, rate);
  if (jitter_ > 0.0) {
    const double factor = jitter_rng_->uniform(1.0 - jitter_, 1.0 + jitter_);
    duration = std::max<SimDuration>(
        1, static_cast<SimDuration>(static_cast<double>(duration) * factor));
  }
  Packet p = std::move(*packet);
  sim_.schedule_in(duration, [this, p = std::move(p), duration]() mutable {
    complete(std::move(p), duration);
  });
}

void LinkTransmitter::complete(Packet p, SimDuration duration) {
  MIDRR_ASSERT(busy_, "completion while idle");
  busy_ = false;
  busy_time_ += duration;
  bytes_sent_ += p.size_bytes;
  ++packets_sent_;
  if (on_departure_) on_departure_(iface_, p, sim_.now());
  try_send();
}

}  // namespace midrr
