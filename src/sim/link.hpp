// A simulated network interface transmitter.
//
// When idle, the transmitter asks its packet provider (the scheduler) for
// the next packet -- exactly the paper's "when interface j is free, which
// packet should be sent?" contract -- transmits it for size/rate seconds,
// reports the departure, and repeats.  A zero rate (link down) parks the
// transmitter until the profile's next change point.
//
// The provider pull happens *at transmission time*, never ahead of it, so
// scheduling decisions always see the freshest queue and flag state.
//
// Burst mode (set_burst): instead of one simulator event per packet, the
// transmitter drains a whole transmit opportunity from a BurstProvider
// (Scheduler::dequeue_burst) and schedules ONE completion event for the
// batch.  Departures are still reported with each packet's exact
// completion time; what changes is that all packets of a burst are chosen
// at the burst's start (scheduling state is `opportunity` older at the
// tail of a burst) and the link rate is sampled once per burst.  This
// trades a bounded amount of decision freshness for an order of magnitude
// fewer simulator events -- the per-packet constant factor that dominates
// large sweeps.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "flow/ids.hpp"
#include "flow/packet.hpp"
#include "sim/rate_profile.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace midrr {

/// Supplies the next packet for an interface, or nullopt if nothing is
/// eligible right now.  (Scheduler::dequeue matches this signature.)
using PacketProvider =
    std::function<std::optional<Packet>(IfaceId, SimTime now)>;

/// Supplies up to `byte_budget` worth of packets for an interface in one
/// call, appended to `out`; returns how many were appended.
/// (Scheduler::dequeue_burst matches this signature.)
using BurstProvider = std::function<std::size_t(
    IfaceId, std::uint64_t byte_budget, SimTime now, std::vector<Packet>& out)>;

/// Observes completed transmissions.
using DepartureCallback =
    std::function<void(IfaceId, const Packet&, SimTime completed_at)>;

class LinkTransmitter {
 public:
  LinkTransmitter(Simulator& sim, IfaceId iface, RateProfile profile,
                  PacketProvider provider, DepartureCallback on_departure);

  /// Tells the transmitter that packets may have become available; cheap
  /// and idempotent (no-op while a transmission is in flight).
  void notify_backlog();

  /// Administrative up/down control (an interface disappearing is modeled
  /// by set_enabled(false); its queue contents stay with the scheduler).
  void set_enabled(bool enabled);
  bool enabled() const { return enabled_; }

  /// Enables batched draining: when idle, pull up to `opportunity` worth
  /// of transmission time from `provider` in one call and simulate the
  /// batch under a single completion event.  Pass a null provider to
  /// return to per-packet operation.  The per-packet provider is still
  /// required (construction) and is unused while burst mode is active.
  void set_burst(BurstProvider provider, SimDuration opportunity);

  /// Multiplies every transmission duration by uniform[1-f, 1+f] -- the
  /// service-time jitter real wireless MACs exhibit (rate adaptation,
  /// contention, retries).  Besides realism this matters for fidelity:
  /// perfectly constant service times phase-lock the service-flag dynamics
  /// of miDRR against other interfaces' rounds in ways no physical testbed
  /// would (see DESIGN.md section 8).  Default 0 (deterministic).
  void set_jitter(double fraction, std::uint64_t seed = 1);

  IfaceId iface() const { return iface_; }
  bool busy() const { return busy_; }

  double current_rate_bps() const { return profile_.rate_at(sim_.now()); }
  const RateProfile& profile() const { return profile_; }

  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t packets_sent() const { return packets_sent_; }
  /// Total time spent actually transmitting (for utilization checks).
  SimDuration busy_time() const { return busy_time_; }

 private:
  void try_send();
  void try_send_burst(double rate);
  void complete(Packet p, SimDuration duration);
  void complete_burst(SimTime started_at);
  SimDuration jittered(SimDuration duration);

  Simulator& sim_;
  IfaceId iface_;
  RateProfile profile_;
  PacketProvider provider_;
  BurstProvider burst_provider_;
  SimDuration burst_opportunity_ = 0;
  std::vector<Packet> burst_;             // in-flight batch (burst mode)
  std::vector<SimDuration> burst_durations_;
  DepartureCallback on_departure_;
  bool busy_ = false;
  bool enabled_ = true;
  bool wakeup_pending_ = false;
  double jitter_ = 0.0;
  std::optional<Rng> jitter_rng_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t packets_sent_ = 0;
  SimDuration busy_time_ = 0;
};

}  // namespace midrr
