// Discrete-event simulator.
//
// A single-threaded event loop over simulated nanoseconds.  Events at equal
// timestamps fire in scheduling order (a monotone tie-break sequence), so
// runs are fully deterministic.  This is the testbed substitute for the
// paper's laptop + wireless NICs: links, sources and schedulers all hang
// off this clock.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/time.hpp"

namespace midrr {

class Simulator {
 public:
  using Action = std::function<void()>;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `action` to run at absolute time `at` (>= now).
  void schedule_at(SimTime at, Action action);

  /// Schedules `action` to run `delay` (>= 0) after now.
  void schedule_in(SimDuration delay, Action action);

  /// Runs events until the queue empties or the next event is past
  /// `horizon`; the clock ends at min(horizon, last event time).
  void run_until(SimTime horizon);

  /// Runs until the event queue is empty.
  void run();

  /// Executes exactly one event if present; returns false when idle.
  bool step();

  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace midrr
