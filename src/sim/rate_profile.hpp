// Piecewise-constant link capacity over time.
//
// Wireless links in the paper's experiments fluctuate (Fig 10 varies the
// interface speed as the run progresses); a RateProfile captures that as a
// step function of bits-per-second values.  A rate of zero models a link
// that is down (the transmitter sleeps until the next change point).
#pragma once

#include <cstdint>
#include <vector>

#include "util/time.hpp"

namespace midrr {

class RateProfile {
 public:
  /// Constant rate forever.
  explicit RateProfile(double rate_bps);

  /// Steps: (start_time, rate) pairs; first must start at 0, times strictly
  /// increasing, rates >= 0.
  static RateProfile steps(std::vector<std::pair<SimTime, double>> points);

  /// A square wave alternating between hi and lo every `period/2`.
  static RateProfile square_wave(double hi_bps, double lo_bps,
                                 SimDuration period, SimTime until);

  /// A Gilbert-Elliott-style wireless channel: alternates between a GOOD
  /// state at `good_bps` and a BAD state at `bad_bps` (possibly 0 = outage),
  /// with exponentially distributed sojourn times -- the classic two-state
  /// model of a fading link.  Deterministic given `seed`.
  static RateProfile gilbert_elliott(double good_bps, double bad_bps,
                                     SimDuration mean_good,
                                     SimDuration mean_bad, SimTime until,
                                     std::uint64_t seed);

  /// The rate in effect at time t.
  double rate_at(SimTime t) const;

  /// The next time > t at which the rate changes; kSimTimeMax if none.
  SimTime next_change_after(SimTime t) const;

  /// Largest rate anywhere in the profile.
  double peak_rate() const;

  const std::vector<std::pair<SimTime, double>>& points() const {
    return points_;
  }

 private:
  RateProfile() = default;
  std::vector<std::pair<SimTime, double>> points_;
};

}  // namespace midrr
