#include "trace/smartphone.hpp"

#include <algorithm>
#include <map>

#include "util/assert.hpp"

namespace midrr::trace {

double SmartphoneTraceResult::p_at_least(std::uint32_t n) const {
  if (active_cdf.empty()) return 0.0;
  return 1.0 - active_cdf.cdf(static_cast<double>(n) - 0.5);
}

std::vector<FlowSession> generate_flow_sessions(
    const SmartphoneTraceConfig& config) {
  MIDRR_REQUIRE(config.total > 0, "trace length must be positive");
  MIDRR_REQUIRE(config.flow_duration_shape > 1.0,
                "Pareto shape must exceed 1 for a finite mean");
  Rng rng(config.seed);
  std::vector<FlowSession> sessions;

  const auto add_flow = [&](SimTime start, double duration_s, bool burst) {
    FlowSession s;
    s.start = start;
    s.duration = std::min(config.total, start + from_seconds(std::max(
                                            duration_s, 0.05))) -
                 start;
    s.from_burst = burst;
    sessions.push_back(s);
  };

  // Pareto with mean m and shape a has scale xm = m * (a - 1) / a.
  const auto pareto_duration = [&](double mean, double shape) {
    const double xm = mean * (shape - 1.0) / shape;
    return rng.pareto(xm, shape);
  };

  // Single-flow sessions.
  {
    const double mean_gap_s = 60.0 / config.flow_arrivals_per_minute;
    SimTime t = 0;
    while (true) {
      t += from_seconds(rng.exponential(mean_gap_s));
      if (t >= config.total) break;
      add_flow(t,
               pareto_duration(config.flow_duration_mean_s,
                               config.flow_duration_shape),
               false);
    }
  }

  // Web-page bursts: several parallel flows starting together.
  if (config.burst_arrivals_per_minute > 0.0) {
    const double mean_gap_s = 60.0 / config.burst_arrivals_per_minute;
    SimTime t = 0;
    while (true) {
      t += from_seconds(rng.exponential(mean_gap_s));
      if (t >= config.total) break;
      const auto k = static_cast<std::uint32_t>(rng.uniform_int(
          config.burst_flows_min, config.burst_flows_max));
      for (std::uint32_t i = 0; i < k; ++i) {
        add_flow(t + from_seconds(rng.uniform(0.0, 0.5)),
                 rng.exponential(config.burst_flow_duration_mean_s), true);
      }
    }
  }

  std::sort(sessions.begin(), sessions.end(),
            [](const FlowSession& a, const FlowSession& b) {
              return a.start < b.start;
            });
  return sessions;
}

SmartphoneTraceResult generate_smartphone_trace(
    const SmartphoneTraceConfig& config) {
  const auto sessions = generate_flow_sessions(config);

  // Flow start/end events as +1/-1 deltas on a time-sorted map.
  std::map<SimTime, std::int32_t> deltas;
  const std::uint64_t total_flows = sessions.size();
  for (const FlowSession& s : sessions) {
    deltas[s.start] += 1;
    deltas[std::min(s.start + s.duration, config.total)] -= 1;
  }

  // Sweep time, sampling the concurrency level at fixed intervals.
  SmartphoneTraceResult result;
  result.total_flows = total_flows;
  std::int64_t level = 0;
  auto it = deltas.begin();
  std::uint64_t active_samples = 0;
  std::uint64_t samples = 0;
  for (SimTime t = 0; t < config.total; t += config.sample_interval) {
    while (it != deltas.end() && it->first <= t) {
      level += it->second;
      ++it;
    }
    MIDRR_ASSERT(level >= 0, "negative concurrency level");
    ++samples;
    if (level >= 1) {
      ++active_samples;
      result.active_cdf.add(static_cast<double>(level));
      result.max_concurrent =
          std::max(result.max_concurrent, static_cast<std::uint32_t>(level));
    }
  }
  result.fraction_active =
      samples > 0 ? static_cast<double>(active_samples) /
                        static_cast<double>(samples)
                  : 0.0;
  return result;
}

}  // namespace midrr::trace
