// Synthetic smartphone flow trace (substitute for the authors' private
// Android logs, Section 6.1 / Figure 7).
//
// The paper instrumented the authors' phones for a week and reports, over
// the ACTIVE periods (>= 1 ongoing flow): P(>= 7 concurrent flows) ~ 10%
// and a maximum of 35 concurrent flows.  We model flow dynamics as an
// M/G/infinity process with two session types:
//   * single flows (streaming, sync, IM keep-alives) with heavy-tailed
//     (Pareto) durations, and
//   * web-page bursts that open several parallel short connections at once
//     (these create the high-concurrency tail that pushes the maximum into
//     the thirties).
// Defaults are calibrated so the two reported statistics land near the
// paper's; the generator exposes every knob so the bench can sweep them.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace midrr::trace {

struct SmartphoneTraceConfig {
  SimDuration total = 7 * 24 * 3600 * kSecond;  ///< one week
  SimDuration sample_interval = kSecond;

  /// Single-flow sessions: Poisson arrivals, Pareto durations.
  /// Defaults calibrated to the paper's reported statistics:
  /// P(>= 7 | active) ~ 0.1 and max concurrent = 35 over one week.
  double flow_arrivals_per_minute = 5.5;
  double flow_duration_mean_s = 30.0;   ///< Pareto mean
  double flow_duration_shape = 1.6;     ///< Pareto alpha (> 1)

  /// Web-page bursts: a batch of parallel short flows.
  double burst_arrivals_per_minute = 0.8;
  std::uint32_t burst_flows_min = 4;
  std::uint32_t burst_flows_max = 14;
  double burst_flow_duration_mean_s = 7.0;

  std::uint64_t seed = 2013;
};

struct SmartphoneTraceResult {
  /// CDF of concurrent flow count over active samples (N >= 1), the
  /// series Fig 7 plots.
  EmpiricalCdf active_cdf;
  std::uint32_t max_concurrent = 0;
  double fraction_active = 0.0;          ///< share of samples with N >= 1
  double p_at_least(std::uint32_t n) const;
  std::uint64_t total_flows = 0;
};

/// Runs the generator and aggregates the concurrent-flow statistics.
SmartphoneTraceResult generate_smartphone_trace(
    const SmartphoneTraceConfig& config = {});

/// One synthetic flow session, for replaying the trace through a scheduler
/// ("a day in the life" workloads).
struct FlowSession {
  SimTime start = 0;
  SimDuration duration = 0;
  bool from_burst = false;  ///< part of a web-page burst (short, parallel)
};

/// Generates the raw sessions (same model and calibration as the CDF path)
/// over `config.total`; sorted by start time.
std::vector<FlowSession> generate_flow_sessions(
    const SmartphoneTraceConfig& config = {});

}  // namespace midrr::trace
