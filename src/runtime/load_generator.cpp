#include "runtime/load_generator.hpp"

#include <algorithm>
#include <string>

#include "util/assert.hpp"

namespace midrr::rt {

LoadGenerator::LoadGenerator(Runtime& rt, LoadGeneratorOptions options)
    : rt_(rt), options_(options) {
  MIDRR_REQUIRE(options_.producers >= 1, "load generator needs a producer");
  MIDRR_REQUIRE(options_.packet_bytes > 0, "packets must carry bytes");
  MIDRR_REQUIRE(options_.rate_pps >= 0.0, "negative packet rate");
  if (options_.payload == LoadGeneratorOptions::PayloadMode::kPooled) {
    MIDRR_REQUIRE(options_.pool.buffer_bytes >= options_.packet_bytes,
                  "pool buffers smaller than the packet size would make "
                  "every frame a heap-fallback miss");
    // Every payload this generator makes is exactly packet_bytes, so
    // larger buffers are pure slot-stride waste -- and stride is cache
    // working set: thousands of slots cycle through the backlog, so a
    // 2048-byte default buffer for 1000-byte packets nearly doubles the
    // bytes the memset path drags through the cache.
    options_.pool.buffer_bytes = options_.packet_bytes + options_.frame_headroom;
    for (std::size_t p = 0; p < options_.producers; ++p) {
      pools_.push_back(std::make_unique<net::FramePool>(
          options_.pool, options_.frame_headroom));
      // The producer thread rebinds itself as owner at start(); until then
      // (and after stop()) the pool is detached so stray releases from
      // worker threads take the cross-thread path.
      pools_.back()->pool().detach_owner();
    }
  }
}

LoadGenerator::~LoadGenerator() { stop(); }

void LoadGenerator::start() {
  MIDRR_REQUIRE(!running_.load(), "load generator already running");
  MIDRR_REQUIRE(rt_.running(), "start the runtime before the generator");
  running_.store(true, std::memory_order_release);
  for (std::size_t p = 0; p < options_.producers; ++p) {
    threads_.emplace_back([this, p] { producer_main(p); });
  }
}

void LoadGenerator::stop() {
  running_.store(false, std::memory_order_release);
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
  // Producer threads are gone; late frame releases (packets still draining
  // inside the runtime) must take the cross-thread return path rather than
  // touch a dead owner's freelist.
  for (auto& pool : pools_) pool->pool().detach_owner();
}

const net::FramePool* LoadGenerator::frame_pool(std::size_t producer) const {
  if (producer >= pools_.size()) return nullptr;
  return pools_[producer].get();
}

PacketPoolStats LoadGenerator::pool_stats() const {
  PacketPoolStats total;
  for (const auto& pool : pools_) {
    const PacketPoolStats s = pool->pool().stats();
    total.slabs += s.slabs;
    total.capacity_slots += s.capacity_slots;
    total.acquired += s.acquired;
    total.released += s.released;
    total.outstanding += s.outstanding;
    total.misses += s.misses;
    total.cross_thread_returns += s.cross_thread_returns;
    total.overflow_returns += s.overflow_returns;
    total.free_local += s.free_local;
    total.in_return_ring += s.in_return_ring;
  }
  return total;
}

void LoadGenerator::register_pool_metrics(
    telemetry::MetricsRegistry& registry) {
  for (std::size_t p = 0; p < pools_.size(); ++p) {
    const PacketPool* pool = &pools_[p]->pool();
    const telemetry::LabelSet labels{{"producer", std::to_string(p)}};
    registry.gauge_fn("midrr_pool_slabs",
                      "Slabs carved by this producer's frame pool.", labels,
                      [pool] { return static_cast<double>(pool->stats().slabs); });
    registry.counter_fn(
        "midrr_pool_acquired_total",
        "Pool slots handed out (one per pooled frame created).", labels,
        [pool] { return static_cast<double>(pool->stats().acquired); });
    registry.counter_fn(
        "midrr_pool_released_total",
        "Pool slots returned (any thread); equals acquired at quiescence "
        "iff no frame leaked.",
        labels,
        [pool] { return static_cast<double>(pool->stats().released); });
    registry.counter_fn(
        "midrr_pool_misses_total",
        "Heap fallbacks: pool exhausted or payload oversized.", labels,
        [pool] { return static_cast<double>(pool->stats().misses); });
    registry.counter_fn(
        "midrr_pool_cross_thread_returns_total",
        "Releases from non-owner threads (recycled via the MPSC return "
        "ring).",
        labels, [pool] {
          return static_cast<double>(pool->stats().cross_thread_returns);
        });
    registry.counter_fn(
        "midrr_pool_overflow_returns_total",
        "Cross-thread returns that found the return ring full and took the "
        "mutex-guarded overflow list.",
        labels, [pool] {
          return static_cast<double>(pool->stats().overflow_returns);
        });
    registry.gauge_fn(
        "midrr_pool_free_slots",
        "Owner freelist occupancy (approximate while threads run).", labels,
        [pool] { return static_cast<double>(pool->stats().free_local); });
    registry.gauge_fn(
        "midrr_pool_return_ring_occupancy",
        "Slots parked in the cross-thread return ring awaiting the owner "
        "(approximate).",
        labels, [pool] {
          return static_cast<double>(pool->stats().in_return_ring);
        });
  }
}

void LoadGenerator::producer_main(std::size_t index) {
  IngressPort port = rt_.port(index);
  const bool heap_payload =
      options_.payload == LoadGeneratorOptions::PayloadMode::kHeap;
  net::FramePool* pool = nullptr;
  if (options_.payload == LoadGeneratorOptions::PayloadMode::kPooled) {
    pool = pools_[index].get();
    pool->pool().bind_owner();  // this thread acquires; workers release
  }

  // Inter-send gap for THIS producer (the aggregate rate splits evenly).
  const SimTime gap_ns =
      options_.rate_pps > 0.0
          ? from_seconds(static_cast<double>(options_.producers) /
                         options_.rate_pps)
          : 0;
  SimTime next_send = rt_.now_ns();

  // Local copy of the live-flow list, refreshed when the control plane
  // publishes.  The steady-state check is one epoch load; only an actual
  // publish pays for the O(max_flows) directory scan behind live_flows()
  // (snapshots describe classes, not members, so the member list comes
  // from the directory, not from an RCU guard).
  ControlPlane& control = rt_.control();
  std::vector<FlowId> live;
  std::uint64_t seen_epoch = 0;
  std::size_t cursor = index;  // stagger producers across flows

  std::uint64_t offered = 0;
  std::uint64_t rejected = 0;
  const auto flush = [&] {
    offered_.fetch_add(offered, std::memory_order_relaxed);
    rejected_.fetch_add(rejected, std::memory_order_relaxed);
    offered = 0;
    rejected = 0;
  };

  while (running_.load(std::memory_order_acquire)) {
    const std::uint64_t epoch = control.epoch();
    if (epoch != seen_epoch) {
      seen_epoch = epoch;  // read BEFORE the scan: worst case, one
                           // redundant refresh on the next iteration
      live = control.live_flows();
      if (cursor >= live.size()) cursor = index;
    }
    if (live.empty()) {
      flush();
      std::this_thread::yield();
      continue;
    }
    if (gap_ns > 0) {
      const SimTime now = rt_.now_ns();
      if (now < next_send) {
        flush();
        std::this_thread::yield();
        continue;
      }
      next_send = std::max(next_send + gap_ns, now - 64 * gap_ns);
    }
    if (cursor >= live.size()) cursor = 0;
    const FlowId flow = live[cursor];
    ++cursor;
    // Injected pool exhaustion: the acquire fails as if every slab were
    // pinned downstream; the packet is never built (counted by the
    // injector AND as a producer-side reject).
    if (fault::FaultInjector* const injector = rt_.fault();
        injector != nullptr && injector->has_pool_faults() &&
        injector->pool_exhausted(rt_.now_ns())) {
      injector->note_pool_reject();
      ++rejected;
      std::this_thread::yield();
      continue;
    }
    std::shared_ptr<const net::Frame> frame;
    if (pool != nullptr) {
      frame = pool->make_filled(options_.packet_bytes,
                                static_cast<net::Byte>(flow));
    } else if (heap_payload) {
      frame = std::make_shared<const net::Frame>(
          net::ByteBuffer(options_.packet_bytes,
                          static_cast<net::Byte>(flow)));
    }
    if (port.offer(flow, options_.packet_bytes, std::move(frame))) {
      ++offered;
    } else {
      ++rejected;
      // Ring full (or flow went away): give consumers the CPU.
      std::this_thread::yield();
    }
    if (((offered + rejected) & 0x3ff) == 0) flush();
  }
  flush();
}

}  // namespace midrr::rt
