#include "runtime/load_generator.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace midrr::rt {

LoadGenerator::LoadGenerator(Runtime& rt, LoadGeneratorOptions options)
    : rt_(rt), options_(options) {
  MIDRR_REQUIRE(options_.producers >= 1, "load generator needs a producer");
  MIDRR_REQUIRE(options_.packet_bytes > 0, "packets must carry bytes");
  MIDRR_REQUIRE(options_.rate_pps >= 0.0, "negative packet rate");
}

LoadGenerator::~LoadGenerator() { stop(); }

void LoadGenerator::start() {
  MIDRR_REQUIRE(!running_.load(), "load generator already running");
  MIDRR_REQUIRE(rt_.running(), "start the runtime before the generator");
  running_.store(true, std::memory_order_release);
  for (std::size_t p = 0; p < options_.producers; ++p) {
    threads_.emplace_back([this, p] { producer_main(p); });
  }
}

void LoadGenerator::stop() {
  running_.store(false, std::memory_order_release);
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
}

void LoadGenerator::producer_main(std::size_t index) {
  IngressPort port = rt_.port(index);

  // Inter-send gap for THIS producer (the aggregate rate splits evenly).
  const SimTime gap_ns =
      options_.rate_pps > 0.0
          ? from_seconds(static_cast<double>(options_.producers) /
                         options_.rate_pps)
          : 0;
  SimTime next_send = rt_.now_ns();

  // Local copy of the live-flow list, refreshed when the control plane
  // publishes.  Copying under a short RCU guard (and releasing it before
  // offer(), which takes its own guard from the same Reader) keeps the
  // no-nested-guards rule intact.
  std::vector<FlowId> live;
  std::uint64_t seen_version = 0;
  std::size_t cursor = index;  // stagger producers across flows

  std::uint64_t offered = 0;
  std::uint64_t rejected = 0;
  const auto flush = [&] {
    offered_.fetch_add(offered, std::memory_order_relaxed);
    rejected_.fetch_add(rejected, std::memory_order_relaxed);
    offered = 0;
    rejected = 0;
  };

  while (running_.load(std::memory_order_acquire)) {
    {
      const auto guard = port.snapshot();
      if (guard->version != seen_version) {
        seen_version = guard->version;
        live = guard->live;
      }
    }
    if (live.empty()) {
      flush();
      std::this_thread::yield();
      continue;
    }
    if (gap_ns > 0) {
      const SimTime now = rt_.now_ns();
      if (now < next_send) {
        flush();
        std::this_thread::yield();
        continue;
      }
      next_send = std::max(next_send + gap_ns, now - 64 * gap_ns);
    }
    const FlowId flow = live[cursor % live.size()];
    ++cursor;
    if (port.offer(flow, options_.packet_bytes)) {
      ++offered;
    } else {
      ++rejected;
      // Ring full (or flow went away): give consumers the CPU.
      std::this_thread::yield();
    }
    if (((offered + rejected) & 0x3ff) == 0) flush();
  }
  flush();
}

}  // namespace midrr::rt
