#include "runtime/control_plane.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace midrr::rt {

ControlPlane::ControlPlane(ShardApplier& applier,
                           std::vector<std::uint32_t> shard_of_iface,
                           std::size_t max_flows)
    : applier_(applier),
      shard_of_iface_(std::move(shard_of_iface)),
      max_flows_(max_flows),
      cell_(std::make_unique<RuntimeSnapshot>()) {
  MIDRR_REQUIRE(max_flows_ > 0, "max_flows must be positive");
  latest_.iface_count = shard_of_iface_.size();
  latest_.version = 1;
  publish_locked(clone_locked());
}

std::unique_ptr<RuntimeSnapshot> ControlPlane::clone_locked() const {
  return std::make_unique<RuntimeSnapshot>(latest_);
}

void ControlPlane::publish_locked(std::unique_ptr<RuntimeSnapshot> next) {
  cell_.publish(std::unique_ptr<const RuntimeSnapshot>(next.release()));
}

std::uint64_t ControlPlane::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latest_.version;
}

std::vector<std::uint32_t> ControlPlane::shards_of(
    const std::vector<IfaceId>& willing) const {
  std::vector<std::uint32_t> shards;
  for (const IfaceId j : willing) {
    MIDRR_REQUIRE(j < shard_of_iface_.size(), "unknown interface in Pi row");
    shards.push_back(shard_of_iface_[j]);
  }
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  return shards;
}

std::vector<IfaceId> ControlPlane::willing_in_shard(
    const std::vector<IfaceId>& willing, std::uint32_t shard) const {
  std::vector<IfaceId> subset;
  for (const IfaceId j : willing) {
    if (shard_of_iface_[j] == shard) subset.push_back(j);
  }
  return subset;
}

std::vector<IfaceId> ControlPlane::live_subset_locked(
    const std::vector<IfaceId>& willing) const {
  if (down_.empty()) return willing;
  std::vector<IfaceId> live;
  for (const IfaceId j : willing) {
    if (!down_[j]) live.push_back(j);
  }
  return live;
}

RtFlowSpec ControlPlane::spec_of(const SnapshotFlow& entry) {
  RtFlowSpec spec;
  spec.weight = entry.weight;
  spec.willing = entry.willing;
  spec.name = entry.name;
  spec.queue_capacity_bytes = entry.queue_capacity_bytes;
  return spec;
}

FlowId ControlPlane::add_flow(const RtFlowSpec& spec) {
  MIDRR_REQUIRE(spec.weight > 0.0, "flow weight must be positive");
  std::lock_guard<std::mutex> lock(mu_);

  // Validate everything BEFORE consuming a flow id: a rejected add must
  // not burn a slot of the (never-reused) id space.
  SnapshotFlow entry;
  entry.live = true;
  entry.weight = spec.weight;
  entry.willing = spec.willing;
  std::sort(entry.willing.begin(), entry.willing.end());
  entry.willing.erase(std::unique(entry.willing.begin(), entry.willing.end()),
                      entry.willing.end());
  shards_of(entry.willing);  // validates: throws on unknown interfaces
  const std::vector<IfaceId> live_willing = live_subset_locked(entry.willing);
  entry.shards = shards_of(live_willing);
  entry.quarantined = entry.shards.empty() && !entry.willing.empty();
  entry.name = spec.name;
  entry.queue_capacity_bytes = spec.queue_capacity_bytes;
  MIDRR_REQUIRE(next_flow_ < max_flows_,
                "flow arena exhausted (RuntimeOptions::max_flows)");
  const FlowId flow = next_flow_++;
  entry.id = flow;

  // Data plane first: every hosting shard must know the flow before any
  // producer can route a packet to it.
  for (const std::uint32_t s : entry.shards) {
    applier_.shard_add_flow(s, flow, spec,
                            willing_in_shard(live_willing, s));
  }

  if (latest_.flows.size() <= flow) latest_.flows.resize(flow + 1);
  latest_.flows[flow] = std::move(entry);
  latest_.live.insert(
      std::lower_bound(latest_.live.begin(), latest_.live.end(), flow), flow);
  ++latest_.version;
  publish_locked(clone_locked());
  return flow;
}

void ControlPlane::remove_flow(FlowId flow) {
  std::lock_guard<std::mutex> lock(mu_);
  MIDRR_REQUIRE(flow < latest_.flows.size() && latest_.flows[flow].live,
                "removing unknown flow");
  const std::vector<std::uint32_t> shards = latest_.flows[flow].shards;

  // Publish first: producers holding the new snapshot stop offering, then
  // the shards forget the flow (stragglers in ingress rings get dropped by
  // the fan-in stage).
  latest_.flows[flow].live = false;
  latest_.flows[flow].quarantined = false;
  latest_.flows[flow].shards.clear();
  latest_.live.erase(
      std::find(latest_.live.begin(), latest_.live.end(), flow));
  ++latest_.version;
  publish_locked(clone_locked());

  for (const std::uint32_t s : shards) applier_.shard_remove_flow(s, flow);
}

void ControlPlane::set_weight(FlowId flow, double weight) {
  MIDRR_REQUIRE(weight > 0.0, "flow weight must be positive");
  std::lock_guard<std::mutex> lock(mu_);
  MIDRR_REQUIRE(flow < latest_.flows.size() && latest_.flows[flow].live,
                "reweighting unknown flow");
  for (const std::uint32_t s : latest_.flows[flow].shards) {
    applier_.shard_set_weight(s, flow, weight);
  }
  latest_.flows[flow].weight = weight;
  ++latest_.version;
  publish_locked(clone_locked());
}

void ControlPlane::set_willing(FlowId flow, IfaceId iface, bool value) {
  std::lock_guard<std::mutex> lock(mu_);
  MIDRR_REQUIRE(flow < latest_.flows.size() && latest_.flows[flow].live,
                "set_willing for unknown flow");
  MIDRR_REQUIRE(iface < shard_of_iface_.size(),
                "set_willing for unknown interface");
  SnapshotFlow& entry = latest_.flows[flow];
  const bool had = std::binary_search(entry.willing.begin(),
                                      entry.willing.end(), iface);
  if (had == value) return;

  std::vector<IfaceId> new_willing = entry.willing;
  if (value) {
    new_willing.insert(
        std::lower_bound(new_willing.begin(), new_willing.end(), iface),
        iface);
  } else {
    new_willing.erase(
        std::find(new_willing.begin(), new_willing.end(), iface));
  }

  // Hosting is computed over LIVE willing interfaces: flipping a bit on a
  // dead interface edits Pi but moves nothing until a revive re-steers.
  const std::uint32_t shard = shard_of_iface_[iface];
  const bool iface_live = down_.empty() || !down_[iface];
  const std::vector<IfaceId> new_live = live_subset_locked(new_willing);
  const std::vector<std::uint32_t> old_shards = entry.shards;
  const std::vector<std::uint32_t> new_shards = shards_of(new_live);
  const bool was_hosted =
      std::binary_search(old_shards.begin(), old_shards.end(), shard);
  const bool now_hosted =
      std::binary_search(new_shards.begin(), new_shards.end(), shard);

  if (iface_live && value) {
    // Coverage grows: register before publishing.
    if (!was_hosted) {
      RtFlowSpec spec = spec_of(entry);
      spec.willing = new_willing;
      applier_.shard_add_flow(shard, flow, spec,
                              willing_in_shard(new_live, shard));
    } else {
      applier_.shard_set_willing(shard, flow, iface, true);
    }
  }

  entry.willing = std::move(new_willing);
  entry.shards = new_shards;
  entry.quarantined = new_shards.empty() && !entry.willing.empty();
  ++latest_.version;
  publish_locked(clone_locked());

  if (iface_live && !value) {
    // Coverage shrinks: publish first, then drop the flow from the shard
    // (its queue there is discarded -- same as interface-loss semantics in
    // the simulator: packets stay with the flow only within a scheduler).
    if (was_hosted && !now_hosted) {
      applier_.shard_remove_flow(shard, flow);
    } else if (was_hosted) {
      applier_.shard_set_willing(shard, flow, iface, false);
    }
  }
}

void ControlPlane::set_iface_down(IfaceId iface, bool down) {
  std::lock_guard<std::mutex> lock(mu_);
  MIDRR_REQUIRE(iface < shard_of_iface_.size(),
                "set_iface_down for unknown interface");
  if (down_.empty()) down_.assign(shard_of_iface_.size(), false);
  if (down_[iface] == down) return;
  down_[iface] = down;
  latest_.iface_down = down_;

  struct Removal {
    std::uint32_t shard;
    FlowId flow;
  };
  std::vector<Removal> removals;
  const std::uint32_t iface_shard = shard_of_iface_[iface];

  for (const FlowId id : latest_.live) {
    SnapshotFlow& entry = latest_.flows[id];
    if (!std::binary_search(entry.willing.begin(), entry.willing.end(),
                            iface)) {
      continue;
    }
    const std::vector<IfaceId> live_willing = live_subset_locked(entry.willing);
    const std::vector<std::uint32_t> new_shards = shards_of(live_willing);

    // Grow side before the publish: a producer may only route to a shard
    // that already knows the flow.
    for (const std::uint32_t s : new_shards) {
      if (!std::binary_search(entry.shards.begin(), entry.shards.end(), s)) {
        applier_.shard_add_flow(s, id, spec_of(entry),
                                willing_in_shard(live_willing, s));
      } else if (!down && s == iface_shard) {
        // Shard hosted the flow throughout; make sure the revived
        // interface's willing bit is set there (it is cleared when a
        // re-add while the interface was dead registered only the live
        // subset).  Idempotent when the bit never went away.
        applier_.shard_set_willing(s, id, iface, true);
      }
    }
    for (const std::uint32_t s : entry.shards) {
      if (!std::binary_search(new_shards.begin(), new_shards.end(), s)) {
        removals.push_back(Removal{s, id});
      }
    }
    entry.shards = new_shards;
    entry.quarantined = new_shards.empty() && !entry.willing.empty();
  }

  ++latest_.version;
  publish_locked(clone_locked());

  // Shrink side after the publish: producers already stopped routing here;
  // queued packets become counted straggler drops at the shard.
  for (const Removal& r : removals) applier_.shard_remove_flow(r.shard, r.flow);
}

bool ControlPlane::iface_down(IfaceId iface) const {
  std::lock_guard<std::mutex> lock(mu_);
  return iface < down_.size() && down_[iface];
}

std::size_t ControlPlane::quarantined_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const FlowId id : latest_.live) {
    if (latest_.flows[id].quarantined) ++n;
  }
  return n;
}

}  // namespace midrr::rt
