#include "runtime/control_plane.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace midrr::rt {

ControlPlane::ControlPlane(ShardApplier& applier,
                           std::vector<std::uint32_t> shard_of_iface,
                           std::size_t max_flows)
    : applier_(applier),
      shard_of_iface_(std::move(shard_of_iface)),
      max_flows_(max_flows),
      cell_(std::make_unique<RuntimeSnapshot>()) {
  MIDRR_REQUIRE(max_flows_ > 0, "max_flows must be positive");
  latest_.iface_count = shard_of_iface_.size();
  latest_.version = 1;
  publish_locked(clone_locked());
}

std::unique_ptr<RuntimeSnapshot> ControlPlane::clone_locked() const {
  return std::make_unique<RuntimeSnapshot>(latest_);
}

void ControlPlane::publish_locked(std::unique_ptr<RuntimeSnapshot> next) {
  cell_.publish(std::unique_ptr<const RuntimeSnapshot>(next.release()));
}

std::uint64_t ControlPlane::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latest_.version;
}

std::vector<std::uint32_t> ControlPlane::shards_of(
    const std::vector<IfaceId>& willing) const {
  std::vector<std::uint32_t> shards;
  for (const IfaceId j : willing) {
    MIDRR_REQUIRE(j < shard_of_iface_.size(), "unknown interface in Pi row");
    shards.push_back(shard_of_iface_[j]);
  }
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  return shards;
}

std::vector<IfaceId> ControlPlane::willing_in_shard(
    const std::vector<IfaceId>& willing, std::uint32_t shard) const {
  std::vector<IfaceId> subset;
  for (const IfaceId j : willing) {
    if (shard_of_iface_[j] == shard) subset.push_back(j);
  }
  return subset;
}

FlowId ControlPlane::add_flow(const RtFlowSpec& spec) {
  MIDRR_REQUIRE(spec.weight > 0.0, "flow weight must be positive");
  std::lock_guard<std::mutex> lock(mu_);

  // Validate everything BEFORE consuming a flow id: a rejected add must
  // not burn a slot of the (never-reused) id space.
  SnapshotFlow entry;
  entry.live = true;
  entry.weight = spec.weight;
  entry.willing = spec.willing;
  std::sort(entry.willing.begin(), entry.willing.end());
  entry.willing.erase(std::unique(entry.willing.begin(), entry.willing.end()),
                      entry.willing.end());
  entry.shards = shards_of(entry.willing);  // throws on unknown interfaces
  entry.name = spec.name;
  MIDRR_REQUIRE(next_flow_ < max_flows_,
                "flow arena exhausted (RuntimeOptions::max_flows)");
  const FlowId flow = next_flow_++;
  entry.id = flow;

  // Data plane first: every hosting shard must know the flow before any
  // producer can route a packet to it.
  for (const std::uint32_t s : entry.shards) {
    applier_.shard_add_flow(s, flow, spec,
                            willing_in_shard(entry.willing, s));
  }

  if (latest_.flows.size() <= flow) latest_.flows.resize(flow + 1);
  latest_.flows[flow] = std::move(entry);
  latest_.live.insert(
      std::lower_bound(latest_.live.begin(), latest_.live.end(), flow), flow);
  ++latest_.version;
  publish_locked(clone_locked());
  return flow;
}

void ControlPlane::remove_flow(FlowId flow) {
  std::lock_guard<std::mutex> lock(mu_);
  MIDRR_REQUIRE(flow < latest_.flows.size() && latest_.flows[flow].live,
                "removing unknown flow");
  const std::vector<std::uint32_t> shards = latest_.flows[flow].shards;

  // Publish first: producers holding the new snapshot stop offering, then
  // the shards forget the flow (stragglers in ingress rings get dropped by
  // the fan-in stage).
  latest_.flows[flow].live = false;
  latest_.flows[flow].shards.clear();
  latest_.live.erase(
      std::find(latest_.live.begin(), latest_.live.end(), flow));
  ++latest_.version;
  publish_locked(clone_locked());

  for (const std::uint32_t s : shards) applier_.shard_remove_flow(s, flow);
}

void ControlPlane::set_weight(FlowId flow, double weight) {
  MIDRR_REQUIRE(weight > 0.0, "flow weight must be positive");
  std::lock_guard<std::mutex> lock(mu_);
  MIDRR_REQUIRE(flow < latest_.flows.size() && latest_.flows[flow].live,
                "reweighting unknown flow");
  for (const std::uint32_t s : latest_.flows[flow].shards) {
    applier_.shard_set_weight(s, flow, weight);
  }
  latest_.flows[flow].weight = weight;
  ++latest_.version;
  publish_locked(clone_locked());
}

void ControlPlane::set_willing(FlowId flow, IfaceId iface, bool value) {
  std::lock_guard<std::mutex> lock(mu_);
  MIDRR_REQUIRE(flow < latest_.flows.size() && latest_.flows[flow].live,
                "set_willing for unknown flow");
  MIDRR_REQUIRE(iface < shard_of_iface_.size(),
                "set_willing for unknown interface");
  SnapshotFlow& entry = latest_.flows[flow];
  const bool had = std::binary_search(entry.willing.begin(),
                                      entry.willing.end(), iface);
  if (had == value) return;

  const std::uint32_t shard = shard_of_iface_[iface];
  const bool hosted =
      std::binary_search(entry.shards.begin(), entry.shards.end(), shard);

  std::vector<IfaceId> new_willing = entry.willing;
  if (value) {
    new_willing.insert(
        std::lower_bound(new_willing.begin(), new_willing.end(), iface),
        iface);
  } else {
    new_willing.erase(
        std::find(new_willing.begin(), new_willing.end(), iface));
  }
  const bool still_hosted = !willing_in_shard(new_willing, shard).empty();

  if (value && !hosted) {
    // Coverage grows: register the flow in the new shard before publishing.
    RtFlowSpec spec;
    spec.weight = entry.weight;
    spec.willing = new_willing;
    spec.name = entry.name;
    applier_.shard_add_flow(shard, flow, spec, {iface});
    entry.shards.insert(
        std::lower_bound(entry.shards.begin(), entry.shards.end(), shard),
        shard);
  } else if (value) {
    applier_.shard_set_willing(shard, flow, iface, true);
  }

  entry.willing = std::move(new_willing);
  ++latest_.version;

  if (!value && hosted && !still_hosted) {
    // Coverage shrinks: publish first, then drop the flow from the shard
    // (its queue there is discarded -- same as interface-loss semantics in
    // the simulator: packets stay with the flow only within a scheduler).
    entry.shards.erase(
        std::find(entry.shards.begin(), entry.shards.end(), shard));
    publish_locked(clone_locked());
    applier_.shard_remove_flow(shard, flow);
    return;
  }
  if (!value && hosted) {
    publish_locked(clone_locked());
    applier_.shard_set_willing(shard, flow, iface, false);
    return;
  }
  publish_locked(clone_locked());
}

}  // namespace midrr::rt
