#include "runtime/control_plane.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace midrr::rt {

namespace {

// Works for shard lists and Pi rows alike (IfaceId is std::uint32_t).
bool contains(const std::vector<std::uint32_t>& sorted, std::uint32_t value) {
  return std::binary_search(sorted.begin(), sorted.end(), value);
}

}  // namespace

ControlPlane::ControlPlane(ShardApplier& applier,
                           std::vector<std::uint32_t> shard_of_iface,
                           std::size_t max_flows)
    : applier_(applier),
      shard_of_iface_(std::move(shard_of_iface)),
      max_flows_(max_flows),
      dir_(std::make_unique<std::atomic<std::uint32_t>[]>(max_flows)),
      cell_(std::make_unique<RuntimeSnapshot>()) {
  MIDRR_REQUIRE(max_flows_ > 0, "max_flows must be positive");
  latest_.iface_count = shard_of_iface_.size();
  latest_.version = 1;
  publish_locked(clone_locked());
}

std::unique_ptr<RuntimeSnapshot> ControlPlane::clone_locked() const {
  return std::make_unique<RuntimeSnapshot>(latest_);
}

void ControlPlane::publish_locked(std::unique_ptr<RuntimeSnapshot> next) {
  cell_.publish(std::unique_ptr<const RuntimeSnapshot>(next.release()));
}

std::uint64_t ControlPlane::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latest_.version;
}

std::size_t ControlPlane::class_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latest_.live.size();
}

std::vector<std::uint32_t> ControlPlane::shards_of(
    const std::vector<IfaceId>& willing) const {
  std::vector<std::uint32_t> shards;
  for (const IfaceId j : willing) {
    MIDRR_REQUIRE(j < shard_of_iface_.size(), "unknown interface in Pi row");
    shards.push_back(shard_of_iface_[j]);
  }
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  return shards;
}

std::vector<IfaceId> ControlPlane::willing_in_shard(
    const std::vector<IfaceId>& willing, std::uint32_t shard) const {
  std::vector<IfaceId> subset;
  for (const IfaceId j : willing) {
    if (shard_of_iface_[j] == shard) subset.push_back(j);
  }
  return subset;
}

std::vector<IfaceId> ControlPlane::live_subset_locked(
    const std::vector<IfaceId>& willing) const {
  if (down_.empty()) return willing;
  std::vector<IfaceId> live;
  for (const IfaceId j : willing) {
    if (!down_[j]) live.push_back(j);
  }
  return live;
}

RtFlowSpec ControlPlane::spec_of(const SnapshotClass& entry) {
  RtFlowSpec spec;
  spec.weight = entry.weight;
  spec.willing = entry.willing;
  spec.name = entry.name;
  spec.queue_capacity_bytes = entry.queue_capacity_bytes;
  return spec;
}

ClassId ControlPlane::intern_locked(const ClassSpec& spec) {
  MIDRR_REQUIRE(spec.weight > 0.0, "class weight must be positive");
  ClassKey key;
  key.weight = spec.weight;
  key.willing = spec.willing;
  key.queue_capacity_bytes = spec.queue_capacity_bytes;
  normalize_key(key);
  shards_of(key.willing);  // validates: throws on unknown interfaces
  const ClassId cid = table_.intern(key);
  if (latest_.classes.size() <= cid) latest_.classes.resize(cid + 1);
  SnapshotClass& entry = latest_.classes[cid];
  if (!entry.live) {
    // Fresh mint or revival: (re)build the snapshot entry from the key.
    entry.id = cid;
    entry.weight = key.weight;
    entry.willing = key.willing;
    entry.queue_capacity_bytes = key.queue_capacity_bytes;
    entry.members = 0;
    const std::vector<IfaceId> live_willing = live_subset_locked(entry.willing);
    entry.shards = shards_of(live_willing);
    entry.quarantined = entry.shards.empty() && !entry.willing.empty();
  }
  if (entry.name.empty() && !spec.name.empty()) entry.name = spec.name;
  return cid;
}

void ControlPlane::refresh_liveness_locked(ClassId cls) {
  SnapshotClass& entry = latest_.classes[cls];
  const bool was_live = entry.live;
  entry.live = entry.members > 0;
  if (entry.live && !was_live) {
    latest_.live.insert(
        std::lower_bound(latest_.live.begin(), latest_.live.end(), cls), cls);
  } else if (!entry.live && was_live) {
    latest_.live.erase(
        std::find(latest_.live.begin(), latest_.live.end(), cls));
    entry.quarantined = false;
    entry.shards.clear();
  }
}

void ControlPlane::dir_store(FlowId flow, ClassId cls) {
  const std::uint32_t prev =
      dir_[flow].exchange(cls + 1, std::memory_order_release);
  if (prev == 0) live_flows_.fetch_add(1, std::memory_order_relaxed);
}

void ControlPlane::dir_clear(FlowId flow) {
  const std::uint32_t prev = dir_[flow].exchange(0, std::memory_order_release);
  if (prev != 0) live_flows_.fetch_sub(1, std::memory_order_relaxed);
}

std::vector<FlowId> ControlPlane::live_flows() const {
  std::vector<FlowId> out;
  out.reserve(live_flows_.load(std::memory_order_relaxed));
  for (FlowId f = 0; f < max_flows_; ++f) {
    if (dir_[f].load(std::memory_order_acquire) != 0) out.push_back(f);
  }
  return out;
}

std::vector<FlowId> ControlPlane::members_of(ClassId cls) const {
  std::vector<FlowId> out;
  for (FlowId f = 0; f < max_flows_; ++f) {
    if (dir_[f].load(std::memory_order_acquire) == cls + 1) out.push_back(f);
  }
  return out;
}

FlowId ControlPlane::add_members(const ClassSpec& spec, std::size_t count) {
  MIDRR_REQUIRE(count > 0, "add_members of zero flows");
  std::lock_guard<std::mutex> lock(mu_);
  const ClassId cid = intern_locked(spec);  // validates weight + interfaces
  MIDRR_REQUIRE(next_flow_ + count <= max_flows_,
                "flow arena exhausted (RuntimeOptions::max_flows)");
  SnapshotClass& entry = latest_.classes[cid];
  const std::vector<IfaceId> live_willing = live_subset_locked(entry.willing);
  const RtFlowSpec reg = spec_of(entry);
  const FlowId first = next_flow_;

  // Data plane first: every hosting shard must know a flow before any
  // producer can route a packet to it.  Per-shard subsets are computed once
  // for the whole batch.
  for (const std::uint32_t s : entry.shards) {
    const std::vector<IfaceId> subset = willing_in_shard(live_willing, s);
    for (std::size_t k = 0; k < count; ++k) {
      applier_.shard_add_flow(s, first + static_cast<FlowId>(k), reg, subset);
    }
  }
  next_flow_ += static_cast<FlowId>(count);
  entry.members += count;
  refresh_liveness_locked(cid);
  ++latest_.version;
  publish_locked(clone_locked());  // ONE publish for the whole batch

  // Directory last: a producer that resolves flow -> class must find the
  // class in the snapshot it reads.
  for (std::size_t k = 0; k < count; ++k) {
    dir_store(first + static_cast<FlowId>(k), cid);
  }
  return first;
}

void ControlPlane::remove_member(FlowId flow) {
  std::lock_guard<std::mutex> lock(mu_);
  const ClassId cid = class_of(flow);
  MIDRR_REQUIRE(cid != kInvalidClass, "removing unknown flow");
  SnapshotClass& entry = latest_.classes[cid];

  // Directory first (producers stop resolving the flow), then the publish
  // bumps the epoch, invalidating cached routes; stragglers already queued
  // get dropped by the fan-in stage.
  dir_clear(flow);
  const std::vector<std::uint32_t> shards = entry.shards;
  --entry.members;
  refresh_liveness_locked(cid);
  ++latest_.version;
  publish_locked(clone_locked());

  for (const std::uint32_t s : shards) applier_.shard_remove_flow(s, flow);
}

void ControlPlane::move_member(FlowId flow, const ClassSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  const ClassId old_cid = class_of(flow);
  MIDRR_REQUIRE(old_cid != kInvalidClass, "moving unknown flow");
  const ClassId new_cid = intern_locked(spec);
  if (new_cid == old_cid) return;  // identical identity: nothing to move
  // References only AFTER the last intern (it may resize classes).
  SnapshotClass& oldc = latest_.classes[old_cid];
  SnapshotClass& newc = latest_.classes[new_cid];
  const std::vector<IfaceId> old_live = live_subset_locked(oldc.willing);
  const std::vector<IfaceId> new_live = live_subset_locked(newc.willing);

  // Coverage diff.  Queues survive on shards hosting both classes; the
  // flow is re-registered on new-only shards (before the publish) and
  // dropped from old-only shards (after it).
  for (const std::uint32_t s : newc.shards) {
    if (!contains(oldc.shards, s)) {
      applier_.shard_add_flow(s, flow, spec_of(newc),
                              willing_in_shard(new_live, s));
      continue;
    }
    if (newc.weight != oldc.weight) {
      applier_.shard_set_weight(s, flow, newc.weight);
    }
    for (const IfaceId j : willing_in_shard(old_live, s)) {
      if (!contains(new_live, j)) applier_.shard_set_willing(s, flow, j, false);
    }
    for (const IfaceId j : willing_in_shard(new_live, s)) {
      if (!contains(old_live, j)) applier_.shard_set_willing(s, flow, j, true);
    }
  }

  const std::vector<std::uint32_t> old_shards = oldc.shards;
  --oldc.members;
  newc.members += 1;
  refresh_liveness_locked(old_cid);
  refresh_liveness_locked(new_cid);
  ++latest_.version;
  publish_locked(clone_locked());
  dir_store(flow, new_cid);

  for (const std::uint32_t s : old_shards) {
    if (!contains(latest_.classes[new_cid].shards, s)) {
      applier_.shard_remove_flow(s, flow);
    }
  }
}

ClassId ControlPlane::reweight_class(ClassId cls, double weight) {
  MIDRR_REQUIRE(weight > 0.0, "class weight must be positive");
  std::lock_guard<std::mutex> lock(mu_);
  MIDRR_REQUIRE(cls < latest_.classes.size() && latest_.classes[cls].live,
                "reweighting unknown class");
  if (latest_.classes[cls].weight == weight) return cls;

  ClassSpec spec = spec_of(latest_.classes[cls]);
  spec.weight = weight;
  const std::vector<FlowId> members = members_of(cls);
  const ClassId target = intern_locked(spec);  // mint, revive, or MERGE
  SnapshotClass& oldc = latest_.classes[cls];
  SnapshotClass& newc = latest_.classes[target];

  // Same Pi row => same hosting shards; every member's queue survives, only
  // its scheduler weight changes.
  for (const FlowId f : members) {
    for (const std::uint32_t s : newc.shards) {
      applier_.shard_set_weight(s, f, weight);
    }
  }
  newc.members += members.size();
  oldc.members = 0;
  refresh_liveness_locked(cls);
  refresh_liveness_locked(target);
  ++latest_.version;
  publish_locked(clone_locked());  // ONE publish for the whole class
  for (const FlowId f : members) dir_store(f, target);
  return target;
}

FlowId ControlPlane::apply(const ControlDelta& delta) {
  switch (delta.kind) {
    case ControlDelta::Kind::kAddMembers:
      return add_members(delta.spec, delta.count);
    case ControlDelta::Kind::kRemoveMember:
      remove_member(delta.flow);
      return kInvalidFlow;
    case ControlDelta::Kind::kMoveMember:
      move_member(delta.flow, delta.spec);
      return kInvalidFlow;
    case ControlDelta::Kind::kReweightClass:
      reweight_class(delta.cls, delta.weight);
      return kInvalidFlow;
  }
  MIDRR_REQUIRE(false, "unknown delta kind");
  return kInvalidFlow;
}

void ControlPlane::set_weight(FlowId flow, double weight) {
  MIDRR_REQUIRE(weight > 0.0, "flow weight must be positive");
  ClassSpec spec;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const ClassId cid = class_of(flow);
    MIDRR_REQUIRE(cid != kInvalidClass, "reweighting unknown flow");
    spec = spec_of(latest_.classes[cid]);
  }
  spec.weight = weight;
  move_member(flow, spec);
}

void ControlPlane::set_willing(FlowId flow, IfaceId iface, bool value) {
  ClassSpec spec;
  {
    std::lock_guard<std::mutex> lock(mu_);
    MIDRR_REQUIRE(iface < shard_of_iface_.size(),
                  "set_willing for unknown interface");
    const ClassId cid = class_of(flow);
    MIDRR_REQUIRE(cid != kInvalidClass, "set_willing for unknown flow");
    spec = spec_of(latest_.classes[cid]);
    const bool had = contains(spec.willing, iface);
    if (had == value) return;
    if (value) {
      spec.willing.insert(
          std::lower_bound(spec.willing.begin(), spec.willing.end(), iface),
          iface);
    } else {
      spec.willing.erase(
          std::find(spec.willing.begin(), spec.willing.end(), iface));
    }
  }
  move_member(flow, spec);
}

void ControlPlane::set_iface_down(IfaceId iface, bool down) {
  std::lock_guard<std::mutex> lock(mu_);
  MIDRR_REQUIRE(iface < shard_of_iface_.size(),
                "set_iface_down for unknown interface");
  if (down_.empty()) down_.assign(shard_of_iface_.size(), false);
  if (down_[iface] == down) return;
  down_[iface] = down;
  latest_.iface_down = down_;

  // One directory scan gives every affected class's member list (the only
  // O(max_flows) step; everything else is O(classes) + O(moved members)).
  std::vector<std::vector<FlowId>> members(latest_.classes.size());
  for (FlowId f = 0; f < next_flow_; ++f) {
    const std::uint32_t v = dir_[f].load(std::memory_order_acquire);
    if (v != 0) members[v - 1].push_back(f);
  }

  struct Removal {
    std::uint32_t shard;
    FlowId flow;
  };
  std::vector<Removal> removals;
  const std::uint32_t iface_shard = shard_of_iface_[iface];

  for (const ClassId cid : latest_.live) {
    SnapshotClass& entry = latest_.classes[cid];
    if (!contains(entry.willing, iface)) continue;
    const std::vector<IfaceId> live_willing = live_subset_locked(entry.willing);
    const std::vector<std::uint32_t> new_shards = shards_of(live_willing);

    // Grow side before the publish: a producer may only route to a shard
    // that already knows the flow.
    for (const std::uint32_t s : new_shards) {
      if (!contains(entry.shards, s)) {
        const std::vector<IfaceId> subset = willing_in_shard(live_willing, s);
        for (const FlowId f : members[cid]) {
          applier_.shard_add_flow(s, f, spec_of(entry), subset);
        }
      } else if (s == iface_shard) {
        // The shard hosts the class on both sides of the transition (some
        // OTHER willing interface there is live), so only the transitioning
        // interface's willing bit flips: cleared on death -- the scheduler
        // must stop granting the dead interface turns -- and restored on
        // revival (a re-add while the interface was dead registered only
        // the live subset).  Idempotent when the bit never went away.
        for (const FlowId f : members[cid]) {
          applier_.shard_set_willing(s, f, iface, !down);
        }
      }
    }
    for (const std::uint32_t s : entry.shards) {
      if (!contains(new_shards, s)) {
        for (const FlowId f : members[cid]) {
          removals.push_back(Removal{s, f});
        }
      }
    }
    entry.shards = new_shards;
    entry.quarantined = new_shards.empty() && !entry.willing.empty();
  }

  ++latest_.version;
  publish_locked(clone_locked());  // ONE publish for the whole transition

  // Shrink side after the publish: producers already stopped routing here;
  // queued packets become counted straggler drops at the shard.
  for (const Removal& r : removals) applier_.shard_remove_flow(r.shard, r.flow);
}

bool ControlPlane::iface_down(IfaceId iface) const {
  std::lock_guard<std::mutex> lock(mu_);
  return iface < down_.size() && down_[iface];
}

std::size_t ControlPlane::quarantined_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const ClassId cid : latest_.live) {
    const SnapshotClass& entry = latest_.classes[cid];
    if (entry.quarantined) n += entry.members;
  }
  return n;
}

}  // namespace midrr::rt
