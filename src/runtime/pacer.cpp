#include "runtime/pacer.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace midrr::rt {

TokenBucketPacer::TokenBucketPacer(std::uint64_t depth_bytes)
    : depth_(static_cast<double>(depth_bytes)), tokens_(depth_) {
  MIDRR_REQUIRE(depth_bytes > 0, "pacer depth must be positive");
  publish_tokens();
}

TokenBucketPacer::TokenBucketPacer(RateProfile profile,
                                   std::uint64_t depth_bytes)
    : profile_(std::move(profile)),
      depth_(static_cast<double>(depth_bytes)),
      tokens_(0.0) {
  // The bucket starts EMPTY, not full: a profile that begins at rate 0
  // models a down link, and a start-of-run burst would violate "a link
  // never sends faster than its profile" on exactly the first drain.
  MIDRR_REQUIRE(depth_bytes > 0, "pacer depth must be positive");
}

void TokenBucketPacer::refill(SimTime now_ns) {
  if (!profile_ || now_ns <= last_ns_) return;
  // Integrate the piecewise-constant profile over (last_ns_, now_ns].
  SimTime t = last_ns_;
  while (t < now_ns) {
    const double rate_bps = profile_->rate_at(t);
    const SimTime next = std::min(now_ns, profile_->next_change_after(t));
    if (rate_bps > 0.0) {
      tokens_ += rate_bps / 8.0 * to_seconds(next - t);
    }
    t = next;
  }
  tokens_ = std::min(tokens_, depth_);
  last_ns_ = now_ns;
  publish_tokens();
}

std::uint64_t TokenBucketPacer::budget_bytes(SimTime now_ns) {
  if (!profile_) return static_cast<std::uint64_t>(depth_);
  refill(now_ns);
  if (tokens_ < 1.0) return 0;
  return static_cast<std::uint64_t>(tokens_);
}

void TokenBucketPacer::consume(std::uint64_t bytes) {
  if (!profile_) return;
  tokens_ -= static_cast<double>(bytes);
  publish_tokens();
}

SimTime TokenBucketPacer::ns_until_bytes(std::uint64_t bytes, SimTime now_ns) {
  if (!profile_) return 0;
  refill(now_ns);
  const double need = static_cast<double>(bytes) - tokens_;
  if (need <= 0.0) return 0;
  const double rate_bps = profile_->rate_at(now_ns);
  if (rate_bps <= 0.0) {
    // Link is down: sleep until the profile's next change point (or
    // "forever", which callers clamp to their own maximum).
    const SimTime change = profile_->next_change_after(now_ns);
    return change == kSimTimeMax ? kSimTimeMax : change - now_ns;
  }
  return static_cast<SimTime>(std::ceil(need * 8.0 / rate_bps * 1e9));
}

}  // namespace midrr::rt
