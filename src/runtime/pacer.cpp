#include "runtime/pacer.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace midrr::rt {

TokenBucketPacer::TokenBucketPacer(std::uint64_t depth_bytes)
    : depth_(static_cast<double>(depth_bytes)), tokens_(depth_) {
  MIDRR_REQUIRE(depth_bytes > 0, "pacer depth must be positive");
  publish_tokens();
}

TokenBucketPacer::TokenBucketPacer(RateProfile profile,
                                   std::uint64_t depth_bytes)
    : profile_(std::move(profile)),
      depth_(static_cast<double>(depth_bytes)),
      tokens_(0.0) {
  // The bucket starts EMPTY, not full: a profile that begins at rate 0
  // models a down link, and a start-of-run burst would violate "a link
  // never sends faster than its profile" on exactly the first drain.
  MIDRR_REQUIRE(depth_bytes > 0, "pacer depth must be positive");
}

namespace {

/// Longest elapsed interval one refill will integrate.  Anything beyond it
/// (suspend/resume, a worker stalled for seconds, a forward clock step) is
/// forgiven rather than credited: the bucket cap already bounds the burst
/// to `depth_bytes`, and the clamp bounds the integration walk over
/// fast-switching profiles (a square wave with a 1 ms period must not cost
/// a million segments after an hour of sleep).
constexpr SimDuration kMaxCatchupNs = kSecond;

}  // namespace

void TokenBucketPacer::refill(SimTime now_ns) {
  if (!profile_) return;
  if (now_ns < last_ns_) {
    // Clock went backwards (step adjustment, cross-CPU skew surfacing
    // through the runtime clock).  Re-anchor at the new "now" and grant
    // nothing for the ambiguous interval: freezing until the old timeline
    // catches up would mute the link for the entire step, and any
    // double-credit after re-anchoring is capped at one bucket depth.
    last_ns_ = now_ns;
    publish_tokens();
    return;
  }
  if (now_ns == last_ns_) return;
  if (now_ns - last_ns_ > kMaxCatchupNs) last_ns_ = now_ns - kMaxCatchupNs;
  // Integrate the piecewise-constant profile over (last_ns_, now_ns].
  SimTime t = last_ns_;
  while (t < now_ns) {
    const double rate_bps = profile_->rate_at(t) * scale_;
    const SimTime next = std::min(now_ns, profile_->next_change_after(t));
    if (rate_bps > 0.0) {
      tokens_ += rate_bps / 8.0 * to_seconds(next - t);
    }
    t = next;
  }
  tokens_ = std::min(tokens_, depth_);
  last_ns_ = now_ns;
  publish_tokens();
}

std::uint64_t TokenBucketPacer::budget_bytes(SimTime now_ns) {
  if (!profile_) return static_cast<std::uint64_t>(depth_ * scale_);
  refill(now_ns);
  if (tokens_ < 1.0) return 0;
  return static_cast<std::uint64_t>(tokens_);
}

void TokenBucketPacer::consume(std::uint64_t bytes) {
  if (!profile_) return;
  tokens_ = std::max(tokens_ - static_cast<double>(bytes), -depth_);
  publish_tokens();
}

void TokenBucketPacer::set_rate_scale(double scale, SimTime now_ns) {
  MIDRR_REQUIRE(scale >= 0.0 && scale <= 1.0, "rate scale outside [0, 1]");
  refill(now_ns);  // price already-elapsed time at the old scale
  scale_ = scale;
}

SimTime TokenBucketPacer::ns_until_bytes(std::uint64_t bytes, SimTime now_ns) {
  if (scale_ <= 0.0) return kSimTimeMax;  // killed: callers clamp the sleep
  if (!profile_) return 0;
  refill(now_ns);
  const double need = static_cast<double>(bytes) - tokens_;
  if (need <= 0.0) return 0;
  const double rate_bps = profile_->rate_at(now_ns) * scale_;
  if (rate_bps <= 0.0) {
    // Link is down: sleep until the profile's next change point (or
    // "forever", which callers clamp to their own maximum).
    const SimTime change = profile_->next_change_after(now_ns);
    return change == kSimTimeMax ? kSimTimeMax : change - now_ns;
  }
  return static_cast<SimTime>(std::ceil(need * 8.0 / rate_bps * 1e9));
}

}  // namespace midrr::rt
