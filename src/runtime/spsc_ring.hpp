// Bounded lock-free single-producer / single-consumer ring buffer -- the
// ingress queue between one packet producer and the runtime's fan-in stage.
//
// Classic two-index design (Lamport queue with cached indices a la Vyukov /
// folly::ProducerConsumerQueue): the producer owns `tail_`, the consumer
// owns `head_`, and each side keeps a cached copy of the other's index so
// the common case touches only one shared cache line.  Capacity is rounded
// up to a power of two so wrapping is a mask, and indices are free-running
// 64-bit counters (no ABA, no empty/full ambiguity).
//
// Memory-ordering contract (see docs/RUNTIME.md for the full story):
//   * push(): writes the slot, then tail_.store(release).  The consumer's
//     tail_.load(acquire) therefore happens-after the slot write -- the
//     element is fully visible before it is claimable.
//   * pop(): moves the slot out, then head_.store(release).  The producer's
//     head_.load(acquire) happens-after the move -- the slot is never
//     overwritten while the consumer still reads it.
//
// Exactly ONE thread may push at a time and ONE thread may pop at a time.
// The consumer side may migrate between threads (the runtime hands a
// shard's ingress rings to that shard's home worker) only when the old and
// new consumer are synchronized by some other happens-before edge (thread
// join, mutex); concurrent consumers are undefined behavior.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "util/assert.hpp"

namespace midrr::rt {

/// Destructive-interference padding granularity.  A fixed 64 instead of
/// std::hardware_destructive_interference_size: the standard constant is
/// ABI-unstable across -mtune settings (GCC warns on any ODR-relevant use),
/// and 64 is correct for every platform this builds on (x86-64, AArch64).
inline constexpr std::size_t kCacheLine = 64;

template <typename T>
class SpscRing {
 public:
  /// `capacity` is rounded up to the next power of two (minimum 2); the
  /// ring holds exactly that many elements.
  explicit SpscRing(std::size_t capacity)
      : slots_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity)),
        mask_(slots_.size() - 1) {
    MIDRR_REQUIRE(capacity > 0, "SPSC ring needs a positive capacity");
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  /// Producer side.  Returns false when the ring is full (the caller
  /// decides whether that is backpressure or a drop).
  bool push(T&& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ >= slots_.size()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ >= slots_.size()) return false;  // full
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side.  Returns false when the ring is empty.
  bool pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;  // empty
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: pops up to `max` elements, appending to `out`.
  /// One acquire-load of the producer index covers the whole batch.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
    }
    std::uint64_t n = tail_cache_ - head;
    if (n == 0) return 0;
    if (n > max) n = max;
    for (std::uint64_t i = 0; i < n; ++i) {
      out.push_back(std::move(slots_[(head + i) & mask_]));
    }
    head_.store(head + n, std::memory_order_release);
    return static_cast<std::size_t>(n);
  }

  /// Approximate occupancy (exact only when called by the producer or the
  /// consumer; racy but monotone-consistent from anywhere else).
  std::size_t size_approx() const {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }

  bool empty_approx() const { return size_approx() == 0; }

 private:
  std::vector<T> slots_;
  std::size_t mask_;
  // Consumer-owned line: consumer index + its cache of the producer index.
  alignas(kCacheLine) std::atomic<std::uint64_t> head_{0};
  std::uint64_t tail_cache_ = 0;
  // Producer-owned line: producer index + its cache of the consumer index.
  alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t head_cache_ = 0;
};

}  // namespace midrr::rt
