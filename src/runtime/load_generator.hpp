// LoadGenerator: multi-threaded traffic source for the real-time runtime.
//
// Spawns one producer thread per runtime producer slot; each thread offers
// fixed-size packets round-robin across the live flows of the current
// configuration snapshot, either flat out (rate_pps = 0, for throughput
// benchmarks) or paced to an aggregate packet rate.  The live-flow list is
// re-read from the RCU snapshot whenever the control plane publishes a new
// version, so flows added or removed mid-run are picked up without any
// coordination with the generator.
//
// Backpressure: a full ingress ring makes offer() return false; the
// generator counts the reject and yields, so a saturating generator on a
// small machine cannot starve the worker threads of CPU.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "runtime/runtime.hpp"

namespace midrr::rt {

struct LoadGeneratorOptions {
  std::size_t producers = 1;        ///< threads; must be <= runtime producers
  std::uint32_t packet_bytes = 1000;
  double rate_pps = 0.0;            ///< aggregate offered rate; 0 = saturate
};

class LoadGenerator {
 public:
  LoadGenerator(Runtime& rt, LoadGeneratorOptions options);
  ~LoadGenerator();

  LoadGenerator(const LoadGenerator&) = delete;
  LoadGenerator& operator=(const LoadGenerator&) = delete;

  void start();
  void stop();  ///< idempotent; joins all producer threads

  std::uint64_t offered() const { return offered_.load(std::memory_order_relaxed); }
  std::uint64_t rejected() const { return rejected_.load(std::memory_order_relaxed); }

 private:
  void producer_main(std::size_t index);

  Runtime& rt_;
  LoadGeneratorOptions options_;
  std::vector<std::thread> threads_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> offered_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace midrr::rt
