// LoadGenerator: multi-threaded traffic source for the real-time runtime.
//
// Spawns one producer thread per runtime producer slot; each thread offers
// fixed-size packets round-robin across the live flows of the current
// configuration snapshot, either flat out (rate_pps = 0, for throughput
// benchmarks) or paced to an aggregate packet rate.  The live-flow list is
// re-read from the RCU snapshot whenever the control plane publishes a new
// version, so flows added or removed mid-run are picked up without any
// coordination with the generator.
//
// Payloads: by default packets are pure (flow, size) records -- the
// scheduler never looks at bytes, so the throughput bench defaults to the
// cheapest representation.  `payload` switches on real wire-frame
// attachments, either heap-allocated per packet (kHeap: the baseline the
// pool is measured against) or drawn from a per-producer net::FramePool
// (kPooled: zero allocations on the data path; frames released by worker
// threads recycle through the pool's cross-thread return ring back to the
// owning producer).
//
// Backpressure: a full ingress ring makes offer() return false; the
// generator counts the reject and yields, so a saturating generator on a
// small machine cannot starve the worker threads of CPU.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "net/frame_pool.hpp"
#include "runtime/runtime.hpp"

namespace midrr::rt {

struct LoadGeneratorOptions {
  /// What each offered packet carries besides (flow, size).
  enum class PayloadMode {
    kNone,    ///< no frame (default; pure scheduling records)
    kHeap,    ///< heap-allocated frame per packet (pooling baseline)
    kPooled,  ///< frame from a per-producer FramePool (zero-alloc path)
  };

  std::size_t producers = 1;        ///< threads; must be <= runtime producers
  std::uint32_t packet_bytes = 1000;
  double rate_pps = 0.0;            ///< aggregate offered rate; 0 = saturate
  PayloadMode payload = PayloadMode::kNone;
  /// Pool geometry for kPooled (one pool per producer thread).
  PacketPoolOptions pool{};
  /// Scratch bytes reserved in front of every pooled payload (see
  /// net::FramePool).  The io_uring egress path asks for
  /// io::kWireScratchBytes so it can prepend the wire header in place and
  /// send [header|payload] as one registered-buffer range.
  std::size_t frame_headroom = 0;
};

class LoadGenerator {
 public:
  LoadGenerator(Runtime& rt, LoadGeneratorOptions options);
  ~LoadGenerator();

  LoadGenerator(const LoadGenerator&) = delete;
  LoadGenerator& operator=(const LoadGenerator&) = delete;

  void start();
  void stop();  ///< idempotent; joins all producer threads

  std::uint64_t offered() const { return offered_.load(std::memory_order_relaxed); }
  std::uint64_t rejected() const { return rejected_.load(std::memory_order_relaxed); }

  /// Per-producer frame pool (nullptr unless payload == kPooled).  Stats
  /// are readable at any time; exact (for leak accounting) once the
  /// generator is stopped AND the runtime has drained every in-flight
  /// frame reference.
  const net::FramePool* frame_pool(std::size_t producer) const;

  /// Sum of every producer pool's counters (zeros when not pooled).
  PacketPoolStats pool_stats() const;

  /// Registers pool-health series (slabs, free-list occupancy, cross-thread
  /// returns, misses, ...) with `registry`, one label set per producer.
  /// No-op unless payload == kPooled; see docs/TELEMETRY.md for the
  /// catalog.  `registry` must outlive the generator's pools.
  void register_pool_metrics(telemetry::MetricsRegistry& registry);

 private:
  void producer_main(std::size_t index);

  Runtime& rt_;
  LoadGeneratorOptions options_;
  std::vector<std::unique_ptr<net::FramePool>> pools_;  // [producer] or empty
  std::vector<std::thread> threads_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> offered_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace midrr::rt
