#include "runtime/runtime.hpp"

#include <algorithm>

#include "fault/adapt.hpp"
#include "util/assert.hpp"

namespace midrr::rt {

namespace {

/// How long an idle worker sleeps when nobody kicks it.  Token buckets
/// keep accruing while a worker sleeps (refill integrates elapsed time),
/// so this bounds wakeup latency, not throughput; pacer depths are sized
/// to absorb several park periods (see auto_depth below).
constexpr std::chrono::nanoseconds kParkSlice{500'000};  // 500 us

std::uint64_t auto_depth(const RateProfile& profile,
                         std::uint64_t configured,
                         std::uint64_t burst_bytes) {
  if (configured != 0) return configured;
  // Depth = the larger of one dequeue burst and ~5 ms at peak rate, so a
  // worker sleeping a few park slices can catch the link back up to its
  // long-run rate instead of clipping it.
  const double five_ms_bytes = profile.peak_rate() / 8.0 * 0.005;
  return std::max<std::uint64_t>(
      burst_bytes, static_cast<std::uint64_t>(five_ms_bytes) + 1);
}

}  // namespace

// --- IngressPort ---------------------------------------------------------

IngressPort::IngressPort(Runtime& rt, std::size_t producer,
                         Rcu<RuntimeSnapshot>::Reader reader,
                         std::size_t max_flows)
    : rt_(rt),
      producer_(producer),
      reader_(std::move(reader)),
      routes_(max_flows) {
  if (rt_.options_.fault != nullptr && rt_.options_.fault->has_ingress_faults()) {
    ingress_rng_ = rt_.options_.fault->fork_ingress_rng(producer);
  }
}

IngressPort::~IngressPort() {
  // Delayed packets must not silently die with the port: release them all
  // now (ring-full releases become counted rejects).
  flush_delayed(/*now=*/0, /*force=*/true);
  flush_counters();
}

bool IngressPort::refresh_route(FlowId flow, std::uint64_t epoch) {
  CachedRoute& route = routes_[flow];
  // Flow -> class through the lock-free directory, then class -> hosting
  // shards from the snapshot.  The control plane stores the directory word
  // only after the class is published (growth) and clears it before the
  // class shrinks, so a directory hit normally finds its class below; the
  // residual races surface as one counted reject and a refresh on the next
  // offer, never a misroute.
  const ClassId cls = rt_.control_->class_of(flow);
  const auto guard = reader_.lock();
  const SnapshotClass* entry = cls == kInvalidClass ? nullptr : guard->cls(cls);
  if (entry == nullptr || entry->shards.empty()) {
    route.epoch = epoch;
    route.count = 0;
    route.uncacheable = false;
    route.quarantined = entry != nullptr && entry->quarantined;
    return false;
  }
  route.epoch = epoch;
  route.quarantined = false;
  route.uncacheable = entry->shards.size() > kRouteFanout;
  if (route.uncacheable) {
    // Too wide to cache inline: route this packet from the snapshot and
    // leave the entry marked so later offers skip straight to the guard.
    route.count = 1;
    route.shards[0] = entry->shards[rr_++ % entry->shards.size()];
    return true;
  }
  route.count = static_cast<std::uint8_t>(entry->shards.size());
  for (std::size_t i = 0; i < entry->shards.size(); ++i) {
    route.shards[i] = entry->shards[i];
  }
  return true;
}

void IngressPort::flush_counters() {
  if (pending_offered_ != 0) {
    rt_.offered_.fetch_add(pending_offered_, std::memory_order_relaxed);
    pending_offered_ = 0;
  }
  if (pending_rejects_ != 0) {
    rt_.ring_rejects_.fetch_add(pending_rejects_, std::memory_order_relaxed);
    pending_rejects_ = 0;
  }
}

bool IngressPort::push_to_shard(std::uint32_t shard, Packet&& packet) {
  Runtime::Shard& target = *rt_.shards_[shard];
  if (!target.ingress[producer_]->push(std::move(packet))) {
    // push() moves nothing on failure; the packet (and its trace tag) is
    // still ours to account for.
    rt_.drop_trace(packet);
    ++rejected_;
    ++pending_rejects_;
    flush_counters();
    if (rt_.ring_full_warn_.allow()) {
      MIDRR_LOG_WARN() << "ingress ring full (shard " << shard << ", producer "
                       << producer_ << "); backpressure to caller ("
                       << rt_.ring_full_warn_.take_suppressed()
                       << " earlier rejects unreported)";
    }
    return false;
  }
  ++offered_;
  // Batched: one shared-line fetch_add per 256 accepted packets (plus the
  // destructor flush), instead of a cross-producer RMW per packet.
  if (++pending_offered_ >= 256) flush_counters();
  // Dekker hand-off with park(): the push above, this fence, then the
  // asleep probe inside kick_if_asleep.  The parking worker stores asleep,
  // fences, then re-checks the rings -- so one of the two sides always
  // observes the other, and the 500 us park slice is only ever a latency
  // bound for races with a THIRD state (no packet, no sleeper).
  std::atomic_thread_fence(std::memory_order_seq_cst);
  rt_.kick_if_asleep(target.home_worker);
  return true;
}

void IngressPort::flush_delayed(SimTime now, bool force) {
  if (delayed_.empty()) return;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < delayed_.size(); ++i) {
    Delayed& d = delayed_[i];
    if (force || d.release_at <= now) {
      push_to_shard(d.shard, std::move(d.packet));  // reject = counted
    } else {
      if (keep != i) delayed_[keep] = std::move(d);
      ++keep;
    }
  }
  delayed_.resize(keep);
}

bool IngressPort::offer(FlowId flow, std::uint32_t size_bytes,
                        std::shared_ptr<const net::Frame> frame) {
  // Epoch first, THEN (on a miss) the guard: a publish racing the refresh
  // tags the cache entry with the pre-publish epoch, forcing a re-read on
  // the next offer instead of serving post-publish data as pre-publish.
  const std::uint64_t epoch = rt_.control_->epoch();
  std::uint32_t shard;
  if (flow < routes_.size()) {
    CachedRoute& route = routes_[flow];
    if (route.epoch != epoch || route.uncacheable) {
      if (!refresh_route(flow, epoch)) {
        ++rejected_;
        ++pending_rejects_;
        if (route.quarantined) {
          rt_.quarantine_rejects_.fetch_add(1, std::memory_order_relaxed);
        }
        flush_counters();  // rejects are rare; keep them promptly visible
        return false;
      }
    } else if (route.count == 0) {  // cached no-route
      ++rejected_;
      ++pending_rejects_;
      if (route.quarantined) {
        rt_.quarantine_rejects_.fetch_add(1, std::memory_order_relaxed);
      }
      flush_counters();
      return false;
    }
    shard = route.uncacheable || route.count == 1
                ? route.shards[0]
                : route.shards[rr_++ % route.count];
  } else {
    // Out-of-arena flow id: cannot be live (the control plane bounds ids
    // by max_flows), so this is a plain reject.
    ++rejected_;
    ++pending_rejects_;
    flush_counters();
    return false;
  }
  Packet packet(flow, size_bytes);
  packet.enqueued_at = rt_.now_ns();
  packet.frame = std::move(frame);
  if (rt_.tracer_ != nullptr) {
    // Deterministic 1-in-N per flow; the tag rides the packet through the
    // whole pipeline.  Claimed before the fault seams so an injected drop
    // shows up in the sample accounting instead of leaking a record.
    packet.trace = rt_.tracer_->maybe_begin(
        producer_, flow, static_cast<std::uint64_t>(packet.enqueued_at));
  }

  // Fault seams (one null test in production).  Injected faults happen
  // AFTER routing: they model loss/duplication/reordering on the ingress
  // path, not admission decisions, so a dropped offer still returns true
  // (the producer believes it sent) and is counted ONLY by the injector.
  fault::FaultInjector* const injector = rt_.options_.fault;
  if (injector != nullptr && injector->has_ingress_faults()) {
    if (!delayed_.empty()) flush_delayed(packet.enqueued_at, /*force=*/false);
    SimDuration hold = 0;
    switch (injector->sample_ingress(packet.enqueued_at, ingress_rng_, hold)) {
      case fault::IngressAction::kDrop:
        rt_.drop_trace(packet);
        return true;  // silently lost on the wire; injector counted it
      case fault::IngressAction::kDup: {
        Packet dup(flow, size_bytes);
        dup.enqueued_at = packet.enqueued_at;
        dup.frame = packet.frame;
        push_to_shard(shard, std::move(dup));  // an extra, normal offer
        break;
      }
      case fault::IngressAction::kDelay:
        delayed_.push_back(Delayed{packet.enqueued_at + hold, shard,
                                   std::move(packet)});
        return true;  // accepted; enters the rings when the hold expires
      case fault::IngressAction::kNone:
        break;
    }
  }

  // Admission control: refuse work for a shard already holding more than
  // the watermark.  Checked after the fault seams so injected faults see
  // the same offer stream with or without backpressure.
  if (rt_.options_.backpressure_bytes != 0 &&
      rt_.shards_[shard]->backlog_bytes.load(std::memory_order_relaxed) >=
          rt_.options_.backpressure_bytes) {
    ++rejected_;
    ++pending_rejects_;
    rt_.backpressure_rejects_.fetch_add(1, std::memory_order_relaxed);
    rt_.drop_trace(packet);
    flush_counters();
    return false;
  }
  return push_to_shard(shard, std::move(packet));
}

Rcu<RuntimeSnapshot>::Reader::Guard IngressPort::snapshot() {
  return reader_.lock();
}

// --- Runtime: construction & topology ------------------------------------

Runtime::Runtime(const RuntimeOptions& options)
    : options_(options),
      sent_by_flow_(options.max_flows),
      epoch_(std::chrono::steady_clock::now()) {
  MIDRR_REQUIRE(options_.workers >= 1, "runtime needs at least one worker");
  MIDRR_REQUIRE(options_.shards >= 1, "runtime needs at least one shard");
  MIDRR_REQUIRE(options_.producers >= 1, "runtime needs at least one producer");
  MIDRR_REQUIRE(options_.policy != Policy::kOracle,
                "the oracle scheduler is simulator-only");
  MIDRR_REQUIRE(options_.sched.observer == nullptr,
                "scheduler observers are not supported under the runtime "
                "(they would run inside the shard locks)");
  MIDRR_REQUIRE(options_.burst_bytes > 0, "burst_bytes must be positive");
  MIDRR_REQUIRE(options_.fanin_batch > 0, "fanin_batch must be positive");
  shed_bytes_.store(options_.shed_bytes, std::memory_order_relaxed);
  MIDRR_REQUIRE(options_.trace_events == 0 || options_.metrics != nullptr,
                "trace_events requires a metrics registry (the recorder "
                "chains behind the per-shard MetricsObserver)");
  for (std::size_t s = 0; s < options_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    // User observers are rejected above (arbitrary code inside the shard
    // locks); the internal MetricsObserver is the sanctioned exception --
    // its callbacks are single relaxed increments, optionally chained to a
    // bounded TraceRecorder for Chrome-trace export.
    SchedulerOptions sched_opts = options_.sched;
    if (options_.metrics != nullptr) {
      if (options_.trace_events > 0) {
        shard->recorder = std::make_unique<TraceRecorder>(options_.trace_events);
      }
      shard->observer = std::make_unique<telemetry::MetricsObserver>(
          *options_.metrics,
          telemetry::LabelSet{{"shard", std::to_string(s)}},
          shard->recorder.get());
      sched_opts.observer = shard->observer.get();
    }
    shard->sched = make_scheduler(options_.policy, sched_opts);
    for (std::size_t p = 0; p < options_.producers; ++p) {
      shard->ingress.push_back(
          std::make_unique<SpscRing<Packet>>(options_.ring_capacity));
    }
    shards_.push_back(std::move(shard));
  }
}

Runtime::~Runtime() { stop(); }

IfaceId Runtime::add_interface(std::string name, RateProfile capacity) {
  MIDRR_REQUIRE(!started_, "interfaces must be added before start()");
  MIDRR_REQUIRE(control_ == nullptr,
                "interfaces must be added before the control plane is used");
  const IfaceId iface = static_cast<IfaceId>(ifaces_.size());
  auto rec = std::make_unique<IfaceRec>();
  rec->name = std::move(name);
  rec->id = iface;
  rec->shard = static_cast<std::uint32_t>(iface % shards_.size());
  const std::uint64_t depth =
      auto_depth(capacity, options_.pacer_depth_bytes, options_.burst_bytes);
  rec->pacer = TokenBucketPacer(std::move(capacity), depth);
  Shard& shard = *shards_[rec->shard];
  rec->local_id = shard.sched->add_interface(rec->name);
  if (shard.local_of_iface.size() <= iface) {
    shard.local_of_iface.resize(iface + 1, kInvalidIface);
  }
  shard.local_of_iface[iface] = rec->local_id;
  shard.ifaces.push_back(iface);
  ifaces_.push_back(std::move(rec));
  return iface;
}

IfaceId Runtime::add_interface(std::string name) {
  MIDRR_REQUIRE(!started_, "interfaces must be added before start()");
  MIDRR_REQUIRE(control_ == nullptr,
                "interfaces must be added before the control plane is used");
  const IfaceId iface = static_cast<IfaceId>(ifaces_.size());
  auto rec = std::make_unique<IfaceRec>();
  rec->name = std::move(name);
  rec->id = iface;
  rec->shard = static_cast<std::uint32_t>(iface % shards_.size());
  rec->pacer = TokenBucketPacer(
      options_.pacer_depth_bytes != 0 ? options_.pacer_depth_bytes
                                      : options_.burst_bytes);
  Shard& shard = *shards_[rec->shard];
  rec->local_id = shard.sched->add_interface(rec->name);
  if (shard.local_of_iface.size() <= iface) {
    shard.local_of_iface.resize(iface + 1, kInvalidIface);
  }
  shard.local_of_iface[iface] = rec->local_id;
  shard.ifaces.push_back(iface);
  ifaces_.push_back(std::move(rec));
  return iface;
}

ControlPlane& Runtime::control() {
  if (control_ == nullptr) {
    // First use freezes the interface set (the iface -> shard map is baked
    // into the control plane and into every published snapshot).
    std::vector<std::uint32_t> shard_of_iface;
    shard_of_iface.reserve(ifaces_.size());
    for (const auto& rec : ifaces_) shard_of_iface.push_back(rec->shard);
    // The cast happens here, inside a Runtime member, because the
    // ShardApplier base is private (it is an implementation detail, not
    // part of Runtime's public face).
    control_ = std::make_unique<ControlPlane>(static_cast<ShardApplier&>(*this),
                                              std::move(shard_of_iface),
                                              options_.max_flows);
  }
  return *control_;
}

// --- Runtime: lifecycle ---------------------------------------------------

void Runtime::start() {
  MIDRR_REQUIRE(!started_, "runtime already started (no restart support)");
  MIDRR_REQUIRE(!ifaces_.empty(), "runtime needs at least one interface");
  control();  // materialize the control plane before any thread runs
  started_ = true;

  if (options_.stage_sample_every > 0) {
    telemetry::StageTracer::Options topts;
    topts.sample_every = options_.stage_sample_every;
    topts.slots_per_lane = options_.stage_slots_per_lane;
    tracer_ = std::make_unique<telemetry::StageTracer>(
        options_.producers, ifaces_.size(), options_.max_flows, topts);
  }

  const auto worker_count = options_.workers;
  for (std::size_t w = 0; w < worker_count; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->index = static_cast<std::uint32_t>(w);
    if (options_.flight != nullptr) {
      // One flight-log lane per worker SLOT (not per spawn): a restarted
      // thread inherits its slot's lane, and the superseded thread never
      // writes again (it exits at the stall safe point without logging),
      // so the single-writer contract holds across watchdog restarts.
      worker->flight =
          &options_.flight->add_writer("worker" + std::to_string(w));
    }
    if (options_.metrics != nullptr) {
      worker->wait_hist = &options_.metrics->histogram(
          "midrr_rt_packet_wait_ns",
          "Enqueue-to-drain packet wait, nanoseconds.",
          {{"worker", std::to_string(w)}});
    }
    if (options_.trace_spans > 0) {
      worker->span_cap = options_.trace_spans;
      worker->spans.reserve(options_.trace_spans);
    }
    workers_.push_back(std::move(worker));
  }
  // Interfaces round-robin across workers; each shard's fan-in runs on a
  // "home" worker so every SPSC ring keeps a single consumer thread.
  for (IfaceId j = 0; j < ifaces_.size(); ++j) {
    IfaceRec& rec = *ifaces_[j];
    rec.worker = static_cast<std::uint32_t>(j % worker_count);
    workers_[rec.worker]->ifaces.push_back(j);
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    shard.home_worker = static_cast<std::uint32_t>(s % worker_count);
    workers_[shard.home_worker]->home_shards.push_back(
        static_cast<std::uint32_t>(s));
    for (const IfaceId j : shard.ifaces) {
      const std::uint32_t w = ifaces_[j]->worker;
      auto& kick_list = shard.kick_on_enqueue;
      if (std::find(kick_list.begin(), kick_list.end(), w) == kick_list.end()) {
        kick_list.push_back(w);
      }
    }
  }

  // Bind and attach the egress backend before any thread runs; a backend
  // that cannot set up (socket/bind failure) aborts startup here.
  egress_ = options_.egress != nullptr ? options_.egress : &sim_backend_;
  {
    // Topology first: a completion-driven backend shares one submission
    // ring among all interfaces of a worker, so it needs the iface ->
    // worker map before it sizes per-interface state in attach().
    std::vector<std::uint32_t> worker_of_iface;
    worker_of_iface.reserve(ifaces_.size());
    for (const auto& rec : ifaces_) worker_of_iface.push_back(rec->worker);
    egress_->attach_topology(worker_of_iface);
    std::vector<std::string> iface_names;
    iface_names.reserve(ifaces_.size());
    for (const auto& rec : ifaces_) iface_names.push_back(rec->name);
    egress_->attach(iface_names);
  }
  egress_completion_driven_ = egress_->completion_driven();

  if (options_.metrics != nullptr) register_metrics();
  if (options_.fault != nullptr) {
    // Compile the plan against the now-frozen topology; out-of-range
    // targets throw here, before any thread runs.
    options_.fault->attach(ifaces_.size(), worker_count);
    if (options_.metrics != nullptr) {
      options_.fault->register_metrics(*options_.metrics);
    }
  }

  epoch_ = std::chrono::steady_clock::now();
  running_.store(true, std::memory_order_release);
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    w->thread = std::thread([this, w] { worker_main(w->index, 0); });
  }
}

void Runtime::stop() {
  // Unpark any injector-stalled worker first: a thread inside
  // maybe_stall() cannot see running_ until the injector releases it.
  if (options_.fault != nullptr) options_.fault->release_all();
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    for (auto& worker : workers_) {
      if (worker->thread.joinable()) worker->thread.join();
    }
  } else {
    for (auto& worker : workers_) kick(worker->index);
    for (auto& worker : workers_) {
      if (worker->thread.joinable()) worker->thread.join();
    }
  }
  {
    std::lock_guard<std::mutex> lock(restart_mu_);
    for (auto& thread : retired_) {
      if (thread.joinable()) thread.join();
    }
    retired_.clear();
  }
  // Workers are gone; give every parked egress tail a bounded,
  // single-threaded last chance, then convert the remainder to counted
  // drops so the conservation identity closes at quiescence.
  flush_egress();
}

void Runtime::flush_egress() {
  if (egress_ == nullptr || workers_.empty()) return;
  constexpr int kFinalFlushRounds = 3;
  for (IfaceId j = 0; j < ifaces_.size(); ++j) {
    IfaceRec& rec = *ifaces_[j];
    Worker& owner = *workers_[rec.worker];
    if (egress_completion_driven_) {
      // Drain to quiescence: each round flushes the ring (submitting any
      // internally-retried packets and waiting briefly for CQEs), harvests
      // the verdicts, and retries the stash.  Done when both the stash and
      // the in-flight population are empty.
      for (int round = 0; round < kFinalFlushRounds; ++round) {
        egress_->flush(j);
        reap_egress(j, owner);
        if (!rec.pending.empty() && !send_pending(j, owner)) break;
        if (rec.pending.empty() && egress_->inflight_packets(j) == 0) break;
      }
      // Whatever the kernel never answered is force-resolved (normally as
      // counted drops) so io_inflight provably reaches zero.
      owner.completions.clear();
      egress_->reclaim_inflight(j, owner.completions);
      absorb_completions(j, owner);
    } else if (rec.pending.empty()) {
      continue;
    } else {
      for (int round = 0; round < kFinalFlushRounds && !rec.pending.empty();
           ++round) {
        if (!send_pending(j, owner)) break;  // no progress; retrying is moot
      }
      egress_->flush(j);
    }
    if (!rec.pending.empty()) {
      owner.io_drops.fetch_add(rec.pending.size(),
                               std::memory_order_relaxed);
      for (const Packet& packet : rec.pending) drop_trace(packet);
      if (owner.flight != nullptr) {
        // Worker threads are joined by now; writing their lane here keeps
        // the single-writer invariant (one live writer at a time).
        owner.flight->log(static_cast<std::uint64_t>(now_ns()),
                          telemetry::FlightCategory::kIo,
                          telemetry::FlightCode::kIoFlushDrops, j,
                          rec.pending.size());
      }
      MIDRR_LOG_WARN() << "egress backend could not flush "
                       << rec.pending.size() << " packet(s) on interface '"
                       << rec.name << "' at stop(); counted as io_drops";
      rec.pending.clear();
      rec.pending_packets.store(0, std::memory_order_relaxed);
      rec.pending_bytes.store(0, std::memory_order_relaxed);
    }
  }
}

IngressPort Runtime::port(std::size_t producer) {
  MIDRR_REQUIRE(started_, "ports are available after start()");
  MIDRR_REQUIRE(producer < options_.producers, "producer index out of range");
  return IngressPort(*this, producer, control().reader(), options_.max_flows);
}

SimTime Runtime::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

// --- Runtime: ShardApplier (control plane -> shard schedulers) -----------

void Runtime::shard_add_flow(std::uint32_t shard_index, FlowId flow,
                             const RtFlowSpec& spec,
                             const std::vector<IfaceId>& willing_subset) {
  Shard& shard = *shards_[shard_index];
  std::lock_guard<std::mutex> lock(shard.mu);
  FlowSpec fs;
  fs.weight = spec.weight;
  for (const IfaceId j : willing_subset) {
    fs.willing.push_back(shard.local_of_iface[j]);
  }
  fs.name = spec.name;
  fs.queue_capacity_bytes = spec.queue_capacity_bytes;
  const FlowId local = shard.sched->add_flow(fs);
  if (shard.local_of_flow.size() <= flow) {
    shard.local_of_flow.resize(flow + 1, kInvalidFlow);
  }
  shard.local_of_flow[flow] = local;
  if (shard.global_of_flow.size() <= local) {
    shard.global_of_flow.resize(local + 1, kInvalidFlow);
  }
  shard.global_of_flow[local] = flow;
  if (shard.weight_of_local.size() <= local) {
    shard.weight_of_local.resize(local + 1, 0.0);
  }
  shard.weight_of_local[local] = spec.weight;
  shard.weight_sum += spec.weight;
}

void Runtime::shard_remove_flow(std::uint32_t shard_index, FlowId flow) {
  Shard& shard = *shards_[shard_index];
  std::lock_guard<std::mutex> lock(shard.mu);
  const FlowId local = shard.local_of_flow[flow];
  shard.local_of_flow[flow] = kInvalidFlow;
  shard.global_of_flow[local] = kInvalidFlow;
  shard.weight_sum -= shard.weight_of_local[local];
  shard.weight_of_local[local] = 0.0;
  // The flow's queued packets die with it -- but never silently: they
  // leave the shard's backlog and land in straggler_drops (the loss
  // accounting identity offered == delivered + counted drops + in-flight
  // survives a remove-during-drain).
  const std::uint64_t doomed_packets = shard.sched->backlog_packets(local);
  const std::uint64_t doomed_bytes = shard.sched->backlog_bytes(local);
  shard.sched->remove_flow(local);
  if (doomed_packets > 0) {
    shard.straggler_drops.fetch_add(doomed_packets,
                                    std::memory_order_relaxed);
    shard.backlog_bytes.fetch_sub(doomed_bytes, std::memory_order_relaxed);
  }
}

void Runtime::shard_set_weight(std::uint32_t shard_index, FlowId flow,
                               double weight) {
  Shard& shard = *shards_[shard_index];
  std::lock_guard<std::mutex> lock(shard.mu);
  const FlowId local = shard.local_of_flow[flow];
  shard.weight_sum += weight - shard.weight_of_local[local];
  shard.weight_of_local[local] = weight;
  shard.sched->set_weight(local, weight);
}

void Runtime::shard_set_willing(std::uint32_t shard_index, FlowId flow,
                                IfaceId iface, bool value) {
  Shard& shard = *shards_[shard_index];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.sched->set_willing(shard.local_of_flow[flow],
                           shard.local_of_iface[iface], value);
}

// --- Runtime: worker loops ------------------------------------------------

void Runtime::worker_main(std::uint32_t w, std::uint64_t my_generation) {
  Worker& me = *workers_[w];
  if (me.flight != nullptr) {
    me.flight->log(static_cast<std::uint64_t>(now_ns()),
                   telemetry::FlightCategory::kRuntime,
                   my_generation > 0 ? telemetry::FlightCode::kWorkerRestart
                                     : telemetry::FlightCode::kWorkerStart,
                   w, my_generation);
  }
  std::vector<Packet> scratch;
  scratch.reserve(options_.fanin_batch * options_.producers);
  std::vector<Packet> burst;
  burst.reserve(256);
  fault::FaultInjector* const injector = options_.fault;
  // Fault seam state, all thread-local to this spawn: timeline cursors and
  // the last scale each owned pacer saw.  Seeded from the pacers so a
  // RESTARTED worker does not re-apply (and re-log) transitions the old
  // thread already made.
  std::vector<std::size_t> fault_cursors;
  std::vector<double> applied_scale;
  if (injector != nullptr) {
    fault_cursors.assign(ifaces_.size(), 0);
    applied_scale.assign(ifaces_.size(), 1.0);
    for (const IfaceId j : me.ifaces) {
      applied_scale[j] = ifaces_[j]->pacer.rate_scale();
    }
  }
  while (running_.load(std::memory_order_acquire)) {
    // Heartbeat: ticks every pass, including idle ones (park() returns at
    // least every kParkSlice), so only a genuinely wedged thread freezes.
    me.heartbeat.fetch_add(1, std::memory_order_relaxed);
    if (injector != nullptr) {
      const SimTime now = now_ns();
      for (const IfaceId j : me.ifaces) {
        const double scale = injector->iface_scale(j, now, fault_cursors[j]);
        if (scale != applied_scale[j]) {
          ifaces_[j]->pacer.set_rate_scale(scale, now);
          applied_scale[j] = scale;
          injector->note_iface_transition(j, now, scale);
          if (me.flight != nullptr) {
            me.flight->log(static_cast<std::uint64_t>(now),
                           telemetry::FlightCategory::kFault,
                           telemetry::FlightCode::kFaultScale, j,
                           static_cast<std::uint64_t>(scale * 1000.0));
          }
        }
      }
      if (injector->maybe_stall(w, now, me.generation, my_generation) ==
          fault::FaultInjector::StallOutcome::kSuperseded) {
        // A watchdog restarted this slot while we were parked at the safe
        // point; the replacement owns all state from here.  Exit without
        // touching anything.
        return;
      }
    }
    bool did_work = false;
    for (const std::uint32_t s : me.home_shards) {
      did_work |= drain_ingress(s, me, scratch);
    }
    for (const IfaceId j : me.ifaces) {
      did_work |= drain_iface(j, me, burst);
    }
    if (!did_work) park(me, kParkSlice.count());
  }
  if (me.flight != nullptr) {
    me.flight->log(static_cast<std::uint64_t>(now_ns()),
                   telemetry::FlightCategory::kRuntime,
                   telemetry::FlightCode::kWorkerExit, w, my_generation);
  }
}

bool Runtime::drain_ingress(std::uint32_t shard_index, Worker& me,
                            std::vector<Packet>& scratch) {
  Shard& shard = *shards_[shard_index];
  scratch.clear();
  for (auto& ring : shard.ingress) {
    ring->pop_batch(scratch, options_.fanin_batch);
  }
  if (scratch.empty()) return false;
  const SimTime span_begin = me.span_cap != 0 ? now_ns() : 0;
  // One clock read covers the whole batch: the fan-in stamp separates
  // "waiting in an SPSC ring" from "queued in the scheduler", and a
  // per-packet read here would cost more than the distinction is worth.
  const SimTime t_fanin =
      tracer_ != nullptr ? (me.span_cap != 0 ? span_begin : now_ns()) : 0;
  std::uint64_t accepted = 0;
  std::uint64_t gone = 0;
  std::uint64_t dropped = 0;
  std::uint64_t shed = 0;
  std::uint64_t moved_bytes = 0;
  // Overload shedding arms when the shard's backlog crosses the watermark.
  // The verdict is per flow and weight-aware: a packet is shed only when
  // its flow already holds at least its weighted fair share of the
  // watermark (backlog_f / shed_bytes >= weight_f / weight_sum).  Light
  // flows therefore keep landing packets while hoarders are trimmed --
  // which is what keeps Jain's index high under overload.  The watermark
  // is read once per pass (the adaptive controller retunes it live, and
  // arming and per-flow verdicts must agree within a pass), but both the
  // arming check and the per-flow shares fold in bytes accepted EARLIER
  // IN THIS PASS: the scheduler's backlog counters only move at the
  // batched enqueue below, and a verdict blind to its own pass admits
  // the whole batch in one gulp whenever the backlog dips under the
  // watermark.
  const std::uint64_t shed_watermark =
      shed_bytes_.load(std::memory_order_relaxed);
  const std::uint64_t backlog_before =
      shard.backlog_bytes.load(std::memory_order_relaxed);
  std::uint64_t pass_accepted_bytes = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.pass_bytes_of_local.size() < shard.weight_of_local.size()) {
      shard.pass_bytes_of_local.resize(shard.weight_of_local.size(), 0);
    }
    // Pass 1: translate global -> scheduler-local flow ids in place,
    // compacting away stragglers (flows removed after their packets
    // entered the ring; the control plane published first, so these are
    // bounded).  Pass 2: ONE batched hand-off -- the scheduler amortizes
    // its per-enqueue virtual dispatch and ring/flag touches across the
    // whole batch; every packet keeps its own enqueued_at stamp.
    std::size_t keep = 0;
    for (std::size_t i = 0; i < scratch.size(); ++i) {
      Packet& packet = scratch[i];
      const FlowId global = packet.flow;
      moved_bytes += packet.size_bytes;
      const FlowId local = global < shard.local_of_flow.size()
                               ? shard.local_of_flow[global]
                               : kInvalidFlow;
      if (local == kInvalidFlow) {
        ++gone;
        drop_trace(packet);
        continue;
      }
      if (shed_watermark != 0 && shard.weight_sum > 0.0 &&
          backlog_before + pass_accepted_bytes >= shed_watermark &&
          static_cast<double>(shard.sched->backlog_bytes(local) +
                              shard.pass_bytes_of_local[local]) *
                  shard.weight_sum >=
              static_cast<double>(shed_watermark) *
                  shard.weight_of_local[local]) {
        ++shed;
        drop_trace(packet);
        continue;
      }
      if (shard.pass_bytes_of_local[local] == 0) {
        shard.pass_touched.push_back(local);
      }
      shard.pass_bytes_of_local[local] += packet.size_bytes;
      pass_accepted_bytes += packet.size_bytes;
      if (tracer_ != nullptr && packet.trace != 0) {
        tracer_->stamp_fanin(packet.trace,
                             static_cast<std::uint64_t>(t_fanin));
      }
      packet.flow = local;
      if (keep != i) scratch[keep] = std::move(packet);
      ++keep;
    }
    if (keep > 0) {
      const EnqueueBatchResult result = shard.sched->enqueue_batch(
          std::span<Packet>(scratch.data(), keep), /*now=*/0);
      accepted = result.accepted;
      dropped = result.dropped;  // per-flow queue bounds (tail drops)
      shard.backlog_bytes.fetch_add(result.accepted_bytes,
                                    std::memory_order_relaxed);
    }
    for (const FlowId touched : shard.pass_touched) {
      shard.pass_bytes_of_local[touched] = 0;
    }
    shard.pass_touched.clear();
  }
  const std::uint64_t total = static_cast<std::uint64_t>(scratch.size());
  scratch.clear();
  me.enqueued.fetch_add(accepted, std::memory_order_relaxed);
  me.fanin_drops.fetch_add(gone, std::memory_order_relaxed);
  me.tail_drops.fetch_add(dropped, std::memory_order_relaxed);
  me.shed_drops.fetch_add(shed, std::memory_order_relaxed);
  // Tail-dropped packets were already moved into the scheduler's batch;
  // any trace tags among them are unreachable here, so their records age
  // out as "lost" rather than "dropped" (started >= completed+lost+dropped).
  if (me.flight != nullptr && (shed > 0 || gone > 0 || dropped > 0)) {
    const std::uint64_t t_flight = static_cast<std::uint64_t>(
        me.span_cap != 0 ? span_begin : now_ns());
    if (shed > 0) {
      me.flight->log(t_flight, telemetry::FlightCategory::kRuntime,
                     telemetry::FlightCode::kShedDrops, shed);
    }
    if (gone > 0) {
      me.flight->log(t_flight, telemetry::FlightCategory::kRuntime,
                     telemetry::FlightCode::kStragglerDrops, gone);
    }
    if (dropped > 0) {
      me.flight->log(t_flight, telemetry::FlightCategory::kRuntime,
                     telemetry::FlightCode::kTailDrops, dropped);
    }
  }
  if (me.span_cap != 0) {
    telemetry::TraceSpan span;
    span.kind = telemetry::TraceSpan::Kind::kFanIn;
    span.worker = me.index;
    span.begin_ns = span_begin;
    span.end_ns = now_ns();
    span.shard = shard_index;
    span.packets = total;
    span.bytes = moved_bytes;
    record_span(me, span);
  }
  if (gone > 0 && straggler_warn_.allow()) {
    MIDRR_LOG_WARN() << "dropped " << gone << " straggler packet(s) for "
                     << "removed flows at shard " << shard_index << " fan-in ("
                     << straggler_warn_.take_suppressed()
                     << " earlier occurrences unreported)";
  }
  if (accepted > 0) {
    for (const std::uint32_t w : shard.kick_on_enqueue) {
      if (w != me.index) kick(w);
    }
  }
  return true;
}

void Runtime::complete_trace(const Packet& packet, IfaceId iface,
                             SimTime sent_at) {
  std::uint64_t e2e = 0;
  // packet.flow was rewritten to a shard-local scheduler id at fan-in;
  // the tracer kept the GLOBAL id from the claim, which is the one the
  // control plane's class directory is indexed by.
  FlowId global_flow = kInvalidFlow;
  const bool ok = tracer_->complete(
      packet.trace, static_cast<std::uint64_t>(packet.enqueued_at),
      static_cast<std::uint64_t>(sent_at), iface, &e2e, &global_flow);
  if (ok && options_.slo != nullptr && global_flow != kInvalidFlow) {
    options_.slo->record(control_->class_of(global_flow), e2e,
                         static_cast<std::uint64_t>(sent_at));
  }
}

void Runtime::account_sent(IfaceRec& rec, Worker& me, const Packet& packet,
                           SimTime sent_at) {
  const SimTime waited = sent_at - packet.enqueued_at;
  const std::uint64_t wait_ns =
      waited > 0 ? static_cast<std::uint64_t>(waited) : 0;
  me.latency.record(wait_ns);
  if (me.wait_hist != nullptr) me.wait_hist->observe(wait_ns);
  sent_by_flow_[packet.flow].fetch_add(packet.size_bytes,
                                       std::memory_order_relaxed);
  rec.packets.fetch_add(1, std::memory_order_relaxed);
  rec.bytes.fetch_add(packet.size_bytes, std::memory_order_relaxed);
  me.sent.fetch_add(1, std::memory_order_relaxed);
  me.sent_bytes.fetch_add(packet.size_bytes, std::memory_order_relaxed);
}

void Runtime::absorb_completions(IfaceId iface, Worker& me) {
  IfaceRec& rec = *ifaces_[iface];
  // One clock read for the whole batch: a completion's latency sample runs
  // enqueue -> kernel-confirmed send, so the egress stage of a traced
  // packet absorbs submit-to-CQE time (the attribution PR 8 promised).
  const SimTime done_at = now_ns();
  std::uint64_t parked_bytes = 0;
  bool parked = false;
  for (io::EgressCompletion& done : me.completions) {
    switch (done.verdict) {
      case io::SendDisposition::kSent:
        account_sent(rec, me, done.packet, done_at);
        if (tracer_ != nullptr && done.packet.trace != 0) {
          complete_trace(done.packet, iface, done_at);
        }
        break;
      case io::SendDisposition::kRequeued:
        parked_bytes += done.packet.size_bytes;
        rec.pending.push_back(std::move(done.packet));
        parked = true;
        me.io_requeued.fetch_add(1, std::memory_order_relaxed);
        break;
      case io::SendDisposition::kDropped:
      case io::SendDisposition::kInflight:  // contract: never handed back
        me.io_drops.fetch_add(1, std::memory_order_relaxed);
        drop_trace(done.packet);
        break;
    }
  }
  if (parked) {
    rec.pending_packets.store(rec.pending.size(), std::memory_order_relaxed);
    rec.pending_bytes.store(
        rec.pending_bytes.load(std::memory_order_relaxed) + parked_bytes,
        std::memory_order_relaxed);
  }
  me.completions.clear();
}

bool Runtime::reap_egress(IfaceId iface, Worker& me) {
  me.completions.clear();
  if (egress_->poll_completions(iface, me.completions) == 0) return false;
  absorb_completions(iface, me);
  return true;
}

bool Runtime::send_pending(IfaceId iface, Worker& me) {
  IfaceRec& rec = *ifaces_[iface];
  const SimTime now = now_ns();
  const io::EgressResult result = egress_->send_burst(
      iface, std::span<const Packet>(rec.pending.data(), rec.pending.size()),
      now, me.dispositions);
  if (result.requeued == rec.pending.size()) {
    // Whole stash pushed back again; count the event, nothing moved.
    me.io_requeued.fetch_add(result.requeued, std::memory_order_relaxed);
    return false;
  }
  // `now` was read before the send; traced completions take a fresh
  // post-send stamp so the egress stage includes the syscall itself.
  const SimTime sent_at = tracer_ != nullptr ? now_ns() : now;
  std::size_t keep = 0;
  std::uint64_t keep_bytes = 0;
  for (std::size_t i = 0; i < rec.pending.size(); ++i) {
    Packet& packet = rec.pending[i];
    const io::SendDisposition verdict =
        result.clean ? io::SendDisposition::kSent : me.dispositions[i];
    switch (verdict) {
      case io::SendDisposition::kSent:
        account_sent(rec, me, packet, now);
        if (tracer_ != nullptr && packet.trace != 0) {
          complete_trace(packet, iface, sent_at);
        }
        break;
      case io::SendDisposition::kRequeued:
        keep_bytes += packet.size_bytes;
        if (keep != i) rec.pending[keep] = std::move(packet);
        ++keep;
        break;
      case io::SendDisposition::kDropped:
        me.io_drops.fetch_add(1, std::memory_order_relaxed);
        drop_trace(packet);
        break;
      case io::SendDisposition::kInflight:
        // Accepted into the backend's submission queue: it left the stash
        // and will come back through reap_egress with a real verdict.
        break;
    }
  }
  rec.pending.resize(keep);
  rec.pending_packets.store(keep, std::memory_order_relaxed);
  rec.pending_bytes.store(keep_bytes, std::memory_order_relaxed);
  if (result.requeued > 0) {
    me.io_requeued.fetch_add(result.requeued, std::memory_order_relaxed);
  }
  return true;
}

bool Runtime::drain_iface(IfaceId iface, Worker& me,
                          std::vector<Packet>& burst) {
  IfaceRec& rec = *ifaces_[iface];
  // Completion-driven backends resolve packets asynchronously: harvest
  // their verdicts before anything else so delivery accounting (and the
  // stash, when a completion parks a retry) is current for this pass.
  bool reaped = false;
  if (egress_completion_driven_) reaped = reap_egress(iface, me);
  // A parked tail goes first: those packets were dequeued and
  // pacer-charged already, only the socket gates them.  No new dequeue
  // until the stash clears -- per-flow order is preserved and the stash
  // can never exceed one burst.
  if (!rec.pending.empty()) return send_pending(iface, me) || reaped;
  const SimTime t0 = now_ns();
  std::uint64_t budget = rec.pacer.budget_bytes(t0);
  if (budget == 0) return reaped;
  budget = std::min(budget, options_.burst_bytes);
  Shard& shard = *shards_[rec.shard];
  burst.clear();
  std::size_t count;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    // t0 doubles as the burst timestamp (observer events / traces); it is
    // at most a lock acquisition older than "now", and reading the clock
    // again under the shard mutex would stretch the critical section.
    count = shard.sched->dequeue_burst(rec.local_id, budget, t0, burst);
    // Translate scheduler-local flow ids back to global ids while the maps
    // are still protected; everything after this runs lock-free.
    for (Packet& packet : burst) {
      packet.flow = shard.global_of_flow[packet.flow];
    }
  }
  if (count == 0) return reaped;
  const SimTime drained_at = now_ns();
  if (tracer_ != nullptr) {
    // The dequeue stamp closes the queue stage at the same instant the
    // existing wait accounting uses (drained_at); the egress stage opens
    // here and absorbs the send syscall below.
    for (const Packet& packet : burst) {
      if (packet.trace != 0) {
        tracer_->stamp_dequeue(packet.trace,
                               static_cast<std::uint64_t>(drained_at));
      }
    }
  }
  const io::EgressResult outcome = egress_->send_burst(
      iface, std::span<const Packet>(burst.data(), burst.size()), drained_at,
      me.dispositions);
  // Disabled tracing keeps the historical single clock read per burst;
  // enabled tracing pays one extra read so the egress stage is real.
  const SimTime sent_at = tracer_ != nullptr ? now_ns() : drained_at;
  telemetry::Histogram* const wait_hist = me.wait_hist;
  std::uint64_t bytes = 0;
  if (outcome.clean) {
    // Everything left: the historical fast path, untouched.  Bursts are
    // runs of same-flow packets (DRR serves a flow until its deficit runs
    // out), so fold consecutive packets into one sent_by_flow_ fetch_add
    // per run instead of one per packet.
    FlowId run_flow = kInvalidFlow;
    std::uint64_t run_bytes = 0;
    for (const Packet& packet : burst) {
      bytes += packet.size_bytes;
      const SimTime waited = drained_at - packet.enqueued_at;
      const std::uint64_t wait_ns =
          waited > 0 ? static_cast<std::uint64_t>(waited) : 0;
      me.latency.record(wait_ns);
      if (wait_hist != nullptr) wait_hist->observe(wait_ns);
      if (packet.flow != run_flow) {
        if (run_bytes != 0) {
          sent_by_flow_[run_flow].fetch_add(run_bytes,
                                            std::memory_order_relaxed);
        }
        run_flow = packet.flow;
        run_bytes = 0;
      }
      run_bytes += packet.size_bytes;
      if (tracer_ != nullptr && packet.trace != 0) {
        complete_trace(packet, iface, sent_at);
      }
    }
    if (run_bytes != 0) {
      sent_by_flow_[run_flow].fetch_add(run_bytes, std::memory_order_relaxed);
    }
    rec.packets.fetch_add(count, std::memory_order_relaxed);
    rec.bytes.fetch_add(bytes, std::memory_order_relaxed);
    me.sent.fetch_add(count, std::memory_order_relaxed);
    me.sent_bytes.fetch_add(bytes, std::memory_order_relaxed);
  } else {
    // Mixed verdicts: per-packet accounting.  Requeued packets park in
    // dequeue order (the backend only pushes back suffixes, but the loop
    // does not rely on that); dropped packets are already counted inside
    // the backend's own series, here they feed the runtime identity.
    std::uint64_t pending_bytes = 0;
    std::uint64_t io_dropped = 0;
    for (std::size_t i = 0; i < burst.size(); ++i) {
      Packet& packet = burst[i];
      bytes += packet.size_bytes;
      switch (me.dispositions[i]) {
        case io::SendDisposition::kSent:
          account_sent(rec, me, packet, drained_at);
          if (tracer_ != nullptr && packet.trace != 0) {
            complete_trace(packet, iface, sent_at);
          }
          break;
        case io::SendDisposition::kRequeued:
          pending_bytes += packet.size_bytes;
          rec.pending.push_back(std::move(packet));
          break;
        case io::SendDisposition::kDropped:
          me.io_drops.fetch_add(1, std::memory_order_relaxed);
          ++io_dropped;
          drop_trace(packet);
          break;
        case io::SendDisposition::kInflight:
          // The backend holds its own reference; the verdict arrives via
          // reap_egress at the top of a later drain pass.  Nothing is
          // accounted here -- the packet is in the io_inflight term.
          break;
      }
    }
    rec.pending_packets.store(rec.pending.size(), std::memory_order_relaxed);
    rec.pending_bytes.store(
        rec.pending_bytes.load(std::memory_order_relaxed) + pending_bytes,
        std::memory_order_relaxed);
    if (outcome.requeued > 0) {
      me.io_requeued.fetch_add(outcome.requeued, std::memory_order_relaxed);
    }
    if (me.flight != nullptr && (outcome.requeued > 0 || io_dropped > 0)) {
      // Under a completion-driven backend every burst takes this branch
      // (fates deferred), so only real pushback/loss earns a flight entry.
      me.flight->log(static_cast<std::uint64_t>(sent_at),
                     telemetry::FlightCategory::kIo,
                     telemetry::FlightCode::kIoPushback, outcome.requeued,
                     io_dropped);
    }
  }
  // Pacer and backlog are charged for the WHOLE dequeued burst at dequeue
  // time: a requeued tail holds the link slot it already paid for (pacer
  // debt) and is not re-priced on retry.
  rec.pacer.consume(bytes);
  shard.backlog_bytes.fetch_sub(bytes, std::memory_order_relaxed);
  me.dequeued.fetch_add(count, std::memory_order_relaxed);
  me.dequeued_bytes.fetch_add(bytes, std::memory_order_relaxed);
  me.bursts.fetch_add(1, std::memory_order_relaxed);
  if (me.span_cap != 0) {
    telemetry::TraceSpan span;
    span.kind = telemetry::TraceSpan::Kind::kDrain;
    span.worker = me.index;
    span.begin_ns = t0;
    span.end_ns = drained_at;
    span.iface = iface;
    span.packets = count;
    span.bytes = bytes;
    record_span(me, span);
  }
  burst.clear();
  return true;
}

void Runtime::record_span(Worker& me, telemetry::TraceSpan span) {
  if (me.spans.size() < me.span_cap) {
    me.spans.push_back(span);
  } else {
    me.spans_dropped.fetch_add(1, std::memory_order_relaxed);
  }
}

bool Runtime::ingress_pending(const Worker& me) const {
  for (const std::uint32_t s : me.home_shards) {
    for (const auto& ring : shards_[s]->ingress) {
      if (!ring->empty_approx()) return true;
    }
  }
  return false;
}

void Runtime::park(Worker& me, SimTime hint_ns) {
  me.parks.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(me.park_mu);
  me.asleep.store(true, std::memory_order_seq_cst);
  // Fence-fence pairing with offer(): asleep is published before we
  // re-check the rings, and the producer fences between its ring push and
  // its asleep probe.  Whichever side's read happens "second" in the
  // seq_cst order sees the other's write -- so a packet pushed while we
  // park either finds asleep == true (and kicks) or is found by
  // ingress_pending() below.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (!me.kicked.load(std::memory_order_seq_cst) &&
      running_.load(std::memory_order_acquire) && !ingress_pending(me)) {
    me.park_cv.wait_for(lock, std::chrono::nanoseconds(hint_ns), [&] {
      return me.kicked.load(std::memory_order_relaxed) ||
             !running_.load(std::memory_order_relaxed);
    });
  }
  me.kicked.store(false, std::memory_order_relaxed);
  me.asleep.store(false, std::memory_order_seq_cst);
}

void Runtime::kick(std::uint32_t worker) {
  if (worker >= workers_.size()) return;  // pre-start offers: nobody to wake
  Worker& target = *workers_[worker];
  target.kicked.store(true, std::memory_order_seq_cst);
  if (target.asleep.load(std::memory_order_seq_cst)) {
    // Taking the mutex orders us against the worker's check-then-wait; the
    // notify can then never fall between its predicate check and its wait.
    std::lock_guard<std::mutex> lock(target.park_mu);
    target.park_cv.notify_one();
  }
}

void Runtime::kick_if_asleep(std::uint32_t worker) {
  if (worker >= workers_.size()) return;  // pre-start offers: nobody to wake
  Worker& target = *workers_[worker];
  // Relaxed probe is enough: the caller's seq_cst fence (after its ring
  // push) paired with park()'s fence provides the Dekker guarantee; the
  // full kick() path below re-checks with its own ordering.
  if (target.asleep.load(std::memory_order_relaxed)) kick(worker);
}

// --- Runtime: introspection ----------------------------------------------

RuntimeStats Runtime::stats() const {
  RuntimeStats out;
  out.offered = offered_.load(std::memory_order_relaxed);
  out.ring_rejects = ring_rejects_.load(std::memory_order_relaxed);
  LatencyHistogram merged;
  for (const auto& worker : workers_) {
    out.enqueued += worker->enqueued.load(std::memory_order_relaxed);
    out.fanin_drops += worker->fanin_drops.load(std::memory_order_relaxed);
    out.tail_drops += worker->tail_drops.load(std::memory_order_relaxed);
    out.dequeued += worker->dequeued.load(std::memory_order_relaxed);
    out.dequeued_bytes +=
        worker->dequeued_bytes.load(std::memory_order_relaxed);
    out.sent += worker->sent.load(std::memory_order_relaxed);
    out.sent_bytes += worker->sent_bytes.load(std::memory_order_relaxed);
    out.io_requeued += worker->io_requeued.load(std::memory_order_relaxed);
    out.io_drops += worker->io_drops.load(std::memory_order_relaxed);
    out.bursts += worker->bursts.load(std::memory_order_relaxed);
    out.parks += worker->parks.load(std::memory_order_relaxed);
    out.shed_drops += worker->shed_drops.load(std::memory_order_relaxed);
    merged.merge_from(worker->latency);
  }
  for (const auto& shard : shards_) {
    out.straggler_drops +=
        shard->straggler_drops.load(std::memory_order_relaxed);
  }
  for (IfaceId j = 0; j < ifaces_.size(); ++j) {
    out.io_pending +=
        ifaces_[j]->pending_packets.load(std::memory_order_relaxed);
    if (egress_ != nullptr) {
      out.io_send_errors += egress_->send_errors(j);
      out.io_inflight += egress_->inflight_packets(j);
    }
  }
  if (egress_ != nullptr) out.io_syscalls = egress_->syscalls();
  out.backpressure_rejects =
      backpressure_rejects_.load(std::memory_order_relaxed);
  out.quarantine_rejects = quarantine_rejects_.load(std::memory_order_relaxed);
  out.worker_restarts = worker_restarts_.load(std::memory_order_relaxed);
  out.latency_count = merged.count();
  out.latency_mean_ns = merged.mean_ns();
  out.latency_p50_ns = merged.quantile(0.50);
  out.latency_p90_ns = merged.quantile(0.90);
  out.latency_p99_ns = merged.quantile(0.99);
  out.latency_p999_ns = merged.quantile(0.999);
  return out;
}

std::uint64_t Runtime::sent_bytes(FlowId flow) const {
  if (flow >= sent_by_flow_.size()) return 0;
  return sent_by_flow_[flow].load(std::memory_order_relaxed);
}

std::uint64_t Runtime::iface_sent_bytes(IfaceId iface) const {
  MIDRR_REQUIRE(iface < ifaces_.size(), "unknown interface");
  return ifaces_[iface]->bytes.load(std::memory_order_relaxed);
}

std::uint64_t Runtime::iface_sent_packets(IfaceId iface) const {
  MIDRR_REQUIRE(iface < ifaces_.size(), "unknown interface");
  return ifaces_[iface]->packets.load(std::memory_order_relaxed);
}

std::uint64_t Runtime::iface_send_errors(IfaceId iface) const {
  MIDRR_REQUIRE(iface < ifaces_.size(), "unknown interface");
  return egress_ != nullptr ? egress_->send_errors(iface) : 0;
}

const io::EgressBackend& Runtime::egress() const {
  MIDRR_REQUIRE(egress_ != nullptr, "egress backend is bound at start()");
  return *egress_;
}

// --- Runtime: SupervisedRuntime (observe / actuate for fault::Supervisor) -

std::string Runtime::iface_name(IfaceId iface) const {
  MIDRR_REQUIRE(iface < ifaces_.size(), "unknown interface");
  return ifaces_[iface]->name;
}

double Runtime::iface_configured_bps(IfaceId iface, SimTime now) const {
  MIDRR_REQUIRE(iface < ifaces_.size(), "unknown interface");
  const RateProfile* profile = ifaces_[iface]->pacer.profile();
  return profile != nullptr ? profile->rate_at(now) : 0.0;
}

double Runtime::iface_tokens(IfaceId iface) const {
  MIDRR_REQUIRE(iface < ifaces_.size(), "unknown interface");
  return ifaces_[iface]->pacer.tokens_approx();
}

std::uint64_t Runtime::iface_backlog_bytes(IfaceId iface) const {
  MIDRR_REQUIRE(iface < ifaces_.size(), "unknown interface");
  return shards_[ifaces_[iface]->shard]->backlog_bytes.load(
      std::memory_order_relaxed);
}

std::uint64_t Runtime::worker_heartbeat(std::uint32_t worker) const {
  MIDRR_REQUIRE(worker < workers_.size(), "unknown worker");
  return workers_[worker]->heartbeat.load(std::memory_order_relaxed);
}

std::uint32_t Runtime::iface_shard(IfaceId iface) const {
  MIDRR_REQUIRE(iface < ifaces_.size(), "unknown interface");
  return static_cast<std::uint32_t>(ifaces_[iface]->shard);
}

bool Runtime::sample_e2e_buckets(std::vector<std::uint64_t>& out) const {
  if (tracer_ == nullptr) return false;
  out.assign(LatencyHistogram::kBuckets, 0);
  for (IfaceId j = 0; j < ifaces_.size(); ++j) {
    const LatencyHistogram& grid = tracer_->e2e_grid(j);
    for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
      out[i] += grid.bucket_count(i);
    }
  }
  return true;
}

void Runtime::set_iface_down(IfaceId iface, bool down) {
  control().set_iface_down(iface, down);
}

bool Runtime::restart_worker(std::uint32_t worker) {
  if (options_.fault == nullptr || worker >= workers_.size()) return false;
  std::lock_guard<std::mutex> lock(restart_mu_);
  if (!running()) return false;
  Worker& slot = *workers_[worker];
  // begin_restart succeeds ONLY when the thread is parked at the stall
  // safe point (holding no locks, mid-operation state impossible); it
  // bumps the generation under the injector's stall mutex, so the old
  // thread observes kSuperseded before touching anything, and preempts
  // its park.  Shard state (scheduler queues, id maps, rings) lives in
  // the Shard/IfaceRec structures, not the thread -- the replacement
  // picks it all up untouched.
  if (!options_.fault->begin_restart(worker, slot.generation)) return false;
  retired_.push_back(std::move(slot.thread));
  const std::uint64_t generation =
      slot.generation.load(std::memory_order_relaxed);
  slot.thread = std::thread(
      [this, worker, generation] { worker_main(worker, generation); });
  worker_restarts_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

// --- Runtime: telemetry ---------------------------------------------------

void Runtime::register_metrics() {
  auto& reg = *options_.metrics;
  const auto count_of = [](const std::atomic<std::uint64_t>& v) {
    return [&v] { return static_cast<double>(v.load(std::memory_order_relaxed)); };
  };
  reg.counter_fn("midrr_rt_offered_packets_total",
                 "Packets accepted into ingress rings.", {},
                 count_of(offered_));
  reg.counter_fn("midrr_rt_ring_rejects_total",
                 "Offers refused: ingress ring full or no hosting shard.", {},
                 count_of(ring_rejects_));
  reg.gauge_fn("midrr_rt_rcu_epoch_lag",
               "RCU epochs between the control plane and its slowest "
               "in-flight reader (persistently > 0 means a reader parks "
               "inside critical sections).",
               {}, [this] {
                 return static_cast<double>(control_->max_reader_lag());
               });
  reg.gauge_fn("midrr_rt_snapshot_version",
               "Version of the currently published configuration snapshot.",
               {}, [this] { return static_cast<double>(control_->version()); });
  reg.counter_fn("midrr_rt_backpressure_rejects_total",
                 "Offers refused by the shard-backlog admission watermark.",
                 {}, count_of(backpressure_rejects_));
  reg.counter_fn("midrr_rt_quarantine_rejects_total",
                 "Offers refused because the flow has no live willing "
                 "interface (quarantined until a revive re-steers it).",
                 {}, count_of(quarantine_rejects_));
  reg.counter_fn("midrr_rt_worker_restarts_total",
                 "Worker drain loops respawned by the supervision watchdog.",
                 {}, count_of(worker_restarts_));
  reg.gauge_fn("midrr_rt_quarantined_flows",
               "Live flows currently quarantined (non-empty Pi row, no live "
               "willing interface).",
               {}, [this] {
                 return static_cast<double>(control_->quarantined_count());
               });
  reg.gauge_fn("midrr_rt_flow_classes",
               "Live flow classes: distinct (Pi row, weight, queue bound) "
               "tuples currently holding members.  Publish cost and snapshot "
               "size scale with this, not with registered flows.",
               {}, [this] {
                 return static_cast<double>(control_->class_count());
               });
  reg.gauge_fn("midrr_rt_registered_flows",
               "Registered flows (summed members across live classes).", {},
               [this] {
                 return static_cast<double>(control_->flow_count());
               });

  for (const auto& wp : workers_) {
    Worker* w = wp.get();
    const telemetry::LabelSet labels{{"worker", std::to_string(w->index)}};
    reg.counter_fn("midrr_rt_enqueued_packets_total",
                   "Packets handed to shard schedulers by fan-in.", labels,
                   count_of(w->enqueued));
    reg.counter_fn("midrr_rt_straggler_drops_total",
                   "Ingress packets dropped at fan-in because their flow was "
                   "removed after they entered the ring.",
                   labels, count_of(w->fanin_drops));
    reg.counter_fn("midrr_rt_tail_drops_total",
                   "Packets refused by a flow's scheduler queue bound.",
                   labels, count_of(w->tail_drops));
    reg.counter_fn("midrr_rt_dequeued_packets_total",
                   "Packets pulled out of shard schedulers (handed to the "
                   "egress backend; not terminal -- see "
                   "midrr_rt_sent_packets_total).",
                   labels, count_of(w->dequeued));
    reg.counter_fn("midrr_rt_dequeued_bytes_total",
                   "Bytes pulled out of shard schedulers.", labels,
                   count_of(w->dequeued_bytes));
    reg.counter_fn("midrr_rt_sent_packets_total",
                   "Packets the egress backend delivered (== dequeued under "
                   "the sim backend).",
                   labels, count_of(w->sent));
    reg.counter_fn("midrr_rt_sent_bytes_total",
                   "Scheduler bytes of delivered packets.", labels,
                   count_of(w->sent_bytes));
    reg.counter_fn("midrr_rt_io_requeued_total",
                   "Egress requeue events in packets (socket pushback "
                   "parked for retry; retries that push back count again).",
                   labels, count_of(w->io_requeued));
    reg.counter_fn("midrr_rt_io_drops_total",
                   "Packets terminally dropped by the egress backend "
                   "(oversize, hard errno, unflushable at stop).",
                   labels, count_of(w->io_drops));
    reg.counter_fn("midrr_rt_bursts_total",
                   "dequeue_burst calls that moved at least one packet.",
                   labels, count_of(w->bursts));
    reg.counter_fn("midrr_rt_parks_total",
                   "Times this worker went to sleep with nothing to do.",
                   labels, count_of(w->parks));
    reg.counter_fn("midrr_rt_shed_drops_total",
                   "Packets shed at fan-in by the overload watermark "
                   "(weight-aware fair-share trimming).",
                   labels, count_of(w->shed_drops));
    reg.gauge_fn("midrr_rt_worker_heartbeat",
                 "Drain-loop liveness tick; a frozen value marks a stalled "
                 "worker.",
                 labels, count_of(w->heartbeat));
    if (options_.trace_spans > 0) {
      reg.counter_fn("midrr_rt_trace_spans_dropped_total",
                     "Work spans discarded because the per-worker trace "
                     "buffer was full (the exported timeline is truncated).",
                     labels, count_of(w->spans_dropped));
    }
  }

  for (const auto& rp : ifaces_) {
    IfaceRec* rec = rp.get();
    const telemetry::LabelSet labels{{"iface", rec->name}};
    reg.counter_fn("midrr_rt_iface_sent_packets_total",
                   "Packets drained through this interface.", labels,
                   count_of(rec->packets));
    reg.counter_fn("midrr_rt_iface_sent_bytes_total",
                   "Bytes drained through this interface.", labels,
                   count_of(rec->bytes));
    reg.gauge_fn("midrr_rt_pacer_tokens_bytes",
                 "Token-bucket balance in bytes; negative values are pacer "
                 "debt (an overshoot still being paid back).",
                 labels, [rec] { return rec->pacer.tokens_approx(); });
    reg.gauge_fn("midrr_rt_io_pending_packets",
                 "Packets parked by the egress backend awaiting a retry "
                 "(already dequeued and pacer-charged; bounded by one "
                 "burst).",
                 labels, count_of(rec->pending_packets));
    if (egress_completion_driven_) {
      const IfaceId rec_id = rec->id;
      reg.gauge_fn(
          "midrr_rt_io_inflight_packets",
          "Packets inside the completion-driven egress backend (accepted "
          "into the kernel, verdict pending; the io_inflight term of the "
          "conservation identity -- zero at quiescence).",
          labels, [this, rec_id] {
            return static_cast<double>(egress_->inflight_packets(rec_id));
          });
    }
    if (rec->pacer.profile() != nullptr) {
      reg.gauge_fn("midrr_rt_iface_capacity_bps",
                   "Instantaneous configured link capacity (bits/s) from "
                   "the interface's rate profile.",
                   labels, [this, rec] {
                     return rec->pacer.profile()->rate_at(now_ns());
                   });
    }
  }

  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard* shard = shards_[s].get();
    const telemetry::LabelSet labels{{"shard", std::to_string(s)}};
    reg.gauge_fn("midrr_rt_shard_backlog_bytes",
                 "Bytes queued in this shard's scheduler (fan-in accepted "
                 "minus drained minus removed-flow discards).",
                 labels, count_of(shard->backlog_bytes));
    reg.counter_fn("midrr_rt_flow_backlog_drops_total",
                   "Queued packets discarded because their flow left this "
                   "shard (remove or interface-death re-steer); every one "
                   "is counted loss, never silent.",
                   labels, count_of(shard->straggler_drops));
    reg.gauge_fn("midrr_rt_ingress_ring_occupancy",
                 "Packets waiting in this shard's ingress rings (approximate"
                 "; summed over producers).",
                 labels, [shard] {
                   std::uint64_t waiting = 0;
                   for (const auto& ring : shard->ingress) {
                     waiting += ring->size_approx();
                   }
                   return static_cast<double>(waiting);
                 });
    if (shard->recorder != nullptr) {
      // overflowed() is written under the shard mutex; the scrape takes it
      // too (leaf lock, scrape-rate only -- never under another lock here).
      reg.counter_fn("midrr_rt_trace_events_lost_total",
                     "Scheduler trace events evicted from the ring buffer "
                     "(the captured timeline is truncated).",
                     labels, [shard] {
                       std::lock_guard<std::mutex> lock(shard->mu);
                       return static_cast<double>(shard->recorder->overflowed());
                     });
    }
  }

  // Egress: one info-style gauge naming the active backend, then whatever
  // midrr_io_* series the backend itself exports (syscalls, batch sizes,
  // send errors...).
  reg.gauge_fn("midrr_rt_egress_backend",
               "Constant 1; the label names the active egress backend.",
               {{"backend", egress_->name()}}, [] { return 1.0; });
  egress_->register_metrics(reg);

  if (tracer_ != nullptr) {
    std::vector<std::string> iface_names;
    iface_names.reserve(ifaces_.size());
    for (const auto& rec : ifaces_) iface_names.push_back(rec->name);
    tracer_->register_metrics(reg, iface_names);
  }
  if (options_.slo != nullptr) {
    options_.slo->register_metrics(
        reg, [this] { return static_cast<std::uint64_t>(now_ns()); });
  }
  if (options_.flight != nullptr) {
    telemetry::FlightRecorder* flight = options_.flight;
    reg.counter_fn("midrr_flight_events_total",
                   "Events logged into flight-recorder rings (all writers; "
                   "not capped by ring capacity).",
                   {}, [flight] {
                     return static_cast<double>(flight->events_logged());
                   });
    reg.counter_fn("midrr_flight_dumps_total",
                   "Post-mortem flight-recorder dumps written to disk.", {},
                   [flight] {
                     return static_cast<double>(flight->dumps());
                   });
  }
}

telemetry::FairnessSample Runtime::fairness_sample() {
  MIDRR_REQUIRE(control_ != nullptr,
                "fairness_sample needs the control plane (start() first)");
  telemetry::FairnessSample out;
  out.at_ns = now_ns();
  const std::size_t iface_total = ifaces_.size();
  out.capacities_bps.reserve(iface_total);
  out.iface_sent_bytes.reserve(iface_total);
  // Measured-capacity re-lowering: with an overlay armed, drooped links
  // report their EFFECTIVE capacity (configured x clamped drift ratio).
  // Every consumer of this sample -- the max-min solver, the fairness
  // drift sampler, the supervisor's Theorem-2 replay -- then reasons about
  // the link the hardware is actually providing, not the configured one.
  const fault::AdaptiveController* overlay =
      capacity_overlay_.load(std::memory_order_acquire);
  IfaceId overlay_iface = 0;
  for (const auto& rec : ifaces_) {
    const RateProfile* profile = rec->pacer.profile();
    double capacity =
        profile != nullptr ? profile->rate_at(out.at_ns) : -1.0;
    if (overlay != nullptr && capacity > 0.0) {
      capacity = overlay->effective_capacity_bps(overlay_iface, capacity);
    }
    out.capacities_bps.push_back(capacity);
    out.iface_sent_bytes.push_back(
        rec->bytes.load(std::memory_order_relaxed));
    ++overlay_iface;
  }
  // A fresh reader per call claims and releases an RCU slot (one CAS scan);
  // fine at sampler rates, and it keeps this callable from any thread.
  auto reader = control_->reader();
  {
    const auto guard = reader.lock();
    // One pass over the flow directory folds per-flow service counters
    // into per-class totals: O(max_flows) relaxed loads at sampler rate,
    // and everything downstream (rows, solver) stays O(classes).  A flow
    // removed mid-window takes its bytes out of its class's total; the
    // sampler clamps the resulting negative window delta to zero.
    std::vector<std::uint64_t> class_sent(guard->classes.size(), 0);
    for (FlowId f = 0; f < sent_by_flow_.size(); ++f) {
      const std::uint64_t bytes =
          sent_by_flow_[f].load(std::memory_order_relaxed);
      if (bytes == 0) continue;
      const ClassId c = control_->class_of(f);
      if (c != kInvalidClass && c < class_sent.size()) class_sent[c] += bytes;
    }
    out.flows.reserve(guard->live.size());
    for (const ClassId id : guard->live) {
      const SnapshotClass& entry = guard->classes[id];
      telemetry::FairnessFlowSample fs;
      fs.id = id;
      fs.name = entry.name.empty() ? "class" + std::to_string(id) : entry.name;
      fs.weight = entry.weight;
      fs.members = entry.members;
      fs.willing.assign(iface_total, false);
      for (const IfaceId j : entry.willing) {
        if (j < iface_total) fs.willing[j] = true;
      }
      fs.sent_bytes = class_sent[id];
      out.flows.push_back(std::move(fs));
    }
  }
  return out;
}

void Runtime::export_trace(telemetry::ChromeTraceBuilder& builder) const {
  MIDRR_REQUIRE(!running(),
                "export_trace requires a stopped runtime (recorders and "
                "span buffers are written by worker threads while running)");
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    if (shard.recorder == nullptr) continue;
    const std::uint32_t pid = static_cast<std::uint32_t>(2 + s);
    builder.set_process_name(pid, "shard " + std::to_string(s) + " scheduler");
    builder.add_recorder(*shard.recorder, pid);
  }
  std::vector<telemetry::TraceSpan> spans;
  for (const auto& worker : workers_) {
    spans.insert(spans.end(), worker->spans.begin(), worker->spans.end());
  }
  if (!spans.empty()) {
    builder.set_process_name(1, "runtime workers");
    builder.add_spans(spans, 1);
  }
}

const TraceRecorder* Runtime::shard_recorder(std::size_t shard) const {
  MIDRR_REQUIRE(shard < shards_.size(), "unknown shard");
  return shards_[shard]->recorder.get();
}

}  // namespace midrr::rt
