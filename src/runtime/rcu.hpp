// Epoch-based read-copy-update cell: one pointer to an immutable snapshot,
// read by many threads without ever blocking, replaced by a (serialized)
// writer that waits out a grace period before freeing the old snapshot.
//
// This is the control plane's publication mechanism (the paper's Section 4
// dynamics -- flow arrival/departure and (Pi, phi) edits -- must never
// stall the datapath).  The scheme is the classic user-space RCU epoch
// design, sized for a fixed worst case instead of dynamic registration:
//
//   * A fixed array of per-reader slots, one cache line each.  A reader
//     thread claims a slot once (Reader RAII) and reuses it for every
//     critical section.
//   * Global epoch counter E, starting at 1.  read(): slot.epoch = E
//     (announce), then load the pointer; both seq_cst so the announce is
//     globally visible before the pointer load.  Guard destruction stores 0
//     ("quiescent", release).
//   * publish(): swap the pointer (seq_cst), bump E, then wait until every
//     claimed slot is either quiescent or announces an epoch >= the new E.
//     Any reader still inside a critical section that might hold the OLD
//     pointer announced an epoch < new-E, so when the scan passes, no
//     reader can still dereference it and the writer deletes it.
//
// Readers: two uncontended atomic stores + two loads per critical section,
// no CAS, no waiting -- they never block, regardless of writer activity.
// Writers: serialized by a mutex and may spin-yield for one grace period;
// fine for control-plane rates (updates per second, not per packet).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>

#include "runtime/spsc_ring.hpp"  // kCacheLine
#include "util/assert.hpp"

namespace midrr::rt {

template <typename T>
class Rcu {
 public:
  /// Maximum number of simultaneously registered reader threads.
  static constexpr std::size_t kMaxReaders = 128;

  explicit Rcu(std::unique_ptr<const T> initial)
      : current_(initial.release()) {
    MIDRR_REQUIRE(current_.load() != nullptr, "RCU cell needs an initial value");
  }

  ~Rcu() { delete current_.load(std::memory_order_acquire); }

  Rcu(const Rcu&) = delete;
  Rcu& operator=(const Rcu&) = delete;

  /// A claimed reader slot; one per reader THREAD, reused across critical
  /// sections.  Claiming is a one-time CAS scan; destruction releases the
  /// slot for other threads.
  class Reader {
   public:
    explicit Reader(Rcu& cell) : cell_(&cell) {
      for (std::size_t i = 0; i < kMaxReaders; ++i) {
        bool expected = false;
        if (cell.slots_[i].claimed.compare_exchange_strong(
                expected, true, std::memory_order_acq_rel)) {
          slot_ = i;
          return;
        }
      }
      MIDRR_REQUIRE(false, "RCU reader slots exhausted (kMaxReaders)");
    }

    ~Reader() {
      if (cell_ != nullptr) {
        cell_->slots_[slot_].epoch.store(0, std::memory_order_release);
        cell_->slots_[slot_].claimed.store(false, std::memory_order_release);
      }
    }

    Reader(Reader&& other) noexcept : cell_(other.cell_), slot_(other.slot_) {
      other.cell_ = nullptr;
    }
    Reader(const Reader&) = delete;
    Reader& operator=(const Reader&) = delete;
    Reader& operator=(Reader&&) = delete;

    /// An open read-side critical section.  The snapshot stays valid until
    /// the Guard is destroyed; never hold one across blocking calls.
    class Guard {
     public:
      const T* get() const { return ptr_; }
      const T* operator->() const { return ptr_; }
      const T& operator*() const { return *ptr_; }

      ~Guard() {
        if (slot_ != nullptr) slot_->epoch.store(0, std::memory_order_release);
      }
      Guard(Guard&& other) noexcept : ptr_(other.ptr_), slot_(other.slot_) {
        other.slot_ = nullptr;
      }
      Guard(const Guard&) = delete;
      Guard& operator=(const Guard&) = delete;
      Guard& operator=(Guard&&) = delete;

     private:
      friend class Reader;
      Guard(const T* ptr, typename Rcu::Slot* slot) : ptr_(ptr), slot_(slot) {}
      const T* ptr_;
      typename Rcu::Slot* slot_;
    };

    /// Enters a critical section: announce the epoch, then load the
    /// pointer.  seq_cst on both gives the store-load ordering the grace
    /// period scan relies on (announce visible before the pointer read).
    /// Guards from the SAME Reader must not be nested (one slot per
    /// reader: the inner Guard's destruction would end the outer critical
    /// section early).
    Guard lock() {
      auto& slot = cell_->slots_[slot_];
      // A stale (smaller) announced epoch is safe -- it only makes the
      // writer wait for us conservatively -- so one plain store suffices.
      slot.epoch.store(cell_->epoch_.load(std::memory_order_seq_cst),
                       std::memory_order_seq_cst);
      const T* ptr = cell_->current_.load(std::memory_order_seq_cst);
      return Guard(ptr, &slot);
    }

   private:
    Rcu* cell_;
    std::size_t slot_ = 0;
  };

  /// Replaces the snapshot and blocks until the previous one is
  /// unreachable, then deletes it.  Writers are serialized.  Safe to call
  /// from a reader thread only OUTSIDE any Guard (a writer waiting on its
  /// own open critical section would deadlock).
  void publish(std::unique_ptr<const T> next) {
    MIDRR_REQUIRE(next != nullptr, "publishing a null snapshot");
    std::lock_guard<std::mutex> lock(writer_mu_);
    const T* old = current_.exchange(next.release(), std::memory_order_seq_cst);
    const std::uint64_t target =
        epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
    wait_for_grace_period(target);
    delete old;
  }

  /// Current version counter (bumped once per publish); mostly for tests.
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Epochs between the global counter and the OLDEST epoch any reader is
  /// still announcing (0 when every claimed slot is quiescent or current).
  /// A persistently large value means some reader parks inside critical
  /// sections; telemetry exports it as the RCU epoch-lag gauge.  Racy by
  /// design: slots are scanned one relaxed load at a time.
  std::uint64_t max_reader_lag() const {
    const std::uint64_t now = epoch_.load(std::memory_order_relaxed);
    std::uint64_t lag = 0;
    for (std::size_t i = 0; i < kMaxReaders; ++i) {
      if (!slots_[i].claimed.load(std::memory_order_relaxed)) continue;
      const std::uint64_t e = slots_[i].epoch.load(std::memory_order_relaxed);
      if (e != 0 && e < now) lag = std::max(lag, now - e);
    }
    return lag;
  }

 private:
  struct alignas(kCacheLine) Slot {
    std::atomic<std::uint64_t> epoch{0};  // 0 = quiescent
    std::atomic<bool> claimed{false};
  };

  void wait_for_grace_period(std::uint64_t target) const {
    for (std::size_t i = 0; i < kMaxReaders; ++i) {
      const Slot& slot = slots_[i];
      // seq_cst load pairs with the reader's announce; `claimed` can turn
      // false concurrently, which only ends the wait early -- a slot being
      // released implies its owner left the critical section.
      while (slot.claimed.load(std::memory_order_acquire)) {
        const std::uint64_t e = slot.epoch.load(std::memory_order_seq_cst);
        if (e == 0 || e >= target) break;
        std::this_thread::yield();
      }
    }
  }

  std::atomic<const T*> current_;
  std::atomic<std::uint64_t> epoch_{1};
  mutable std::mutex writer_mu_;
  Slot slots_[kMaxReaders];
};

}  // namespace midrr::rt
