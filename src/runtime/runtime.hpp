// Runtime: the sharded real-time (wall-clock) execution engine.
//
// The discrete-event simulator answers "is the policy fair?"; the runtime
// answers "does the implementation serve packets, concurrently, at rate?".
// It runs any library Scheduler behind real threads:
//
//   producers (P threads, external or LoadGenerator)
//       |  lock-free SPSC ingress rings, one per (shard, producer)
//       v
//   fan-in stage (run by each shard's home worker): batches ring contents
//       into the shard's scheduler under the shard mutex
//       v
//   shard schedulers (S instances of any midrr::Scheduler; interfaces are
//       partitioned round-robin across shards)
//       v
//   per-interface drain loops (W worker threads; each interface belongs to
//       exactly one worker): token-bucket pacer -> dequeue_burst under the
//       shard mutex -> out-of-lock latency/throughput accounting
//
// Sharding semantics: within a shard the policy is bit-for-bit the paper's
// (miDRR service flags couple all of the shard's interfaces).  Flows whose
// preference row spans shards are registered in each hosting shard and
// their packets are spread round-robin across those shards; coupling
// ACROSS shards is deliberately absent, trading global max-min optimality
// for linear scalability.  `shards = 1` (the default) preserves the
// paper's semantics exactly while still using W workers; `shards = W` is
// the fully sharded configuration the throughput bench sweeps.
//
// Locking order (strict): shard mutex is a leaf -- nothing else is
// acquired under it.  Control-plane writers take ControlPlane::mu_, then
// shard mutexes one at a time.  RCU read guards are never held across a
// shard mutex acquisition by producers (IngressPort routes, then pushes).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "flow/packet.hpp"
#include "runtime/control_plane.hpp"
#include "runtime/pacer.hpp"
#include "runtime/spsc_ring.hpp"
#include "sched/observer.hpp"
#include "sched/scheduler.hpp"
#include "sim/rate_profile.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/fairness_drift.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/metrics_observer.hpp"
#include "util/latency_histogram.hpp"
#include "util/logging.hpp"
#include "util/time.hpp"

namespace midrr::rt {

struct RuntimeOptions {
  Policy policy = Policy::kMiDrr;     ///< kOracle is not supported here
  SchedulerOptions sched{};           ///< observer must stay null
  std::size_t workers = 1;            ///< drain threads (>= 1)
  std::size_t shards = 1;             ///< scheduler instances (>= 1)
  std::size_t producers = 1;          ///< ingress rings per shard (>= 1)
  std::size_t ring_capacity = 4096;   ///< per ingress ring (rounded to 2^k)
  std::uint64_t burst_bytes = 64 * 1024;   ///< max bytes per dequeue_burst
  std::uint64_t pacer_depth_bytes = 0;     ///< 0 = auto from peak rate
  std::size_t max_flows = 4096;       ///< flow-id arena bound

  // --- Telemetry (all optional; zero hot-path cost when disabled) --------
  /// When non-null, the runtime registers its counters/gauges/histograms
  /// here at start() and installs a wait-free MetricsObserver per shard
  /// scheduler.  Must outlive the Runtime.
  telemetry::MetricsRegistry* metrics = nullptr;
  /// Per-shard TraceRecorder ring capacity for scheduler micro-events
  /// (grants, flag skips, sends); 0 disables event capture.  Requires
  /// `metrics` (the recorder chains behind the MetricsObserver).
  std::size_t trace_events = 0;
  /// Per-worker bound on recorded work spans (fan-in batches, drain
  /// bursts) for Chrome-trace export; 0 disables span capture.  Spans past
  /// the bound are dropped and counted, never reallocated.
  std::size_t trace_spans = 0;
};

/// Aggregated counters; a consistent-enough racy snapshot (every counter is
/// monotone, so deltas between two stats() calls are meaningful).
struct RuntimeStats {
  std::uint64_t offered = 0;        ///< packets accepted into ingress rings
  std::uint64_t ring_rejects = 0;   ///< offers refused (ring full / no route)
  std::uint64_t enqueued = 0;       ///< packets handed to shard schedulers
  std::uint64_t fanin_drops = 0;    ///< ingress packets for flows gone at fan-in
  std::uint64_t tail_drops = 0;     ///< scheduler queue-capacity drops
  std::uint64_t dequeued = 0;       ///< packets drained by workers
  std::uint64_t dequeued_bytes = 0;
  std::uint64_t bursts = 0;         ///< dequeue_burst calls that moved packets
  std::uint64_t parks = 0;          ///< times a worker went to sleep
  std::uint64_t latency_count = 0;  ///< samples behind the quantiles below
  double latency_mean_ns = 0;
  double latency_p50_ns = 0;
  double latency_p90_ns = 0;
  double latency_p99_ns = 0;
  double latency_p999_ns = 0;
};

class Runtime;

/// A producer's handle into the runtime: routes packets to shards via the
/// current RCU snapshot and pushes them into this producer's SPSC rings.
/// One port per producer index, used by exactly one thread at a time.
class IngressPort {
 public:
  /// Offers a packet for `flow` of `size_bytes`.  Stamps the enqueue
  /// timestamp, routes to a hosting shard (round-robin for multi-shard
  /// flows), pushes, and kicks the shard's home worker if it sleeps.
  /// Returns false -- without blocking -- when the flow has no hosting
  /// shard or the target ring is full (backpressure; the caller retries or
  /// drops).
  bool offer(FlowId flow, std::uint32_t size_bytes);

  /// Read access to the current configuration snapshot (for pick-a-flow
  /// loops); never hold the guard across blocking calls.
  Rcu<RuntimeSnapshot>::Reader::Guard snapshot();

  std::uint64_t offered() const { return offered_; }
  std::uint64_t rejected() const { return rejected_; }

 private:
  friend class Runtime;
  IngressPort(Runtime& rt, std::size_t producer,
              Rcu<RuntimeSnapshot>::Reader reader)
      : rt_(rt), producer_(producer), reader_(std::move(reader)) {}

  Runtime& rt_;
  std::size_t producer_;
  Rcu<RuntimeSnapshot>::Reader reader_;
  std::uint64_t offered_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t rr_ = 0;  ///< round-robin cursor for multi-shard flows
};

class Runtime final : public telemetry::FairnessSource, private ShardApplier {
 public:
  explicit Runtime(const RuntimeOptions& options);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // --- Topology (before start) ------------------------------------------

  /// Registers an interface paced by `capacity` (evaluated on the runtime
  /// clock).  Must be called before start().
  IfaceId add_interface(std::string name, RateProfile capacity);

  /// Registers an unpaced interface (drains as fast as the engine allows).
  IfaceId add_interface(std::string name);

  // --- Lifecycle ---------------------------------------------------------

  void start();
  void stop();  ///< idempotent; joins all workers
  bool running() const { return running_.load(std::memory_order_acquire); }

  // --- Control & data plane ---------------------------------------------

  /// Flow add/remove and (Pi, phi) updates; callable before or during a
  /// run, from any thread.
  ControlPlane& control();

  /// One per producer index in [0, options.producers); each port is used
  /// by one thread at a time.
  IngressPort port(std::size_t producer);

  /// Nanoseconds since start() on the runtime's steady clock.
  SimTime now_ns() const;

  // --- Introspection -----------------------------------------------------

  RuntimeStats stats() const;

  /// Bytes drained for `flow` across all shards and interfaces (the
  /// runtime-level S_i used by the fairness smoke test).
  std::uint64_t sent_bytes(FlowId flow) const;

  std::uint64_t iface_sent_bytes(IfaceId iface) const;
  std::uint64_t iface_sent_packets(IfaceId iface) const;

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t worker_count() const { return workers_.size(); }
  std::size_t iface_count() const { return ifaces_.size(); }

  // --- Telemetry ----------------------------------------------------------

  /// FairnessSource: the live (Pi, phi, C) + cumulative service state, read
  /// through an RCU guard.  Callable from any thread after start(); feeds
  /// telemetry::FairnessDriftSampler.
  telemetry::FairnessSample fairness_sample() override;

  /// Renders captured scheduler event streams (one process row per shard)
  /// and worker spans (one thread row per worker) into `builder`.  Only
  /// valid after stop() -- recorders and span buffers are written by worker
  /// threads while running.  No-op unless trace capture was enabled.
  void export_trace(telemetry::ChromeTraceBuilder& builder) const;

  /// The per-shard scheduler event recorder (nullptr unless
  /// options.trace_events > 0).  Read only after stop().
  const TraceRecorder* shard_recorder(std::size_t shard) const;

 private:
  friend class IngressPort;

  struct Shard {
    std::mutex mu;  // guards sched + id maps; leaf in the lock order
    std::unique_ptr<Scheduler> sched;
    std::vector<IfaceId> local_of_iface;  // by global IfaceId (pre-start)
    std::vector<FlowId> local_of_flow;    // by global FlowId (guarded by mu)
    std::vector<FlowId> global_of_flow;   // by local FlowId (guarded by mu)
    std::vector<std::unique_ptr<SpscRing<Packet>>> ingress;  // [producer]
    std::vector<IfaceId> ifaces;          // global ids hosted here (pre-start)
    std::uint32_t home_worker = 0;        // runs this shard's fan-in
    std::vector<std::uint32_t> kick_on_enqueue;  // workers owning our ifaces
    // Telemetry (optional; installed at construction, fire under mu).  The
    // observer's callbacks are single relaxed increments -- the one
    // observer shape allowed inside the shard locks.
    std::unique_ptr<TraceRecorder> recorder;  // chained behind observer
    std::unique_ptr<telemetry::MetricsObserver> observer;
  };

  struct IfaceRec {
    std::string name;
    std::uint32_t shard = 0;
    std::uint32_t worker = 0;
    IfaceId local_id = 0;
    TokenBucketPacer pacer;  // touched only by the owning worker thread
    std::atomic<std::uint64_t> packets{0};
    std::atomic<std::uint64_t> bytes{0};
  };

  struct Worker {
    std::uint32_t index = 0;
    std::thread thread;
    std::vector<IfaceId> ifaces;             // owned (global ids)
    std::vector<std::uint32_t> home_shards;  // shards whose fan-in we run
    LatencyHistogram latency;
    std::atomic<std::uint64_t> dequeued{0};
    std::atomic<std::uint64_t> dequeued_bytes{0};
    std::atomic<std::uint64_t> bursts{0};
    std::atomic<std::uint64_t> enqueued{0};
    std::atomic<std::uint64_t> fanin_drops{0};
    std::atomic<std::uint64_t> tail_drops{0};
    std::atomic<std::uint64_t> parks{0};
    // Telemetry (optional).  wait_hist doubles the latency accounting into
    // a scrapable Prometheus histogram; spans is a bounded, preallocated
    // buffer owned by the worker thread and read only after stop().
    telemetry::Histogram* wait_hist = nullptr;
    std::vector<telemetry::TraceSpan> spans;
    std::size_t span_cap = 0;
    std::atomic<std::uint64_t> spans_dropped{0};
    // Parking: kicked is the wakeup token, asleep gates the notify.
    std::mutex park_mu;
    std::condition_variable park_cv;
    std::atomic<bool> asleep{false};
    std::atomic<bool> kicked{false};
  };

  // ShardApplier (control plane -> data plane, takes shard locks).
  void shard_add_flow(std::uint32_t shard, FlowId flow, const RtFlowSpec& spec,
                      const std::vector<IfaceId>& willing_subset) override;
  void shard_remove_flow(std::uint32_t shard, FlowId flow) override;
  void shard_set_weight(std::uint32_t shard, FlowId flow,
                        double weight) override;
  void shard_set_willing(std::uint32_t shard, FlowId flow, IfaceId iface,
                         bool value) override;

  void worker_main(std::uint32_t w);
  bool drain_ingress(std::uint32_t shard_index, Worker& me,
                     std::vector<Packet>& scratch);
  bool drain_iface(IfaceId iface, Worker& me, std::vector<Packet>& burst);
  void register_metrics();  ///< start()-time, when options_.metrics is set
  void record_span(Worker& me, telemetry::TraceSpan span);
  void park(Worker& me, SimTime hint_ns);
  void kick(std::uint32_t worker);
  bool ingress_pending(const Worker& me) const;

  RuntimeOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<IfaceRec>> ifaces_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::atomic<std::uint64_t>> sent_by_flow_;  // [max_flows]
  std::atomic<std::uint64_t> offered_{0};
  std::atomic<std::uint64_t> ring_rejects_{0};
  // Rate limiters for hot-path warnings (at most one line per second each;
  // suppressed occurrences are reported on the next emitted line).
  LogRateLimiter ring_full_warn_{std::chrono::seconds(1)};
  LogRateLimiter straggler_warn_{std::chrono::seconds(1)};
  std::unique_ptr<ControlPlane> control_;  // built lazily at start()
  std::atomic<bool> running_{false};
  bool started_ = false;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace midrr::rt
