// Runtime: the sharded real-time (wall-clock) execution engine.
//
// The discrete-event simulator answers "is the policy fair?"; the runtime
// answers "does the implementation serve packets, concurrently, at rate?".
// It runs any library Scheduler behind real threads:
//
//   producers (P threads, external or LoadGenerator)
//       |  lock-free SPSC ingress rings, one per (shard, producer)
//       v
//   fan-in stage (run by each shard's home worker): batches ring contents
//       into the shard's scheduler under the shard mutex
//       v
//   shard schedulers (S instances of any midrr::Scheduler; interfaces are
//       partitioned round-robin across shards)
//       v
//   per-interface drain loops (W worker threads; each interface belongs to
//       exactly one worker): token-bucket pacer -> dequeue_burst under the
//       shard mutex -> out-of-lock latency/throughput accounting
//
// Sharding semantics: within a shard the policy is bit-for-bit the paper's
// (miDRR service flags couple all of the shard's interfaces).  Flows whose
// preference row spans shards are registered in each hosting shard and
// their packets are spread round-robin across those shards; coupling
// ACROSS shards is deliberately absent, trading global max-min optimality
// for linear scalability.  `shards = 1` (the default) preserves the
// paper's semantics exactly while still using W workers; `shards = W` is
// the fully sharded configuration the throughput bench sweeps.
//
// Locking order (strict): shard mutex is a leaf -- nothing else is
// acquired under it.  Control-plane writers take ControlPlane::mu_, then
// shard mutexes one at a time.  RCU read guards are never held across a
// shard mutex acquisition by producers (IngressPort routes, then pushes).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "fault/supervisor.hpp"
#include "flow/packet.hpp"
#include "io/egress.hpp"
#include "io/sim_backend.hpp"
#include "runtime/control_plane.hpp"
#include "runtime/pacer.hpp"
#include "runtime/spsc_ring.hpp"
#include "sched/observer.hpp"
#include "sched/scheduler.hpp"
#include "sim/rate_profile.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/fairness_drift.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/metrics_observer.hpp"
#include "telemetry/slo.hpp"
#include "telemetry/stage_latency.hpp"
#include "util/latency_histogram.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace midrr::rt {

struct RuntimeOptions {
  Policy policy = Policy::kMiDrr;     ///< kOracle is not supported here
  SchedulerOptions sched{};           ///< observer must stay null
  std::size_t workers = 1;            ///< drain threads (>= 1)
  std::size_t shards = 1;             ///< scheduler instances (>= 1)
  std::size_t producers = 1;          ///< ingress rings per shard (>= 1)
  std::size_t ring_capacity = 4096;   ///< per ingress ring (rounded to 2^k)
  /// Max packets pulled from ONE ingress ring per fan-in pass; bounds the
  /// shard-lock hold time of the fan-in stage (and sizes the batch handed
  /// to Scheduler::enqueue_batch).  Larger batches amortize the lock and
  /// the producer/worker wake handshake; the throughput bench sweeps this
  /// (1024 won on the reference host).  Must stay <= ring_capacity to be
  /// effective -- pulls are clamped by ring occupancy either way.
  std::size_t fanin_batch = 1024;
  std::uint64_t burst_bytes = 64 * 1024;   ///< max bytes per dequeue_burst
  std::uint64_t pacer_depth_bytes = 0;     ///< 0 = auto from peak rate
  std::size_t max_flows = 4096;       ///< flow-id arena bound

  // --- Telemetry (all optional; zero hot-path cost when disabled) --------
  /// When non-null, the runtime registers its counters/gauges/histograms
  /// here at start() and installs a wait-free MetricsObserver per shard
  /// scheduler.  Must outlive the Runtime.
  telemetry::MetricsRegistry* metrics = nullptr;
  /// Per-shard TraceRecorder ring capacity for scheduler micro-events
  /// (grants, flag skips, sends); 0 disables event capture.  Requires
  /// `metrics` (the recorder chains behind the MetricsObserver).
  std::size_t trace_events = 0;
  /// Per-worker bound on recorded work spans (fan-in batches, drain
  /// bursts) for Chrome-trace export; 0 disables span capture.  Spans past
  /// the bound are dropped and counted, never reallocated.
  std::size_t trace_spans = 0;
  /// Stage-latency attribution: trace every Nth packet of each flow (per
  /// producer) through ring/queue/egress stage histograms.  0 disables
  /// (the hot path then pays one null test per seam); 1 traces everything
  /// (tests).  See telemetry/stage_latency.hpp.
  std::uint32_t stage_sample_every = 0;
  /// In-flight stage-trace records per producer lane (bounds memory and
  /// the concurrent traced-packet population).
  std::uint32_t stage_slots_per_lane = 1024;
  /// Per-class SLO engine fed with every completed stage sample (class
  /// resolved through the control plane's lock-free directory).  Must
  /// outlive the Runtime; bind_class/register_metrics stay the caller's
  /// job.  Requires stage_sample_every > 0 to ever see a sample.
  telemetry::SloEngine* slo = nullptr;
  /// Flight recorder for post-mortem event timelines.  The runtime adds
  /// one writer per worker at start() and logs lifecycle/drop/pushback
  /// events; the caller must add ITS writers (supervisor, health) before
  /// start() and must not add any afterwards (the writer list is read
  /// lock-free by scrapes).  Must outlive the Runtime.
  telemetry::FlightRecorder* flight = nullptr;

  // --- Fault tolerance (all optional; one pointer test when disabled) ----
  /// Deterministic fault injector; attached to this runtime's topology at
  /// start().  Must outlive the Runtime.  When null (production), every
  /// fault seam compiles down to a single null test.
  fault::FaultInjector* fault = nullptr;
  /// Admission control at ingress: offers for a shard whose backlog is at
  /// or past this watermark are refused (offer() returns false, counted as
  /// backpressure_rejects).  0 disables.
  std::uint64_t backpressure_bytes = 0;
  /// Overload shedding at fan-in: while a shard's backlog is at or past
  /// this watermark, packets of flows holding at least their weighted fair
  /// share of it are dropped-with-count before enqueue.  Weight-aware by
  /// construction: light flows keep their share, heavy hoarders pay.
  /// 0 disables.  Set shed_bytes > backpressure_bytes to make shedding the
  /// second line of defense rather than the first.
  std::uint64_t shed_bytes = 0;

  // --- Egress (where a drained burst actually goes) ----------------------
  /// The I/O backend every paced dequeue_burst is handed to.  Null (the
  /// default) keeps an internal io::SimBackend -- the historical
  /// pacer-only sink, byte-for-byte identical to the pre-backend drain
  /// loop.  A real backend (io::UdpBackend) may push back: its unsent
  /// tail is parked per interface and retried before the next dequeue,
  /// so packets leave the scheduler exactly once and per-flow order
  /// survives (see io/egress.hpp for the full contract).  Must outlive
  /// the Runtime; attach() is called at start().
  io::EgressBackend* egress = nullptr;
};

/// Aggregated counters; a consistent-enough racy snapshot (every counter is
/// monotone except io_pending, so deltas between two stats() calls are
/// meaningful).
///
/// Conservation identity (asserted by the e2e tests at quiescence):
///   offered == dequeued + fanin_drops + tail_drops + shed_drops
///              + straggler_drops
/// and, now that drain is no longer terminal, the egress split
///   dequeued == sent + io_drops + io_pending + io_inflight
/// where io_pending is the parked-for-retry stash and io_inflight is the
/// completion-driven backend's accepted-but-unresolved population (both 0
/// once stop() has run its final flush; under SimBackend, sent == dequeued
/// always).
struct RuntimeStats {
  std::uint64_t offered = 0;        ///< packets accepted into ingress rings
  std::uint64_t ring_rejects = 0;   ///< offers refused (ring full / no route)
  std::uint64_t enqueued = 0;       ///< packets handed to shard schedulers
  std::uint64_t fanin_drops = 0;    ///< ingress packets for flows gone at fan-in
  std::uint64_t tail_drops = 0;     ///< scheduler queue-capacity drops
  /// Packets pulled out of shard schedulers by drain workers.  NOT
  /// terminal delivery: the burst is handed to the egress backend, which
  /// may send, park for retry, or drop each packet -- see `sent`,
  /// `io_pending`, `io_drops` and the identity above.
  std::uint64_t dequeued = 0;
  std::uint64_t dequeued_bytes = 0;
  std::uint64_t sent = 0;           ///< packets the egress backend delivered
  std::uint64_t sent_bytes = 0;     ///< scheduler bytes of sent packets
  /// Requeue events, in packets: every time the backend pushed a packet
  /// back (EAGAIN/ENOBUFS/partial sendmmsg) it counts here -- a packet
  /// parked three times counts three times (a pressure signal, not a
  /// population; the live stash is io_pending).
  std::uint64_t io_requeued = 0;
  std::uint64_t io_drops = 0;       ///< terminal backend drops (oversize,
                                    ///< hard errno, unflushable at stop)
  std::uint64_t io_pending = 0;     ///< packets parked awaiting retry (gauge)
  /// Packets inside a completion-driven backend (accepted into the kernel
  /// submission queue, completion not yet handed back); 0 for sim/udp and
  /// at quiescence (gauge).
  std::uint64_t io_inflight = 0;
  std::uint64_t io_send_errors = 0; ///< hard transmit syscall failures
  std::uint64_t io_syscalls = 0;    ///< transmit syscalls issued (0 for sim)
  std::uint64_t bursts = 0;         ///< dequeue_burst calls that moved packets
  std::uint64_t parks = 0;          ///< times a worker went to sleep
  std::uint64_t straggler_drops = 0;  ///< queued packets discarded when their
                                      ///< flow left a shard (counted loss)
  std::uint64_t shed_drops = 0;       ///< overload-shed packets (fan-in)
  std::uint64_t backpressure_rejects = 0;  ///< offers refused at watermark
  std::uint64_t quarantine_rejects = 0;    ///< offers for quarantined flows
  std::uint64_t worker_restarts = 0;       ///< watchdog-driven respawns
  std::uint64_t latency_count = 0;  ///< samples behind the quantiles below
  double latency_mean_ns = 0;
  double latency_p50_ns = 0;
  double latency_p90_ns = 0;
  double latency_p99_ns = 0;
  double latency_p999_ns = 0;
};

class Runtime;

/// A producer's handle into the runtime: routes packets to shards via the
/// current RCU snapshot and pushes them into this producer's SPSC rings.
/// One port per producer index, used by exactly one thread at a time.
///
/// Routing is cached per flow and keyed on the control plane's RCU epoch:
/// the common case (stable configuration) costs one epoch load and one
/// array index instead of a full RCU critical section per packet.  A
/// cached route can be stale for the instant between a snapshot swap and
/// its epoch bump; a packet misrouted in that window is dropped by the
/// fan-in straggler check exactly like a packet that was already sitting
/// in a ring when the flow was removed.  Flows spanning more than
/// kRouteFanout shards skip the cache and take the guard path.
class IngressPort {
 public:
  /// Offers a packet for `flow` of `size_bytes`.  Stamps the enqueue
  /// timestamp, routes to a hosting shard (round-robin for multi-shard
  /// flows), pushes, and kicks the shard's home worker if it sleeps.
  /// Returns false -- without blocking -- when the flow has no hosting
  /// shard or the target ring is full (backpressure; the caller retries or
  /// drops).
  bool offer(FlowId flow, std::uint32_t size_bytes) {
    return offer(flow, size_bytes, nullptr);
  }

  /// Same, with a wire frame attached (pooled or heap; see net::FramePool).
  /// The frame rides the Packet through the scheduler and is released --
  /// from whatever thread drains it -- when the last reference drops.
  bool offer(FlowId flow, std::uint32_t size_bytes,
             std::shared_ptr<const net::Frame> frame);

  /// Flushes this port's batched contribution to the runtime-wide
  /// offered/reject counters (RuntimeStats).  Ports batch those updates
  /// (one shared-line RMW per ~256 packets instead of per packet) and
  /// flush on destruction, so runtime-level counts are EXACT once the
  /// port is gone -- and at most one batch stale while it lives.  The
  /// port-local offered()/rejected() accessors are always exact.
  void flush_counters();

  ~IngressPort();  ///< force-flushes delayed packets, then counters
  IngressPort(IngressPort&& other) noexcept
      : rt_(other.rt_),
        producer_(other.producer_),
        reader_(std::move(other.reader_)),
        routes_(std::move(other.routes_)),
        offered_(other.offered_),
        rejected_(other.rejected_),
        pending_offered_(std::exchange(other.pending_offered_, 0)),
        pending_rejects_(std::exchange(other.pending_rejects_, 0)),
        rr_(other.rr_),
        ingress_rng_(other.ingress_rng_),
        delayed_(std::move(other.delayed_)) {
    other.delayed_.clear();  // moved-from must not re-flush them
  }
  IngressPort(const IngressPort&) = delete;
  IngressPort& operator=(const IngressPort&) = delete;
  IngressPort& operator=(IngressPort&&) = delete;

  /// Read access to the current configuration snapshot (for pick-a-flow
  /// loops); never hold the guard across blocking calls.
  Rcu<RuntimeSnapshot>::Reader::Guard snapshot();

  std::uint64_t offered() const { return offered_; }
  std::uint64_t rejected() const { return rejected_; }

 private:
  friend class Runtime;

  /// Routes cached inline per flow; beyond this fan-out the guard path runs
  /// every time (such flows are rare and already pay round-robin spreading).
  static constexpr std::size_t kRouteFanout = 4;

  struct CachedRoute {
    std::uint64_t epoch = 0;  ///< 0 = never filled (epochs start at 1)
    std::uint32_t shards[kRouteFanout] = {};
    std::uint8_t count = 0;          ///< 0 with epoch != 0 = cached no-route
    bool uncacheable = false;        ///< fan-out exceeds kRouteFanout
    bool quarantined = false;        ///< no-route because no live iface
  };

  /// A packet held back by an injected ingress delay; released (in offer
  /// order) once `release_at` passes, force-flushed at port destruction.
  struct Delayed {
    SimTime release_at = 0;
    std::uint32_t shard = 0;
    Packet packet;
  };

  IngressPort(Runtime& rt, std::size_t producer,
              Rcu<RuntimeSnapshot>::Reader reader, std::size_t max_flows);

  /// Pushes into `shard`'s ring with full offer accounting (counters,
  /// Dekker fence, wake).  The terminal step of every accepted offer.
  bool push_to_shard(std::uint32_t shard, Packet&& packet);

  /// Releases every held packet whose delay expired (all of them when
  /// `force`); ring-full releases become counted rejects.
  void flush_delayed(SimTime now, bool force);

  /// Slow path: refresh `routes_[flow]` from the snapshot under an RCU
  /// guard.  `epoch` must have been read BEFORE the guard was taken (a
  /// publish racing the refresh then tags the entry with the older epoch,
  /// which only causes one extra refresh).
  bool refresh_route(FlowId flow, std::uint64_t epoch);

  Runtime& rt_;
  std::size_t producer_;
  Rcu<RuntimeSnapshot>::Reader reader_;
  std::vector<CachedRoute> routes_;  ///< indexed by FlowId
  std::uint64_t offered_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t pending_offered_ = 0;  ///< not yet folded into rt_.offered_
  std::uint64_t pending_rejects_ = 0;
  std::uint64_t rr_ = 0;  ///< round-robin cursor for multi-shard flows
  /// Per-producer deterministic stream for injected ingress faults (forked
  /// from the plan seed at construction; unused when no injector is armed).
  Rng ingress_rng_{0};
  std::vector<Delayed> delayed_;  ///< injected-delay stash (usually empty)
};

class Runtime final : public telemetry::FairnessSource,
                      public fault::SupervisedRuntime,
                      private ShardApplier {
 public:
  explicit Runtime(const RuntimeOptions& options);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // --- Topology (before start) ------------------------------------------

  /// Registers an interface paced by `capacity` (evaluated on the runtime
  /// clock).  Must be called before start().
  IfaceId add_interface(std::string name, RateProfile capacity);

  /// Registers an unpaced interface (drains as fast as the engine allows).
  IfaceId add_interface(std::string name);

  // --- Lifecycle ---------------------------------------------------------

  void start();
  void stop();  ///< idempotent; joins all workers
  bool running() const { return running_.load(std::memory_order_acquire); }

  // --- Control & data plane ---------------------------------------------

  /// Flow add/remove and (Pi, phi) updates; callable before or during a
  /// run, from any thread.
  ControlPlane& control();

  /// One per producer index in [0, options.producers); each port is used
  /// by one thread at a time.
  IngressPort port(std::size_t producer);

  /// Nanoseconds since start() on the runtime's steady clock.
  SimTime now_ns() const override;

  // --- Introspection -----------------------------------------------------

  RuntimeStats stats() const;

  /// Bytes drained for `flow` across all shards and interfaces (the
  /// runtime-level S_i used by the fairness smoke test).
  std::uint64_t sent_bytes(FlowId flow) const;

  std::uint64_t iface_sent_bytes(IfaceId iface) const override;
  std::uint64_t iface_sent_packets(IfaceId iface) const;

  /// Hard transmit errors on `iface`, straight from the egress backend
  /// (0 for SimBackend, or before start()).  Feeds the Supervisor's
  /// send-error link-health verdicts.
  std::uint64_t iface_send_errors(IfaceId iface) const override;

  /// The active egress backend ("sim" unless RuntimeOptions::egress was
  /// set).  Valid after start().
  const io::EgressBackend& egress() const;

  std::size_t shard_count() const override { return shards_.size(); }
  std::size_t worker_count() const override { return workers_.size(); }
  std::size_t iface_count() const override { return ifaces_.size(); }

  /// The armed fault injector, or nullptr (production).  Producers (e.g.
  /// LoadGenerator) use it for the pool-exhaustion seam.
  fault::FaultInjector* fault() const { return options_.fault; }

  // --- SupervisedRuntime (fault::Supervisor's observe/actuate surface) ---
  // Everything here is callable from the supervisor thread concurrently
  // with the data path; construct the Supervisor AFTER start() (worker
  // slots exist only then).

  std::string iface_name(IfaceId iface) const override;
  /// Configured profile rate (bits/s) at `now`; deliberately NOT scaled by
  /// injected faults -- the supervisor must see what the link is SUPPOSED
  /// to do, and detect the rest from observables.  0 for unpaced.
  double iface_configured_bps(IfaceId iface, SimTime now) const override;
  double iface_tokens(IfaceId iface) const override;
  /// Backlog of the shard hosting `iface` (its drain feed).
  std::uint64_t iface_backlog_bytes(IfaceId iface) const override;
  std::uint64_t worker_heartbeat(std::uint32_t worker) const override;
  /// Forwards to ControlPlane::set_iface_down: one RCU re-steer of every
  /// flow willing on `iface` onto its surviving interfaces.
  void set_iface_down(IfaceId iface, bool down) override;
  /// Restarts worker `worker`'s drain loop IF its thread is provably
  /// parked at the fault injector's stall safe point (shard state is then
  /// guaranteed untouched mid-operation).  Returns false otherwise --
  /// including always when no injector is armed.  The superseded thread is
  /// joined at stop().
  bool restart_worker(std::uint32_t worker) override;
  /// Shard hosting `iface` (adaptive shedding aggregates drain capacity
  /// per shard, the unit the watermark actually guards).
  std::uint32_t iface_shard(IfaceId iface) const override;
  /// Cumulative end-to-end stage-latency bucket counts summed over
  /// interfaces; false when no tracer is armed.
  bool sample_e2e_buckets(std::vector<std::uint64_t>& out) const override;
  /// Live overload-shedding watermark.  Seeded from
  /// RuntimeOptions::shed_bytes; the adaptive controller retunes it while
  /// workers run (drain loops read it per fan-in pass, relaxed).
  std::uint64_t shed_bytes() const override {
    return shed_bytes_.load(std::memory_order_relaxed);
  }
  void set_shed_bytes(std::uint64_t bytes) override {
    shed_bytes_.store(bytes, std::memory_order_relaxed);
  }
  /// Substitutes the controller's re-lowered effective capacities into
  /// fairness_sample() -- one hook that feeds the max-min solver, the
  /// fairness-drift sampler, and the supervisor's Theorem-2 replay alike.
  /// Set before probing starts; the controller must outlive the runtime's
  /// last fairness_sample() call.
  void set_capacity_overlay(const fault::AdaptiveController* overlay) {
    capacity_overlay_.store(overlay, std::memory_order_release);
  }

  // --- Telemetry ----------------------------------------------------------

  /// FairnessSource: the live (Pi, phi, C) + cumulative service state, read
  /// through an RCU guard.  One row per live flow CLASS (weight = per-member
  /// phi, `members` = member count, sent_bytes summed over members via one
  /// directory pass), so the sampler's solver stays O(classes) at a million
  /// registered flows.  Callable from any thread after start(); feeds
  /// telemetry::FairnessDriftSampler.
  telemetry::FairnessSample fairness_sample() override;

  /// Renders captured scheduler event streams (one process row per shard)
  /// and worker spans (one thread row per worker) into `builder`.  Only
  /// valid after stop() -- recorders and span buffers are written by worker
  /// threads while running.  No-op unless trace capture was enabled.
  void export_trace(telemetry::ChromeTraceBuilder& builder) const;

  /// The per-shard scheduler event recorder (nullptr unless
  /// options.trace_events > 0).  Read only after stop().
  const TraceRecorder* shard_recorder(std::size_t shard) const;

  /// The stage-latency tracer (nullptr unless options.stage_sample_every
  /// > 0).  Valid after start(); counters and grids are readable from any
  /// thread while running.
  const telemetry::StageTracer* stage_tracer() const { return tracer_.get(); }

 private:
  friend class IngressPort;

  struct Shard {
    std::mutex mu;  // guards sched + id maps; leaf in the lock order
    std::unique_ptr<Scheduler> sched;
    std::vector<IfaceId> local_of_iface;  // by global IfaceId (pre-start)
    std::vector<FlowId> local_of_flow;    // by global FlowId (guarded by mu)
    std::vector<FlowId> global_of_flow;   // by local FlowId (guarded by mu)
    std::vector<std::unique_ptr<SpscRing<Packet>>> ingress;  // [producer]
    std::vector<IfaceId> ifaces;          // global ids hosted here (pre-start)
    std::uint32_t home_worker = 0;        // runs this shard's fan-in
    std::vector<std::uint32_t> kick_on_enqueue;  // workers owning our ifaces
    // Shed bookkeeping (guarded by mu): live weights by local flow id, and
    // their sum, so fan-in can price a flow's fair share of the backlog
    // without walking the scheduler.
    std::vector<double> weight_of_local;
    double weight_sum = 0.0;
    // Fan-in pass scratch (home worker only, under mu): bytes accepted
    // per local flow WITHIN the current pass.  The scheduler's per-flow
    // backlog only moves at enqueue_batch, after the verdict loop, so
    // without this a single pass would admit up to a whole fan-in batch
    // per flow once the backlog dipped under the watermark -- a sawtooth
    // whose amplitude (the batch, ~1 MB) swamps the watermark the
    // adaptive loop is steering.  Cleared at the end of every pass via
    // the touched list, so cost scales with flows seen, not max_flows.
    std::vector<std::uint64_t> pass_bytes_of_local;
    std::vector<FlowId> pass_touched;
    // Backlog & loss accounting (atomics: fan-in and drain run on
    // different workers, and ingress/supervision read them lock-free).
    alignas(kCacheLine) std::atomic<std::uint64_t> backlog_bytes{0};
    std::atomic<std::uint64_t> straggler_drops{0};  // removed-flow backlog
    // Telemetry (optional; installed at construction, fire under mu).  The
    // observer's callbacks are single relaxed increments -- the one
    // observer shape allowed inside the shard locks.
    std::unique_ptr<TraceRecorder> recorder;  // chained behind observer
    std::unique_ptr<telemetry::MetricsObserver> observer;
  };

  struct IfaceRec {
    std::string name;
    IfaceId id = 0;  ///< global id (the index into ifaces_), for attribution
    std::uint32_t shard = 0;
    std::uint32_t worker = 0;
    IfaceId local_id = 0;
    TokenBucketPacer pacer;  // touched only by the owning worker thread
    // Egress retry stash: packets the backend pushed back, already
    // dequeued and pacer-charged.  Owned by the interface's worker
    // thread (single-threaded again during stop()'s final flush); while
    // non-empty, drain_iface retries it INSTEAD of dequeuing, so
    // per-flow order survives and the stash is bounded by one burst.
    std::vector<Packet> pending;
    // Separate line: scrapers read these concurrently with the owning
    // worker's per-burst updates; without the split every scrape would
    // invalidate the pacer's line in the worker's cache.
    alignas(kCacheLine) std::atomic<std::uint64_t> packets{0};
    std::atomic<std::uint64_t> bytes{0};
    // Stash occupancy mirrors for stats()/telemetry (the vector itself is
    // worker-private).
    std::atomic<std::uint64_t> pending_packets{0};
    std::atomic<std::uint64_t> pending_bytes{0};
  };

  struct Worker {
    std::uint32_t index = 0;
    std::thread thread;
    std::vector<IfaceId> ifaces;             // owned (global ids)
    std::vector<std::uint32_t> home_shards;  // shards whose fan-in we run
    LatencyHistogram latency;
    // Hot counters: written per burst by the owning worker, read at scrape
    // rate elsewhere.  Their own line keeps scrapes (and neighbors in this
    // struct) from bouncing the worker's write line.
    alignas(kCacheLine) std::atomic<std::uint64_t> dequeued{0};
    std::atomic<std::uint64_t> dequeued_bytes{0};
    std::atomic<std::uint64_t> sent{0};
    std::atomic<std::uint64_t> sent_bytes{0};
    std::atomic<std::uint64_t> io_requeued{0};
    std::atomic<std::uint64_t> io_drops{0};
    std::atomic<std::uint64_t> bursts{0};
    std::atomic<std::uint64_t> enqueued{0};
    std::atomic<std::uint64_t> fanin_drops{0};
    std::atomic<std::uint64_t> tail_drops{0};
    std::atomic<std::uint64_t> shed_drops{0};
    std::atomic<std::uint64_t> parks{0};
    // Liveness: bumped once per loop iteration by the slot's CURRENT
    // thread (parked workers still tick every park slice); a frozen value
    // is the watchdog's stall signal.  `generation` names which spawned
    // thread owns the slot -- bumped under the injector's stall mutex by
    // begin_restart, so a superseded thread provably observes it before
    // touching any runtime state.
    std::atomic<std::uint64_t> heartbeat{0};
    std::atomic<std::uint64_t> generation{0};
    // Telemetry (optional).  wait_hist doubles the latency accounting into
    // a scrapable Prometheus histogram; spans is a bounded, preallocated
    // buffer owned by the worker thread and read only after stop().
    telemetry::Histogram* wait_hist = nullptr;
    /// Flight-recorder lane (null unless RuntimeOptions::flight).  Written
    /// by the slot's CURRENT thread only; a superseded thread logs nothing
    /// after observing kSuperseded, so the single-writer contract holds
    /// across watchdog restarts.
    telemetry::FlightLog* flight = nullptr;
    /// Per-packet verdict scratch for EgressBackend::send_burst (owned by
    /// the worker thread; reused across bursts, never shrunk).
    std::vector<io::SendDisposition> dispositions;
    /// Resolved-completion scratch for EgressBackend::poll_completions /
    /// reclaim_inflight (owned by the worker thread; reused, never shrunk).
    std::vector<io::EgressCompletion> completions;
    std::vector<telemetry::TraceSpan> spans;
    std::size_t span_cap = 0;
    std::atomic<std::uint64_t> spans_dropped{0};
    // Parking: kicked is the wakeup token, asleep gates the notify.
    // `asleep` gets its own line: every producer polls it once per offer
    // (the Dekker-style sleep check in IngressPort::offer), and sharing a
    // line with the counters above would turn each worker counter bump
    // into an invalidation of every producer's polled copy.
    std::mutex park_mu;
    std::condition_variable park_cv;
    alignas(kCacheLine) std::atomic<bool> asleep{false};
    std::atomic<bool> kicked{false};
  };

  // ShardApplier (control plane -> data plane, takes shard locks).
  void shard_add_flow(std::uint32_t shard, FlowId flow, const RtFlowSpec& spec,
                      const std::vector<IfaceId>& willing_subset) override;
  void shard_remove_flow(std::uint32_t shard, FlowId flow) override;
  void shard_set_weight(std::uint32_t shard, FlowId flow,
                        double weight) override;
  void shard_set_willing(std::uint32_t shard, FlowId flow, IfaceId iface,
                         bool value) override;

  void worker_main(std::uint32_t w, std::uint64_t my_generation);
  bool drain_ingress(std::uint32_t shard_index, Worker& me,
                     std::vector<Packet>& scratch);
  bool drain_iface(IfaceId iface, Worker& me, std::vector<Packet>& burst);
  /// Delivery-side accounting for ONE packet the backend reported sent:
  /// latency sample, per-flow and per-interface service counters.
  void account_sent(IfaceRec& rec, Worker& me, const Packet& packet,
                    SimTime sent_at);
  /// One retry attempt for `iface`'s parked tail; returns true when any
  /// packet left the stash (sent, terminally dropped, or accepted in
  /// flight by a completion-driven backend).
  bool send_pending(IfaceId iface, Worker& me);
  /// Harvests resolved completions from a completion-driven backend and
  /// accounts each (sent / dropped / parked in the stash).  Returns true
  /// when any completion was processed.  Owning worker only.
  bool reap_egress(IfaceId iface, Worker& me);
  /// Accounting for the completions staged in `me.completions` (the tail
  /// of reap_egress, shared with flush_egress's reclaim pass).
  void absorb_completions(IfaceId iface, Worker& me);
  /// Stage-trace completion for one delivered packet: fold the stage
  /// durations into `iface`'s histograms and feed the SLO engine.  No-op
  /// for untraced packets; call only when tracer_ is non-null.
  void complete_trace(const Packet& packet, IfaceId iface, SimTime sent_at);
  /// The traced packet died before delivery (injected drop, reject, shed,
  /// straggler, io drop): pure accounting.  Safe on untraced packets.
  void drop_trace(const Packet& packet) {
    if (tracer_ != nullptr && packet.trace != 0) {
      tracer_->drop_sample(packet.trace);
    }
  }
  /// stop()-time bounded retry of every stash; the remainder becomes
  /// counted io_drops (never silent loss).  Single-threaded.
  void flush_egress();
  void register_metrics();  ///< start()-time, when options_.metrics is set
  void record_span(Worker& me, telemetry::TraceSpan span);
  void park(Worker& me, SimTime hint_ns);
  void kick(std::uint32_t worker);
  /// Producer-side wakeup: only touches the worker's park machinery when
  /// its `asleep` flag reads true.  Callers must issue a seq_cst fence
  /// between publishing work (the ring push) and calling this -- it pairs
  /// with the fence in park() so either the producer sees `asleep` or the
  /// parking worker sees the pushed packet (Dekker).
  void kick_if_asleep(std::uint32_t worker);
  bool ingress_pending(const Worker& me) const;

  RuntimeOptions options_;
  /// Stage-latency tracer; created at start() when stage_sample_every > 0
  /// (one claim lane per producer).  Null = tracing off, every seam is a
  /// single null test.
  std::unique_ptr<telemetry::StageTracer> tracer_;
  /// The default pacer-only sink; egress_ points here unless options_
  /// supplied a backend.  Bound at start().
  io::SimBackend sim_backend_;
  io::EgressBackend* egress_ = nullptr;
  /// Cached egress_->completion_driven() (bound at start(): the drain loop
  /// polls completions at the top of every pass only when true).
  bool egress_completion_driven_ = false;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<IfaceRec>> ifaces_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::atomic<std::uint64_t>> sent_by_flow_;  // [max_flows]
  // Each global counter on its own line: every producer hits offered_ per
  // packet, and co-locating it with ring_rejects_ / running_ (read by all
  // workers per loop) would couple unrelated threads' write sets.
  alignas(kCacheLine) std::atomic<std::uint64_t> offered_{0};
  alignas(kCacheLine) std::atomic<std::uint64_t> ring_rejects_{0};
  alignas(kCacheLine) std::atomic<std::uint64_t> backpressure_rejects_{0};
  std::atomic<std::uint64_t> quarantine_rejects_{0};
  std::atomic<std::uint64_t> worker_restarts_{0};
  // Live shedding watermark (seeded from options, retuned by the adaptive
  // controller) and the capacity overlay for fairness_sample().
  std::atomic<std::uint64_t> shed_bytes_{0};
  std::atomic<const fault::AdaptiveController*> capacity_overlay_{nullptr};
  // Restart bookkeeping: serializes restart_worker against stop(), and
  // holds superseded threads until stop() can join them.
  std::mutex restart_mu_;
  std::vector<std::thread> retired_;  ///< guarded by restart_mu_
  // Rate limiters for hot-path warnings (at most one line per second each;
  // suppressed occurrences are reported on the next emitted line).
  LogRateLimiter ring_full_warn_{std::chrono::seconds(1)};
  LogRateLimiter straggler_warn_{std::chrono::seconds(1)};
  std::unique_ptr<ControlPlane> control_;  // built lazily at start()
  std::atomic<bool> running_{false};
  bool started_ = false;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace midrr::rt
