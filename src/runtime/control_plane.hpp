// ControlPlane: the runtime's slow path, redesigned around FLOW CLASSES.
//
// Flows sharing one preference row Pi, one weight phi, and one queue bound
// are interned into a class (flow/class_table.hpp); the published
// configuration (RuntimeSnapshot) describes CLASSES, not flows, so its size
// -- and therefore the cost of every publish -- is O(classes x interfaces)
// no matter how many flows are registered.  Per-flow state shrinks to one
// lock-free directory word mapping FlowId -> ClassId; producers resolve a
// packet's route as flow -> class -> hosting shards.
//
// Mutations are CLASS DELTAS (ControlDelta): add members to a class, remove
// a member, move a member between classes, reweight a whole class.  Each
// delta applies its shard-side changes and then publishes ONE new snapshot;
// registering a million same-class flows via add_members(spec, 1'000'000)
// costs one publish.  The flow-level veneer (add_flow / remove_flow /
// set_weight / set_willing) is expressed in those deltas, so existing
// callers keep working while paying class-level publish costs.
//
// The paper's Section 4 requires that preference dynamics never disturb
// in-flight scheduling; here that translates to: producers and workers
// read a consistent class snapshot without blocking, and an update becomes
// visible as one atomic pointer swap -- a reader sees either the whole old
// configuration or the whole new one, never a torn mix.
//
// The control plane does not touch schedulers directly; it drives a
// ShardApplier (implemented by Runtime) so the registry/diff logic is unit
// testable without threads.  Shards keep PER-FLOW state (each member has
// its own queue there), so shard calls stay flow-grained.  Update ordering:
//   * member/coverage growth: apply to shards FIRST, then publish, then
//     point the directory at the class -- a producer can only route a
//     packet once the shard knows the flow AND the snapshot knows the
//     class.
//   * member/coverage shrink: clear the directory, publish, THEN drop the
//     flow from shards -- producers stop offering before a shard forgets
//     the flow; packets already sitting in ingress rings for a forgotten
//     flow are dropped by the fan-in stage (counted, never fatal).
// Writers are serialized by an internal mutex; readers never block.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "flow/class_table.hpp"
#include "flow/ids.hpp"
#include "runtime/rcu.hpp"

namespace midrr::rt {

/// Class identity + registration options for the runtime, with GLOBAL
/// interface ids (the runtime translates to per-shard scheduler ids).
/// Flows registered with equal (weight, willing, queue_capacity_bytes)
/// land in the same class; `name` labels the class (first writer wins) and
/// is not part of its identity.
struct ClassSpec {
  double weight = 1.0;
  std::vector<IfaceId> willing{};  ///< global interface ids
  std::string name{};
  std::uint64_t queue_capacity_bytes = 512 * 1024;  ///< per member per shard; 0 = unbounded
};

/// Flow-level registration is the same record: a flow is a one-member use
/// of its class.  Kept as an alias so shard-side code (which is per-flow)
/// and veneer callers share the type.
using RtFlowSpec = ClassSpec;

/// One class's entry in the published configuration.
struct SnapshotClass {
  ClassId id = kInvalidClass;
  bool live = false;  ///< has at least one member
  /// Live with a non-empty Pi row but no LIVE willing interface: members
  /// keep their preferences and ids, producers' offers are rejected and
  /// counted (never silently dropped), and the next revive re-steers the
  /// whole class back onto the data plane.
  bool quarantined = false;
  double weight = 1.0;              ///< per member
  std::uint64_t members = 0;
  std::vector<IfaceId> willing{};       ///< global iface ids, ascending
  std::vector<std::uint32_t> shards{};  ///< shards hosting the class, ascending
  std::string name{};
  std::uint64_t queue_capacity_bytes = 512 * 1024;
};

/// An immutable configuration snapshot.  Built by the control plane,
/// published via RCU, read lock-free by producers and workers.  O(classes),
/// never O(flows): flow membership lives in the control plane's directory
/// (ControlPlane::class_of), not here.
struct RuntimeSnapshot {
  std::uint64_t version = 0;
  std::vector<SnapshotClass> classes{};  ///< indexed by ClassId (slots)
  std::vector<ClassId> live{};           ///< live class ids, ascending
  std::size_t iface_count = 0;
  /// Administratively-dead interfaces (supervisor verdicts); empty means
  /// all up.  Indexed by global interface id when non-empty.
  std::vector<bool> iface_down{};

  const SnapshotClass* cls(ClassId id) const {
    return id < classes.size() && classes[id].live ? &classes[id] : nullptr;
  }
};

/// One mutation of the class configuration, reified.  apply() is the
/// single entry point scripts/tools drive the control plane through; the
/// named methods below are the same deltas with direct signatures.
struct ControlDelta {
  enum class Kind {
    kAddMembers,     ///< register `count` flows under `spec`'s class
    kRemoveMember,   ///< deregister flow `flow`
    kMoveMember,     ///< re-register flow `flow` under `spec`'s class
    kReweightClass,  ///< set class `cls`'s per-member weight to `weight`
  };
  Kind kind = Kind::kAddMembers;
  ClassSpec spec{};            ///< kAddMembers / kMoveMember: target class
  std::size_t count = 1;       ///< kAddMembers: number of flows to mint
  FlowId flow = kInvalidFlow;  ///< kRemoveMember / kMoveMember
  ClassId cls = kInvalidClass; ///< kReweightClass
  double weight = 1.0;         ///< kReweightClass
};

/// What the control plane needs from the data plane: apply one mutation to
/// one shard's scheduler (under that shard's lock).  Implemented by
/// Runtime; mocked in tests.
class ShardApplier {
 public:
  virtual ~ShardApplier() = default;

  /// Registers `flow` in `shard` with the subset of `willing` hosted there.
  virtual void shard_add_flow(std::uint32_t shard, FlowId flow,
                              const RtFlowSpec& spec,
                              const std::vector<IfaceId>& willing_subset) = 0;
  virtual void shard_remove_flow(std::uint32_t shard, FlowId flow) = 0;
  virtual void shard_set_weight(std::uint32_t shard, FlowId flow,
                                double weight) = 0;
  virtual void shard_set_willing(std::uint32_t shard, FlowId flow,
                                 IfaceId iface, bool value) = 0;
};

class ControlPlane {
 public:
  /// `shard_of_iface[j]` maps global interface j to its shard.
  ControlPlane(ShardApplier& applier, std::vector<std::uint32_t> shard_of_iface,
               std::size_t max_flows);

  // --- Class deltas (any thread; serialized internally) -------------------

  /// Registers `count` flows as members of the class identified by `spec`
  /// (interned on first sight, revived if it had emptied).  Returns the
  /// first of `count` consecutive dense flow ids; ids are never reused
  /// (same contract as Preferences).  ONE publish regardless of `count`.
  FlowId add_members(const ClassSpec& spec, std::size_t count = 1);

  /// Deregisters one member; its queued packets in shards are discarded
  /// (counted as straggler drops at fan-in).  The class retires when its
  /// last member leaves and revives under the same id on a matching
  /// add_members.
  void remove_member(FlowId flow);

  /// Re-registers an existing member under `spec`'s class, preserving the
  /// flow id.  Shard coverage is diffed: queues survive on shards common
  /// to both classes; departed shards discard, new shards start empty.
  void move_member(FlowId flow, const ClassSpec& spec);

  /// Changes a whole class's per-member weight in one delta: every member
  /// moves to the class identified by the reweighted key (minted fresh, or
  /// MERGED into an existing class when the key collides).  Returns the
  /// members' new class id.  Shard queues survive (same Pi row, same
  /// hosting shards).
  ClassId reweight_class(ClassId cls, double weight);

  /// Applies one reified delta; returns the first minted flow id for
  /// kAddMembers, kInvalidFlow otherwise.
  FlowId apply(const ControlDelta& delta);

  // --- Flow-level veneer (the pre-class API, expressed as deltas) ---------

  /// Registers one flow (one-member delta).  Returns its global id.
  FlowId add_flow(const RtFlowSpec& spec) { return add_members(spec, 1); }

  void remove_flow(FlowId flow) { remove_member(flow); }

  /// phi update for ONE flow: moves it into the class with the new weight.
  void set_weight(FlowId flow, double weight);

  /// Pi update for ONE flow: moves it into the class with the edited row.
  void set_willing(FlowId flow, IfaceId iface, bool value);

  /// Marks a global interface administratively dead (or revives it) and
  /// re-steers every affected CLASS in ONE publish: hosting shards are
  /// recomputed over live willing interfaces only, newly-covered shards
  /// are registered (per member) before the publish, shards left without
  /// any live willing interface are dropped after it (their queued packets
  /// become counted straggler drops), and classes whose entire Pi row is
  /// dead are quarantined -- preferences kept, offers rejected upstream --
  /// until a revive re-steers them back.  Pi itself is never edited: the
  /// supervisor masks reality, the user still owns preferences (Section
  /// 4's contract).
  void set_iface_down(IfaceId iface, bool down);

  bool iface_down(IfaceId iface) const;

  /// Number of currently-quarantined live flows, i.e. summed members of
  /// quarantined classes (telemetry gauge; O(classes)).
  std::size_t quarantined_count() const;

  // --- Read side ---------------------------------------------------------

  /// The class a flow currently belongs to; kInvalidClass if the flow is
  /// not registered.  Lock-free (one acquire load of the directory word);
  /// safe from any thread, any rate.
  ClassId class_of(FlowId flow) const {
    if (flow >= max_flows_) return kInvalidClass;
    const std::uint32_t v = dir_[flow].load(std::memory_order_acquire);
    return v == 0 ? kInvalidClass : static_cast<ClassId>(v - 1);
  }

  /// Number of registered flows (lock-free gauge).
  std::size_t flow_count() const {
    return live_flows_.load(std::memory_order_relaxed);
  }

  /// Live flow ids, ascending.  O(max_flows) directory scan -- control
  /// path and epoch-change refreshes only, never per packet.
  std::vector<FlowId> live_flows() const;

  /// Members of one class, ascending.  O(max_flows) scan (control path).
  std::vector<FlowId> members_of(ClassId cls) const;

  /// Claims a reader slot for the calling thread (hold one per thread,
  /// reuse it for every read).
  Rcu<RuntimeSnapshot>::Reader reader() { return Rcu<RuntimeSnapshot>::Reader(cell_); }

  std::uint64_t version() const;

  /// The RCU publication epoch (bumped once per publish).  One uncontended
  /// acquire load -- cheap enough to read per packet.  Producers key their
  /// per-flow route caches on this: a cached route tagged with the current
  /// epoch is as fresh as a snapshot read, up to the instant between the
  /// pointer swap and the epoch bump, where a reader can transiently act on
  /// the previous configuration -- indistinguishable from a packet that was
  /// already in flight, and absorbed by the same straggler-drop path.
  std::uint64_t epoch() const { return cell_.epoch(); }

  std::size_t max_flows() const { return max_flows_; }
  std::size_t iface_count() const { return shard_of_iface_.size(); }

  /// Classes with at least one member (telemetry gauge).
  std::size_t class_count() const;

  /// RCU epoch distance to the slowest in-flight reader (telemetry gauge).
  std::uint64_t max_reader_lag() const { return cell_.max_reader_lag(); }

 private:
  std::unique_ptr<RuntimeSnapshot> clone_locked() const;
  void publish_locked(std::unique_ptr<RuntimeSnapshot> next);
  std::vector<std::uint32_t> shards_of(const std::vector<IfaceId>& willing) const;
  std::vector<IfaceId> willing_in_shard(const std::vector<IfaceId>& willing,
                                        std::uint32_t shard) const;
  std::vector<IfaceId> live_subset_locked(
      const std::vector<IfaceId>& willing) const;
  static RtFlowSpec spec_of(const SnapshotClass& entry);

  /// Interns `spec`'s class in latest_, (re)initializing its snapshot
  /// entry if it is not currently live, and recomputing hosting shards.
  /// Does not change member count and does not publish.
  ClassId intern_locked(const ClassSpec& spec);

  /// Bookkeeping after a membership change: live-list membership and
  /// quarantine state of one class.
  void refresh_liveness_locked(ClassId cls);

  /// Directory write, paired with the live-flow gauge.
  void dir_store(FlowId flow, ClassId cls);
  void dir_clear(FlowId flow);

  ShardApplier& applier_;
  std::vector<std::uint32_t> shard_of_iface_;
  std::size_t max_flows_;
  std::vector<bool> down_;  // guarded by mu_; empty until first set_iface_down

  mutable std::mutex mu_;      // serializes writers; guards latest_ + table_
  RuntimeSnapshot latest_;     // writer's working copy (source of truth)
  ClassTable table_;           // ClassKey -> ClassId interning (global ids)
  FlowId next_flow_ = 0;
  // flow -> class + 1; 0 = not registered.  Lock-free readers; writers
  // under mu_.  Sized max_flows once, so readers never race a reallocation.
  std::unique_ptr<std::atomic<std::uint32_t>[]> dir_;
  std::atomic<std::size_t> live_flows_{0};
  Rcu<RuntimeSnapshot> cell_;
};

}  // namespace midrr::rt
