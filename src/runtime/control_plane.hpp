// ControlPlane: the runtime's slow path.  Flow add/remove and (Pi, phi)
// preference edits are applied to the shard schedulers under their locks,
// then published to the lock-free fast path as a new immutable
// RuntimeSnapshot via an epoch-RCU cell (runtime/rcu.hpp).
//
// The paper's Section 4 requires that preference dynamics never disturb
// in-flight scheduling; here that translates to: producers and workers
// read a consistent (Pi, phi) snapshot without blocking, and an update
// becomes visible as one atomic pointer swap -- a reader sees either the
// whole old configuration or the whole new one, never a torn mix (the
// snapshot-swap test pins exactly this).
//
// The control plane does not touch schedulers directly; it drives a
// ShardApplier (implemented by Runtime) so the registry/diff logic is unit
// testable without threads.  Update ordering:
//   * add_flow / willingness growth: apply to shards FIRST, then publish --
//     a producer can only route a packet to a shard after the shard knows
//     the flow.
//   * remove_flow / willingness shrink: publish FIRST, then apply --
//     producers stop offering before the shard forgets the flow; packets
//     already sitting in ingress rings for a forgotten flow are dropped by
//     the fan-in stage (counted, never fatal).
// Writers are serialized by an internal mutex; readers never block.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "flow/ids.hpp"
#include "runtime/rcu.hpp"

namespace midrr::rt {

/// Flow registration for the runtime: like sched::FlowSpec but with GLOBAL
/// interface ids (the runtime translates to per-shard scheduler ids).
struct RtFlowSpec {
  double weight = 1.0;
  std::vector<IfaceId> willing{};  ///< global interface ids
  std::string name{};
  std::uint64_t queue_capacity_bytes = 512 * 1024;  ///< per shard; 0 = unbounded
};

/// One flow's entry in the published configuration.
struct SnapshotFlow {
  FlowId id = kInvalidFlow;
  bool live = false;
  /// Live with a non-empty Pi row but no LIVE willing interface: the flow
  /// keeps its preferences and id, producers' offers are rejected and
  /// counted (never silently dropped), and the next revive re-steers it
  /// back onto the data plane.
  bool quarantined = false;
  double weight = 1.0;
  std::vector<IfaceId> willing{};        ///< global iface ids, ascending
  std::vector<std::uint32_t> shards{};   ///< shards hosting this flow, ascending
  std::string name{};
  std::uint64_t queue_capacity_bytes = 512 * 1024;
};

/// An immutable configuration snapshot.  Built by the control plane,
/// published via RCU, read lock-free by producers and workers.
struct RuntimeSnapshot {
  std::uint64_t version = 0;
  std::vector<SnapshotFlow> flows{};  ///< indexed by FlowId (slots, not live count)
  std::vector<FlowId> live{};         ///< live flow ids, ascending
  std::size_t iface_count = 0;
  /// Administratively-dead interfaces (supervisor verdicts); empty means
  /// all up.  Indexed by global interface id when non-empty.
  std::vector<bool> iface_down{};

  const SnapshotFlow* flow(FlowId id) const {
    return id < flows.size() && flows[id].live ? &flows[id] : nullptr;
  }
};

/// What the control plane needs from the data plane: apply one mutation to
/// one shard's scheduler (under that shard's lock).  Implemented by
/// Runtime; mocked in tests.
class ShardApplier {
 public:
  virtual ~ShardApplier() = default;

  /// Registers `flow` in `shard` with the subset of `willing` hosted there.
  virtual void shard_add_flow(std::uint32_t shard, FlowId flow,
                              const RtFlowSpec& spec,
                              const std::vector<IfaceId>& willing_subset) = 0;
  virtual void shard_remove_flow(std::uint32_t shard, FlowId flow) = 0;
  virtual void shard_set_weight(std::uint32_t shard, FlowId flow,
                                double weight) = 0;
  virtual void shard_set_willing(std::uint32_t shard, FlowId flow,
                                 IfaceId iface, bool value) = 0;
};

class ControlPlane {
 public:
  /// `shard_of_iface[j]` maps global interface j to its shard.
  ControlPlane(ShardApplier& applier, std::vector<std::uint32_t> shard_of_iface,
               std::size_t max_flows);

  // --- Mutations (any thread; serialized internally) ---------------------

  /// Registers a flow; returns its global id.  Ids are dense and never
  /// reused (same contract as Preferences).
  FlowId add_flow(const RtFlowSpec& spec);

  void remove_flow(FlowId flow);

  /// phi update: applied to every hosting shard, published atomically.
  void set_weight(FlowId flow, double weight);

  /// Pi update: may grow or shrink the flow's shard coverage; the control
  /// plane computes the diff and adds/removes the flow from shards as
  /// needed (packets queued in a departed shard are discarded, mirroring
  /// remove_flow semantics there).
  void set_willing(FlowId flow, IfaceId iface, bool value);

  /// Marks a global interface administratively dead (or revives it) and
  /// re-steers every affected flow in ONE publish: hosting shards are
  /// recomputed over live willing interfaces only, newly-covered shards are
  /// registered before the publish, shards left without any live willing
  /// interface are dropped after it (their queued packets become counted
  /// straggler drops), and flows whose entire Pi row is dead are
  /// quarantined -- preferences kept, offers rejected upstream -- until a
  /// revive re-steers them back.  Pi itself is never edited: the supervisor
  /// masks reality, the user still owns preferences (Section 4's contract).
  void set_iface_down(IfaceId iface, bool down);

  bool iface_down(IfaceId iface) const;

  /// Number of currently-quarantined live flows (telemetry gauge).
  std::size_t quarantined_count() const;

  // --- Read side ---------------------------------------------------------

  /// Claims a reader slot for the calling thread (hold one per thread,
  /// reuse it for every read).
  Rcu<RuntimeSnapshot>::Reader reader() { return Rcu<RuntimeSnapshot>::Reader(cell_); }

  std::uint64_t version() const;

  /// The RCU publication epoch (bumped once per publish).  One uncontended
  /// acquire load -- cheap enough to read per packet.  Producers key their
  /// per-flow route caches on this: a cached route tagged with the current
  /// epoch is as fresh as a snapshot read, up to the instant between the
  /// pointer swap and the epoch bump, where a reader can transiently act on
  /// the previous configuration -- indistinguishable from a packet that was
  /// already in flight, and absorbed by the same straggler-drop path.
  std::uint64_t epoch() const { return cell_.epoch(); }

  std::size_t max_flows() const { return max_flows_; }
  std::size_t iface_count() const { return shard_of_iface_.size(); }

  /// RCU epoch distance to the slowest in-flight reader (telemetry gauge).
  std::uint64_t max_reader_lag() const { return cell_.max_reader_lag(); }

 private:
  std::unique_ptr<RuntimeSnapshot> clone_locked() const;
  void publish_locked(std::unique_ptr<RuntimeSnapshot> next);
  std::vector<std::uint32_t> shards_of(const std::vector<IfaceId>& willing) const;
  std::vector<IfaceId> willing_in_shard(const std::vector<IfaceId>& willing,
                                        std::uint32_t shard) const;
  std::vector<IfaceId> live_subset_locked(
      const std::vector<IfaceId>& willing) const;
  static RtFlowSpec spec_of(const SnapshotFlow& entry);

  ShardApplier& applier_;
  std::vector<std::uint32_t> shard_of_iface_;
  std::size_t max_flows_;
  std::vector<bool> down_;  // guarded by mu_; empty until first set_iface_down

  mutable std::mutex mu_;      // serializes writers; guards latest_
  RuntimeSnapshot latest_;     // writer's working copy (source of truth)
  FlowId next_flow_ = 0;
  Rcu<RuntimeSnapshot> cell_;
};

}  // namespace midrr::rt
