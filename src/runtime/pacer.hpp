// Token-bucket pacer: converts an interface's (time-varying) capacity into
// per-drain byte budgets for the runtime's worker loops.
//
// The capacity is a sim::RateProfile evaluated against the runtime clock
// (nanoseconds since Runtime::start), so the same step/square-wave/
// Gilbert-Elliott profiles the discrete-event simulator uses drive the
// real-time engine -- a fading WiFi link is one constructor argument away.
//
// Tokens accumulate by exact piecewise integration of the profile between
// refills, capped at `depth_bytes` (the burst the link may send after an
// idle period).  consume() may push the balance negative when a packet
// overshoots the granted budget (a transmit opportunity is never wasted on
// a partial fit -- same contract as Scheduler::dequeue_burst); the deficit
// is paid back before new budget is granted, so long-run throughput tracks
// the profile exactly.
//
// Thread-safety: none.  Each pacer belongs to exactly one interface, and
// each interface to exactly one worker thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "sim/rate_profile.hpp"
#include "util/time.hpp"

namespace midrr::rt {

class TokenBucketPacer {
 public:
  /// Unlimited pacer: budget_bytes() always grants `depth_bytes`.
  /// (Benchmarks use this to measure the engine, not the emulated link.)
  explicit TokenBucketPacer(std::uint64_t depth_bytes = 256 * 1024);

  /// Paced by `profile` (bits per second over runtime-nanoseconds), with a
  /// bucket depth of `depth_bytes`.
  TokenBucketPacer(RateProfile profile, std::uint64_t depth_bytes);

  // Movable despite the atomic mirror (pacers are configured before the
  // worker threads exist; moves never race with the data path).
  TokenBucketPacer(TokenBucketPacer&& other) noexcept
      : profile_(std::move(other.profile_)),
        depth_(other.depth_),
        tokens_(other.tokens_),
        scale_(other.scale_),
        last_ns_(other.last_ns_) {
    publish_tokens();
  }
  TokenBucketPacer& operator=(TokenBucketPacer&& other) noexcept {
    profile_ = std::move(other.profile_);
    depth_ = other.depth_;
    tokens_ = other.tokens_;
    scale_ = other.scale_;
    last_ns_ = other.last_ns_;
    publish_tokens();
    return *this;
  }

  bool unlimited() const { return !profile_.has_value(); }

  /// Refills from the profile up to `now_ns` and returns the whole bytes
  /// available to send right now (0 while paying back an overshoot or while
  /// the link is down).
  std::uint64_t budget_bytes(SimTime now_ns);

  /// Spends `bytes` of budget; may overshoot what budget_bytes granted.
  /// Debt is clamped to one bucket depth: a single pathological overshoot
  /// (or a clock anomaly that starved the refill) can never mute the link
  /// for longer than one full bucket of payback.
  void consume(std::uint64_t bytes);

  /// Multiplies every grant -- profile integration and unlimited budgets --
  /// by `scale` in [0, 1] from `now_ns` on.  0 kills the link, values in
  /// between collapse its capacity, 1 restores it.  The fault layer and
  /// supervisor drive this; the profile itself stays immutable.  Refills up
  /// to `now_ns` first so the change does not re-price already-elapsed
  /// time.  Same thread contract as the rest of the class: owning worker
  /// only.
  void set_rate_scale(double scale, SimTime now_ns);
  double rate_scale() const { return scale_; }

  /// Hint: nanoseconds until roughly `bytes` of budget accumulate (0 if
  /// already available).  Workers use it to bound their idle sleep; it is
  /// an estimate based on the instantaneous rate, not a promise.
  SimTime ns_until_bytes(std::uint64_t bytes, SimTime now_ns);

  double tokens() const { return tokens_; }  ///< test introspection

  /// Racy mirror of tokens() readable from ANY thread (telemetry scrapes;
  /// the owning worker publishes after each refill/consume).  Negative
  /// values are pacer debt: an overshoot still being paid back.
  double tokens_approx() const {
    return published_tokens_.load(std::memory_order_relaxed);
  }

  /// The capacity profile (nullptr when unlimited); immutable after
  /// construction, so safe to read concurrently with the owning worker.
  const RateProfile* profile() const {
    return profile_.has_value() ? &*profile_ : nullptr;
  }

 private:
  void refill(SimTime now_ns);
  void publish_tokens() {
    published_tokens_.store(tokens_, std::memory_order_relaxed);
  }

  std::optional<RateProfile> profile_;
  double depth_;
  double tokens_;
  double scale_ = 1.0;
  std::atomic<double> published_tokens_{0.0};
  SimTime last_ns_ = 0;
};

}  // namespace midrr::rt
