#include "core/scenario.hpp"

#include <algorithm>

#include "sched/oracle.hpp"
#include "util/assert.hpp"

namespace midrr {

Scenario& Scenario::interface(std::string name, RateProfile profile) {
  ifaces_.push_back(InterfaceSpec{std::move(name), std::move(profile),
                                  std::nullopt, std::nullopt});
  return *this;
}

Scenario& Scenario::interface_with_outage(std::string name,
                                          RateProfile profile,
                                          SimTime down_from,
                                          SimTime down_until) {
  MIDRR_REQUIRE(down_from < down_until, "outage interval is empty");
  ifaces_.push_back(InterfaceSpec{std::move(name), std::move(profile),
                                  down_from, down_until});
  return *this;
}

Scenario& Scenario::flow(ScenarioFlowSpec spec) {
  MIDRR_REQUIRE(spec.make_source != nullptr, "flow needs a source factory");
  MIDRR_REQUIRE(spec.weight > 0.0, "flow weight must be positive");
  flows_.push_back(std::move(spec));
  return *this;
}

Scenario& Scenario::backlogged_flow(std::string name, double weight,
                                    std::vector<std::string> ifaces,
                                    std::uint64_t total_bytes,
                                    std::uint32_t packet_size, SimTime start) {
  ScenarioFlowSpec spec;
  spec.name = std::move(name);
  spec.weight = weight;
  spec.ifaces = std::move(ifaces);
  spec.start = start;
  spec.make_source = [total_bytes, packet_size] {
    return std::make_unique<BackloggedSource>(
        SizeDistribution::fixed(packet_size), total_bytes);
  };
  return flow(std::move(spec));
}

const FlowResult& ScenarioResult::flow_named(const std::string& name) const {
  for (const auto& f : flows) {
    if (f.name == name) return f;
  }
  MIDRR_REQUIRE(false, "no flow named " + name);
  return flows.front();  // unreachable
}

struct ScenarioRunner::FlowRuntime {
  FlowId id = kInvalidFlow;
  std::unique_ptr<TrafficSource> source;
  RateMeter meter;
  TimeSeries rate_series;
  EmpiricalCdf delay_ns;
  std::optional<SimTime> completed_at;
  bool started = false;

  FlowRuntime(SimDuration bin, std::size_t window, std::string name)
      : meter(bin, window), rate_series(std::move(name)) {}
};

ScenarioRunner::ScenarioRunner(const Scenario& scenario, Policy policy,
                               RunnerOptions options)
    : scenario_(scenario),
      options_(options),
      rng_(options.seed) {
  MIDRR_REQUIRE(!scenario.interfaces().empty(), "scenario has no interfaces");

  if (policy == Policy::kOracle) {
    // Give the global-knowledge strawman what it demands: the live
    // capacity of every interface (zero while administratively down).
    scheduler_ = std::make_unique<OracleMaxMinScheduler>(
        [this](IfaceId iface) -> double {
          for (const auto& link : links_) {
            if (link->iface() == iface) {
              return link->enabled() ? link->profile().rate_at(sim_.now())
                                     : 0.0;
            }
          }
          return 0.0;
        });
  } else {
    scheduler_ =
        make_scheduler(policy, SchedulerOptions{.quantum_base =
                                                    options.quantum_base});
  }

  // Interfaces first so flow willingness rows can reference them.
  for (const InterfaceSpec& spec : scenario.interfaces()) {
    const IfaceId id = scheduler_->add_interface(spec.name);
    auto provider = [this](IfaceId j, SimTime now) -> std::optional<Packet> {
      auto p = scheduler_->dequeue(j, now);
      if (p) {
        // Refill backlogged sources as soon as a packet leaves the queue.
        refill_source(p->flow, p->size_bytes);
      }
      return p;
    };
    auto departure = [this](IfaceId j, const Packet& packet, SimTime at) {
      on_departure(j, packet, at);
    };
    links_.push_back(std::make_unique<LinkTransmitter>(
        sim_, id, spec.profile, std::move(provider), std::move(departure)));
    if (options_.burst_opportunity > 0) {
      // Batched draining: pull whole transmit opportunities through
      // dequeue_burst, refilling backlogged sources after each chunk so a
      // deep burst does not starve against a shallow source window.
      links_.back()->set_burst(
          [this](IfaceId j, std::uint64_t budget, SimTime now,
                 std::vector<Packet>& out) -> std::size_t {
            std::size_t total = 0;
            std::uint64_t bytes = 0;
            while (bytes < budget) {
              const std::size_t first = out.size();
              if (scheduler_->dequeue_burst(j, budget - bytes, now, out) ==
                  0) {
                break;
              }
              for (std::size_t k = first; k < out.size(); ++k) {
                bytes += out[k].size_bytes;
                refill_source(out[k].flow, out[k].size_bytes);
              }
              total += out.size() - first;
            }
            return total;
          },
          options_.burst_opportunity);
    }
    if (options_.link_jitter > 0.0) {
      links_.back()->set_jitter(options_.link_jitter,
                                options_.seed * 1000003 + id);
    }
    if (spec.down_from.has_value()) {
      LinkTransmitter* link = links_.back().get();
      sim_.schedule_at(*spec.down_from, [link] { link->set_enabled(false); });
      sim_.schedule_at(*spec.down_until, [link] { link->set_enabled(true); });
    }
  }

  for (const ScenarioFlowSpec& spec : scenario.flows()) {
    flows_.push_back(std::make_unique<FlowRuntime>(
        options_.sample_interval, options_.rate_window_bins, spec.name));
  }
  window_bytes_.assign(scenario.flows().size(),
                       std::vector<std::uint64_t>(links_.size(), 0));
}

ScenarioRunner::~ScenarioRunner() = default;

void ScenarioRunner::start_flow(std::size_t index) {
  const ScenarioFlowSpec& spec = scenario_.flows()[index];
  FlowRuntime& rt = *flows_[index];
  MIDRR_ASSERT(!rt.started, "flow started twice");

  std::vector<IfaceId> willing;
  for (const std::string& name : spec.ifaces) {
    bool found = false;
    for (const auto& link : links_) {
      if (scheduler_->preferences().iface_name(link->iface()) == name) {
        willing.push_back(link->iface());
        found = true;
        break;
      }
    }
    MIDRR_REQUIRE(found, "flow references unknown interface " + name);
  }

  rt.id = scheduler_->add_flow(
      FlowSpec{.weight = spec.weight,
               .willing = std::move(willing),
               .name = spec.name,
               .queue_capacity_bytes = options_.queue_capacity_bytes});
  if (index_by_flow_id_.size() <= rt.id) {
    index_by_flow_id_.resize(static_cast<std::size_t>(rt.id) + 1,
                             flows_.size());
  }
  index_by_flow_id_[rt.id] = index;
  rt.source = spec.make_source();
  rt.started = true;

  for (const std::uint32_t size : rt.source->on_start(rng_)) {
    enqueue_for(index, size);
  }
  pump_arrivals(index);
}

void ScenarioRunner::enqueue_for(std::size_t index, std::uint32_t size) {
  FlowRuntime& rt = *flows_[index];
  Packet p(rt.id, size);
  const EnqueueResult result = scheduler_->enqueue(std::move(p), sim_.now());
  if (result.became_backlogged) kick_transmitters(rt.id);
}

std::size_t ScenarioRunner::index_of(FlowId flow) const {
  return flow < index_by_flow_id_.size() ? index_by_flow_id_[flow]
                                         : flows_.size();
}

void ScenarioRunner::refill_source(FlowId flow, std::uint32_t dequeued_bytes) {
  const std::size_t idx = index_of(flow);
  MIDRR_ASSERT(idx < flows_.size(), "dequeue for unknown flow");
  for (const std::uint32_t size :
       flows_[idx]->source->on_dequeue(dequeued_bytes, rng_)) {
    enqueue_for(idx, size);
  }
}

void ScenarioRunner::pump_arrivals(std::size_t index) {
  FlowRuntime& rt = *flows_[index];
  const auto emission = rt.source->next_arrival(rng_);
  if (!emission) return;
  const std::uint32_t size = emission->size_bytes;
  sim_.schedule_in(emission->gap, [this, index, size] {
    enqueue_for(index, size);
    pump_arrivals(index);
  });
}

void ScenarioRunner::kick_transmitters(FlowId flow) {
  for (const auto& link : links_) {
    if (scheduler_->preferences().willing(flow, link->iface())) {
      link->notify_backlog();
    }
  }
}

void ScenarioRunner::on_departure(IfaceId iface, const Packet& packet,
                                  SimTime at) {
  const std::size_t idx = index_of(packet.flow);
  MIDRR_ASSERT(idx < flows_.size(), "departure for unknown flow");
  FlowRuntime& rt = *flows_[idx];
  rt.meter.record(at, packet.size_bytes);
  rt.delay_ns.add(static_cast<double>(at - packet.enqueued_at));
  window_bytes_[idx][iface] += packet.size_bytes;
  if (!rt.completed_at && rt.source->exhausted() &&
      scheduler_->backlog_bytes(rt.id) == 0) {
    rt.completed_at = at;
  }
}

void ScenarioRunner::sample_rates() {
  for (auto& flow : flows_) {
    if (!flow->started) continue;
    flow->rate_series.add(sim_.now(),
                          to_mbps(flow->meter.rate_bps(sim_.now())));
  }
}

fair::MaxMinInput ScenarioRunner::current_input() const {
  fair::MaxMinInput input;
  for (const auto& link : links_) {
    input.capacities_bps.push_back(
        link->enabled() ? link->profile().rate_at(sim_.now()) : 0.0);
  }
  for (const auto& flow : flows_) {
    if (!flow->started) {
      input.weights.push_back(1.0);
      input.willing.emplace_back(links_.size(), false);
      continue;
    }
    input.weights.push_back(
        scheduler_->preferences().weight(flow->id));
    std::vector<bool> row;
    for (const auto& link : links_) {
      row.push_back(
          scheduler_->preferences().willing(flow->id, link->iface()));
    }
    input.willing.push_back(std::move(row));
  }
  return input;
}

void ScenarioRunner::snapshot_clusters() {
  const double window_seconds = to_seconds(options_.cluster_interval);
  std::vector<std::vector<double>> alloc(
      flows_.size(), std::vector<double>(links_.size(), 0.0));
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    for (std::size_t j = 0; j < links_.size(); ++j) {
      alloc[i][j] =
          static_cast<double>(window_bytes_[i][j]) * 8.0 / window_seconds;
      window_bytes_[i][j] = 0;
    }
  }
  ClusterSnapshot snap;
  snap.at = sim_.now();
  snap.analysis = fair::analyze_clusters(current_input(), alloc);
  std::vector<std::string> flow_names;
  for (const ScenarioFlowSpec& spec : scenario_.flows()) {
    flow_names.push_back(spec.name);
  }
  std::vector<std::string> iface_names;
  for (const InterfaceSpec& spec : scenario_.interfaces()) {
    iface_names.push_back(spec.name);
  }
  snap.rendering = fair::format_clusters(snap.analysis, flow_names, iface_names);
  cluster_log_.push_back(std::move(snap));
}

ScenarioResult ScenarioRunner::run(SimTime until) {
  // run() is incremental: the first call arms flow starts and the periodic
  // samplers; later calls simply extend the horizon (tests use this to
  // snapshot state mid-run).
  MIDRR_REQUIRE(until >= sim_.now(), "run() horizon is in the past");
  horizon_ = until;

  if (!armed_) {
    armed_ = true;
    for (std::size_t idx = 0; idx < scenario_.flows().size(); ++idx) {
      const SimTime start = scenario_.flows()[idx].start;
      sim_.schedule_at(start, [this, idx] {
        start_flow(idx);
      });
    }

    // Periodic sampling; self-rescheduling events.  The samplers reschedule
    // unconditionally; run_until() simply leaves future ticks pending.
    auto sampler = std::make_shared<std::function<void()>>();
    *sampler = [this, sampler] {
      sample_rates();
      sim_.schedule_in(options_.sample_interval, *sampler);
    };
    sim_.schedule_in(options_.sample_interval, *sampler);

    if (options_.cluster_interval > 0) {
      auto cluster_sampler = std::make_shared<std::function<void()>>();
      *cluster_sampler = [this, cluster_sampler] {
        snapshot_clusters();
        sim_.schedule_in(options_.cluster_interval, *cluster_sampler);
      };
      sim_.schedule_in(options_.cluster_interval, *cluster_sampler);
    }
  }

  sim_.run_until(until);
  const SimTime duration = sim_.now();

  ScenarioResult result;
  result.policy = scheduler_->policy_name();
  result.duration = duration;
  for (std::size_t idx = 0; idx < flows_.size(); ++idx) {
    const FlowRuntime& rt = *flows_[idx];
    FlowResult fr;
    fr.name = scenario_.flows()[idx].name;
    fr.id = rt.id;
    fr.weight = scenario_.flows()[idx].weight;
    fr.rate_mbps = rt.rate_series;
    fr.completed_at = rt.completed_at;
    fr.delay_ns = rt.delay_ns;
    if (rt.started) {
      fr.bytes_sent = scheduler_->sent_bytes(rt.id);
      fr.dropped_packets = scheduler_->queue_stats(rt.id).dropped_packets;
      fr.dropped_bytes = scheduler_->queue_stats(rt.id).dropped_bytes;
      for (const auto& link : links_) {
        fr.bytes_per_iface.push_back(
            scheduler_->sent_bytes(rt.id, link->iface()));
      }
    }
    result.flows.push_back(std::move(fr));
  }
  for (const auto& link : links_) {
    InterfaceResult ir;
    ir.id = link->iface();
    ir.name = scheduler_->preferences().iface_name(link->iface());
    ir.bytes_sent = link->bytes_sent();
    ir.busy_time = link->busy_time();
    result.ifaces.push_back(std::move(ir));
  }
  result.clusters = cluster_log_;
  return result;
}

}  // namespace midrr
