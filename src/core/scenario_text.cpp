#include "core/scenario_text.hpp"

#include <algorithm>
#include <cctype>
#include <istream>
#include <map>
#include <sstream>
#include <vector>

namespace midrr {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw ScenarioParseError("scenario line " + std::to_string(line) + ": " +
                           message);
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string part;
  while (std::getline(in, part, sep)) out.push_back(trim(part));
  return out;
}

double parse_number(const std::string& text, const char* what) {
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(text, &pos);
  } catch (const std::exception&) {
    throw ScenarioParseError(std::string("bad ") + what + ": '" + text + "'");
  }
  if (pos != text.size()) {
    throw ScenarioParseError(std::string("bad ") + what + ": '" + text + "'");
  }
  return v;
}

}  // namespace

double parse_rate_bps(const std::string& raw) {
  const std::string text = lower(trim(raw));
  struct Unit {
    const char* suffix;
    double factor;
  };
  static constexpr Unit units[] = {
      {"gbps", 1e9}, {"mbps", 1e6}, {"kbps", 1e3}, {"bps", 1.0}};
  for (const Unit& u : units) {
    const std::string suffix = u.suffix;
    if (text.size() > suffix.size() &&
        text.compare(text.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      return parse_number(text.substr(0, text.size() - suffix.size()),
                          "rate") *
             u.factor;
    }
  }
  return parse_number(text, "rate");
}

SimDuration parse_duration_ns(const std::string& raw) {
  const std::string text = lower(trim(raw));
  struct Unit {
    const char* suffix;
    double factor;  // to nanoseconds
  };
  static constexpr Unit units[] = {{"ms", 1e6},
                                   {"us", 1e3},
                                   {"ns", 1.0},
                                   {"s", 1e9},
                                   {"m", 60e9},
                                   {"h", 3600e9}};
  for (const Unit& u : units) {
    const std::string suffix = u.suffix;
    if (text.size() > suffix.size() &&
        text.compare(text.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      const std::string number = text.substr(0, text.size() - suffix.size());
      // Guard against "ms" being matched as the "s" of "...m" etc. by the
      // ordering above (longest suffixes first).
      return static_cast<SimDuration>(parse_number(number, "duration") *
                                      u.factor);
    }
  }
  return static_cast<SimDuration>(parse_number(text, "duration"));
}

std::uint64_t parse_bytes(const std::string& raw) {
  const std::string text = lower(trim(raw));
  struct Unit {
    const char* suffix;
    double factor;
  };
  static constexpr Unit units[] = {
      {"gb", 1e9}, {"mb", 1e6}, {"kb", 1e3}, {"b", 1.0}};
  for (const Unit& u : units) {
    const std::string suffix = u.suffix;
    if (text.size() > suffix.size() &&
        text.compare(text.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      return static_cast<std::uint64_t>(
          parse_number(text.substr(0, text.size() - suffix.size()), "size") *
          u.factor);
    }
  }
  return static_cast<std::uint64_t>(parse_number(text, "size"));
}

Policy parse_policy(const std::string& raw) {
  const std::string text = lower(trim(raw));
  if (text == "midrr") return Policy::kMiDrr;
  if (text == "hmidrr" || text == "hier-midrr") return Policy::kHierMiDrr;
  if (text == "naive-drr" || text == "drr") return Policy::kNaiveDrr;
  if (text == "wfq" || text == "per-iface-wfq") return Policy::kPerIfaceWfq;
  if (text == "rr" || text == "round-robin") return Policy::kRoundRobin;
  if (text == "fifo") return Policy::kFifo;
  if (text == "priority" || text == "strict-priority") {
    return Policy::kStrictPriority;
  }
  if (text == "oracle") return Policy::kOracle;
  throw ScenarioParseError("unknown policy '" + raw + "'");
}

namespace {

RateProfile parse_rate_profile(const std::string& value, std::size_t line) {
  // Either a single rate, or "t0:rate0, t1:rate1, ..." steps.
  if (value.find(':') == std::string::npos) {
    return RateProfile(parse_rate_bps(value));
  }
  std::vector<std::pair<SimTime, double>> steps;
  for (const std::string& part : split(value, ',')) {
    const auto colon = part.find(':');
    if (colon == std::string::npos) fail(line, "bad rate step '" + part + "'");
    steps.emplace_back(parse_duration_ns(part.substr(0, colon)),
                       parse_rate_bps(part.substr(colon + 1)));
  }
  try {
    return RateProfile::steps(std::move(steps));
  } catch (const std::exception& e) {
    fail(line, std::string("bad rate profile: ") + e.what());
  }
}

SizeDistribution parse_packet_spec(const std::string& value,
                                   std::size_t line) {
  const std::string text = lower(trim(value));
  if (text.rfind("uniform:", 0) == 0) {
    const auto range = split(text.substr(8), '-');
    if (range.size() != 2) fail(line, "bad uniform packet spec");
    return SizeDistribution::uniform(
        static_cast<std::uint32_t>(parse_bytes(range[0])),
        static_cast<std::uint32_t>(parse_bytes(range[1])));
  }
  if (text.rfind("bimodal:", 0) == 0) {
    // bimodal:SMALL-LARGE:P
    const auto parts = split(text.substr(8), ':');
    if (parts.size() != 2) fail(line, "bad bimodal packet spec");
    const auto sizes = split(parts[0], '-');
    if (sizes.size() != 2) fail(line, "bad bimodal packet sizes");
    return SizeDistribution::bimodal(
        static_cast<std::uint32_t>(parse_bytes(sizes[0])),
        static_cast<std::uint32_t>(parse_bytes(sizes[1])),
        parse_number(parts[1], "probability"));
  }
  return SizeDistribution::fixed(
      static_cast<std::uint32_t>(parse_bytes(text)));
}

SourceFactory parse_source_spec(const std::string& value,
                                const SizeDistribution& sizes,
                                std::size_t line) {
  const auto parts = split(lower(trim(value)), ':');
  const std::string& kind = parts[0];
  if (kind == "backlogged") {
    std::uint64_t volume = 0;
    if (parts.size() >= 2) volume = parse_bytes(parts[1]);
    if (parts.size() > 2) fail(line, "bad backlogged source spec");
    return [sizes, volume] {
      return std::make_unique<BackloggedSource>(sizes, volume);
    };
  }
  if (kind == "cbr") {
    if (parts.size() < 2 || parts.size() > 3) fail(line, "bad cbr spec");
    const double rate = parse_rate_bps(parts[1]);
    const std::uint64_t volume =
        parts.size() == 3 ? parse_bytes(parts[2]) : 0;
    // CBR uses a fixed packet; take the distribution's max as its size.
    const std::uint32_t packet = sizes.max_size();
    return [rate, packet, volume] {
      return std::make_unique<CbrSource>(rate, packet, volume);
    };
  }
  if (kind == "poisson") {
    if (parts.size() < 2 || parts.size() > 3) fail(line, "bad poisson spec");
    const double rate = parse_rate_bps(parts[1]);
    const std::uint64_t volume =
        parts.size() == 3 ? parse_bytes(parts[2]) : 0;
    return [rate, sizes, volume] {
      return std::make_unique<PoissonSource>(rate, sizes, volume);
    };
  }
  if (kind == "onoff") {
    if (parts.size() != 4) fail(line, "bad onoff spec (rate:on:off)");
    const double rate = parse_rate_bps(parts[1]);
    const double on = to_seconds(parse_duration_ns(parts[2]));
    const double off = to_seconds(parse_duration_ns(parts[3]));
    const std::uint32_t packet = sizes.max_size();
    return [rate, packet, on, off] {
      return std::make_unique<OnOffSource>(rate, packet, on, off);
    };
  }
  fail(line, "unknown source kind '" + kind + "'");
}

struct Section {
  std::string kind;  // "interface" | "flow" | "run"
  std::string name;
  std::size_t line = 0;
  std::map<std::string, std::pair<std::string, std::size_t>> entries;
};

}  // namespace

ParsedScenario parse_scenario(std::istream& in) {
  std::vector<Section> sections;
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    std::string text = trim(hash == std::string::npos ? raw
                                                      : raw.substr(0, hash));
    if (text.empty()) continue;
    if (text.front() == '[') {
      if (text.back() != ']') fail(line_no, "unterminated section header");
      const auto inner = trim(text.substr(1, text.size() - 2));
      const auto space = inner.find(' ');
      Section section;
      section.kind = lower(space == std::string::npos
                               ? inner
                               : inner.substr(0, space));
      section.name =
          space == std::string::npos ? "" : trim(inner.substr(space + 1));
      section.line = line_no;
      if (section.kind != "interface" && section.kind != "flow" &&
          section.kind != "run") {
        fail(line_no, "unknown section '" + section.kind + "'");
      }
      if (section.kind != "run" && section.name.empty()) {
        fail(line_no, section.kind + " section needs a name");
      }
      sections.push_back(std::move(section));
      continue;
    }
    const auto eq = text.find('=');
    if (eq == std::string::npos) fail(line_no, "expected 'key = value'");
    if (sections.empty()) fail(line_no, "entry before any section");
    const std::string key = lower(trim(text.substr(0, eq)));
    const std::string value = trim(text.substr(eq + 1));
    auto& entries = sections.back().entries;
    if (entries.count(key) > 0) fail(line_no, "duplicate key '" + key + "'");
    entries[key] = {value, line_no};
  }

  ParsedScenario out;
  bool any_interface = false;

  const auto take = [](Section& s, const std::string& key)
      -> std::optional<std::pair<std::string, std::size_t>> {
    auto it = s.entries.find(key);
    if (it == s.entries.end()) return std::nullopt;
    auto value = it->second;
    s.entries.erase(it);
    return value;
  };
  const auto reject_leftovers = [](const Section& s) {
    if (!s.entries.empty()) {
      fail(s.entries.begin()->second.second,
           "unknown key '" + s.entries.begin()->first + "' in [" + s.kind +
               (s.name.empty() ? "" : " " + s.name) + "]");
    }
  };

  for (Section& section : sections) {
    if (section.kind == "interface") {
      any_interface = true;
      const auto rate = take(section, "rate");
      if (!rate) fail(section.line, "interface needs a rate");
      RateProfile profile = parse_rate_profile(rate->first, rate->second);
      if (const auto down = take(section, "down")) {
        const auto parts = split(down->first, '.');
        // "30s..50s" splits into {"30s", "", "50s"}.
        if (parts.size() != 3 || !parts[1].empty()) {
          fail(down->second, "bad outage 'FROM..UNTIL'");
        }
        out.scenario.interface_with_outage(section.name, std::move(profile),
                                           parse_duration_ns(parts[0]),
                                           parse_duration_ns(parts[2]));
      } else {
        out.scenario.interface(section.name, std::move(profile));
      }
      reject_leftovers(section);
    } else if (section.kind == "flow") {
      ScenarioFlowSpec spec;
      spec.name = section.name;
      if (const auto weight = take(section, "weight")) {
        spec.weight = parse_number(weight->first, "weight");
      }
      const auto ifaces = take(section, "ifaces");
      if (!ifaces) fail(section.line, "flow needs an ifaces list");
      spec.ifaces = split(ifaces->first, ',');
      if (const auto start = take(section, "start")) {
        spec.start = parse_duration_ns(start->first);
      }
      SizeDistribution sizes = SizeDistribution::fixed(1500);
      if (const auto packet = take(section, "packet")) {
        sizes = parse_packet_spec(packet->first, packet->second);
      }
      const auto source = take(section, "source");
      spec.make_source = parse_source_spec(
          source ? source->first : "backlogged", sizes,
          source ? source->second : section.line);
      reject_leftovers(section);
      out.scenario.flow(std::move(spec));
    } else {  // run
      if (const auto policy = take(section, "policy")) {
        out.run.policy = parse_policy(policy->first);
      }
      if (const auto duration = take(section, "duration")) {
        out.run.duration = parse_duration_ns(duration->first);
      }
      if (const auto quantum = take(section, "quantum")) {
        out.run.options.quantum_base =
            static_cast<std::uint32_t>(parse_bytes(quantum->first));
      }
      if (const auto clusters = take(section, "clusters")) {
        out.run.options.cluster_interval = parse_duration_ns(clusters->first);
      }
      if (const auto seed = take(section, "seed")) {
        out.run.options.seed = static_cast<std::uint64_t>(
            parse_number(seed->first, "seed"));
      }
      if (const auto jitter = take(section, "jitter")) {
        out.run.options.link_jitter =
            parse_number(jitter->first, "jitter");
        if (out.run.options.link_jitter < 0.0 ||
            out.run.options.link_jitter >= 1.0) {
          fail(jitter->second, "jitter must be in [0, 1)");
        }
      }
      reject_leftovers(section);
    }
  }

  if (!any_interface) {
    throw ScenarioParseError("scenario declares no interfaces");
  }
  return out;
}

ParsedScenario parse_scenario_text(const std::string& text) {
  std::istringstream in(text);
  return parse_scenario(in);
}

}  // namespace midrr
