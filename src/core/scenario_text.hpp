// Text format for scheduling scenarios, so experiments can be described in
// files and run with tools/midrr_sim instead of writing C++.
//
//   # phone.scn -- comments start with '#'
//   [interface wifi]
//   rate = 10mbps                  # constant, or a step list:
//   # rate = 0:10mbps, 20s:0, 45s:20mbps
//   down = 30s..50s                # optional administrative outage
//
//   [flow netflix]
//   weight = 2
//   ifaces = wifi, lte
//   source = backlogged            # backlogged[:VOLUME] | cbr:RATE |
//                                  # poisson:RATE | onoff:RATE:ON:OFF
//   packet = 1500                  # bytes (fixed) or "uniform:100-1500"
//   start  = 5s
//
//   [run]
//   policy   = midrr               # midrr|naive-drr|wfq|rr|fifo|priority|oracle
//   duration = 60s
//   quantum  = 1500
//   clusters = 5s                  # cluster snapshot interval (0 = off)
//   jitter   = 0.05                # link service-time jitter fraction
//   seed     = 1
//
// Units: rates "10mbps"/"500kbps"/"2gbps"/plain bits-per-second; durations
// "90s"/"250ms"/"2m"; sizes "64KB"/"100MB"/plain bytes.
#pragma once

#include <iosfwd>
#include <string>

#include "core/scenario.hpp"

namespace midrr {

struct RunConfig {
  Policy policy = Policy::kMiDrr;
  SimTime duration = 60 * kSecond;
  RunnerOptions options;
};

struct ParsedScenario {
  Scenario scenario;
  RunConfig run;
};

/// Thrown on malformed scenario text, with a line number in the message.
class ScenarioParseError : public std::runtime_error {
 public:
  explicit ScenarioParseError(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

/// Parses a scenario description; throws ScenarioParseError on bad input.
ParsedScenario parse_scenario(std::istream& in);
ParsedScenario parse_scenario_text(const std::string& text);

// --- unit parsing helpers (exposed for reuse and tests) -------------------

/// "10mbps" -> 1e7; "500kbps" -> 5e5; "2gbps" -> 2e9; "1234" -> 1234 bps.
double parse_rate_bps(const std::string& text);
/// "90s" -> 90e9 ns; "250ms"; "2m" (minutes); "1234" -> ns.
SimDuration parse_duration_ns(const std::string& text);
/// "64KB" -> 65536... no: decimal: 64000; "100MB" -> 1e8; "1500" -> 1500.
std::uint64_t parse_bytes(const std::string& text);
/// "midrr" / "naive-drr" / "wfq" / "rr" / "fifo" / "priority" / "oracle".
Policy parse_policy(const std::string& text);

}  // namespace midrr
