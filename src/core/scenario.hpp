// Scenario: declarative description of a multi-interface scheduling
// experiment, and ScenarioRunner: the harness that executes it on the
// discrete-event simulator under any scheduling policy.
//
// This is the top of the library for simulation studies: every evaluation
// figure (Fig 1, 6, 8, 10-ish) is "build a Scenario, run it under a Policy,
// read the per-flow rate time series / cluster snapshots".
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fairness/clusters.hpp"
#include "flow/source.hpp"
#include "sched/scheduler.hpp"
#include "sim/link.hpp"
#include "sim/rate_profile.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace midrr {

// SourceFactory (flow/source.hpp): each run needs fresh source state.

struct InterfaceSpec {
  std::string name;
  RateProfile profile;
  /// Optional failure injection: the interface is administratively down
  /// during [down_from, down_until).
  std::optional<SimTime> down_from;
  std::optional<SimTime> down_until;
};

/// Declarative description of one flow in a scenario.  (Distinct from
/// midrr::FlowSpec, the scheduler-level registration record: this one names
/// interfaces by string, carries a start time and a traffic source.)
struct ScenarioFlowSpec {
  std::string name;
  double weight = 1.0;
  std::vector<std::string> ifaces;  ///< names of willing interfaces
  SimTime start = 0;                ///< when the flow appears
  SourceFactory make_source;
};

class Scenario {
 public:
  /// Adds an interface with a (possibly time-varying) capacity profile.
  Scenario& interface(std::string name, RateProfile profile);

  /// Adds an interface that goes down during [from, until).
  Scenario& interface_with_outage(std::string name, RateProfile profile,
                                  SimTime down_from, SimTime down_until);

  /// Adds a flow.
  Scenario& flow(ScenarioFlowSpec spec);

  /// Convenience: a backlogged flow (optionally volume-bounded) with fixed
  /// `packet_size`-byte packets.
  Scenario& backlogged_flow(std::string name, double weight,
                            std::vector<std::string> ifaces,
                            std::uint64_t total_bytes = 0,
                            std::uint32_t packet_size = 1500,
                            SimTime start = 0);

  const std::vector<InterfaceSpec>& interfaces() const { return ifaces_; }
  const std::vector<ScenarioFlowSpec>& flows() const { return flows_; }

 private:
  std::vector<InterfaceSpec> ifaces_;
  std::vector<ScenarioFlowSpec> flows_;
};

struct ClusterSnapshot {
  SimTime at = 0;
  fair::ClusterAnalysis analysis;
  std::string rendering;  ///< human-readable "{a | if1} @3Mb/s ..." line
};

struct FlowResult {
  std::string name;
  FlowId id = kInvalidFlow;
  double weight = 1.0;
  TimeSeries rate_mbps{""};            ///< sampled smoothed rate over time
  std::uint64_t bytes_sent = 0;        ///< across all interfaces
  std::vector<std::uint64_t> bytes_per_iface;
  std::optional<SimTime> completed_at;  ///< last byte departed & source done
  /// Queueing delay (enqueue -> transmission complete) of every packet, in
  /// nanoseconds; feeds the latency side of the quantum trade-off.
  EmpiricalCdf delay_ns;
  /// Tail drops (only non-zero with RunnerOptions::queue_capacity_bytes).
  std::uint64_t dropped_packets = 0;
  std::uint64_t dropped_bytes = 0;

  /// Mean of the sampled rate over [from, to), in Mb/s.
  double mean_rate_mbps(SimTime from, SimTime to) const {
    return rate_mbps.mean_over(from, to);
  }
};

struct InterfaceResult {
  std::string name;
  IfaceId id = kInvalidIface;
  std::uint64_t bytes_sent = 0;
  SimDuration busy_time = 0;
};

struct ScenarioResult {
  std::string policy;
  SimTime duration = 0;
  std::vector<FlowResult> flows;
  std::vector<InterfaceResult> ifaces;
  std::vector<ClusterSnapshot> clusters;

  const FlowResult& flow_named(const std::string& name) const;
};

struct RunnerOptions {
  std::uint32_t quantum_base = 1500;   ///< DRR-family quantum scale (bytes)
  SimDuration sample_interval = 100 * kMillisecond;
  std::size_t rate_window_bins = 10;   ///< smoothing: window = bins * interval
  SimDuration cluster_interval = 0;    ///< 0 = no cluster snapshots
  std::uint64_t seed = 1;
  std::uint64_t queue_capacity_bytes = 0;  ///< per-flow cap; 0 = unbounded
  /// Per-transmission service-time jitter fraction (see
  /// LinkTransmitter::set_jitter); 0 = fully deterministic links.
  double link_jitter = 0.0;
  /// Batched transmission: when positive, each link drains up to this much
  /// transmission time per simulator event (LinkTransmitter::set_burst fed
  /// by Scheduler::dequeue_burst) instead of one event per packet.
  /// Departure timestamps stay per-packet; scheduling decisions within a
  /// burst all see the burst-start clock.  0 = classic per-packet events.
  SimDuration burst_opportunity = 0;
};

class ScenarioRunner {
 public:
  ScenarioRunner(const Scenario& scenario, Policy policy,
                 RunnerOptions options = {});
  ~ScenarioRunner();

  /// Runs the scenario for `duration` of simulated time.
  ScenarioResult run(SimTime duration);

  /// The scheduler driving the run (white-box inspection in tests).
  Scheduler& scheduler() { return *scheduler_; }
  Simulator& simulator() { return sim_; }

 private:
  struct FlowRuntime;

  void start_flow(std::size_t index);
  void enqueue_for(std::size_t index, std::uint32_t size);
  void refill_source(FlowId flow, std::uint32_t dequeued_bytes);
  std::size_t index_of(FlowId flow) const;
  void pump_arrivals(std::size_t index);
  void kick_transmitters(FlowId flow);
  void on_departure(IfaceId iface, const Packet& packet, SimTime at);
  void sample_rates();
  void snapshot_clusters();
  fair::MaxMinInput current_input() const;

  const Scenario& scenario_;
  RunnerOptions options_;
  Simulator sim_;
  std::unique_ptr<Scheduler> scheduler_;
  Rng rng_;
  std::vector<std::unique_ptr<LinkTransmitter>> links_;
  std::vector<std::unique_ptr<FlowRuntime>> flows_;
  std::vector<std::size_t> index_by_flow_id_;  // FlowId -> flows_ index
  std::vector<std::vector<std::uint64_t>> window_bytes_;  // [flow][iface]
  std::vector<ClusterSnapshot> cluster_log_;
  SimTime horizon_ = 0;
  bool armed_ = false;
};

}  // namespace midrr
