// Lock-free metrics registry: the write side of the telemetry layer.
//
// Writers (runtime workers, shard schedulers via MetricsObserver, the
// bridge, the proxy) hold stable handles -- Counter, Gauge, Histogram --
// and bump them wait-free with relaxed atomics; nothing on the hot path
// ever takes a lock or allocates.  A reader (the /metrics scrape, the
// fairness sampler) aggregates whatever the handles hold "around now":
// every counter is monotone, so deltas between two scrapes are meaningful
// even though individual loads race with writers (the same contract as
// util/latency_histogram.hpp, which Histogram generalizes).
//
// Registration (counter()/gauge()/histogram()/counter_fn()/gauge_fn()) is
// the slow path: it takes the registry mutex, deduplicates by (name,
// labels), and returns a reference that stays valid for the registry's
// lifetime.  Callback series (counter_fn/gauge_fn) are for state that
// already lives elsewhere as atomics -- the collector invokes the callback
// at scrape time instead of double-counting into a second cell; callbacks
// must therefore be thread-safe and non-blocking.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/latency_histogram.hpp"

namespace midrr::telemetry {

/// Label key/value pairs attached to one series ("{shard="0",iface="if1"}").
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Monotone event count.  Wait-free writers, racy-but-monotone readers.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-writer-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    // C++20 atomic<double>::fetch_add; contention here is rare (gauges are
    // mostly set(), add() exists for occupancy-style up/down tracking).
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Log-bucketed distribution: LatencyHistogram's 64x8 grid (<= 12.5%
/// relative error) plus the sum/count pair Prometheus histograms need.
/// observe() is one relaxed fetch_add per sample, from any thread.
class Histogram {
 public:
  void observe(std::uint64_t v) { h_.record(v); }

  std::uint64_t count() const { return h_.count(); }
  double sum() const { return h_.mean_ns() * static_cast<double>(h_.count()); }
  double quantile(double q) const { return h_.quantile(q); }

  const LatencyHistogram& grid() const { return h_; }

 private:
  LatencyHistogram h_;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One rendered series: labels plus either a scalar or histogram state.
struct SampleSnapshot {
  LabelSet labels;
  double value = 0.0;  ///< counter/gauge value
  /// Histogram only: cumulative (upper_bound, count) pairs, le-sorted,
  /// WITHOUT the +Inf bucket (count covers it), plus the running sum.
  std::vector<std::pair<double, std::uint64_t>> buckets;
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// One metric family: every series sharing a name/kind/help.
struct FamilySnapshot {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::vector<SampleSnapshot> samples;
};

class MetricsRegistry {
 public:
  // Out-of-line: Family is incomplete here, and the vector<unique_ptr>
  // member drags its deleter into any inline special member.
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // --- Registration (slow path; takes the registry mutex) ----------------
  // Re-registering the same (name, labels) returns the existing handle, so
  // components can register idempotently.  A name must keep one kind.

  Counter& counter(const std::string& name, const std::string& help,
                   LabelSet labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               LabelSet labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       LabelSet labels = {});

  /// Callback-backed series, collected at scrape time.  The callback must
  /// be thread-safe, non-blocking, and outlive the registry (or be
  /// deregistered by destroying the registry first).
  void counter_fn(const std::string& name, const std::string& help,
                  LabelSet labels, std::function<double()> fn);
  void gauge_fn(const std::string& name, const std::string& help,
                LabelSet labels, std::function<double()> fn);

  // --- Collection ---------------------------------------------------------

  /// Materializes every family, invoking callback series.  Families are
  /// ordered by registration, samples by child registration (stable across
  /// scrapes).  Histogram buckets use the fixed power-of-4 ladder in
  /// prometheus.cpp's exposition, computed from the fine-grained grid.
  std::vector<FamilySnapshot> snapshot() const;

  /// Number of registered series across all families (tests, /metrics meta).
  std::size_t series_count() const;

 private:
  struct Child;
  struct Family;

  Family& family_locked(const std::string& name, const std::string& help,
                        MetricKind kind);
  Child* find_child_locked(Family& family, const LabelSet& labels);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Family>> families_;
};

/// The fixed histogram bucket ladder used for exposition: powers of 4 from
/// 256 to 4^16 (~4.3e9), which spans ns-scale latencies up to seconds.
std::vector<double> histogram_ladder();

/// Cumulative bucket counts of `grid` at the ladder's boundaries.
std::vector<std::pair<double, std::uint64_t>> cumulative_buckets(
    const LatencyHistogram& grid);

}  // namespace midrr::telemetry
