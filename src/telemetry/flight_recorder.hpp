// Flight recorder: bounded per-writer event rings that survive until the
// moment you need them -- a post-mortem JSON snapshot of the last N
// scheduler/fault/io/control events, dumped when /healthz degrades, when a
// conservation identity trips, or on a fatal signal.
//
// Design:
//   * One FlightLog per writer thread (runtime workers, the supervisor,
//     the tool's health monitor).  log() is wait-free: the single writer
//     fills the next slot's relaxed-atomic fields, then publishes a head
//     counter with release.  Event rates are transition-rate, not
//     packet-rate -- this is a black box, not a tracer.
//   * Readers (the dumper) never block writers: copy the ring, then use a
//     reserve counter (bumped BEFORE the slot is written) to discard any
//     entry the writer may have been overwriting mid-copy.
//   * FlightRecorder merges every writer's surviving entries into one
//     timeline sorted by timestamp and renders JSON.
//   * The fatal-signal path is async-signal-safe: the dump fd is opened
//     when the handler is armed, and the handler formats integers into a
//     stack buffer with write(2) only -- no malloc, no streams, no locks.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace midrr::telemetry {

enum class FlightCategory : std::uint16_t {
  kRuntime = 0,   ///< worker lifecycle, drops, shedding
  kIo = 1,        ///< egress pushback / errors
  kFault = 2,     ///< injected transitions
  kSupervisor = 3,///< link verdicts, restarts
  kHealth = 4,    ///< /healthz transitions, identity checks
};

enum class FlightCode : std::uint16_t {
  kWorkerStart = 0,
  kWorkerExit = 1,
  kWorkerRestart = 2,
  kShedDrops = 3,        ///< a = packets shed (one fan-in batch)
  kStragglerDrops = 4,   ///< a = packets dropped for removed flows
  kTailDrops = 5,        ///< a = queue-bound drops
  kIoPushback = 6,       ///< a = requeued, b = dropped (one burst)
  kIoFlushDrops = 7,     ///< a = packets unflushable at stop
  kFaultScale = 8,       ///< a = iface, b = rate scale in 1/1000
  kLinkSuspect = 9,      ///< a = iface
  kLinkDead = 10,        ///< a = iface
  kLinkHealthy = 11,     ///< a = iface
  kHealthDegraded = 12,
  kHealthRecovered = 13,
  kConservationTrip = 14,///< a = lhs of the identity, b = rhs
  kNote = 15,            ///< free-form marker (a, b caller-defined)
};

const char* to_string(FlightCategory category);
const char* to_string(FlightCode code);

/// One recorded event, as surfaced by a dump.
struct FlightEvent {
  std::uint64_t t_ns = 0;
  FlightCategory category = FlightCategory::kRuntime;
  FlightCode code = FlightCode::kNote;
  std::uint32_t writer = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Single-writer lock-free ring.  Obtain via FlightRecorder::add_writer.
class FlightLog {
 public:
  void log(std::uint64_t t_ns, FlightCategory category, FlightCode code,
           std::uint64_t a = 0, std::uint64_t b = 0) {
    const std::uint64_t i = reserve_.load(std::memory_order_relaxed);
    // Reserve first: a concurrent dumper copying this slot sees reserve_
    // past it and discards the possibly-torn entry.
    reserve_.store(i + 1, std::memory_order_release);
    Slot& slot = slots_[i % slots_.size()];
    slot.t_ns.store(t_ns, std::memory_order_relaxed);
    slot.meta.store(pack(category, code), std::memory_order_relaxed);
    slot.a.store(a, std::memory_order_relaxed);
    slot.b.store(b, std::memory_order_relaxed);
    head_.store(i + 1, std::memory_order_release);
  }

  std::uint64_t logged() const { return head_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }
  std::uint32_t id() const { return id_; }

 private:
  friend class FlightRecorder;

  struct Slot {
    std::atomic<std::uint64_t> t_ns{0};
    std::atomic<std::uint32_t> meta{0};  ///< category << 16 | code
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
  };

  FlightLog(std::size_t capacity, std::uint32_t id, std::string name)
      : slots_(capacity), id_(id), name_(std::move(name)) {}

  static std::uint32_t pack(FlightCategory category, FlightCode code) {
    return (static_cast<std::uint32_t>(category) << 16) |
           static_cast<std::uint32_t>(code);
  }

  /// Copies the surviving window into `out` (appending).  Entries the
  /// writer overwrote mid-copy are discarded, never torn.
  void snapshot(std::vector<FlightEvent>& out) const;

  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> reserve_{0};  ///< bumped before a slot write
  std::atomic<std::uint64_t> head_{0};     ///< bumped after (published)
  std::uint32_t id_ = 0;
  std::string name_;
};

class FlightRecorder {
 public:
  /// `per_writer_capacity` events are retained per writer ring.
  explicit FlightRecorder(std::size_t per_writer_capacity = 256);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Registers a writer ring.  NOT thread-safe against concurrent dumps or
  /// other add_writer calls: wire every writer up before threads run (the
  /// runtime does this at start()).  The returned log lives as long as the
  /// recorder.
  FlightLog& add_writer(std::string name);

  /// Merged timeline (sorted by t_ns) of every writer's surviving window.
  std::vector<FlightEvent> snapshot() const;

  /// Renders {"reason", "dumped_at_ns", "writers", "events": [...]} with
  /// events in timestamp order.
  std::string dump_json(const std::string& reason,
                        std::uint64_t now_ns) const;

  /// dump_json to `path` (overwriting).  Returns false on I/O failure.
  /// Bumps dumps(); callers typically gate on a transition so a flapping
  /// health state does not rewrite the post-mortem every probe.
  bool dump_to_file(const std::string& path, const std::string& reason,
                    std::uint64_t now_ns);

  std::uint64_t dumps() const { return dumps_.load(std::memory_order_relaxed); }

  /// Total events logged across all writers (not capped by ring capacity).
  std::uint64_t events_logged() const {
    std::uint64_t total = 0;
    for (const auto& log : logs_) total += log->logged();
    return total;
  }

  /// Arms an async-signal-safe fatal dump: opens `path` now and installs
  /// handlers for SIGSEGV/SIGBUS/SIGFPE/SIGILL/SIGABRT that write a
  /// minimal JSON dump (unsorted, integer codes) using only write(2),
  /// then re-raise with default disposition.  One recorder per process
  /// may be armed; re-arming replaces the previous target.
  bool arm_fatal_dump(const std::string& path);

  /// The fatal handler's body: a minimal JSON dump to `fd` using only
  /// write(2) and stack buffers (async-signal-safe; categories and codes
  /// are emitted as integers, events per writer in ring order, unsorted).
  /// Public so the signal handler can reach it; callable from tests.
  void write_signal_dump(int fd, int signo) const;

 private:
  std::size_t capacity_;
  std::vector<std::unique_ptr<FlightLog>> logs_;
  std::atomic<std::uint64_t> dumps_{0};
};

}  // namespace midrr::telemetry
