#include "telemetry/slo.hpp"

#include <cstdlib>
#include <sstream>

#include "util/assert.hpp"

namespace midrr::telemetry {

bool parse_slo_spec(const std::string& text, SloSpec* out) {
  // class=NAME:p99_ms=X
  constexpr const char* kClassKey = "class=";
  constexpr const char* kTargetKey = ":p99_ms=";
  if (text.rfind(kClassKey, 0) != 0) return false;
  const std::size_t target_at = text.find(kTargetKey);
  if (target_at == std::string::npos) return false;
  const std::size_t name_begin = 6;  // strlen("class=")
  if (target_at <= name_begin) return false;  // empty class name
  const std::string name = text.substr(name_begin, target_at - name_begin);
  const std::string ms_text = text.substr(target_at + 8);  // ":p99_ms="
  if (ms_text.empty()) return false;
  char* end = nullptr;
  const double ms = std::strtod(ms_text.c_str(), &end);
  if (end == nullptr || *end != '\0' || !(ms > 0.0)) return false;
  out->class_name = name;
  out->p99_target_ns =
      static_cast<std::uint64_t>(ms * static_cast<double>(kMillisecond));
  return true;
}

SloEngine::SloEngine(std::vector<SloSpec> specs, std::size_t max_classes)
    : SloEngine(std::move(specs), max_classes, Options{}) {}

SloEngine::SloEngine(std::vector<SloSpec> specs, std::size_t max_classes,
                     Options options)
    : options_(options),
      specs_(std::move(specs)),
      class_to_slo_(max_classes) {
  MIDRR_REQUIRE(options_.bucket_ns >= 1, "slo bucket width must be >= 1ns");
  MIDRR_REQUIRE(options_.short_window_buckets >= 1 &&
                    options_.long_window_buckets >=
                        options_.short_window_buckets,
                "slo windows must be non-empty and short <= long");
  MIDRR_REQUIRE(options_.error_budget > 0.0, "slo error budget must be > 0");
  // +2 slack so the oldest bucket of the long window is never the one the
  // current epoch is about to recycle.
  const std::size_t ring = options_.long_window_buckets + 2;
  states_.reserve(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    states_.push_back(std::make_unique<State>(ring));
  }
  for (auto& slot : class_to_slo_) {
    slot.store(-1, std::memory_order_relaxed);
  }
}

bool SloEngine::bind_class(ClassId cls, const std::string& class_name) {
  if (cls >= class_to_slo_.size()) return false;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].class_name == class_name) {
      class_to_slo_[cls].store(static_cast<std::int32_t>(i),
                               std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void SloEngine::record(ClassId cls, std::uint64_t latency_ns,
                       std::uint64_t now_ns) {
  if (cls >= class_to_slo_.size()) return;
  const std::int32_t index =
      class_to_slo_[cls].load(std::memory_order_relaxed);
  if (index < 0) return;
  State& state = *states_[static_cast<std::size_t>(index)];
  const std::uint64_t epoch = now_ns / options_.bucket_ns;
  Bucket& bucket = state.ring[epoch % state.ring.size()];
  std::uint64_t tag = bucket.epoch.load(std::memory_order_relaxed);
  if (tag != epoch) {
    // The CAS winner zeroes the recycled bucket.  A racing recorder that
    // lands between the CAS and the stores loses its sample -- bounded by
    // the writer count per flip, noise at burn-rate granularity.
    if (bucket.epoch.compare_exchange_strong(tag, epoch,
                                             std::memory_order_relaxed)) {
      bucket.samples.store(0, std::memory_order_relaxed);
      bucket.violations.store(0, std::memory_order_relaxed);
    }
  }
  const bool violated =
      latency_ns > specs_[static_cast<std::size_t>(index)].p99_target_ns;
  bucket.samples.fetch_add(1, std::memory_order_relaxed);
  state.samples.fetch_add(1, std::memory_order_relaxed);
  if (violated) {
    bucket.violations.fetch_add(1, std::memory_order_relaxed);
    state.violations.fetch_add(1, std::memory_order_relaxed);
  }
}

double SloEngine::burn_rate(std::size_t slo, std::uint32_t window_buckets,
                            std::uint64_t now_ns) const {
  const State& state = *states_[slo];
  const std::uint64_t current = now_ns / options_.bucket_ns;
  std::uint64_t samples = 0;
  std::uint64_t violations = 0;
  for (std::uint32_t i = 0; i < window_buckets; ++i) {
    if (current < i) break;  // window reaches before t=0
    const std::uint64_t epoch = current - i;
    const Bucket& bucket = state.ring[epoch % state.ring.size()];
    if (bucket.epoch.load(std::memory_order_relaxed) != epoch) continue;
    samples += bucket.samples.load(std::memory_order_relaxed);
    violations += bucket.violations.load(std::memory_order_relaxed);
  }
  if (samples == 0) return 0.0;
  const double violating_fraction =
      static_cast<double>(violations) / static_cast<double>(samples);
  return violating_fraction / options_.error_budget;
}

void SloEngine::register_metrics(MetricsRegistry& registry,
                                 std::function<std::uint64_t()> now_fn) {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const std::string& cls = specs_[i].class_name;
    registry.gauge("midrr_slo_target_ns",
                   "Declared p99 latency target for the class.",
                   {{"class", cls}})
        .set(static_cast<double>(specs_[i].p99_target_ns));
    registry.counter_fn(
        "midrr_slo_samples_total",
        "Sampled end-to-end latencies evaluated against the class SLO.",
        {{"class", cls}}, [this, i] {
          return static_cast<double>(samples(i));
        });
    registry.counter_fn(
        "midrr_slo_violations_total",
        "Sampled latencies that exceeded the class target.",
        {{"class", cls}}, [this, i] {
          return static_cast<double>(violations(i));
        });
    registry.gauge_fn(
        "midrr_slo_burn_rate",
        "Error-budget burn rate over the trailing window: violating "
        "fraction / error budget.  1.0 spends budget exactly at the "
        "allowed rate; sustained > 1 means the SLO will be missed.",
        {{"class", cls}, {"window", "short"}}, [this, i, now_fn] {
          return short_burn(i, now_fn());
        });
    registry.gauge_fn("midrr_slo_burn_rate",
                      "Error-budget burn rate over the trailing window.",
                      {{"class", cls}, {"window", "long"}},
                      [this, i, now_fn] { return long_burn(i, now_fn()); });
  }
}

std::string SloEngine::json(std::uint64_t now_ns) const {
  std::ostringstream out;
  out << "{\"error_budget\":" << options_.error_budget
      << ",\"bucket_ns\":" << options_.bucket_ns << ",\"window_short_buckets\":"
      << options_.short_window_buckets
      << ",\"window_long_buckets\":" << options_.long_window_buckets
      << ",\"slos\":[";
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (i != 0) out << ',';
    out << "\n{\"class\":\"" << specs_[i].class_name
        << "\",\"p99_target_ns\":" << specs_[i].p99_target_ns
        << ",\"samples\":" << samples(i) << ",\"violations\":" << violations(i)
        << ",\"burn_short\":" << short_burn(i, now_ns)
        << ",\"burn_long\":" << long_burn(i, now_ns) << "}";
  }
  out << "\n]}";
  return out.str();
}

}  // namespace midrr::telemetry
