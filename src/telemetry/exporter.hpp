// TelemetryServer: a tiny embedded HTTP/1.1 endpoint for scrapes, built on
// the library's own src/http message code (the same parser the byte-range
// proxy uses) over plain POSIX sockets.
//
// One accept thread serves one request per connection ("Connection:
// close"), which is exactly the Prometheus scrape model -- no keep-alive,
// no pipelining, no TLS.  Handlers run on the accept thread; they must be
// thread-safe with respect to the rest of the process (the built-in
// /metrics handler only reads relaxed atomics via MetricsRegistry).
//
// Default routes once serve_registry() is called:
//   GET /metrics  -> Prometheus text exposition (version 0.0.4)
//   GET /healthz  -> 200 "ok\n"
// Additional routes (e.g. the runtime's /flows JSON) attach via handle().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "http/message.hpp"
#include "telemetry/metrics.hpp"

namespace midrr::telemetry {

/// What a route handler returns; serialized as an HTTP/1.1 response.
struct HandlerResult {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

using Handler = std::function<HandlerResult(const http::HttpRequest&)>;

class TelemetryServer {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    std::uint16_t port = 0;  ///< 0 = ephemeral (read back via port())
  };

  TelemetryServer();  ///< loopback, ephemeral port
  explicit TelemetryServer(Options options);
  ~TelemetryServer();  ///< stops and joins

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Routes GET `path` (exact match, query string ignored) to `handler`.
  void handle(const std::string& path, Handler handler);

  /// Mounts /metrics and /healthz for `registry` (which must outlive the
  /// server).
  void serve_registry(const MetricsRegistry& registry);

  /// Binds, listens, and starts the accept thread.  Throws on bind failure.
  void start();
  void stop();  ///< idempotent
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (valid after start(); resolves ephemeral port 0).
  std::uint16_t port() const { return bound_port_; }

  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void serve_connection(int fd);

  Options options_;
  std::mutex handlers_mu_;
  std::map<std::string, Handler> handlers_;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};
};

}  // namespace midrr::telemetry
