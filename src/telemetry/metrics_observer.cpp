#include "telemetry/metrics_observer.hpp"

namespace midrr::telemetry {

MetricsObserver::MetricsObserver(MetricsRegistry& registry, LabelSet labels,
                                 SchedulerObserver* chain)
    : grants_(registry.counter(
          "midrr_sched_turns_total",
          "Service turns granted (each grant refreshes the flow's quantum)",
          labels)),
      skips_(registry.counter(
          "midrr_sched_flag_skips_total",
          "Algorithm 3.2 service-flag skips (flow served elsewhere)", labels)),
      sends_(registry.counter("midrr_sched_packets_sent_total",
                              "Packets handed to interfaces", labels)),
      sent_bytes_(registry.counter("midrr_sched_sent_bytes_total",
                                   "Bytes handed to interfaces", labels)),
      drains_(registry.counter(
          "midrr_sched_flow_drains_total",
          "Flow queue drains (flow left the backlogged set)", labels)),
      chain_(chain) {}

void MetricsObserver::on_turn_granted(SimTime now, FlowId flow, IfaceId iface,
                                      std::int64_t deficit_after) {
  grants_.inc();
  if (chain_ != nullptr) {
    chain_->on_turn_granted(now, flow, iface, deficit_after);
  }
}

void MetricsObserver::on_flag_skip(SimTime now, FlowId flow, IfaceId iface) {
  skips_.inc();
  if (chain_ != nullptr) chain_->on_flag_skip(now, flow, iface);
}

void MetricsObserver::on_packet_sent(SimTime now, FlowId flow, IfaceId iface,
                                     std::uint32_t bytes) {
  // Counting happens in on_packets_sent (one bump per burst); this hook
  // only forwards to a chained tracer, which wants per-packet events.
  if (chain_ != nullptr) chain_->on_packet_sent(now, flow, iface, bytes);
}

void MetricsObserver::on_packets_sent(SimTime now, IfaceId iface,
                                      std::uint64_t packets,
                                      std::uint64_t bytes) {
  sends_.inc(packets);
  sent_bytes_.inc(bytes);
  if (chain_ != nullptr) chain_->on_packets_sent(now, iface, packets, bytes);
}

void MetricsObserver::on_flow_drained(SimTime now, FlowId flow) {
  drains_.inc();
  if (chain_ != nullptr) chain_->on_flow_drained(now, flow);
}

}  // namespace midrr::telemetry
