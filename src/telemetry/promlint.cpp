#include "telemetry/promlint.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

namespace midrr::telemetry {

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (i > 0 && digit))) return false;
  }
  return true;
}

bool valid_label_name(const std::string& name) {
  if (name.empty()) return false;
  if (name.size() >= 2 && name[0] == '_' && name[1] == '_') return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (i > 0 && digit))) return false;
  }
  return true;
}

bool known_type(const std::string& type) {
  return type == "counter" || type == "gauge" || type == "histogram" ||
         type == "summary" || type == "untyped";
}

bool parse_sample_value(const std::string& text, double* out) {
  if (text == "+Inf" || text == "Inf") {
    *out = HUGE_VAL;
    return true;
  }
  if (text == "-Inf") {
    *out = -HUGE_VAL;
    return true;
  }
  if (text == "NaN") {
    *out = NAN;
    return true;
  }
  if (text.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0';
}

struct ParsedSample {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  std::string value_text;
};

/// Parses `name{k="v",...} value` (labels optional).  Returns false with a
/// diagnostic in *error on any syntax problem.
bool parse_sample(const std::string& line, ParsedSample* out,
                  std::string* error) {
  std::size_t i = 0;
  while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
  out->name = line.substr(0, i);
  if (!valid_metric_name(out->name)) {
    *error = "invalid metric name '" + out->name + "'";
    return false;
  }
  if (i < line.size() && line[i] == '{') {
    ++i;  // consume '{'
    while (i < line.size() && line[i] != '}') {
      std::size_t eq = i;
      while (eq < line.size() && line[eq] != '=') ++eq;
      if (eq >= line.size()) {
        *error = "label without '='";
        return false;
      }
      const std::string key = line.substr(i, eq - i);
      if (!valid_label_name(key)) {
        *error = "invalid label name '" + key + "'";
        return false;
      }
      i = eq + 1;
      if (i >= line.size() || line[i] != '"') {
        *error = "label value for '" + key + "' not quoted";
        return false;
      }
      ++i;
      std::string value;
      bool closed = false;
      while (i < line.size()) {
        const char c = line[i];
        if (c == '\\') {
          if (i + 1 >= line.size()) {
            *error = "dangling backslash in label value";
            return false;
          }
          const char esc = line[i + 1];
          if (esc != '\\' && esc != '"' && esc != 'n') {
            *error = std::string("unknown escape '\\") + esc +
                     "' in label value";
            return false;
          }
          value += esc == 'n' ? '\n' : esc;
          i += 2;
          continue;
        }
        if (c == '"') {
          closed = true;
          ++i;
          break;
        }
        value += c;
        ++i;
      }
      if (!closed) {
        *error = "unterminated label value";
        return false;
      }
      out->labels.emplace_back(key, value);
      if (i < line.size() && line[i] == ',') ++i;
    }
    if (i >= line.size() || line[i] != '}') {
      *error = "unterminated label set";
      return false;
    }
    ++i;  // consume '}'
  }
  if (i >= line.size() || line[i] != ' ') {
    *error = "sample has no value";
    return false;
  }
  ++i;
  out->value_text = line.substr(i);
  // Timestamps (a second space-separated field) are legal in the format
  // but our renderer never emits them; accept and ignore.
  const std::size_t space = out->value_text.find(' ');
  if (space != std::string::npos) {
    out->value_text = out->value_text.substr(0, space);
  }
  return true;
}

/// The family a sample belongs to: for declared histograms the
/// _bucket/_sum/_count suffixes fold back onto the base name.
std::string owning_family(const std::string& name,
                          const std::map<std::string, std::string>& types) {
  static const char* kSuffixes[] = {"_bucket", "_sum", "_count"};
  for (const char* suffix : kSuffixes) {
    const std::size_t n = std::string(suffix).size();
    if (name.size() > n && name.compare(name.size() - n, n, suffix) == 0) {
      const std::string base = name.substr(0, name.size() - n);
      const auto it = types.find(base);
      if (it != types.end() && it->second == "histogram") return base;
    }
  }
  return name;
}

std::string label_key(
    const std::vector<std::pair<std::string, std::string>>& labels,
    bool drop_le) {
  std::vector<std::pair<std::string, std::string>> sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::ostringstream out;
  for (const auto& [k, v] : sorted) {
    if (drop_le && k == "le") continue;
    out << k << '\x1f' << v << '\x1e';
  }
  return out.str();
}

/// Per-(histogram family, base labels) running validation state.
struct HistogramSeries {
  std::size_t first_line = 0;
  double last_le = -HUGE_VAL;
  double last_cumulative = -1.0;
  bool saw_inf = false;
  double inf_value = 0.0;
  bool saw_sum = false;
  bool saw_count = false;
  double count_value = 0.0;
};

}  // namespace

std::vector<LintIssue> lint_prometheus(const std::string& text) {
  std::vector<LintIssue> issues;
  const auto issue = [&issues](std::size_t line, std::string message) {
    issues.push_back({line, std::move(message)});
  };

  std::map<std::string, std::string> types;  ///< family -> TYPE
  std::set<std::string> helped;
  std::set<std::string> closed;      ///< families we moved past (contiguity)
  std::set<std::string> seen_keys;   ///< name + labels dedup
  std::map<std::string, HistogramSeries> histograms;
  std::string current_family;

  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream comment(line);
      std::string hash, keyword, name;
      comment >> hash >> keyword >> name;
      if (keyword != "HELP" && keyword != "TYPE") continue;  // plain comment
      if (!valid_metric_name(name)) {
        issue(line_no, "# " + keyword + " for invalid metric name '" + name +
                           "'");
        continue;
      }
      if (keyword == "TYPE") {
        std::string type;
        comment >> type;
        if (!known_type(type)) {
          issue(line_no, "unknown TYPE '" + type + "' for " + name);
          continue;
        }
        if (types.count(name) != 0) {
          issue(line_no, "duplicate # TYPE for " + name);
          continue;
        }
        if (closed.count(name) != 0) {
          issue(line_no, "family " + name + " reopened (samples must be "
                         "contiguous)");
        }
        types[name] = type;
        if (!current_family.empty() && current_family != name) {
          closed.insert(current_family);
        }
        current_family = name;
      } else {  // HELP
        if (!helped.insert(name).second) {
          issue(line_no, "duplicate # HELP for " + name);
        }
        if (types.count(name) != 0) {
          issue(line_no, "# HELP for " + name + " after its # TYPE");
        }
      }
      continue;
    }

    ParsedSample sample;
    std::string error;
    if (!parse_sample(line, &sample, &error)) {
      issue(line_no, error);
      continue;
    }
    double value = 0.0;
    if (!parse_sample_value(sample.value_text, &value)) {
      issue(line_no, "unparseable value '" + sample.value_text + "' for " +
                         sample.name);
      continue;
    }
    const std::string family = owning_family(sample.name, types);
    const auto type_it = types.find(family);
    if (type_it == types.end()) {
      issue(line_no, "sample " + sample.name + " has no preceding # TYPE");
      continue;
    }
    if (family != current_family) {
      issue(line_no, "sample " + sample.name + " interleaved outside its "
                     "family block (" + family + ")");
    }
    if (!seen_keys.insert(sample.name + '\x1d' +
                          label_key(sample.labels, /*drop_le=*/false))
             .second) {
      issue(line_no, "duplicate sample " + sample.name + " (same labels)");
    }

    if (type_it->second != "histogram") continue;

    // Histogram bookkeeping keyed by the series' base labels.
    const std::string series_key =
        family + '\x1d' + label_key(sample.labels, /*drop_le=*/true);
    HistogramSeries& series = histograms[series_key];
    if (series.first_line == 0) series.first_line = line_no;
    if (sample.name == family + "_bucket") {
      std::string le_text;
      for (const auto& [k, v] : sample.labels) {
        if (k == "le") le_text = v;
      }
      double le = 0.0;
      if (le_text.empty() || !parse_sample_value(le_text, &le)) {
        issue(line_no, family + "_bucket without a parseable le label");
        continue;
      }
      if (le <= series.last_le) {
        issue(line_no, family + " le buckets not strictly ascending");
      }
      if (value < series.last_cumulative) {
        issue(line_no, family + " cumulative bucket counts regress");
      }
      series.last_le = le;
      series.last_cumulative = value;
      if (std::isinf(le) && le > 0) {
        series.saw_inf = true;
        series.inf_value = value;
      }
    } else if (sample.name == family + "_sum") {
      series.saw_sum = true;
    } else if (sample.name == family + "_count") {
      series.saw_count = true;
      series.count_value = value;
    }
  }

  for (const auto& [key, series] : histograms) {
    const std::string family = key.substr(0, key.find('\x1d'));
    if (!series.saw_inf) {
      issue(series.first_line, family + " series missing the +Inf bucket");
    }
    if (!series.saw_sum || !series.saw_count) {
      issue(series.first_line, family + " series missing _sum or _count");
    }
    if (series.saw_inf && series.saw_count &&
        series.inf_value != series.count_value) {
      issue(series.first_line,
            family + " +Inf bucket disagrees with _count");
    }
  }
  return issues;
}

}  // namespace midrr::telemetry
