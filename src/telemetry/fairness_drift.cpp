#include "telemetry/fairness_drift.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

#include "fairness/maxmin.hpp"
#include "util/logging.hpp"

namespace midrr::telemetry {

namespace {

std::string flow_label(const FairnessFlowSample& flow) {
  return flow.name.empty() ? "f" + std::to_string(flow.id) : flow.name;
}

}  // namespace

FairnessDriftSampler::FairnessDriftSampler(FairnessSource& source,
                                           MetricsRegistry& registry,
                                           FairnessDriftOptions options)
    : source_(source),
      registry_(registry),
      options_(options),
      samples_total_(registry.counter("midrr_fairness_samples_total",
                                      "Fairness-drift solver runs")),
      solver_ns_(registry.histogram("midrr_fairness_solver_ns",
                                    "Max-min reference solver latency (ns)")),
      jain_(registry.gauge("midrr_fairness_jain_index",
                           "Jain's index over actual/max-min rate ratios")),
      ratio_min_(registry.gauge("midrr_fairness_ratio_min",
                                "Smallest actual/max-min ratio this window")),
      ratio_max_(registry.gauge("midrr_fairness_ratio_max",
                                "Largest actual/max-min ratio this window")),
      ratio_mean_(registry.gauge("midrr_fairness_ratio_mean",
                                 "Mean actual/max-min ratio this window")),
      compared_flows_(registry.gauge("midrr_fairness_flows",
                                     "Flows compared in the last window")) {}

FairnessDriftSampler::~FairnessDriftSampler() { stop(); }

void FairnessDriftSampler::start() {
  std::lock_guard<std::mutex> lock(run_mu_);
  if (running_) return;
  running_ = true;
  thread_ = std::thread([this] { run(); });
}

void FairnessDriftSampler::stop() {
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    if (!running_) {
      if (thread_.joinable()) thread_.join();
      return;
    }
    running_ = false;
  }
  run_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void FairnessDriftSampler::run() {
  // Prime the window immediately so the first report lands after ONE
  // interval instead of two.
  sample_once();
  std::unique_lock<std::mutex> lock(run_mu_);
  while (running_) {
    run_cv_.wait_for(lock, std::chrono::nanoseconds(options_.interval_ns),
                     [this] { return !running_; });
    if (!running_) break;
    lock.unlock();
    sample_once();
    lock.lock();
  }
}

void FairnessDriftSampler::sample_once() {
  FairnessSample sample = source_.fairness_sample();
  if (!has_prev_) {
    prev_ = std::move(sample);
    has_prev_ = true;
    return;
  }
  const double window_s = to_seconds(sample.at_ns - prev_.at_ns);
  if (window_s <= 0.0) return;  // clock did not advance; keep prev_

  // Join flows live in BOTH samples by id (flows that churned mid-window
  // have no meaningful window rate).
  struct Joined {
    const FairnessFlowSample* now;
    double actual_bps;
  };
  std::vector<Joined> joined;
  joined.reserve(sample.flows.size());
  for (const FairnessFlowSample& flow : sample.flows) {
    const auto it = std::find_if(
        prev_.flows.begin(), prev_.flows.end(),
        [&](const FairnessFlowSample& p) { return p.id == flow.id; });
    if (it == prev_.flows.end()) continue;
    const std::uint64_t delta =
        flow.sent_bytes >= it->sent_bytes ? flow.sent_bytes - it->sent_bytes
                                          : 0;
    joined.push_back({&flow, static_cast<double>(delta) * 8.0 / window_s});
  }

  // Capacities: paced interfaces report the profile's current rate;
  // unpaced ones substitute the measured drain rate over the window.
  const std::size_t iface_count = sample.capacities_bps.size();
  std::vector<double> capacities(iface_count, 0.0);
  for (std::size_t j = 0; j < iface_count; ++j) {
    if (sample.capacities_bps[j] >= 0.0) {
      capacities[j] = sample.capacities_bps[j];
    } else if (j < sample.iface_sent_bytes.size() &&
               j < prev_.iface_sent_bytes.size() &&
               sample.iface_sent_bytes[j] >= prev_.iface_sent_bytes[j]) {
      capacities[j] = static_cast<double>(sample.iface_sent_bytes[j] -
                                          prev_.iface_sent_bytes[j]) *
                      8.0 / window_s;
    }
  }

  DriftReport report;
  report.at_ns = sample.at_ns;
  report.window_s = window_s;

  if (!joined.empty() && iface_count > 0) {
    fair::MaxMinInput input;
    input.capacities_bps = capacities;
    input.weights.reserve(joined.size());
    input.willing.reserve(joined.size());
    for (const Joined& j : joined) {
      // A class row represents `members` flows sharing one phi: it claims
      // weight phi x members in the reference program, so the solve stays
      // O(classes) while preserving exactly the rates a per-flow program
      // would hand the members in aggregate.
      const double base = j.now->weight > 0.0 ? j.now->weight : 1.0;
      const double members =
          j.now->members > 0 ? static_cast<double>(j.now->members) : 1.0;
      input.weights.push_back(base * members);
      std::vector<bool> row(iface_count, false);
      for (std::size_t k = 0; k < iface_count && k < j.now->willing.size();
           ++k) {
        row[k] = j.now->willing[k];
      }
      input.willing.push_back(std::move(row));
    }
    try {
      const auto t0 = std::chrono::steady_clock::now();
      const fair::MaxMinResult reference = fair::solve_max_min(input);
      const auto t1 = std::chrono::steady_clock::now();
      solver_ns_.observe(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()));

      double ratio_sum = 0.0, ratio_sq_sum = 0.0;
      double rmin = 0.0, rmax = 0.0;
      std::size_t compared = 0;
      for (std::size_t i = 0; i < joined.size(); ++i) {
        FlowDrift drift;
        drift.id = joined[i].now->id;
        drift.name = flow_label(*joined[i].now);
        drift.members = joined[i].now->members > 0 ? joined[i].now->members : 1;
        drift.actual_bps = joined[i].actual_bps;
        drift.maxmin_bps = reference.rates_bps[i];
        if (drift.maxmin_bps > 0.0) {
          drift.ratio = drift.actual_bps / drift.maxmin_bps;
          if (compared == 0) {
            rmin = rmax = drift.ratio;
          } else {
            rmin = std::min(rmin, drift.ratio);
            rmax = std::max(rmax, drift.ratio);
          }
          ratio_sum += drift.ratio;
          ratio_sq_sum += drift.ratio * drift.ratio;
          ++compared;
        }
        report.flows.push_back(std::move(drift));
      }
      if (compared > 0) {
        report.valid = true;
        report.ratio_min = rmin;
        report.ratio_max = rmax;
        report.ratio_mean = ratio_sum / static_cast<double>(compared);
        report.jain = ratio_sq_sum > 0.0
                          ? (ratio_sum * ratio_sum) /
                                (static_cast<double>(compared) * ratio_sq_sum)
                          : 0.0;
      }
    } catch (const std::exception& e) {
      MIDRR_LOG_WARN() << "fairness-drift solver failed: " << e.what();
    }
  }

  samples_total_.inc();
  if (report.valid) export_report(report);
  {
    std::lock_guard<std::mutex> lock(last_mu_);
    last_ = report;
  }
  prev_ = std::move(sample);
}

void FairnessDriftSampler::export_report(const DriftReport& report) {
  jain_.set(report.jain);
  ratio_min_.set(report.ratio_min);
  ratio_max_.set(report.ratio_max);
  ratio_mean_.set(report.ratio_mean);
  compared_flows_.set(static_cast<double>(report.flows.size()));
  std::size_t labeled = 0;
  for (const FlowDrift& drift : report.flows) {
    if (labeled++ >= options_.max_labeled_flows) break;
    const LabelSet labels{{"flow", drift.name}};
    registry_
        .gauge("midrr_fairness_rate_ratio",
               "Per-flow actual/max-min rate ratio", labels)
        .set(drift.ratio);
    registry_
        .gauge("midrr_fairness_rate_actual_bps",
               "Per-flow measured rate over the last window", labels)
        .set(drift.actual_bps);
    registry_
        .gauge("midrr_fairness_rate_maxmin_bps",
               "Per-flow weighted max-min reference rate", labels)
        .set(drift.maxmin_bps);
    // Member gauges expand lazily: only rows that actually aggregate more
    // than one flow pay the extra label cardinality.
    if (drift.members > 1) {
      const double members = static_cast<double>(drift.members);
      registry_
          .gauge("midrr_fairness_class_members",
                 "Flows aggregated into this class row", labels)
          .set(members);
      registry_
          .gauge("midrr_fairness_rate_per_member_bps",
                 "Measured per-member rate (class aggregate / members)",
                 labels)
          .set(drift.actual_bps / members);
    }
  }
}

DriftReport FairnessDriftSampler::last() const {
  std::lock_guard<std::mutex> lock(last_mu_);
  return last_;
}

std::string flows_json(const FairnessSample& sample, const DriftReport& drift) {
  std::ostringstream out;
  out << "{\"at_ns\":" << sample.at_ns << ",\"window_s\":" << drift.window_s
      << ",\"jain\":" << (drift.valid ? drift.jain : 0.0) << ",\"flows\":[";
  bool first = true;
  for (const FairnessFlowSample& flow : sample.flows) {
    if (!first) out << ',';
    first = false;
    out << "{\"id\":" << flow.id << ",\"name\":\"" << flow_label(flow)
        << "\",\"weight\":" << flow.weight << ",\"members\":" << flow.members
        << ",\"sent_bytes\":" << flow.sent_bytes;
    const auto it = std::find_if(
        drift.flows.begin(), drift.flows.end(),
        [&](const FlowDrift& d) { return d.id == flow.id; });
    if (drift.valid && it != drift.flows.end()) {
      out << ",\"rate_bps\":" << it->actual_bps
          << ",\"maxmin_bps\":" << it->maxmin_bps
          << ",\"ratio\":" << it->ratio;
    }
    out << '}';
  }
  out << "]}";
  return out.str();
}

}  // namespace midrr::telemetry
