// Per-packet stage tracing: where a packet's time goes, not just how much.
//
// The runtime's one latency series (midrr_rt_packet_wait_ns) collapses the
// whole pipeline into enqueue->drain.  This layer attributes a sampled
// subset of packets to every lifecycle stage instead:
//
//   offer (IngressPort)     t_offer    -- ingress-ring entry
//   fan-in pop + enqueue    t_fanin    -- one stamp per fan-in batch
//   pacer grant + dequeue   t_dequeue  -- dequeue happens only when the
//                                         pacer granted budget, so this
//                                         covers pacer gating too
//   egress resolution       t_sent     -- sendmmsg return (or sim sink),
//                                         including stash/retry residence
//
// giving three measured stages per sample plus the end-to-end total:
//
//   ring   = t_fanin   - t_offer     (SPSC ring residence)
//   queue  = t_dequeue - t_fanin     (scheduler queue + pacer gating)
//   egress = t_sent    - t_dequeue   (syscall + requeue stash)
//   e2e    = t_sent    - t_offer     == ring + queue + egress, EXACTLY
//
// All four durations are computed from the same stamps at the single
// completion point, so the reconciliation invariant holds on histogram
// SUMS exactly (quantiles carry the usual <= 12.5% bucket error).
//
// Zero-alloc transport: stamps live in a preallocated arena of
// generation-tagged records; the Packet carries only a 64-bit trace tag
// (0 = untraced).  Each producer lane owns a private slot range used
// round-robin -- no freelist, no cross-thread coordination on the claim
// path.  Completion and death release the record (a single CAS), and a
// claim SKIPS a slot still held by an in-flight sample younger than
// `reuse_grace_ns` rather than trampling it -- otherwise a saturating
// producer (offer rate >> drain rate) recycles every live record before
// its packet completes and the histograms starve of samples exactly when
// overload control needs them.  Slots held past the grace (a leaked
// record whose packet died on an unaccounted path) are reclaimed by the
// old trample-and-detect rule: the stale completion fails its tag check
// and is counted lost; it can never corrupt the histograms.  Every record
// field is a relaxed atomic, so concurrent stale writers are benign races
// by construction (TSan-clean).
//
// Sampling is deterministic 1-in-N per flow per lane: lane-local per-flow
// offer counters, sample when count % N == 0.  N == 1 traces everything
// (tests); the runtime default is 64, budgeted at <= 5% pps overhead
// (measured by bench/rt_throughput's latency_attribution cells).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "flow/ids.hpp"
#include "telemetry/metrics.hpp"
#include "util/latency_histogram.hpp"

namespace midrr::telemetry {

/// The measured stages, in pipeline order.
enum class Stage : std::uint8_t { kRing = 0, kQueue = 1, kEgress = 2 };
inline constexpr std::size_t kStageCount = 3;

const char* to_string(Stage stage);

class StageTracer {
 public:
  struct Options {
    /// Sample every Nth packet of each flow (per lane); >= 1.
    std::uint32_t sample_every = 64;
    /// In-flight records per producer lane; recycling a slot whose packet
    /// is still in flight loses that one sample (counted), so this bounds
    /// lanes * slots concurrent traced packets.
    std::uint32_t slots_per_lane = 1024;
    /// A claim finding its slot held by a sample younger than this skips
    /// (counted) instead of recycling the live record; older holds are
    /// presumed leaked and trampled as before.  0 restores unconditional
    /// recycling.
    std::uint64_t reuse_grace_ns = 100'000'000;
  };

  /// `lanes` = producer count (one claim cursor each); `ifaces` sizes the
  /// per-interface histogram grids; `max_flows` bounds the per-lane
  /// sampling counters (flow ids are arena-bounded upstream).
  StageTracer(std::size_t lanes, std::size_t ifaces, std::size_t max_flows,
              Options options);

  StageTracer(const StageTracer&) = delete;
  StageTracer& operator=(const StageTracer&) = delete;

  // --- Producer side (lane-owned; exactly one thread per lane) -----------

  /// Decides whether this flow's next packet is sampled; claims a record
  /// and returns its non-zero trace tag if so, 0 (untraced) otherwise.
  std::uint64_t maybe_begin(std::size_t lane, FlowId flow,
                            std::uint64_t t_offer);

  // --- Stage writers (any thread; no-ops on a recycled tag) --------------

  void stamp_fanin(std::uint64_t tag, std::uint64_t t) {
    stamp(tag, t, /*field=*/1);
  }
  void stamp_dequeue(std::uint64_t tag, std::uint64_t t) {
    stamp(tag, t, /*field=*/2);
  }

  // --- Completion (the worker that resolved the packet's egress) ---------

  /// Validates the record against `t_offer_expected` (the packet's own
  /// enqueue stamp) and, if it survived, folds all four durations into
  /// `iface`'s histograms.  Returns true with `*e2e_ns` set on success;
  /// false (counted lost) when the record was recycled or its stamps are
  /// incoherent.  `*flow_out` (optional) receives the GLOBAL flow id the
  /// sample was claimed for at maybe_begin -- the authoritative identity
  /// for class attribution, since the packet's own flow field is
  /// rewritten to a shard-local id at fan-in.
  bool complete(std::uint64_t tag, std::uint64_t t_offer_expected,
                std::uint64_t t_sent, IfaceId iface, std::uint64_t* e2e_ns,
                FlowId* flow_out = nullptr);

  /// The traced packet died before egress (shed, straggler, io drop...).
  /// Counts the death and releases the record (if still this sample's) so
  /// the lane can re-claim the slot immediately.
  void drop_sample(std::uint64_t tag) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    release(tag);
  }

  // --- Exposition ---------------------------------------------------------

  /// Registers midrr_stage_* series: per-(iface, stage) latency histograms,
  /// per-iface e2e histograms, sample outcome counters, and the
  /// reconciliation error gauge.  `iface_names` indexes by IfaceId.
  void register_metrics(MetricsRegistry& registry,
                        const std::vector<std::string>& iface_names);

  // --- Introspection (tests, reports) -------------------------------------

  std::uint32_t sample_every() const { return options_.sample_every; }
  std::uint64_t started() const {
    return started_.load(std::memory_order_relaxed);
  }
  std::uint64_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }
  std::uint64_t lost() const { return lost_.load(std::memory_order_relaxed); }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::uint64_t skipped() const {
    return skipped_.load(std::memory_order_relaxed);
  }

  const LatencyHistogram& stage_grid(IfaceId iface, Stage stage) const {
    return stats_[iface]->stage[static_cast<std::size_t>(stage)];
  }
  const LatencyHistogram& e2e_grid(IfaceId iface) const {
    return stats_[iface]->e2e;
  }

  /// Sum over interfaces of (ring + queue + egress) histogram sums minus
  /// the e2e sums, as a fraction of the e2e sum.  0 when the invariant
  /// holds (it always should -- the stages partition e2e by construction);
  /// exported so a regression is visible on any dashboard.
  double reconciliation_error() const;

 private:
  /// One in-flight sample.  Fields are relaxed atomics so stale writers
  /// (a recycled slot's old packet) are benign; coherence is enforced at
  /// completion, not at write time.
  struct Record {
    std::atomic<std::uint64_t> tag{0};
    std::atomic<std::uint64_t> t_offer{0};
    std::atomic<std::uint64_t> t_fanin{0};
    std::atomic<std::uint64_t> t_dequeue{0};
    std::atomic<FlowId> flow{kInvalidFlow};  ///< global id, set at claim
  };

  struct Lane {
    std::vector<std::uint32_t> flow_count;  ///< per-flow offers seen
    std::vector<std::uint32_t> generation;  ///< per local slot, starts at 1
    std::uint32_t cursor = 0;               ///< round-robin local slot
  };

  struct IfaceStats {
    LatencyHistogram stage[kStageCount];
    LatencyHistogram e2e;
    /// Optional mirrors into a MetricsRegistry (same samples, rendered as
    /// Prometheus histograms); null until register_metrics.
    Histogram* stage_hist[kStageCount] = {nullptr, nullptr, nullptr};
    Histogram* e2e_hist = nullptr;
  };

  void stamp(std::uint64_t tag, std::uint64_t t, unsigned field);
  /// Frees `tag`'s record if it is still the live occupant (a CAS, so a
  /// slot already re-claimed by the lane is left alone).
  void release(std::uint64_t tag);

  Options options_;
  std::vector<Record> records_;  ///< [lane * slots_per_lane + local]
  std::vector<Lane> lanes_;
  std::vector<std::unique_ptr<IfaceStats>> stats_;  ///< by IfaceId
  std::atomic<std::uint64_t> started_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> lost_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> skipped_{0};
};

}  // namespace midrr::telemetry
