#include "telemetry/flight_recorder.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

namespace midrr::telemetry {

const char* to_string(FlightCategory category) {
  switch (category) {
    case FlightCategory::kRuntime: return "runtime";
    case FlightCategory::kIo: return "io";
    case FlightCategory::kFault: return "fault";
    case FlightCategory::kSupervisor: return "supervisor";
    case FlightCategory::kHealth: return "health";
  }
  return "?";
}

const char* to_string(FlightCode code) {
  switch (code) {
    case FlightCode::kWorkerStart: return "worker_start";
    case FlightCode::kWorkerExit: return "worker_exit";
    case FlightCode::kWorkerRestart: return "worker_restart";
    case FlightCode::kShedDrops: return "shed_drops";
    case FlightCode::kStragglerDrops: return "straggler_drops";
    case FlightCode::kTailDrops: return "tail_drops";
    case FlightCode::kIoPushback: return "io_pushback";
    case FlightCode::kIoFlushDrops: return "io_flush_drops";
    case FlightCode::kFaultScale: return "fault_scale";
    case FlightCode::kLinkSuspect: return "link_suspect";
    case FlightCode::kLinkDead: return "link_dead";
    case FlightCode::kLinkHealthy: return "link_healthy";
    case FlightCode::kHealthDegraded: return "health_degraded";
    case FlightCode::kHealthRecovered: return "health_recovered";
    case FlightCode::kConservationTrip: return "conservation_trip";
    case FlightCode::kNote: return "note";
  }
  return "?";
}

void FlightLog::snapshot(std::vector<FlightEvent>& out) const {
  const std::uint64_t h = head_.load(std::memory_order_acquire);
  const std::uint64_t cap = slots_.size();
  const std::uint64_t first = h > cap ? h - cap : 0;
  struct Raw {
    std::uint64_t index, t_ns, a, b;
    std::uint32_t meta;
  };
  std::vector<Raw> raw;
  raw.reserve(static_cast<std::size_t>(h - first));
  for (std::uint64_t i = first; i < h; ++i) {
    const Slot& slot = slots_[i % cap];
    Raw r;
    r.index = i;
    r.t_ns = slot.t_ns.load(std::memory_order_relaxed);
    r.meta = slot.meta.load(std::memory_order_relaxed);
    r.a = slot.a.load(std::memory_order_relaxed);
    r.b = slot.b.load(std::memory_order_relaxed);
    raw.push_back(r);
  }
  // Anything the writer RESERVED past our copy may have overwritten the
  // slots we read: entry i is torn-suspect when the writer reached logical
  // index i + cap or later.  reserve_ is bumped before the slot write, so
  // this check is conservative (may discard an intact entry, never keeps a
  // torn one).
  const std::uint64_t reserved = reserve_.load(std::memory_order_acquire);
  for (const Raw& r : raw) {
    if (reserved > r.index + cap) continue;  // overwritten mid-copy
    FlightEvent event;
    event.t_ns = r.t_ns;
    event.category = static_cast<FlightCategory>(r.meta >> 16);
    event.code = static_cast<FlightCode>(r.meta & 0xffffu);
    event.writer = id_;
    event.a = r.a;
    event.b = r.b;
    out.push_back(event);
  }
}

FlightRecorder::FlightRecorder(std::size_t per_writer_capacity)
    : capacity_(per_writer_capacity == 0 ? 1 : per_writer_capacity) {}

FlightLog& FlightRecorder::add_writer(std::string name) {
  logs_.push_back(std::unique_ptr<FlightLog>(new FlightLog(
      capacity_, static_cast<std::uint32_t>(logs_.size()), std::move(name))));
  return *logs_.back();
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> events;
  for (const auto& log : logs_) log->snapshot(events);
  std::stable_sort(events.begin(), events.end(),
                   [](const FlightEvent& x, const FlightEvent& y) {
                     return x.t_ns < y.t_ns;
                   });
  return events;
}

std::string FlightRecorder::dump_json(const std::string& reason,
                                      std::uint64_t now_ns) const {
  const std::vector<FlightEvent> events = snapshot();
  std::ostringstream out;
  out << "{\"reason\":\"" << reason << "\",\"dumped_at_ns\":" << now_ns
      << ",\"writers\":[";
  for (std::size_t i = 0; i < logs_.size(); ++i) {
    if (i != 0) out << ',';
    out << '"' << logs_[i]->name() << '"';
  }
  out << "],\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FlightEvent& e = events[i];
    if (i != 0) out << ',';
    out << "\n{\"t_ns\":" << e.t_ns << ",\"writer\":\""
        << logs_[e.writer]->name() << "\",\"category\":\""
        << to_string(e.category) << "\",\"code\":\"" << to_string(e.code)
        << "\",\"a\":" << e.a << ",\"b\":" << e.b << "}";
  }
  out << "\n]}\n";
  return out.str();
}

bool FlightRecorder::dump_to_file(const std::string& path,
                                  const std::string& reason,
                                  std::uint64_t now_ns) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << dump_json(reason, now_ns);
  out.flush();
  if (!out) return false;
  dumps_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

// --- Fatal-signal path ----------------------------------------------------

namespace {

/// Handler state, written once at arm time.  Plain (not atomic) because
/// arming happens-before any signal the handler is installed for.
FlightRecorder* g_fatal_recorder = nullptr;
int g_fatal_fd = -1;

/// write(2) a NUL-terminated literal; async-signal-safe.
void sig_write(int fd, const char* s) {
  std::size_t n = 0;
  while (s[n] != '\0') ++n;
  ssize_t rc = ::write(fd, s, n);
  (void)rc;
}

/// write(2) an unsigned integer in decimal; async-signal-safe.
void sig_write_u64(int fd, std::uint64_t v) {
  char buf[24];
  std::size_t i = sizeof(buf);
  do {
    buf[--i] = static_cast<char>('0' + (v % 10));
    v /= 10;
  } while (v != 0);
  ssize_t rc = ::write(fd, buf + i, sizeof(buf) - i);
  (void)rc;
}

extern "C" void fatal_dump_handler(int signo) {
  if (g_fatal_recorder != nullptr && g_fatal_fd >= 0) {
    g_fatal_recorder->write_signal_dump(g_fatal_fd, signo);
    // fsync is async-signal-safe; make the dump durable before the default
    // disposition kills the process.
    ::fsync(g_fatal_fd);
  }
  // Handlers were installed with SA_RESETHAND: re-raising takes the
  // default action (core/terminate) so the exit status stays honest.
  ::raise(signo);
}

}  // namespace

void FlightRecorder::write_signal_dump(int fd, int signo) const {
  // Only write(2), relaxed atomic loads, and stack buffers below: this runs
  // inside a fatal-signal handler.  Events are emitted per writer in ring
  // order with integer category/code -- a consumer sorts by t_ns.
  sig_write(fd, "{\"reason\":\"fatal_signal\",\"signal\":");
  sig_write_u64(fd, static_cast<std::uint64_t>(signo));
  sig_write(fd, ",\"events\":[");
  bool first = true;
  for (const auto& log : logs_) {
    const std::uint64_t h = log->head_.load(std::memory_order_acquire);
    const std::uint64_t cap = log->slots_.size();
    const std::uint64_t start = h > cap ? h - cap : 0;
    for (std::uint64_t i = start; i < h; ++i) {
      const FlightLog::Slot& slot = log->slots_[i % cap];
      const std::uint32_t meta = slot.meta.load(std::memory_order_relaxed);
      if (!first) sig_write(fd, ",");
      first = false;
      sig_write(fd, "\n{\"t_ns\":");
      sig_write_u64(fd, slot.t_ns.load(std::memory_order_relaxed));
      sig_write(fd, ",\"writer\":");
      sig_write_u64(fd, log->id_);
      sig_write(fd, ",\"category\":");
      sig_write_u64(fd, meta >> 16);
      sig_write(fd, ",\"code\":");
      sig_write_u64(fd, meta & 0xffffu);
      sig_write(fd, ",\"a\":");
      sig_write_u64(fd, slot.a.load(std::memory_order_relaxed));
      sig_write(fd, ",\"b\":");
      sig_write_u64(fd, slot.b.load(std::memory_order_relaxed));
      sig_write(fd, "}");
    }
  }
  sig_write(fd, "\n]}\n");
}

bool FlightRecorder::arm_fatal_dump(const std::string& path) {
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) return false;
  if (g_fatal_fd >= 0) ::close(g_fatal_fd);
  g_fatal_fd = fd;
  g_fatal_recorder = this;
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = fatal_dump_handler;
  action.sa_flags = static_cast<int>(SA_RESETHAND);
  sigemptyset(&action.sa_mask);
  const int signals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT};
  for (const int signo : signals) ::sigaction(signo, &action, nullptr);
  return true;
}

FlightRecorder::~FlightRecorder() {
  if (g_fatal_recorder == this) {
    g_fatal_recorder = nullptr;
    if (g_fatal_fd >= 0) ::close(g_fatal_fd);
    g_fatal_fd = -1;
  }
}

}  // namespace midrr::telemetry
