// Build provenance, baked in at configure time so every artifact (bench
// JSON, CI logs, a scraped /metrics page) is attributable to an exact
// source state and toolchain.  Exposed three ways: a struct for tools, an
// info-gauge (midrr_rt_build_info, value 1, facts as labels -- the
// Prometheus convention for static metadata), and /buildinfo JSON.
#pragma once

#include <string>

#include "telemetry/metrics.hpp"

namespace midrr::telemetry {

struct BuildInfo {
  const char* git_sha;     ///< short sha, "unknown" outside a checkout
  const char* git_dirty;   ///< "clean" | "dirty" | "unknown"
  const char* compiler;    ///< e.g. "GNU 13.2.0"
  const char* build_type;  ///< CMAKE_BUILD_TYPE
  const char* sanitizers;  ///< comma-joined from CXX flags, "none" if clean
  const char* uring;       ///< "on" | "off" (MIDRR_WITH_URING)
};

/// The values configure_file stamped into build_info.cpp.
const BuildInfo& build_info();

/// Registers the `midrr_rt_build_info` info-gauge (constant 1).
void register_build_info(MetricsRegistry& registry);

/// JSON object for the /buildinfo route.
std::string build_info_json();

}  // namespace midrr::telemetry
