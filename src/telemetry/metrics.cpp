#include "telemetry/metrics.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace midrr::telemetry {

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name.front())) return false;
  return std::all_of(name.begin(), name.end(), [&](char c) {
    return head(c) || (c >= '0' && c <= '9');
  });
}

bool valid_label_name(const std::string& name) {
  return valid_metric_name(name) && name.find(':') == std::string::npos &&
         name.rfind("__", 0) != 0;
}

LabelSet sorted(LabelSet labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

struct MetricsRegistry::Child {
  LabelSet labels;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
  std::function<double()> callback;  // callback series have no storage
};

struct MetricsRegistry::Family {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::vector<std::unique_ptr<Child>> children;
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Family& MetricsRegistry::family_locked(const std::string& name,
                                                        const std::string& help,
                                                        MetricKind kind) {
  MIDRR_REQUIRE(valid_metric_name(name), "invalid metric name");
  for (auto& family : families_) {
    if (family->name == name) {
      MIDRR_REQUIRE(family->kind == kind,
                    "metric re-registered with a different kind");
      return *family;
    }
  }
  auto family = std::make_unique<Family>();
  family->name = name;
  family->help = help;
  family->kind = kind;
  families_.push_back(std::move(family));
  return *families_.back();
}

MetricsRegistry::Child* MetricsRegistry::find_child_locked(
    Family& family, const LabelSet& labels) {
  for (auto& child : family.children) {
    if (child->labels == labels) return child.get();
  }
  return nullptr;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help, LabelSet labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = family_locked(name, help, MetricKind::kCounter);
  labels = sorted(std::move(labels));
  if (Child* existing = find_child_locked(family, labels)) {
    MIDRR_REQUIRE(existing->counter != nullptr,
                  "series registered as a callback, not a handle");
    return *existing->counter;
  }
  for (const auto& [k, v] : labels) {
    (void)v;
    MIDRR_REQUIRE(valid_label_name(k), "invalid label name");
  }
  auto child = std::make_unique<Child>();
  child->labels = std::move(labels);
  child->counter = std::make_unique<Counter>();
  family.children.push_back(std::move(child));
  return *family.children.back()->counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              LabelSet labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = family_locked(name, help, MetricKind::kGauge);
  labels = sorted(std::move(labels));
  if (Child* existing = find_child_locked(family, labels)) {
    MIDRR_REQUIRE(existing->gauge != nullptr,
                  "series registered as a callback, not a handle");
    return *existing->gauge;
  }
  for (const auto& [k, v] : labels) {
    (void)v;
    MIDRR_REQUIRE(valid_label_name(k), "invalid label name");
  }
  auto child = std::make_unique<Child>();
  child->labels = std::move(labels);
  child->gauge = std::make_unique<Gauge>();
  family.children.push_back(std::move(child));
  return *family.children.back()->gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      LabelSet labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = family_locked(name, help, MetricKind::kHistogram);
  labels = sorted(std::move(labels));
  if (Child* existing = find_child_locked(family, labels)) {
    MIDRR_REQUIRE(existing->histogram != nullptr,
                  "series registered as a callback, not a handle");
    return *existing->histogram;
  }
  for (const auto& [k, v] : labels) {
    (void)v;
    MIDRR_REQUIRE(valid_label_name(k), "invalid label name");
  }
  auto child = std::make_unique<Child>();
  child->labels = std::move(labels);
  child->histogram = std::make_unique<Histogram>();
  family.children.push_back(std::move(child));
  return *family.children.back()->histogram;
}

void MetricsRegistry::counter_fn(const std::string& name,
                                 const std::string& help, LabelSet labels,
                                 std::function<double()> fn) {
  MIDRR_REQUIRE(fn != nullptr, "callback series needs a callable");
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = family_locked(name, help, MetricKind::kCounter);
  labels = sorted(std::move(labels));
  if (Child* existing = find_child_locked(family, labels)) {
    existing->callback = std::move(fn);  // re-registration replaces
    return;
  }
  auto child = std::make_unique<Child>();
  child->labels = std::move(labels);
  child->callback = std::move(fn);
  family.children.push_back(std::move(child));
}

void MetricsRegistry::gauge_fn(const std::string& name, const std::string& help,
                               LabelSet labels, std::function<double()> fn) {
  MIDRR_REQUIRE(fn != nullptr, "callback series needs a callable");
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = family_locked(name, help, MetricKind::kGauge);
  labels = sorted(std::move(labels));
  if (Child* existing = find_child_locked(family, labels)) {
    existing->callback = std::move(fn);
    return;
  }
  auto child = std::make_unique<Child>();
  child->labels = std::move(labels);
  child->callback = std::move(fn);
  family.children.push_back(std::move(child));
}

std::vector<double> histogram_ladder() {
  // Powers of 4 from 256 (2^8) through 4^16 = 2^32 (~4.3e9): 13 boundaries
  // spanning sub-microsecond to multi-second nanosecond values, aligned to
  // the grid's power-of-two octaves so no fine bucket straddles a boundary.
  std::vector<double> ladder;
  for (double b = 256.0; b <= 4294967296.0; b *= 4.0) ladder.push_back(b);
  return ladder;
}

std::vector<std::pair<double, std::uint64_t>> cumulative_buckets(
    const LatencyHistogram& grid) {
  const std::vector<double> ladder = histogram_ladder();
  std::vector<std::pair<double, std::uint64_t>> out;
  out.reserve(ladder.size());
  // One racy-but-single pass over the fine grid, accumulated per boundary.
  std::vector<std::uint64_t> per_boundary(ladder.size() + 1, 0);
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    const std::uint64_t c = grid.bucket_count(i);
    if (c == 0) continue;
    const double upper = LatencyHistogram::upper_bound(i);
    std::size_t slot = ladder.size();  // overflow -> +Inf only
    for (std::size_t b = 0; b < ladder.size(); ++b) {
      if (upper <= ladder[b]) {
        slot = b;
        break;
      }
    }
    per_boundary[slot] += c;
  }
  std::uint64_t running = 0;
  for (std::size_t b = 0; b < ladder.size(); ++b) {
    running += per_boundary[b];
    out.emplace_back(ladder[b], running);
  }
  return out;
}

std::vector<FamilySnapshot> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FamilySnapshot> out;
  out.reserve(families_.size());
  for (const auto& family : families_) {
    FamilySnapshot fs;
    fs.name = family->name;
    fs.help = family->help;
    fs.kind = family->kind;
    fs.samples.reserve(family->children.size());
    for (const auto& child : family->children) {
      SampleSnapshot s;
      s.labels = child->labels;
      if (child->callback) {
        s.value = child->callback();
      } else if (child->counter != nullptr) {
        s.value = static_cast<double>(child->counter->value());
      } else if (child->gauge != nullptr) {
        s.value = child->gauge->value();
      } else if (child->histogram != nullptr) {
        const LatencyHistogram& grid = child->histogram->grid();
        s.buckets = cumulative_buckets(grid);
        // Totals re-read the grid; racing writers can make count exceed
        // the last cumulative bucket, which exposition handles (the +Inf
        // bucket is rendered from `count`, so cumulativity holds).
        s.count = grid.count();
        s.sum = static_cast<double>(grid.sum_raw());
      }
      fs.samples.push_back(std::move(s));
    }
    out.push_back(std::move(fs));
  }
  return out;
}

std::size_t MetricsRegistry::series_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& family : families_) n += family->children.size();
  return n;
}

}  // namespace midrr::telemetry
