#include "telemetry/chrome_trace.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

namespace midrr::telemetry {

namespace {

/// SimTime ns -> trace-format microseconds, preserving sub-us precision.
double us(SimTime ns) { return static_cast<double>(ns) / 1e3; }

std::string escape_json(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void ChromeTraceBuilder::thread_name(std::uint32_t pid, std::uint32_t tid,
                                     const std::string& name) {
  std::ostringstream e;
  e << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
    << ",\"tid\":" << tid << ",\"args\":{\"name\":\"" << escape_json(name)
    << "\"}}";
  events_.push_back(e.str());
}

void ChromeTraceBuilder::set_process_name(std::uint32_t pid,
                                          const std::string& name) {
  std::ostringstream e;
  e << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
    << ",\"args\":{\"name\":\"" << escape_json(name) << "\"}}";
  events_.push_back(e.str());
}

void ChromeTraceBuilder::add_recorder(const TraceRecorder& recorder,
                                      std::uint32_t pid) {
  // One track per interface; drain events (no interface) go to a track of
  // their own so the per-interface lanes stay clean.
  constexpr std::uint32_t kDrainTid = 9999;
  std::vector<bool> named;
  bool drain_named = false;
  SimTime last_at = 0;
  for (const TraceRecorder::Entry& entry : recorder.entries()) {
    if (entry.at > last_at) last_at = entry.at;
    std::uint32_t tid;
    if (entry.iface == kInvalidIface) {
      tid = kDrainTid;
      if (!drain_named) {
        thread_name(pid, kDrainTid, "flow drains");
        drain_named = true;
      }
    } else {
      tid = static_cast<std::uint32_t>(entry.iface);
      if (named.size() <= entry.iface) named.resize(entry.iface + 1, false);
      if (!named[entry.iface]) {
        thread_name(pid, tid, "iface " + std::to_string(entry.iface));
        named[entry.iface] = true;
      }
    }
    std::ostringstream e;
    e << "{\"name\":\"" << to_string(entry.event) << " flow" << entry.flow
      << "\",\"cat\":\"sched\",\"ph\":\"i\",\"s\":\"t\",\"ts\":"
      << us(entry.at) << ",\"pid\":" << pid << ",\"tid\":" << tid
      << ",\"args\":{\"flow\":" << entry.flow;
    if (entry.event == TraceRecorder::Event::kGrant) {
      e << ",\"deficit_after\":" << entry.value;
    } else if (entry.event == TraceRecorder::Event::kSend) {
      e << ",\"bytes\":" << entry.value;
    }
    e << "}}";
    events_.push_back(e.str());
  }
  if (recorder.overflowed() > 0) {
    // The metadata record survives for tooling, but viewers do not render
    // "ph":"M" on the timeline -- a truncated capture used to look merely
    // sparse.  The global instant below puts a visible marker at the time
    // of the last retained event, where the missing history would end.
    std::ostringstream meta;
    meta << "{\"name\":\"trace_truncated\",\"ph\":\"M\",\"pid\":" << pid
         << ",\"args\":{\"events_lost\":" << recorder.overflowed() << "}}";
    events_.push_back(meta.str());
    std::ostringstream e;
    e << "{\"name\":\"trace_overflow\",\"cat\":\"sched\",\"ph\":\"i\","
      << "\"s\":\"g\",\"ts\":" << us(last_at) << ",\"pid\":" << pid
      << ",\"tid\":0,\"args\":{\"events_lost\":" << recorder.overflowed()
      << "}}";
    events_.push_back(e.str());
  }
}

void ChromeTraceBuilder::add_spans(const std::vector<TraceSpan>& spans,
                                   std::uint32_t pid) {
  std::vector<bool> named;
  for (const TraceSpan& span : spans) {
    if (named.size() <= span.worker) named.resize(span.worker + 1, false);
    if (!named[span.worker]) {
      thread_name(pid, span.worker, "worker " + std::to_string(span.worker));
      named[span.worker] = true;
    }
    std::ostringstream e;
    const double dur = us(span.end_ns - span.begin_ns);
    e << "{\"name\":\"";
    if (span.kind == TraceSpan::Kind::kFanIn) {
      e << "fan-in shard" << span.shard;
    } else {
      e << "drain if" << span.iface;
    }
    e << "\",\"cat\":\"runtime\",\"ph\":\"X\",\"ts\":" << us(span.begin_ns)
      << ",\"dur\":" << (dur > 0 ? dur : 0.001) << ",\"pid\":" << pid
      << ",\"tid\":" << span.worker << ",\"args\":{\"packets\":"
      << span.packets << ",\"bytes\":" << span.bytes;
    if (span.kind == TraceSpan::Kind::kFanIn) {
      e << ",\"shard\":" << span.shard;
    } else {
      e << ",\"iface\":" << span.iface;
    }
    e << "}}";
    events_.push_back(e.str());
  }
}

void ChromeTraceBuilder::add_counter(std::uint32_t pid, const std::string& name,
                                     SimTime at, double value) {
  std::ostringstream e;
  e << "{\"name\":\"" << escape_json(name) << "\",\"ph\":\"C\",\"ts\":"
    << us(at) << ",\"pid\":" << pid << ",\"args\":{\"value\":" << value
    << "}}";
  events_.push_back(e.str());
}

void ChromeTraceBuilder::add_instant(std::uint32_t pid, std::uint32_t tid,
                                     const std::string& name, SimTime at) {
  std::ostringstream e;
  e << "{\"name\":\"" << escape_json(name)
    << "\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"p\",\"ts\":" << us(at)
    << ",\"pid\":" << pid << ",\"tid\":" << tid << "}";
  events_.push_back(e.str());
}

std::string ChromeTraceBuilder::json() const {
  std::string out = "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (i != 0) out += ',';
    out += '\n';
    out += events_[i];
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

void ChromeTraceBuilder::write(std::ostream& out) const { out << json(); }

}  // namespace midrr::telemetry
