// Prometheus text exposition format (version 0.0.4) for a MetricsRegistry
// snapshot: `# HELP` / `# TYPE` headers, escaped label values, histograms
// as cumulative `_bucket{le=...}` series plus `_sum` / `_count`.
#pragma once

#include <string>
#include <vector>

#include "telemetry/metrics.hpp"

namespace midrr::telemetry {

/// The Content-Type the /metrics endpoint must serve.
inline constexpr const char* kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

/// Renders one family snapshot (primarily for tests).
std::string render_prometheus(const FamilySnapshot& family);

/// Renders the full exposition page for a registry.
std::string render_prometheus(const MetricsRegistry& registry);

/// Escapes a label value per the exposition format (\\, \", \n).
std::string escape_label_value(const std::string& value);

}  // namespace midrr::telemetry
