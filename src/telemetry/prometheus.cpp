#include "telemetry/prometheus.hpp"

#include <cmath>
#include <sstream>

namespace midrr::telemetry {

namespace {

const char* type_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

/// Prometheus values are floats, but integral values render cleaner (and
/// counters stay exact) without a forced decimal point.
std::string fmt_value(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::ostringstream out;
    out << static_cast<long long>(v);
    return out.str();
  }
  std::ostringstream out;
  out.precision(12);
  out << v;
  return out.str();
}

void render_labels(std::ostringstream& out, const LabelSet& labels,
                   const char* extra_key = nullptr,
                   const std::string& extra_value = {}) {
  if (labels.empty() && extra_key == nullptr) return;
  out << '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out << ',';
    first = false;
    out << k << "=\"" << escape_label_value(v) << '"';
  }
  if (extra_key != nullptr) {
    if (!first) out << ',';
    out << extra_key << "=\"" << extra_value << '"';
  }
  out << '}';
}

}  // namespace

std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string render_prometheus(const FamilySnapshot& family) {
  std::ostringstream out;
  if (!family.help.empty()) {
    out << "# HELP " << family.name << ' ' << family.help << '\n';
  }
  out << "# TYPE " << family.name << ' ' << type_name(family.kind) << '\n';
  for (const SampleSnapshot& s : family.samples) {
    if (family.kind == MetricKind::kHistogram) {
      for (const auto& [le, cumulative] : s.buckets) {
        out << family.name << "_bucket";
        render_labels(out, s.labels, "le", fmt_value(le));
        out << ' ' << cumulative << '\n';
      }
      out << family.name << "_bucket";
      render_labels(out, s.labels, "le", "+Inf");
      out << ' ' << s.count << '\n';
      out << family.name << "_sum";
      render_labels(out, s.labels);
      out << ' ' << fmt_value(s.sum) << '\n';
      out << family.name << "_count";
      render_labels(out, s.labels);
      out << ' ' << s.count << '\n';
    } else {
      out << family.name;
      render_labels(out, s.labels);
      out << ' ' << fmt_value(s.value) << '\n';
    }
  }
  return out.str();
}

std::string render_prometheus(const MetricsRegistry& registry) {
  std::string out;
  for (const FamilySnapshot& family : registry.snapshot()) {
    out += render_prometheus(family);
  }
  return out;
}

}  // namespace midrr::telemetry
