// Prometheus text-exposition linter (format 0.0.4): the check half of
// prometheus.cpp's render half.  CI scrapes a live /metrics and fails on
// any issue, so a renderer regression (broken escaping, a histogram whose
// cumulative buckets regress, a family emitted twice) is caught where it
// bites -- on the wire, not in a unit test of the writer.
//
// Checks, per line and per family:
//   * metric names match [a-zA-Z_:][a-zA-Z0-9_:]*, label names
//     [a-zA-Z_][a-zA-Z0-9_]* and never start "__";
//   * every sample follows a # TYPE for its family (histogram samples may
//     use the _bucket/_sum/_count suffixes), TYPE is one of the known
//     kinds and appears once, HELP at most once and before samples;
//   * families are contiguous (no interleaving) and no (name, labels)
//     sample repeats;
//   * label values use only the \\ \" \n escapes, values parse as floats
//     (+Inf/-Inf/NaN accepted);
//   * histograms: le ascending, cumulative counts non-decreasing, +Inf
//     bucket present and equal to the _count sample, _sum/_count present.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace midrr::telemetry {

struct LintIssue {
  std::size_t line = 0;  ///< 1-based; 0 = end-of-input (family-level) check
  std::string message;
};

/// Lints one exposition page.  Empty result = clean.
std::vector<LintIssue> lint_prometheus(const std::string& text);

}  // namespace midrr::telemetry
