// Per-class SLO engine: declared latency targets, multi-window burn rate.
//
// An SLO here is "p99 latency of class C stays under T" with an implied
// error budget: at p99, 1% of packets may exceed T.  The engine consumes
// the stage tracer's sampled end-to-end latencies (no extra clock reads),
// bins them into fixed-width epoch buckets per class, and reports the
// burn rate over a short and a long trailing window:
//
//   burn = (violating fraction in window) / error_budget
//
// burn == 1 means the class is spending budget exactly as fast as the SLO
// allows; > 1 under sustained overload pages, ~0 when idle.  Two windows
// give the classic fast-burn / slow-burn pair without storing per-sample
// state: each bucket is (epoch tag, samples, violations) and a window is
// the sum of the buckets whose tag falls inside it.
//
// Concurrency: record() is wait-free (relaxed atomics).  Epoch recycling
// is a tag-CAS where the winner zeroes the bucket; a racing recorder can
// slip a sample in between CAS and zero and lose it.  That bias is bounded
// by the writer count per bucket flip and irrelevant at burn-rate
// granularity -- documented, not defended.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "flow/ids.hpp"
#include "telemetry/metrics.hpp"
#include "util/time.hpp"

namespace midrr::telemetry {

/// One declared objective, as parsed from `--slo class=NAME:p99_ms=X`.
struct SloSpec {
  std::string class_name;
  std::uint64_t p99_target_ns = 0;
};

/// Parses "class=NAME:p99_ms=X" (X a positive decimal, milliseconds).
/// Returns false (out untouched) on malformed input.
bool parse_slo_spec(const std::string& text, SloSpec* out);

class SloEngine {
 public:
  struct Options {
    std::uint64_t bucket_ns = kSecond;     ///< epoch-bucket width
    std::uint32_t short_window_buckets = 5;   ///< fast-burn window
    std::uint32_t long_window_buckets = 60;   ///< slow-burn window
    double error_budget = 0.01;  ///< p99 => 1% of packets may violate
  };

  /// `max_classes` bounds the ClassId -> objective binding table.
  SloEngine(std::vector<SloSpec> specs, std::size_t max_classes,
            Options options);
  SloEngine(std::vector<SloSpec> specs, std::size_t max_classes);

  SloEngine(const SloEngine&) = delete;
  SloEngine& operator=(const SloEngine&) = delete;

  /// Binds a runtime ClassId to the objective declared for `class_name`.
  /// Returns false when no spec matches.  Bindings may be installed or
  /// changed while recorders run (the table is atomic).
  bool bind_class(ClassId cls, const std::string& class_name);

  // --- Hot path (any thread) ----------------------------------------------

  /// Accounts one sampled end-to-end latency for `cls`.  No-op when the
  /// class is unbound.
  void record(ClassId cls, std::uint64_t latency_ns, std::uint64_t now_ns);

  // --- Read side -----------------------------------------------------------

  /// Burn rate over the trailing `window_buckets` epochs ending at now.
  /// 0 when the window holds no samples.
  double burn_rate(std::size_t slo, std::uint32_t window_buckets,
                   std::uint64_t now_ns) const;
  double short_burn(std::size_t slo, std::uint64_t now_ns) const {
    return burn_rate(slo, options_.short_window_buckets, now_ns);
  }
  double long_burn(std::size_t slo, std::uint64_t now_ns) const {
    return burn_rate(slo, options_.long_window_buckets, now_ns);
  }

  const std::vector<SloSpec>& specs() const { return specs_; }
  const Options& options() const { return options_; }
  std::uint64_t samples(std::size_t slo) const {
    return states_[slo]->samples.load(std::memory_order_relaxed);
  }
  std::uint64_t violations(std::size_t slo) const {
    return states_[slo]->violations.load(std::memory_order_relaxed);
  }

  /// Registers midrr_slo_* series.  `now_fn` supplies the clock burn-rate
  /// gauges are evaluated against at scrape time (the runtime's now_ns);
  /// it must be thread-safe and outlive the registry.
  void register_metrics(MetricsRegistry& registry,
                        std::function<std::uint64_t()> now_fn);

  /// {"slos": [...]} for the /slo route: per objective, the target, the
  /// lifetime sample/violation totals, and both window burn rates at
  /// `now_ns`.
  std::string json(std::uint64_t now_ns) const;

 private:
  struct Bucket {
    std::atomic<std::uint64_t> epoch{~0ULL};  ///< absolute bucket index
    std::atomic<std::uint64_t> samples{0};
    std::atomic<std::uint64_t> violations{0};
  };

  struct State {
    std::vector<Bucket> ring;
    std::atomic<std::uint64_t> samples{0};     ///< lifetime
    std::atomic<std::uint64_t> violations{0};  ///< lifetime
    explicit State(std::size_t buckets) : ring(buckets) {}
  };

  Options options_;
  std::vector<SloSpec> specs_;
  std::vector<std::unique_ptr<State>> states_;       ///< by objective index
  std::vector<std::atomic<std::int32_t>> class_to_slo_;  ///< by ClassId, -1 unbound
};

}  // namespace midrr::telemetry
