// Fairness-drift gauges: Theorem 2 as a live SLO.
//
// A background sampler periodically captures the live configuration
// (Pi, phi, C) and cumulative service counters from a FairnessSource (the
// runtime implements it from its RCU control-plane snapshot), runs the
// weighted max-min reference solver over that instant's topology, and
// compares each flow's MEASURED rate over the last window against the rate
// the convex program says it should get.  The exported series:
//
//   midrr_fairness_rate_ratio{flow=...}   actual / max-min reference
//   midrr_fairness_rate_actual_bps{flow=...}
//   midrr_fairness_rate_maxmin_bps{flow=...}
//   midrr_fairness_jain_index             Jain's index over the ratios
//   midrr_fairness_ratio_min/max/mean     drift envelope without per-flow
//                                         label cardinality
//   midrr_fairness_samples_total          solver runs
//   midrr_fairness_solver_ns              solver latency histogram
//
// A healthy miDRR deployment keeps every ratio near 1.0 (the e2e test pins
// 10%); per-interface-WFQ-style drift shows up as a persistent spread.
//
// Under the class-aggregated runtime every sample row is a FLOW CLASS, so
// one solver run costs O(classes x interfaces) no matter how many member
// flows are registered: a class enters the reference program with weight
// phi x members, its measured rate is the members' summed service, and the
// exported ratio compares aggregate to aggregate (which equals the
// per-member comparison, both sides dividing by the same member count).
// Per-member rate gauges expand lazily -- only for labeled rows that
// actually aggregate more than one flow.
// Caveats: flows must be backlogged for "actual" to be meaningful (an idle
// flow legitimately shows ratio << 1), and with shards > 1 cross-shard
// coupling is intentionally absent, so the GLOBAL max-min reference may
// legitimately diverge (see docs/RUNTIME.md on sharding semantics).
// Unpaced interfaces report no capacity; the sampler substitutes the
// interface's measured drain rate, making the reference "the fair split of
// what the hardware actually moved".
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "flow/ids.hpp"
#include "telemetry/metrics.hpp"
#include "util/time.hpp"

namespace midrr::telemetry {

/// One row of a fairness sample.  Under the class-aggregated runtime a row
/// is a FLOW CLASS: `id` is the class id, `weight` the per-member phi,
/// `members` the member count, and `sent_bytes` the class's summed
/// service.  A plain per-flow source leaves `members` at 1 and everything
/// reads as before.
struct FairnessFlowSample {
  FlowId id = kInvalidFlow;
  std::string name;
  double weight = 1.0;            ///< per member
  std::uint64_t members = 1;      ///< flows aggregated into this row
  std::vector<bool> willing;      ///< by global IfaceId
  std::uint64_t sent_bytes = 0;   ///< cumulative, summed over members
};

/// One instant's (Pi, phi, C) + service state.
struct FairnessSample {
  SimTime at_ns = 0;
  std::vector<FairnessFlowSample> flows;       ///< live flows only
  std::vector<double> capacities_bps;          ///< by iface; < 0 = unpaced
  std::vector<std::uint64_t> iface_sent_bytes; ///< cumulative, by iface
};

/// Where samples come from; implemented by rt::Runtime.  Must be callable
/// from the sampler thread concurrently with the data path.
class FairnessSource {
 public:
  virtual ~FairnessSource() = default;
  virtual FairnessSample fairness_sample() = 0;
};

struct FlowDrift {
  FlowId id = kInvalidFlow;
  std::string name;
  std::uint64_t members = 1;  ///< flows behind this row (class aggregation)
  double actual_bps = 0.0;    ///< aggregate over members
  double maxmin_bps = 0.0;    ///< aggregate reference (weight x members)
  double ratio = 0.0;  ///< actual / maxmin (0 when maxmin is 0)
};

struct DriftReport {
  bool valid = false;   ///< false until two samples bracket a window
  SimTime at_ns = 0;
  double window_s = 0.0;
  std::vector<FlowDrift> flows;
  double jain = 0.0;
  double ratio_min = 0.0;
  double ratio_max = 0.0;
  double ratio_mean = 0.0;
};

struct FairnessDriftOptions {
  SimDuration interval_ns = 500 * kMillisecond;
  /// Per-flow labeled gauges are exported for at most this many flows
  /// (lowest ids first) to bound scrape cardinality; the min/max/mean
  /// envelope always covers every flow.
  std::size_t max_labeled_flows = 64;
};

class FairnessDriftSampler {
 public:
  FairnessDriftSampler(FairnessSource& source, MetricsRegistry& registry,
                       FairnessDriftOptions options = {});
  ~FairnessDriftSampler();  ///< stops and joins

  FairnessDriftSampler(const FairnessDriftSampler&) = delete;
  FairnessDriftSampler& operator=(const FairnessDriftSampler&) = delete;

  void start();
  void stop();  ///< idempotent

  /// Takes one sample and, once a window exists, refreshes the gauges.
  /// Called by the background thread; callable directly in tests (do not
  /// mix with a running thread).
  void sample_once();

  /// The most recent report (copy; `valid` false before the first window).
  DriftReport last() const;

 private:
  void run();
  void export_report(const DriftReport& report);

  FairnessSource& source_;
  MetricsRegistry& registry_;
  FairnessDriftOptions options_;

  Counter& samples_total_;
  Histogram& solver_ns_;
  Gauge& jain_;
  Gauge& ratio_min_;
  Gauge& ratio_max_;
  Gauge& ratio_mean_;
  Gauge& compared_flows_;

  std::thread thread_;
  std::mutex run_mu_;
  std::condition_variable run_cv_;
  bool running_ = false;

  FairnessSample prev_;
  bool has_prev_ = false;

  mutable std::mutex last_mu_;
  DriftReport last_;
};

/// Per-flow JSON rate table (the /flows endpoint): cumulative service from
/// `sample` joined with the latest drift window (when valid).
std::string flows_json(const FairnessSample& sample, const DriftReport& drift);

}  // namespace midrr::telemetry
