// Chrome trace-event (about://tracing / Perfetto) JSON export.
//
// Two sources feed one timeline:
//   * SchedulerObserver event streams captured by a TraceRecorder --
//     grants, flag skips, sends, drains -- rendered as instant events on
//     one track per interface (this is Fig 1(c)'s "interface 2 skips flow
//     a" as something you can scroll through), and
//   * runtime worker spans (fan-in batches and per-interface drain bursts)
//     rendered as duration events on one track per worker thread, so the
//     enqueue -> dequeue -> wire pipeline is visible end to end.
//
// Timestamps are microseconds (the format's unit); SimTime nanoseconds are
// divided down, keeping sub-us precision as fractions.  Load the output
// via chrome://tracing "Load" or ui.perfetto.dev.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "flow/ids.hpp"
#include "sched/observer.hpp"
#include "util/time.hpp"

namespace midrr::telemetry {

/// One completed runtime work span (recorded by a worker thread).
struct TraceSpan {
  enum class Kind : std::uint8_t { kFanIn, kDrain };

  Kind kind = Kind::kDrain;
  std::uint32_t worker = 0;
  SimTime begin_ns = 0;
  SimTime end_ns = 0;
  IfaceId iface = kInvalidIface;  ///< kDrain only
  std::uint32_t shard = 0;        ///< kFanIn only
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
};

class ChromeTraceBuilder {
 public:
  /// Names the process row for a pid (emitted as metadata events).
  void set_process_name(std::uint32_t pid, const std::string& name);

  /// Adds a recorder's event stream under `pid`, one thread row per
  /// interface (tid = iface; drain events land on tid 0).  If the recorder
  /// overflowed, a metadata counter notes how many events were lost.
  void add_recorder(const TraceRecorder& recorder, std::uint32_t pid);

  /// Adds runtime worker spans under `pid`, one thread row per worker.
  void add_spans(const std::vector<TraceSpan>& spans, std::uint32_t pid);

  /// Adds one counter sample (rendered as a "C" event; chrome plots a
  /// stacked area per counter name).
  void add_counter(std::uint32_t pid, const std::string& name, SimTime at,
                   double value);

  /// Adds one process-scoped instant marker (fault injections, supervisor
  /// verdicts) on thread row `tid` under `pid`.
  void add_instant(std::uint32_t pid, std::uint32_t tid,
                   const std::string& name, SimTime at);

  std::size_t event_count() const { return events_.size(); }

  /// The full {"traceEvents": [...]} document.
  std::string json() const;
  void write(std::ostream& out) const;

 private:
  void thread_name(std::uint32_t pid, std::uint32_t tid,
                   const std::string& name);

  std::vector<std::string> events_;  ///< pre-rendered JSON objects
};

}  // namespace midrr::telemetry
