// MetricsObserver: a SchedulerObserver whose callbacks are single relaxed
// atomic increments, cheap enough to run inside the runtime's shard locks
// (the reason plain observers are rejected there -- a TraceRecorder
// allocates on push).  It turns the DRR family's micro-events into
// counters: turn grants (each grant IS a quantum refresh -- Algorithm 3.1
// adds Q_i exactly when a turn is granted), Algorithm 3.2 flag skips,
// packet hand-offs, and queue drains.  Packet/byte counting rides the
// batched on_packets_sent summary (two bumps per dequeue burst instead of
// two per packet); the per-packet on_packet_sent hook only feeds the
// chained tracer.
//
// Optionally chains to a second observer (e.g. a bounded TraceRecorder for
// Chrome-trace export) so one scheduler hook feeds both.
#pragma once

#include <cstdint>

#include "sched/observer.hpp"
#include "telemetry/metrics.hpp"

namespace midrr::telemetry {

class MetricsObserver final : public SchedulerObserver {
 public:
  /// Registers this observer's series in `registry` under `labels`
  /// (typically {{"shard", "<n>"}}).  `chain`, if non-null, receives every
  /// event after the counters are bumped and must outlive this observer.
  MetricsObserver(MetricsRegistry& registry, LabelSet labels,
                  SchedulerObserver* chain = nullptr);

  void on_turn_granted(SimTime now, FlowId flow, IfaceId iface,
                       std::int64_t deficit_after) override;
  void on_flag_skip(SimTime now, FlowId flow, IfaceId iface) override;
  void on_packet_sent(SimTime now, FlowId flow, IfaceId iface,
                      std::uint32_t bytes) override;
  void on_packets_sent(SimTime now, IfaceId iface, std::uint64_t packets,
                       std::uint64_t bytes) override;
  void on_flow_drained(SimTime now, FlowId flow) override;

  std::uint64_t grants() const { return grants_.value(); }
  std::uint64_t skips() const { return skips_.value(); }
  std::uint64_t sends() const { return sends_.value(); }

 private:
  Counter& grants_;  ///< quantum refreshes
  Counter& skips_;
  Counter& sends_;
  Counter& sent_bytes_;
  Counter& drains_;
  SchedulerObserver* chain_;
};

}  // namespace midrr::telemetry
