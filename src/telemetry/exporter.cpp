#include "telemetry/exporter.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "telemetry/prometheus.hpp"
#include "util/logging.hpp"

namespace midrr::telemetry {

namespace {

constexpr std::size_t kMaxRequestBytes = 16 * 1024;
constexpr int kIoTimeoutMs = 2000;

const char* reason_for(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Error";
  }
}

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && (errno == EINTR)) continue;
      return;  // client went away; nothing to do
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string render_response(int status, const std::string& content_type,
                            const std::string& body) {
  http::HttpResponse head;
  head.status = status;
  head.reason = reason_for(status);
  head.set_header("Content-Type", content_type);
  head.set_header("Content-Length", std::to_string(body.size()));
  head.set_header("Connection", "close");
  return head.serialize_head() + body;
}

}  // namespace

TelemetryServer::TelemetryServer() : TelemetryServer(Options{}) {}

TelemetryServer::TelemetryServer(Options options)
    : options_(std::move(options)) {}

TelemetryServer::~TelemetryServer() { stop(); }

void TelemetryServer::handle(const std::string& path, Handler handler) {
  std::lock_guard<std::mutex> lock(handlers_mu_);
  handlers_[path] = std::move(handler);
}

void TelemetryServer::serve_registry(const MetricsRegistry& registry) {
  handle("/metrics", [&registry](const http::HttpRequest&) {
    HandlerResult r;
    r.content_type = kPrometheusContentType;
    r.body = render_prometheus(registry);
    return r;
  });
  handle("/healthz", [](const http::HttpRequest&) {
    HandlerResult r;
    r.body = "ok\n";
    return r;
  });
}

void TelemetryServer::start() {
  if (running_.load(std::memory_order_acquire)) return;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("telemetry: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("telemetry: bad bind address " +
                             options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("telemetry: bind/listen on " +
                             options_.bind_address + ":" +
                             std::to_string(options_.port) + " failed: " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  bound_port_ = ntohs(bound.sin_port);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { accept_loop(); });
}

void TelemetryServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // Shut the listening socket down; accept()/poll() in the thread returns
  // immediately with an error and the loop exits on the cleared flag.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void TelemetryServer::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (!running_.load(std::memory_order_acquire)) break;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    serve_connection(fd);
    ::close(fd);
  }
}

void TelemetryServer::serve_connection(int fd) {
  // Bound both reads and writes so a stuck scraper cannot wedge the loop.
  timeval tv{};
  tv.tv_sec = kIoTimeoutMs / 1000;
  tv.tv_usec = (kIoTimeoutMs % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  std::string request;
  char buf[4096];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return;
    request.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t head_end = request.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    send_all(fd, render_response(400, "text/plain", "oversized request\n"));
    return;
  }
  const auto parsed = http::HttpRequest::parse(request.substr(0, head_end + 4));
  if (!parsed.has_value()) {
    send_all(fd, render_response(400, "text/plain", "malformed request\n"));
    return;
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (parsed->method != "GET" && parsed->method != "HEAD") {
    send_all(fd, render_response(405, "text/plain", "GET only\n"));
    return;
  }
  std::string path = parsed->target;
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  Handler handler;
  {
    std::lock_guard<std::mutex> lock(handlers_mu_);
    const auto it = handlers_.find(path);
    if (it != handlers_.end()) handler = it->second;
  }
  if (!handler) {
    send_all(fd, render_response(404, "text/plain", "no such route\n"));
    return;
  }
  HandlerResult result;
  try {
    result = handler(*parsed);
  } catch (const std::exception& e) {
    MIDRR_LOG_WARN() << "telemetry handler for " << path
                     << " threw: " << e.what();
    send_all(fd, render_response(500, "text/plain", "handler error\n"));
    return;
  }
  if (parsed->method == "HEAD") result.body.clear();
  send_all(fd, render_response(result.status, result.content_type,
                               result.body));
}

}  // namespace midrr::telemetry
