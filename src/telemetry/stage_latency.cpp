#include "telemetry/stage_latency.hpp"

#include "util/assert.hpp"

namespace midrr::telemetry {

const char* to_string(Stage stage) {
  switch (stage) {
    case Stage::kRing: return "ring";
    case Stage::kQueue: return "queue";
    case Stage::kEgress: return "egress";
  }
  return "?";
}

StageTracer::StageTracer(std::size_t lanes, std::size_t ifaces,
                         std::size_t max_flows, Options options)
    : options_(options), records_(lanes * options.slots_per_lane) {
  MIDRR_REQUIRE(options_.sample_every >= 1, "sample_every must be >= 1");
  MIDRR_REQUIRE(options_.slots_per_lane >= 1, "slots_per_lane must be >= 1");
  MIDRR_REQUIRE(lanes >= 1, "tracer needs at least one lane");
  lanes_.resize(lanes);
  for (Lane& lane : lanes_) {
    lane.flow_count.assign(max_flows, 0);
    lane.generation.assign(options_.slots_per_lane, 0);
  }
  stats_.reserve(ifaces);
  for (std::size_t j = 0; j < ifaces; ++j) {
    stats_.push_back(std::make_unique<IfaceStats>());
  }
}

std::uint64_t StageTracer::maybe_begin(std::size_t lane_index, FlowId flow,
                                       std::uint64_t t_offer) {
  Lane& lane = lanes_[lane_index];
  if (flow >= lane.flow_count.size()) return 0;  // out-of-arena: never live
  if (lane.flow_count[flow]++ % options_.sample_every != 0) return 0;
  const std::uint32_t local = lane.cursor % options_.slots_per_lane;
  const std::uint64_t slot =
      static_cast<std::uint64_t>(lane_index) * options_.slots_per_lane + local;
  Record& rec = records_[slot];
  if (options_.reuse_grace_ns > 0) {
    // A held slot means its packet is still in flight (completion and
    // death both release).  Trampling it would starve the histograms of
    // completions exactly when a saturating producer outruns the drain --
    // skip this sample instead, and advance the cursor so consecutive
    // skips sweep the lane for out-of-order frees.  Holds older than the
    // grace are leaked records; fall through and recycle those.
    const std::uint64_t occupant = rec.tag.load(std::memory_order_acquire);
    if (occupant != 0) {
      const std::uint64_t held = rec.t_offer.load(std::memory_order_relaxed);
      if (t_offer >= held && t_offer - held < options_.reuse_grace_ns) {
        ++lane.cursor;
        skipped_.fetch_add(1, std::memory_order_relaxed);
        return 0;
      }
    }
  }
  ++lane.cursor;
  const std::uint32_t generation = ++lane.generation[local];  // starts at 1
  const std::uint64_t tag = (static_cast<std::uint64_t>(generation) << 32) |
                            slot;
  // Invalidate first so a racing completion of the PREVIOUS occupant fails
  // its tag check instead of reading half-reset stamps, then publish the
  // new tag last.
  rec.tag.store(0, std::memory_order_relaxed);
  rec.t_fanin.store(0, std::memory_order_relaxed);
  rec.t_dequeue.store(0, std::memory_order_relaxed);
  rec.t_offer.store(t_offer, std::memory_order_relaxed);
  rec.flow.store(flow, std::memory_order_relaxed);
  rec.tag.store(tag, std::memory_order_release);
  started_.fetch_add(1, std::memory_order_relaxed);
  return tag;
}

void StageTracer::stamp(std::uint64_t tag, std::uint64_t t, unsigned field) {
  const std::uint64_t slot = tag & 0xffffffffULL;
  if (slot >= records_.size()) return;
  Record& rec = records_[slot];
  // Check-then-write: a slot recycled inside this nanosecond-scale window
  // could take a stale stamp, but the completion-side coherence checks
  // (t_offer match + stage monotonicity) catch the fallout -- at worst one
  // counted lost sample, never a corrupt histogram.
  if (rec.tag.load(std::memory_order_acquire) != tag) return;
  (field == 1 ? rec.t_fanin : rec.t_dequeue)
      .store(t, std::memory_order_relaxed);
}

bool StageTracer::complete(std::uint64_t tag, std::uint64_t t_offer_expected,
                          std::uint64_t t_sent, IfaceId iface,
                          std::uint64_t* e2e_ns, FlowId* flow_out) {
  const std::uint64_t slot = tag & 0xffffffffULL;
  if (slot >= records_.size() || iface >= stats_.size()) {
    lost_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Record& rec = records_[slot];
  if (rec.tag.load(std::memory_order_acquire) != tag) {
    lost_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const std::uint64_t t_offer = rec.t_offer.load(std::memory_order_relaxed);
  const std::uint64_t t_fanin = rec.t_fanin.load(std::memory_order_relaxed);
  const std::uint64_t t_dequeue =
      rec.t_dequeue.load(std::memory_order_relaxed);
  const FlowId flow = rec.flow.load(std::memory_order_relaxed);
  // Seqlock-style re-validation: if the lane recycled the slot while we
  // were reading, the tag has moved on and the stamps above may mix two
  // packets -- discard.
  if (rec.tag.load(std::memory_order_acquire) != tag) {
    lost_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Coherence: the record must belong to THIS packet (offer stamps are
  // clock reads, unique enough with the tag to rule out aliasing) and the
  // stamps must be monotone through the pipeline.
  if (t_offer != t_offer_expected || t_fanin < t_offer ||
      t_dequeue < t_fanin || t_sent < t_dequeue || t_fanin == 0 ||
      t_dequeue == 0) {
    lost_.fetch_add(1, std::memory_order_relaxed);
    release(tag);  // this packet's record: done with it either way
    return false;
  }
  IfaceStats& stats = *stats_[iface];
  const std::uint64_t durations[kStageCount] = {
      t_fanin - t_offer, t_dequeue - t_fanin, t_sent - t_dequeue};
  for (std::size_t s = 0; s < kStageCount; ++s) {
    stats.stage[s].record(durations[s]);
    if (stats.stage_hist[s] != nullptr) {
      stats.stage_hist[s]->observe(durations[s]);
    }
  }
  const std::uint64_t e2e = t_sent - t_offer;
  stats.e2e.record(e2e);
  if (stats.e2e_hist != nullptr) stats.e2e_hist->observe(e2e);
  completed_.fetch_add(1, std::memory_order_relaxed);
  release(tag);
  if (e2e_ns != nullptr) *e2e_ns = e2e;
  if (flow_out != nullptr) *flow_out = flow;
  return true;
}

void StageTracer::release(std::uint64_t tag) {
  const std::uint64_t slot = tag & 0xffffffffULL;
  if (tag == 0 || slot >= records_.size()) return;
  // CAS: only free the record if this sample still owns it -- a lane that
  // already trampled and re-claimed the slot must not lose its occupant.
  std::uint64_t expected = tag;
  records_[slot].tag.compare_exchange_strong(expected, 0,
                                             std::memory_order_release,
                                             std::memory_order_relaxed);
}

double StageTracer::reconciliation_error() const {
  std::uint64_t stage_sum = 0;
  std::uint64_t e2e_sum = 0;
  for (const auto& stats : stats_) {
    for (const LatencyHistogram& grid : stats->stage) {
      stage_sum += grid.sum_raw();
    }
    e2e_sum += stats->e2e.sum_raw();
  }
  if (e2e_sum == 0) return 0.0;
  const double diff = stage_sum >= e2e_sum
                          ? static_cast<double>(stage_sum - e2e_sum)
                          : static_cast<double>(e2e_sum - stage_sum);
  return diff / static_cast<double>(e2e_sum);
}

void StageTracer::register_metrics(
    MetricsRegistry& registry, const std::vector<std::string>& iface_names) {
  const auto count_of = [](const std::atomic<std::uint64_t>& v) {
    return [&v] {
      return static_cast<double>(v.load(std::memory_order_relaxed));
    };
  };
  registry.gauge_fn("midrr_stage_sample_every",
                    "Deterministic per-flow sampling period: every Nth "
                    "packet of each flow is stage-traced.",
                    {}, [this] {
                      return static_cast<double>(options_.sample_every);
                    });
  registry.counter_fn("midrr_stage_samples_total",
                      "Stage-trace samples claimed at ingress.",
                      {{"outcome", "started"}}, count_of(started_));
  registry.counter_fn("midrr_stage_samples_total",
                      "Stage-trace samples that completed with coherent "
                      "stamps (folded into the stage histograms).",
                      {{"outcome", "completed"}}, count_of(completed_));
  registry.counter_fn("midrr_stage_samples_total",
                      "Stage-trace samples discarded at completion: the "
                      "arena slot was recycled mid-flight or the stamps "
                      "were incoherent.  Never corrupts, only loses.",
                      {{"outcome", "lost"}}, count_of(lost_));
  registry.counter_fn("midrr_stage_samples_total",
                      "Stage-traced packets that died before egress "
                      "(shed, straggler, io drop).",
                      {{"outcome", "dropped"}}, count_of(dropped_));
  registry.counter_fn("midrr_stage_samples_total",
                      "Claims skipped because every lane slot was held by "
                      "an in-flight sample (producer outrunning the drain; "
                      "sampling degrades to the completion rate instead of "
                      "trampling live records).",
                      {{"outcome", "skipped"}}, count_of(skipped_));
  registry.gauge_fn("midrr_stage_reconciliation_error_ratio",
                    "|sum(ring)+sum(queue)+sum(egress) - sum(e2e)| / "
                    "sum(e2e) across all interfaces.  The stages partition "
                    "the end-to-end latency by construction, so anything "
                    "but 0 is a tracer bug.",
                    {}, [this] { return reconciliation_error(); });
  for (std::size_t j = 0; j < stats_.size(); ++j) {
    const std::string name =
        j < iface_names.size() ? iface_names[j] : "if" + std::to_string(j);
    IfaceStats& stats = *stats_[j];
    for (std::size_t s = 0; s < kStageCount; ++s) {
      stats.stage_hist[s] = &registry.histogram(
          "midrr_stage_latency_ns",
          "Per-stage latency of sampled packets: ring = ingress-ring "
          "residence, queue = scheduler queue + pacer gating, egress = "
          "syscall + requeue stash.  Stages sum to midrr_stage_e2e_ns.",
          {{"iface", name}, {"stage", to_string(static_cast<Stage>(s))}});
    }
    stats.e2e_hist = &registry.histogram(
        "midrr_stage_e2e_ns",
        "End-to-end (offer to egress resolution) latency of sampled "
        "packets, attributed to the interface the packet left on.",
        {{"iface", name}});
  }
}

}  // namespace midrr::telemetry
