// The "system managing user preferences" the paper's Section 3 hands the
// scheduler its inputs from: users express policies in terms of interface
// *attributes* ("Netflix only over unmetered links", "VoIP prefers low
// latency", "stop using cellular once the monthly cap is near"), and this
// compiler lowers them to the scheduler's concrete inputs -- a willingness
// row of Pi and a weight phi per application -- re-lowering them when
// conditions change (data cap exhausted, interfaces appearing/vanishing).
//
// Verbs:
//   kRequire  keep only matching interfaces (intersection);
//   kForbid   remove matching interfaces;
//   kPrefer   if any matching interface survives, use only those
//             (soft: falls back to the full set when none match);
//   kBoost    multiply the app's weight (rate preference).
//
// Rules apply in insertion order; app patterns are exact names or "*".
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"
#include "util/time.hpp"

namespace midrr::policy {

struct InterfaceAttributes {
  std::string name;
  bool metered = false;               ///< counts against a data cap
  SimDuration typical_latency = 20 * kMillisecond;
  std::uint64_t data_cap_bytes = 0;   ///< 0 = uncapped
  /// Measured/configured capacity ratio, fed from the supervisor's
  /// drift measurement (see fault::AdaptiveController); 1.0 = at spec.
  /// Policies can react to droops via Selector::min_capacity.
  double capacity_scale = 1.0;
};

enum class Verb { kRequire, kForbid, kPrefer, kBoost };

/// Which interfaces a rule matches.
struct Selector {
  static Selector by_name(std::string name);
  static Selector metered();
  static Selector unmetered();
  /// Latency at or below `bound`.
  static Selector low_latency(SimDuration bound = 30 * kMillisecond);
  /// Measured capacity at or above `fraction` of configured ("prefer
  /// links actually delivering >= 80% of spec": min_capacity(0.8)).
  static Selector min_capacity(double fraction);
  static Selector any();

  bool matches(const InterfaceAttributes& iface) const;

  enum class Kind {
    kByName,
    kMetered,
    kUnmetered,
    kLowLatency,
    kMinCapacity,
    kAny,
  };
  Kind kind = Kind::kAny;
  std::string name;
  SimDuration latency_bound = 0;
  double capacity_fraction = 0.0;
};

struct PolicyRule {
  std::string app;  ///< exact app name or "*"
  Verb verb = Verb::kRequire;
  Selector selector;
  double boost = 1.0;  ///< for kBoost
};

/// The compiled scheduler inputs for one application.
struct AppPolicy {
  std::vector<std::string> willing;  ///< interface names (Pi row)
  double weight = 1.0;               ///< phi
};

/// Tracks bytes consumed on capped interfaces; an exhausted cap removes the
/// interface from every app that does not REQUIRE it by name (the "switch
/// off cellular near the cap" behavior the paper's intro describes users
/// improvising by hand).
class DataCapTracker {
 public:
  void record(const std::string& iface, std::uint64_t bytes);
  std::uint64_t used(const std::string& iface) const;
  void reset(const std::string& iface);  ///< new billing month

 private:
  std::map<std::string, std::uint64_t> used_;
};

class PreferenceCompiler {
 public:
  /// Declares an interface with its attributes (replaces an existing entry
  /// of the same name).
  void add_interface(InterfaceAttributes attrs);
  void remove_interface(const std::string& name);

  /// Appends a rule; rules evaluate in insertion order.
  void add_rule(PolicyRule rule);

  /// Base weight for an app (before kBoost rules); default 1.
  void set_base_weight(const std::string& app, double weight);

  /// Updates `name`'s measured/configured capacity ratio (clamped to
  /// [0, 1]; unknown names ignored, matching apply()'s tolerance for
  /// absent interfaces).  The feedback edge of the closed loop: callers
  /// push fault::AdaptiveController::drift_ratio here and re-compile, so
  /// min_capacity policies re-lower to measured conditions.
  void set_capacity_scale(const std::string& name, double scale);

  /// Lowers the rules to (willing, weight) for `app`.  `caps`, when given,
  /// masks out cap-exhausted metered interfaces (unless required by name).
  AppPolicy compile(const std::string& app,
                    const DataCapTracker* caps = nullptr) const;

  /// Pushes compiled policies into a live scheduler for the given
  /// app -> flow bindings (interface names resolved via the scheduler's
  /// registry; unknown names are ignored so policies survive interfaces
  /// that are currently absent).
  void apply(Scheduler& scheduler,
             const std::map<std::string, FlowId>& bindings,
             const DataCapTracker* caps = nullptr) const;

  const std::vector<InterfaceAttributes>& interfaces() const {
    return ifaces_;
  }

 private:
  std::vector<InterfaceAttributes> ifaces_;
  std::vector<PolicyRule> rules_;
  std::map<std::string, double> base_weights_;
};

}  // namespace midrr::policy
