#include "policy/compiler.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace midrr::policy {

Selector Selector::by_name(std::string name) {
  Selector s;
  s.kind = Kind::kByName;
  s.name = std::move(name);
  return s;
}

Selector Selector::metered() {
  Selector s;
  s.kind = Kind::kMetered;
  return s;
}

Selector Selector::unmetered() {
  Selector s;
  s.kind = Kind::kUnmetered;
  return s;
}

Selector Selector::low_latency(SimDuration bound) {
  Selector s;
  s.kind = Kind::kLowLatency;
  s.latency_bound = bound;
  return s;
}

Selector Selector::min_capacity(double fraction) {
  Selector s;
  s.kind = Kind::kMinCapacity;
  s.capacity_fraction = fraction;
  return s;
}

Selector Selector::any() { return Selector{}; }

bool Selector::matches(const InterfaceAttributes& iface) const {
  switch (kind) {
    case Kind::kByName:
      return iface.name == name;
    case Kind::kMetered:
      return iface.metered;
    case Kind::kUnmetered:
      return !iface.metered;
    case Kind::kLowLatency:
      return iface.typical_latency <= latency_bound;
    case Kind::kMinCapacity:
      return iface.capacity_scale >= capacity_fraction;
    case Kind::kAny:
      return true;
  }
  return false;
}

void DataCapTracker::record(const std::string& iface, std::uint64_t bytes) {
  used_[iface] += bytes;
}

std::uint64_t DataCapTracker::used(const std::string& iface) const {
  const auto it = used_.find(iface);
  return it == used_.end() ? 0 : it->second;
}

void DataCapTracker::reset(const std::string& iface) { used_.erase(iface); }

void PreferenceCompiler::add_interface(InterfaceAttributes attrs) {
  MIDRR_REQUIRE(!attrs.name.empty(), "interface needs a name");
  for (auto& existing : ifaces_) {
    if (existing.name == attrs.name) {
      existing = std::move(attrs);
      return;
    }
  }
  ifaces_.push_back(std::move(attrs));
}

void PreferenceCompiler::remove_interface(const std::string& name) {
  std::erase_if(ifaces_, [&name](const InterfaceAttributes& i) {
    return i.name == name;
  });
}

void PreferenceCompiler::add_rule(PolicyRule rule) {
  MIDRR_REQUIRE(!rule.app.empty(), "rule needs an app pattern");
  MIDRR_REQUIRE(rule.verb != Verb::kBoost || rule.boost > 0.0,
                "boost factor must be positive");
  rules_.push_back(std::move(rule));
}

void PreferenceCompiler::set_base_weight(const std::string& app,
                                         double weight) {
  MIDRR_REQUIRE(weight > 0.0, "base weight must be positive");
  base_weights_[app] = weight;
}

void PreferenceCompiler::set_capacity_scale(const std::string& name,
                                            double scale) {
  for (auto& iface : ifaces_) {
    if (iface.name == name) {
      iface.capacity_scale = std::clamp(scale, 0.0, 1.0);
      return;
    }
  }
}

AppPolicy PreferenceCompiler::compile(const std::string& app,
                                      const DataCapTracker* caps) const {
  // Start from every known interface, minus cap-exhausted metered ones
  // (re-added below only by an explicit by-name REQUIRE).
  std::vector<const InterfaceAttributes*> allowed;
  std::vector<const InterfaceAttributes*> exhausted;
  for (const auto& iface : ifaces_) {
    const bool capped =
        caps != nullptr && iface.data_cap_bytes > 0 &&
        caps->used(iface.name) >= iface.data_cap_bytes;
    (capped ? exhausted : allowed).push_back(&iface);
  }

  double weight = 1.0;
  if (const auto it = base_weights_.find(app); it != base_weights_.end()) {
    weight = it->second;
  }

  for (const PolicyRule& rule : rules_) {
    if (rule.app != "*" && rule.app != app) continue;
    switch (rule.verb) {
      case Verb::kRequire: {
        // Keep matches; an explicit by-name REQUIRE may resurrect a
        // cap-exhausted interface (the user said so).
        if (rule.selector.kind == Selector::Kind::kByName) {
          for (const auto* iface : exhausted) {
            if (rule.selector.matches(*iface)) allowed.push_back(iface);
          }
        }
        std::erase_if(allowed, [&rule](const InterfaceAttributes* i) {
          return !rule.selector.matches(*i);
        });
        break;
      }
      case Verb::kForbid:
        std::erase_if(allowed, [&rule](const InterfaceAttributes* i) {
          return rule.selector.matches(*i);
        });
        break;
      case Verb::kPrefer: {
        std::vector<const InterfaceAttributes*> preferred;
        for (const auto* iface : allowed) {
          if (rule.selector.matches(*iface)) preferred.push_back(iface);
        }
        if (!preferred.empty()) allowed = std::move(preferred);
        break;
      }
      case Verb::kBoost:
        weight *= rule.boost;
        break;
    }
  }

  AppPolicy out;
  out.weight = weight;
  for (const auto* iface : allowed) out.willing.push_back(iface->name);
  return out;
}

void PreferenceCompiler::apply(Scheduler& scheduler,
                               const std::map<std::string, FlowId>& bindings,
                               const DataCapTracker* caps) const {
  for (const auto& [app, flow] : bindings) {
    if (!scheduler.preferences().flow_exists(flow)) continue;
    const AppPolicy policy = compile(app, caps);
    scheduler.set_weight(flow, policy.weight);
    for (const IfaceId iface : scheduler.preferences().ifaces()) {
      const std::string& iface_name =
          scheduler.preferences().iface_name(iface);
      const bool willing =
          std::find(policy.willing.begin(), policy.willing.end(),
                    iface_name) != policy.willing.end();
      scheduler.set_willing(flow, iface, willing);
    }
  }
}

}  // namespace midrr::policy
